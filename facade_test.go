package repro_test

import (
	"testing"

	"repro"
)

// TestPublicAPIRoundTrip exercises the library exactly as the README's
// quickstart presents it: format, mount supervised, plant a deterministic
// bug, operate across it, verify, unmount, fsck.
func TestPublicAPIRoundTrip(t *testing.T) {
	dev := repro.NewMemDevice(4096)
	if _, err := repro.Format(dev); err != nil {
		t.Fatal(err)
	}
	bugs := repro.NewFaultRegistry(7)
	bugs.Arm(&repro.FaultSpecimen{
		ID: "api-crash", Class: repro.BugCrash,
		Deterministic: true, Op: "mkdir", PathSubstr: "boom",
	})
	fs, err := repro.Mount(dev, repro.Config{Base: repro.BaseOptions{Injector: bugs}})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := fs.Create("/file", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 0, []byte("public api")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/boom-dir", 0o755); err != nil {
		t.Fatalf("deterministic crash not masked: %v", err)
	}
	st := fs.Stats()
	if st.Recoveries != 1 || st.AppFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	got, err := fs.ReadAt(fd, 0, 100)
	if err != nil || string(got) != "public api" {
		t.Fatalf("read after recovery = (%q, %v)", got, err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.Readdir("/")
	if err != nil || len(entries) != 2 {
		t.Fatalf("readdir = (%v, %v)", entries, err)
	}
	var stat repro.Stat
	stat, err = fs.Stat("/boom-dir")
	if err != nil || stat.Nlink != 2 {
		t.Fatalf("stat = (%+v, %v)", stat, err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if rep := repro.Check(dev); !rep.Clean() {
		t.Fatalf("post-unmount fsck: %v", rep.Err())
	}
}

// TestPublicAPIBaselineModes checks the exported mode constants select the
// baseline behaviors.
func TestPublicAPIBaselineModes(t *testing.T) {
	dev := repro.NewMemDevice(4096)
	if _, err := repro.Format(dev); err != nil {
		t.Fatal(err)
	}
	bugs := repro.NewFaultRegistry(9)
	bugs.Arm(&repro.FaultSpecimen{
		ID: "api-crash", Class: repro.BugCrash,
		Deterministic: true, Op: "unlink",
	})
	fs, err := repro.Mount(dev, repro.Config{
		Mode: repro.ModeCrashRestart,
		Base: repro.BaseOptions{Injector: bugs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	fd, _ := fs.Create("/f", 0o644)
	fs.Close(fd)
	if err := fs.Unlink("/f"); err == nil {
		t.Fatal("crash-restart masked a failure it should surface")
	}
	if fs.Stats().AppFailures == 0 {
		t.Error("no app failure recorded")
	}
}
