// Package repro's root bench suite regenerates every quantitative artifact
// as a testing.B benchmark, one per experiment in EXPERIMENTS.md:
//
//	BenchmarkTable1Classify          E1  Table 1 classification
//	BenchmarkBaseVsShadowThroughput  E3  Figure 2's base ≫ shadow contrast
//	BenchmarkRecoveryLatency         E4  recovery cost vs recorded-log length
//	BenchmarkAvailabilityUnderBugs   E5  RAE vs baselines under bug arrivals
//	BenchmarkRecordingOverhead       E6  common-case supervision cost
//	BenchmarkDifferentialThroughput  E7  §4.3 testing-phase throughput
//	BenchmarkFsck                    E8  image-validation cost
//
// plus micro-benchmarks for the substrates (journal commit, buffer cache,
// shadow replay) that back the ablation discussion in EXPERIMENTS.md.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/bugstudy"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/fsck"
	"repro/internal/journal"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
	"repro/internal/shadowfs"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// BenchmarkTable1Classify regenerates Table 1 (E1): corpus classification
// throughput, with the cross-tab verified each iteration.
func BenchmarkTable1Classify(b *testing.B) {
	corpus := bugstudy.Corpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := bugstudy.Table1(corpus)
		if got != bugstudy.Table1Want {
			b.Fatal("Table 1 mismatch")
		}
	}
	b.ReportMetric(256, "bugs/op")
}

// BenchmarkFigure1Tally regenerates Figure 1 (E2).
func BenchmarkFigure1Tally(b *testing.B) {
	corpus := bugstudy.Corpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := bugstudy.Figure1(corpus)
		if len(fig) != 11 {
			b.Fatal("Figure 1 year count wrong")
		}
	}
}

// BenchmarkBaseVsShadowThroughput is E3: the same workload applied to each
// system. Compare the ns/op across sub-benchmarks; the base must win by a
// wide margin over the shadow, with RAE close to the base.
func BenchmarkBaseVsShadowThroughput(b *testing.B) {
	for _, profile := range workload.Profiles() {
		trace := workload.Generate(workload.Config{
			Profile: profile, Seed: 1, NumOps: 2000, SyncEvery: 200,
		})
		for _, sys := range []experiments.System{
			experiments.SysBase, experiments.SysShadow, experiments.SysRAE, experiments.SysNVP3,
		} {
			b.Run(fmt.Sprintf("%s/%s", profile, sys), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					var fs interface {
						// minimal common surface for this bench
					}
					_ = fs
					dev := blockdev.NewMem(experiments.ImageBlocks)
					if _, err := mkfs.Format(dev, mkfs.Options{}); err != nil {
						b.Fatal(err)
					}
					var apply func(op *oplog.Op)
					var cleanup func()
					switch sys {
					case experiments.SysBase:
						base, err := basefs.Mount(dev, basefs.Options{})
						if err != nil {
							b.Fatal(err)
						}
						apply = func(op *oplog.Op) { _ = oplog.Apply(base, op) }
						cleanup = base.Kill
					case experiments.SysShadow:
						sh, err := shadowfs.New(dev, shadowfs.Options{SkipFsck: true})
						if err != nil {
							b.Fatal(err)
						}
						apply = func(op *oplog.Op) { _ = oplog.Apply(sh, op) }
						cleanup = func() {}
					case experiments.SysRAE:
						sup, err := core.Mount(dev, core.Config{})
						if err != nil {
							b.Fatal(err)
						}
						apply = func(op *oplog.Op) { _ = oplog.Apply(sup, op) }
						cleanup = sup.Kill
					case experiments.SysNVP3:
						nvp, err := core.NewNVP3(experiments.ImageBlocks, basefs.Options{})
						if err != nil {
							b.Fatal(err)
						}
						apply = func(op *oplog.Op) { _ = nvp.Do(op) }
						cleanup = func() {}
					}
					b.StartTimer()
					for _, rec := range trace {
						op := rec.Clone()
						op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
						apply(op)
					}
					b.StopTimer()
					cleanup()
					b.StartTimer()
				}
				b.ReportMetric(float64(len(trace)), "fsops/op")
			})
		}
	}
}

// BenchmarkRecoveryLatency is E4: one full recovery per iteration, swept
// over recorded-log lengths. The per-phase split is printed by
// cmd/shadowbench -series recovery.
func BenchmarkRecoveryLatency(b *testing.B) {
	for _, logLen := range []int{8, 64, 512, 2048} {
		b.Run(fmt.Sprintf("log%d", logLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RecoveryLatency(logLen, int64(i+1), false)
				if err != nil {
					b.Fatal(err)
				}
				if res.Phases.Total() <= 0 {
					b.Fatal("zero recovery time")
				}
			}
		})
	}
}

// BenchmarkAvailabilityUnderBugs is E5: a full workload under a recurring
// deterministic bug, per failure-handling mode.
func BenchmarkAvailabilityUnderBugs(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeRAE, core.ModeCrashRestart, core.ModeNaiveReplay} {
		b.Run(mode.String(), func(b *testing.B) {
			var lastCorrect, lastFailures int64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Availability(mode, 1000, 5)
				if err != nil {
					b.Fatal(err)
				}
				lastCorrect, lastFailures = res.Completed, res.AppFailures
			}
			b.ReportMetric(float64(lastCorrect), "correct")
			b.ReportMetric(float64(lastFailures), "appfail")
		})
	}
}

// BenchmarkRecordingOverhead is E6: the supervised ops path with no bugs,
// against the raw base (compare with the base sub-benchmarks of E3). The
// supervisor runs with telemetry disabled so the measurement isolates
// recording cost; BenchmarkTelemetryOverhead quantifies the telemetry delta
// on the same loop.
func BenchmarkRecordingOverhead(b *testing.B) {
	for _, cfg := range []struct {
		label     string
		profile   workload.Profile
		syncEvery int
	}{
		{workload.MetaHeavy.String(), workload.MetaHeavy, 200},
		{workload.ReadMostly.String(), workload.ReadMostly, 200},
		// fsync-heavy: a sync every 8 ops stresses the group-commit and
		// lazy-checkpoint path rather than the in-memory op stream.
		{"fsyncheavy", workload.MetaHeavy, 8},
	} {
		trace := workload.Generate(workload.Config{
			Profile: cfg.profile, Seed: 2, NumOps: 2000, SyncEvery: cfg.syncEvery,
		})
		b.Run("base/"+cfg.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dev := blockdev.NewMem(experiments.ImageBlocks)
				mkfs.Format(dev, mkfs.Options{})
				base, err := basefs.Mount(dev, basefs.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, rec := range trace {
					op := rec.Clone()
					op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
					_ = oplog.Apply(base, op)
				}
				b.StopTimer()
				base.Kill()
				b.StartTimer()
			}
		})
		b.Run("rae/"+cfg.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dev := blockdev.NewMem(experiments.ImageBlocks)
				mkfs.Format(dev, mkfs.Options{})
				sup, err := core.Mount(dev, core.Config{NoTelemetry: true})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, rec := range trace {
					op := rec.Clone()
					op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
					_ = oplog.Apply(sup, op)
				}
				b.StopTimer()
				sup.Kill()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkTelemetryOverhead isolates the observability subsystem's cost on
// the E6 supervised ops loop: "disabled" runs with NoTelemetry (every
// instrumentation point is a nil pointer check), "enabled" feeds a live
// sink. The disabled path is required to stay within 2% of a supervisor
// built without telemetry at all — i.e. E6's rae numbers must not regress.
func BenchmarkTelemetryOverhead(b *testing.B) {
	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: 2, NumOps: 2000, SyncEvery: 200,
	})
	for _, mode := range []string{"disabled", "enabled"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dev := blockdev.NewMem(experiments.ImageBlocks)
				mkfs.Format(dev, mkfs.Options{})
				cfg := core.Config{NoTelemetry: mode == "disabled"}
				if mode == "enabled" {
					cfg.Telemetry = telemetry.New()
				}
				sup, err := core.Mount(dev, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, rec := range trace {
					op := rec.Clone()
					op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
					_ = oplog.Apply(sup, op)
				}
				b.StopTimer()
				sup.Kill()
				b.StartTimer()
			}
			b.ReportMetric(float64(len(trace)), "fsops/op")
		})
	}
}

// BenchmarkSupervisorOverheadParallel measures supervision cost under
// goroutine concurrency: a read-mostly per-worker mix (1 write per 16 ops,
// private file per worker) driven through b.RunParallel against the raw base
// and the RAE supervisor. Compare ns/op between the two sub-benchmarks; the
// delta is the fence + recording cost on the concurrent common case. Scale
// workers with -cpu to sweep contention levels.
func BenchmarkSupervisorOverheadParallel(b *testing.B) {
	for _, sysName := range []string{"base", "rae"} {
		b.Run(sysName, func(b *testing.B) {
			dev := blockdev.NewMem(experiments.ImageBlocks)
			if _, err := mkfs.Format(dev, mkfs.Options{}); err != nil {
				b.Fatal(err)
			}
			var fs fsapi.FS
			var cleanup func()
			switch sysName {
			case "base":
				base, err := basefs.Mount(dev, basefs.Options{})
				if err != nil {
					b.Fatal(err)
				}
				fs, cleanup = base, base.Kill
			case "rae":
				sup, err := core.Mount(dev, core.Config{NoTelemetry: true})
				if err != nil {
					b.Fatal(err)
				}
				fs, cleanup = sup, sup.Kill
			}
			var nextID atomic.Int64
			payload := make([]byte, 64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := nextID.Add(1)
				fd, err := fs.Create(fmt.Sprintf("/par%d", id), 0o644)
				if err != nil {
					b.Error(err)
					return
				}
				i := 0
				for pb.Next() {
					if i%16 == 0 {
						if _, err := fs.WriteAt(fd, int64(i%8)*64, payload); err != nil {
							b.Error(err)
							return
						}
					} else {
						if _, err := fs.ReadAt(fd, 0, len(payload)); err != nil {
							b.Error(err)
							return
						}
					}
					i++
				}
				if err := fs.Close(fd); err != nil {
					b.Error(err)
				}
			})
			b.StopTimer()
			cleanup()
		})
	}
}

// BenchmarkDifferentialThroughput is E7: how fast the §4.3 testing phase
// (base and shadow in lockstep with outcome comparison) can grind traces.
func BenchmarkDifferentialThroughput(b *testing.B) {
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: 3, NumOps: 1000,
	})
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := blockdev.NewMem(experiments.ImageBlocks)
		sb, _ := mkfs.Format(dev, mkfs.Options{})
		base, err := basefs.Mount(dev, basefs.Options{})
		if err != nil {
			b.Fatal(err)
		}
		m := model.New(sb)
		b.StartTimer()
		disc, err := difftest.VerifyEquivalence(base, m, trace)
		if err != nil {
			b.Fatal(err)
		}
		if len(disc) != 0 {
			b.Fatalf("%d discrepancies in clean differential run", len(disc))
		}
		b.StopTimer()
		base.Kill()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(trace)), "fsops/op")
}

// BenchmarkFsck is E8's cost axis: full-image validation over a populated
// image (the shadow pays this once per recovery).
func BenchmarkFsck(b *testing.B) {
	dev := blockdev.NewMem(experiments.ImageBlocks)
	sb, _ := mkfs.Format(dev, mkfs.Options{})
	base, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: 4, NumOps: 1500, Superblock: sb,
	})
	for _, rec := range trace {
		op := rec.Clone()
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		_ = oplog.Apply(base, op)
	}
	if err := base.Unmount(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := fsck.Check(dev)
		if !rep.Clean() {
			b.Fatal("populated image not clean")
		}
	}
}

// BenchmarkJournalCommit measures the WAL's commit path (substrate micro).
// Allocations per op must stay flat as payload size grows: the streaming
// CRC32C folds payload blocks into the commit checksum without
// concatenating them.
func BenchmarkJournalCommit(b *testing.B) {
	sb, _ := disklayout.Geometry(4096, 512, 256)
	dev := blockdev.NewMem(sb.NumBlocks)
	dev.WriteBlock(0, disklayout.EncodeSuperblock(sb))
	jsb := make([]byte, disklayout.BlockSize)
	journal.EncodeJSB(jsb, 1, 1)
	dev.WriteBlock(sb.JournalStart, jsb)
	j, err := journal.New(dev, sb)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, disklayout.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := &journal.Tx{}
		for k := uint32(0); k < 8; k++ {
			tx.Add(sb.DataStart+k, payload)
		}
		if err := j.Commit(tx); err != nil {
			b.Fatal(err)
		}
		if err := j.Checkpointed(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(8, "blocks/op")
}

// BenchmarkShadowReplay measures the shadow's constrained re-execution in
// isolation (the dominant recovery phase in E4).
func BenchmarkShadowReplay(b *testing.B) {
	sb, _ := disklayout.Geometry(experiments.ImageBlocks, 0, 0)
	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: 5, NumOps: 256, Superblock: sb,
	})
	var recorded []*oplog.Op
	for _, op := range trace {
		if op.Kind.Mutating() && op.Kind != oplog.KFsync && op.Kind != oplog.KSync {
			recorded = append(recorded, op)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := blockdev.NewMem(experiments.ImageBlocks)
		mkfs.Format(dev, mkfs.Options{})
		sh, err := shadowfs.New(dev, shadowfs.Options{SkipFsck: true})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := sh.Replay(shadowfs.ReplayInput{Ops: recorded, StopOnDiscrepancy: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Update == nil {
			b.Fatal("no update")
		}
	}
	b.ReportMetric(float64(len(recorded)), "replayedops/op")
}

// BenchmarkPanicContainment measures the supervisor's detection envelope on
// the fault path: one contained panic + full RAE recovery per iteration,
// with an empty log (the floor of E4).
func BenchmarkPanicContainment(b *testing.B) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(&faultinject.Specimen{
		ID: "bench", Class: faultinject.Crash, Deterministic: true,
		Op: "setperm", Point: "entry", PathSubstr: "detonate",
	})
	dev := blockdev.NewMem(4096)
	mkfs.Format(dev, mkfs.Options{})
	sup, err := core.Mount(dev, core.Config{Base: basefs.Options{Injector: reg}, SkipFsckInRecovery: true})
	if err != nil {
		b.Fatal(err)
	}
	defer sup.Kill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sup.SetPerm("/detonate", 0o600); err == nil {
			b.Fatal("detonation op found a file?")
		}
		// Keep the log empty so every iteration measures the same
		// empty-log recovery floor (the recovered in-flight op is recorded
		// and would otherwise accumulate across iterations).
		b.StopTimer()
		if err := sup.Sync(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	if sup.Stats().Recoveries != int64(b.N) {
		b.Fatalf("recoveries %d != N %d", sup.Stats().Recoveries, b.N)
	}
}
