package repro_test

import (
	"bytes"
	"testing"

	"repro"
)

// TestFacadeRecoveryTrace is the end-to-end acceptance check through the
// public facade only: mount a supervised filesystem with an isolated
// telemetry sink, trigger a masked recovery, and assert the resulting trace
// carries all six canonical phases with non-negative durations.
func TestFacadeRecoveryTrace(t *testing.T) {
	dev := repro.NewMemDevice(16384)
	if _, err := repro.Format(dev); err != nil {
		t.Fatal(err)
	}
	reg := repro.NewFaultRegistry(1)
	reg.Arm(&repro.FaultSpecimen{
		ID: "facade-crash", Class: repro.BugCrash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "boom",
	})
	sink := repro.NewTelemetry()
	cfg := repro.Config{Telemetry: sink}
	cfg.Base.Injector = reg
	fs, err := repro.Mount(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()

	if err := fs.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/boom", 0o755); err != nil {
		t.Fatalf("crash should be masked by recovery, got %v", err)
	}

	if fs.Telemetry() != sink {
		t.Fatal("FS.Telemetry() does not return the configured sink")
	}
	tr, ok := sink.LastRecoveryTrace()
	if !ok {
		t.Fatal("recovery produced no trace")
	}
	phases := repro.RecoveryPhaseNames()
	if len(tr.Spans) != len(phases) {
		t.Fatalf("trace has %d spans, want %d", len(tr.Spans), len(phases))
	}
	for i, want := range phases {
		if tr.Spans[i].Phase != want {
			t.Errorf("span %d = %q, want %q", i, tr.Spans[i].Phase, want)
		}
		if tr.Spans[i].Duration < 0 {
			t.Errorf("phase %q duration %v < 0", want, tr.Spans[i].Duration)
		}
	}
	if tr.Trigger != "panic" || tr.Outcome != "recovered" {
		t.Fatalf("trace = %+v, want panic/recovered", tr)
	}

	// The snapshot type round-trips through the facade aliases too.
	var snap repro.TelemetrySnapshot = sink.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []repro.TelemetryEvent = sink.Events()
	found := false
	for _, ev := range evs {
		if ev.Kind == "recovery" {
			found = true
		}
	}
	if !found {
		t.Fatal("no 'recovery' event in the journal")
	}
}

// TestFacadeDefaultTelemetry checks that a zero-value Config wires the
// process-global sink exposed as repro.DefaultTelemetry().
func TestFacadeDefaultTelemetry(t *testing.T) {
	dev := repro.NewMemDevice(16384)
	if _, err := repro.Format(dev); err != nil {
		t.Fatal(err)
	}
	fs, err := repro.Mount(dev, repro.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	if fs.Telemetry() != repro.DefaultTelemetry() {
		t.Fatal("zero-value Config should feed DefaultTelemetry()")
	}
}
