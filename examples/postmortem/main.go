// Post-mortem testing: the paper notes that the recorded sequence and
// outputs make the shadow "a valuable post-error testing tool" (§4.3) —
// replaying the trace against the shadow pinpoints whether the base's
// recorded outputs were wrong, the kind of input "often missed by testing
// frameworks". "Disagreements between the base and shadow indicate bugs in
// the base or missing conditions in the shadow. ... Either way, reporting
// the discrepancies is necessary."
//
// This example records a live session in which the base silently misreports
// one write's byte count (a NoCrash bug from Table 1's largest bucket),
// then runs the differential post-mortem: constrained replay names the
// exact operation where the base lied.
//
//	go run ./examples/postmortem
package main

import (
	"fmt"
	"log"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/fsapi"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/shadowfs"
	"repro/internal/workload"
)

func main() {
	dev := blockdev.NewMem(16384)
	sb, err := mkfs.Format(dev, mkfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer base.Kill()

	// Record a session: the application's operations with the base's
	// outcomes — exactly what the RAE supervisor keeps in its log.
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: 2024, NumOps: 300, Superblock: sb,
	})
	var recorded []*oplog.Op
	lied := false
	for i, rec := range trace {
		op := rec.Clone()
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		_ = oplog.Apply(base, op)
		if !lied && i > 100 && op.Kind == oplog.KWrite && op.Errno == 0 && op.RetN > 1 {
			op.RetN-- // the base's silent lie to the application
			lied = true
			fmt.Printf("planted base bug at %s (reported one byte short)\n", op)
		}
		if op.Kind.Mutating() {
			recorded = append(recorded, op)
		}
	}
	if !lied {
		log.Fatal("workload produced no suitable write to corrupt")
	}
	fmt.Printf("recorded %d operations from the live session\n\n", len(recorded))

	// Post-mortem: replay the recorded sequence on a shadow over a fresh
	// image of the same geometry, cross-checking every recorded outcome.
	shadowDev := blockdev.NewMem(16384)
	if _, err := mkfs.Format(shadowDev, mkfs.Options{}); err != nil {
		log.Fatal(err)
	}
	sh, err := shadowfs.New(shadowDev, shadowfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sh.Replay(shadowfs.ReplayInput{
		Ops:     recorded,
		BaseFDs: map[fsapi.FD]uint32{},
		// Keep going past disagreements: we want the full report.
		StopOnDiscrepancy: false,
	})
	if err != nil {
		log.Fatalf("post-mortem replay failed: %v", err)
	}
	fmt.Printf("shadow re-executed %d operations (%d skipped as base-time errors)\n",
		res.OpsReplayed, res.OpsSkipped)
	fmt.Printf("shadow ran %d runtime checks during the replay\n", res.ChecksRun)
	if len(res.Discrepancies) == 0 {
		log.Fatal("post-mortem found nothing — the planted bug escaped!")
	}
	fmt.Printf("\ndiscrepancy report (%d findings):\n", len(res.Discrepancies))
	for _, d := range res.Discrepancies {
		fmt.Println("  ", d)
	}
	fmt.Println("\nverdict: the base misreported the write; the shadow's outcome is the correct one")
}
