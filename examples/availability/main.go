// Availability comparison: a long-lived service keeps working across a
// recurring deterministic bug under RAE, while the status-quo strategies
// either surface failures to the application (crash-restart) or livelock on
// re-execution and degrade (naive replay). This regenerates the E5
// experiment interactively with a narrative.
//
//	go run ./examples/availability [-ops 2000]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	ops := flag.Int("ops", 2000, "operations per run")
	seed := flag.Int64("seed", 7, "workload and bug seed")
	flag.Parse()

	fmt.Printf("service workload: %d metadata-heavy operations\n", *ops)
	fmt.Println("planted bug: deterministic kernel panic on mkdir of any mailbox directory")
	fmt.Println("the same trace and bug stream run under three failure-handling strategies:")
	fmt.Println()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tcorrect outcomes\tapp failures\trecoveries\tdegraded\tfds lost\tdowntime")
	for _, mode := range []core.Mode{core.ModeRAE, core.ModeCrashRestart, core.ModeNaiveReplay} {
		r, err := experiments.Availability(mode, *ops, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "availability: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%d\t%d\t%d\t%d\t%v\n",
			r.Mode, r.Completed, r.Ops, r.AppFailures, r.Recoveries,
			r.Degradations, r.FDsLost, r.Downtime)
	}
	w.Flush()

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println(" - rae: every operation returns the specification outcome; the bug is invisible")
	fmt.Println(" - crash-restart: the first crash invalidates descriptors and loses buffered")
	fmt.Println("   files, so the application's subsequent operations diverge from its view")
	fmt.Println(" - naive-replay: re-executing the recorded prefix re-triggers the deterministic")
	fmt.Println("   bug (the §2.2 conflict), so every recovery degrades to crash-restart")
}
