// Quickstart: mount an RAE-supervised filesystem through the public API,
// use it like any filesystem, plant a deterministic kernel-crash bug, and
// watch the shadow mask it transparently.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. A 64 MiB in-memory device, formatted with the shared layout.
	dev := repro.NewMemDevice(16384)
	if _, err := repro.Format(dev); err != nil {
		log.Fatal(err)
	}

	// 2. Plant a bug: every rename of a path containing "invoice" panics in
	// the base filesystem, deterministically — re-running it would panic
	// again, which is exactly the case crash-and-retry cannot handle.
	bugs := repro.NewFaultRegistry(42)
	bugs.Arm(&repro.FaultSpecimen{
		ID:            "quickstart-npe",
		Class:         repro.BugCrash,
		Deterministic: true,
		Op:            "rename",
		PathSubstr:    "invoice",
	})

	// 3. Mount under RAE supervision.
	fs, err := repro.Mount(dev, repro.Config{Base: repro.BaseOptions{Injector: bugs}})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Ordinary use.
	must(fs.Mkdir("/inbox", 0o755))
	fd, err := fs.Create("/inbox/invoice-draft.txt", 0o644)
	must(err)
	_, err = fs.WriteAt(fd, 0, []byte("Total due: $42\n"))
	must(err)
	must(fs.Close(fd))

	// 5. This rename triggers the planted panic inside the base. The
	// application — this program — just sees it succeed.
	must(fs.Rename("/inbox/invoice-draft.txt", "/inbox/invoice-final.txt"))
	fmt.Println("rename succeeded (the base filesystem panicked; the shadow completed it)")

	// 6. The result is real: read the file back through its new name.
	fd, err = fs.Open("/inbox/invoice-final.txt")
	must(err)
	data, err := fs.ReadAt(fd, 0, 100)
	must(err)
	must(fs.Close(fd))
	fmt.Printf("content after recovery: %q\n", data)

	st := fs.Stats()
	fmt.Printf("recoveries: %d, panics contained: %d, app-visible failures: %d\n",
		st.Recoveries, st.PanicsCaught, st.AppFailures)

	must(fs.Unmount())
	if rep := repro.Check(dev); !rep.Clean() {
		log.Fatal("image unclean after unmount")
	}
	fmt.Println("unmounted cleanly; image passes fsck")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
