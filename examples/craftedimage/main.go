// Crafted-image attack: a maliciously crafted filesystem image that passes
// a checksum-only look can crash a performance-oriented filesystem (§2.1:
// "a user mounts a crafted disk image and issues operations to trigger a
// null-pointer dereference ... such images can bypass FSCK"). The shadow
// side of RAE refuses to execute over an image its full structural checker
// rejects, and diagnoses exactly what was wrong.
//
//	go run ./examples/craftedimage
package main

import (
	"fmt"
	"log"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsck"
	"repro/internal/mkfs"
	"repro/internal/shadowfs"
)

func main() {
	// Build a legitimate image with some content.
	dev := blockdev.NewMem(4096)
	sb, err := mkfs.Format(dev, mkfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{})
	must(err)
	must(fs.Mkdir("/home", 0o755))
	fd, err := fs.Create("/home/data.bin", 0o644)
	must(err)
	_, err = fs.WriteAt(fd, 0, make([]byte, 3*disklayout.BlockSize))
	must(err)
	must(fs.Close(fd))
	must(fs.Unmount())

	// The attacker edits the image offline: the file's first block pointer
	// is redirected at the inode table, and the record is re-checksummed so
	// a naive integrity check still passes.
	craft(dev, sb)
	fmt.Println("image crafted: /home/data.bin now maps a metadata block as file data")

	// The base (performance posture: no deep validation on the hot path)
	// mounts the image happily.
	fs2, err := basefs.Mount(dev, basefs.Options{})
	must(err)
	fd, err = fs2.Open("/home/data.bin")
	must(err)
	// Writing through the lie would scribble over the block bitmap; the
	// base's last-line pointer guard (the block_validity analogue) catches
	// it only at IO time, as a runtime error — under RAE this is a recovery
	// trigger, and the recovery's fsck then condemns the image.
	_, werr := fs2.WriteAt(fd, 0, []byte("overwrite the inode table"))
	fmt.Printf("base write through crafted pointer: %v\n", werr)
	fs2.Kill()

	// The shadow never gets that far: its constructor runs the full checker
	// and rejects the image with a diagnosis.
	_, serr := shadowfs.New(dev, shadowfs.Options{})
	fmt.Printf("shadow refuses the image: %v\n", serr)

	// The checker's report names every problem.
	rep := fsck.Check(dev)
	fmt.Printf("fsck found %d problems:\n", len(rep.Problems))
	for _, p := range rep.Problems {
		fmt.Println("  ", p)
	}
}

// craft redirects the first data pointer of /home/data.bin at a bitmap
// block and re-checksums the inode record.
func craft(dev *blockdev.Mem, sb *disklayout.Superblock) {
	for ino := uint32(1); ino < sb.NumInodes; ino++ {
		blk, off := sb.InodeLoc(ino)
		b, err := dev.ReadBlock(blk)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
		if err != nil || !rec.IsFile() || rec.Direct[0] == 0 {
			continue
		}
		rec.Direct[0] = sb.BlockBitmapStart // metadata block as file data
		disklayout.PutInode(b[off:], rec)   // valid checksum: "plausible" image
		if err := dev.WriteBlock(blk, b); err != nil {
			log.Fatal(err)
		}
		return
	}
	log.Fatal("no file inode found to craft")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
