// Command shadowreplay is the offline post-error testing tool of §4.3: it
// takes a filesystem image (the trusted on-disk state) and a serialized
// recovery input (the recorded operation sequence with the base's outcomes,
// as dumped by core.FS.DumpLog), re-executes the sequence on the shadow in
// constrained mode, and reports every discrepancy between the base's
// recorded behavior and the shadow's. With -apply, the shadow's sealed
// update is written back to the image, producing the recovered state.
//
// With -stream, the replay runs through the incremental Replayer instead:
// the op sequence is consumed in batches, the resulting block images are
// emitted as sealed handoff chunks as replay progresses, and the chunk
// stream plus final manifest are verified and assembled exactly as the
// recovery engine's install stage would — with per-stage timings printed
// from a telemetry sink.
//
// Usage:
//
//	shadowreplay -img disk.img -trace trace.bin [-stream] [-apply] [-stop]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/blockdev"
	"repro/internal/fsapi"
	"repro/internal/handoff"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/shadowfs"
	"repro/internal/telemetry"
)

func main() {
	img := flag.String("img", "", "filesystem image (trusted on-disk state)")
	trace := flag.String("trace", "", "serialized recovery input (core.FS.DumpLog output)")
	apply := flag.Bool("apply", false, "write the shadow's update back to the image")
	stop := flag.Bool("stop", false, "abort on the first discrepancy")
	stream := flag.Bool("stream", false, "replay incrementally through the chunked handoff path")
	flag.Parse()
	if *img == "" || *trace == "" {
		fmt.Fprintln(os.Stderr, "shadowreplay: -img and -trace are required")
		flag.Usage()
		os.Exit(2)
	}
	dev, err := blockdev.OpenFile(*img, 0, false)
	check(err)
	defer dev.Close()

	// The image must first reach its stable point: replay the journal as a
	// mount would.
	_, st, err := mkfs.Recover(dev)
	check(err)
	if st.Committed > 0 {
		fmt.Printf("journal: replayed %d transactions\n", st.Committed)
	}

	raw, err := os.ReadFile(*trace)
	check(err)
	ops, fds, clock, err := oplog.DecodeSequence(raw)
	check(err)
	fmt.Printf("trace: %d operations, %d stable-point descriptors, clock %d\n",
		len(ops), len(fds), clock)

	if *stream {
		streamReplay(dev, ops, fds, clock, *img, *apply, *stop)
		return
	}

	sh, err := shadowfs.New(dev, shadowfs.Options{})
	check(err)
	res, err := sh.Replay(shadowfs.ReplayInput{
		Ops:               ops,
		BaseFDs:           fds,
		StartClock:        clock,
		StopOnDiscrepancy: *stop,
	})
	if res != nil {
		fmt.Printf("replayed %d operations (%d skipped), %d runtime checks, %d overlay blocks\n",
			res.OpsReplayed, res.OpsSkipped, res.ChecksRun, res.OverlayBlocks)
		if len(res.Discrepancies) == 0 {
			fmt.Println("no discrepancies: the base's recorded behavior matches the shadow")
		} else {
			fmt.Printf("%d discrepancies (bugs in the base or missing conditions in the shadow):\n",
				len(res.Discrepancies))
			for _, d := range res.Discrepancies {
				fmt.Println("  ", d)
			}
		}
	}
	check(err)

	if *apply {
		for _, blk := range res.Update.SortedBlocks() {
			check(dev.WriteBlock(blk, res.Update.Blocks[blk]))
		}
		check(dev.Flush())
		fmt.Printf("applied %d blocks to %s\n", len(res.Update.Blocks), *img)
	}
}

// streamReplayBatch is the feed granularity, matching the recovery engine.
const streamReplayBatch = 256

// streamReplay drives the incremental Replayer over the decoded sequence,
// collecting sealed chunks as they are emitted, then verifies and assembles
// the stream the way the engine's install stage would. Stage durations are
// recorded in (and printed from) an isolated telemetry sink, so the output
// matches the recovery.stage.* histograms a live supervisor exports.
func streamReplay(dev blockdev.Device, ops []*oplog.Op, fds map[fsapi.FD]uint32,
	clock uint64, img string, apply, stop bool) {
	sink := telemetry.New()
	observe := func(stage string, d time.Duration) {
		sink.Histogram("recovery.stage." + stage + "_ns").Observe(d)
	}

	t := time.Now()
	sh, err := shadowfs.New(dev, shadowfs.Options{})
	observe("fsck", time.Since(t))
	check(err)
	rep := shadowfs.NewReplayer(sh, shadowfs.ReplayerKey{}, stop)

	var chunks []*handoff.Chunk
	t = time.Now()
	check(rep.Seed(fds, clock))
	for i := 0; i < len(ops); i += streamReplayBatch {
		end := i + streamReplayBatch
		if end > len(ops) {
			end = len(ops)
		}
		check(rep.Feed(ops[i:end]))
		if c := rep.EmitChunk(); c != nil {
			chunks = append(chunks, c)
		}
	}
	last, manifest, _, err := rep.Finish(nil)
	check(err)
	if last != nil {
		chunks = append(chunks, last)
	}
	observe("replay", time.Since(t))

	t = time.Now()
	update, err := handoff.Assemble(chunks, manifest)
	observe("install", time.Since(t))
	check(err)

	blocks := 0
	for _, c := range chunks {
		blocks += len(c.Blocks)
	}
	fmt.Printf("streamed %d chunks (%d block images, %d net blocks), manifest chain %#x verified\n",
		len(chunks), blocks, len(update.Blocks), manifest.Chain)
	fmt.Printf("replayed %d operations (%d skipped), %d overlay blocks\n",
		rep.OpsReplayed(), rep.OpsSkipped(), sh.OverlayBlocks())
	if ds := rep.Discrepancies(); len(ds) > 0 {
		fmt.Printf("%d discrepancies:\n", len(ds))
		for _, d := range ds {
			fmt.Println("  ", d)
		}
	} else {
		fmt.Println("no discrepancies: the base's recorded behavior matches the shadow")
	}

	fmt.Println("-- per-stage timings (telemetry) --")
	snap := sink.Snapshot()
	for _, stage := range []string{"fsck", "replay", "install"} {
		h := snap.Histograms["recovery.stage."+stage+"_ns"]
		fmt.Printf("  %-8s %12v\n", stage, time.Duration(h.Sum))
	}

	if apply {
		for _, blk := range update.SortedBlocks() {
			check(dev.WriteBlock(blk, update.Blocks[blk]))
		}
		check(dev.Flush())
		fmt.Printf("applied %d blocks to %s\n", len(update.Blocks), img)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "shadowreplay: %v\n", err)
		os.Exit(1)
	}
}
