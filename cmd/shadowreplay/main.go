// Command shadowreplay is the offline post-error testing tool of §4.3: it
// takes a filesystem image (the trusted on-disk state) and a serialized
// recovery input (the recorded operation sequence with the base's outcomes,
// as dumped by core.FS.DumpLog), re-executes the sequence on the shadow in
// constrained mode, and reports every discrepancy between the base's
// recorded behavior and the shadow's. With -apply, the shadow's sealed
// update is written back to the image, producing the recovered state.
//
// Usage:
//
//	shadowreplay -img disk.img -trace trace.bin [-apply] [-stop]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blockdev"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/shadowfs"
)

func main() {
	img := flag.String("img", "", "filesystem image (trusted on-disk state)")
	trace := flag.String("trace", "", "serialized recovery input (core.FS.DumpLog output)")
	apply := flag.Bool("apply", false, "write the shadow's update back to the image")
	stop := flag.Bool("stop", false, "abort on the first discrepancy")
	flag.Parse()
	if *img == "" || *trace == "" {
		fmt.Fprintln(os.Stderr, "shadowreplay: -img and -trace are required")
		flag.Usage()
		os.Exit(2)
	}
	dev, err := blockdev.OpenFile(*img, 0, false)
	check(err)
	defer dev.Close()

	// The image must first reach its stable point: replay the journal as a
	// mount would.
	_, st, err := mkfs.Recover(dev)
	check(err)
	if st.Committed > 0 {
		fmt.Printf("journal: replayed %d transactions\n", st.Committed)
	}

	raw, err := os.ReadFile(*trace)
	check(err)
	ops, fds, clock, err := oplog.DecodeSequence(raw)
	check(err)
	fmt.Printf("trace: %d operations, %d stable-point descriptors, clock %d\n",
		len(ops), len(fds), clock)

	sh, err := shadowfs.New(dev, shadowfs.Options{})
	check(err)
	res, err := sh.Replay(shadowfs.ReplayInput{
		Ops:               ops,
		BaseFDs:           fds,
		StartClock:        clock,
		StopOnDiscrepancy: *stop,
	})
	if res != nil {
		fmt.Printf("replayed %d operations (%d skipped), %d runtime checks, %d overlay blocks\n",
			res.OpsReplayed, res.OpsSkipped, res.ChecksRun, res.OverlayBlocks)
		if len(res.Discrepancies) == 0 {
			fmt.Println("no discrepancies: the base's recorded behavior matches the shadow")
		} else {
			fmt.Printf("%d discrepancies (bugs in the base or missing conditions in the shadow):\n",
				len(res.Discrepancies))
			for _, d := range res.Discrepancies {
				fmt.Println("  ", d)
			}
		}
	}
	check(err)

	if *apply {
		for _, blk := range res.Update.SortedBlocks() {
			check(dev.WriteBlock(blk, res.Update.Blocks[blk]))
		}
		check(dev.Flush())
		fmt.Printf("applied %d blocks to %s\n", len(res.Update.Blocks), *img)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "shadowreplay: %v\n", err)
		os.Exit(1)
	}
}
