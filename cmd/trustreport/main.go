// Command trustreport quantifies the trusted computing base of the RAE
// deployment, the accounting the paper calls for in §4.3: "We expect to
// quantify the code we trust (i.e., reused)."
//
// It walks the repository's Go sources, counts non-blank non-comment lines
// per package, and groups packages into trust classes:
//
//   - trusted-correct: the shadow side and everything it relies on to be
//     right (shadowfs, fsck, model, and the shared format/API codecs) plus
//     the lean hand-off interface;
//   - trusted-reused: base code paths recovery reuses (journal replay,
//     mount, cache Install) — the paper's "reused" trust;
//   - untrusted: the performance-oriented base and its machinery, whose
//     bugs RAE exists to mask;
//   - harness: workloads, experiments, injection — test apparatus.
//
// Usage: trustreport [-root .]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

var trustClass = map[string]string{
	".":                    "trusted-reused", // the public facade
	"internal/shadowfs":    "trusted-correct",
	"internal/fsck":        "trusted-correct",
	"internal/model":       "trusted-correct",
	"internal/disklayout":  "trusted-correct",
	"internal/fsapi":       "trusted-correct",
	"internal/fserr":       "trusted-correct",
	"internal/handoff":     "trusted-correct",
	"internal/oplog":       "trusted-correct",
	"internal/journal":     "trusted-reused",
	"internal/mkfs":        "trusted-reused",
	"internal/core":        "trusted-reused",
	"internal/blockdev":    "trusted-reused",
	"internal/basefs":      "untrusted",
	"internal/cache":       "untrusted",
	"internal/faultinject": "harness",
	"internal/workload":    "harness",
	"internal/difftest":    "harness",
	"internal/experiments": "harness",
	"internal/bugstudy":    "harness",
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	perPkg := map[string]int{}
	perPkgTests := map[string]int{}
	err := filepath.Walk(*root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(*root, path)
		if err != nil {
			return err
		}
		pkg := filepath.Dir(rel)
		n, err := countCode(path)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, "_test.go") {
			perPkgTests[pkg] += n
		} else {
			perPkg[pkg] += n
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "trustreport: %v\n", err)
		os.Exit(1)
	}

	classTotals := map[string]int{}
	classTests := map[string]int{}
	var pkgs []string
	for pkg := range perPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	fmt.Printf("%-26s %-16s %8s %8s\n", "package", "trust class", "code", "tests")
	for _, pkg := range pkgs {
		class := trustClass[pkg]
		if class == "" {
			switch {
			case strings.HasPrefix(pkg, "cmd/"), strings.HasPrefix(pkg, "examples/"):
				class = "harness"
			default:
				class = "unclassified"
			}
		}
		fmt.Printf("%-26s %-16s %8d %8d\n", pkg, class, perPkg[pkg], perPkgTests[pkg])
		classTotals[class] += perPkg[pkg]
		classTests[class] += perPkgTests[pkg]
	}
	fmt.Println()
	fmt.Printf("%-26s %8s %8s\n", "trust class", "code", "tests")
	for _, class := range []string{"trusted-correct", "trusted-reused", "untrusted", "harness", "unclassified"} {
		if classTotals[class] == 0 && classTests[class] == 0 {
			continue
		}
		fmt.Printf("%-26s %8d %8d\n", class, classTotals[class], classTests[class])
	}
	tcb := classTotals["trusted-correct"] + classTotals["trusted-reused"]
	all := 0
	for _, n := range classTotals {
		all += n
	}
	fmt.Printf("\ntrusted computing base: %d of %d non-test lines (%.0f%%)\n",
		tcb, all, float64(tcb)/float64(all)*100)
}

// countCode counts non-blank lines outside comments. Block comments are
// tracked coarsely (a /* ... */ spanning code lines is rare in this tree).
func countCode(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	inBlock := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		if strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		n++
	}
	return n, sc.Err()
}
