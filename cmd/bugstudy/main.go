// Command bugstudy regenerates the paper's Table 1 and Figure 1 from the
// structured bug corpus (experiments E1 and E2), and can cross-check the
// static study against the dynamic torture campaign.
//
// Usage:
//
//	bugstudy [-table1] [-fig1] [-torture] [-torture-seed N]
//
// With no flags, both artifacts are printed. -torture appends a reduced-tier
// campaign run: the study claims most runtime bugs are detectable and
// recoverable, and the campaign is the dynamic evidence — on a healthy tree
// it must report zero open signatures.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bugstudy"
	"repro/internal/torture"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table 1 only")
	fig1 := flag.Bool("fig1", false, "print Figure 1 only")
	runTorture := flag.Bool("torture", false, "append a reduced-tier torture campaign cross-check")
	tortureSeed := flag.Int64("torture-seed", 1, "seed for the -torture campaign")
	flag.Parse()
	both := !*table1 && !*fig1
	corpus := bugstudy.Corpus()
	if *table1 || both {
		fmt.Println("Table 1. Study of filesystem bugs (Linux ext4).")
		fmt.Print(bugstudy.RenderTable1(bugstudy.Table1(corpus)))
		det, total := bugstudy.DetectableDeterministic(corpus)
		fmt.Printf("detectable deterministic bugs (Crash+WARN): %d/%d\n\n", det, total)
	}
	if *fig1 || both {
		fmt.Println("Figure 1. Number of deterministic bugs by the year.")
		fmt.Print(bugstudy.RenderFigure1(bugstudy.Figure1(corpus)))
	}
	if *runTorture {
		fmt.Println()
		fmt.Println("Dynamic cross-check: reduced-tier torture campaign.")
		res, err := torture.Run(torture.ReducedTier(*tortureSeed))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bugstudy: torture: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("seed=%d cases=%d unique signatures=%d elapsed=%s\n",
			*tortureSeed, res.Cases, len(res.Unique), res.Elapsed.Round(time.Millisecond))
		for _, f := range res.Unique {
			fmt.Printf("  SIG %s\n", f.Signature())
		}
		if len(res.Unique) > 0 {
			os.Exit(1)
		}
	}
}
