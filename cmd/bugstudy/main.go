// Command bugstudy regenerates the paper's Table 1 and Figure 1 from the
// structured bug corpus (experiments E1 and E2).
//
// Usage:
//
//	bugstudy [-table1] [-fig1]
//
// With no flags, both artifacts are printed.
package main

import (
	"flag"
	"fmt"

	"repro/internal/bugstudy"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table 1 only")
	fig1 := flag.Bool("fig1", false, "print Figure 1 only")
	flag.Parse()
	both := !*table1 && !*fig1
	corpus := bugstudy.Corpus()
	if *table1 || both {
		fmt.Println("Table 1. Study of filesystem bugs (Linux ext4).")
		fmt.Print(bugstudy.RenderTable1(bugstudy.Table1(corpus)))
		det, total := bugstudy.DetectableDeterministic(corpus)
		fmt.Printf("detectable deterministic bugs (Crash+WARN): %d/%d\n\n", det, total)
	}
	if *fig1 || both {
		fmt.Println("Figure 1. Number of deterministic bugs by the year.")
		fmt.Print(bugstudy.RenderFigure1(bugstudy.Figure1(corpus)))
	}
}
