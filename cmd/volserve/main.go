// Command volserve is the minimal multi-volume driver for the serving layer
// (internal/volmgr): one supervisor process hosting N isolated tenants. It
// creates a fleet of volumes under a single manager — shared device pool,
// shared cache budget with the miss-driven rebalancer, shared scrub workers,
// per-tenant QoS — runs a steady metaheavy workload on every volume, and
// optionally arms a deterministic fault storm (recurring crash specimen plus
// per-IO device latency) against vol0 to demonstrate isolation: the storm
// tenant recovers over and over while its neighbors never notice.
//
// Usage:
//
//	volserve -volumes 8 -ops 2000            run the fleet, print the rollup
//	volserve -volumes 2 -ops 500 -storm      CI smoke: one tenant under storm
//	volserve -listen :5640                   ...and serve the fleet over fswire
//	                                         (attach by volume name: vol0, vol1, ...)
//	volserve -http :8080                     ...and serve the /fleet rollup over HTTP
//	volserve -rate 500 -burst 64             per-tenant QoS (ops/sec token bucket)
//
// Exit status is non-zero if any healthy volume recorded a recovery or the
// storm volume surfaced an application failure — the two invariants the
// serving layer exists to hold.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/fswire"
	"repro/internal/mkfs"
	"repro/internal/volmgr"
	"repro/internal/workload"
)

func main() {
	volumes := flag.Int("volumes", 8, "number of tenant volumes")
	ops := flag.Int("ops", 2000, "operations per volume")
	seed := flag.Int64("seed", 1, "workload and fault seed")
	storm := flag.Bool("storm", false, "arm a deterministic fault storm on vol0")
	rate := flag.Float64("rate", 0, "per-tenant QoS rate in ops/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-tenant QoS burst (0 = rate-derived default)")
	cache := flag.Int("cache", 0, "shared clean-cache budget in blocks (0 = 96/volume)")
	listen := flag.String("listen", "", "serve the fleet over the fswire protocol at this address")
	httpAddr := flag.String("http", "", "serve the fleet rollup at this address under /fleet")
	asJSON := flag.Bool("json", false, "emit the final rollup as JSON")
	flag.Parse()

	if *volumes < 1 {
		fmt.Fprintln(os.Stderr, "volserve: need at least one volume")
		os.Exit(2)
	}
	budget := *cache
	if budget == 0 {
		budget = 96 * *volumes
	}
	cfg := volmgr.Config{
		PoolBlocks:        uint32(*volumes) * experiments.MultiTenantVolumeBlocks,
		CacheBudgetBlocks: budget,
		CacheMinPerVolume: 32,
		RebalanceInterval: 25 * time.Millisecond,
		ScrubInterval:     200 * time.Millisecond,
		ScrubWorkers:      2,
	}
	if *rate > 0 {
		cfg.DefaultQoS = volmgr.QoSConfig{
			OpsPerSec: *rate, Burst: *burst,
			MaxWait: 50 * time.Millisecond, MaxQueueDepth: 256,
		}
	}
	m, err := volmgr.New(cfg)
	check(err)
	defer m.Shutdown()

	vols := make([]*volmgr.Volume, *volumes)
	for i := range vols {
		vc := volmgr.VolumeConfig{Blocks: experiments.MultiTenantVolumeBlocks}
		if *storm && i == 0 {
			reg := faultinject.NewRegistry(*seed)
			reg.Arm(&faultinject.Specimen{
				ID: "volserve-storm", Class: faultinject.Crash,
				Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "box",
			})
			vc.Core.Base.Injector = reg
		}
		v, err := m.Create(fmt.Sprintf("vol%d", i), vc)
		check(err)
		if *storm && i == 0 {
			plan := blockdev.NewFaultPlan(*seed)
			plan.ReadLatency = 20 * time.Microsecond
			plan.WriteLatency = 20 * time.Microsecond
			v.Device().SetFaults(plan)
		}
		vols[i] = v
	}

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		check(err)
		srv := fswire.NewServer(fswire.Volumes(m), fswire.WithTelemetry(m.Telemetry()))
		go func() {
			fmt.Fprintf(os.Stderr, "volserve: serving fswire on %s (attach: vol0..vol%d)\n",
				ln.Addr(), *volumes-1)
			check(srv.Serve(ln))
		}()
	}
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
			snap := m.FleetSnapshot()
			if r.URL.Query().Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				_ = snap.WriteJSON(w)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteText(w)
		})
		go func() {
			fmt.Fprintf(os.Stderr, "volserve: serving fleet rollup on http://%s/fleet (?format=json)\n", *httpAddr)
			check(http.ListenAndServe(*httpAddr, mux))
		}()
	}

	// The geometry is deterministic for a given device size, so one throwaway
	// format yields the superblock every tenant's workload generator needs.
	sb, err := mkfs.Format(blockdev.NewMem(experiments.MultiTenantVolumeBlocks), mkfs.Options{})
	check(err)

	start := time.Now()
	var wg sync.WaitGroup
	for i, v := range vols {
		wg.Add(1)
		go func(i int, v *volmgr.Volume) {
			defer wg.Done()
			trace := workload.Generate(workload.Config{
				Profile: workload.MetaHeavy, Seed: *seed + int64(i)*101,
				NumOps: *ops, Superblock: sb, SyncEvery: 100,
			})
			workload.Drive(v, trace)
		}(i, v)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("volserve: %d volumes x %d ops in %v (%.0f op/s fleet-wide)\n",
		*volumes, *ops, elapsed.Round(time.Millisecond),
		float64(*volumes**ops)/elapsed.Seconds())
	bad := false
	for i, v := range vols {
		st := v.Stats()
		fmt.Printf("  %-8s recoveries=%d panics=%d appFailures=%d scrubs=%d\n",
			v.Name(), st.Recoveries, st.PanicsCaught, st.AppFailures, st.ScrubPasses)
		if i == 0 && *storm {
			if st.Recoveries == 0 {
				fmt.Fprintln(os.Stderr, "volserve: storm volume never recovered — storm did not fire")
				bad = true
			}
			if st.AppFailures > 0 {
				fmt.Fprintf(os.Stderr, "volserve: storm volume surfaced %d app failures\n", st.AppFailures)
				bad = true
			}
		} else if st.Recoveries > 0 {
			fmt.Fprintf(os.Stderr, "volserve: healthy volume %s recovered %d times — isolation breach\n",
				v.Name(), st.Recoveries)
			bad = true
		}
	}

	fmt.Println()
	snap := m.FleetSnapshot()
	if *asJSON {
		check(snap.WriteJSON(os.Stdout))
	} else {
		check(snap.WriteText(os.Stdout))
	}

	if *listen != "" || *httpAddr != "" {
		fmt.Fprintln(os.Stderr, "volserve: workload done; still serving (interrupt to exit)")
		select {}
	}
	check(m.Shutdown())
	if bad {
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "volserve: %v\n", err)
		os.Exit(1)
	}
}
