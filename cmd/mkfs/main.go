// Command mkfs formats a file-backed image with the shared on-disk layout,
// or upgrades an existing image's regular files to the extent layout.
//
// Usage:
//
//	mkfs -img disk.img -blocks 16384 [-inodes 4096] [-journal 64]
//	mkfs -img disk.img -blocks 16384 -upgrade
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blockdev"
	"repro/internal/mkfs"
)

func main() {
	img := flag.String("img", "", "path of the image file to create")
	blocks := flag.Uint("blocks", 16384, "image size in 4 KiB blocks")
	inodes := flag.Uint("inodes", 0, "inode table capacity (0 = derive from size)")
	journal := flag.Uint("journal", 0, "journal region length in blocks (0 = default 64)")
	upgrade := flag.Bool("upgrade", false, "convert an existing image's regular files to the extent layout instead of formatting")
	flag.Parse()
	if *img == "" {
		fmt.Fprintln(os.Stderr, "mkfs: -img is required")
		flag.Usage()
		os.Exit(2)
	}
	dev, err := blockdev.OpenFile(*img, uint32(*blocks), !*upgrade)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkfs: %v\n", err)
		os.Exit(1)
	}
	defer dev.Close()
	if *upgrade {
		n, err := mkfs.UpgradeExtents(dev)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkfs: upgrade: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d files converted to the extent layout\n", *img, n)
		return
	}
	sb, err := mkfs.Format(dev, mkfs.Options{
		NumInodes:     uint32(*inodes),
		JournalBlocks: uint32(*journal),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkfs: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d blocks (%d MiB), %d inodes, journal %d blocks, data region [%d,%d), backup superblock @%d\n",
		*img, sb.NumBlocks, sb.NumBlocks*4/1024, sb.NumInodes, sb.JournalLen,
		sb.DataStart, sb.BackupBlk(), sb.BackupBlk())
}
