// Command fsck checks a file-backed image with the shadow-grade structural
// checker and prints every problem found.
//
// Usage:
//
//	fsck -img disk.img [-replay] [-fix] [-workers n]
//
// -replay first replays the journal (what mount would do) so a cleanly
// crashed image checks clean. -workers selects the parallel checker's pool
// size (1 runs the sequential baseline; findings are identical either way).
//
// Exit codes follow the e2fsck-style contract:
//
//	0  image is clean
//	1  warnings only (benign inconsistencies, e.g. leaked blocks)
//	2  corruption found (structural damage; after -fix, damage that remains)
//	3  device unreadable (the image could not be checked at all)
//	4  usage or operational error (bad flags, repair write failure)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blockdev"
	"repro/internal/fsck"
	"repro/internal/mkfs"
)

func main() {
	img := flag.String("img", "", "path of the image file to check")
	replay := flag.Bool("replay", false, "replay the journal before checking")
	fix := flag.Bool("fix", false, "repair orphans, ghosts, leaks, and link counts")
	workers := flag.Int("workers", 8, "checker worker-pool size (1 = sequential)")
	flag.Parse()
	if *img == "" {
		fmt.Fprintln(os.Stderr, "fsck: -img is required")
		flag.Usage()
		os.Exit(4)
	}
	dev, err := blockdev.OpenFile(*img, 0, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
		os.Exit(3)
	}
	defer dev.Close()
	if *replay {
		if _, st, err := mkfs.Recover(dev); err != nil {
			fmt.Fprintf(os.Stderr, "fsck: journal replay: %v\n", err)
			os.Exit(3)
		} else if st.Committed > 0 {
			fmt.Printf("journal: replayed %d transactions (%d blocks)\n", st.Committed, st.Blocks)
		}
	}
	var rep *fsck.Report
	if *fix {
		// Repair runs the same rule engine as Check, so the report it returns
		// grades severity on the same thresholds and ExitCode below means the
		// same thing on both paths.
		var st fsck.RepairStats
		rep, st, err = fsck.Repair(dev)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsck: repair: %v\n", err)
			os.Exit(4)
		}
		fmt.Printf("repair: %d orphans freed (%d blocks), %d ghosts cleared, %d leaks freed, %d nlinks fixed\n",
			st.OrphansFreed, st.BlocksFreed, st.GhostsCleared, st.LeaksFreed, st.NlinksFixed)
	} else if *workers > 1 {
		rep = fsck.CheckParallel(dev, *workers)
	} else {
		rep = fsck.Check(dev)
	}
	for _, p := range rep.Problems {
		fmt.Println(p)
	}
	fmt.Printf("checked %d inodes, %d owned blocks, %d directories; %d checks run\n",
		rep.InodesChecked, rep.BlocksOwned, rep.DirsWalked, rep.ChecksRun)
	switch code := rep.ExitCode(); code {
	case 0:
		fmt.Println("image is clean")
	case 1:
		fmt.Printf("image has %d warnings\n", rep.Warnings())
		os.Exit(code)
	case 3:
		fmt.Println("image is UNREADABLE")
		os.Exit(code)
	default:
		fmt.Println("image is CORRUPT")
		os.Exit(code)
	}
}
