// Command fsck checks a file-backed image with the shadow-grade structural
// checker and prints every problem found.
//
// Usage:
//
//	fsck -img disk.img [-replay]
//
// -replay first replays the journal (what mount would do) so a cleanly
// crashed image checks clean.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blockdev"
	"repro/internal/fsck"
	"repro/internal/mkfs"
)

func main() {
	img := flag.String("img", "", "path of the image file to check")
	replay := flag.Bool("replay", false, "replay the journal before checking")
	fix := flag.Bool("fix", false, "repair orphans, ghosts, leaks, and link counts")
	flag.Parse()
	if *img == "" {
		fmt.Fprintln(os.Stderr, "fsck: -img is required")
		flag.Usage()
		os.Exit(2)
	}
	dev, err := blockdev.OpenFile(*img, 0, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
		os.Exit(1)
	}
	defer dev.Close()
	if *replay {
		if _, st, err := mkfs.Recover(dev); err != nil {
			fmt.Fprintf(os.Stderr, "fsck: journal replay: %v\n", err)
			os.Exit(1)
		} else if st.Committed > 0 {
			fmt.Printf("journal: replayed %d transactions (%d blocks)\n", st.Committed, st.Blocks)
		}
	}
	var rep *fsck.Report
	if *fix {
		var st fsck.RepairStats
		rep, st, err = fsck.Repair(dev)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsck: repair: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("repair: %d orphans freed (%d blocks), %d ghosts cleared, %d leaks freed, %d nlinks fixed\n",
			st.OrphansFreed, st.BlocksFreed, st.GhostsCleared, st.LeaksFreed, st.NlinksFixed)
	} else {
		rep = fsck.Check(dev)
	}
	for _, p := range rep.Problems {
		fmt.Println(p)
	}
	fmt.Printf("checked %d inodes, %d owned blocks, %d directories; %d checks run\n",
		rep.InodesChecked, rep.BlocksOwned, rep.DirsWalked, rep.ChecksRun)
	if !rep.Clean() {
		fmt.Println("image is CORRUPT")
		os.Exit(1)
	}
	fmt.Println("image is clean")
}
