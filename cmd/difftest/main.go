// Command difftest runs the §4.3 differential testing campaign from the
// command line: large volumes of generated workloads against the base or
// the shadow, with the executable specification as the oracle, reporting
// every discrepancy.
//
// Usage:
//
//	difftest [-subject base|shadow|both] [-seeds 8] [-ops 1000]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	subject := flag.String("subject", "both", "implementation under test: base, shadow, both")
	seeds := flag.Int("seeds", 8, "seeds per workload profile")
	ops := flag.Int("ops", 1000, "operations per run")
	flag.Parse()

	subjects := []experiments.Subject{}
	switch *subject {
	case "base":
		subjects = append(subjects, experiments.SubjectBase)
	case "shadow":
		subjects = append(subjects, experiments.SubjectShadow)
	case "both":
		subjects = append(subjects, experiments.SubjectBase, experiments.SubjectShadow)
	default:
		fmt.Fprintf(os.Stderr, "difftest: unknown subject %q\n", *subject)
		os.Exit(2)
	}
	failed := false
	for _, s := range subjects {
		start := time.Now()
		res, err := experiments.RunCampaign(experiments.CampaignConfig{
			Subject: s, Seeds: *seeds, OpsPerRun: *ops,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "difftest: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s vs specification: %d runs, %d ops, %d discrepancies (%.1fs)\n",
			s, res.Runs, res.OpsExecuted, len(res.Discrepancies), time.Since(start).Seconds())
		if len(res.Discrepancies) > 0 {
			failed = true
			fmt.Printf("  first: %s\n", res.FirstFailure)
			max := len(res.Discrepancies)
			if max > 10 {
				max = 10
			}
			for _, d := range res.Discrepancies[:max] {
				fmt.Printf("  %s\n", d)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("no discrepancies: implementations are observationally equivalent to the specification")
}
