// Command fsstats inspects telemetry snapshots from the observability
// subsystem (internal/telemetry): it renders saved JSON snapshots as
// human-readable text, and can generate a live snapshot by running a
// supervised demo workload — optionally serving it over HTTP in the
// expvar style.
//
// Usage:
//
//	fsstats -file snapshot.json           render a saved snapshot as text
//	fsstats -file snapshot.json -json     re-emit the snapshot as JSON
//	fsstats -merge a.json b.json ...      merge snapshots into one fleet rollup
//	fsstats -demo [-ops N] [-seed S]      run a workload, print its snapshot
//	fsstats -demo -listen :8080           ...and serve /stats until interrupted
//
// -merge is the fleet path: N per-volume snapshots (one per tenant, as the
// volume manager exports them) combine into a single rollup — counters sum,
// histograms merge bucket-exactly so fleet quantiles are real, events
// interleave in time order.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	file := flag.String("file", "", "snapshot JSON file to render ('-' for stdin)")
	merge := flag.Bool("merge", false, "merge the snapshot files given as arguments into one rollup")
	demo := flag.Bool("demo", false, "run a supervised demo workload and snapshot it")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	listen := flag.String("listen", "", "with -demo: serve the sink at this address under /stats")
	ops := flag.Int("ops", 2000, "with -demo: workload length")
	seed := flag.Int64("seed", 1, "with -demo: workload and bug seed")
	flag.Parse()

	switch {
	case *merge:
		mergeFiles(flag.Args(), *asJSON)
	case *file != "":
		renderFile(*file, *asJSON)
	case *demo:
		runDemo(*ops, *seed, *asJSON, *listen)
	default:
		fmt.Fprintln(os.Stderr, "fsstats: need -file, -merge, or -demo (see -h)")
		os.Exit(2)
	}
}

// mergeFiles rolls N saved snapshots up into one and prints it.
func mergeFiles(paths []string, asJSON bool) {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "fsstats: -merge needs snapshot files as arguments")
		os.Exit(2)
	}
	snaps := make([]telemetry.Snapshot, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		check(err)
		snap, err := telemetry.ReadSnapshot(f)
		f.Close()
		if err != nil {
			check(fmt.Errorf("%s: %w", path, err))
		}
		snaps = append(snaps, snap)
	}
	merged := telemetry.Merge(snaps...)
	fmt.Fprintf(os.Stderr, "fsstats: merged %d snapshots\n", len(snaps))
	if asJSON {
		check(merged.WriteJSON(os.Stdout))
		return
	}
	check(merged.WriteText(os.Stdout))
}

// renderFile loads a snapshot produced by Snapshot.WriteJSON and prints it.
func renderFile(path string, asJSON bool) {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		check(err)
		defer f.Close()
		in = f
	}
	snap, err := telemetry.ReadSnapshot(in)
	check(err)
	if asJSON {
		check(snap.WriteJSON(os.Stdout))
		return
	}
	check(snap.WriteText(os.Stdout))
}

// runDemo exercises every layer of a supervised filesystem — including one
// masked crash recovery — against an isolated sink, then prints or serves
// the resulting snapshot.
func runDemo(numOps int, seed int64, asJSON bool, listen string) {
	dev := blockdev.NewMem(16384)
	sb, err := mkfs.Format(dev, mkfs.Options{})
	check(err)

	reg := faultinject.NewRegistry(seed)
	reg.Arm(&faultinject.Specimen{
		ID: "fsstats-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "box",
	})

	sink := telemetry.New()
	sup, err := core.Mount(dev, core.Config{
		Base:      basefs.Options{Injector: reg},
		Telemetry: sink,
	})
	check(err)

	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: seed, NumOps: numOps,
		Superblock: sb, SyncEvery: 100,
	})
	for _, rec := range trace {
		op := rec.Clone()
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		_ = oplog.Apply(sup, op)
	}
	check(sup.Unmount())

	if listen != "" {
		mux := http.NewServeMux()
		mux.Handle("/stats", sink.Handler())
		fmt.Fprintf(os.Stderr, "fsstats: serving snapshot on http://%s/stats (?format=text)\n", listen)
		check(http.ListenAndServe(listen, mux))
		return
	}
	if asJSON {
		check(sink.Snapshot().WriteJSON(os.Stdout))
		return
	}
	check(sink.Snapshot().WriteText(os.Stdout))
	if tr, ok := sink.LastRecoveryTrace(); ok {
		fmt.Println()
		telemetry.WriteTraceTable(os.Stdout, tr)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsstats: %v\n", err)
		os.Exit(1)
	}
}
