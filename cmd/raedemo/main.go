// Command raedemo is a narrated end-to-end demonstration of Robust
// Alternative Execution: it mounts a supervised filesystem with a
// deterministic kernel-crash-style bug planted in the base, runs an
// application workload across the bug, and reports how the shadow masked
// every firing.
//
// Usage:
//
//	raedemo [-mode rae|crash-restart|naive-replay] [-ops 500] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	modeFlag := flag.String("mode", "rae", "failure handling: rae, crash-restart, naive-replay")
	ops := flag.Int("ops", 500, "workload length")
	seed := flag.Int64("seed", 1, "workload and bug seed")
	flag.Parse()

	var mode core.Mode
	switch *modeFlag {
	case "rae":
		mode = core.ModeRAE
	case "crash-restart":
		mode = core.ModeCrashRestart
	case "naive-replay":
		mode = core.ModeNaiveReplay
	default:
		fmt.Fprintf(os.Stderr, "raedemo: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	dev := blockdev.NewMem(16384)
	sb, err := mkfs.Format(dev, mkfs.Options{})
	check(err)
	fmt.Printf("formatted 64 MiB image: %d inodes, %d-block journal\n", sb.NumInodes, sb.JournalLen)

	reg := faultinject.NewRegistry(*seed)
	reg.Arm(&faultinject.Specimen{
		ID:            "demo-null-deref",
		Class:         faultinject.Crash,
		Deterministic: true,
		Op:            "mkdir",
		Point:         "entry",
		PathSubstr:    "box",
	})
	fmt.Println(`planted bug "demo-null-deref": deterministic kernel panic in mkdir of any *box* path`)

	sink := telemetry.New()
	sup, err := core.Mount(dev, core.Config{Mode: mode, Base: basefs.Options{Injector: reg}, Telemetry: sink})
	check(err)
	fmt.Printf("mounted under %s supervision\n\n", mode)

	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: *seed, NumOps: *ops, Superblock: sb, SyncEvery: 100,
	})
	correct := 0
	for _, rec := range trace {
		op := rec.Clone()
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		_ = oplog.Apply(sup, op)
		if op.Errno == rec.Errno && op.RetFD == rec.RetFD && op.RetIno == rec.RetIno && op.RetN == rec.RetN {
			correct++
		}
	}
	st := sup.Stats()
	fired := len(reg.Fired())
	fmt.Printf("workload: %d operations (metaheavy profile)\n", len(trace))
	fmt.Printf("bug fired %d times in the base filesystem\n", fired)
	fmt.Printf("operations with specification-correct outcomes: %d/%d\n", correct, len(trace))
	fmt.Printf("application-visible failures: %d\n", st.AppFailures)
	fmt.Printf("recoveries: %d (degraded: %d), panics contained: %d\n",
		st.Recoveries, st.Degradations, st.PanicsCaught)
	fmt.Printf("operations re-executed by the shadow: %d\n", st.OpsReplayed)
	fmt.Printf("operation log peak length: %d ops\n", st.PeakLogLen)
	fmt.Printf("descriptors invalidated: %d\n", st.FDsInvalidated)
	fmt.Printf("total recovery downtime: %v\n", st.TotalDowntime)
	if traces := sink.RecoveryTraces(); len(traces) > 0 {
		fmt.Printf("\nper-phase recovery traces (%d masked firing(s)):\n", len(traces))
		for _, tr := range traces {
			fmt.Println()
			telemetry.WriteTraceTable(os.Stdout, tr)
		}
	}
	snap := sink.Snapshot()
	printedHeader := false
	for _, stage := range []string{"plan", "reboot", "fsck", "replay", "install", "resume", "wall"} {
		h, ok := snap.Histograms["recovery.stage."+stage+"_ns"]
		if !ok || h.Count == 0 {
			continue
		}
		if !printedHeader {
			fmt.Println("\nrecovery engine stages (wall overlaps the others in the pipelined engine):")
			printedHeader = true
		}
		fmt.Printf("  %-8s n=%-3d mean=%-12v max=%v\n", stage, h.Count, h.Mean, h.Max)
	}
	if reused := snap.Counters["recovery.replay.reused_ops"]; reused > 0 {
		fmt.Printf("warm replayer reuse: %d already-replayed ops skipped across repeat faults\n", reused)
	}
	if evs := sink.Events(); len(evs) > 0 {
		fmt.Println("\nevent journal (last 10):")
		if len(evs) > 10 {
			evs = evs[len(evs)-10:]
		}
		for _, ev := range evs {
			fmt.Println(" ", ev)
		}
	}
	if d := sup.LastDiscrepancies(); len(d) > 0 {
		fmt.Printf("constrained-replay discrepancies (bugs in base or shadow!): %d\n", len(d))
		for _, x := range d {
			fmt.Println(" ", x)
		}
	}
	check(sup.Unmount())
	fmt.Println("\nunmounted cleanly; on-disk image is consistent")
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "raedemo: %v\n", err)
		os.Exit(1)
	}
}
