// Command shadowbench regenerates the quantitative experiment series as
// printed tables: common-case throughput (E3), recovery latency vs recorded
// sequence length (E4), availability under a deterministic bug stream (E5),
// recording overhead (E6), the extent-layout series (E16), and the networked
// serving series (E17).
//
// Usage:
//
//	shadowbench [-series thput|recovery|avail|overhead|extent|server|all] [-ops N] [-seed S] [-json]
//
// With -json, each series additionally writes BENCH_<series>.json — a flat
// machine-readable metric map (op/s, latency percentiles, bytes/s) — so the
// perf trajectory can be tracked across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// benchMetrics collects the active series' machine-readable numbers when
// -json is set; record is a no-op otherwise.
var benchMetrics map[string]float64

func record(key string, v float64) {
	if benchMetrics != nil {
		benchMetrics[key] = v
	}
}

func main() {
	series := flag.String("series", "all", "which series: thput, recovery, avail, overhead, fsync, ablate, latency, io, concurrency, fsck, multitenant, extent, server, all")
	ops := flag.Int("ops", 4000, "operations per measurement")
	seed := flag.Int64("seed", 1, "seed")
	stats := flag.Bool("stats", true, "print a telemetry snapshot after each series")
	jsonOut := flag.Bool("json", false, "also write BENCH_<series>.json per series")
	window := flag.Int("window", 16, "server series: pipelined client in-flight window")
	batch := flag.Int("batch", 8, "server series: write-coalescing cap in ops (<=1 disables)")
	minSpeedup := flag.Float64("minspeedup", 0, "server series: fail unless E18 pipelined op/s >= this x the E17 baseline op/s (0 = no gate)")
	flag.Parse()
	run := func(name string, f func()) {
		if *series != "all" && *series != name {
			return
		}
		// Each series starts from a clean process-global sink so its snapshot
		// reflects only that series' activity.
		telemetry.Default().Reset()
		if *jsonOut {
			benchMetrics = map[string]float64{}
		}
		f()
		if *jsonOut {
			writeJSON(name, *ops, *seed)
			benchMetrics = nil
		}
		if *stats {
			printSnapshot(name)
		}
	}
	run("thput", func() { thput(*ops, *seed) })
	run("recovery", func() { recovery(*seed) })
	run("avail", func() { avail(*ops, *seed) })
	run("overhead", func() { overhead(*ops, *seed) })
	run("fsync", func() { fsyncHeavy(*seed) })
	run("ablate", func() { ablate(*ops, *seed) })
	run("latency", func() { latency(*ops, *seed) })
	run("io", func() { ioTraffic(*ops, *seed) })
	run("concurrency", func() { concurrency(*ops, *seed) })
	run("fsck", func() { fsckScale(*seed) })
	run("multitenant", func() { multiTenant(*ops, *seed) })
	run("extent", func() { extent(*seed) })
	run("server", func() { server(*ops, *seed, *window, *batch, *minSpeedup) })
}

// server prints the E17 series: a volmgr fleet served over TCP loopback via
// the fswire protocol, concurrent remote clients, and a recurring fault
// storm on vol0. The claims: recoveries stay behind the wire (zero client-
// visible fault-class errors), healthy tenants never recover, and the wire
// counters quantify serving cost.
func server(ops int, seed int64, window, batch int, minSpeedup float64) {
	const volumes, clients = 4, 8
	fmt.Println("== E17: networked serving — remote clients vs a fleet under a fault storm ==")
	fmt.Printf("(%d fswire clients over TCP loopback, %d volumes, %d ops/client, metaheavy; storm = recurring crash on vol0)\n",
		clients, volumes, ops)
	r, err := experiments.Server(volumes, clients, ops, seed)
	check(err)
	fmt.Printf("clients: %d ops in %v (%.0f op/s end-to-end), %d fault-class errors observed (must be 0)\n",
		r.TotalOps, r.Elapsed.Round(time.Millisecond), r.OpsPerSec, r.ClientFaults)
	fmt.Printf("storm volume: %d recoveries masked, %d app failures (must be 0)\n",
		r.StormRecoveries, r.StormAppFailures)
	fmt.Printf("healthy volumes: %d recoveries (must be 0)\n", r.HealthyRecoveries)
	fmt.Printf("wire: %d ops, %d bytes (%.1f MB/s), %d error replies\n",
		r.WireOps, r.WireBytes, r.WireBytesPerSec/1e6, r.WireErrs)
	record("server.ops_per_sec", r.OpsPerSec)
	record("server.total_ops", float64(r.TotalOps))
	record("server.client_faults", float64(r.ClientFaults))
	record("server.storm_recoveries", float64(r.StormRecoveries))
	record("server.storm_app_failures", float64(r.StormAppFailures))
	record("server.healthy_recoveries", float64(r.HealthyRecoveries))
	record("server.wire_ops", float64(r.WireOps))
	record("server.wire_bytes_per_sec", r.WireBytesPerSec)
	record("server.wire_errs", float64(r.WireErrs))
	fmt.Println()

	fmt.Println("== E18: wire-protocol pipelining — sequential vs pipelined clients ==")
	fmt.Printf("(window %d, batch cap %d ops; each fleet phase a fresh healthy fleet, then the storm, then the wire floor)\n", window, batch)
	p, err := experiments.ServerPipelined(volumes, clients, ops, seed, window, batch)
	check(err)
	fmt.Printf("healthy fleet:  sequential %.0f op/s (%v)   pipelined %.0f op/s (%v)   speedup %.2fx\n",
		p.BaselineOpsPerSec, p.BaselineElapsed.Round(time.Millisecond),
		p.PipelinedOpsPerSec, p.PipelinedElapsed.Round(time.Millisecond), p.Speedup)
	fmt.Printf("storm fleet:    %.0f op/s pipelined, %d recoveries masked, %d app failures, %d healthy recoveries\n",
		p.StormOpsPerSec, p.StormRecoveries, p.StormAppFailures, p.HealthyRecoveries)
	fmt.Printf("wire floor:     sequential %.0f op/s   pipelined %.0f op/s   speedup %.2fx (served in-memory model)\n",
		p.FloorSeqOpsPerSec, p.FloorPipeOpsPerSec, p.FloorSpeedup)
	fmt.Printf("fault-class errors across all phases: %d (must be 0)\n", p.ClientFaults)
	fmt.Printf("wire: %d ops, %d writes coalesced into batches, %d stream chunks\n",
		p.WireOps, p.BatchedWrites, p.StreamChunks)
	vsE17 := 0.0
	if r.OpsPerSec > 0 {
		vsE17 = p.PipelinedOpsPerSec / r.OpsPerSec
	}
	fmt.Printf("pipelined fleet vs E17 baseline (PR 9 driver, storm included): %.0f vs %.0f op/s = %.1fx\n",
		p.PipelinedOpsPerSec, r.OpsPerSec, vsE17)
	record("server.pipelined_ops_per_sec", p.PipelinedOpsPerSec)
	record("server.sequential_ops_per_sec", p.BaselineOpsPerSec)
	record("server.pipeline_speedup", p.Speedup)
	record("server.pipeline_vs_e17", vsE17)
	record("server.pipelined_storm_ops_per_sec", p.StormOpsPerSec)
	record("server.floor_sequential_ops_per_sec", p.FloorSeqOpsPerSec)
	record("server.floor_pipelined_ops_per_sec", p.FloorPipeOpsPerSec)
	record("server.floor_speedup", p.FloorSpeedup)
	record("server.pipelined_client_faults", float64(p.ClientFaults))
	record("server.pipelined_storm_recoveries", float64(p.StormRecoveries))
	record("server.batched_writes", float64(p.BatchedWrites))
	record("server.stream_chunks", float64(p.StreamChunks))
	record("server.pipeline_window", float64(p.Window))
	record("server.pipeline_batch", float64(p.Batch))
	if minSpeedup > 0 && vsE17 < minSpeedup {
		fmt.Fprintf(os.Stderr, "shadowbench: pipelined fleet %.1fx the E17 baseline, below required %.1fx\n", vsE17, minSpeedup)
		os.Exit(1)
	}
	fmt.Println()
}

// writeJSON dumps the recorded metric map as BENCH_<series>.json in the
// current directory.
func writeJSON(series string, ops int, seed int64) {
	doc := struct {
		Series  string             `json:"series"`
		Ops     int                `json:"ops"`
		Seed    int64              `json:"seed"`
		Metrics map[string]float64 `json:"metrics"`
	}{series, ops, seed, benchMetrics}
	b, err := json.MarshalIndent(doc, "", "  ")
	check(err)
	name := fmt.Sprintf("BENCH_%s.json", series)
	check(os.WriteFile(name, append(b, '\n'), 0o644))
	fmt.Printf("-- wrote %s (%d metrics) --\n\n", name, len(benchMetrics))
}

// extent prints the E16 series: large-file sequential throughput on the
// extent layout vs the legacy bmap under a fixed per-IO service time, and
// the scoped metadata check's device-IO cost as the image grows 16x.
func extent(seed int64) {
	const fileMB = 16
	fmt.Println("== E16: extent layout — vectored sequential IO and metadata locality ==")
	fmt.Printf("(one %d MiB sequential file; per-IO device service time %v)\n",
		fileMB, experiments.ExtentIOLatency)
	rows, err := experiments.ExtentSequential(fileMB, experiments.ExtentIOLatency, seed)
	check(err)
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "layout", "write MB/s", "wr calls", "read MB/s", "rd calls")
	byLayout := map[string]experiments.ExtentSeqResult{}
	for _, r := range rows {
		byLayout[r.Layout] = r
		fmt.Printf("%-8s %12.1f %12d %12.1f %12d\n",
			r.Layout, r.WriteMBps, r.WriteCalls, r.ReadMBps, r.ReadCalls)
		record("extent.seq."+r.Layout+".write_bytes_per_sec", r.WriteMBps*1e6)
		record("extent.seq."+r.Layout+".read_bytes_per_sec", r.ReadMBps*1e6)
		record("extent.seq."+r.Layout+".write_calls", float64(r.WriteCalls))
		record("extent.seq."+r.Layout+".read_calls", float64(r.ReadCalls))
	}
	wSpeed := byLayout["extent"].WriteMBps / byLayout["bmap"].WriteMBps
	rSpeed := byLayout["extent"].ReadMBps / byLayout["bmap"].ReadMBps
	record("extent.seq.write_speedup", wSpeed)
	record("extent.seq.read_speedup", rSpeed)
	fmt.Printf("speedup: write %.1fx, read %.1fx (target >= 4x)\n\n", wSpeed, rSpeed)

	sizes := []uint32{65536, 262144, 1048576}
	fmt.Println("-- scoped metadata check vs image size (live data fixed: 4 MiB + 8 small files) --")
	srows, err := experiments.ExtentMetadataScale(sizes, 4, seed)
	check(err)
	fmt.Printf("%-12s %12s %14s %14s\n", "image blks", "scope blks", "scoped reads", "elapsed")
	minR, maxR := srows[0].ScopedReads, srows[0].ScopedReads
	for _, r := range srows {
		fmt.Printf("%-12d %12d %14d %14v\n", r.ImageBlocks, r.ScopeBlocks, r.ScopedReads, r.ScopedTime)
		record(fmt.Sprintf("extent.meta.scoped_reads.%d", r.ImageBlocks), float64(r.ScopedReads))
		if r.ScopedReads < minR {
			minR = r.ScopedReads
		}
		if r.ScopedReads > maxR {
			maxR = r.ScopedReads
		}
	}
	flat := float64(maxR) / float64(minR)
	record("extent.meta.flatness", flat)
	fmt.Printf("flatness across %dx image growth: max/min reads = %.2fx (target <= 1.10x)\n\n",
		sizes[len(sizes)-1]/sizes[0], flat)
}

// multiTenant prints the E14 series: a fleet of volumes under one volume
// manager, with a deterministic fault storm hitting volume 0 while its
// neighbors keep serving. The isolation claim is the healthy tenants' p99
// delta; the quota table is the cache-enforcement evidence.
func multiTenant(ops int, seed int64) {
	const volumes = 8
	fmt.Println("== E14: multi-tenant isolation under a fault storm ==")
	fmt.Printf("(%d volumes x %d ops, metaheavy; storm = recurring crash + %v/IO device latency on vol0)\n",
		volumes, ops, 20*time.Microsecond)
	res, err := experiments.MultiTenant(volumes, ops, seed)
	check(err)

	fmt.Printf("%-22s %14s %14s %10s\n", "healthy tenants", "baseline", "storm", "delta")
	fmt.Printf("%-22s %14v %14v %9.1f%%\n", "p50 op latency",
		res.BaselineHealthyP50, res.StormHealthyP50,
		pctDelta(res.BaselineHealthyP50, res.StormHealthyP50))
	fmt.Printf("%-22s %14v %14v %9.1f%%\n", "p99 op latency",
		res.BaselineHealthyP99, res.StormHealthyP99, res.HealthyP99DeltaPct)
	fmt.Println()

	fmt.Printf("storm volume: %d recoveries, %d app failures, downtime %v\n",
		res.StormRecoveries, res.StormAppFailures, res.StormDowntime)
	fmt.Printf("storm volume throughput: %.0f op/s (baseline %.0f op/s)\n",
		res.StormOpsPerSec, res.BaselineStormOpsSec)
	fmt.Printf("healthy-volume recoveries: %d (must be 0)\n", res.HealthyRecoveries)
	fmt.Println()

	fmt.Printf("cache rebalancer: %d passes, %d blocks moved; final quotas (blocks):\n",
		res.RebalancePasses, res.RebalancedBlocks)
	names := make([]string, 0, len(res.QuotaGauges))
	for name := range res.QuotaGauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-28s %6d\n", name, res.QuotaGauges[name])
	}
	fmt.Println()
}

// pctDelta is (b-a)/a as a percentage.
func pctDelta(a, b time.Duration) float64 {
	if a <= 0 {
		return 0
	}
	return (float64(b) - float64(a)) / float64(a) * 100
}

// fsckScale prints the E13 series: the parallel checker's worker scaling,
// the region-scoped check vs image size, and the recovery fsck stage at
// pool sizes 1 vs 8.
func fsckScale(seed int64) {
	fmt.Println("== E13: parallel, region-scoped fsck ==")
	fmt.Printf("(per-read device service time %v; image %d blocks)\n",
		experiments.FsckIOLatency, experiments.ImageBlocks)
	fmt.Println("(speedup combines worker parallelism with the parallel checker's")
	fmt.Println(" read-once block cache; the sequential baseline re-reads hot blocks)")
	rows, err := experiments.FsckParallelScale([]int{1, 2, 4, 8}, 3000, seed, experiments.FsckIOLatency)
	check(err)
	fmt.Printf("%-10s %14s %10s %12s %12s %10s\n", "workers", "elapsed", "speedup", "dev reads", "checks", "problems")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Workers)
		if r.Workers == 0 {
			label = "seq"
		}
		fmt.Printf("%-10s %14v %9.2fx %12d %12d %10d\n", label, r.Elapsed, r.Speedup, r.DevReads, r.ChecksRun, r.Problems)
	}
	fmt.Println()

	fmt.Println("-- region-scoped check vs image size (same write gap; dev reads = IO cost) --")
	srows, err := experiments.ScopedFsckScale([]uint32{16384, 65536}, 16, 1500, seed, 8, 0)
	check(err)
	fmt.Printf("%-12s %10s %12s %12s %12s %14s %14s\n",
		"image blks", "scope", "full reads", "scoped reads", "read ratio", "full", "scoped")
	for _, r := range srows {
		fmt.Printf("%-12d %10d %12d %12d %11.1fx %14v %14v\n",
			r.ImageBlocks, r.GapBlocks, r.FullReads, r.ScopedReads, r.ReadRatio, r.FullTime, r.ScopedTime)
	}
	fmt.Println()

	fmt.Println("-- recovery fsck stage: FsckWorkers 1 vs 8 --")
	fr, err := experiments.RecoveryFsckStage(512, seed, experiments.FsckIOLatency)
	check(err)
	fmt.Printf("fsck stage: %v (1 worker) -> %v (8 workers), %.2fx; recovery wall %v -> %v\n",
		fr.FsckSeq, fr.FsckPar, fr.Speedup, fr.WallSeq, fr.WallPar)
	fmt.Println()
}

// concurrency prints the E11 sweep: aggregate throughput of the bare base vs
// the RAE supervisor as the number of concurrent application goroutines
// grows, on a read-mostly and an adversarial mixed (soup) profile.
func concurrency(ops int, seed int64) {
	fmt.Println("== E11: concurrency sweep (aggregate ops/sec, higher is better) ==")
	fmt.Printf("(host: GOMAXPROCS=%d — levels beyond it measure contention, not parallel speed-up)\n",
		runtime.GOMAXPROCS(0))
	profiles := []workload.Profile{workload.ReadMostly, workload.Soup}
	rows, err := experiments.ConcurrencySweep(profiles, ops, seed)
	check(err)
	type key struct {
		p workload.Profile
		g int
	}
	cells := map[experiments.System]map[key]float64{}
	for _, r := range rows {
		if cells[r.System] == nil {
			cells[r.System] = map[key]float64{}
		}
		cells[r.System][key{r.Profile, r.Goroutines}] = r.OpsPerSec
	}
	fmt.Printf("%-12s %6s %14s %14s %10s\n", "workload", "gor.", "base op/s", "rae op/s", "rae/base")
	for _, p := range profiles {
		for _, g := range experiments.ConcurrencySweepLevels {
			b := cells[experiments.SysBase][key{p, g}]
			r := cells[experiments.SysRAE][key{p, g}]
			fmt.Printf("%-12s %6d %14.0f %14.0f %9.1f%%\n", p, g, b, r, r/b*100)
		}
	}
	fmt.Println()
}

// printSnapshot dumps the process-global telemetry accumulated by one series.
func printSnapshot(name string) {
	fmt.Printf("-- telemetry snapshot after series %q --\n", name)
	check(telemetry.Default().Snapshot().WriteText(os.Stdout))
	fmt.Println()
}

func ioTraffic(ops int, seed int64) {
	fmt.Println("== IO accounting: device traffic per implementation, same trace ==")
	fmt.Printf("%-12s %-8s %12s %12s %10s\n", "workload", "system", "dev reads", "dev writes", "flushes")
	for _, p := range workload.Profiles() {
		rows, err := experiments.IOAccounting(p, ops, seed)
		check(err)
		for _, r := range rows {
			fmt.Printf("%-12s %-8s %12d %12d %10d\n",
				r.Profile, r.System, r.DeviceReads, r.DeviceWrites, r.Flushes)
		}
	}
	fmt.Println()
}

func latency(ops int, seed int64) {
	fmt.Println("== E4b: per-operation latency under RAE (recoveries live in the tail) ==")
	fmt.Printf("%-10s %8s %12s %12s %12s %12s %12s\n",
		"bug rate", "recov.", "p50", "p95", "p99", "max", "mean")
	for _, rate := range []float64{0, 0.001, 0.005, 0.02} {
		r, err := experiments.Latency(rate, ops, seed)
		check(err)
		fmt.Printf("%-10.3f %8d %12v %12v %12v %12v %12v\n",
			r.BugRate, r.Recoveries, r.P50, r.P95, r.P99, r.Max, r.Mean)
		record(fmt.Sprintf("latency.rate%.3f.p50_ns", rate), float64(r.P50))
		record(fmt.Sprintf("latency.rate%.3f.p99_ns", rate), float64(r.P99))
	}
	fmt.Println()
}

func ablate(ops int, seed int64) {
	fmt.Println("== Ablation: what each base-FS performance component buys ==")
	fmt.Println("(the shadow omits all of them; 'all-weakened' approximates its posture)")
	for _, p := range []workload.Profile{workload.ReadMostly, workload.MetaHeavy} {
		rows, err := experiments.Ablate(p, ops, seed)
		check(err)
		fmt.Printf("%-22s %14s %12s   [%s]\n", "configuration", "ops/sec", "slowdown", p)
		for _, r := range rows {
			fmt.Printf("%-22s %14.0f %11.1f%%\n", r.Name, r.OpsPerSec, r.SlowdownPct)
		}
		fmt.Println()
	}
}

func thput(ops int, seed int64) {
	fmt.Println("== E3: common-case throughput (ops/sec, higher is better) ==")
	fmt.Printf("%-12s %12s %12s %12s %12s %14s\n",
		"workload", "base", "shadow", "rae", "nvp3", "base/shadow")
	for _, p := range workload.Profiles() {
		row := map[experiments.System]float64{}
		for _, sys := range []experiments.System{
			experiments.SysBase, experiments.SysShadow, experiments.SysRAE, experiments.SysNVP3,
		} {
			r, err := experiments.Throughput(sys, p, ops, seed)
			check(err)
			row[sys] = r.OpsPerSec
			record(fmt.Sprintf("thput.%s.%s.ops_per_sec", p, sys), r.OpsPerSec)
		}
		fmt.Printf("%-12s %12.0f %12.0f %12.0f %12.0f %13.1fx\n",
			p, row[experiments.SysBase], row[experiments.SysShadow],
			row[experiments.SysRAE], row[experiments.SysNVP3],
			row[experiments.SysBase]/row[experiments.SysShadow])
	}
	fmt.Println()
}

func recovery(seed int64) {
	fmt.Println("== E4: recovery latency vs recorded-sequence length ==")
	fmt.Printf("%-10s %12s %12s %12s %12s %12s\n",
		"log ops", "reboot", "fsck", "replay", "hand-off", "total")
	var traces []telemetry.TraceSnapshot
	for _, n := range []int{8, 32, 128, 512, 2048} {
		r, err := experiments.RecoveryLatency(n, seed, false)
		check(err)
		ph := r.Phases
		fmt.Printf("%-10d %12v %12v %12v %12v %12v\n",
			r.LogLen, ph.Reboot, ph.Fsck, ph.Replay, ph.Absorb, ph.Total())
		traces = append(traces, r.Trace)
	}
	fmt.Println()
	fmt.Println("-- six-phase recovery traces (telemetry) --")
	for _, tr := range traces {
		fmt.Println(tr)
	}
	fmt.Println()

	fmt.Println("== E12: pipelined vs sequential recovery engine ==")
	fmt.Printf("(per-IO device service time %v armed at detonation)\n", experiments.RecoveryIOLatency)
	fmt.Printf("%-10s %14s %14s %10s\n", "gap ops", "sequential", "pipelined", "speedup")
	for _, n := range []int{512, 2048, 10000} {
		r, err := experiments.RecoveryPipeline(n, seed, experiments.RecoveryIOLatency)
		check(err)
		fmt.Printf("%-10d %14v %14v %9.2fx\n",
			r.LogLen, r.Sequential.Total(), r.Pipelined.Total(), r.Speedup)
	}
	fmt.Println()
	w, err := experiments.WarmRepeat(2000, 100, seed, experiments.RecoveryIOLatency)
	check(err)
	fmt.Printf("warm repeat fault: first gap %d ops -> replayed %d in %v;\n",
		w.Gap1, w.FirstReplayed, w.FirstWall)
	fmt.Printf("  second fault %d ops later -> replayed %d, reused %d, in %v (fsck skipped)\n",
		w.Gap2, w.SecondReplayed, w.Reused, w.SecondWall)
	fmt.Println()
}

func avail(ops int, seed int64) {
	fmt.Println("== E5: availability under a recurring deterministic crash bug ==")
	fmt.Printf("%-14s %10s %10s %10s %10s %8s %12s\n",
		"mode", "correct", "failures", "recov.", "degraded", "fdsLost", "downtime")
	for _, mode := range []core.Mode{core.ModeRAE, core.ModeCrashRestart, core.ModeNaiveReplay} {
		r, err := experiments.Availability(mode, ops, seed)
		check(err)
		fmt.Printf("%-14s %6d/%-4d %10d %10d %10d %8d %12v\n",
			r.Mode, r.Completed, r.Ops, r.AppFailures, r.Recoveries,
			r.Degradations, r.FDsLost, r.Downtime)
	}
	fmt.Println()
}

func overhead(ops int, seed int64) {
	fmt.Println("== E6: RAE recording overhead in the common case (no bugs) ==")
	fmt.Printf("%-12s %14s %14s %10s\n", "workload", "base op/s", "rae op/s", "overhead")
	for _, p := range workload.Profiles() {
		r, err := experiments.RecordingOverhead(p, ops, seed)
		check(err)
		fmt.Printf("%-12s %14.0f %14.0f %9.1f%%\n", r.Profile, r.BaseOpsSec, r.RAEOpsSec, r.OverheadPct)
		record(fmt.Sprintf("overhead.%s.base_ops_per_sec", p), r.BaseOpsSec)
		record(fmt.Sprintf("overhead.%s.rae_ops_per_sec", p), r.RAEOpsSec)
	}
	fmt.Println()
}

func fsyncHeavy(seed int64) {
	fmt.Println("== E10: durability path under fsync-heavy load ==")
	r, err := experiments.FsyncHeavy(200, 8, 40, 50*time.Microsecond, seed)
	check(err)
	fmt.Printf("sequential: %d syncs, %d device flushes (%.2f flushes/sync)\n",
		r.Syncs, r.Flushes, r.FlushesPerSync)
	fmt.Printf("concurrent: %d workers, %d fsyncs, %.0f fsync/s, %d device flushes\n",
		r.Workers, r.Fsyncs, r.FsyncsPerSec, r.ConcFlushes)
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "shadowbench: %v\n", err)
		os.Exit(1)
	}
}
