// Command shadowbench regenerates the quantitative experiment series as
// printed tables: common-case throughput (E3), recovery latency vs recorded
// sequence length (E4), availability under a deterministic bug stream (E5),
// and recording overhead (E6).
//
// Usage:
//
//	shadowbench [-series thput|recovery|avail|overhead|all] [-ops N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	series := flag.String("series", "all", "which series: thput, recovery, avail, overhead, fsync, ablate, latency, io, concurrency, fsck, multitenant, all")
	ops := flag.Int("ops", 4000, "operations per measurement")
	seed := flag.Int64("seed", 1, "seed")
	stats := flag.Bool("stats", true, "print a telemetry snapshot after each series")
	flag.Parse()
	run := func(name string, f func()) {
		if *series != "all" && *series != name {
			return
		}
		// Each series starts from a clean process-global sink so its snapshot
		// reflects only that series' activity.
		telemetry.Default().Reset()
		f()
		if *stats {
			printSnapshot(name)
		}
	}
	run("thput", func() { thput(*ops, *seed) })
	run("recovery", func() { recovery(*seed) })
	run("avail", func() { avail(*ops, *seed) })
	run("overhead", func() { overhead(*ops, *seed) })
	run("fsync", func() { fsyncHeavy(*seed) })
	run("ablate", func() { ablate(*ops, *seed) })
	run("latency", func() { latency(*ops, *seed) })
	run("io", func() { ioTraffic(*ops, *seed) })
	run("concurrency", func() { concurrency(*ops, *seed) })
	run("fsck", func() { fsckScale(*seed) })
	run("multitenant", func() { multiTenant(*ops, *seed) })
}

// multiTenant prints the E14 series: a fleet of volumes under one volume
// manager, with a deterministic fault storm hitting volume 0 while its
// neighbors keep serving. The isolation claim is the healthy tenants' p99
// delta; the quota table is the cache-enforcement evidence.
func multiTenant(ops int, seed int64) {
	const volumes = 8
	fmt.Println("== E14: multi-tenant isolation under a fault storm ==")
	fmt.Printf("(%d volumes x %d ops, metaheavy; storm = recurring crash + %v/IO device latency on vol0)\n",
		volumes, ops, 20*time.Microsecond)
	res, err := experiments.MultiTenant(volumes, ops, seed)
	check(err)

	fmt.Printf("%-22s %14s %14s %10s\n", "healthy tenants", "baseline", "storm", "delta")
	fmt.Printf("%-22s %14v %14v %9.1f%%\n", "p50 op latency",
		res.BaselineHealthyP50, res.StormHealthyP50,
		pctDelta(res.BaselineHealthyP50, res.StormHealthyP50))
	fmt.Printf("%-22s %14v %14v %9.1f%%\n", "p99 op latency",
		res.BaselineHealthyP99, res.StormHealthyP99, res.HealthyP99DeltaPct)
	fmt.Println()

	fmt.Printf("storm volume: %d recoveries, %d app failures, downtime %v\n",
		res.StormRecoveries, res.StormAppFailures, res.StormDowntime)
	fmt.Printf("storm volume throughput: %.0f op/s (baseline %.0f op/s)\n",
		res.StormOpsPerSec, res.BaselineStormOpsSec)
	fmt.Printf("healthy-volume recoveries: %d (must be 0)\n", res.HealthyRecoveries)
	fmt.Println()

	fmt.Printf("cache rebalancer: %d passes, %d blocks moved; final quotas (blocks):\n",
		res.RebalancePasses, res.RebalancedBlocks)
	names := make([]string, 0, len(res.QuotaGauges))
	for name := range res.QuotaGauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-28s %6d\n", name, res.QuotaGauges[name])
	}
	fmt.Println()
}

// pctDelta is (b-a)/a as a percentage.
func pctDelta(a, b time.Duration) float64 {
	if a <= 0 {
		return 0
	}
	return (float64(b) - float64(a)) / float64(a) * 100
}

// fsckScale prints the E13 series: the parallel checker's worker scaling,
// the region-scoped check vs image size, and the recovery fsck stage at
// pool sizes 1 vs 8.
func fsckScale(seed int64) {
	fmt.Println("== E13: parallel, region-scoped fsck ==")
	fmt.Printf("(per-read device service time %v; image %d blocks)\n",
		experiments.FsckIOLatency, experiments.ImageBlocks)
	fmt.Println("(speedup combines worker parallelism with the parallel checker's")
	fmt.Println(" read-once block cache; the sequential baseline re-reads hot blocks)")
	rows, err := experiments.FsckParallelScale([]int{1, 2, 4, 8}, 3000, seed, experiments.FsckIOLatency)
	check(err)
	fmt.Printf("%-10s %14s %10s %12s %12s %10s\n", "workers", "elapsed", "speedup", "dev reads", "checks", "problems")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Workers)
		if r.Workers == 0 {
			label = "seq"
		}
		fmt.Printf("%-10s %14v %9.2fx %12d %12d %10d\n", label, r.Elapsed, r.Speedup, r.DevReads, r.ChecksRun, r.Problems)
	}
	fmt.Println()

	fmt.Println("-- region-scoped check vs image size (same write gap; dev reads = IO cost) --")
	srows, err := experiments.ScopedFsckScale([]uint32{16384, 65536}, 16, 1500, seed, 8, 0)
	check(err)
	fmt.Printf("%-12s %10s %12s %12s %12s %14s %14s\n",
		"image blks", "scope", "full reads", "scoped reads", "read ratio", "full", "scoped")
	for _, r := range srows {
		fmt.Printf("%-12d %10d %12d %12d %11.1fx %14v %14v\n",
			r.ImageBlocks, r.GapBlocks, r.FullReads, r.ScopedReads, r.ReadRatio, r.FullTime, r.ScopedTime)
	}
	fmt.Println()

	fmt.Println("-- recovery fsck stage: FsckWorkers 1 vs 8 --")
	fr, err := experiments.RecoveryFsckStage(512, seed, experiments.FsckIOLatency)
	check(err)
	fmt.Printf("fsck stage: %v (1 worker) -> %v (8 workers), %.2fx; recovery wall %v -> %v\n",
		fr.FsckSeq, fr.FsckPar, fr.Speedup, fr.WallSeq, fr.WallPar)
	fmt.Println()
}

// concurrency prints the E11 sweep: aggregate throughput of the bare base vs
// the RAE supervisor as the number of concurrent application goroutines
// grows, on a read-mostly and an adversarial mixed (soup) profile.
func concurrency(ops int, seed int64) {
	fmt.Println("== E11: concurrency sweep (aggregate ops/sec, higher is better) ==")
	fmt.Printf("(host: GOMAXPROCS=%d — levels beyond it measure contention, not parallel speed-up)\n",
		runtime.GOMAXPROCS(0))
	profiles := []workload.Profile{workload.ReadMostly, workload.Soup}
	rows, err := experiments.ConcurrencySweep(profiles, ops, seed)
	check(err)
	type key struct {
		p workload.Profile
		g int
	}
	cells := map[experiments.System]map[key]float64{}
	for _, r := range rows {
		if cells[r.System] == nil {
			cells[r.System] = map[key]float64{}
		}
		cells[r.System][key{r.Profile, r.Goroutines}] = r.OpsPerSec
	}
	fmt.Printf("%-12s %6s %14s %14s %10s\n", "workload", "gor.", "base op/s", "rae op/s", "rae/base")
	for _, p := range profiles {
		for _, g := range experiments.ConcurrencySweepLevels {
			b := cells[experiments.SysBase][key{p, g}]
			r := cells[experiments.SysRAE][key{p, g}]
			fmt.Printf("%-12s %6d %14.0f %14.0f %9.1f%%\n", p, g, b, r, r/b*100)
		}
	}
	fmt.Println()
}

// printSnapshot dumps the process-global telemetry accumulated by one series.
func printSnapshot(name string) {
	fmt.Printf("-- telemetry snapshot after series %q --\n", name)
	check(telemetry.Default().Snapshot().WriteText(os.Stdout))
	fmt.Println()
}

func ioTraffic(ops int, seed int64) {
	fmt.Println("== IO accounting: device traffic per implementation, same trace ==")
	fmt.Printf("%-12s %-8s %12s %12s %10s\n", "workload", "system", "dev reads", "dev writes", "flushes")
	for _, p := range workload.Profiles() {
		rows, err := experiments.IOAccounting(p, ops, seed)
		check(err)
		for _, r := range rows {
			fmt.Printf("%-12s %-8s %12d %12d %10d\n",
				r.Profile, r.System, r.DeviceReads, r.DeviceWrites, r.Flushes)
		}
	}
	fmt.Println()
}

func latency(ops int, seed int64) {
	fmt.Println("== E4b: per-operation latency under RAE (recoveries live in the tail) ==")
	fmt.Printf("%-10s %8s %12s %12s %12s %12s %12s\n",
		"bug rate", "recov.", "p50", "p95", "p99", "max", "mean")
	for _, rate := range []float64{0, 0.001, 0.005, 0.02} {
		r, err := experiments.Latency(rate, ops, seed)
		check(err)
		fmt.Printf("%-10.3f %8d %12v %12v %12v %12v %12v\n",
			r.BugRate, r.Recoveries, r.P50, r.P95, r.P99, r.Max, r.Mean)
	}
	fmt.Println()
}

func ablate(ops int, seed int64) {
	fmt.Println("== Ablation: what each base-FS performance component buys ==")
	fmt.Println("(the shadow omits all of them; 'all-weakened' approximates its posture)")
	for _, p := range []workload.Profile{workload.ReadMostly, workload.MetaHeavy} {
		rows, err := experiments.Ablate(p, ops, seed)
		check(err)
		fmt.Printf("%-22s %14s %12s   [%s]\n", "configuration", "ops/sec", "slowdown", p)
		for _, r := range rows {
			fmt.Printf("%-22s %14.0f %11.1f%%\n", r.Name, r.OpsPerSec, r.SlowdownPct)
		}
		fmt.Println()
	}
}

func thput(ops int, seed int64) {
	fmt.Println("== E3: common-case throughput (ops/sec, higher is better) ==")
	fmt.Printf("%-12s %12s %12s %12s %12s %14s\n",
		"workload", "base", "shadow", "rae", "nvp3", "base/shadow")
	for _, p := range workload.Profiles() {
		row := map[experiments.System]float64{}
		for _, sys := range []experiments.System{
			experiments.SysBase, experiments.SysShadow, experiments.SysRAE, experiments.SysNVP3,
		} {
			r, err := experiments.Throughput(sys, p, ops, seed)
			check(err)
			row[sys] = r.OpsPerSec
		}
		fmt.Printf("%-12s %12.0f %12.0f %12.0f %12.0f %13.1fx\n",
			p, row[experiments.SysBase], row[experiments.SysShadow],
			row[experiments.SysRAE], row[experiments.SysNVP3],
			row[experiments.SysBase]/row[experiments.SysShadow])
	}
	fmt.Println()
}

func recovery(seed int64) {
	fmt.Println("== E4: recovery latency vs recorded-sequence length ==")
	fmt.Printf("%-10s %12s %12s %12s %12s %12s\n",
		"log ops", "reboot", "fsck", "replay", "hand-off", "total")
	var traces []telemetry.TraceSnapshot
	for _, n := range []int{8, 32, 128, 512, 2048} {
		r, err := experiments.RecoveryLatency(n, seed, false)
		check(err)
		ph := r.Phases
		fmt.Printf("%-10d %12v %12v %12v %12v %12v\n",
			r.LogLen, ph.Reboot, ph.Fsck, ph.Replay, ph.Absorb, ph.Total())
		traces = append(traces, r.Trace)
	}
	fmt.Println()
	fmt.Println("-- six-phase recovery traces (telemetry) --")
	for _, tr := range traces {
		fmt.Println(tr)
	}
	fmt.Println()

	fmt.Println("== E12: pipelined vs sequential recovery engine ==")
	fmt.Printf("(per-IO device service time %v armed at detonation)\n", experiments.RecoveryIOLatency)
	fmt.Printf("%-10s %14s %14s %10s\n", "gap ops", "sequential", "pipelined", "speedup")
	for _, n := range []int{512, 2048, 10000} {
		r, err := experiments.RecoveryPipeline(n, seed, experiments.RecoveryIOLatency)
		check(err)
		fmt.Printf("%-10d %14v %14v %9.2fx\n",
			r.LogLen, r.Sequential.Total(), r.Pipelined.Total(), r.Speedup)
	}
	fmt.Println()
	w, err := experiments.WarmRepeat(2000, 100, seed, experiments.RecoveryIOLatency)
	check(err)
	fmt.Printf("warm repeat fault: first gap %d ops -> replayed %d in %v;\n",
		w.Gap1, w.FirstReplayed, w.FirstWall)
	fmt.Printf("  second fault %d ops later -> replayed %d, reused %d, in %v (fsck skipped)\n",
		w.Gap2, w.SecondReplayed, w.Reused, w.SecondWall)
	fmt.Println()
}

func avail(ops int, seed int64) {
	fmt.Println("== E5: availability under a recurring deterministic crash bug ==")
	fmt.Printf("%-14s %10s %10s %10s %10s %8s %12s\n",
		"mode", "correct", "failures", "recov.", "degraded", "fdsLost", "downtime")
	for _, mode := range []core.Mode{core.ModeRAE, core.ModeCrashRestart, core.ModeNaiveReplay} {
		r, err := experiments.Availability(mode, ops, seed)
		check(err)
		fmt.Printf("%-14s %6d/%-4d %10d %10d %10d %8d %12v\n",
			r.Mode, r.Completed, r.Ops, r.AppFailures, r.Recoveries,
			r.Degradations, r.FDsLost, r.Downtime)
	}
	fmt.Println()
}

func overhead(ops int, seed int64) {
	fmt.Println("== E6: RAE recording overhead in the common case (no bugs) ==")
	fmt.Printf("%-12s %14s %14s %10s\n", "workload", "base op/s", "rae op/s", "overhead")
	for _, p := range workload.Profiles() {
		r, err := experiments.RecordingOverhead(p, ops, seed)
		check(err)
		fmt.Printf("%-12s %14.0f %14.0f %9.1f%%\n", r.Profile, r.BaseOpsSec, r.RAEOpsSec, r.OverheadPct)
	}
	fmt.Println()
}

func fsyncHeavy(seed int64) {
	fmt.Println("== E10: durability path under fsync-heavy load ==")
	r, err := experiments.FsyncHeavy(200, 8, 40, 50*time.Microsecond, seed)
	check(err)
	fmt.Printf("sequential: %d syncs, %d device flushes (%.2f flushes/sync)\n",
		r.Syncs, r.Flushes, r.FlushesPerSync)
	fmt.Printf("concurrent: %d workers, %d fsyncs, %.0f fsync/s, %d device flushes\n",
		r.Workers, r.Fsyncs, r.FsyncsPerSec, r.ConcFlushes)
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "shadowbench: %v\n", err)
		os.Exit(1)
	}
}
