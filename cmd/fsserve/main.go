// Command fsserve exposes supervised filesystems over the network: a volmgr
// fleet served via the fswire protocol (internal/fswire). Remote clients
// attach to a volume by name ("vol0".."volN-1") and get the full fsapi.FS
// operation set — with the RAE supervisor underneath, so a runtime error on
// the server is recovered behind the wire and the client only sees the
// operation take longer.
//
// Usage:
//
//	fsserve -listen :5640 -volumes 4     serve a 4-volume fleet until interrupted
//	fsserve -smoke                       self-contained loopback check (CI):
//	                                     8 concurrent remote clients over a
//	                                     4-volume fleet, a deterministic fault
//	                                     storm on vol0, and the invariants that
//	                                     no client observes a fault-class error
//	                                     and no healthy tenant recovers.
//
// In smoke mode the exit status is non-zero if any invariant fails.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/fserr"
	"repro/internal/fswire"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/volmgr"
	"repro/internal/workload"
)

func main() {
	listen := flag.String("listen", ":5640", "address to serve the fswire protocol on")
	volumes := flag.Int("volumes", 4, "number of tenant volumes")
	ops := flag.Int("ops", 400, "smoke mode: operations per client")
	clients := flag.Int("clients", 8, "smoke mode: concurrent remote clients")
	seed := flag.Int64("seed", 1, "workload and fault seed")
	window := flag.Int("window", 16, "smoke mode: per-connection in-flight window (1 = sequential RPCs)")
	batch := flag.Int("batch", 8, "smoke mode: write-coalescing cap in ops (0 or 1 disables)")
	smoke := flag.Bool("smoke", false, "run the self-contained loopback smoke check and exit")
	flag.Parse()

	if *window < 1 {
		fmt.Fprintln(os.Stderr, "fsserve: -window must be >= 1")
		os.Exit(2)
	}

	if *volumes < 1 {
		fmt.Fprintln(os.Stderr, "fsserve: need at least one volume")
		os.Exit(2)
	}

	m, err := volmgr.New(volmgr.Config{
		PoolBlocks:        uint32(*volumes) * experiments.MultiTenantVolumeBlocks,
		CacheBudgetBlocks: 96 * *volumes,
		CacheMinPerVolume: 32,
	})
	check(err)
	defer m.Shutdown()

	vols := make([]*volmgr.Volume, *volumes)
	for i := range vols {
		vc := volmgr.VolumeConfig{Blocks: experiments.MultiTenantVolumeBlocks}
		if *smoke && i == 0 {
			// The storm: a recurring deterministic crash on every mkdir of a
			// "box" directory — the metaheavy profile creates them steadily,
			// so vol0 recovers over and over while its neighbors serve on.
			reg := faultinject.NewRegistry(*seed)
			reg.Arm(&faultinject.Specimen{
				ID: "fsserve-storm", Class: faultinject.Crash,
				Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "box",
			})
			vc.Core.Base.Injector = reg
		}
		vols[i], err = m.Create(fmt.Sprintf("vol%d", i), vc)
		check(err)
	}

	srv := fswire.NewServer(fswire.Volumes(m), fswire.WithTelemetry(m.Telemetry()))
	addr := *listen
	if *smoke {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	check(err)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	if !*smoke {
		fmt.Fprintf(os.Stderr, "fsserve: serving %d volumes on %s (attach: vol0..vol%d)\n",
			*volumes, ln.Addr(), *volumes-1)
		check(<-done)
		return
	}

	bad := runSmoke(m, vols, ln.Addr().String(), *clients, *ops, *seed, *window, *batch)
	check(srv.Close())
	<-done
	check(m.Shutdown())
	if bad {
		os.Exit(1)
	}
}

// runSmoke drives the fleet from concurrent remote clients and checks the
// serving-layer invariants hold across the wire. Returns true on violation.
// window > 1 drives the clients through the pipelined path (async submission,
// write coalescing); window == 1 keeps the sequential one-RPC-per-op driver.
func runSmoke(m *volmgr.Manager, vols []*volmgr.Volume, addr string, clients, ops int, seed int64, window, batch int) bool {
	// The geometry is deterministic for a given device size, so one throwaway
	// format yields the superblock every client's workload generator needs.
	sb, err := mkfs.Format(blockdev.NewMem(experiments.MultiTenantVolumeBlocks), mkfs.Options{})
	check(err)

	type clientResult struct {
		stats  workload.DriveStats
		faults int
		err    error
	}
	results := make([]clientResult, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			volume := fmt.Sprintf("vol%d", ci%len(vols))
			var c *fswire.Client
			var err error
			if window > 1 {
				c, err = fswire.DialConfig(addr, volume, fswire.ClientConfig{
					Window: window, BatchMaxOps: batch,
				})
			} else {
				c, err = fswire.Dial(addr, volume)
			}
			if err != nil {
				results[ci].err = fmt.Errorf("dial %s: %w", volume, err)
				return
			}
			defer c.Hangup()
			// Distinct seeds keep the clients from being clones; clients
			// sharing a volume collide on paths at worst, which produces
			// benign errnos (EEXIST, ENOENT), never fault-class ones.
			trace := workload.Generate(workload.Config{
				Profile: workload.MetaHeavy, Seed: seed + int64(ci)*101,
				NumOps: ops, Superblock: sb, SyncEvery: 100,
			})
			// A fault-class errno at the client is a recovery that leaked
			// through the wire — exactly what must not happen.
			countFault := func(got *oplog.Op) {
				if opErr := fserr.FromErrno(got.Errno); got.Errno != 0 && fserr.IsFault(opErr) {
					results[ci].faults++
				}
			}
			if window > 1 {
				results[ci].stats = workload.DrivePipelined(c, trace, func(_, got *oplog.Op) {
					countFault(got)
				})
			} else {
				results[ci].stats = workload.DriveObserved(c, trace, func(_, got *oplog.Op, _ time.Duration) {
					countFault(got)
				})
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	bad := false
	totalOps := 0
	for ci := range results {
		r := results[ci]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "fsserve: client %d failed: %v\n", ci, r.err)
			bad = true
			continue
		}
		totalOps += r.stats.Applied
		if r.faults > 0 {
			fmt.Fprintf(os.Stderr, "fsserve: client %d observed %d fault-class errors over the wire\n",
				ci, r.faults)
			bad = true
		}
	}
	for i, v := range vols {
		st := v.Stats()
		fmt.Printf("  %-8s recoveries=%d panics=%d appFailures=%d\n",
			v.Name(), st.Recoveries, st.PanicsCaught, st.AppFailures)
		if st.AppFailures > 0 {
			fmt.Fprintf(os.Stderr, "fsserve: %s surfaced %d app failures\n", v.Name(), st.AppFailures)
			bad = true
		}
		if i == 0 {
			if st.Recoveries == 0 {
				fmt.Fprintln(os.Stderr, "fsserve: storm volume never recovered — storm did not fire")
				bad = true
			}
		} else if st.Recoveries > 0 {
			fmt.Fprintf(os.Stderr, "fsserve: healthy volume %s recovered %d times — isolation breach\n",
				v.Name(), st.Recoveries)
			bad = true
		}
	}
	snap := m.Telemetry().Snapshot()
	fmt.Printf("fsserve smoke: %d clients x %d ops (window=%d batch=%d) in %v (%.0f op/s), wire ops=%d bytes=%d errs=%d batched=%d\n",
		len(results), totalOps/max(1, len(results)), window, batch, elapsed.Round(time.Millisecond),
		float64(totalOps)/elapsed.Seconds(),
		snap.Counters["fswire.ops"], snap.Counters["fswire.bytes"], snap.Counters["fswire.errs"],
		snap.Counters["fswire.batch.writes"])
	if !bad {
		fmt.Println("fsserve smoke: OK — recoveries masked, tenants isolated, zero app-visible failures")
	}
	return bad
}

func check(err error) {
	if err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintf(os.Stderr, "fsserve: %v\n", err)
		os.Exit(1)
	}
}
