// Command torture runs the B3-style bounded crash+fault campaign and
// reports every unique failure signature, or replays a single committed
// reproducer.
//
// Usage:
//
//	torture [-tier full|reduced] [-seed N] [-expect-cases N] [-timeout D] [-emit DIR]
//	torture -repro FILE
//
// Exit codes:
//
//	0  campaign (or repro) ran and found nothing — zero open signatures
//	1  open failure signatures (or the repro still reproduces)
//	2  operational error (bad flags, unreadable repro, unit setup failure)
//	3  determinism contract broken: the case count missed -expect-cases,
//	   or the time budget truncated the run so the count is not comparable
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/torture"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		tier        = flag.String("tier", "full", "campaign tier: full or reduced")
		seed        = flag.Int64("seed", 1, "campaign seed; equal seeds produce equal runs")
		expectCases = flag.Int("expect-cases", 0, "fail (exit 3) unless exactly this many cases ran; 0 disables")
		timeout     = flag.Duration("timeout", 0, "stop dispatching new units after this long (0 = no budget)")
		parallel    = flag.Int("parallel", 0, "concurrent workload units (0 = default)")
		emit        = flag.String("emit", "", "write one replayable .repro.json per unique signature into this directory")
		reproPath   = flag.String("repro", "", "replay one committed reproducer file instead of a campaign")
	)
	flag.Parse()

	if *reproPath != "" {
		return runRepro(*reproPath)
	}

	var cfg torture.Config
	switch *tier {
	case "full":
		cfg = torture.FullTier(*seed)
	case "reduced":
		cfg = torture.ReducedTier(*seed)
	default:
		fmt.Fprintf(os.Stderr, "torture: unknown tier %q (want full or reduced)\n", *tier)
		return 2
	}
	cfg.TimeBudget = *timeout
	cfg.Parallelism = *parallel

	res, err := torture.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture: %v\n", err)
		return 2
	}

	fmt.Printf("tier=%s seed=%d cases=%d failures=%d dedup=%d unique=%d elapsed=%s (%.0f cases/sec)\n",
		*tier, *seed, res.Cases, res.Failures, res.Dedup, len(res.Unique),
		res.Elapsed.Round(time.Millisecond), res.CasesPerSec)
	if res.ShrinkAttempts > 0 {
		fmt.Printf("shrink: %d re-runs, %d window ops removed\n",
			res.ShrinkAttempts, res.ShrinkRemovedOps)
	}
	for _, f := range res.Unique {
		fmt.Printf("  SIG %s\n      %s\n", f.Signature(), f)
	}

	if *emit != "" && len(res.Unique) > 0 {
		if err := emitRepros(*emit, res.Unique); err != nil {
			fmt.Fprintf(os.Stderr, "torture: %v\n", err)
			return 2
		}
	}

	if res.Truncated {
		fmt.Fprintf(os.Stderr, "torture: run truncated by -timeout %s; case count is not comparable\n", *timeout)
		return 3
	}
	if *expectCases > 0 && res.Cases != *expectCases {
		fmt.Fprintf(os.Stderr, "torture: ran %d cases, expected exactly %d — determinism contract broken\n",
			res.Cases, *expectCases)
		return 3
	}
	if len(res.Unique) > 0 {
		return 1
	}
	return 0
}

func runRepro(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture: %v\n", err)
		return 2
	}
	r, err := torture.UnmarshalRepro(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture: %v\n", err)
		return 2
	}
	f, err := r.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture: %v\n", err)
		return 2
	}
	if f != nil {
		fmt.Printf("REPRODUCES: %s\n  %s\n", f.Signature(), f)
		return 1
	}
	fmt.Printf("clean: %s no longer reproduces %s|%s:%s\n", path, r.Class, r.Kind, r.Locus)
	return 0
}

func emitRepros(dir string, unique []*torture.Failure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, f := range unique {
		data, err := f.Repro().Marshal()
		if err != nil {
			return fmt.Errorf("marshal %s: %w", f.Signature(), err)
		}
		name := fmt.Sprintf("%03d-%s-%s.repro.json", i, f.Class, f.Kind)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
		fmt.Printf("  emitted %s\n", filepath.Join(dir, name))
	}
	return nil
}
