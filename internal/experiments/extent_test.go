package experiments

import "testing"

// TestExtentSequentialVectoringWins pins the E16 headline claim at a small,
// fast geometry: the extent layout's delayed allocation + vectored device
// path must move a sequential file in far fewer device calls than the
// legacy bmap, and at >= 4x the bytes/s once a per-IO service time makes
// calls the dominant cost. The service time is 10x the E16 latency so the
// call-count gap stays the dominant term even under -race, whose
// instrumentation multiplies the CPU side of every block copy.
func TestExtentSequentialVectoringWins(t *testing.T) {
	rows, err := ExtentSequential(4, 10*ExtentIOLatency, 1)
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]ExtentSeqResult{}
	for _, r := range rows {
		by[r.Layout] = r
	}
	ext, bmap := by["extent"], by["bmap"]
	if ext.Layout == "" || bmap.Layout == "" {
		t.Fatalf("missing layout rows: %+v", rows)
	}
	// 4 MiB = 1024 blocks: per-block IO costs ~1024 calls each way; the
	// vectored path must be well under a tenth of that.
	if ext.WriteCalls*10 >= bmap.WriteCalls {
		t.Errorf("write calls: extent %d vs bmap %d, want >= 10x fewer", ext.WriteCalls, bmap.WriteCalls)
	}
	if ext.ReadCalls*10 >= bmap.ReadCalls {
		t.Errorf("read calls: extent %d vs bmap %d, want >= 10x fewer", ext.ReadCalls, bmap.ReadCalls)
	}
	if ext.WriteMBps < 4*bmap.WriteMBps {
		t.Errorf("write throughput %.1f MB/s vs %.1f: below the 4x target", ext.WriteMBps, bmap.WriteMBps)
	}
	if ext.ReadMBps < 4*bmap.ReadMBps {
		t.Errorf("read throughput %.1f MB/s vs %.1f: below the 4x target", ext.ReadMBps, bmap.ReadMBps)
	}
}

// TestExtentMetadataScaleFlat pins the locality claim: the scoped metadata
// check over a fixed live-data set costs the same device reads on a 4x
// larger image (the sweep's sizes share the >1-bitmap-block geometry, so the
// backup-superblock coverage block is present in both).
func TestExtentMetadataScaleFlat(t *testing.T) {
	rows, err := ExtentMetadataScale([]uint32{65536, 262144}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	small, big := rows[0], rows[1]
	if small.ScopeBlocks != big.ScopeBlocks {
		t.Logf("scope sizes differ: %d vs %d (live data should match)", small.ScopeBlocks, big.ScopeBlocks)
	}
	lo, hi := float64(small.ScopedReads), float64(big.ScopedReads)
	if hi < lo {
		lo, hi = hi, lo
	}
	if hi > lo*1.10 {
		t.Errorf("scoped reads not flat: %d @ %d blocks vs %d @ %d blocks (>10%% apart)",
			small.ScopedReads, small.ImageBlocks, big.ScopedReads, big.ImageBlocks)
	}
}
