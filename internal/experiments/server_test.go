package experiments

import "testing"

func TestServer(t *testing.T) {
	res, err := Server(2, 4, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps < 4*120 {
		t.Errorf("TotalOps = %d, want >= %d", res.TotalOps, 4*120)
	}
	if res.ClientFaults != 0 {
		t.Errorf("clients observed %d fault-class errors over the wire, want 0", res.ClientFaults)
	}
	if res.StormRecoveries == 0 {
		t.Error("storm volume never recovered — specimen did not fire")
	}
	if res.StormAppFailures != 0 {
		t.Errorf("storm volume surfaced %d app failures, want 0", res.StormAppFailures)
	}
	if res.HealthyRecoveries != 0 {
		t.Errorf("healthy volumes recovered %d times, want 0", res.HealthyRecoveries)
	}
	if res.WireOps == 0 || res.WireBytes == 0 {
		t.Errorf("wire telemetry empty: ops=%d bytes=%d", res.WireOps, res.WireBytes)
	}
	if res.OpsPerSec <= 0 || res.WireBytesPerSec <= 0 {
		t.Errorf("rates not positive: op/s=%f wire B/s=%f", res.OpsPerSec, res.WireBytesPerSec)
	}
}

func TestServerRejectsBadGeometry(t *testing.T) {
	if _, err := Server(1, 4, 10, 1); err == nil {
		t.Error("Server(volumes=1) should fail: no healthy neighbor to isolate")
	}
	if _, err := Server(2, 0, 10, 1); err == nil {
		t.Error("Server(clients=0) should fail")
	}
}
