// Package experiments implements the measurement harnesses behind every
// quantitative artifact in EXPERIMENTS.md: common-case throughput of base
// vs shadow vs RAE vs NVP-3 (E3, E6), recovery latency decomposed into the
// paper's phases as a function of the recorded-sequence length (E4), and
// availability under a bug-arrival process for RAE against the baselines
// (E5). The same functions drive cmd/shadowbench and the root bench suite,
// so printed tables and testing.B numbers come from one code path.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/shadowfs"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ImageBlocks is the default experiment image size (64 MiB).
const ImageBlocks = 16384

// System names an implementation under test.
type System int

// Systems.
const (
	SysBase System = iota
	SysShadow
	SysRAE
	SysNVP3
)

// String returns the system's table label.
func (s System) String() string {
	switch s {
	case SysBase:
		return "base"
	case SysShadow:
		return "shadow"
	case SysRAE:
		return "rae"
	case SysNVP3:
		return "nvp3"
	}
	return "unknown"
}

// newImage formats a fresh in-memory device.
func newImage(blocks uint32) (*blockdev.Mem, *disklayout.Superblock, error) {
	dev := blockdev.NewMem(blocks)
	sb, err := mkfs.Format(dev, mkfs.Options{})
	return dev, sb, err
}

// applyTrace runs every op of a trace against fs, returning ops applied.
func applyTrace(fs fsapi.FS, trace []*oplog.Op) int {
	return workload.Drive(fs, trace).Applied
}

// ThroughputResult is one cell of the E3/E6 table.
type ThroughputResult struct {
	System    System
	Profile   workload.Profile
	Ops       int
	Elapsed   time.Duration
	OpsPerSec float64
}

// Throughput measures ops/sec for one system on one workload profile. The
// trace is generated outside the timed region; ENOSPC-free geometry.
func Throughput(sys System, profile workload.Profile, numOps int, seed int64) (ThroughputResult, error) {
	res := ThroughputResult{System: sys, Profile: profile}
	trace := workload.Generate(workload.Config{
		Profile: profile, Seed: seed, NumOps: numOps, SyncEvery: 200,
	})
	var fs fsapi.FS
	var cleanup func()
	switch sys {
	case SysBase:
		dev, _, err := newImage(ImageBlocks)
		if err != nil {
			return res, err
		}
		base, err := basefs.Mount(dev, basefs.Options{})
		if err != nil {
			return res, err
		}
		fs, cleanup = base, base.Kill
	case SysShadow:
		dev, _, err := newImage(ImageBlocks)
		if err != nil {
			return res, err
		}
		sh, err := shadowfs.New(dev, shadowfs.Options{SkipFsck: true})
		if err != nil {
			return res, err
		}
		fs, cleanup = sh, func() {}
	case SysRAE:
		dev, _, err := newImage(ImageBlocks)
		if err != nil {
			return res, err
		}
		sup, err := core.Mount(dev, core.Config{})
		if err != nil {
			return res, err
		}
		fs, cleanup = sup, sup.Kill
	case SysNVP3:
		nvp, err := core.NewNVP3(ImageBlocks, basefs.Options{})
		if err != nil {
			return res, err
		}
		start := time.Now()
		for _, rec := range trace {
			op := rec.Clone()
			op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
			_ = nvp.Do(op)
		}
		res.Elapsed = time.Since(start)
		res.Ops = len(trace)
		res.OpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
		return res, nil
	}
	defer cleanup()
	start := time.Now()
	res.Ops = applyTrace(fs, trace)
	res.Elapsed = time.Since(start)
	res.OpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
	return res, nil
}

// RecoveryResult is one point of the E4 series.
type RecoveryResult struct {
	LogLen int
	Phases core.RecoveryPhases
	// Trace is the recovery's telemetry trace: the six canonical phases with
	// wall-clock durations, measured on an isolated sink.
	Trace telemetry.TraceSnapshot
}

// RecoveryLatency measures one recovery whose operation log holds logLen
// recorded operations: a workload runs (no sync, so nothing truncates the
// log), then a deterministic crash fires and the recovery is timed by the
// supervisor's own phase instrumentation.
func RecoveryLatency(logLen int, seed int64, skipFsck bool) (RecoveryResult, error) {
	res := RecoveryResult{LogLen: logLen}
	dev, sb, err := newImage(ImageBlocks)
	if err != nil {
		return res, err
	}
	reg := faultinject.NewRegistry(seed)
	reg.Arm(&faultinject.Specimen{
		ID: "bench-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "setperm", Point: "entry", PathSubstr: "detonate",
	})
	sink := telemetry.New() // isolated: repeated series must not pollute Default
	sup, err := core.Mount(dev, core.Config{
		Base:               basefs.Options{Injector: reg},
		SkipFsckInRecovery: skipFsck,
		Telemetry:          sink,
	})
	if err != nil {
		return res, err
	}
	defer sup.Kill()
	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: seed, NumOps: logLen * 2, Superblock: sb,
	})
	// Feed ops until the recorded log reaches the target length.
	for _, rec := range trace {
		if sup.LogLen() >= logLen {
			break
		}
		op := rec.Clone()
		if op.Kind == oplog.KFsync || op.Kind == oplog.KSync {
			continue // keep the log growing
		}
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		_ = oplog.Apply(sup, op)
	}
	if sup.LogLen() < logLen {
		return res, fmt.Errorf("experiments: log only reached %d/%d ops", sup.LogLen(), logLen)
	}
	// Detonate.
	if err := sup.SetPerm("/detonate-missing", 0o600); err == nil {
		return res, fmt.Errorf("experiments: detonation op unexpectedly succeeded")
	}
	st := sup.Stats()
	if st.Recoveries != 1 || len(st.Phases) != 1 {
		return res, fmt.Errorf("experiments: expected 1 recovery, got %d", st.Recoveries)
	}
	res.LogLen = logLen
	res.Phases = st.Phases[0]
	tr, ok := sink.LastRecoveryTrace()
	if !ok {
		return res, fmt.Errorf("experiments: recovery produced no telemetry trace")
	}
	res.Trace = tr
	return res, nil
}

// AvailabilityResult is one row of the E5 table.
type AvailabilityResult struct {
	Mode         core.Mode
	Ops          int
	Completed    int64 // operations that returned the specification outcome
	AppFailures  int64
	Recoveries   int64
	Degradations int64
	FDsLost      int64
	Downtime     time.Duration
	Elapsed      time.Duration
}

// Availability runs a workload with a deterministic crash specimen firing on
// a recurring path pattern and reports how each failure-handling mode fares
// (E5). The same seed gives every mode the same workload and bug stream.
func Availability(mode core.Mode, numOps int, seed int64) (AvailabilityResult, error) {
	res := AvailabilityResult{Mode: mode, Ops: numOps}
	dev, sb, err := newImage(ImageBlocks)
	if err != nil {
		return res, err
	}
	reg := faultinject.NewRegistry(seed)
	// A deterministic bug on mkdir of any path containing "box" — metaheavy
	// creates such directories steadily, so the bug fires repeatedly.
	reg.Arm(&faultinject.Specimen{
		ID: "avail-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "box",
	})
	sup, err := core.Mount(dev, core.Config{
		Mode: mode,
		Base: basefs.Options{Injector: reg},
	})
	if err != nil {
		return res, err
	}
	defer sup.Kill()
	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: seed, NumOps: numOps, Superblock: sb, SyncEvery: 100,
	})
	start := time.Now()
	// An operation "completes" for availability purposes when it returns
	// the outcome the bug-free specification would: same errno and, for
	// allocating ops, same numbers — DriveStats.Matched.
	res.Completed = int64(workload.Drive(sup, trace).Matched)
	res.Elapsed = time.Since(start)
	st := sup.Stats()
	res.AppFailures = st.AppFailures
	res.Recoveries = st.Recoveries
	res.Degradations = st.Degradations
	res.FDsLost = st.FDsInvalidated
	res.Downtime = st.TotalDowntime
	return res, nil
}

// OverheadResult is one row of the E6 table.
type OverheadResult struct {
	Profile      workload.Profile
	BaseOpsSec   float64
	RAEOpsSec    float64
	OverheadPct  float64
	PeakLogBytes int
}

// RecordingOverhead compares raw base throughput against RAE-supervised
// throughput on the same trace with no bugs armed (E6): the difference is
// the cost of operation recording plus supervision.
func RecordingOverhead(profile workload.Profile, numOps int, seed int64) (OverheadResult, error) {
	res := OverheadResult{Profile: profile}
	baseRes, err := Throughput(SysBase, profile, numOps, seed)
	if err != nil {
		return res, err
	}
	// RAE run, instrumented for log size.
	dev, _, err := newImage(ImageBlocks)
	if err != nil {
		return res, err
	}
	sup, err := core.Mount(dev, core.Config{})
	if err != nil {
		return res, err
	}
	defer sup.Kill()
	trace := workload.Generate(workload.Config{
		Profile: profile, Seed: seed, NumOps: numOps, SyncEvery: 200,
	})
	start := time.Now()
	applyTrace(sup, trace)
	elapsed := time.Since(start)
	res.BaseOpsSec = baseRes.OpsPerSec
	res.RAEOpsSec = float64(len(trace)) / elapsed.Seconds()
	res.OverheadPct = (res.BaseOpsSec - res.RAEOpsSec) / res.BaseOpsSec * 100
	res.PeakLogBytes = sup.Stats().PeakLogLen
	return res, nil
}
