package experiments

import "testing"

func TestServerPipelined(t *testing.T) {
	res, err := ServerPipelined(2, 4, 150, 1, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps < 3*4*150 {
		t.Errorf("TotalOps = %d, want >= %d (three fleet phases)", res.TotalOps, 3*4*150)
	}
	if res.ClientFaults != 0 {
		t.Errorf("clients observed %d fault-class errors over the wire, want 0", res.ClientFaults)
	}
	if res.StormRecoveries == 0 {
		t.Error("storm volume never recovered in the pipelined phase — masking untested")
	}
	if res.StormAppFailures != 0 {
		t.Errorf("storm volume surfaced %d app failures, want 0", res.StormAppFailures)
	}
	if res.HealthyRecoveries != 0 {
		t.Errorf("healthy volumes recovered %d times, want 0", res.HealthyRecoveries)
	}
	if res.BatchedWrites == 0 {
		t.Error("no writes were coalesced — batching path never engaged")
	}
	if res.BaselineOpsPerSec <= 0 || res.PipelinedOpsPerSec <= 0 {
		t.Errorf("rates not positive: baseline=%f pipelined=%f", res.BaselineOpsPerSec, res.PipelinedOpsPerSec)
	}
	// The fleet phases are backend-bound, so at test scale we only insist
	// pipelining isn't a regression within noise; the real margins are
	// asserted at benchmark scale by shadowbench -minspeedup.
	if res.Speedup < 0.5 {
		t.Errorf("fleet speedup = %.2f, pipelining catastrophically slower", res.Speedup)
	}
	if res.FloorSeqOpsPerSec <= 0 || res.FloorPipeOpsPerSec <= 0 {
		t.Errorf("wire floor rates not positive: seq=%f pipe=%f",
			res.FloorSeqOpsPerSec, res.FloorPipeOpsPerSec)
	}
	// The wire floor is where overlap must show even at small scale: the
	// backend is ~1µs/op, so a pipelined client that fails to beat one
	// round trip per op means the machinery is broken, not noisy.
	if res.FloorSpeedup < 1.0 {
		t.Errorf("wire-floor speedup = %.2f, pipelined client lost to sequential", res.FloorSpeedup)
	}
}

func TestServerPipelinedRejectsBadConfig(t *testing.T) {
	if _, err := ServerPipelined(1, 4, 10, 1, 16, 8); err == nil {
		t.Error("volumes=1 should fail")
	}
	if _, err := ServerPipelined(2, 0, 10, 1, 16, 8); err == nil {
		t.Error("clients=0 should fail")
	}
	if _, err := ServerPipelined(2, 2, 10, 1, 0, 8); err == nil {
		t.Error("window=0 should fail")
	}
}
