package experiments

import (
	"testing"

	"repro/internal/basefs"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

func TestCampaignCleanImplementationsPass(t *testing.T) {
	for _, subject := range []Subject{SubjectBase, SubjectShadow} {
		res, err := RunCampaign(CampaignConfig{
			Subject: subject, Seeds: 2, OpsPerRun: 400,
			Profiles: []workload.Profile{workload.Soup},
		})
		if err != nil {
			t.Fatalf("%s: %v", subject, err)
		}
		if res.Runs != 2 || res.OpsExecuted == 0 {
			t.Errorf("%s: runs=%d ops=%d", subject, res.Runs, res.OpsExecuted)
		}
		if len(res.Discrepancies) != 0 {
			t.Errorf("%s: %d discrepancies on clean implementations; first: %s",
				subject, len(res.Discrepancies), res.FirstFailure)
		}
	}
}

// TestCampaignFindsSeededBaseBug is the detection half of §4.3: a campaign
// against a base with a planted silent-corruption bug must surface
// discrepancies ("disagreements ... indicate bugs in the base").
func TestCampaignFindsSeededBaseBug(t *testing.T) {
	reg := faultinject.NewRegistry(17)
	reg.Arm(&faultinject.Specimen{
		ID: "campaign-bug", Class: faultinject.SilentCorrupt,
		Deterministic: true, Op: "writeat", Point: "inode", AfterN: 20,
	})
	res, err := RunCampaign(CampaignConfig{
		Subject: SubjectBase, Seeds: 2, OpsPerRun: 500,
		Profiles: []workload.Profile{workload.DataHeavy},
		Injector: &basefs.Options{Injector: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discrepancies) == 0 {
		t.Fatal("campaign missed the planted base bug")
	}
	if res.FirstFailure == "" {
		t.Error("no first-failure description")
	}
	t.Logf("campaign caught: %s (%d total findings)", res.FirstFailure, len(res.Discrepancies))
}
