package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/telemetry"
	"repro/internal/volmgr"
	"repro/internal/workload"
)

// E14: the multi-tenant serving experiment. N volumes run the same steady
// workload under one volume manager twice: a baseline phase with no faults,
// and a storm phase where volume 0 is hit by a deterministic fault storm — a
// recurring crash specimen (faultinject) plus per-IO device latency
// (blockdev fault plan) — driving recovery after recovery while its
// neighbors keep serving. The isolation claim is quantitative: the healthy
// volumes' p99 operation latency moves by at most a few percent between
// phases, while the storm volume masks every failure. Cache-quota
// enforcement evidence rides along from the fleet telemetry (rebalance
// passes, blocks moved, per-volume quota gauges).

// MultiTenantVolumeBlocks is each tenant's device size in the E14 fleet.
const MultiTenantVolumeBlocks = 8192

// MultiTenantResult is the E14 table.
type MultiTenantResult struct {
	Volumes      int
	OpsPerVolume int

	// Healthy-tenant latency, exact (sample-sorted, not histogram buckets).
	BaselineHealthyP50 time.Duration
	BaselineHealthyP99 time.Duration
	StormHealthyP50    time.Duration
	StormHealthyP99    time.Duration
	// HealthyP99DeltaPct is the headline isolation number: how much the
	// healthy tenants' p99 degraded because their neighbor was storming.
	HealthyP99DeltaPct float64

	// Storm-volume outcome: every fault masked, throughput under recovery.
	StormRecoveries     int64
	StormAppFailures    int64
	StormDowntime       time.Duration
	StormOps            int
	StormOpsPerSec      float64
	BaselineStormOpsSec float64 // same tenant's throughput without the storm

	// Fleet evidence from the storm phase's rollup.
	RebalancePasses   int64
	RebalancedBlocks  int64
	QuotaGauges       map[string]int64 // volmgr.cache.quota.* at phase end
	HealthyRecoveries int64            // must be zero

	BaselineElapsed time.Duration
	StormElapsed    time.Duration
}

// phaseOutcome is one phase's measurements.
type phaseOutcome struct {
	healthyLat  []time.Duration
	stormStats  core.Stats
	stormOps    int
	elapsed     time.Duration
	fleet       telemetry.Snapshot
	healthyRecs int64
}

// MultiTenant runs both phases and reports E14. volumes must be >= 2 (one
// storm tenant plus at least one healthy neighbor).
func MultiTenant(volumes, opsPerVolume int, seed int64) (MultiTenantResult, error) {
	res := MultiTenantResult{Volumes: volumes, OpsPerVolume: opsPerVolume}
	if volumes < 2 {
		return res, fmt.Errorf("experiments: multitenant needs >= 2 volumes, got %d", volumes)
	}
	base, err := multiTenantPhase(volumes, opsPerVolume, seed, false)
	if err != nil {
		return res, fmt.Errorf("baseline phase: %w", err)
	}
	storm, err := multiTenantPhase(volumes, opsPerVolume, seed, true)
	if err != nil {
		return res, fmt.Errorf("storm phase: %w", err)
	}

	res.BaselineHealthyP50 = exactQuantile(base.healthyLat, 0.50)
	res.BaselineHealthyP99 = exactQuantile(base.healthyLat, 0.99)
	res.StormHealthyP50 = exactQuantile(storm.healthyLat, 0.50)
	res.StormHealthyP99 = exactQuantile(storm.healthyLat, 0.99)
	if res.BaselineHealthyP99 > 0 {
		res.HealthyP99DeltaPct = (float64(res.StormHealthyP99) - float64(res.BaselineHealthyP99)) /
			float64(res.BaselineHealthyP99) * 100
	}
	res.StormRecoveries = storm.stormStats.Recoveries
	res.StormAppFailures = storm.stormStats.AppFailures
	res.StormDowntime = storm.stormStats.TotalDowntime
	res.StormOps = storm.stormOps
	res.StormOpsPerSec = float64(storm.stormOps) / storm.elapsed.Seconds()
	res.BaselineStormOpsSec = float64(base.stormOps) / base.elapsed.Seconds()
	res.RebalancePasses = storm.fleet.Counters["volmgr.cache.rebalance"]
	res.RebalancedBlocks = storm.fleet.Counters["volmgr.cache.rebalanced_blocks"]
	res.QuotaGauges = map[string]int64{}
	for name, v := range storm.fleet.Gauges {
		if strings.HasPrefix(name, "volmgr.cache.quota.") {
			res.QuotaGauges[name] = v
		}
	}
	res.HealthyRecoveries = storm.healthyRecs
	res.BaselineElapsed = base.elapsed
	res.StormElapsed = storm.elapsed
	return res, nil
}

// multiTenantPhase runs one phase: volumes tenants applying their traces
// concurrently, the rebalancer running throughout, and — in the storm phase —
// volume 0 under the fault storm.
func multiTenantPhase(volumes, opsPerVolume int, seed int64, storm bool) (phaseOutcome, error) {
	var out phaseOutcome
	m, err := volmgr.New(volmgr.Config{
		PoolBlocks:        uint32(volumes) * MultiTenantVolumeBlocks,
		CacheBudgetBlocks: 96 * volumes,
		CacheMinPerVolume: 32,
	})
	if err != nil {
		return out, err
	}
	defer m.Shutdown()

	// The workload generator needs the geometry; formatting is deterministic
	// for a given size, so a throwaway image yields the fleet's superblock.
	sb, err := mkfs.Format(blockdev.NewMem(MultiTenantVolumeBlocks), mkfs.Options{})
	if err != nil {
		return out, err
	}

	vols := make([]*volmgr.Volume, volumes)
	for i := 0; i < volumes; i++ {
		vc := volmgr.VolumeConfig{Blocks: MultiTenantVolumeBlocks}
		if storm && i == 0 {
			reg := faultinject.NewRegistry(seed)
			// The same recurring deterministic crash E5 uses: metaheavy
			// steadily creates "box" directories, so the bug fires over and
			// over — a storm of recoveries, not one incident.
			reg.Arm(&faultinject.Specimen{
				ID: "e14-storm", Class: faultinject.Crash,
				Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "box",
			})
			vc.Core.Base.Injector = reg
		}
		v, err := m.Create(fmt.Sprintf("vol%d", i), vc)
		if err != nil {
			return out, err
		}
		if storm && i == 0 {
			// The blockdev half of the storm: every IO on the storm tenant's
			// device pays a service time, stretching its recoveries.
			plan := blockdev.NewFaultPlan(seed)
			plan.ReadLatency = 20 * time.Microsecond
			plan.WriteLatency = 20 * time.Microsecond
			v.Device().SetFaults(plan)
		}
		vols[i] = v
	}

	// One trace per tenant, distinct seeds so the fleet isn't N clones of
	// one op stream; identical between phases so the comparison is paired.
	traces := make([][]*oplog.Op, volumes)
	for i := range traces {
		traces[i] = workload.Generate(workload.Config{
			Profile: workload.MetaHeavy, Seed: seed + int64(i)*101,
			NumOps: opsPerVolume, Superblock: sb, SyncEvery: 100,
		})
	}

	stop := make(chan struct{})
	var rebal sync.WaitGroup
	rebal.Add(1)
	go func() {
		defer rebal.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				m.RebalanceOnce()
			}
		}
	}()

	latencies := make([][]time.Duration, volumes)
	applied := make([]int, volumes)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range vols {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			samples := make([]time.Duration, 0, len(traces[i]))
			st := workload.DriveObserved(vols[i], traces[i], func(_, _ *oplog.Op, d time.Duration) {
				samples = append(samples, d)
			})
			latencies[i] = samples
			applied[i] = st.Applied
		}(i)
	}
	wg.Wait()
	out.elapsed = time.Since(start)
	close(stop)
	rebal.Wait()

	for i := 1; i < volumes; i++ {
		out.healthyLat = append(out.healthyLat, latencies[i]...)
		out.healthyRecs += vols[i].Stats().Recoveries
	}
	out.stormStats = vols[0].Stats()
	out.stormOps = applied[0]
	out.fleet = m.FleetSnapshot()
	return out, nil
}

// exactQuantile sorts the samples and returns the q-th; exact, unlike the
// telemetry histograms' bucket upper bounds, so small latency deltas are
// measurable.
func exactQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}
