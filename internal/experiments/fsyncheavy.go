package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/mkfs"
	"repro/internal/telemetry"
)

// FsyncHeavyResult quantifies the durability path: how many device flushes
// one fsync costs, and how well concurrent fsyncs coalesce onto shared
// journal commits (group commit). The pre-group-commit implementation spent
// 6 flushes per sync and serialized concurrent fsyncs behind the filesystem
// lock; the single-flush-pair commit plus lazy checkpointing targets 2-3.
type FsyncHeavyResult struct {
	// Sequential phase: one writer, create+write+fsync per file.
	Syncs          int
	Flushes        int64
	FlushesPerSync float64
	// Concurrent phase: Workers goroutines fsyncing independently against a
	// device with per-write latency, so batching is visible in wall time.
	Workers      int
	Fsyncs       int
	FsyncsPerSec float64
	ConcFlushes  int64
}

// FsyncHeavy runs both phases of the durability-path measurement. The
// device write latency models a fast NVMe-class device; it makes flush
// savings visible in the concurrent throughput number rather than only in
// the flush counters.
func FsyncHeavy(numSyncs, workers, perWorker int, writeLatency time.Duration, seed int64) (FsyncHeavyResult, error) {
	res := FsyncHeavyResult{Syncs: numSyncs, Workers: workers, Fsyncs: workers * perWorker}

	// Phase 1: sequential flushes per sync.
	dev := blockdev.NewMem(ImageBlocks)
	if _, err := mkfs.Format(dev, mkfs.Options{JournalBlocks: 256}); err != nil {
		return res, err
	}
	fs, err := basefs.Mount(dev, basefs.Options{Telemetry: telemetry.Default()})
	if err != nil {
		return res, err
	}
	before := dev.Stats().Snapshot().Flushes
	for i := 0; i < numSyncs; i++ {
		fd, err := fs.Create(fmt.Sprintf("/seq%d", i), 0o644)
		if err != nil {
			fs.Kill()
			return res, err
		}
		if _, err := fs.WriteAt(fd, 0, []byte("fsync-heavy payload")); err != nil {
			fs.Kill()
			return res, err
		}
		if err := fs.Fsync(fd); err != nil {
			fs.Kill()
			return res, err
		}
		if err := fs.Close(fd); err != nil {
			fs.Kill()
			return res, err
		}
	}
	res.Flushes = dev.Stats().Snapshot().Flushes - before
	res.FlushesPerSync = float64(res.Flushes) / float64(numSyncs)
	fs.Kill()

	// Phase 2: concurrent fsync throughput under device latency.
	dev2 := blockdev.NewMem(ImageBlocks)
	if _, err := mkfs.Format(dev2, mkfs.Options{JournalBlocks: 256}); err != nil {
		return res, err
	}
	plan := blockdev.NewFaultPlan(seed)
	plan.WriteLatency = writeLatency
	dev2.SetFaults(plan)
	fs2, err := basefs.Mount(dev2, basefs.Options{Telemetry: telemetry.Default()})
	if err != nil {
		return res, err
	}
	defer fs2.Kill()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				fd, err := fs2.Create(fmt.Sprintf("/w%d-%d", w, i), 0o644)
				if err != nil {
					errs[w] = err
					return
				}
				if _, err := fs2.WriteAt(fd, 0, []byte("concurrent payload")); err != nil {
					errs[w] = err
					return
				}
				if err := fs2.Fsync(fd); err != nil {
					errs[w] = err
					return
				}
				if err := fs2.Close(fd); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.FsyncsPerSec = float64(res.Fsyncs) / elapsed.Seconds()
	res.ConcFlushes = dev2.Stats().Snapshot().Flushes
	return res, nil
}
