package experiments

import (
	"time"

	"repro/internal/basefs"
	"repro/internal/workload"
)

// AblationResult is one row of the component-ablation table: the base
// filesystem with one performance component weakened, against the stock
// configuration. This quantifies the paper's architectural claim that the
// base's speed comes precisely from the machinery the shadow omits (§3.3):
// the dentry cache, the buffer cache, asynchronous IO width, and disabled
// runtime checks.
type AblationResult struct {
	Name      string
	Profile   workload.Profile
	OpsPerSec float64
	// SlowdownPct is relative to the stock base on the same trace.
	SlowdownPct float64
}

// ablations enumerates the weakened configurations.
func ablations() []struct {
	name string
	opts basefs.Options
} {
	return []struct {
		name string
		opts basefs.Options
	}{
		{"stock", basefs.Options{}},
		{"no-dentry-cache", basefs.Options{CacheDentries: 16}}, // floor size
		{"tiny-buffer-cache", basefs.Options{CacheBlocks: 8}},
		{"single-queue-worker", basefs.Options{QueueWorkers: 1, QueueDepth: 1}},
		{"extra-checks-on", basefs.Options{ExtraChecks: true}},
		{"2q-buffer-cache", basefs.Options{CachePolicy: "2q"}},
		{"all-weakened", basefs.Options{
			CacheDentries: 16, CacheBlocks: 8, QueueWorkers: 1, QueueDepth: 1, ExtraChecks: true,
		}},
	}
}

// Ablate measures every weakened configuration on one profile.
func Ablate(profile workload.Profile, numOps int, seed int64) ([]AblationResult, error) {
	trace := workload.Generate(workload.Config{
		Profile: profile, Seed: seed, NumOps: numOps, SyncEvery: 200,
	})
	var out []AblationResult
	var stock float64
	for _, ab := range ablations() {
		// Best of three timed runs after one warmup, each on a fresh image:
		// the fast profiles finish in milliseconds, where scheduler noise
		// would otherwise dominate the component effects.
		best := 0.0
		for round := 0; round < 4; round++ {
			dev, _, err := newImage(ImageBlocks)
			if err != nil {
				return nil, err
			}
			base, err := basefs.Mount(dev, ab.opts)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			applyTrace(base, trace)
			elapsed := time.Since(start)
			base.Kill()
			if round == 0 {
				continue // warmup
			}
			if ops := float64(len(trace)) / elapsed.Seconds(); ops > best {
				best = ops
			}
		}
		if ab.name == "stock" {
			stock = best
		}
		out = append(out, AblationResult{
			Name:        ab.name,
			Profile:     profile,
			OpsPerSec:   best,
			SlowdownPct: (stock - best) / stock * 100,
		})
	}
	return out, nil
}
