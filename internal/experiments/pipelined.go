package experiments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/faultinject"
	"repro/internal/fserr"
	"repro/internal/fswire"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
	"repro/internal/volmgr"
	"repro/internal/workload"
)

// E18: wire-protocol pipelining. E17 drives the served fleet with one
// synchronous RPC per operation, so every op pays a full loopback round trip
// plus the per-request scheduling cost. E18 isolates that wire cost with
// three fleet runs, each from fresh volumes:
//
//  1. baseline — healthy fleet, sequential clients (the E17 driver);
//  2. pipelined — same healthy fleet, pipelined clients (deep submission
//     window, small-write coalescing into tWriteBatch, chunked tReadStream
//     for large reads); speedup = phase 2 / phase 1;
//  3. storm — pipelined clients with the E17 crash storm armed on vol0,
//     proving the masking property survives pipelining: recoveries stay
//     behind the wire (zero client-visible fault-class errnos) and healthy
//     tenants never recover;
//  4. wire floor — one client against a served in-memory model volume
//     (backend cost ~1µs/op), sequential vs pipelined. With the backend out
//     of the picture this isolates the protocol's own per-op cost, which is
//     what pipelining actually attacks.
//
// The healthy phases carry the fleet throughput claim, but their speedup is
// modest by design: a supervised volume costs far more per op than a
// loopback round trip, so the fleet is backend-bound and overlapping RTTs
// barely shows. The floor phase is where the wire is the bottleneck and the
// pipelined win is visible. The storm phase is recovery-bound — E14/E17
// already showed contained reboots dominate a storming tenant's wall clock,
// and no client-side protocol change can hide server-side recovery work.

// WirePipelineResult is the E18 table.
type WirePipelineResult struct {
	Volumes      int
	Clients      int
	OpsPerClient int
	Window       int
	Batch        int

	// Phase throughput and the headline ratio.
	BaselineElapsed    time.Duration
	BaselineOpsPerSec  float64
	PipelinedElapsed   time.Duration
	PipelinedOpsPerSec float64
	Speedup            float64

	// Correctness accounting, summed over all phases.
	TotalOps     int
	ClientFaults int // must be 0

	// Storm-phase outcome: pipelined clients with the recurring crash
	// specimen armed on vol0.
	StormOpsPerSec    float64
	StormRecoveries   int64
	StormAppFailures  int64
	HealthyRecoveries int64 // across all phases; must be 0

	// Pipelined-phase wire instruments.
	WireOps       int64
	BatchedWrites int64
	StreamChunks  int64

	// Wire-floor phase: one client, served in-memory model volume.
	FloorSeqOpsPerSec  float64
	FloorPipeOpsPerSec float64
	FloorSpeedup       float64
}

// wirePhase is one fleet run: either sequential (cfg == nil) or pipelined.
type wirePhase struct {
	elapsed     time.Duration
	ops         int
	faults      int
	stormRec    int64
	stormFail   int64
	healthyRec  int64
	wireOps     int64
	batchWrites int64
	chunks      int64
}

// ServerPipelined runs E18. window >= 1 is the per-connection in-flight
// budget (1 degenerates to sequential RPCs through the async path); batch is
// the write-coalescing cap in ops (0 or 1 disables coalescing).
func ServerPipelined(volumes, clients, opsPerClient int, seed int64, window, batch int) (WirePipelineResult, error) {
	res := WirePipelineResult{
		Volumes: volumes, Clients: clients, OpsPerClient: opsPerClient,
		Window: window, Batch: batch,
	}
	if volumes < 2 {
		return res, fmt.Errorf("experiments: pipelined server needs >= 2 volumes, got %d", volumes)
	}
	if clients < 1 {
		return res, fmt.Errorf("experiments: pipelined server needs >= 1 client, got %d", clients)
	}
	if window < 1 {
		return res, fmt.Errorf("experiments: window must be >= 1, got %d", window)
	}

	base, err := runServerPhase(volumes, clients, opsPerClient, seed, nil, false)
	if err != nil {
		return res, fmt.Errorf("baseline phase: %w", err)
	}
	cfg := &fswire.ClientConfig{Window: window, BatchMaxOps: batch}
	pipe, err := runServerPhase(volumes, clients, opsPerClient, seed, cfg, false)
	if err != nil {
		return res, fmt.Errorf("pipelined phase: %w", err)
	}
	storm, err := runServerPhase(volumes, clients, opsPerClient, seed, cfg, true)
	if err != nil {
		return res, fmt.Errorf("storm phase: %w", err)
	}
	floorSeq, floorPipe, err := runWireFloor(clients*opsPerClient, seed, *cfg)
	if err != nil {
		return res, fmt.Errorf("wire-floor phase: %w", err)
	}

	res.BaselineElapsed = base.elapsed
	res.BaselineOpsPerSec = float64(base.ops) / base.elapsed.Seconds()
	res.PipelinedElapsed = pipe.elapsed
	res.PipelinedOpsPerSec = float64(pipe.ops) / pipe.elapsed.Seconds()
	if res.BaselineOpsPerSec > 0 {
		res.Speedup = res.PipelinedOpsPerSec / res.BaselineOpsPerSec
	}
	res.StormOpsPerSec = float64(storm.ops) / storm.elapsed.Seconds()
	res.TotalOps = base.ops + pipe.ops + storm.ops
	res.ClientFaults = base.faults + pipe.faults + storm.faults
	res.StormRecoveries = storm.stormRec
	res.StormAppFailures = storm.stormFail
	res.HealthyRecoveries = base.healthyRec + base.stormRec + pipe.healthyRec + pipe.stormRec + storm.healthyRec
	res.WireOps = pipe.wireOps
	res.BatchedWrites = pipe.batchWrites
	res.StreamChunks = pipe.chunks
	res.FloorSeqOpsPerSec = floorSeq
	res.FloorPipeOpsPerSec = floorPipe
	if floorSeq > 0 {
		res.FloorSpeedup = floorPipe / floorSeq
	}
	return res, nil
}

// runWireFloor serves an in-memory model volume over loopback and drives the
// same trace through a sequential and then a pipelined client, each against a
// fresh model. The backend costs ~1µs/op, so the rates measure the wire
// stack itself: framing, syscalls, scheduling, and — pipelined — how well
// round trips overlap.
func runWireFloor(numOps int, seed int64, cfg fswire.ClientConfig) (seqRate, pipeRate float64, err error) {
	sb, err := mkfs.Format(blockdev.NewMem(MultiTenantVolumeBlocks), mkfs.Options{})
	if err != nil {
		return 0, 0, err
	}
	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: seed, NumOps: numOps, Superblock: sb, SyncEvery: 100,
	})
	run := func(pcfg *fswire.ClientConfig) (float64, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		srv := fswire.NewServer(fswire.Single(fswire.Locked(model.New(sb))))
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		defer func() {
			srv.Close()
			<-serveDone
		}()
		var c *fswire.Client
		if pcfg != nil {
			c, err = fswire.DialConfig(ln.Addr().String(), "floor", *pcfg)
		} else {
			c, err = fswire.Dial(ln.Addr().String(), "floor")
		}
		if err != nil {
			return 0, err
		}
		defer c.Hangup()
		start := time.Now()
		if pcfg != nil {
			workload.DrivePipelined(c, trace, nil)
		} else {
			workload.Drive(c, trace)
		}
		return float64(len(trace)) / time.Since(start).Seconds(), nil
	}
	if seqRate, err = run(nil); err != nil {
		return 0, 0, err
	}
	if pipeRate, err = run(&cfg); err != nil {
		return 0, 0, err
	}
	return seqRate, pipeRate, nil
}

// runServerPhase builds a fresh fleet (same geometry and storm specimen as
// E17), serves it over loopback, and drives it with clients — sequentially
// when cfg is nil, pipelined otherwise. Fresh state per phase keeps the two
// runs comparable: each starts from empty volumes and an unfired storm.
func runServerPhase(volumes, clients, opsPerClient int, seed int64, cfg *fswire.ClientConfig, storm bool) (wirePhase, error) {
	var out wirePhase

	m, err := volmgr.New(volmgr.Config{
		PoolBlocks:        uint32(volumes) * MultiTenantVolumeBlocks,
		CacheBudgetBlocks: 96 * volumes,
		CacheMinPerVolume: 32,
	})
	if err != nil {
		return out, err
	}
	defer m.Shutdown()

	vols := make([]*volmgr.Volume, volumes)
	for i := range vols {
		vc := volmgr.VolumeConfig{Blocks: MultiTenantVolumeBlocks}
		if storm && i == 0 {
			reg := faultinject.NewRegistry(seed)
			reg.Arm(&faultinject.Specimen{
				ID: "e18-storm", Class: faultinject.Crash,
				Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "box",
			})
			vc.Core.Base.Injector = reg
		}
		if vols[i], err = m.Create(fmt.Sprintf("vol%d", i), vc); err != nil {
			return out, err
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return out, err
	}
	srv := fswire.NewServer(fswire.Volumes(m), fswire.WithTelemetry(m.Telemetry()))
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
	}()

	sb, err := mkfs.Format(blockdev.NewMem(MultiTenantVolumeBlocks), mkfs.Options{})
	if err != nil {
		return out, err
	}

	type clientOutcome struct {
		applied int
		faults  int
		err     error
	}
	outcomes := make([]clientOutcome, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			volume := fmt.Sprintf("vol%d", ci%volumes)
			var c *fswire.Client
			var err error
			if cfg != nil {
				c, err = fswire.DialConfig(ln.Addr().String(), volume, *cfg)
			} else {
				c, err = fswire.Dial(ln.Addr().String(), volume)
			}
			if err != nil {
				outcomes[ci].err = fmt.Errorf("client %d: dial %s: %w", ci, volume, err)
				return
			}
			defer c.Hangup()
			trace := workload.Generate(workload.Config{
				Profile: workload.MetaHeavy, Seed: seed + int64(ci)*101,
				NumOps: opsPerClient, Superblock: sb, SyncEvery: 100,
			})
			countFault := func(got *oplog.Op) {
				if got.Errno != 0 && fserr.IsFault(fserr.FromErrno(got.Errno)) {
					outcomes[ci].faults++
				}
			}
			var st workload.DriveStats
			if cfg != nil {
				st = workload.DrivePipelined(c, trace, func(_, got *oplog.Op) { countFault(got) })
			} else {
				st = workload.DriveObserved(c, trace, func(_, got *oplog.Op, _ time.Duration) { countFault(got) })
			}
			outcomes[ci].applied = st.Applied
		}(ci)
	}
	wg.Wait()
	out.elapsed = time.Since(start)

	for _, o := range outcomes {
		if o.err != nil {
			return out, o.err
		}
		out.ops += o.applied
		out.faults += o.faults
	}
	for i, v := range vols {
		st := v.Stats()
		if i == 0 {
			out.stormRec = st.Recoveries
			out.stormFail = st.AppFailures
		} else {
			out.healthyRec += st.Recoveries
		}
	}
	snap := m.Telemetry().Snapshot()
	out.wireOps = snap.Counters["fswire.ops"]
	out.batchWrites = snap.Counters["fswire.batch.writes"]
	out.chunks = snap.Counters["fswire.stream.chunks"]
	return out, nil
}
