package experiments

import "testing"

// TestMultiTenantSmoke is E14's invariant at smoke scale: a fault storm on
// one tenant drives repeated masked recoveries there and leaves every
// neighbor untouched — zero recoveries, zero app failures — while the fleet
// rollup shows the cache rebalancer enforcing quotas.
func TestMultiTenantSmoke(t *testing.T) {
	volumes, ops := 4, 300
	if testing.Short() {
		volumes, ops = 2, 120
	}
	res, err := MultiTenant(volumes, ops, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.StormRecoveries < 2 {
		t.Errorf("storm volume recoveries = %d, want a storm (>= 2)", res.StormRecoveries)
	}
	if res.StormAppFailures != 0 {
		t.Errorf("storm volume surfaced %d app failures; RAE must mask them all",
			res.StormAppFailures)
	}
	if res.HealthyRecoveries != 0 {
		t.Errorf("healthy volumes recorded %d recoveries; the storm leaked", res.HealthyRecoveries)
	}
	if res.StormOps < ops {
		t.Errorf("storm volume applied %d ops, want >= %d", res.StormOps, ops)
	}
	if res.BaselineHealthyP99 <= 0 || res.StormHealthyP99 <= 0 {
		t.Errorf("missing healthy latency samples: baseline p99 %v, storm p99 %v",
			res.BaselineHealthyP99, res.StormHealthyP99)
	}
	if len(res.QuotaGauges) != volumes {
		t.Errorf("quota gauges for %d volumes, want %d: %v",
			len(res.QuotaGauges), volumes, res.QuotaGauges)
	}
	for name, q := range res.QuotaGauges {
		if q < 32 {
			t.Errorf("%s = %d, below the configured floor 32", name, q)
		}
	}
}
