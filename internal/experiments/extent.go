package experiments

// E16: the extent-layout series. Two claims are measured. First, large-file
// sequential IO: delayed allocation plus the vectored device path turns a
// sequential write (and the cold read-back) of one big file into a handful
// of ranged device calls, where the legacy bmap pays one call per block —
// on a device with a fixed per-IO service time that is the throughput gap.
// Second, metadata locality: a region-scoped metadata check over the same
// live data costs the same device IO however large the image is, because
// extent metadata is proportional to live runs, not device size.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsck"
	"repro/internal/mkfs"
)

// ExtentIOLatency is the per-IO device service time armed for the E16
// sequential series: large enough that device calls dominate memory copies.
const ExtentIOLatency = 20 * time.Microsecond

// ExtentSeqResult is one row of the E16 sequential-throughput table.
type ExtentSeqResult struct {
	Layout     string // "extent" or "bmap"
	FileMB     int
	WriteTime  time.Duration
	ReadTime   time.Duration
	WriteMBps  float64
	ReadMBps   float64
	WriteCalls int64 // device-level write calls during write+sync
	ReadCalls  int64 // device-level read calls during the cold read-back
}

// ExtentSequential writes one fileMB-sized file sequentially (then syncs),
// remounts to drop the cache, and reads it back, once on the extent layout
// and once on the legacy bmap. The device charges ioLat per IO call, so the
// bytes/s ratio is the vectoring win.
func ExtentSequential(fileMB int, ioLat time.Duration, seed int64) ([]ExtentSeqResult, error) {
	const chunk = 256 << 10
	fileBlocks := uint32(fileMB) << 20 / disklayout.BlockSize
	imageBlocks := fileBlocks*2 + 4096 // room for metadata and the journal
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	var res []ExtentSeqResult
	for _, layout := range []string{"extent", "bmap"} {
		dev := blockdev.NewMem(imageBlocks)
		if _, err := mkfs.Format(dev, mkfs.Options{}); err != nil {
			return nil, err
		}
		plan := blockdev.NewFaultPlan(seed)
		plan.ReadLatency, plan.WriteLatency = ioLat, ioLat
		dev.SetFaults(plan)
		opts := basefs.Options{LegacyLayout: layout == "bmap"}
		fs, err := basefs.Mount(dev, opts)
		if err != nil {
			return nil, err
		}
		r := ExtentSeqResult{Layout: layout, FileMB: fileMB}

		w0 := dev.Stats().WriteCalls.Load()
		start := time.Now()
		fd, err := fs.Create("/big", 0o644)
		if err != nil {
			return nil, err
		}
		for off := int64(0); off < int64(fileMB)<<20; off += chunk {
			if _, err := fs.WriteAt(fd, off, buf); err != nil {
				return nil, fmt.Errorf("experiments: %s write at %d: %w", layout, off, err)
			}
		}
		if err := fs.Sync(); err != nil {
			return nil, err
		}
		r.WriteTime = time.Since(start)
		r.WriteCalls = dev.Stats().WriteCalls.Load() - w0
		if err := fs.Close(fd); err != nil {
			return nil, err
		}
		if err := fs.Unmount(); err != nil {
			return nil, err
		}

		// Cold read-back: a fresh mount has an empty buffer cache, so every
		// byte comes off the device — per run on extents, per block on bmap.
		fs, err = basefs.Mount(dev, opts)
		if err != nil {
			return nil, err
		}
		c0 := dev.Stats().ReadCalls.Load()
		start = time.Now()
		fd, err = fs.Open("/big")
		if err != nil {
			return nil, err
		}
		for off := int64(0); off < int64(fileMB)<<20; off += chunk {
			got, err := fs.ReadAt(fd, off, chunk)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s read at %d: %w", layout, off, err)
			}
			if len(got) != chunk || got[0] != buf[0] || got[chunk-1] != buf[chunk-1] {
				return nil, fmt.Errorf("experiments: %s read-back mismatch at %d", layout, off)
			}
		}
		r.ReadTime = time.Since(start)
		r.ReadCalls = dev.Stats().ReadCalls.Load() - c0
		mb := float64(fileMB)
		r.WriteMBps = mb / r.WriteTime.Seconds()
		r.ReadMBps = mb / r.ReadTime.Seconds()
		res = append(res, r)
		if err := fs.Unmount(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ExtentScaleResult is one row of the E16 metadata-locality sweep.
type ExtentScaleResult struct {
	ImageBlocks uint32
	ScopeBlocks int   // blocks the live data set touched
	ScopedReads int64 // device reads the scoped metadata check cost
	ScopedTime  time.Duration
}

// ExtentMetadataScale writes the same live data set — one fileMB sequential
// file plus a handful of small files — onto images of each given size, then
// runs the region-scoped metadata check over the touched set and reports its
// device-read cost. On the extent layout that cost tracks live data, so the
// column stays flat as the image grows.
func ExtentMetadataScale(imageSizes []uint32, fileMB int, seed int64) ([]ExtentScaleResult, error) {
	const chunk = 256 << 10
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i * 13)
	}
	var res []ExtentScaleResult
	for _, blocks := range imageSizes {
		dev := blockdev.NewMem(blocks)
		// Fixed inode capacity: the sweep varies device size only, so the
		// metadata structures the live data touches stay comparable.
		if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 4096}); err != nil {
			return nil, err
		}
		sc := fsck.NewScope()
		sc.Add(0)
		// The hook fires from concurrent queue workers; Scope is not.
		var scMu sync.Mutex
		dev.SetWriteHook(func(blk uint32) {
			scMu.Lock()
			sc.Add(blk)
			scMu.Unlock()
		})
		fs, err := basefs.Mount(dev, basefs.Options{})
		if err != nil {
			return nil, err
		}
		fd, err := fs.Create("/big", 0o644)
		if err != nil {
			return nil, err
		}
		for off := int64(0); off < int64(fileMB)<<20; off += chunk {
			if _, err := fs.WriteAt(fd, off, buf); err != nil {
				return nil, err
			}
		}
		if err := fs.Close(fd); err != nil {
			return nil, err
		}
		for i := 0; i < 8; i++ {
			fd, err := fs.Create(fmt.Sprintf("/small-%d", i), 0o644)
			if err != nil {
				return nil, err
			}
			if _, err := fs.WriteAt(fd, 0, buf[:disklayout.BlockSize]); err != nil {
				return nil, err
			}
			if err := fs.Close(fd); err != nil {
				return nil, err
			}
		}
		if err := fs.Unmount(); err != nil {
			return nil, err
		}
		dev.SetWriteHook(nil)
		r0 := dev.Stats().Reads.Load()
		start := time.Now()
		rep := fsck.CheckScoped(dev, sc, 4)
		dur := time.Since(start)
		if !rep.Clean() {
			return nil, fmt.Errorf("experiments: %d-block image scoped-checked unclean: %d problems",
				blocks, len(rep.Problems))
		}
		res = append(res, ExtentScaleResult{
			ImageBlocks: blocks,
			ScopeBlocks: sc.Len(),
			ScopedReads: dev.Stats().Reads.Load() - r0,
			ScopedTime:  dur,
		})
	}
	return res, nil
}
