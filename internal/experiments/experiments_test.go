package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestThroughputShape is experiment E3's invariant: the base must beat the
// shadow by a wide margin in the common case (caches + async IO vs none),
// and RAE must track the base far more closely than NVP-3 does.
func TestThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs real timing")
	}
	const ops = 4000
	base, err := Throughput(SysBase, workload.ReadMostly, ops, 1)
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := Throughput(SysShadow, workload.ReadMostly, ops, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.OpsPerSec < 2*shadow.OpsPerSec {
		t.Errorf("base (%.0f op/s) does not dominate shadow (%.0f op/s)",
			base.OpsPerSec, shadow.OpsPerSec)
	}
	rae, err := Throughput(SysRAE, workload.ReadMostly, ops, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rae.OpsPerSec < shadow.OpsPerSec {
		t.Errorf("rae (%.0f op/s) slower than the shadow itself (%.0f op/s)",
			rae.OpsPerSec, shadow.OpsPerSec)
	}
}

func TestRecoveryLatencyScalesWithLog(t *testing.T) {
	small, err := RecoveryLatency(16, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RecoveryLatency(512, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if small.Phases.Total() <= 0 || large.Phases.Total() <= 0 {
		t.Fatal("zero-duration recovery")
	}
	if large.Phases.Replay <= small.Phases.Replay {
		t.Errorf("replay phase did not grow with log: %v (16 ops) vs %v (512 ops)",
			small.Phases.Replay, large.Phases.Replay)
	}
}

// TestAvailabilityShape is experiment E5's invariant: under a recurring
// deterministic bug, RAE completes (essentially) everything with zero
// app-visible failures; crash-restart surfaces a failure per firing; naive
// replay degrades because re-execution re-triggers the bug.
func TestAvailabilityShape(t *testing.T) {
	const ops = 800
	rae, err := Availability(core.ModeRAE, ops, 5)
	if err != nil {
		t.Fatal(err)
	}
	crash, err := Availability(core.ModeCrashRestart, ops, 5)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Availability(core.ModeNaiveReplay, ops, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rae.Recoveries == 0 {
		t.Fatal("the bug never fired; experiment is vacuous")
	}
	if rae.AppFailures != 0 {
		t.Errorf("RAE surfaced %d failures", rae.AppFailures)
	}
	if rae.Completed != int64(rae.Ops) {
		t.Errorf("RAE completed %d/%d ops to spec", rae.Completed, rae.Ops)
	}
	if crash.AppFailures == 0 || crash.Completed >= rae.Completed {
		t.Errorf("crash-restart should lose ops: completed %d, failures %d",
			crash.Completed, crash.AppFailures)
	}
	if naive.Degradations == 0 {
		t.Errorf("naive replay never degraded under a deterministic bug: %+v", naive)
	}
	if naive.AppFailures == 0 {
		t.Errorf("naive replay surfaced no failures under a deterministic bug")
	}
}

func TestRecordingOverheadReasonable(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead test needs real timing")
	}
	res, err := RecordingOverhead(workload.MetaHeavy, 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.RAEOpsSec <= 0 || res.BaseOpsSec <= 0 {
		t.Fatal("degenerate measurement")
	}
	// Recording must not cost an order of magnitude.
	if res.RAEOpsSec < res.BaseOpsSec/10 {
		t.Errorf("recording overhead pathological: base %.0f, rae %.0f op/s",
			res.BaseOpsSec, res.RAEOpsSec)
	}
}

// TestLatencyTailShape is E4b's invariant: bugs inflate the tail, not the
// median — the application's common-case experience is untouched.
func TestLatencyTailShape(t *testing.T) {
	if testing.Short() {
		t.Skip("latency shape needs real timing")
	}
	clean, err := Latency(0, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	buggy, err := Latency(0.02, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if buggy.Recoveries == 0 {
		t.Fatal("no recoveries at 2% bug rate")
	}
	// Median stays within an order of magnitude; the max inflates well past
	// the clean run's max (each recovery costs milliseconds).
	if buggy.P50 > clean.P50*10 {
		t.Errorf("median inflated: clean %v, buggy %v", clean.P50, buggy.P50)
	}
	if buggy.Max < clean.P50*100 {
		t.Errorf("recoveries invisible in the tail: max %v", buggy.Max)
	}
}

// TestFsyncHeavyFlushBudget pins the durability-path regression boundary:
// one fsync must average well under the old 6 device flushes — the
// single-flush-pair commit plus deferred checkpointing budgets 2 for the
// common case plus amortized checkpoint flushes.
func TestFsyncHeavyFlushBudget(t *testing.T) {
	r, err := FsyncHeavy(100, 4, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.FlushesPerSync >= 3.0 {
		t.Errorf("flushes/sync = %.2f, want < 3.0 (pre-group-commit path cost 6)", r.FlushesPerSync)
	}
	if r.FsyncsPerSec <= 0 || r.ConcFlushes <= 0 {
		t.Errorf("concurrent phase did not run: %+v", r)
	}
	// Group commit + shared sync rounds: 40 concurrent fsyncs must need far
	// fewer than 40 commit pairs.
	if r.ConcFlushes >= int64(r.Fsyncs)*2 {
		t.Errorf("no coalescing: %d flushes for %d concurrent fsyncs", r.ConcFlushes, r.Fsyncs)
	}
}
