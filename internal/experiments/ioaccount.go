package experiments

import (
	"fmt"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/fsapi"
	"repro/internal/oplog"
	"repro/internal/shadowfs"
	"repro/internal/workload"
)

// IOResult is one row of the device-traffic comparison: how many block
// reads and writes each implementation issues for the same workload. The
// base's caches absorb most reads and its journal adds a bounded write
// overhead; the shadow reads synchronously with no cache ("performs IO
// synchronously", §2.3) and writes nothing.
type IOResult struct {
	System       System
	Profile      workload.Profile
	Ops          int
	DeviceReads  int64
	DeviceWrites int64
	Flushes      int64
}

// IOAccounting measures device traffic for the base and the shadow on the
// same trace.
func IOAccounting(profile workload.Profile, numOps int, seed int64) ([]IOResult, error) {
	trace := workload.Generate(workload.Config{
		Profile: profile, Seed: seed, NumOps: numOps, SyncEvery: 200,
	})
	var out []IOResult
	run := func(sys System, fs fsapi.FS, dev *blockdev.Mem, baseline blockdev.StatsSnapshot) {
		for _, rec := range trace {
			op := rec.Clone()
			op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
			_ = oplog.Apply(fs, op)
		}
		s := dev.Stats().Snapshot()
		out = append(out, IOResult{
			System: sys, Profile: profile, Ops: len(trace),
			DeviceReads:  s.Reads - baseline.Reads,
			DeviceWrites: s.Writes - baseline.Writes,
			Flushes:      s.Flushes - baseline.Flushes,
		})
	}

	dev, _, err := newImage(ImageBlocks)
	if err != nil {
		return nil, err
	}
	base, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		return nil, err
	}
	run(SysBase, base, dev, dev.Stats().Snapshot())
	base.Kill()

	dev2, _, err := newImage(ImageBlocks)
	if err != nil {
		return nil, err
	}
	sh, err := shadowfs.New(dev2, shadowfs.Options{SkipFsck: true})
	if err != nil {
		return nil, err
	}
	baseline := dev2.Stats().Snapshot()
	run(SysShadow, sh, dev2, baseline)
	// Invariant, not just a report: the shadow wrote nothing.
	final := dev2.Stats().Snapshot()
	if final.Writes != baseline.Writes || final.Flushes != baseline.Flushes {
		return nil, fmt.Errorf("experiments: shadow wrote to the device (%d writes)", final.Writes-baseline.Writes)
	}
	return out, nil
}
