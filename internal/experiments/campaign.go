package experiments

import (
	"fmt"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/difftest"
	"repro/internal/fsapi"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/shadowfs"
	"repro/internal/workload"
)

// Subject selects an implementation for the campaign.
type Subject int

// Subjects.
const (
	// SubjectBase tests the performance-oriented base filesystem.
	SubjectBase Subject = iota
	// SubjectShadow tests the shadow filesystem.
	SubjectShadow
)

// String names the subject in reports.
func (s Subject) String() string {
	if s == SubjectShadow {
		return "shadow"
	}
	return "base"
}

// CampaignConfig parameterizes a differential testing campaign: the §4.3
// testing phase, "running a large volume of workloads and monitoring for
// discrepancies".
type CampaignConfig struct {
	// Subject is the implementation under test (the oracle is always the
	// executable specification model).
	Subject Subject
	// Seeds is the number of random seeds per profile.
	Seeds int
	// OpsPerRun is the trace length per seed.
	OpsPerRun int
	// Profiles lists the workload mixes; nil selects all.
	Profiles []workload.Profile
	// ImageBlocks sizes the image per run (default 16384).
	ImageBlocks uint32
	// Injector, when non-nil, arms bugs in the base subject — campaigns
	// against a known-buggy base must *find* the discrepancies.
	Injector *basefs.Options
}

// CampaignResult summarizes one campaign.
type CampaignResult struct {
	Runs          int
	OpsExecuted   int
	Discrepancies []difftest.Discrepancy
	// FirstFailure describes the first diverging run, if any.
	FirstFailure string
}

// RunCampaign executes the campaign and returns the aggregate result.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 4
	}
	if cfg.OpsPerRun <= 0 {
		cfg.OpsPerRun = 800
	}
	if cfg.ImageBlocks == 0 {
		cfg.ImageBlocks = 16384
	}
	profiles := cfg.Profiles
	if profiles == nil {
		profiles = workload.Profiles()
	}
	res := &CampaignResult{}
	for _, profile := range profiles {
		for seed := int64(1); seed <= int64(cfg.Seeds); seed++ {
			dev := blockdev.NewMem(cfg.ImageBlocks)
			sb, err := mkfs.Format(dev, mkfs.Options{})
			if err != nil {
				return res, err
			}
			var subject fsapi.FS
			switch cfg.Subject {
			case SubjectShadow:
				sh, err := shadowfs.New(dev, shadowfs.Options{SkipFsck: true})
				if err != nil {
					return res, err
				}
				subject = sh
			default:
				opts := basefs.Options{}
				if cfg.Injector != nil {
					opts = *cfg.Injector
				}
				base, err := basefs.Mount(dev, opts)
				if err != nil {
					return res, err
				}
				defer base.Kill()
				subject = base
			}
			trace := workload.Generate(workload.Config{
				Profile: profile, Seed: seed, NumOps: cfg.OpsPerRun, Superblock: sb,
			})
			disc, err := difftest.VerifyEquivalence(subject, model.New(sb), trace)
			if err != nil {
				// A subject whose tree cannot even be walked (reads fail with
				// corruption) is the strongest possible discrepancy, not an
				// infrastructure error.
				disc = append(disc, difftest.Discrepancy{
					Field: "state-dump",
					Got:   err.Error(),
					Want:  "walkable tree",
				})
			}
			res.Runs++
			res.OpsExecuted += len(trace)
			if len(disc) > 0 && res.FirstFailure == "" {
				res.FirstFailure = fmt.Sprintf("%s subject, %s profile, seed %d: %s",
					cfg.Subject, profile, seed, disc[0])
			}
			res.Discrepancies = append(res.Discrepancies, disc...)
		}
	}
	return res, nil
}
