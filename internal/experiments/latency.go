package experiments

import (
	"sort"
	"time"

	"repro/internal/basefs"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// LatencyResult captures the per-operation latency distribution of a
// workload, the paper's §4.3 concern in measurable form: "recovery time
// does impact the expected response time observed by applications with
// in-flight operations". Recoveries do not fail operations under RAE — they
// stretch the unlucky ones, which shows up in the tail, not the median.
type LatencyResult struct {
	Mode       core.Mode
	BugRate    float64
	Ops        int
	Recoveries int64
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Max        time.Duration
	Mean       time.Duration
}

// Latency runs a metadata-heavy workload under RAE with a probabilistic
// crash specimen at the given per-op rate (0 disables) and returns the
// latency distribution of individual operations.
func Latency(bugRate float64, numOps int, seed int64) (LatencyResult, error) {
	res := LatencyResult{Mode: core.ModeRAE, BugRate: bugRate, Ops: numOps}
	dev, sb, err := newImage(ImageBlocks)
	if err != nil {
		return res, err
	}
	var reg *faultinject.Registry
	if bugRate > 0 {
		reg = faultinject.NewRegistry(seed)
		reg.Arm(&faultinject.Specimen{
			ID: "latency-crash", Class: faultinject.Crash,
			Deterministic: false, Prob: bugRate, Point: "entry",
		})
	}
	sup, err := core.Mount(dev, core.Config{Base: basefs.Options{Injector: reg}})
	if err != nil {
		return res, err
	}
	defer sup.Kill()
	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: seed, NumOps: numOps, Superblock: sb, SyncEvery: 100,
	})
	lat := make([]time.Duration, 0, len(trace))
	for _, rec := range trace {
		op := rec.Clone()
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		start := time.Now()
		_ = oplog.Apply(sup, op)
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(lat)-1))
		return lat[idx]
	}
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	res.P50, res.P95, res.P99, res.Max = pct(0.50), pct(0.95), pct(0.99), lat[len(lat)-1]
	res.Mean = total / time.Duration(len(lat))
	res.Recoveries = sup.Stats().Recoveries
	return res, nil
}
