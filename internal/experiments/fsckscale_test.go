package experiments

import "testing"

// TestFsckScaleSmoke runs each E13 harness at token scale: the shapes the
// benchmark relies on (parity enforced, scoped reads a small fraction of
// full reads, a real fsck phase measured) must hold even at smoke sizes.
func TestFsckScaleSmoke(t *testing.T) {
	rows, err := FsckParallelScale([]int{2}, 300, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (baseline + 1 worker count)", len(rows))
	}
	if rows[0].Workers != 0 || rows[1].Workers != 2 {
		t.Errorf("row workers = %d,%d", rows[0].Workers, rows[1].Workers)
	}
	if rows[0].Problems != rows[1].Problems || rows[0].ChecksRun != rows[1].ChecksRun {
		t.Error("harness returned rows it should have rejected as diverged")
	}
	// The read-once cache means the parallel pass cannot read more blocks
	// than the sequential walk.
	if rows[1].DevReads > rows[0].DevReads {
		t.Errorf("parallel read %d blocks, sequential %d", rows[1].DevReads, rows[0].DevReads)
	}

	scoped, err := ScopedFsckScale([]uint32{4096}, 8, 300, 5, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scoped) != 1 {
		t.Fatalf("got %d scoped rows, want 1", len(scoped))
	}
	if scoped[0].ScopedReads >= scoped[0].FullReads {
		t.Errorf("scoped check read %d blocks, full %d — no proportionality win",
			scoped[0].ScopedReads, scoped[0].FullReads)
	}
	if scoped[0].GapBlocks == 0 {
		t.Error("gap session touched no blocks")
	}

	rec, err := RecoveryFsckStage(100, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.FsckSeq <= 0 || rec.FsckPar <= 0 {
		t.Errorf("fsck stage unmeasured: seq=%v par=%v", rec.FsckSeq, rec.FsckPar)
	}
}
