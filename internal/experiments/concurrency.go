package experiments

import (
	"strings"
	"sync"
	"time"

	"repro/internal/basefs"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// ConcurrencyResult is one cell of the E11 sweep: one system running one
// profile from `Goroutines` concurrent appliers, each with its own trace in
// its own directory subtree.
type ConcurrencyResult struct {
	System     System
	Profile    workload.Profile
	Goroutines int
	Ops        int
	Elapsed    time.Duration
	OpsPerSec  float64
}

// prefixTrace rewrites every absolute path of a recorded trace under a
// goroutine-private prefix, so concurrent appliers operate on disjoint
// subtrees and their per-goroutine outcomes stay comparable to the oracle's.
func prefixTrace(trace []*oplog.Op, prefix string) []*oplog.Op {
	out := make([]*oplog.Op, len(trace))
	for i, rec := range trace {
		op := rec.Clone()
		if strings.HasPrefix(op.Path, "/") {
			op.Path = prefix + op.Path
		}
		if strings.HasPrefix(op.Path2, "/") && op.Kind != oplog.KSymlink {
			// Symlink Path2 is target text; leaving it un-prefixed keeps the
			// link dangling at worst, which the trace already tolerates.
			op.Path2 = prefix + op.Path2
		}
		out[i] = op
	}
	return out
}

// applyTraceRemapped applies a trace whose descriptor numbers were recorded
// against the single-threaded oracle. Under concurrency the filesystem
// allocates different descriptors, so recorded FDs are remapped through the
// actual create/open results: an op whose descriptor never materialized
// (its open failed under this interleaving) is skipped.
func applyTraceRemapped(fs fsapi.FS, trace []*oplog.Op) int {
	fdmap := make(map[fsapi.FD]fsapi.FD)
	applied := 0
	for _, rec := range trace {
		op := rec.Clone()
		recFD, recRet := op.FD, op.RetFD
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		switch op.Kind {
		case oplog.KWrite, oplog.KClose, oplog.KFsync, oplog.KReadProbe:
			actual, ok := fdmap[recFD]
			if !ok {
				continue
			}
			op.FD = actual
		}
		_ = oplog.Apply(fs, op)
		applied++
		switch op.Kind {
		case oplog.KCreate, oplog.KOpen:
			if op.Errno == 0 {
				fdmap[recRet] = op.RetFD
			}
		case oplog.KClose:
			if op.Errno == 0 {
				delete(fdmap, recFD)
			}
		}
	}
	return applied
}

// ConcurrencyThroughput measures aggregate ops/sec for one system at one
// concurrency level: g goroutines each apply an independent trace of the
// given profile under a private directory prefix. Traces and prefix
// directories are prepared outside the timed region.
func ConcurrencyThroughput(sys System, profile workload.Profile, goroutines, opsPerG int, seed int64) (ConcurrencyResult, error) {
	res := ConcurrencyResult{System: sys, Profile: profile, Goroutines: goroutines}

	traces := make([][]*oplog.Op, goroutines)
	for g := 0; g < goroutines; g++ {
		trace := workload.Generate(workload.Config{
			Profile: profile, Seed: seed + int64(g), NumOps: opsPerG, SyncEvery: 200,
		})
		traces[g] = prefixTrace(trace, gPrefix(g))
	}

	dev, _, err := newImage(ImageBlocks)
	if err != nil {
		return res, err
	}
	var fs fsapi.FS
	var cleanup func()
	switch sys {
	case SysBase:
		base, err := basefs.Mount(dev, basefs.Options{})
		if err != nil {
			return res, err
		}
		fs, cleanup = base, base.Kill
	case SysRAE:
		sup, err := core.Mount(dev, core.Config{})
		if err != nil {
			return res, err
		}
		fs, cleanup = sup, sup.Kill
	default:
		return res, errUnsupportedSystem(sys)
	}
	defer cleanup()
	for g := 0; g < goroutines; g++ {
		if err := fs.Mkdir(gPrefix(g), 0o755); err != nil {
			return res, err
		}
	}

	applied := make([]int, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			applied[g] = applyTraceRemapped(fs, traces[g])
		}(g)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	for _, n := range applied {
		res.Ops += n
	}
	res.OpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
	return res, nil
}

func gPrefix(g int) string {
	return "/g" + string(rune('0'+g/10)) + string(rune('0'+g%10))
}

type errUnsupportedSystem System

func (e errUnsupportedSystem) Error() string {
	return "experiments: concurrency sweep does not support system " + System(e).String()
}

// ConcurrencySweepLevels is the E11 goroutine ladder.
var ConcurrencySweepLevels = []int{1, 2, 4, 8, 16}

// ConcurrencySweep runs the full E11 grid: base and RAE at every concurrency
// level for the given profiles. Results appear in system, profile, level
// order.
func ConcurrencySweep(profiles []workload.Profile, opsPerG int, seed int64) ([]ConcurrencyResult, error) {
	var out []ConcurrencyResult
	for _, sys := range []System{SysBase, SysRAE} {
		for _, p := range profiles {
			for _, g := range ConcurrencySweepLevels {
				r, err := ConcurrencyThroughput(sys, p, g, opsPerG, seed)
				if err != nil {
					return out, err
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}
