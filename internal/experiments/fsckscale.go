package experiments

// E13 — the parallel, region-scoped checker. Three harnesses:
//
//   - FsckParallelScale: sequential Check vs CheckParallel at increasing
//     worker counts on one populated image, with a per-read device service
//     time armed so the scan is IO-bound (the regime the pFSCK decomposition
//     targets). The headline number is the speedup at 8 workers.
//   - ScopedFsckScale: full check vs region-scoped check across image sizes
//     with the same small write gap. The full check's cost grows with the
//     image; the scoped check's cost tracks the gap, staying near-constant.
//   - RecoveryFsckStage: the same comparison measured where it matters — the
//     recovery engine's fsck stage (recovery.stage.fsck_ns) with FsckWorkers
//     1 vs 8 on an otherwise identical fault.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fsck"
	"repro/internal/mkfs"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// FsckIOLatency is E13's per-block read service time. The checker is
// read-only, so only ReadLatency matters.
const FsckIOLatency = 10 * time.Microsecond

// FsckScaleResult is one row of the E13 worker-scaling series. DevReads is
// the deterministic cost metric (wall time on an in-memory device with
// microsecond sleeps is noisy at small scales): the parallel checker's win
// is fewer device reads (read-once cache) times worker overlap.
type FsckScaleResult struct {
	Workers   int // 0 = sequential baseline
	Elapsed   time.Duration
	Speedup   float64 // sequential / this
	DevReads  int64
	ChecksRun int64
	Problems  int
}

// populateImage formats blocks and runs a soup workload through the base
// filesystem, unmounting cleanly so the raw image checks clean.
func populateImage(blocks uint32, numOps int, seed int64) (*blockdev.Mem, *disklayout.Superblock, error) {
	dev := blockdev.NewMem(blocks)
	sb, err := mkfs.Format(dev, mkfs.Options{})
	if err != nil {
		return nil, nil, err
	}
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		return nil, nil, err
	}
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: seed, NumOps: numOps, Superblock: sb,
	})
	applyTrace(fs, trace)
	if err := fs.Unmount(); err != nil {
		return nil, nil, err
	}
	return dev, sb, nil
}

// FsckParallelScale measures the sequential checker and the parallel checker
// at each worker count on the same populated, latency-armed image (E13).
// Parity is asserted, not assumed: a parallel run whose findings diverge
// from the sequential baseline is an error, never a data point.
func FsckParallelScale(workerCounts []int, numOps int, seed int64, ioLat time.Duration) ([]FsckScaleResult, error) {
	dev, _, err := populateImage(ImageBlocks, numOps, seed)
	if err != nil {
		return nil, err
	}
	if ioLat > 0 {
		plan := blockdev.NewFaultPlan(seed)
		plan.ReadLatency = ioLat
		dev.SetFaults(plan)
	}
	r0 := dev.Stats().Reads.Load()
	t := time.Now()
	seq := fsck.Check(dev)
	seqDur := time.Since(t)
	res := []FsckScaleResult{{
		Workers: 0, Elapsed: seqDur, Speedup: 1,
		DevReads:  dev.Stats().Reads.Load() - r0,
		ChecksRun: seq.ChecksRun, Problems: len(seq.Problems),
	}}
	for _, w := range workerCounts {
		r0 := dev.Stats().Reads.Load()
		t := time.Now()
		rep := fsck.CheckParallel(dev, w)
		d := time.Since(t)
		if len(rep.Problems) != len(seq.Problems) || rep.ChecksRun != seq.ChecksRun {
			return nil, fmt.Errorf("experiments: parallel checker diverged at %d workers: %d problems/%d checks vs %d/%d",
				w, len(rep.Problems), rep.ChecksRun, len(seq.Problems), seq.ChecksRun)
		}
		res = append(res, FsckScaleResult{
			Workers: w, Elapsed: d, Speedup: seqDur.Seconds() / d.Seconds(),
			DevReads:  dev.Stats().Reads.Load() - r0,
			ChecksRun: rep.ChecksRun, Problems: len(rep.Problems),
		})
	}
	return res, nil
}

// ScopedScaleResult is one row of the E13 scoped-check series. Device reads
// are the cost metric: the full check's reads grow with the image, the
// scoped check's track the gap.
type ScopedScaleResult struct {
	ImageBlocks uint32
	GapBlocks   int // blocks in the scoped check's scope
	FullTime    time.Duration
	ScopedTime  time.Duration
	FullReads   int64
	ScopedReads int64
	ReadRatio   float64 // full reads / scoped reads
}

// ScopedFsckScale compares a full parallel check against a region-scoped
// check across image sizes, holding the write gap fixed (E13). The gap is a
// short second workload session whose device writes are captured by a write
// hook — exactly the touched-set capture the supervisor's fence performs —
// so the scope is the writes plus the superblock.
func ScopedFsckScale(imageSizes []uint32, gapOps, numOps int, seed int64, workers int, ioLat time.Duration) ([]ScopedScaleResult, error) {
	var res []ScopedScaleResult
	for _, blocks := range imageSizes {
		dev, sb, err := populateImage(blocks, numOps, seed)
		if err != nil {
			return nil, err
		}
		// The gap: a short session with every written block recorded.
		sc := fsck.NewScope()
		sc.Add(0)
		// The hook fires from concurrent queue workers; Scope is not.
		var scMu sync.Mutex
		dev.SetWriteHook(func(blk uint32) {
			scMu.Lock()
			sc.Add(blk)
			scMu.Unlock()
		})
		fs, err := basefs.Mount(dev, basefs.Options{})
		if err != nil {
			return nil, err
		}
		trace := workload.Generate(workload.Config{
			Profile: workload.MetaHeavy, Seed: seed + 1, NumOps: gapOps, Superblock: sb,
		})
		applyTrace(fs, trace)
		if err := fs.Unmount(); err != nil {
			return nil, err
		}
		dev.SetWriteHook(nil)
		if ioLat > 0 {
			plan := blockdev.NewFaultPlan(seed)
			plan.ReadLatency = ioLat
			dev.SetFaults(plan)
		}
		r0 := dev.Stats().Reads.Load()
		t := time.Now()
		full := fsck.CheckParallel(dev, workers)
		fullDur := time.Since(t)
		fullReads := dev.Stats().Reads.Load() - r0
		r0 = dev.Stats().Reads.Load()
		t = time.Now()
		scoped := fsck.CheckScoped(dev, sc, workers)
		scopedDur := time.Since(t)
		scopedReads := dev.Stats().Reads.Load() - r0
		if !full.Clean() || !scoped.Clean() {
			return nil, fmt.Errorf("experiments: image %d blocks checked unclean (full %d, scoped %d problems)",
				blocks, len(full.Problems), len(scoped.Problems))
		}
		res = append(res, ScopedScaleResult{
			ImageBlocks: blocks, GapBlocks: sc.Len(),
			FullTime: fullDur, ScopedTime: scopedDur,
			FullReads: fullReads, ScopedReads: scopedReads,
			ReadRatio: float64(fullReads) / float64(scopedReads),
		})
	}
	return res, nil
}

// RecoveryFsckResult compares the recovery engine's fsck stage at two
// worker-pool sizes on an identical fault.
type RecoveryFsckResult struct {
	LogLen  int
	FsckSeq time.Duration // FsckWorkers: 1
	FsckPar time.Duration // FsckWorkers: 8
	Speedup float64
	WallSeq time.Duration
	WallPar time.Duration
}

// RecoveryFsckStage measures recovery.stage.fsck_ns with the checker pool at
// 1 vs 8 workers (E13). Prefetch is disabled and the scoped check forced off
// so the stage isolates exactly the checker's own parallelism; the armed
// per-read latency puts it in the IO-bound regime.
func RecoveryFsckStage(logLen int, seed int64, ioLat time.Duration) (RecoveryFsckResult, error) {
	res := RecoveryFsckResult{LogLen: logLen}
	one, err := recoverFsckOnce(logLen, seed, 1, ioLat)
	if err != nil {
		return res, err
	}
	eight, err := recoverFsckOnce(logLen, seed, 8, ioLat)
	if err != nil {
		return res, err
	}
	res.FsckSeq, res.FsckPar = one.Fsck, eight.Fsck
	res.WallSeq, res.WallPar = one.Total(), eight.Total()
	if eight.Fsck > 0 {
		res.Speedup = one.Fsck.Seconds() / eight.Fsck.Seconds()
	}
	return res, nil
}

func recoverFsckOnce(logLen int, seed int64, fsckWorkers int, ioLat time.Duration) (core.RecoveryPhases, error) {
	var ph core.RecoveryPhases
	dev, _, err := newImage(ImageBlocks)
	if err != nil {
		return ph, err
	}
	reg := faultinject.NewRegistry(seed)
	reg.Arm(&faultinject.Specimen{
		ID: "e13-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "setperm", Point: "entry", PathSubstr: "detonate",
	})
	sup, err := core.Mount(dev, core.Config{
		Base:                    basefs.Options{Injector: reg},
		FsckWorkers:             fsckWorkers,
		DisableScopedFsck:       true,
		RecoveryPrefetchWorkers: -1,
		Telemetry:               telemetry.New(), // isolated
	})
	if err != nil {
		return ph, err
	}
	defer sup.Kill()
	if err := feedGap(sup, logLen, seed); err != nil {
		return ph, err
	}
	if ioLat > 0 {
		plan := blockdev.NewFaultPlan(seed)
		plan.ReadLatency, plan.WriteLatency = ioLat, ioLat
		dev.SetFaults(plan)
	}
	if err := sup.SetPerm("/detonate-missing", 0o600); err == nil {
		return ph, fmt.Errorf("experiments: detonation op unexpectedly succeeded")
	}
	st := sup.Stats()
	if st.Recoveries != 1 || st.Degradations != 0 || len(st.Phases) != 1 {
		return ph, fmt.Errorf("experiments: expected 1 clean recovery, got %+v", st)
	}
	if st.FsckFull != 1 || st.FsckScoped != 0 {
		return ph, fmt.Errorf("experiments: expected 1 full check, got full=%d scoped=%d", st.FsckFull, st.FsckScoped)
	}
	return st.Phases[0], nil
}
