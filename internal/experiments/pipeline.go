package experiments

// E12 — recovery latency of the staged, overlapping engine vs the sequential
// pipeline, as a function of the recorded-gap size, plus the warm-replayer
// repeat-fault measurement. The workload phase runs at memory speed; a
// per-IO device service time is armed just before the detonation so only
// the recovery pays it, modeling a fast NVMe device without slowing the
// series setup.

import (
	"fmt"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/oplog"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// RecoveryIOLatency is E12's per-block device service time (NVMe-class).
const RecoveryIOLatency = 10 * time.Microsecond

// PipelineResult is one row of the E12 gap-size series.
type PipelineResult struct {
	LogLen     int
	Sequential core.RecoveryPhases
	Pipelined  core.RecoveryPhases
	Speedup    float64 // sequential wall / pipelined wall
}

// RecoveryPipeline measures one gap size under both engines (E12). The same
// seed gives both runs the same workload, so the recorded gap and the
// on-disk state at detonation are identical; only the engine differs.
func RecoveryPipeline(logLen int, seed int64, ioLat time.Duration) (PipelineResult, error) {
	res := PipelineResult{LogLen: logLen}
	seq, err := recoverOnce(logLen, seed, true, ioLat)
	if err != nil {
		return res, err
	}
	pip, err := recoverOnce(logLen, seed, false, ioLat)
	if err != nil {
		return res, err
	}
	res.Sequential, res.Pipelined = seq, pip
	if pip.Total() > 0 {
		res.Speedup = float64(seq.Total()) / float64(pip.Total())
	}
	return res, nil
}

// recoverOnce runs a workload to the target gap size, arms the device
// service time, detonates a deterministic crash, and returns the recovery's
// phase breakdown.
func recoverOnce(logLen int, seed int64, sequential bool, ioLat time.Duration) (core.RecoveryPhases, error) {
	var ph core.RecoveryPhases
	dev, _, err := newImage(ImageBlocks)
	if err != nil {
		return ph, err
	}
	reg := faultinject.NewRegistry(seed)
	reg.Arm(&faultinject.Specimen{
		ID: "e12-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "setperm", Point: "entry", PathSubstr: "detonate",
	})
	sup, err := core.Mount(dev, core.Config{
		Base:               basefs.Options{Injector: reg},
		SequentialRecovery: sequential,
		Telemetry:          telemetry.New(), // isolated
	})
	if err != nil {
		return ph, err
	}
	defer sup.Kill()
	if err := feedGap(sup, logLen, seed); err != nil {
		return ph, err
	}
	if ioLat > 0 {
		plan := blockdev.NewFaultPlan(seed)
		plan.ReadLatency, plan.WriteLatency = ioLat, ioLat
		dev.SetFaults(plan)
	}
	if err := sup.SetPerm("/detonate-missing", 0o600); err == nil {
		return ph, fmt.Errorf("experiments: detonation op unexpectedly succeeded")
	}
	st := sup.Stats()
	if st.Recoveries != 1 || st.Degradations != 0 || len(st.Phases) != 1 {
		return ph, fmt.Errorf("experiments: expected 1 clean recovery, got %+v", st)
	}
	return st.Phases[0], nil
}

// feedGap grows the recorded op log to exactly logLen operations, skipping
// durable points so nothing truncates it.
func feedGap(sup *core.FS, logLen int, seed int64) error {
	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: seed, NumOps: logLen * 2,
	})
	for _, rec := range trace {
		if sup.LogLen() >= logLen {
			return nil
		}
		op := rec.Clone()
		if op.Kind == oplog.KFsync || op.Kind == oplog.KSync {
			continue
		}
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		_ = oplog.Apply(sup, op)
	}
	if sup.LogLen() < logLen {
		return fmt.Errorf("experiments: log only reached %d/%d ops", sup.LogLen(), logLen)
	}
	return nil
}

// WarmRepeatResult quantifies the warm-replayer hit: a second fault gap2
// ops after the first replays only ~gap2 ops and skips fsck entirely.
type WarmRepeatResult struct {
	Gap1, Gap2     int
	FirstWall      time.Duration
	SecondWall     time.Duration
	FirstReplayed  int64
	SecondReplayed int64
	Reused         int64
}

// WarmRepeat runs two faults gap2 ops apart with no intervening durable
// point and reports what the second recovery actually replayed (E12, warm
// row). The retained engine makes the second recovery independent of gap1.
func WarmRepeat(gap1, gap2 int, seed int64, ioLat time.Duration) (WarmRepeatResult, error) {
	res := WarmRepeatResult{Gap1: gap1, Gap2: gap2}
	dev, _, err := newImage(ImageBlocks)
	if err != nil {
		return res, err
	}
	reg := faultinject.NewRegistry(seed)
	reg.Arm(&faultinject.Specimen{
		ID: "e12-warm", Class: faultinject.Crash,
		Deterministic: true, Op: "setperm", Point: "entry", PathSubstr: "detonate",
	})
	sup, err := core.Mount(dev, core.Config{
		Base:      basefs.Options{Injector: reg},
		Telemetry: telemetry.New(),
	})
	if err != nil {
		return res, err
	}
	defer sup.Kill()
	if err := feedGap(sup, gap1, seed); err != nil {
		return res, err
	}
	if ioLat > 0 {
		plan := blockdev.NewFaultPlan(seed)
		plan.ReadLatency, plan.WriteLatency = ioLat, ioLat
		dev.SetFaults(plan)
	}
	if err := sup.SetPerm("/detonate-missing", 0o600); err == nil {
		return res, fmt.Errorf("experiments: first detonation unexpectedly succeeded")
	}
	st := sup.Stats()
	if st.Recoveries != 1 || st.Degradations != 0 {
		return res, fmt.Errorf("experiments: first fault: %+v", st)
	}
	res.FirstReplayed = st.OpsReplayed
	res.FirstWall = st.Phases[0].Total()

	// The second gap runs against the armed device latency too; it is small,
	// so the series stays fast.
	dev.SetFaults(nil)
	before := sup.LogLen()
	if err := feedGap(sup, before+gap2, seed+1); err != nil {
		return res, err
	}
	plan := blockdev.NewFaultPlan(seed)
	plan.ReadLatency, plan.WriteLatency = ioLat, ioLat
	dev.SetFaults(plan)
	if err := sup.SetPerm("/detonate-missing", 0o600); err == nil {
		return res, fmt.Errorf("experiments: second detonation unexpectedly succeeded")
	}
	st = sup.Stats()
	if st.Recoveries != 2 || st.Degradations != 0 {
		return res, fmt.Errorf("experiments: second fault: %+v", st)
	}
	res.SecondReplayed = st.OpsReplayed - res.FirstReplayed
	res.SecondWall = st.Phases[1].Total()
	res.Reused = st.OpsReused
	return res, nil
}
