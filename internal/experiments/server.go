package experiments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/faultinject"
	"repro/internal/fserr"
	"repro/internal/fswire"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/volmgr"
	"repro/internal/workload"
)

// E17: the networked serving experiment. An fswire server exposes a volmgr
// fleet over TCP loopback; N remote clients (each its own connection, FID
// table, and workload seed) drive the fleet concurrently while volume 0 is
// under the recurring deterministic fault storm E14 uses. The claim is that
// the paper's masking property composes with the network layer: every
// recovery on the storm tenant stays behind the wire (no client ever sees a
// fault-class errno), healthy tenants never recover at all, and the wire
// adds bookkeeping — conns, ops, bytes — that quantifies the serving cost.

// ServerResult is the E17 table.
type ServerResult struct {
	Volumes      int
	Clients      int
	OpsPerClient int
	Elapsed      time.Duration

	// Client-side outcome.
	TotalOps     int
	OpsPerSec    float64
	ClientFaults int // fault-class errnos observed at any client; must be 0

	// Server-side outcome.
	StormRecoveries   int64
	StormAppFailures  int64
	HealthyRecoveries int64 // must be 0

	// Wire accounting from the fswire.* instruments.
	WireConns       int64
	WireOps         int64
	WireBytes       int64
	WireErrs        int64
	WireBytesPerSec float64
}

// Server runs E17. volumes must be >= 2 (storm tenant + healthy neighbor);
// clients are distributed round-robin over the volumes.
func Server(volumes, clients, opsPerClient int, seed int64) (ServerResult, error) {
	res := ServerResult{Volumes: volumes, Clients: clients, OpsPerClient: opsPerClient}
	if volumes < 2 {
		return res, fmt.Errorf("experiments: server needs >= 2 volumes, got %d", volumes)
	}
	if clients < 1 {
		return res, fmt.Errorf("experiments: server needs >= 1 client, got %d", clients)
	}

	m, err := volmgr.New(volmgr.Config{
		PoolBlocks:        uint32(volumes) * MultiTenantVolumeBlocks,
		CacheBudgetBlocks: 96 * volumes,
		CacheMinPerVolume: 32,
	})
	if err != nil {
		return res, err
	}
	defer m.Shutdown()

	vols := make([]*volmgr.Volume, volumes)
	for i := range vols {
		vc := volmgr.VolumeConfig{Blocks: MultiTenantVolumeBlocks}
		if i == 0 {
			reg := faultinject.NewRegistry(seed)
			reg.Arm(&faultinject.Specimen{
				ID: "e17-storm", Class: faultinject.Crash,
				Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "box",
			})
			vc.Core.Base.Injector = reg
		}
		if vols[i], err = m.Create(fmt.Sprintf("vol%d", i), vc); err != nil {
			return res, err
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	srv := fswire.NewServer(fswire.Volumes(m), fswire.WithTelemetry(m.Telemetry()))
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
	}()

	// The geometry is deterministic for a given device size, so a throwaway
	// format yields the superblock every client's generator needs.
	sb, err := mkfs.Format(blockdev.NewMem(MultiTenantVolumeBlocks), mkfs.Options{})
	if err != nil {
		return res, err
	}

	type clientOutcome struct {
		applied int
		faults  int
		err     error
	}
	outcomes := make([]clientOutcome, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			volume := fmt.Sprintf("vol%d", ci%volumes)
			c, err := fswire.Dial(ln.Addr().String(), volume)
			if err != nil {
				outcomes[ci].err = fmt.Errorf("client %d: dial %s: %w", ci, volume, err)
				return
			}
			defer c.Hangup()
			trace := workload.Generate(workload.Config{
				Profile: workload.MetaHeavy, Seed: seed + int64(ci)*101,
				NumOps: opsPerClient, Superblock: sb, SyncEvery: 100,
			})
			st := workload.DriveObserved(c, trace, func(_, got *oplog.Op, _ time.Duration) {
				if got.Errno != 0 && fserr.IsFault(fserr.FromErrno(got.Errno)) {
					outcomes[ci].faults++
				}
			})
			outcomes[ci].applied = st.Applied
		}(ci)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	for _, o := range outcomes {
		if o.err != nil {
			return res, o.err
		}
		res.TotalOps += o.applied
		res.ClientFaults += o.faults
	}
	res.OpsPerSec = float64(res.TotalOps) / res.Elapsed.Seconds()

	for i, v := range vols {
		st := v.Stats()
		if i == 0 {
			res.StormRecoveries = st.Recoveries
			res.StormAppFailures = st.AppFailures
		} else {
			res.HealthyRecoveries += st.Recoveries
		}
	}
	snap := m.Telemetry().Snapshot()
	res.WireConns = snap.Gauges["fswire.conns"]
	res.WireOps = snap.Counters["fswire.ops"]
	res.WireBytes = snap.Counters["fswire.bytes"]
	res.WireErrs = snap.Counters["fswire.errs"]
	res.WireBytesPerSec = float64(res.WireBytes) / res.Elapsed.Seconds()
	return res, nil
}
