package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Snapshot is a point-in-time export of a sink: every named instrument, the
// retained event journal, and the retained recovery traces. It serializes
// to JSON (machine consumption, cmd/fsstats -json, the HTTP endpoint) and
// renders as human text (cmd/shadowbench, cmd/fsstats).
type Snapshot struct {
	Time        time.Time               `json:"time"`
	Uptime      time.Duration           `json:"uptime"`
	Counters    map[string]int64        `json:"counters"`
	Gauges      map[string]int64        `json:"gauges"`
	Histograms  map[string]HistSnapshot `json:"histograms"`
	TotalEvents uint64                  `json:"total_events"`
	Events      []Event                 `json:"events"`
	Recoveries  []TraceSnapshot         `json:"recoveries"`
}

// WriteJSON serializes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot decodes a snapshot previously serialized by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: decode snapshot: %w", err)
	}
	return s, nil
}

// WriteText renders the snapshot for humans: counters and gauges in sorted
// name order, histogram quantiles, recovery trace breakdowns, and the tail
// of the event journal.
func (s Snapshot) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "-- telemetry snapshot @ %s (uptime %v) --\n",
		s.Time.Format(time.RFC3339), s.Uptime.Round(time.Millisecond))
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-42s %12d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-42s %12d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms (p50/p99/p999/max, n):")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-42s %10v %10v %10v %10v  n=%d\n",
				name, h.P50, h.P99, h.P999, h.Max, h.Count)
		}
	}
	if len(s.Recoveries) > 0 {
		fmt.Fprintf(w, "recovery traces (%d retained):\n", len(s.Recoveries))
		for _, tr := range s.Recoveries {
			fmt.Fprintf(w, "  %s\n", tr)
		}
	}
	if len(s.Events) > 0 {
		dropped := s.TotalEvents - uint64(len(s.Events))
		fmt.Fprintf(w, "event journal (%d retained, %d dropped):\n", len(s.Events), dropped)
		for _, e := range s.Events {
			fmt.Fprintf(w, "  %s\n", e)
		}
	}
	return nil
}

// WriteTraceTable renders one recovery trace as an aligned per-phase table
// (phase, duration, note), the format cmd/raedemo prints after each masked
// bug.
func WriteTraceTable(w io.Writer, t TraceSnapshot) {
	fmt.Fprintf(w, "  recovery #%d: trigger=%s mode=%s log=%d ops, replayed=%d, outcome=%s\n",
		t.ID, t.Trigger, t.Mode, t.LogLen, t.OpsReplayed, t.Outcome)
	for _, sp := range t.Spans {
		note := ""
		if sp.Note != "" {
			note = "  (" + sp.Note + ")"
		}
		fmt.Fprintf(w, "    %-12s %12v%s\n", sp.Phase, sp.Duration, note)
	}
	fmt.Fprintf(w, "    %-12s %12v\n", "total", t.Total)
}
