package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is a point-in-time export of a sink: every named instrument, the
// retained event journal, and the retained recovery traces. It serializes
// to JSON (machine consumption, cmd/fsstats -json, the HTTP endpoint) and
// renders as human text (cmd/shadowbench, cmd/fsstats).
type Snapshot struct {
	Time        time.Time               `json:"time"`
	Uptime      time.Duration           `json:"uptime"`
	Counters    map[string]int64        `json:"counters"`
	Gauges      map[string]int64        `json:"gauges"`
	Histograms  map[string]HistSnapshot `json:"histograms"`
	TotalEvents uint64                  `json:"total_events"`
	Events      []Event                 `json:"events"`
	Recoveries  []TraceSnapshot         `json:"recoveries"`
}

// WriteJSON serializes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot decodes a snapshot previously serialized by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: decode snapshot: %w", err)
	}
	return s, nil
}

// WriteText renders the snapshot for humans: counters and gauges in sorted
// name order, histogram quantiles, recovery trace breakdowns, and the tail
// of the event journal.
func (s Snapshot) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "-- telemetry snapshot @ %s (uptime %v) --\n",
		s.Time.Format(time.RFC3339), s.Uptime.Round(time.Millisecond))
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-42s %12d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-42s %12d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms (p50/p99/p999/max, n):")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-42s %10v %10v %10v %10v  n=%d\n",
				name, h.P50, h.P99, h.P999, h.Max, h.Count)
		}
	}
	if len(s.Recoveries) > 0 {
		fmt.Fprintf(w, "recovery traces (%d retained):\n", len(s.Recoveries))
		for _, tr := range s.Recoveries {
			fmt.Fprintf(w, "  %s\n", tr)
		}
	}
	if len(s.Events) > 0 {
		dropped := s.TotalEvents - uint64(len(s.Events))
		fmt.Fprintf(w, "event journal (%d retained, %d dropped):\n", len(s.Events), dropped)
		for _, e := range s.Events {
			fmt.Fprintf(w, "  %s\n", e)
		}
	}
	return nil
}

// Merge combines snapshots into one fleet rollup: counters and gauges sum
// name-wise, histograms merge bucket-exactly (MergeHist), events interleave
// in time order (keeping the most recent up to the journal's retention
// bound), and recovery traces concatenate. This is what turns N per-volume
// snapshots into the one fleet view cmd/fsstats -merge and the volume
// manager's FleetSnapshot render.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	for _, s := range snaps {
		if s.Time.After(out.Time) {
			out.Time = s.Time
		}
		if s.Uptime > out.Uptime {
			out.Uptime = s.Uptime
		}
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			out.Histograms[name] = MergeHist(out.Histograms[name], h)
		}
		out.TotalEvents += s.TotalEvents
		out.Events = append(out.Events, s.Events...)
		out.Recoveries = append(out.Recoveries, s.Recoveries...)
	}
	sort.SliceStable(out.Events, func(i, j int) bool {
		return out.Events[i].Time.Before(out.Events[j].Time)
	})
	if len(out.Events) > eventRingCap {
		out.Events = out.Events[len(out.Events)-eventRingCap:]
	}
	sort.SliceStable(out.Recoveries, func(i, j int) bool {
		return out.Recoveries[i].Start.Before(out.Recoveries[j].Start)
	})
	return out
}

// MergeHist combines two histogram snapshots. When both carry raw buckets the
// merge is exact: buckets sum and the quantiles are recomputed from the
// combined distribution. A snapshot without buckets (an old export) degrades
// gracefully: counts and sums still add, max still maxes, and each quantile
// takes the worse of the two — a conservative upper bound.
func MergeHist(a, b HistSnapshot) HistSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	m := HistSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	m.Mean = m.Sum / time.Duration(m.Count)
	m.Max = a.Max
	if b.Max > m.Max {
		m.Max = b.Max
	}
	if len(a.Buckets) > 0 && len(b.Buckets) > 0 {
		n := len(a.Buckets)
		if len(b.Buckets) > n {
			n = len(b.Buckets)
		}
		m.Buckets = make([]int64, n)
		for i := range m.Buckets {
			if i < len(a.Buckets) {
				m.Buckets[i] += a.Buckets[i]
			}
			if i < len(b.Buckets) {
				m.Buckets[i] += b.Buckets[i]
			}
		}
		m.P50 = histQuantile(m.Buckets, m.Count, 0.50, m.Max)
		m.P99 = histQuantile(m.Buckets, m.Count, 0.99, m.Max)
		m.P999 = histQuantile(m.Buckets, m.Count, 0.999, m.Max)
		return m
	}
	maxDur := func(x, y time.Duration) time.Duration {
		if x > y {
			return x
		}
		return y
	}
	m.P50 = maxDur(a.P50, b.P50)
	m.P99 = maxDur(a.P99, b.P99)
	m.P999 = maxDur(a.P999, b.P999)
	return m
}

// WriteTraceTable renders one recovery trace as an aligned per-phase table
// (phase, duration, note), the format cmd/raedemo prints after each masked
// bug.
func WriteTraceTable(w io.Writer, t TraceSnapshot) {
	fmt.Fprintf(w, "  recovery #%d: trigger=%s mode=%s log=%d ops, replayed=%d, outcome=%s\n",
		t.ID, t.Trigger, t.Mode, t.LogLen, t.OpsReplayed, t.Outcome)
	for _, sp := range t.Spans {
		note := ""
		if sp.Note != "" {
			note = "  (" + sp.Note + ")"
		}
		fmt.Fprintf(w, "    %-12s %12v%s\n", sp.Phase, sp.Duration, note)
	}
	fmt.Fprintf(w, "    %-12s %12v\n", "total", t.Total)
}
