package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// The six canonical recovery phases, in execution order. Every finished
// recovery trace contains exactly one span per phase; phases a particular
// recovery never reached (a baseline mode, or an early degrade) appear with
// zero duration so consumers can rely on the shape.
const (
	// PhaseDetect covers fault classification and recovery dispatch.
	PhaseDetect = "detect"
	// PhaseFence is raising the IO fence on the faulty instance's handle.
	PhaseFence = "fence"
	// PhaseReboot is the contained reboot: kill + journal replay + fresh mount.
	PhaseReboot = "reboot"
	// PhaseShadowExec is the shadow's image validation plus constrained and
	// autonomous re-execution of the recorded sequence.
	PhaseShadowExec = "shadow-exec"
	// PhaseHandoff is the metadata download: the base absorbing the shadow's
	// sealed update.
	PhaseHandoff = "handoff"
	// PhaseResume is answering the in-flight operation and re-arming the log.
	PhaseResume = "resume"
)

// Phases returns the canonical phase names in execution order.
func Phases() []string {
	return []string{PhaseDetect, PhaseFence, PhaseReboot, PhaseShadowExec, PhaseHandoff, PhaseResume}
}

// Span is one timed phase of a recovery trace.
type Span struct {
	Phase    string        `json:"phase"`
	Duration time.Duration `json:"duration"`
	// Note carries phase-specific detail ("fsck skipped", degrade reason).
	Note string `json:"note,omitempty"`
}

// TraceSnapshot is one completed recovery trace: per-phase wall-clock
// spans plus the inputs that drive recovery cost (op-log length) and the
// outcome the application observed.
type TraceSnapshot struct {
	// ID is the per-sink recovery ordinal, starting at 1.
	ID int64 `json:"id"`
	// Trigger is the fault class that started recovery: "panic", "warn",
	// "freeze", or "result".
	Trigger string `json:"trigger"`
	// Mode is the failure-handling strategy ("rae", "crash-restart", ...).
	Mode string `json:"mode"`
	// LogLen is the recorded-operation count at detection (the linear cost
	// driver of §4.3).
	LogLen int `json:"log_len"`
	// OpsReplayed is how many operations the shadow re-executed.
	OpsReplayed int `json:"ops_replayed"`
	// Outcome is "recovered" (failure masked), "degraded" (fell back to
	// crash-restart semantics), or "crash-restart" (baseline behavior).
	Outcome string `json:"outcome"`
	// Start is the wall-clock detection time.
	Start time.Time `json:"start"`
	// Total is the end-to-end recovery latency.
	Total time.Duration `json:"total"`
	// Spans holds one entry per canonical phase, in execution order.
	Spans []Span `json:"spans"`
}

// Span returns the span for the named phase (zero Span if absent).
func (t TraceSnapshot) Span(phase string) Span {
	for _, s := range t.Spans {
		if s.Phase == phase {
			return s
		}
	}
	return Span{}
}

// String formats the trace as a one-line phase breakdown for demos and
// experiment tables.
func (t TraceSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery #%d [%s/%s] log=%d replayed=%d total=%v:",
		t.ID, t.Mode, t.Trigger, t.LogLen, t.OpsReplayed, t.Total)
	for _, s := range t.Spans {
		fmt.Fprintf(&b, " %s=%v", s.Phase, s.Duration)
		if s.Note != "" {
			fmt.Fprintf(&b, "(%s)", s.Note)
		}
	}
	fmt.Fprintf(&b, " -> %s", t.Outcome)
	return b.String()
}

// Trace is a recovery trace under construction. The supervisor begins one
// per detected fault, advances it through phases, and finishes it with the
// outcome. A nil *Trace is valid and records nothing, so a supervisor
// running without telemetry calls the same code unconditionally.
type Trace struct {
	sink *Sink

	mu       sync.Mutex
	snap     TraceSnapshot
	curPhase string
	curNote  string
	curT0    time.Time
	done     bool
}

// traceRingCap bounds retained recovery traces per sink.
const traceRingCap = 64

// StartRecovery opens a recovery trace and begins its detect phase. Returns
// nil on a nil sink.
func (s *Sink) StartRecovery(trigger, mode string, logLen int) *Trace {
	if s == nil {
		return nil
	}
	t := &Trace{sink: s}
	t.snap = TraceSnapshot{
		ID:      s.recoverySeq.Add(1),
		Trigger: trigger,
		Mode:    mode,
		LogLen:  logLen,
		Start:   time.Now(),
	}
	t.curPhase = PhaseDetect
	t.curT0 = t.snap.Start
	return t
}

// BeginPhase closes the current span and opens one for phase. Calls on a
// nil trace are no-ops.
func (t *Trace) BeginPhase(phase string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closeSpanLocked()
	t.curPhase = phase
	t.curNote = ""
	t.curT0 = time.Now()
}

// Note attaches detail to the currently open span.
func (t *Trace) Note(format string, args ...any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.curNote = fmt.Sprintf(format, args...)
}

// AddSpan records an externally-timed span for phase. The pipelined
// recovery engine runs stages concurrently, so a stage's wall-clock
// interval overlaps the orchestrator's own BeginPhase transitions and must
// be timed by the stage itself and reported here. Finish merges same-phase
// spans by summing, so a trace mixing BeginPhase and AddSpan still
// canonicalizes to one span per phase — but Total then exceeds the
// recovery's wall-clock time, by exactly the overlap won.
func (t *Trace) AddSpan(phase string, d time.Duration, note string) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.snap.Spans = append(t.snap.Spans, Span{Phase: phase, Duration: d, Note: note})
}

// SetOpsReplayed records how many operations the shadow re-executed.
func (t *Trace) SetOpsReplayed(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.snap.OpsReplayed = n
}

// closeSpanLocked finalizes the currently open span, if any.
func (t *Trace) closeSpanLocked() {
	if t.curPhase == "" {
		return
	}
	d := time.Since(t.curT0)
	if d < 0 {
		d = 0
	}
	t.snap.Spans = append(t.snap.Spans, Span{Phase: t.curPhase, Duration: d, Note: t.curNote})
	t.curPhase = ""
}

// Finish closes the trace with the outcome, pads any phase the recovery
// never reached with a zero-duration span (so every trace carries all six
// phases in canonical order), records per-phase latency histograms and the
// outcome counter, retains the trace in the sink's ring, and emits a
// "recovery" event. Calling Finish twice is a no-op.
func (t *Trace) Finish(outcome string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.closeSpanLocked()
	t.snap.Outcome = outcome
	// Canonicalize: exactly one span per phase, execution order, zero-pad
	// the phases this recovery never entered.
	byPhase := make(map[string]Span, len(t.snap.Spans))
	for _, sp := range t.snap.Spans {
		if prev, ok := byPhase[sp.Phase]; ok {
			sp.Duration += prev.Duration
			if sp.Note == "" {
				sp.Note = prev.Note
			}
		}
		byPhase[sp.Phase] = sp
	}
	ordered := make([]Span, 0, len(Phases()))
	total := time.Duration(0)
	for _, name := range Phases() {
		sp, ok := byPhase[name]
		if !ok {
			sp = Span{Phase: name}
		}
		ordered = append(ordered, sp)
		total += sp.Duration
	}
	t.snap.Spans = ordered
	t.snap.Total = total
	snap := t.snap
	sink := t.sink
	t.mu.Unlock()

	for _, sp := range snap.Spans {
		sink.Histogram("recovery.phase." + sp.Phase).Observe(sp.Duration)
	}
	sink.Histogram("recovery.total").Observe(snap.Total)
	sink.Counter("recovery.outcome." + outcome).Inc()
	sink.retainTrace(snap)
	sink.Event("recovery", "%s", snap.String())
}

// traceRing is the sink's bounded store of completed recovery traces.
type traceRing struct {
	mu  sync.Mutex
	buf []TraceSnapshot
}

func (r *traceRing) retain(t TraceSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < traceRingCap {
		r.buf = append(r.buf, t)
		return
	}
	copy(r.buf, r.buf[1:])
	r.buf[len(r.buf)-1] = t
}

func (r *traceRing) all() []TraceSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSnapshot, len(r.buf))
	copy(out, r.buf)
	return out
}

func (r *traceRing) last() (TraceSnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return TraceSnapshot{}, false
	}
	return r.buf[len(r.buf)-1], true
}

func (r *traceRing) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
}
