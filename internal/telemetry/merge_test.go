package telemetry

import (
	"testing"
	"time"
)

func TestMergeCountersGaugesEvents(t *testing.T) {
	a := New()
	a.Counter("ops").Add(2)
	a.Counter("only.a").Add(7)
	a.Gauge("depth").Set(3)
	a.Event("x", "first")
	b := New()
	b.Counter("ops").Add(3)
	b.Gauge("depth").Set(4)
	b.Event("x", "second")

	m := Merge(a.Snapshot(), b.Snapshot())
	if m.Counters["ops"] != 5 {
		t.Fatalf("ops = %d, want 5", m.Counters["ops"])
	}
	if m.Counters["only.a"] != 7 {
		t.Fatalf("only.a = %d, want 7", m.Counters["only.a"])
	}
	if m.Gauges["depth"] != 7 {
		t.Fatalf("depth = %d, want 7 (gauges sum)", m.Gauges["depth"])
	}
	if m.TotalEvents != 2 || len(m.Events) != 2 {
		t.Fatalf("events: total=%d retained=%d, want 2/2", m.TotalEvents, len(m.Events))
	}
	for i := 1; i < len(m.Events); i++ {
		if m.Events[i].Time.Before(m.Events[i-1].Time) {
			t.Fatal("merged events not in time order")
		}
	}
}

// TestMergeHistExact: with raw buckets present, the merged quantiles come
// from the combined distribution, not from taking the worse per-snapshot
// quantile.
func TestMergeHistExact(t *testing.T) {
	a := New()
	b := New()
	for i := 0; i < 100; i++ {
		a.Histogram("lat").Observe(time.Millisecond)      // fast tenant
		b.Histogram("lat").Observe(16 * time.Millisecond) // slow tenant
	}
	sa, sb := a.Snapshot().Histograms["lat"], b.Snapshot().Histograms["lat"]
	if len(sa.Buckets) == 0 || len(sb.Buckets) == 0 {
		t.Fatal("snapshots missing raw buckets")
	}

	m := MergeHist(sa, sb)
	if m.Count != 200 {
		t.Fatalf("count = %d, want 200", m.Count)
	}
	// Rank 100 of 200 falls in the fast tenant's bucket: the exact merge
	// keeps p50 near 1ms. The conservative fallback would report ~16ms.
	if m.P50 > 5*time.Millisecond {
		t.Fatalf("exact-merge p50 = %v, want ~1ms bucket bound", m.P50)
	}
	if m.P99 < 10*time.Millisecond {
		t.Fatalf("merged p99 = %v, want in the slow tenant's range", m.P99)
	}
	if m.Max != sb.Max {
		t.Fatalf("merged max = %v, want %v", m.Max, sb.Max)
	}

	// Bucket-less snapshots (old exports) degrade to worst-of-quantiles.
	sa2, sb2 := sa, sb
	sa2.Buckets, sb2.Buckets = nil, nil
	f := MergeHist(sa2, sb2)
	if f.P50 != sb.P50 {
		t.Fatalf("fallback p50 = %v, want the worse side %v", f.P50, sb.P50)
	}

	// Zero-count sides are identity.
	if got := MergeHist(HistSnapshot{}, sa); got.Count != sa.Count || got.P50 != sa.P50 {
		t.Fatal("merge with empty left side should return right side")
	}
}

// TestMergeRecoveries: traces concatenate in start-time order.
func TestMergeRecoveries(t *testing.T) {
	a := New()
	tr := a.StartRecovery("panic", "rae", 1)
	tr.Finish("recovered")
	b := New()
	tr2 := b.StartRecovery("warn", "rae", 2)
	tr2.Finish("recovered")

	m := Merge(a.Snapshot(), b.Snapshot())
	if len(m.Recoveries) != 2 {
		t.Fatalf("recoveries = %d, want 2", len(m.Recoveries))
	}
	if m.Recoveries[1].Start.Before(m.Recoveries[0].Start) {
		t.Fatal("merged recoveries not in start order")
	}
}
