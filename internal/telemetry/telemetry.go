// Package telemetry is the always-on observability subsystem threaded
// through every layer of the repository: sharded atomic counters and gauges,
// log2-bucketed latency histograms, a bounded ring-buffer event journal for
// WARNs / contained panics / fault-injection firings / recovery outcomes,
// and a recovery tracer that emits one span per phase of every recovery
// (detect → fence → reboot → shadow-exec → handoff → resume).
//
// The paper's central claims are quantitative — common-case performance is
// the base's (§2.3), recovery latency is linear in op-log length (§4.3) —
// and this package makes those numbers visible from the running system
// rather than only from one-shot experiment harnesses: cmd/fsstats dumps a
// snapshot from a live or completed run, cmd/shadowbench prints one after
// every series, and cmd/raedemo prints the per-phase trace of every masked
// bug.
//
// Cost model: every instrument type (*Sink, *Counter, *Gauge, *Histogram,
// *Trace) is nil-safe, so a disabled instrumentation point is a single
// pointer check — no clock reads, no allocation, no atomics. Instrumented
// layers resolve named instruments once at construction and hold the
// (possibly nil) pointers.
package telemetry

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Sink is the telemetry hub: a registry of named instruments plus the event
// journal and recovery-trace ring. A nil *Sink is valid; every method
// no-ops, and instrument getters return nil instruments that also no-op.
type Sink struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	events      eventRing
	traces      traceRing
	recoverySeq atomic.Int64
	start       time.Time
}

// New creates an empty sink.
func New() *Sink {
	return &Sink{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		start:    time.Now(),
	}
}

// defaultSink is the process-wide sink that supervisors use when no explicit
// sink is configured: always-on observability for the common case.
var (
	defaultOnce sync.Once
	defaultSink *Sink
)

// Default returns the process-wide sink, creating it on first use.
func Default() *Sink {
	defaultOnce.Do(func() { defaultSink = New() })
	return defaultSink
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op counter) on a nil sink.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = newCounter()
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil sink.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil sink.
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// Event appends a formatted record to the event journal. No-op on nil.
func (s *Sink) Event(kind, format string, args ...any) {
	if s == nil {
		return
	}
	s.events.record(kind, fmt.Sprintf(format, args...))
}

// Events returns a chronological copy of the retained event journal.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	return s.events.events()
}

// RecoveryTraces returns the retained completed recovery traces, oldest
// first.
func (s *Sink) RecoveryTraces() []TraceSnapshot {
	if s == nil {
		return nil
	}
	return s.traces.all()
}

// LastRecoveryTrace returns the most recent completed recovery trace.
func (s *Sink) LastRecoveryTrace() (TraceSnapshot, bool) {
	if s == nil {
		return TraceSnapshot{}, false
	}
	return s.traces.last()
}

// retainTrace stores a completed trace in the bounded ring.
func (s *Sink) retainTrace(t TraceSnapshot) {
	if s == nil {
		return
	}
	s.traces.retain(t)
}

// Reset zeroes every registered instrument in place (handed-out pointers
// stay valid) and clears the event journal and trace ring. Sequence numbers
// stay monotonic. Benchmark drivers use it to separate series.
func (s *Sink) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	for _, c := range s.counters {
		c.reset()
	}
	for _, g := range s.gauges {
		g.Set(0)
	}
	for _, h := range s.hists {
		h.reset()
	}
	s.mu.Unlock()
	s.events.reset()
	s.traces.reset()
}

// Snapshot captures every instrument, the retained events, and the retained
// recovery traces at one point in time.
func (s *Sink) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{Time: time.Now()}
	}
	snap := Snapshot{
		Time:        time.Now(),
		Uptime:      time.Since(s.start),
		Counters:    map[string]int64{},
		Gauges:      map[string]int64{},
		Histograms:  map[string]HistSnapshot{},
		TotalEvents: s.events.total(),
	}
	s.mu.Lock()
	for name, c := range s.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range s.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range s.hists {
		snap.Histograms[name] = h.Snapshot()
	}
	s.mu.Unlock()
	snap.Events = s.events.events()
	snap.Recoveries = s.traces.all()
	return snap
}

// Handler serves the sink as an expvar-style HTTP endpoint: JSON by
// default, human text with ?format=text.
func (s *Sink) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := s.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
	})
}

// sortedKeys returns map keys in stable order for deterministic exports.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
