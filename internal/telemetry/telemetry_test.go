package telemetry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentSum(t *testing.T) {
	s := New()
	c := s.Counter("test.ops")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	// Same name returns the same counter.
	if s.Counter("test.ops").Value() != workers*per {
		t.Fatal("second lookup did not return the same counter")
	}
}

func TestGauge(t *testing.T) {
	s := New()
	g := s.Gauge("test.len")
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations at ~1µs, 10 at ~1ms: p50 stays small, p999/max large.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	snap := h.Snapshot()
	if snap.Count != 1010 {
		t.Fatalf("count = %d, want 1010", snap.Count)
	}
	if snap.P50 >= time.Millisecond {
		t.Fatalf("p50 = %v, expected well under 1ms", snap.P50)
	}
	if snap.P999 < 500*time.Microsecond {
		t.Fatalf("p999 = %v, expected to land in the tail", snap.P999)
	}
	if snap.Max != time.Millisecond {
		t.Fatalf("max = %v, want exactly 1ms", snap.Max)
	}
	if snap.Mean <= 0 || snap.Sum <= 0 {
		t.Fatalf("mean/sum not positive: %+v", snap)
	}
	// Quantile estimates are upper bounds capped at the exact max.
	if snap.P99 > snap.Max || snap.P50 > snap.P99 {
		t.Fatalf("quantiles out of order: %+v", snap)
	}
}

func TestTimer(t *testing.T) {
	var h Histogram
	tm := StartTimer(&h)
	time.Sleep(time.Millisecond)
	tm.Stop()
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Max < time.Millisecond {
		t.Fatalf("timer recorded %+v, want one observation >= 1ms", snap)
	}
}

func TestEventRingBounds(t *testing.T) {
	s := New()
	const n = eventRingCap + 100
	for i := 0; i < n; i++ {
		s.Event("test", "event %d", i)
	}
	evs := s.Events()
	if len(evs) != eventRingCap {
		t.Fatalf("retained %d events, want %d", len(evs), eventRingCap)
	}
	// Oldest were dropped; Seq stays monotonic and gapless in the tail.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-monotonic seq at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
	if evs[len(evs)-1].Seq != n {
		t.Fatalf("last seq = %d, want %d", evs[len(evs)-1].Seq, n)
	}
	if got := s.Snapshot().TotalEvents; got != n {
		t.Fatalf("total events = %d, want %d", got, n)
	}
}

func TestTraceSixPhases(t *testing.T) {
	s := New()
	tr := s.StartRecovery("panic", "rae", 7)
	tr.BeginPhase(PhaseFence)
	tr.BeginPhase(PhaseReboot)
	// Skip shadow-exec and handoff entirely: Finish must zero-pad them.
	tr.BeginPhase(PhaseResume)
	tr.SetOpsReplayed(8)
	tr.Finish("recovered")
	tr.Finish("recovered") // second Finish is a no-op

	snap, ok := s.LastRecoveryTrace()
	if !ok {
		t.Fatal("no trace retained")
	}
	want := Phases()
	if len(snap.Spans) != len(want) {
		t.Fatalf("spans = %d, want %d", len(snap.Spans), len(want))
	}
	for i, sp := range snap.Spans {
		if sp.Phase != want[i] {
			t.Fatalf("span %d = %q, want %q", i, sp.Phase, want[i])
		}
		if sp.Duration < 0 {
			t.Fatalf("span %q has negative duration %v", sp.Phase, sp.Duration)
		}
	}
	if snap.Span(PhaseShadowExec).Duration != 0 || snap.Span(PhaseHandoff).Duration != 0 {
		t.Fatal("skipped phases should be zero-padded")
	}
	if snap.Trigger != "panic" || snap.Mode != "rae" || snap.LogLen != 7 ||
		snap.OpsReplayed != 8 || snap.Outcome != "recovered" {
		t.Fatalf("trace metadata wrong: %+v", snap)
	}
	if s.Counter("recovery.outcome.recovered").Value() != 1 {
		t.Fatal("outcome counter not incremented")
	}
	if h := s.Histogram("recovery.total").Snapshot(); h.Count != 1 {
		t.Fatalf("recovery.total observations = %d, want 1", h.Count)
	}
}

func TestTraceRingBounds(t *testing.T) {
	s := New()
	for i := 0; i < traceRingCap+10; i++ {
		tr := s.StartRecovery("panic", "rae", i)
		tr.Finish("recovered")
	}
	traces := s.RecoveryTraces()
	if len(traces) != traceRingCap {
		t.Fatalf("retained %d traces, want %d", len(traces), traceRingCap)
	}
	if traces[len(traces)-1].ID != traceRingCap+10 {
		t.Fatalf("last trace ID = %d, want %d", traces[len(traces)-1].ID, traceRingCap+10)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := New()
	s.Counter("a.count").Add(5)
	s.Gauge("b.gauge").Set(-3)
	s.Histogram("c.lat").Observe(time.Millisecond)
	s.Event("warn", "something %s", "odd")
	tr := s.StartRecovery("warn", "rae", 2)
	tr.Finish("degraded")

	var buf bytes.Buffer
	if err := s.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["a.count"] != 5 || got.Gauges["b.gauge"] != -3 {
		t.Fatalf("round-trip lost metrics: %+v", got)
	}
	if got.Histograms["c.lat"].Count != 1 {
		t.Fatalf("round-trip lost histogram: %+v", got.Histograms)
	}
	if len(got.Events) != 2 { // "warn" + the trace's "recovery" event
		t.Fatalf("round-trip events = %d, want 2", len(got.Events))
	}
	if len(got.Recoveries) != 1 || got.Recoveries[0].Outcome != "degraded" {
		t.Fatalf("round-trip lost traces: %+v", got.Recoveries)
	}

	// Text export renders without error and mentions the instruments.
	buf.Reset()
	if err := s.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.count", "b.gauge", "c.lat", "recovery #1"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("text export missing %q:\n%s", want, buf.String())
		}
	}
}

func TestNilSafety(t *testing.T) {
	var s *Sink
	// Every method on a nil sink and nil instruments must be a no-op.
	s.Counter("x").Inc()
	s.Counter("x").Add(3)
	_ = s.Counter("x").Value()
	s.Gauge("y").Set(1)
	s.Gauge("y").Add(1)
	_ = s.Gauge("y").Value()
	s.Histogram("z").Observe(time.Second)
	s.Histogram("z").ObserveNs(5)
	StartTimer(s.Histogram("z")).Stop()
	s.Event("k", "msg %d", 1)
	s.Reset()
	if s.Events() != nil || s.RecoveryTraces() != nil {
		t.Fatal("nil sink returned non-nil data")
	}
	if _, ok := s.LastRecoveryTrace(); ok {
		t.Fatal("nil sink returned a trace")
	}
	tr := s.StartRecovery("panic", "rae", 0)
	if tr != nil {
		t.Fatal("nil sink returned non-nil trace")
	}
	tr.BeginPhase(PhaseFence)
	tr.Note("detail %d", 1)
	tr.SetOpsReplayed(3)
	tr.Finish("recovered")
	snap := s.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil sink snapshot has counters")
	}
}

func TestNilPathAllocFree(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		h.ObserveNs(10)
		StartTimer(h).Stop()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrument path allocates: %v allocs/op", allocs)
	}
}

func TestReset(t *testing.T) {
	s := New()
	c := s.Counter("r.count")
	c.Add(9)
	s.Gauge("r.gauge").Set(4)
	s.Histogram("r.lat").Observe(time.Millisecond)
	s.Event("e", "one")
	s.StartRecovery("panic", "rae", 0).Finish("recovered")

	s.Reset()
	if c.Value() != 0 {
		t.Fatal("counter not reset in place")
	}
	snap := s.Snapshot()
	if snap.Gauges["r.gauge"] != 0 || snap.Histograms["r.lat"].Count != 0 {
		t.Fatalf("instruments not reset: %+v", snap)
	}
	if len(snap.Events) != 0 || len(snap.Recoveries) != 0 {
		t.Fatal("rings not reset")
	}
	// Handed-out pointer still works after reset.
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("counter unusable after reset")
	}
}

// TestConcurrentHammer drives every instrument type from many goroutines
// while snapshots are taken concurrently; it exists to run under -race.
func TestConcurrentHammer(t *testing.T) {
	s := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := s.Counter(fmt.Sprintf("hammer.c%d", id%4))
			g := s.Gauge("hammer.g")
			h := s.Histogram("hammer.h")
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(n))
				h.ObserveNs(int64(n%1000) + 1)
				if n%64 == 0 {
					s.Event("hammer", "worker %d at %d", id, n)
				}
				if n%256 == 0 {
					tr := s.StartRecovery("panic", "rae", n)
					tr.BeginPhase(PhaseReboot)
					tr.BeginPhase(PhaseShadowExec)
					tr.Finish("recovered")
				}
			}
		}(i)
	}
	deadline := time.After(200 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			snap := s.Snapshot()
			_ = snap.Counters
			_ = s.Events()
			_ = s.RecoveryTraces()
			s.Counter("hammer.snapshots").Inc()
		}
	}
	close(stop)
	wg.Wait()
	// Sanity: traces that completed have the canonical six-phase shape.
	for _, tr := range s.RecoveryTraces() {
		if len(tr.Spans) != len(Phases()) {
			t.Fatalf("trace %d has %d spans", tr.ID, len(tr.Spans))
		}
	}
}

func TestDefaultSinkSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() is not a singleton")
	}
}
