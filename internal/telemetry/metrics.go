package telemetry

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// numShards is the stripe count for sharded counters: the next power of two
// at or above GOMAXPROCS at init, capped so idle counters stay small.
var numShards = func() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	if shards > 64 {
		shards = 64
	}
	return shards
}()

// shard is one cache-line-padded counter stripe. The padding keeps two
// stripes out of the same cache line so concurrent writers on different
// cores do not false-share.
type shard struct {
	n atomic.Int64
	_ [56]byte
}

// shardIndex picks a stripe for the calling goroutine. Goroutine stacks are
// distinct allocations, so the address of a local variable is a cheap,
// allocation-free proxy for goroutine identity; hashing it spreads
// goroutines across stripes.
func shardIndex(mask uint32) uint32 {
	var probe byte
	h := uint32(uintptr(unsafe.Pointer(&probe)) >> 4)
	h *= 2654435761 // Knuth multiplicative hash
	return (h >> 16) & mask
}

// Counter is a monotonically increasing, sharded atomic counter. A nil
// *Counter is valid and records nothing, so instrumentation points hold
// possibly-nil pointers and call methods unconditionally: the disabled path
// is one pointer check.
type Counter struct {
	shards []shard
	mask   uint32
}

func newCounter() *Counter {
	return &Counter{shards: make([]shard, numShards), mask: uint32(numShards - 1)}
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIndex(c.mask)].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums all stripes.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// reset zeroes every stripe (approximate under concurrent writers).
func (c *Counter) reset() {
	for i := range c.shards {
		c.shards[i].n.Store(0)
	}
}

// Gauge is an instantaneous value (queue depth, live log length). A nil
// *Gauge is valid and records nothing.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the current value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a log2 histogram: bucket i holds
// observations whose nanosecond value has bit length i, i.e. [2^(i-1), 2^i).
// Bucket 0 holds exact zeros. 64 bit lengths cover every int64.
const histBuckets = 65

// Histogram is a log2-bucketed latency histogram with lock-free recording.
// A nil *Histogram is valid and records nothing.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.ObserveNs(int64(d))
}

// ObserveNs records one observation in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistSnapshot is a point-in-time summary of a Histogram. Buckets carries the
// raw log2 bucket counts (trailing zeros trimmed) so snapshots merge exactly:
// a fleet rollup sums buckets and recomputes quantiles instead of guessing at
// combined percentiles.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum"`
	Mean    time.Duration `json:"mean"`
	P50     time.Duration `json:"p50"`
	P99     time.Duration `json:"p99"`
	P999    time.Duration `json:"p999"`
	Max     time.Duration `json:"max"`
	Buckets []int64       `json:"buckets,omitempty"`
}

// Snapshot summarizes the histogram. Quantiles are upper-bound estimates
// from the log2 bucket boundaries, capped at the exact observed max.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var s HistSnapshot
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	if s.Count == 0 {
		return s
	}
	last := 0
	for i, c := range counts {
		if c != 0 {
			last = i
		}
	}
	s.Buckets = append([]int64(nil), counts[:last+1]...)
	s.Mean = s.Sum / time.Duration(s.Count)
	s.P50 = histQuantile(counts[:], s.Count, 0.50, s.Max)
	s.P99 = histQuantile(counts[:], s.Count, 0.99, s.Max)
	s.P999 = histQuantile(counts[:], s.Count, 0.999, s.Max)
	return s
}

// histQuantile walks the bucket counts and returns the upper bound of the
// bucket containing the q-th ranked observation.
func histQuantile(counts []int64, total int64, q float64, max time.Duration) time.Duration {
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 0
			}
			upper := time.Duration(int64(1)<<uint(i)) - 1
			if upper > max {
				return max
			}
			return upper
		}
	}
	return max
}

// reset zeroes the histogram (approximate under concurrent writers).
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Timer measures one code region into a Histogram. The zero Timer (from a
// nil histogram) skips the clock reads entirely, so a disabled
// instrumentation point never calls time.Now.
type Timer struct {
	h  *Histogram
	t0 time.Time
}

// StartTimer begins timing into h; with h nil it returns an inert Timer.
func StartTimer(h *Histogram) Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, t0: time.Now()}
}

// Stop records the elapsed time. Safe on the inert Timer.
func (t Timer) Stop() {
	if t.h != nil {
		t.h.Observe(time.Since(t.t0))
	}
}
