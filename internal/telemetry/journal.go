package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// Event is one entry of the telemetry event journal: a WARN record, a
// contained panic, a fault-injection firing, a recovery outcome — anything a
// post-mortem needs that previously only existed as stdout noise.
type Event struct {
	// Seq is the global emission sequence number (monotonic, never reused,
	// so a reader can tell how many events the ring has dropped).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock emission time.
	Time time.Time `json:"time"`
	// Kind classifies the event: "warn", "panic", "freeze", "fault-result",
	// "fault-fired", "recovery", "degrade", "mount", ...
	Kind string `json:"kind"`
	// Msg is the formatted human-readable record.
	Msg string `json:"msg"`
}

// String formats the event for text snapshots.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s [%s] %s", e.Seq, e.Time.Format("15:04:05.000"), e.Kind, e.Msg)
}

// eventRingCap bounds the event journal: the ring keeps the most recent
// entries and drops the oldest, so an error storm cannot grow memory.
const eventRingCap = 1024

// eventRing is a bounded ring buffer of events.
type eventRing struct {
	mu   sync.Mutex
	buf  []Event // fixed capacity once full
	next uint64  // next sequence number
}

// record appends an event, evicting the oldest when full.
func (r *eventRing) record(kind, msg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	e := Event{Seq: r.next, Time: time.Now(), Kind: kind, Msg: msg}
	if len(r.buf) < eventRingCap {
		r.buf = append(r.buf, e)
		return
	}
	copy(r.buf, r.buf[1:])
	r.buf[len(r.buf)-1] = e
}

// events returns a chronological copy of the retained entries.
func (r *eventRing) events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	copy(out, r.buf)
	return out
}

// total returns how many events were ever emitted (including dropped ones).
func (r *eventRing) total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// reset clears the ring but keeps the sequence counter monotonic.
func (r *eventRing) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
}
