package cache

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
)

// newShardedBC builds a cache big enough to have several shards (when
// GOMAXPROCS allows), for exercising cross-shard behavior.
func newShardedBC(t *testing.T, blocks uint32) (*BufferCache, *blockdev.Mem) {
	t.Helper()
	dev := blockdev.NewMem(blocks)
	q := blockdev.NewQueue(dev, 2, 16)
	t.Cleanup(q.Close)
	return NewBufferCache(q, 256), dev
}

func TestShardCountBounds(t *testing.T) {
	// Tiny caches must keep exactly one shard so the eviction bound behaves
	// like the unsharded cache (the rest of cache_test.go relies on this).
	c, _, _ := newBC(t, 16, 8)
	if c.NumShards() != 1 {
		t.Fatalf("maxClean=8 got %d shards, want 1", c.NumShards())
	}
	big, _ := newShardedBC(t, 64)
	n := big.NumShards()
	if n < 1 || n > 16 || n&(n-1) != 0 {
		t.Fatalf("shard count %d not a power of two in [1,16]", n)
	}
	if runtime.GOMAXPROCS(0) >= 2 && n < 2 {
		t.Fatalf("256-buffer cache on %d procs got %d shards", runtime.GOMAXPROCS(0), n)
	}
	// Total clean bound is preserved across the split.
	total := 0
	for i := range big.shards {
		total += big.shards[i].maxClean
	}
	if total != 256 {
		t.Fatalf("summed per-shard maxClean = %d, want 256", total)
	}
}

// TestShardPinUnpinConcurrent pins the same blocks from many goroutines;
// pin counts must balance and pinned buffers must never be evicted even
// under shard-local eviction pressure.
func TestShardPinUnpinConcurrent(t *testing.T) {
	c, dev := newShardedBC(t, 2048)
	for blk := uint32(0); blk < 64; blk++ {
		fill(dev, blk, byte(blk))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for blk := uint32(0); blk < 64; blk++ {
					b, err := c.Get(blk)
					if err != nil {
						t.Errorf("get %d: %v", blk, err)
						return
					}
					if b.Data[0] != byte(blk) {
						t.Errorf("block %d: wrong content %#x", blk, b.Data[0])
						c.Release(b)
						return
					}
					c.Release(b)
				}
			}
		}()
	}
	wg.Wait()
	// Everything released: every cached buffer must be unpinned.
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for blk, b := range s.bufs {
			if b.pins != 0 {
				t.Errorf("block %d left with %d pins", blk, b.pins)
			}
		}
		s.mu.Unlock()
	}
}

// TestShardDropWhilePinnedNoResurrection drops a pinned buffer, churns its
// shard to force evictions, then releases the old pin: the dropped buffer
// must not re-enter the cache, and a fresh Get must read the device.
func TestShardDropWhilePinnedNoResurrection(t *testing.T) {
	c, dev := newShardedBC(t, 4096)
	nsh := uint32(c.NumShards())
	fill(dev, 4, 0x44)
	b, err := c.Get(4)
	if err != nil {
		t.Fatal(err)
	}
	c.Drop(4)
	// Churn the same shard (stride by shard count keeps us on block 4's
	// shard) far past its per-shard bound.
	s := c.shardFor(4)
	for blk := uint32(4 + nsh); blk < 4096; blk += nsh {
		x, err := c.Get(blk)
		if err != nil {
			t.Fatal(err)
		}
		c.Release(x)
	}
	c.Release(b) // must NOT resurrect: block 4 may have been reallocated
	s.mu.Lock()
	if got, ok := s.bufs[4]; ok && got == b {
		s.mu.Unlock()
		t.Fatal("dropped buffer resurrected into the cache")
	}
	if b.elem != nil {
		s.mu.Unlock()
		t.Fatal("dropped buffer re-entered the LRU")
	}
	s.mu.Unlock()
	// Fresh get reads through.
	nb, err := c.Get(4)
	if err != nil {
		t.Fatal(err)
	}
	if nb == b {
		t.Fatal("Get returned the dropped buffer")
	}
	c.Release(nb)
}

// TestShardUnstableNeverEvicted marks buffers journaled-but-unstable and
// applies eviction pressure on their shard: unstable buffers must survive
// (a re-read would see the stale home copy).
func TestShardUnstableNeverEvicted(t *testing.T) {
	c, dev := newShardedBC(t, 4096)
	nsh := uint32(c.NumShards())
	fill(dev, 2, 0x22)
	b, err := c.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	b.Data[0] = 0x99
	c.MarkDirty(b)
	ver := b.ver
	c.Release(b)
	c.MarkJournaled(b, ver) // committed to journal, not yet checkpointed
	for blk := uint32(2 + nsh); blk < 4096; blk += nsh {
		x, err := c.Get(blk)
		if err != nil {
			t.Fatal(err)
		}
		c.Release(x)
	}
	again, err := c.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if again != b || again.Data[0] != 0x99 {
		t.Fatal("unstable buffer was evicted and reread from stale home copy")
	}
	c.Release(again)
	// After MarkStable it becomes evictable again.
	c.MarkStable(2)
	for blk := uint32(2 + nsh); blk < 4096; blk += nsh {
		x, err := c.Get(blk)
		if err != nil {
			t.Fatal(err)
		}
		c.Release(x)
	}
	s := c.shardFor(2)
	s.mu.Lock()
	_, still := s.bufs[2]
	s.mu.Unlock()
	if still {
		t.Fatal("stable clean buffer not evicted under pressure")
	}
}

// TestShardCrossShardConcurrentChurn mixes gets, dirtying, journaling,
// drops, and snapshots across every shard from many goroutines. Invariant
// checks are structural (no lost content, bounds respected); run with -race
// to catch locking mistakes.
func TestShardCrossShardConcurrentChurn(t *testing.T) {
	c, _ := newShardedBC(t, 8192)
	// The cache contract makes callers responsible for ordering buffer-data
	// mutation against SnapshotDirty's copies (basefs does it with fs.mu:
	// writers hold the read side, the sync snapshot the write side). Mirror
	// that here; every cache-internal lock is still exercised concurrently.
	var datamu sync.RWMutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint32(g * 1000)
			for i := 0; i < 200; i++ {
				blk := base + uint32(i%100)
				switch i % 4 {
				case 0:
					b, err := c.Get(blk)
					if err != nil {
						t.Errorf("get: %v", err)
						return
					}
					datamu.RLock()
					b.Data[0] = byte(g)
					c.MarkDirty(b)
					datamu.RUnlock()
					c.Release(b)
				case 1:
					b := c.GetZero(blk + 500)
					c.MarkDirtyMeta(b)
					c.Release(b)
					c.MarkJournaled(b, b.ver)
					c.MarkStable(blk + 500)
				case 2:
					datamu.Lock()
					snaps := c.SnapshotDirty()
					datamu.Unlock()
					for _, sn := range snaps {
						if len(sn.Data) != disklayout.BlockSize {
							t.Errorf("snapshot block %d: short copy", sn.Blk)
							return
						}
					}
				case 3:
					c.Drop(blk)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() < 0 {
		t.Fatal("impossible")
	}
	_, _ = c.HitRate()
}
