package cache

import (
	"testing"
	"testing/quick"
)

func TestTwoQPromotionOnSecondReference(t *testing.T) {
	q := NewTwoQ(16)
	q.Touch(7)
	a1, _, am := q.Lens()
	if a1 != 1 || am != 0 {
		t.Fatalf("after first touch: a1in=%d am=%d", a1, am)
	}
	q.Touch(7)
	a1, _, am = q.Lens()
	if a1 != 0 || am != 1 {
		t.Fatalf("after second touch: a1in=%d am=%d", a1, am)
	}
	if !q.Resident(7) {
		t.Error("promoted block not resident")
	}
}

func TestTwoQScanResistance(t *testing.T) {
	q := NewTwoQ(32) // capA1in=8, capAm=24
	// Build a hot set by touching each block twice.
	for _, blk := range []uint32{1, 2, 3, 4} {
		q.Touch(blk)
		q.Touch(blk)
	}
	// A long sequential scan: each block touched exactly once.
	for blk := uint32(100); blk < 300; blk++ {
		q.Touch(blk)
	}
	// The hot set survived the scan.
	for _, blk := range []uint32{1, 2, 3, 4} {
		if !q.Resident(blk) {
			t.Errorf("hot block %d evicted by a one-touch scan", blk)
		}
	}
	a1, _, _ := q.Lens()
	if a1 > 8 {
		t.Errorf("probation queue exceeded its capacity: %d", a1)
	}
}

func TestTwoQGhostPromotion(t *testing.T) {
	q := NewTwoQ(16) // capA1in=4
	// Push block 1 through probation and out (4 more one-timers evict it).
	q.Touch(1)
	for blk := uint32(10); blk < 15; blk++ {
		q.Touch(blk)
	}
	if q.Resident(1) {
		t.Fatal("block 1 should have been evicted from probation")
	}
	// A reference while its ghost is remembered goes straight to protected.
	q.Touch(1)
	_, _, am := q.Lens()
	if am != 1 || !q.Resident(1) {
		t.Fatalf("ghost hit not promoted: am=%d", am)
	}
}

func TestTwoQForget(t *testing.T) {
	q := NewTwoQ(16)
	q.Touch(5)
	q.Touch(5)
	q.Forget(5)
	if q.Resident(5) {
		t.Error("forgotten block still resident")
	}
	// Forgetting again is a no-op.
	q.Forget(5)
}

func TestTwoQEvictionsAreResidentBlocksProperty(t *testing.T) {
	// Property: every evicted block was resident before the touch, and
	// residency never exceeds the configured capacity.
	f := func(touches []uint16) bool {
		q := NewTwoQ(24)
		resident := map[uint32]bool{}
		for _, raw := range touches {
			blk := uint32(raw % 64)
			ev := q.Touch(blk)
			resident[blk] = true
			for _, v := range ev {
				if !resident[v] {
					return false
				}
				delete(resident, v)
			}
			if len(resident) > 24+1 {
				return false
			}
		}
		for blk := range resident {
			if !q.Resident(blk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
