package cache

import (
	"container/list"
	"sync"
)

// TwoQ implements the 2Q admission policy over block numbers, the cache
// policy the paper names among the base's "sophisticated caching structures
// and policies (e.g., LRU 2Q)" (§2.3). It decides *which* clean buffers to
// evict; the BufferCache owns the buffers themselves.
//
// Classic simplified 2Q: a block seen once sits in the FIFO probation queue
// (A1in). If it is referenced again while there — or while its ghost lingers
// in A1out after eviction — it is promoted to the protected LRU main queue
// (Am). Scans touch each block once, so they wash through A1in without
// displacing the hot set in Am.
type TwoQ struct {
	mu sync.Mutex
	// a1in is the probation FIFO of resident one-timers.
	a1in    *list.List
	a1inMap map[uint32]*list.Element
	// a1out is the ghost FIFO of recently evicted one-timers (numbers only).
	a1out    *list.List
	a1outMap map[uint32]*list.Element
	// am is the protected LRU (front = least recent).
	am    *list.List
	amMap map[uint32]*list.Element

	capA1in  int
	capA1out int
	capAm    int
}

// NewTwoQ creates a 2Q policy for a cache of total resident capacity; the
// classic split reserves a quarter for probation and half the total for
// ghosts.
func NewTwoQ(capacity int) *TwoQ {
	if capacity < 8 {
		capacity = 8
	}
	capA1in := capacity / 4
	if capA1in < 2 {
		capA1in = 2
	}
	return &TwoQ{
		a1in: list.New(), a1inMap: make(map[uint32]*list.Element),
		a1out: list.New(), a1outMap: make(map[uint32]*list.Element),
		am: list.New(), amMap: make(map[uint32]*list.Element),
		capA1in:  capA1in,
		capA1out: capacity / 2,
		capAm:    capacity - capA1in,
	}
}

// Touch records a reference to blk and returns the block numbers the policy
// evicts from residency as a result (possibly none).
func (q *TwoQ) Touch(blk uint32) (evicted []uint32) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if e, ok := q.amMap[blk]; ok {
		q.am.MoveToBack(e) // hot and stays hot
		return nil
	}
	if _, ok := q.a1inMap[blk]; ok {
		// Second reference while on probation: promote.
		q.removeA1in(blk)
		return q.insertAm(blk)
	}
	if _, ok := q.a1outMap[blk]; ok {
		// Referenced again shortly after eviction: it deserved better.
		q.removeA1out(blk)
		return q.insertAm(blk)
	}
	// First sighting: probation.
	q.a1inMap[blk] = q.a1in.PushBack(blk)
	for q.a1in.Len() > q.capA1in {
		front := q.a1in.Front()
		victim := front.Value.(uint32)
		q.a1in.Remove(front)
		delete(q.a1inMap, victim)
		// Remember the ghost.
		q.a1outMap[victim] = q.a1out.PushBack(victim)
		for q.a1out.Len() > q.capA1out {
			g := q.a1out.Front()
			q.a1out.Remove(g)
			delete(q.a1outMap, g.Value.(uint32))
		}
		evicted = append(evicted, victim)
	}
	return evicted
}

func (q *TwoQ) insertAm(blk uint32) (evicted []uint32) {
	q.amMap[blk] = q.am.PushBack(blk)
	for q.am.Len() > q.capAm {
		front := q.am.Front()
		victim := front.Value.(uint32)
		q.am.Remove(front)
		delete(q.amMap, victim)
		evicted = append(evicted, victim)
	}
	return evicted
}

func (q *TwoQ) removeA1in(blk uint32) {
	if e, ok := q.a1inMap[blk]; ok {
		q.a1in.Remove(e)
		delete(q.a1inMap, blk)
	}
}

func (q *TwoQ) removeA1out(blk uint32) {
	if e, ok := q.a1outMap[blk]; ok {
		q.a1out.Remove(e)
		delete(q.a1outMap, blk)
	}
}

// Forget removes blk from all queues (the block was freed or force-dropped).
func (q *TwoQ) Forget(blk uint32) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.removeA1in(blk)
	q.removeA1out(blk)
	if e, ok := q.amMap[blk]; ok {
		q.am.Remove(e)
		delete(q.amMap, blk)
	}
}

// Resident reports whether the policy currently counts blk as cached.
func (q *TwoQ) Resident(blk uint32) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, in := q.a1inMap[blk]
	_, hot := q.amMap[blk]
	return in || hot
}

// Lens returns the three queue lengths (probation, ghost, protected), for
// tests and instrumentation.
func (q *TwoQ) Lens() (a1in, a1out, am int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.a1in.Len(), q.a1out.Len(), q.am.Len()
}
