package cache

import (
	"sync"

	"repro/internal/telemetry"
)

// DentryCache maps (parent inode, name) pairs to child inode numbers so the
// base filesystem can resolve hot paths without scanning directory blocks.
// It also caches negative entries (name known absent), like the Linux
// dcache. The shadow deliberately has no equivalent: it "always performs
// path lookup from the root inode and scans the directory entries" (§3.3).
type DentryCache struct {
	mu      sync.RWMutex
	entries map[dentryKey]dentryVal
	max     int
	hits    int64
	misses  int64

	telHits, telMisses *telemetry.Counter
}

// SetTelemetry installs hit/miss counters ("cache.dentry.*") from s.
func (c *DentryCache) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.telHits = s.Counter("cache.dentry.hits")
	c.telMisses = s.Counter("cache.dentry.misses")
}

type dentryKey struct {
	parent uint32
	name   string
}

type dentryVal struct {
	ino      uint32
	negative bool
}

// NewDentryCache creates a dentry cache bounded at max entries; at the bound
// the whole map is dropped (cheap wholesale invalidation, as real dcaches do
// under pressure).
func NewDentryCache(max int) *DentryCache {
	if max < 16 {
		max = 16
	}
	return &DentryCache{entries: make(map[dentryKey]dentryVal), max: max}
}

// Lookup returns the cached child ino for (parent, name). found reports a
// cache hit; negative reports a cached absence.
func (c *DentryCache) Lookup(parent uint32, name string) (ino uint32, negative, found bool) {
	c.mu.RLock()
	v, ok := c.entries[dentryKey{parent, name}]
	c.mu.RUnlock()
	c.mu.Lock()
	if ok {
		c.hits++
		c.telHits.Inc()
	} else {
		c.misses++
		c.telMisses.Inc()
	}
	c.mu.Unlock()
	if !ok {
		return 0, false, false
	}
	return v.ino, v.negative, true
}

// Add caches a positive mapping.
func (c *DentryCache) Add(parent uint32, name string, ino uint32) {
	c.add(parent, name, dentryVal{ino: ino})
}

// AddNegative caches the absence of a name.
func (c *DentryCache) AddNegative(parent uint32, name string) {
	c.add(parent, name, dentryVal{negative: true})
}

func (c *DentryCache) add(parent uint32, name string, v dentryVal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.max {
		c.entries = make(map[dentryKey]dentryVal)
	}
	c.entries[dentryKey{parent, name}] = v
}

// Invalidate removes a single mapping (after unlink, rename, rmdir, or
// create over a negative entry).
func (c *DentryCache) Invalidate(parent uint32, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, dentryKey{parent, name})
}

// InvalidateDir removes every mapping under one parent directory.
func (c *DentryCache) InvalidateDir(parent uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.parent == parent {
			delete(c.entries, k)
		}
	}
}

// Purge empties the cache (contained reboot).
func (c *DentryCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[dentryKey]dentryVal)
}

// Len returns the number of cached entries.
func (c *DentryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// HitRate returns hits and misses since creation.
func (c *DentryCache) HitRate() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
