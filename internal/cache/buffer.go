// Package cache implements the performance-oriented in-memory components of
// the base filesystem: a write-back buffer cache for disk blocks, an inode
// cache, and a dentry (name-lookup) cache.
//
// These are exactly the components the paper's Figure 2 places on the
// "common path (performance)" side and excludes from the shadow: "the shadow
// does not use a dentry cache ... does not utilize the concurrent inode and
// data block caches; instead, it uses a simple data structure" (§3.3). They
// are also where the base keeps the erroneous state that a contained reboot
// must discard: the RAE supervisor throws away the entire cache layer and
// re-mounts from disk.
package cache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/telemetry"
)

// Buf is one cached block. Callers mutate Data only between Get and Release
// while holding the buffer pinned, and must call MarkDirty (or MarkDirtyMeta
// for metadata) after mutating. All other state — the meta flag, dirty and
// stability bits, pin counts — is owned by the cache and only changes under
// its lock.
type Buf struct {
	Blk  uint32
	Data []byte
	// meta marks the block as filesystem metadata (inode table, bitmaps,
	// directory and indirect blocks). The sync path journals dirty metadata
	// blocks and writes dirty data blocks straight home (ordered mode).
	// Guarded by the cache lock: set via MarkDirtyMeta/Install, read via
	// SnapshotDirty.
	meta  bool
	dirty bool
	// unstable marks a block whose latest content is committed in the
	// journal but not yet checkpointed home. Such a buffer must never be
	// evicted — a re-read would see the stale home copy — so it stays out of
	// the LRU until MarkStable.
	unstable bool
	// dropped marks a buffer removed from the cache (block freed) while
	// still pinned. It must never re-enter the LRU: the block number may
	// have been reallocated to a different, live buffer.
	dropped bool
	// ver counts dirtyings. The sync path snapshots (content, ver) under the
	// filesystem lock, performs IO outside it, and then clears dirty only if
	// ver is unchanged — a concurrent re-dirty keeps the buffer dirty.
	ver  uint64
	pins int
	elem *list.Element
}

// BufferCache is a write-back block cache with LRU eviction of clean,
// unpinned buffers. Dirty and unstable buffers are never evicted; they leave
// those states only through the sync path (journal commit + checkpoint) or
// Drop.
type BufferCache struct {
	mu       sync.Mutex
	queue    *blockdev.Queue
	bufs     map[uint32]*Buf
	lru      *list.List // least-recently-used at the front
	maxClean int
	hits     int64
	misses   int64
	// policy, when set, drives admission/eviction (2Q); the LRU list remains
	// the backstop bound. Policy victims are honored only when clean,
	// stable, and unpinned.
	policy *TwoQ

	telHits, telMisses *telemetry.Counter
}

// SetTelemetry installs hit/miss counters ("cache.buffer.*") from s.
func (c *BufferCache) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.telHits = s.Counter("cache.buffer.hits")
	c.telMisses = s.Counter("cache.buffer.misses")
}

// SetPolicy installs a 2Q replacement policy (nil reverts to plain LRU).
func (c *BufferCache) SetPolicy(p *TwoQ) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
}

// touchPolicyLocked routes a reference through the policy and applies its
// eviction decisions to evictable buffers.
func (c *BufferCache) touchPolicyLocked(blk uint32) {
	if c.policy == nil {
		return
	}
	for _, victim := range c.policy.Touch(blk) {
		if b, ok := c.bufs[victim]; ok && !b.dirty && !b.unstable && b.pins == 0 {
			if b.elem != nil {
				c.lru.Remove(b.elem)
				b.elem = nil
			}
			delete(c.bufs, victim)
		}
	}
}

// NewBufferCache creates a cache over the async block queue holding at most
// maxClean clean buffers (dirty buffers are unbounded; sync policy bounds
// them in practice).
func NewBufferCache(queue *blockdev.Queue, maxClean int) *BufferCache {
	if maxClean < 8 {
		maxClean = 8
	}
	return &BufferCache{
		queue:    queue,
		bufs:     make(map[uint32]*Buf),
		lru:      list.New(),
		maxClean: maxClean,
	}
}

// Get returns the cached buffer for blk, reading through the async queue on
// a miss. The buffer is returned pinned; the caller must Release it.
func (c *BufferCache) Get(blk uint32) (*Buf, error) {
	c.mu.Lock()
	if b, ok := c.bufs[blk]; ok {
		b.pins++
		if b.elem != nil {
			c.lru.MoveToBack(b.elem)
		}
		c.hits++
		c.telHits.Inc()
		c.touchPolicyLocked(blk)
		c.mu.Unlock()
		return b, nil
	}
	c.misses++
	c.telMisses.Inc()
	c.mu.Unlock()

	// Read outside the lock so concurrent misses overlap their IO.
	data, err := c.queue.Read(blk)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.bufs[blk]; ok {
		// Another goroutine cached it first; prefer theirs (it may be dirty).
		b.pins++
		return b, nil
	}
	b := &Buf{Blk: blk, Data: data, pins: 1}
	c.bufs[blk] = b
	c.touchPolicyLocked(blk)
	c.evictLocked()
	return b, nil
}

// GetZero returns a pinned buffer for blk initialized to zeros without
// reading the device, for freshly allocated blocks.
func (c *BufferCache) GetZero(blk uint32) *Buf {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.bufs[blk]; ok {
		b.pins++
		for i := range b.Data {
			b.Data[i] = 0
		}
		return b
	}
	b := &Buf{Blk: blk, Data: make([]byte, disklayout.BlockSize), pins: 1}
	c.bufs[blk] = b
	c.touchPolicyLocked(blk)
	c.evictLocked()
	return b
}

// MarkDirty flags a pinned buffer as modified data. Dirty buffers are exempt
// from eviction until flushed.
func (c *BufferCache) MarkDirty(b *Buf) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markDirtyLocked(b)
}

// MarkDirtyMeta flags a pinned buffer as modified metadata, routing it to
// the journaled side of the sync path. The meta flag is set under the cache
// lock so concurrent sync snapshots never race on it.
func (c *BufferCache) MarkDirtyMeta(b *Buf) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b.meta = true
	c.markDirtyLocked(b)
}

func (c *BufferCache) markDirtyLocked(b *Buf) {
	b.dirty = true
	b.ver++
	if b.elem != nil {
		c.lru.Remove(b.elem)
		b.elem = nil
	}
}

// Release unpins a buffer. Clean, stable, unpinned buffers become eviction
// candidates. A buffer that was Dropped while pinned is gone for good: its
// block number may already belong to a different live buffer, so it must not
// re-enter the LRU.
func (c *BufferCache) Release(b *Buf) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b.pins <= 0 {
		panic(fmt.Sprintf("cache: release of unpinned buffer %d", b.Blk))
	}
	b.pins--
	c.maybeCacheLocked(b)
}

// maybeCacheLocked inserts b into the LRU if it is eligible, then enforces
// the clean-buffer bound.
func (c *BufferCache) maybeCacheLocked(b *Buf) {
	if b.pins == 0 && !b.dirty && !b.unstable && !b.dropped && b.elem == nil {
		b.elem = c.lru.PushBack(b)
		c.evictLocked()
	}
}

func (c *BufferCache) evictLocked() {
	for c.lru.Len() > c.maxClean {
		front := c.lru.Front()
		b := front.Value.(*Buf)
		c.lru.Remove(front)
		b.elem = nil
		// Identity check: only evict the mapping if it still points at this
		// buffer, never a successor that reused the block number.
		if cur, ok := c.bufs[b.Blk]; ok && cur == b {
			delete(c.bufs, b.Blk)
		}
	}
}

// DirtyBlocks returns a snapshot of all dirty buffers. The buffers stay
// dirty; the sync path clears them with MarkClean after committing.
func (c *BufferCache) DirtyBlocks() []*Buf {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Buf
	for _, b := range c.bufs {
		if b.dirty {
			out = append(out, b)
		}
	}
	return out
}

// DirtySnap is one dirty buffer captured by SnapshotDirty: a stable copy of
// its content plus the version that content corresponds to.
type DirtySnap struct {
	Buf  *Buf
	Blk  uint32
	Meta bool
	Ver  uint64
	Data []byte
}

// SnapshotDirty captures every dirty buffer — block number, meta flag,
// version, and a copy of the content — under the cache lock. The sync path
// snapshots while holding the filesystem lock (quiescing writers), performs
// IO on the copies outside both locks, and retires each buffer with
// MarkCleanVer/MarkJournaled so a concurrent re-dirty is never lost.
func (c *BufferCache) SnapshotDirty() []DirtySnap {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []DirtySnap
	for _, b := range c.bufs {
		if !b.dirty {
			continue
		}
		cp := make([]byte, len(b.Data))
		copy(cp, b.Data)
		out = append(out, DirtySnap{Buf: b, Blk: b.Blk, Meta: b.meta, Ver: b.ver, Data: cp})
	}
	return out
}

// MarkClean clears the dirty flag after the buffer's contents have been made
// durable, returning it to LRU circulation if eligible.
func (c *BufferCache) MarkClean(b *Buf) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !b.dirty {
		return
	}
	b.dirty = false
	c.maybeCacheLocked(b)
}

// MarkCleanVer clears the dirty flag only if the buffer has not been
// re-dirtied since the version was captured (see SnapshotDirty). The sync
// path uses it for data blocks written home outside the filesystem lock.
func (c *BufferCache) MarkCleanVer(b *Buf, ver uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !b.dirty || b.ver != ver {
		return
	}
	b.dirty = false
	c.maybeCacheLocked(b)
}

// MarkJournaled records that the buffer's content at the captured version is
// now committed in the journal: the buffer turns unstable (home copy stale,
// so it is pinned out of eviction until a checkpoint) and, if it has not
// been re-dirtied meanwhile, clean. A re-dirtied buffer stays dirty — its
// newer content will ride a later transaction — but still turns unstable,
// because the journal now holds a live record targeting its home.
func (c *BufferCache) MarkJournaled(b *Buf, ver uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b.unstable = true
	if b.elem != nil {
		c.lru.Remove(b.elem)
		b.elem = nil
	}
	if b.dirty && b.ver == ver {
		b.dirty = false
	}
}

// MarkStable clears the unstable state of blk after a checkpoint wrote its
// journaled content home and flushed. No-op if the block is no longer cached
// (freed) or was reallocated to a buffer that is not unstable.
func (c *BufferCache) MarkStable(blk uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.bufs[blk]
	if !ok || !b.unstable {
		return
	}
	b.unstable = false
	c.maybeCacheLocked(b)
}

// Install places externally produced block contents (the shadow's metadata
// download) into the cache as a dirty buffer, replacing any cached version.
// This is the base's "metadata downloading" absorption point (§3.2). meta
// tags the block for the journaled sync path.
func (c *BufferCache) Install(blk uint32, data []byte, meta bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.bufs[blk]
	if !ok {
		b = &Buf{Blk: blk}
		c.bufs[blk] = b
	}
	if b.elem != nil {
		c.lru.Remove(b.elem)
		b.elem = nil
	}
	b.Data = make([]byte, disklayout.BlockSize)
	copy(b.Data, data)
	b.meta = meta
	b.dirty = true
	b.ver++
}

// Drop removes a block from the cache regardless of state (used when a block
// is freed). If the buffer is still pinned, its holder may keep using it,
// but it is marked dropped and will never re-enter the cache.
func (c *BufferCache) Drop(blk uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.policy != nil {
		c.policy.Forget(blk)
	}
	if b, ok := c.bufs[blk]; ok {
		if b.elem != nil {
			c.lru.Remove(b.elem)
			b.elem = nil
		}
		b.dropped = true
		delete(c.bufs, blk)
	}
}

// Len returns the number of cached buffers.
func (c *BufferCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bufs)
}

// HitRate returns cache hits and misses since creation.
func (c *BufferCache) HitRate() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
