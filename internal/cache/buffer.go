// Package cache implements the performance-oriented in-memory components of
// the base filesystem: a write-back buffer cache for disk blocks, an inode
// cache, and a dentry (name-lookup) cache.
//
// These are exactly the components the paper's Figure 2 places on the
// "common path (performance)" side and excludes from the shadow: "the shadow
// does not use a dentry cache ... does not utilize the concurrent inode and
// data block caches; instead, it uses a simple data structure" (§3.3). They
// are also where the base keeps the erroneous state that a contained reboot
// must discard: the RAE supervisor throws away the entire cache layer and
// re-mounts from disk.
package cache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/telemetry"
)

// Buf is one cached block. Callers mutate Data only between Get and Release
// while holding the buffer pinned, and must call MarkDirty after mutating.
type Buf struct {
	Blk  uint32
	Data []byte
	// Meta marks the block as filesystem metadata (inode table, bitmaps,
	// directory and indirect blocks). The sync path journals dirty metadata
	// blocks and writes dirty data blocks straight home (ordered mode).
	Meta  bool
	dirty bool
	pins  int
	elem  *list.Element
}

// BufferCache is a write-back block cache with LRU eviction of clean,
// unpinned buffers. Dirty buffers are never evicted; they leave the cache
// only through FlushDirty (checkpointing) or Invalidate (contained reboot).
type BufferCache struct {
	mu       sync.Mutex
	queue    *blockdev.Queue
	bufs     map[uint32]*Buf
	lru      *list.List // least-recently-used at the front
	maxClean int
	hits     int64
	misses   int64
	// policy, when set, drives admission/eviction (2Q); the LRU list remains
	// the backstop bound. Policy victims are honored only when clean and
	// unpinned.
	policy *TwoQ

	telHits, telMisses *telemetry.Counter
}

// SetTelemetry installs hit/miss counters ("cache.buffer.*") from s.
func (c *BufferCache) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.telHits = s.Counter("cache.buffer.hits")
	c.telMisses = s.Counter("cache.buffer.misses")
}

// SetPolicy installs a 2Q replacement policy (nil reverts to plain LRU).
func (c *BufferCache) SetPolicy(p *TwoQ) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
}

// touchPolicyLocked routes a reference through the policy and applies its
// eviction decisions to evictable buffers.
func (c *BufferCache) touchPolicyLocked(blk uint32) {
	if c.policy == nil {
		return
	}
	for _, victim := range c.policy.Touch(blk) {
		if b, ok := c.bufs[victim]; ok && !b.dirty && b.pins == 0 {
			if b.elem != nil {
				c.lru.Remove(b.elem)
				b.elem = nil
			}
			delete(c.bufs, victim)
		}
	}
}

// NewBufferCache creates a cache over the async block queue holding at most
// maxClean clean buffers (dirty buffers are unbounded; sync policy bounds
// them in practice).
func NewBufferCache(queue *blockdev.Queue, maxClean int) *BufferCache {
	if maxClean < 8 {
		maxClean = 8
	}
	return &BufferCache{
		queue:    queue,
		bufs:     make(map[uint32]*Buf),
		lru:      list.New(),
		maxClean: maxClean,
	}
}

// Get returns the cached buffer for blk, reading through the async queue on
// a miss. The buffer is returned pinned; the caller must Release it.
func (c *BufferCache) Get(blk uint32) (*Buf, error) {
	c.mu.Lock()
	if b, ok := c.bufs[blk]; ok {
		b.pins++
		if b.elem != nil {
			c.lru.MoveToBack(b.elem)
		}
		c.hits++
		c.telHits.Inc()
		c.touchPolicyLocked(blk)
		c.mu.Unlock()
		return b, nil
	}
	c.misses++
	c.telMisses.Inc()
	c.mu.Unlock()

	// Read outside the lock so concurrent misses overlap their IO.
	data, err := c.queue.Read(blk)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.bufs[blk]; ok {
		// Another goroutine cached it first; prefer theirs (it may be dirty).
		b.pins++
		return b, nil
	}
	b := &Buf{Blk: blk, Data: data, pins: 1}
	c.bufs[blk] = b
	c.touchPolicyLocked(blk)
	c.evictLocked()
	return b, nil
}

// GetZero returns a pinned buffer for blk initialized to zeros without
// reading the device, for freshly allocated blocks.
func (c *BufferCache) GetZero(blk uint32) *Buf {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.bufs[blk]; ok {
		b.pins++
		for i := range b.Data {
			b.Data[i] = 0
		}
		return b
	}
	b := &Buf{Blk: blk, Data: make([]byte, disklayout.BlockSize), pins: 1}
	c.bufs[blk] = b
	c.touchPolicyLocked(blk)
	c.evictLocked()
	return b
}

// MarkDirty flags a pinned buffer as modified. Dirty buffers are exempt from
// eviction until flushed.
func (c *BufferCache) MarkDirty(b *Buf) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b.dirty = true
	if b.elem != nil {
		c.lru.Remove(b.elem)
		b.elem = nil
	}
}

// Release unpins a buffer. Clean, unpinned buffers become eviction
// candidates.
func (c *BufferCache) Release(b *Buf) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b.pins <= 0 {
		panic(fmt.Sprintf("cache: release of unpinned buffer %d", b.Blk))
	}
	b.pins--
	if b.pins == 0 && !b.dirty && b.elem == nil {
		b.elem = c.lru.PushBack(b)
		c.evictLocked()
	}
}

func (c *BufferCache) evictLocked() {
	for c.lru.Len() > c.maxClean {
		front := c.lru.Front()
		b := front.Value.(*Buf)
		c.lru.Remove(front)
		b.elem = nil
		delete(c.bufs, b.Blk)
	}
}

// DirtyBlocks returns a snapshot of all dirty buffers, ordered by block
// number upstream if the caller sorts. The buffers stay dirty; the sync path
// clears them with MarkClean after committing.
func (c *BufferCache) DirtyBlocks() []*Buf {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Buf
	for _, b := range c.bufs {
		if b.dirty {
			out = append(out, b)
		}
	}
	return out
}

// MarkClean clears the dirty flag after the buffer's contents have been made
// durable, returning it to LRU circulation if unpinned.
func (c *BufferCache) MarkClean(b *Buf) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !b.dirty {
		return
	}
	b.dirty = false
	if b.pins == 0 && b.elem == nil {
		b.elem = c.lru.PushBack(b)
		c.evictLocked()
	}
}

// Install places externally produced block contents (the shadow's metadata
// download) into the cache as a dirty buffer, replacing any cached version.
// This is the base's "metadata downloading" absorption point (§3.2). meta
// tags the block for the journaled sync path.
func (c *BufferCache) Install(blk uint32, data []byte, meta bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.bufs[blk]
	if !ok {
		b = &Buf{Blk: blk}
		c.bufs[blk] = b
	}
	if b.elem != nil {
		c.lru.Remove(b.elem)
		b.elem = nil
	}
	b.Data = make([]byte, disklayout.BlockSize)
	copy(b.Data, data)
	b.Meta = meta
	b.dirty = true
}

// Drop removes a block from the cache regardless of state (used when a block
// is freed).
func (c *BufferCache) Drop(blk uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.policy != nil {
		c.policy.Forget(blk)
	}
	if b, ok := c.bufs[blk]; ok {
		if b.elem != nil {
			c.lru.Remove(b.elem)
		}
		delete(c.bufs, blk)
	}
}

// Len returns the number of cached buffers.
func (c *BufferCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bufs)
}

// HitRate returns cache hits and misses since creation.
func (c *BufferCache) HitRate() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
