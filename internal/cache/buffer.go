// Package cache implements the performance-oriented in-memory components of
// the base filesystem: a write-back buffer cache for disk blocks, an inode
// cache, and a dentry (name-lookup) cache.
//
// These are exactly the components the paper's Figure 2 places on the
// "common path (performance)" side and excludes from the shadow: "the shadow
// does not use a dentry cache ... does not utilize the concurrent inode and
// data block caches; instead, it uses a simple data structure" (§3.3). They
// are also where the base keeps the erroneous state that a contained reboot
// must discard: the RAE supervisor throws away the entire cache layer and
// re-mounts from disk.
package cache

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/telemetry"
)

// Buf is one cached block. Callers mutate Data only between Get and Release
// while holding the buffer pinned, and must call MarkDirty (or MarkDirtyMeta
// for metadata) after mutating. All other state — the meta flag, dirty and
// stability bits, pin counts — is owned by the shard that maps the buffer's
// block number and only changes under that shard's lock.
type Buf struct {
	Blk  uint32
	Data []byte
	// meta marks the block as filesystem metadata (inode table, bitmaps,
	// directory and indirect blocks). The sync path journals dirty metadata
	// blocks and writes dirty data blocks straight home (ordered mode).
	// Guarded by the shard lock: set via MarkDirtyMeta/Install, read via
	// SnapshotDirty.
	meta  bool
	dirty bool
	// unstable marks a block whose latest content is committed in the
	// journal but not yet checkpointed home. Such a buffer must never be
	// evicted — a re-read would see the stale home copy — so it stays out of
	// the LRU until MarkStable.
	unstable bool
	// dropped marks a buffer removed from the cache (block freed) while
	// still pinned. It must never re-enter the LRU: the block number may
	// have been reallocated to a different, live buffer.
	dropped bool
	// ver counts dirtyings. The sync path snapshots (content, ver) under the
	// filesystem lock, performs IO outside it, and then clears dirty only if
	// ver is unchanged — a concurrent re-dirty keeps the buffer dirty.
	ver  uint64
	pins int
	elem *list.Element
}

// bufShard is one lock stripe of the cache: an independent map + LRU + 2Q
// over the block numbers that hash to it. Every invariant the cache
// maintains (dirty/unstable/pinned exclusion from eviction, the clean-buffer
// bound, identity-checked map deletes) holds per shard; block numbers never
// migrate between shards, so no cross-shard ordering exists and no operation
// ever takes two shard locks.
type bufShard struct {
	mu       sync.Mutex
	bufs     map[uint32]*Buf
	lru      *list.List // least-recently-used at the front
	maxClean int
	hits     int64
	misses   int64
	// policy, when set, drives admission/eviction (2Q); the LRU list remains
	// the backstop bound. Policy victims are honored only when clean,
	// stable, and unpinned.
	policy *TwoQ
	_      [24]byte // keep neighboring shards' hot words off one cache line
}

// BufferCache is a write-back block cache with LRU eviction of clean,
// unpinned buffers, lock-striped by block number. Dirty and unstable buffers
// are never evicted; they leave those states only through the sync path
// (journal commit + checkpoint) or Drop.
type BufferCache struct {
	queue  *blockdev.Queue
	shards []bufShard
	mask   uint32 // len(shards)-1; shard count is a power of two

	telHits, telMisses *telemetry.Counter
	// telLockWait records contended shard-lock acquisitions only
	// ("cache.shard.lock_wait").
	telLockWait *telemetry.Histogram
}

// shardCount picks the stripe width: enough shards to spread GOMAXPROCS
// writers, but never so many that a shard's clean-buffer bound drops below 8
// (tiny test caches get exactly one shard and behave like the unsharded
// cache), and capped so full-cache sweeps (snapshot, purge) stay cheap.
func shardCount(maxClean int) int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 16 && (s*2)*8 <= maxClean {
		s <<= 1
	}
	return s
}

// NewBufferCache creates a cache over the async block queue holding at most
// maxClean clean buffers in total (dirty buffers are unbounded; sync policy
// bounds them in practice).
func NewBufferCache(queue *blockdev.Queue, maxClean int) *BufferCache {
	if maxClean < 8 {
		maxClean = 8
	}
	n := shardCount(maxClean)
	c := &BufferCache{
		queue:  queue,
		shards: make([]bufShard, n),
		mask:   uint32(n - 1),
	}
	for i := range c.shards {
		c.shards[i].bufs = make(map[uint32]*Buf)
		c.shards[i].lru = list.New()
		c.shards[i].maxClean = maxClean / n
	}
	return c
}

// NumShards returns the lock-stripe width (for tests and diagnostics).
func (c *BufferCache) NumShards() int { return len(c.shards) }

// SetCleanBudget adjusts the cache's total clean-buffer bound at runtime,
// splitting it evenly across shards. Shrinking evicts immediately down to the
// new bound (clean, stable, unpinned buffers only — dirty and unstable
// buffers are never evictable, so a shrink can only reclaim what is safe to
// reclaim); growing takes effect on the next insertions. This is the
// donation/reclaim primitive the multi-volume cache rebalancer drives: one
// volume's cache donates capacity, another's reclaims it, and the fleet-wide
// sum of budgets stays constant. Values below the 8-buffer floor clamp to it.
func (c *BufferCache) SetCleanBudget(maxClean int) {
	if maxClean < 8 {
		maxClean = 8
	}
	per := maxClean / len(c.shards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		s := &c.shards[i]
		c.lock(s)
		s.maxClean = per
		s.evictLocked()
		s.mu.Unlock()
	}
}

// CleanBudget returns the current total clean-buffer bound (the sum of the
// per-shard bounds, which is what SetCleanBudget's split actually enforces).
func (c *BufferCache) CleanBudget() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		c.lock(s)
		total += s.maxClean
		s.mu.Unlock()
	}
	return total
}

// CleanLen returns the number of clean, unpinned, LRU-resident buffers — the
// population the clean budget bounds (Len also counts dirty, unstable, and
// pinned buffers, which no budget governs).
func (c *BufferCache) CleanLen() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		c.lock(s)
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

func (c *BufferCache) shardFor(blk uint32) *bufShard {
	return &c.shards[blk&c.mask]
}

// lock acquires one shard, recording the wait time of contended
// acquisitions. The fast path is a single TryLock.
func (c *BufferCache) lock(s *bufShard) {
	if c.telLockWait == nil {
		s.mu.Lock()
		return
	}
	if s.mu.TryLock() {
		return
	}
	t0 := time.Now()
	s.mu.Lock()
	c.telLockWait.Observe(time.Since(t0))
}

// SetTelemetry installs hit/miss counters ("cache.buffer.*") and the shard
// contention histogram ("cache.shard.lock_wait") from s.
func (c *BufferCache) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	c.telHits = s.Counter("cache.buffer.hits")
	c.telMisses = s.Counter("cache.buffer.misses")
	c.telLockWait = s.Histogram("cache.shard.lock_wait")
}

// SetPolicy installs a 2Q replacement policy of the given total capacity,
// split evenly across shards (capacity <= 0 reverts to plain LRU). Each
// shard gets its own 2Q instance so policy state never crosses stripes.
func (c *BufferCache) SetPolicy(capacity int) {
	per := 0
	if capacity > 0 {
		per = capacity / len(c.shards)
	}
	for i := range c.shards {
		s := &c.shards[i]
		c.lock(s)
		if capacity <= 0 {
			s.policy = nil
		} else {
			s.policy = NewTwoQ(per)
		}
		s.mu.Unlock()
	}
}

// touchPolicyLocked routes a reference through the shard's policy and applies
// its eviction decisions to evictable buffers.
func (s *bufShard) touchPolicyLocked(blk uint32) {
	if s.policy == nil {
		return
	}
	for _, victim := range s.policy.Touch(blk) {
		if b, ok := s.bufs[victim]; ok && !b.dirty && !b.unstable && b.pins == 0 {
			if b.elem != nil {
				s.lru.Remove(b.elem)
				b.elem = nil
			}
			delete(s.bufs, victim)
		}
	}
}

// Get returns the cached buffer for blk, reading through the async queue on
// a miss. The buffer is returned pinned; the caller must Release it.
func (c *BufferCache) Get(blk uint32) (*Buf, error) {
	s := c.shardFor(blk)
	c.lock(s)
	if b, ok := s.bufs[blk]; ok {
		b.pins++
		if b.elem != nil {
			s.lru.MoveToBack(b.elem)
		}
		s.hits++
		c.telHits.Inc()
		s.touchPolicyLocked(blk)
		s.mu.Unlock()
		return b, nil
	}
	s.misses++
	c.telMisses.Inc()
	s.mu.Unlock()

	// Read outside the lock so concurrent misses overlap their IO.
	data, err := c.queue.Read(blk)
	if err != nil {
		return nil, err
	}

	c.lock(s)
	defer s.mu.Unlock()
	if b, ok := s.bufs[blk]; ok {
		// Another goroutine cached it first; prefer theirs (it may be dirty).
		b.pins++
		return b, nil
	}
	b := &Buf{Blk: blk, Data: data, pins: 1}
	s.bufs[blk] = b
	s.touchPolicyLocked(blk)
	s.evictLocked()
	return b, nil
}

// GetZero returns a pinned buffer for blk initialized to zeros without
// reading the device, for freshly allocated blocks.
func (c *BufferCache) GetZero(blk uint32) *Buf {
	s := c.shardFor(blk)
	c.lock(s)
	defer s.mu.Unlock()
	if b, ok := s.bufs[blk]; ok {
		b.pins++
		for i := range b.Data {
			b.Data[i] = 0
		}
		return b
	}
	b := &Buf{Blk: blk, Data: make([]byte, disklayout.BlockSize), pins: 1}
	s.bufs[blk] = b
	s.touchPolicyLocked(blk)
	s.evictLocked()
	return b
}

// MarkDirty flags a pinned buffer as modified data. Dirty buffers are exempt
// from eviction until flushed.
func (c *BufferCache) MarkDirty(b *Buf) {
	s := c.shardFor(b.Blk)
	c.lock(s)
	defer s.mu.Unlock()
	s.markDirtyLocked(b)
}

// MarkDirtyMeta flags a pinned buffer as modified metadata, routing it to
// the journaled side of the sync path. The meta flag is set under the shard
// lock so concurrent sync snapshots never race on it.
func (c *BufferCache) MarkDirtyMeta(b *Buf) {
	s := c.shardFor(b.Blk)
	c.lock(s)
	defer s.mu.Unlock()
	b.meta = true
	s.markDirtyLocked(b)
}

func (s *bufShard) markDirtyLocked(b *Buf) {
	b.dirty = true
	b.ver++
	if b.elem != nil {
		s.lru.Remove(b.elem)
		b.elem = nil
	}
}

// Release unpins a buffer. Clean, stable, unpinned buffers become eviction
// candidates. A buffer that was Dropped while pinned is gone for good: its
// block number may already belong to a different live buffer, so it must not
// re-enter the LRU.
func (c *BufferCache) Release(b *Buf) {
	s := c.shardFor(b.Blk)
	c.lock(s)
	defer s.mu.Unlock()
	if b.pins <= 0 {
		panic(fmt.Sprintf("cache: release of unpinned buffer %d", b.Blk))
	}
	b.pins--
	s.maybeCacheLocked(b)
}

// maybeCacheLocked inserts b into the LRU if it is eligible, then enforces
// the shard's clean-buffer bound.
func (s *bufShard) maybeCacheLocked(b *Buf) {
	if b.pins == 0 && !b.dirty && !b.unstable && !b.dropped && b.elem == nil {
		b.elem = s.lru.PushBack(b)
		s.evictLocked()
	}
}

func (s *bufShard) evictLocked() {
	for s.lru.Len() > s.maxClean {
		front := s.lru.Front()
		b := front.Value.(*Buf)
		s.lru.Remove(front)
		b.elem = nil
		// Identity check: only evict the mapping if it still points at this
		// buffer, never a successor that reused the block number.
		if cur, ok := s.bufs[b.Blk]; ok && cur == b {
			delete(s.bufs, b.Blk)
		}
	}
}

// DirtyBlocks returns a snapshot of all dirty buffers. The buffers stay
// dirty; the sync path clears them with MarkClean after committing.
func (c *BufferCache) DirtyBlocks() []*Buf {
	var out []*Buf
	for i := range c.shards {
		s := &c.shards[i]
		c.lock(s)
		for _, b := range s.bufs {
			if b.dirty {
				out = append(out, b)
			}
		}
		s.mu.Unlock()
	}
	return out
}

// DirtySnap is one dirty buffer captured by SnapshotDirty: a stable copy of
// its content plus the version that content corresponds to.
type DirtySnap struct {
	Buf  *Buf
	Blk  uint32
	Meta bool
	Ver  uint64
	Data []byte
}

// SnapshotDirty captures every dirty buffer — block number, meta flag,
// version, and a copy of the content — shard by shard. The sync path
// snapshots while holding the filesystem lock (quiescing writers), performs
// IO on the copies outside all locks, and retires each buffer with
// MarkCleanVer/MarkJournaled so a concurrent re-dirty is never lost.
func (c *BufferCache) SnapshotDirty() []DirtySnap {
	var out []DirtySnap
	for i := range c.shards {
		s := &c.shards[i]
		c.lock(s)
		for _, b := range s.bufs {
			if !b.dirty {
				continue
			}
			cp := make([]byte, len(b.Data))
			copy(cp, b.Data)
			out = append(out, DirtySnap{Buf: b, Blk: b.Blk, Meta: b.meta, Ver: b.ver, Data: cp})
		}
		s.mu.Unlock()
	}
	return out
}

// MarkClean clears the dirty flag after the buffer's contents have been made
// durable, returning it to LRU circulation if eligible.
func (c *BufferCache) MarkClean(b *Buf) {
	s := c.shardFor(b.Blk)
	c.lock(s)
	defer s.mu.Unlock()
	if !b.dirty {
		return
	}
	b.dirty = false
	s.maybeCacheLocked(b)
}

// MarkCleanVer clears the dirty flag only if the buffer has not been
// re-dirtied since the version was captured (see SnapshotDirty). The sync
// path uses it for data blocks written home outside the filesystem lock.
func (c *BufferCache) MarkCleanVer(b *Buf, ver uint64) {
	s := c.shardFor(b.Blk)
	c.lock(s)
	defer s.mu.Unlock()
	if !b.dirty || b.ver != ver {
		return
	}
	b.dirty = false
	s.maybeCacheLocked(b)
}

// MarkJournaled records that the buffer's content at the captured version is
// now committed in the journal: the buffer turns unstable (home copy stale,
// so it is pinned out of eviction until a checkpoint) and, if it has not
// been re-dirtied meanwhile, clean. A re-dirtied buffer stays dirty — its
// newer content will ride a later transaction — but still turns unstable,
// because the journal now holds a live record targeting its home.
func (c *BufferCache) MarkJournaled(b *Buf, ver uint64) {
	s := c.shardFor(b.Blk)
	c.lock(s)
	defer s.mu.Unlock()
	b.unstable = true
	if b.elem != nil {
		s.lru.Remove(b.elem)
		b.elem = nil
	}
	if b.dirty && b.ver == ver {
		b.dirty = false
	}
}

// MarkStable clears the unstable state of blk after a checkpoint wrote its
// journaled content home and flushed. No-op if the block is no longer cached
// (freed) or was reallocated to a buffer that is not unstable.
func (c *BufferCache) MarkStable(blk uint32) {
	s := c.shardFor(blk)
	c.lock(s)
	defer s.mu.Unlock()
	b, ok := s.bufs[blk]
	if !ok || !b.unstable {
		return
	}
	b.unstable = false
	s.maybeCacheLocked(b)
}

// Install places externally produced block contents (the shadow's metadata
// download) into the cache as a dirty buffer, replacing any cached version.
// This is the base's "metadata downloading" absorption point (§3.2). meta
// tags the block for the journaled sync path.
//
// Install adopts data: the caller hands over ownership and must not touch
// the slice afterwards. The single defensive copy across the isolation
// boundary happens where the handoff chunk is sealed, not here.
func (c *BufferCache) Install(blk uint32, data []byte, meta bool) {
	s := c.shardFor(blk)
	c.lock(s)
	defer s.mu.Unlock()
	b, ok := s.bufs[blk]
	if !ok {
		b = &Buf{Blk: blk}
		s.bufs[blk] = b
	}
	if b.elem != nil {
		s.lru.Remove(b.elem)
		b.elem = nil
	}
	b.Data = data
	b.meta = meta
	b.dirty = true
	b.ver++
}

// Peek returns the cached buffer for blk pinned, or nil without performing
// any IO. The vectored read path uses it to separate cache hits (which may be
// dirtier than disk) from the misses it batches into device-level runs.
func (c *BufferCache) Peek(blk uint32) *Buf {
	s := c.shardFor(blk)
	c.lock(s)
	defer s.mu.Unlock()
	b, ok := s.bufs[blk]
	if !ok {
		return nil
	}
	b.pins++
	if b.elem != nil {
		s.lru.MoveToBack(b.elem)
	}
	s.hits++
	c.telHits.Inc()
	s.touchPolicyLocked(blk)
	return b
}

// InstallClean adopts externally produced contents that are known to match
// the device (a completed vectored read or write-back) as a clean, unpinned
// buffer. If the block is already cached, the existing buffer — which may
// carry newer, dirty content — wins and the install is a no-op. The caller
// hands over ownership of data.
func (c *BufferCache) InstallClean(blk uint32, data []byte) {
	s := c.shardFor(blk)
	c.lock(s)
	defer s.mu.Unlock()
	if _, ok := s.bufs[blk]; ok {
		return
	}
	b := &Buf{Blk: blk, Data: data}
	s.bufs[blk] = b
	s.touchPolicyLocked(blk)
	s.maybeCacheLocked(b)
}

// Drop removes a block from the cache regardless of state (used when a block
// is freed). If the buffer is still pinned, its holder may keep using it,
// but it is marked dropped and will never re-enter the cache.
func (c *BufferCache) Drop(blk uint32) {
	s := c.shardFor(blk)
	c.lock(s)
	defer s.mu.Unlock()
	if s.policy != nil {
		s.policy.Forget(blk)
	}
	if b, ok := s.bufs[blk]; ok {
		if b.elem != nil {
			s.lru.Remove(b.elem)
			b.elem = nil
		}
		b.dropped = true
		delete(s.bufs, blk)
	}
}

// Len returns the number of cached buffers across all shards.
func (c *BufferCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		c.lock(s)
		n += len(s.bufs)
		s.mu.Unlock()
	}
	return n
}

// HitRate returns cache hits and misses since creation.
func (c *BufferCache) HitRate() (hits, misses int64) {
	for i := range c.shards {
		s := &c.shards[i]
		c.lock(s)
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}
