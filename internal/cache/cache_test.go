package cache

import (
	"sync"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
)

func newBC(t *testing.T, blocks uint32, maxClean int) (*BufferCache, *blockdev.Mem, *blockdev.Queue) {
	t.Helper()
	dev := blockdev.NewMem(blocks)
	q := blockdev.NewQueue(dev, 2, 16)
	t.Cleanup(q.Close)
	return NewBufferCache(q, maxClean), dev, q
}

func fill(dev *blockdev.Mem, blk uint32, b byte) {
	data := make([]byte, disklayout.BlockSize)
	for i := range data {
		data[i] = b
	}
	_ = dev.WriteBlock(blk, data)
}

func TestBufferCacheReadThrough(t *testing.T) {
	c, dev, _ := newBC(t, 16, 8)
	fill(dev, 3, 0x33)
	b, err := c.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Data[0] != 0x33 {
		t.Error("read-through returned wrong data")
	}
	c.Release(b)
	// Second get must hit.
	b2, _ := c.Get(3)
	c.Release(b2)
	hits, misses := c.HitRate()
	if hits != 1 || misses != 1 {
		t.Errorf("hit/miss = %d/%d, want 1/1", hits, misses)
	}
}

func TestBufferCacheEvictsCleanLRU(t *testing.T) {
	c, _, _ := newBC(t, 64, 8)
	for i := uint32(0); i < 20; i++ {
		b, err := c.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		c.Release(b)
	}
	if c.Len() > 8 {
		t.Errorf("cache holds %d buffers, max 8", c.Len())
	}
}

func TestBufferCacheDirtyNeverEvicted(t *testing.T) {
	c, _, _ := newBC(t, 64, 8)
	b, _ := c.Get(0)
	b.Data[0] = 0xEE
	c.MarkDirty(b)
	c.Release(b)
	for i := uint32(1); i < 30; i++ {
		x, _ := c.Get(i)
		c.Release(x)
	}
	b2, _ := c.Get(0)
	defer c.Release(b2)
	if b2.Data[0] != 0xEE {
		t.Error("dirty buffer was evicted and reread from disk")
	}
	if len(c.DirtyBlocks()) != 1 {
		t.Errorf("DirtyBlocks = %d, want 1", len(c.DirtyBlocks()))
	}
}

func TestBufferCachePinnedNotEvicted(t *testing.T) {
	c, dev, _ := newBC(t, 64, 8)
	fill(dev, 5, 0x55)
	pinned, _ := c.Get(5)
	for i := uint32(10); i < 40; i++ {
		x, _ := c.Get(i)
		c.Release(x)
	}
	// The pinned buffer must still be the same object.
	again, _ := c.Get(5)
	if again != pinned {
		t.Error("pinned buffer was evicted")
	}
	c.Release(again)
	c.Release(pinned)
}

func TestBufferCacheMarkCleanReturnsToLRU(t *testing.T) {
	c, _, _ := newBC(t, 64, 8)
	b, _ := c.Get(0)
	c.MarkDirty(b)
	c.Release(b)
	c.MarkClean(b)
	for i := uint32(1); i < 30; i++ {
		x, _ := c.Get(i)
		c.Release(x)
	}
	if c.Len() > 8 {
		t.Errorf("clean buffer not evictable: len=%d", c.Len())
	}
}

func TestBufferCacheInstall(t *testing.T) {
	c, dev, _ := newBC(t, 16, 8)
	fill(dev, 2, 0x22)
	data := make([]byte, disklayout.BlockSize)
	data[0] = 0x99
	c.Install(2, data, true)
	b, _ := c.Get(2)
	defer c.Release(b)
	if b.Data[0] != 0x99 {
		t.Error("Install did not override device contents")
	}
	if !b.dirty {
		t.Error("installed buffer is not dirty")
	}
	// Install adopts the slice: the cache serves exactly the bytes handed
	// over, with no second copy on this side of the isolation boundary.
	if &b.Data[0] != &data[0] {
		t.Error("Install copied instead of adopting the caller's buffer")
	}
}

// TestBufferCacheInstallAllocs pins the single-copy handoff contract: once
// the buffer exists, Install must not allocate — in particular it must not
// re-copy the block image, which would reintroduce the double deep-copy on
// the absorb path.
func TestBufferCacheInstallAllocs(t *testing.T) {
	c, _, _ := newBC(t, 16, 8)
	data := make([]byte, disklayout.BlockSize)
	c.Install(3, data, true)
	n := testing.AllocsPerRun(100, func() {
		c.Install(3, data, true)
	})
	if n >= 1 {
		t.Errorf("Install allocates %.1f objects per call, want 0", n)
	}
}

func TestBufferCacheGetZero(t *testing.T) {
	c, dev, _ := newBC(t, 16, 8)
	fill(dev, 7, 0x77)
	b := c.GetZero(7)
	defer c.Release(b)
	if b.Data[0] != 0 {
		t.Error("GetZero returned non-zero data")
	}
	if _, misses := c.HitRate(); misses != 0 {
		t.Error("GetZero read the device")
	}
}

func TestBufferCacheDrop(t *testing.T) {
	c, _, _ := newBC(t, 16, 8)
	b, _ := c.Get(1)
	c.MarkDirty(b)
	c.Release(b)
	c.Drop(1)
	if c.Len() != 0 {
		t.Error("Drop left the buffer cached")
	}
}

func TestBufferCacheReleaseUnpinnedPanics(t *testing.T) {
	c, _, _ := newBC(t, 16, 8)
	b, _ := c.Get(0)
	c.Release(b)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	c.Release(b)
}

func TestBufferCacheConcurrentGets(t *testing.T) {
	c, dev, _ := newBC(t, 128, 32)
	for i := uint32(0); i < 128; i++ {
		fill(dev, i, byte(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				blk := uint32((g*37 + i) % 128)
				b, err := c.Get(blk)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if b.Data[0] != byte(blk) {
					t.Errorf("block %d has wrong data %#x", blk, b.Data[0])
					c.Release(b)
					return
				}
				c.Release(b)
			}
		}(g)
	}
	wg.Wait()
}

func TestDentryCacheBasics(t *testing.T) {
	dc := NewDentryCache(100)
	if _, _, found := dc.Lookup(1, "a"); found {
		t.Error("empty cache reported a hit")
	}
	dc.Add(1, "a", 42)
	ino, neg, found := dc.Lookup(1, "a")
	if !found || neg || ino != 42 {
		t.Errorf("Lookup = (%d,%v,%v)", ino, neg, found)
	}
	dc.AddNegative(1, "ghost")
	_, neg, found = dc.Lookup(1, "ghost")
	if !found || !neg {
		t.Error("negative entry not cached")
	}
	dc.Invalidate(1, "a")
	if _, _, found := dc.Lookup(1, "a"); found {
		t.Error("Invalidate left the entry")
	}
}

func TestDentryCacheInvalidateDir(t *testing.T) {
	dc := NewDentryCache(100)
	dc.Add(1, "a", 2)
	dc.Add(1, "b", 3)
	dc.Add(9, "c", 4)
	dc.InvalidateDir(1)
	if _, _, found := dc.Lookup(1, "a"); found {
		t.Error("entry under invalidated dir survives")
	}
	if _, _, found := dc.Lookup(9, "c"); !found {
		t.Error("entry under other dir was dropped")
	}
}

func TestDentryCacheBoundAndPurge(t *testing.T) {
	dc := NewDentryCache(16)
	for i := 0; i < 100; i++ {
		dc.Add(1, string(rune('a'+i%26))+string(rune('0'+i/26)), uint32(i))
	}
	if dc.Len() > 16 {
		t.Errorf("cache exceeded bound: %d", dc.Len())
	}
	dc.Purge()
	if dc.Len() != 0 {
		t.Error("Purge left entries")
	}
}

func TestInodeCacheBasics(t *testing.T) {
	ic := NewInodeCache(100)
	if ic.Get(5) != nil {
		t.Error("empty cache returned an inode")
	}
	ci := &CachedInode{Ino: 5}
	got := ic.Put(ci)
	if got != ci {
		t.Error("Put returned a different object")
	}
	if ic.Get(5) != ci {
		t.Error("Get after Put missed")
	}
	// Concurrent double insert: first wins.
	ci2 := &CachedInode{Ino: 5}
	if got := ic.Put(ci2); got != ci {
		t.Error("second Put replaced the first inode")
	}
}

func TestInodeCacheEvictionSparesDirtyAndOpen(t *testing.T) {
	ic := NewInodeCache(16)
	dirty := &CachedInode{Ino: 1, Dirty: true}
	open := &CachedInode{Ino: 2, Opens: 1}
	ic.Put(dirty)
	ic.Put(open)
	for i := uint32(10); i < 100; i++ {
		ic.Put(&CachedInode{Ino: i})
	}
	if ic.Get(1) == nil {
		t.Error("dirty inode evicted")
	}
	if ic.Get(2) == nil {
		t.Error("open inode evicted")
	}
	if len(ic.DirtyInodes()) != 1 {
		t.Errorf("DirtyInodes = %d, want 1", len(ic.DirtyInodes()))
	}
}

func TestInodeCacheDropAndPurge(t *testing.T) {
	ic := NewInodeCache(16)
	ic.Put(&CachedInode{Ino: 3, Dirty: true})
	ic.Drop(3)
	if ic.Get(3) != nil {
		t.Error("Drop left the inode")
	}
	ic.Put(&CachedInode{Ino: 4, Dirty: true, Opens: 2})
	ic.Purge()
	if ic.Len() != 0 {
		t.Error("Purge left inodes (contained reboot must drop everything)")
	}
}

// TestDropWhilePinnedDoesNotResurrect is the regression test for the
// stale-buffer bug: releasing a pin on a buffer that was Drop-ped while
// pinned used to re-insert the stale *Buf into the clean LRU. The stale
// entry shared a block number with the live successor, so a later eviction
// could delete the successor from the cache map — silently losing a dirty
// buffer and its data.
func TestDropWhilePinnedDoesNotResurrect(t *testing.T) {
	c, _, _ := newBC(t, 256, 4)
	old, err := c.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	// Drop while the pin is still held (the truncate/free path does this
	// when another goroutine is mid-read).
	c.Drop(5)
	// The block is reallocated: a fresh buffer with dirty contents.
	fresh := c.GetZero(5)
	fresh.Data[0] = 0xD1
	c.MarkDirty(fresh)
	c.Release(fresh)
	// Releasing the stale pin must NOT put the dead buffer back in the LRU.
	c.Release(old)
	// Churn the cache hard enough to evict anything the release enqueued.
	for i := uint32(100); i < 120; i++ {
		b, err := c.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		c.Release(b)
	}
	got, err := c.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(got)
	if got != fresh || got.Data[0] != 0xD1 {
		t.Fatalf("live dirty buffer lost: got %p (data[0]=%#x), want %p", got, got.Data[0], fresh)
	}
	var dirty bool
	for _, b := range c.DirtyBlocks() {
		if b.Blk == 5 {
			dirty = true
		}
	}
	if !dirty {
		t.Error("block 5 vanished from the dirty set")
	}
}

// TestUnstableBufferNeverEvicted: a journaled-but-not-checkpointed buffer
// must stay out of the clean LRU — evicting it would let a later Get reread
// the stale home-location copy from disk.
func TestUnstableBufferNeverEvicted(t *testing.T) {
	c, dev, _ := newBC(t, 256, 4)
	fill(dev, 7, 0x00) // stale home copy
	b, err := c.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	b.Data[0] = 0x77
	c.MarkDirty(b)
	snaps := c.SnapshotDirty()
	if len(snaps) != 1 || snaps[0].Blk != 7 {
		t.Fatalf("snapshot = %+v", snaps)
	}
	c.MarkJournaled(b, snaps[0].Ver)
	c.Release(b)
	for i := uint32(100); i < 120; i++ {
		x, err := c.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		c.Release(x)
	}
	got, err := c.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(got)
	if got.Data[0] != 0x77 {
		t.Fatal("unstable buffer evicted; Get reread the stale home copy")
	}
	c.MarkStable(7)
}
