package cache

import (
	"sync"

	"repro/internal/disklayout"
	"repro/internal/telemetry"
)

// CachedInode is the in-memory, decoded form of an on-disk inode plus the
// runtime state the base filesystem tracks for it.
type CachedInode struct {
	// Mu serializes data-path operations on this inode; namespace operations
	// are serialized by the filesystem-wide lock instead.
	Mu sync.Mutex
	// Ino is the inode number.
	Ino uint32
	// Inode is the decoded on-disk record. Guarded by Mu for data fields and
	// by the filesystem lock for namespace fields.
	Inode disklayout.Inode
	// Dirty reports that Inode differs from the inode table block.
	Dirty bool
	// Opens counts open file descriptors referencing this inode; an inode
	// with Nlink==0 is deallocated when Opens drops to zero.
	Opens int
}

// InodeCache caches decoded inodes by number. Clean, unopened inodes are
// evicted wholesale at the bound; dirty or open inodes are pinned by
// definition.
type InodeCache struct {
	mu     sync.Mutex
	inodes map[uint32]*CachedInode
	max    int
	hits   int64
	misses int64

	telHits, telMisses *telemetry.Counter
}

// SetTelemetry installs hit/miss counters ("cache.inode.*") from s.
func (c *InodeCache) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.telHits = s.Counter("cache.inode.hits")
	c.telMisses = s.Counter("cache.inode.misses")
}

// NewInodeCache creates an inode cache bounded at roughly max clean entries.
func NewInodeCache(max int) *InodeCache {
	if max < 16 {
		max = 16
	}
	return &InodeCache{inodes: make(map[uint32]*CachedInode), max: max}
}

// Get returns the cached inode or nil on a miss. The caller loads misses
// from the buffer cache and inserts with Put.
func (c *InodeCache) Get(ino uint32) *CachedInode {
	c.mu.Lock()
	defer c.mu.Unlock()
	ci := c.inodes[ino]
	if ci != nil {
		c.hits++
		c.telHits.Inc()
	} else {
		c.misses++
		c.telMisses.Inc()
	}
	return ci
}

// Put inserts a decoded inode, returning the winner if another goroutine
// inserted the same number concurrently.
func (c *InodeCache) Put(ci *CachedInode) *CachedInode {
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.inodes[ci.Ino]; ok {
		return existing
	}
	if len(c.inodes) >= c.max {
		c.evictLocked()
	}
	c.inodes[ci.Ino] = ci
	return ci
}

func (c *InodeCache) evictLocked() {
	for ino, ci := range c.inodes {
		if !ci.Dirty && ci.Opens == 0 {
			delete(c.inodes, ino)
			if len(c.inodes) < c.max {
				return
			}
		}
	}
}

// Drop removes an inode from the cache (deallocation).
func (c *InodeCache) Drop(ino uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.inodes, ino)
}

// DirtyInodes returns all dirty cached inodes for the sync path.
func (c *InodeCache) DirtyInodes() []*CachedInode {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*CachedInode
	for _, ci := range c.inodes {
		if ci.Dirty {
			out = append(out, ci)
		}
	}
	return out
}

// Purge empties the cache (contained reboot). Open and dirty inodes are
// dropped too: after an error nothing in memory is trusted.
func (c *InodeCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inodes = make(map[uint32]*CachedInode)
}

// Len returns the number of cached inodes.
func (c *InodeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inodes)
}

// HitRate returns hits and misses since creation.
func (c *InodeCache) HitRate() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
