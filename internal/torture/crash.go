package torture

import (
	"fmt"
	"sync"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fsck"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
)

// writeRec is one recorded block write during the crash window: the block
// number and the post-write content read back synchronously (the base runs a
// single queue worker during enumeration, so read-back is exact).
type writeRec struct {
	blk  uint32
	data []byte
}

// fileExpect is what a durability boundary promises about one file.
type fileExpect struct {
	size int64
	hash uint32
}

// durBoundary is a point in the write log after which a set of files is
// guaranteed durable: the prelude sync (at=0), each completed window fsync
// or sync, and the final sync. Every crash image containing at least `at`
// window writes must present every file in `files` intact.
type durBoundary struct {
	at    int
	label string
	files map[string]fileExpect
}

// filesOf extracts the regular files from a model state dump.
func filesOf(state map[string]difftest.Entry) map[string]fileExpect {
	out := make(map[string]fileExpect)
	for p, e := range state {
		if e.Type == disklayout.TypeFile {
			out[p] = fileExpect{size: e.Size, hash: e.Hash}
		}
	}
	return out
}

// strictFiles returns the regular files in state that the touched predicate
// reaches neither by path nor by inode — the set a durability boundary may
// hold the recovered image to. The inode pass matters for hardlinks: a write
// through one name changes the content seen through every other name of the
// same inode, so a path-only exclusion would demand stability from a file
// the window legitimately mutated.
func strictFiles(state map[string]difftest.Entry, touched func(string) bool) map[string]fileExpect {
	aliased := make(map[uint32]bool)
	for p, e := range state {
		if e.Type == disklayout.TypeFile && touched(p) {
			aliased[e.Ino] = true
		}
	}
	out := make(map[string]fileExpect)
	for p, e := range state {
		if e.Type != disklayout.TypeFile || touched(p) || aliased[e.Ino] {
			continue
		}
		out[p] = fileExpect{size: e.Size, hash: e.Hash}
	}
	return out
}

// laterTouches reports whether any window op after index i mutates path.
func laterTouches(pl *plan, i int, path string) bool {
	for j := i + 1; j < len(pl.window); j++ {
		o := pl.window[j]
		switch o.Kind {
		case oplog.KMkdir, oplog.KRmdir, oplog.KCreate, oplog.KUnlink,
			oplog.KSymlink, oplog.KTruncate, oplog.KSetPerm:
			if o.Path == path {
				return true
			}
		case oplog.KRename, oplog.KLink:
			if o.Path == path || o.Path2 == path {
				return true
			}
		case oplog.KWrite:
			if p, ok := pl.windowFDPath(j, o.FD); ok && p == path {
				return true
			}
		}
	}
	return false
}

// runCrashEnum executes one unit's window on a recording device and checks
// every crash point, every torn point, and the no-fault oracle control.
func runCrashEnum(id caseID, pl *plan, sb *disklayout.Superblock) (unitResult, error) {
	var res unitResult
	fail := func(class Class, point int, kind, locus, detail string) {
		res.failures = append(res.failures, &Failure{
			Class: class, Profile: id.profile, Seed: id.seed, WinLen: id.winLen,
			Point: point, Kind: kind, Locus: normalizeLocus(locus), Detail: detail,
			Shape: shapeOf(pl.window), Prelude: pl.prelude, Window: pl.window,
		})
	}

	dev := blockdev.NewMem(devBlocks)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: devInodes, JournalBlocks: devJournal}); err != nil {
		return res, fmt.Errorf("format: %w", err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{QueueWorkers: 1, QueueDepth: 1})
	if err != nil {
		return res, fmt.Errorf("mount: %w", err)
	}
	mounted := true
	defer func() {
		if mounted {
			fs.Kill()
		}
	}()
	m := model.New(sb)

	// Prelude: both sides execute the same sequence; a divergence here means
	// the base disagrees with the model before any fault is injected, which
	// is an oracle-class finding on its own.
	for _, oracle := range pl.prelude {
		got := oracle.Clone()
		got.Errno, got.RetFD, got.RetIno, got.RetN, got.RetData = 0, 0, 0, 0, nil
		if err := safeOpApply(fs, got); err != nil {
			res.cases++
			fail(ClassOracle, 0, "checker-error", "prelude", err.Error())
			return res, nil
		}
		_ = oplog.Apply(m, mustClone(oracle))
		if d := difftest.CompareOutcome(got, oracle); len(d) > 0 {
			res.cases++
			fail(ClassOracle, 0, "outcome-divergence", "prelude/"+oracle.Kind.String(), d[0].String())
			return res, nil
		}
	}
	if err := syncBoth(fs, m); err != nil {
		res.cases++
		fail(ClassOracle, 0, "checker-error", "prelude-sync", err.Error())
		return res, nil
	}

	preludeState, err := difftest.DumpState(m)
	if err != nil {
		return res, fmt.Errorf("model dump: %w", err)
	}
	bounds := []durBoundary{{at: 0, label: "prelude-sync",
		files: strictFiles(preludeState, pl.isTouched)}}

	// Record every block write from here on: window ops, their fsyncs, the
	// final sync, and the unmount's checkpoint are all persistence points.
	base := dev.Snapshot()
	var (
		recMu sync.Mutex
		recs  []writeRec
	)
	dev.SetWriteHook(func(blk uint32) {
		data, rerr := dev.ReadBlock(blk)
		if rerr != nil {
			return
		}
		recMu.Lock()
		recs = append(recs, writeRec{blk: blk, data: data})
		recMu.Unlock()
	})
	recCount := func() int {
		recMu.Lock()
		defer recMu.Unlock()
		return len(recs)
	}

	// Window, with live outcome comparison and durability-boundary capture.
	var outcomeDisc []difftest.Discrepancy
	for i, oracle := range pl.window {
		got := oracle.Clone()
		got.Errno, got.RetFD, got.RetIno, got.RetN, got.RetData = 0, 0, 0, 0, nil
		if err := safeOpApply(fs, got); err != nil {
			res.cases++
			fail(ClassOracle, i, "checker-error", "window/"+oracle.Kind.String(), err.Error())
			return res, nil
		}
		_ = oplog.Apply(m, mustClone(oracle))
		outcomeDisc = append(outcomeDisc, difftest.CompareOutcome(got, oracle)...)

		laterTouched := func(p string) bool { return windowTouchesAfter(pl, i, p) }
		switch {
		case oracle.Kind == oplog.KFsync && oracle.Errno == 0:
			path, ok := pl.windowFDPath(i, oracle.FD)
			if !ok {
				break
			}
			st, err := difftest.DumpState(m)
			if err != nil {
				break
			}
			if fe, ok := strictFiles(st, laterTouched)[path]; ok {
				bounds = append(bounds, durBoundary{
					at:    recCount(),
					label: "fsync:" + path,
					files: map[string]fileExpect{path: fe},
				})
			}
		case oracle.Kind == oplog.KSync && oracle.Errno == 0:
			st, err := difftest.DumpState(m)
			if err != nil {
				break
			}
			bounds = append(bounds, durBoundary{at: recCount(), label: "window-sync",
				files: strictFiles(st, laterTouched)})
		}
	}

	// Final sync: after it completes, the whole model state is durable.
	if err := syncBoth(fs, m); err != nil {
		res.cases++
		fail(ClassOracle, len(pl.window), "checker-error", "final-sync", err.Error())
		return res, nil
	}
	finalModelState, err := difftest.DumpState(m)
	if err != nil {
		return res, fmt.Errorf("model dump: %w", err)
	}
	bounds = append(bounds, durBoundary{at: recCount(), label: "final-sync", files: filesOf(finalModelState)})

	// Oracle control case: the live post-window state must match the model.
	res.cases++
	if len(outcomeDisc) > 0 {
		fail(ClassOracle, 0, "outcome-divergence",
			outcomeDisc[0].Field, outcomeDisc[0].String())
	} else {
		liveState, err := difftest.DumpState(fs)
		if err != nil {
			fail(ClassOracle, 0, "checker-error", "live-walk", err.Error())
		} else if d := difftest.CompareStates(liveState, finalModelState); len(d) > 0 {
			fail(ClassOracle, 0, "state-divergence", d[0].Field, d[0].String())
		}
	}

	// Unmount is recorded too: its checkpoint writes are crash points.
	mounted = false
	if err := fs.Unmount(); err != nil {
		fail(ClassOracle, 0, "unmount-error", "unmount", err.Error())
	}
	dev.SetWriteHook(nil)

	// Enumerate crash and torn images. img carries base + recs[:k] as k
	// advances; each checked image is an isolated snapshot because recovery
	// mutates it.
	img := base
	for k := 1; k <= len(recs); k++ {
		rec := recs[k-1]

		// Torn point k: k-1 complete writes plus the first half of write k.
		res.cases++
		tornImg := img.Snapshot()
		prev, rerr := tornImg.ReadBlock(rec.blk)
		if rerr == nil {
			tornData := make([]byte, disklayout.BlockSize)
			copy(tornData, rec.data)
			copy(tornData[disklayout.BlockSize/2:], prev[disklayout.BlockSize/2:])
			if err := tornImg.WriteBlock(rec.blk, tornData); err == nil {
				if kind, locus, detail := checkImage(tornImg, bounds, k-1); kind != "" {
					fail(ClassTorn, k, kind, locus, detail)
				}
			}
		}

		// Crash point k: exactly k complete writes.
		if err := img.WriteBlock(rec.blk, rec.data); err != nil {
			return res, fmt.Errorf("replay write: %w", err)
		}
		res.cases++
		if kind, locus, detail := checkImage(img.Snapshot(), bounds, k); kind != "" {
			fail(ClassCrash, k, kind, locus, detail)
		}
	}
	return res, nil
}

// windowTouchesAfter reports whether any window op at index > i mutates path
// (directly or through an ancestor directory).
func windowTouchesAfter(pl *plan, i int, path string) bool {
	if laterTouches(pl, i, path) {
		return true
	}
	for j := i + 1; j < len(pl.window); j++ {
		o := pl.window[j]
		for _, p := range []string{o.Path, o.Path2} {
			if p != "" && len(path) > len(p) && path[:len(p)] == p && path[len(p)] == '/' {
				switch o.Kind {
				case oplog.KRename, oplog.KRmdir:
					return true
				}
			}
		}
	}
	return false
}

// checkImage verifies one crash image: journal recovery must succeed, fsck
// must come back clean, the image must mount, and every durability boundary
// at or before the crash point must hold. Returns ("", "", "") when the
// image passes.
func checkImage(img *blockdev.Mem, bounds []durBoundary, k int) (kind, locus, detail string) {
	if _, _, err := mkfs.Recover(img); err != nil {
		return "recover-error", "replay", err.Error()
	}
	rep := fsck.Check(img)
	if !rep.Clean() {
		p := firstCorrupt(rep)
		return "fsck", p.Where, p.String()
	}
	cfs, err := basefs.Mount(img, basefs.Options{QueueWorkers: 1, QueueDepth: 1})
	if err != nil {
		return "mount-error", "mount", err.Error()
	}
	defer cfs.Kill()
	for _, b := range bounds {
		if b.at > k {
			continue
		}
		for path, fe := range b.files {
			st, err := cfs.Stat(path)
			if err != nil {
				return "durability-loss", "missing",
					fmt.Sprintf("%s promised by %s: stat: %v", path, b.label, err)
			}
			if st.Size != fe.size {
				return "durability-loss", "size",
					fmt.Sprintf("%s promised by %s: size %d, want %d", path, b.label, st.Size, fe.size)
			}
			data, err := readAll(cfs, path, st.Size)
			if err != nil {
				return "durability-loss", "read",
					fmt.Sprintf("%s promised by %s: read: %v", path, b.label, err)
			}
			if disklayout.Checksum(data) != fe.hash {
				return "durability-corrupt", "content",
					fmt.Sprintf("%s promised by %s: content hash mismatch", path, b.label)
			}
		}
	}
	return "", "", ""
}

// firstCorrupt returns the first corruption-grade problem (or the first
// problem of any severity when none is corruption-grade).
func firstCorrupt(rep *fsck.Report) fsck.Problem {
	for _, p := range rep.Problems {
		if p.Severity == fsck.Corrupt {
			return p
		}
	}
	if len(rep.Problems) > 0 {
		return rep.Problems[0]
	}
	return fsck.Problem{Where: "image", What: "unclean report with no problems"}
}

// readAll reads a whole file through the public API.
func readAll(fs *basefs.FS, path string, size int64) ([]byte, error) {
	fd, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer fs.Close(fd)
	var out []byte
	for off := int64(0); off < size; off += 1 << 16 {
		chunk, err := fs.ReadAt(fd, off, 1<<16)
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			break
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// safeOpApply applies one op with panic containment, so a base-filesystem
// panic surfaces as a checker finding instead of killing the campaign.
func safeOpApply(fs fsapi.FS, op *oplog.Op) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("torture: panic applying %s: %v", op, p)
		}
	}()
	_ = oplog.Apply(fs, op)
	return nil
}

// mustClone clones an oracle op for model application (Apply mutates outcome
// fields; the plan's oracle copies must stay pristine).
func mustClone(o *oplog.Op) *oplog.Op {
	c := o.Clone()
	c.Errno, c.RetFD, c.RetIno, c.RetN, c.RetData = 0, 0, 0, 0, nil
	return c
}

// syncBoth issues a Sync through both the implementation and the model so
// their logical clocks stay aligned.
func syncBoth(fs fsapi.FS, m *model.Model) error {
	op := &oplog.Op{Kind: oplog.KSync}
	if err := safeOpApply(fs, op); err != nil {
		return err
	}
	if op.Errno != 0 {
		return fmt.Errorf("sync failed: errno %d", op.Errno)
	}
	_ = oplog.Apply(m, &oplog.Op{Kind: oplog.KSync})
	return nil
}
