package torture

import (
	"reflect"
	"testing"
	"time"
)

// TestReducedTierDeterministic is the CI smoke contract: two runs from the
// same seed produce the identical case count, failure count, and signature
// set — and on a healthy tree, zero open signatures.
func TestReducedTierDeterministic(t *testing.T) {
	a, err := Run(ReducedTier(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ReducedTier(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cases != b.Cases {
		t.Errorf("case count not deterministic: %d vs %d", a.Cases, b.Cases)
	}
	if a.Failures != b.Failures {
		t.Errorf("failure count not deterministic: %d vs %d", a.Failures, b.Failures)
	}
	if !reflect.DeepEqual(a.Signatures(), b.Signatures()) {
		t.Errorf("signatures not deterministic:\n%v\nvs\n%v", a.Signatures(), b.Signatures())
	}
	if a.Cases < 400 {
		t.Errorf("reduced tier ran only %d cases, want >= 400", a.Cases)
	}
	for _, f := range a.Unique {
		t.Errorf("open signature: %s — %s", f.Signature(), f.Detail)
	}
}

// TestReducedTierDifferentSeedsDiffer guards against the seed being ignored:
// different roots must derive different workloads (case counts may coincide,
// but the derived unit seeds must not).
func TestReducedTierDifferentSeedsDiffer(t *testing.T) {
	c1, c2 := ReducedTier(1), ReducedTier(2)
	c1.fill()
	c2.fill()
	u1 := unitsOf(c1)
	u2 := unitsOf(c2)
	if len(u1) == 0 || len(u2) == 0 {
		t.Fatal("no units")
	}
	same := true
	for i := range u1 {
		if u1[i].Seed != u2[i].Seed {
			same = false
			break
		}
	}
	if same {
		t.Error("unit seeds identical across different campaign seeds")
	}
}

// TestFullTierCaseFloor asserts the exhaustive tier's scale: at least 5,000
// checked cases from a single seed, with zero open signatures.
func TestFullTierCaseFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("full tier skipped in -short mode")
	}
	r, err := Run(FullTier(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cases < 5000 {
		t.Errorf("full tier ran %d cases, want >= 5000", r.Cases)
	}
	for _, f := range r.Unique {
		t.Errorf("open signature: %s — %s", f.Signature(), f.Detail)
	}
	t.Logf("full tier: %d cases in %s (%.0f cases/sec)", r.Cases, r.Elapsed, r.CasesPerSec)
}

// TestTimeBudgetTruncates: an absurdly small budget must stop dispatch and
// mark the result truncated rather than hanging or erroring.
func TestTimeBudgetTruncates(t *testing.T) {
	cfg := ReducedTier(1)
	cfg.TimeBudget = time.Nanosecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Truncated {
		t.Error("1ns budget did not truncate the run")
	}
}

// TestReproRoundTrip: a failure serializes to JSON and back without losing
// the fields that drive re-execution, and the version/class guards hold.
func TestReproRoundTrip(t *testing.T) {
	sb, err := geometry()
	if err != nil {
		t.Fatal(err)
	}
	prof := profileByName(t, "metaheavy")
	prelude, window := buildWorkload(prof, 12345, 2, sb)
	pl := newPlan(prelude, window, sb)
	f := &Failure{
		Class: ClassTorn, Profile: prof, Seed: 12345, WinLen: 2, Point: 7,
		Kind: "recover-error", Locus: "replay", Detail: "example",
		Shape: shapeOf(pl.window), Prelude: pl.prelude, Window: pl.window,
	}
	data, err := f.Repro().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r, err := UnmarshalRepro(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Class != "torn" || r.Kind != f.Kind || r.Locus != f.Locus ||
		r.Seed != f.Seed || r.Point != f.Point ||
		len(r.Prelude) != len(pl.prelude) || len(r.Window) != len(pl.window) {
		t.Errorf("round trip lost fields: %+v", r)
	}
	for i, o := range r.Window {
		if o.Kind != pl.window[i].Kind {
			t.Errorf("window op %d kind %v, want %v", i, o.Kind, pl.window[i].Kind)
		}
	}

	if _, err := UnmarshalRepro([]byte(`{"version":99,"class":"torn"}`)); err == nil {
		t.Error("version 99 accepted")
	}
	if _, err := UnmarshalRepro([]byte(`{"version":1,"class":"nosuch"}`)); err == nil {
		t.Error("unknown class accepted")
	}
}

// TestReproRunCleanOnHealthyTree: re-executing a well-formed repro against a
// tree without the bug returns nil — the property that makes a committed
// repro double as a regression test.
func TestReproRunCleanOnHealthyTree(t *testing.T) {
	sb, err := geometry()
	if err != nil {
		t.Fatal(err)
	}
	prof := profileByName(t, "soup")
	prelude, window := buildWorkload(prof, 999, 2, sb)
	pl := newPlan(prelude, window, sb)
	f := &Failure{
		Class: ClassTorn, Profile: prof, Seed: 999, WinLen: 2, Point: 3,
		Kind: "recover-error", Locus: "replay",
		Shape: shapeOf(pl.window), Prelude: pl.prelude, Window: pl.window,
	}
	data, err := f.Repro().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r, err := UnmarshalRepro(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("healthy tree reproduced: %s", got)
	}
}

// TestSignatureNormalization: loci with embedded numbers (inodes, block
// numbers, generated file names) dedup together.
func TestSignatureNormalization(t *testing.T) {
	if got := normalizeLocus("/dir3/mail123456"); got != "/dirN/mailN" {
		t.Errorf("normalizeLocus = %q", got)
	}
	if got := normalizeLocus(""); got != "?" {
		t.Errorf("empty locus = %q", got)
	}
	a := &Failure{Class: ClassCrash, Kind: "fsck", Locus: "inode N"}
	b := &Failure{Class: ClassCrash, Kind: "fsck", Locus: "inode N"}
	if !a.matches(b) {
		t.Error("equal identity does not match")
	}
	b.Class = ClassTorn
	if a.matches(b) {
		t.Error("different class matches")
	}
	if a.matches(nil) {
		t.Error("nil matches")
	}
}

// TestShrinkKeepsNonReproducing: a failure whose signature the healthy tree
// cannot reproduce must come back unchanged (never "shrunk" into a different
// bug), within budget.
func TestShrinkKeepsNonReproducing(t *testing.T) {
	sb, err := geometry()
	if err != nil {
		t.Fatal(err)
	}
	prof := profileByName(t, "metaheavy")
	prelude, window := buildWorkload(prof, 4242, 3, sb)
	pl := newPlan(prelude, window, sb)
	f := &Failure{
		Class: ClassCrash, Profile: prof, Seed: 4242, WinLen: 3, Point: 1,
		Kind: "fsck", Locus: "never-happens",
		Shape: shapeOf(pl.window), Prelude: pl.prelude, Window: pl.window,
	}
	got, attempts, removed := shrinkFailure(f, sb, 6)
	if got != f {
		t.Error("non-reproducing failure was replaced")
	}
	if removed != 0 {
		t.Errorf("removed %d ops from a non-reproducing failure", removed)
	}
	if attempts > 6 {
		t.Errorf("attempts %d exceeded budget 6", attempts)
	}
}
