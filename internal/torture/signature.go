package torture

import (
	"strings"

	"repro/internal/oplog"
)

// Signature is the dedup key: fault class, window op-kind shape, and the
// first finding's kind and normalized locus. Two cases that crash the same
// window shape into the same violated invariant at the same (normalized)
// place are the same bug for triage purposes.
func (f *Failure) Signature() string {
	return f.Class.String() + "|" + f.Shape + "|" + f.Kind + ":" + f.Locus
}

// matches reports whether a re-execution failure represents the same
// underlying bug as f. Shrinking changes the window shape on purpose, so
// only the class and the finding identity take part.
func (f *Failure) matches(g *Failure) bool {
	return g != nil && f.Class == g.Class && f.Kind == g.Kind && f.Locus == g.Locus
}

// shapeOf renders a window as its comma-joined op kinds.
func shapeOf(window []*oplog.Op) string {
	parts := make([]string, len(window))
	for i, o := range window {
		parts[i] = o.Kind.String()
	}
	return strings.Join(parts, ",")
}

// normalizeLocus makes loci stable across case instances: digit runs
// collapse to "N" (inode numbers, block numbers, sizes), path name suffixes
// collapse too ("/dir3/mail123456" and "/dir0/mail99" dedup together).
func normalizeLocus(s string) string {
	if s == "" {
		return "?"
	}
	var b strings.Builder
	inDigits := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			if !inDigits {
				b.WriteByte('N')
				inDigits = true
			}
			continue
		}
		inDigits = false
		b.WriteRune(r)
	}
	out := b.String()
	if len(out) > 96 {
		out = out[:96]
	}
	return out
}
