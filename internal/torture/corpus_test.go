package torture

// The regression corpus: every bug the campaign (or its ancestors) has
// surfaced, replayed through the campaign's own checkers. Each case failed
// on the tree that carried the bug; on a healthy tree each must come back
// clean. Reintroducing any of these bugs turns the corresponding case red
// without waiting for a full campaign run.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fsck"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// geometry returns the campaign's device geometry.
func geometry() (*disklayout.Superblock, error) {
	return disklayout.Geometry(devBlocks, devInodes, devJournal)
}

// profileByName resolves a workload profile for corpus entries pinned to the
// profile that originally surfaced a bug.
func profileByName(t *testing.T, name string) workload.Profile {
	t.Helper()
	for _, p := range workload.Profiles() {
		if p.String() == name {
			return p
		}
	}
	t.Fatalf("no workload profile %q", name)
	return 0
}

// reexecuteCorpus replays one corpus failure identity through the campaign
// executor and fails the test if the signature reproduces.
func reexecuteCorpus(t *testing.T, f *Failure) {
	t.Helper()
	sb, err := geometry()
	if err != nil {
		t.Fatal(err)
	}
	prelude, window := buildWorkload(f.Profile, f.Seed, f.WinLen, sb)
	got, err := reexecute(f, prelude, window, sb)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("corpus bug reproduced: %s", got)
	}
}

// TestCorpusTornSuperblock replays the campaign's first find: a torn write
// of block 0 (the primary superblock is rewritten in place at mount,
// unmount, and journal checkpoints) left the image unrecoverable — the
// geometry needed to even locate the journal lived in the block that was
// lost, so mkfs.Recover failed before replay could run. Every workload unit
// reproduced it at its unmount write. Fixed by the backup superblock in the
// image's last block (written before the primary, used as the recovery
// fallback, self-healed after replay).
func TestCorpusTornSuperblock(t *testing.T) {
	reexecuteCorpus(t, &Failure{
		Class:   ClassTorn,
		Profile: profileByName(t, "metaheavy"),
		Seed:    -743802814740804364,
		WinLen:  1,
		Kind:    "recover-error",
		Locus:   "replay",
	})
}

// TestCorpusDeferredSyncFaultLeak replays the campaign's second find: after
// a recovery triggered by a faulting fsync, the §3.3 deferred re-run applied
// the sync outside the detection envelope — withInjectionDisabled gates only
// the faultinject registry, not device-level faults — so a probabilistic
// write error during the re-run surfaced to the application as a bare EIO
// with Degradations == 0. Fixed by bounded re-attempts plus an explicit
// degradation when the device persistently refuses the sync.
func TestCorpusDeferredSyncFaultLeak(t *testing.T) {
	reexecuteCorpus(t, &Failure{
		Class:   ClassWriteErr,
		Profile: profileByName(t, "metaheavy"),
		Seed:    -743802814740804364,
		WinLen:  3,
		Point:   1,
		Kind:    "unmasked-fault",
		Locus:   "errno",
	})
}

// TestCorpusHardlinkAliasDurability pins the campaign checker's own fixed
// bug: the durability strict set excluded window-touched files by path only,
// so a window writing through one hardlink tripped false durability-loss
// findings on the other name of the same inode. The fix (strictFiles)
// excludes by inode identity; this unit — whose prelude hardlinks the file
// the window then writes through the alias — must enumerate clean.
func TestCorpusHardlinkAliasDurability(t *testing.T) {
	sb, err := geometry()
	if err != nil {
		t.Fatal(err)
	}
	prof := profileByName(t, "soup")
	seed := int64(-2197714035487822175)
	prelude, window := buildWorkload(prof, seed, 2, sb)
	pl := newPlan(prelude, window, sb)
	// Precondition: the unit still contains the hardlink aliasing that
	// triggered the false positive (a KLink in the prelude).
	hasLink := false
	for _, o := range pl.prelude {
		if o.Kind == oplog.KLink {
			hasLink = true
		}
	}
	if !hasLink {
		t.Skip("workload generator no longer emits a hardlink for this seed")
	}
	res, err := runCrashEnum(caseID{prof, seed, 2}, pl, sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.failures {
		t.Errorf("hardlink unit failed enumeration: %s", f)
	}
}

// TestCorpusStaleContentDetection replays the failure mode of PR 2's
// pinned-buffer resurrection (a dropped-while-pinned cache buffer re-entered
// the LRU and could serve or write back stale bytes) through the campaign's
// durability checker: silently stale file content in a recovered image must
// be caught as durability-corrupt by the content-hash check, since neither
// journal replay nor fsck can see it.
func TestCorpusStaleContentDetection(t *testing.T) {
	sb, err := geometry()
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.NewMem(devBlocks)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: devInodes, JournalBlocks: devJournal}); err != nil {
		t.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{QueueWorkers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := model.New(sb)
	payload := bytes.Repeat([]byte{0xAB}, 2*disklayout.BlockSize)
	ops := []*oplog.Op{
		{Kind: oplog.KCreate, Path: "/victim", Perm: 0o644},
		{Kind: oplog.KWrite, FD: 0, Off: 0, Data: payload},
		{Kind: oplog.KClose, FD: 0},
	}
	for _, o := range ops {
		if err := safeOpApply(fs, mustClone(o)); err != nil {
			t.Fatal(err)
		}
		_ = oplog.Apply(m, mustClone(o))
	}
	if err := syncBoth(fs, m); err != nil {
		t.Fatal(err)
	}
	state, err := difftest.DumpState(m)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []durBoundary{{at: 0, label: "prelude-sync",
		files: strictFiles(state, func(string) bool { return false })}}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}

	// The clean image passes.
	if kind, _, detail := checkImage(dev.Snapshot(), bounds, 0); kind != "" {
		t.Fatalf("clean image failed: %s: %s", kind, detail)
	}

	// Resurrect stale bytes into one of the file's data blocks, as the PR 2
	// cache bug could: the image stays structurally valid (journal empty,
	// fsck clean) but the content is silently wrong.
	stale := dev.Snapshot()
	found := false
	for blk := sb.DataStart; blk < sb.BackupBlk(); blk++ {
		b, err := stale.ReadBlock(blk)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] == 0xAB && b[disklayout.BlockSize-1] == 0xAB {
			staleData := bytes.Repeat([]byte{0xCD}, disklayout.BlockSize)
			if err := stale.WriteBlock(blk, staleData); err != nil {
				t.Fatal(err)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("could not locate the victim's data block")
	}
	kind, _, _ := checkImage(stale, bounds, 0)
	if kind != "durability-corrupt" {
		t.Errorf("stale content detected as %q, want durability-corrupt", kind)
	}
}

// TestCorpusBitmapReadFaultContained replays PR 5's loadBitmaps
// partial-read poisoning through the campaign's fsck stage: an unreadable
// block-bitmap block must degrade to a contained per-block finding, not
// poison the whole bitmap into zeros and cascade "in use but free in
// bitmap" corruption across every allocated block.
func TestCorpusBitmapReadFaultContained(t *testing.T) {
	sb, err := geometry()
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.NewMem(devBlocks)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: devInodes, JournalBlocks: devJournal}); err != nil {
		t.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{QueueWorkers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := model.New(sb)
	ops := []*oplog.Op{
		{Kind: oplog.KCreate, Path: "/a", Perm: 0o644},
		{Kind: oplog.KWrite, FD: 0, Off: 0, Data: bytes.Repeat([]byte{1}, disklayout.BlockSize)},
		{Kind: oplog.KClose, FD: 0},
	}
	for _, o := range ops {
		if err := safeOpApply(fs, mustClone(o)); err != nil {
			t.Fatal(err)
		}
		_ = oplog.Apply(m, mustClone(o))
	}
	if err := syncBoth(fs, m); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}

	plan := blockdev.NewFaultPlan(1)
	plan.ReadErrBlocks = map[uint32]bool{sb.BlockBitmapStart: true}
	dev.SetFaults(plan)
	rep := fsck.Check(dev)
	dev.SetFaults(nil)

	sawBitmapFinding := false
	for _, p := range rep.Problems {
		if strings.Contains(p.What, "unreadable") && strings.Contains(p.Where, "bitmap") {
			sawBitmapFinding = true
		}
		if strings.Contains(p.What, "free in bitmap") {
			t.Errorf("poisoning cascade finding: %s", p)
		}
	}
	if !sawBitmapFinding {
		t.Error("unreadable bitmap block produced no contained finding")
		for _, p := range rep.Problems {
			t.Logf("finding: %s", p)
		}
	}
}

// TestCorpusPipelinedRecoveryRace replays the environment of PR 5's
// prefetch re-pin race (a Prefetched view pinned blocks after Release)
// through the campaign's fault case shape, but with the pipelined recovery
// engine and its prefetch crew enabled — the configuration the sequential
// campaign tiers deliberately avoid. Run under -race in CI, the old bug
// trips the detector; on any tree the RAE contract must still hold.
func TestCorpusPipelinedRecoveryRace(t *testing.T) {
	sb, err := geometry()
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.NewMem(devBlocks)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: devInodes, JournalBlocks: devJournal}); err != nil {
		t.Fatal(err)
	}
	reg := faultinject.NewRegistry(7)
	fs, err := core.Mount(dev, core.Config{
		Base:                    basefs.Options{Injector: reg},
		FsckWorkers:             2,
		RecoveryPrefetchWorkers: 2,
		NoTelemetry:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := profileByName(t, "metaheavy")
	prelude, window := buildWorkload(prof, 31337, 3, sb)
	pl := newPlan(prelude, window, sb)
	for _, oracle := range pl.prelude {
		if err := safeOpApply(fs, mustClone(oracle)); err != nil {
			t.Fatal(err)
		}
	}
	if op := (&oplog.Op{Kind: oplog.KSync}); safeOpApply(fs, op) != nil || op.Errno != 0 {
		t.Fatal("prelude sync failed")
	}
	for round := 0; round < 3; round++ {
		reg.Arm(&faultinject.Specimen{
			ID:            "corpus-race",
			Class:         faultinject.Crash,
			Deterministic: true,
			MaxFires:      1,
			Op:            seamForWindow(pl.window),
		})
		for _, oracle := range pl.window {
			if err := safeOpApply(fs, mustClone(oracle)); err != nil {
				t.Fatal(err)
			}
		}
		reg.DisarmAll()
	}
	stats := fs.Stats()
	if stats.Recoveries == 0 {
		t.Error("no recovery was exercised")
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if rep := fsck.Check(dev); !rep.Clean() {
		t.Errorf("post-recovery image not clean: %s", firstCorrupt(rep).String())
	}
}
