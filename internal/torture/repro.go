package torture

import (
	"encoding/json"
	"fmt"

	"repro/internal/disklayout"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// Repro is a self-contained, replayable failure case: the exact prelude and
// (shrunk) window plus the fault class and point, serialized as JSON so a
// case found by one campaign run can be committed, shipped in a bug report,
// and re-executed byte-for-byte by `torture -repro`.
type Repro struct {
	Version int    `json:"version"`
	Class   string `json:"class"`
	Kind    string `json:"kind"`
	Locus   string `json:"locus"`
	Detail  string `json:"detail,omitempty"`
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
	Point   int    `json:"point"`
	Shape   string `json:"shape"`
	// Prelude and Window carry the operations verbatim (Data pages encode as
	// base64 through encoding/json).
	Prelude []*oplog.Op `json:"prelude"`
	Window  []*oplog.Op `json:"window"`
}

// reproVersion guards the on-disk format.
const reproVersion = 1

// Repro converts a failure into its replayable form.
func (f *Failure) Repro() *Repro {
	return &Repro{
		Version: reproVersion,
		Class:   f.Class.String(),
		Kind:    f.Kind,
		Locus:   f.Locus,
		Detail:  f.Detail,
		Profile: f.Profile.String(),
		Seed:    f.Seed,
		Point:   f.Point,
		Shape:   f.Shape,
		Prelude: f.Prelude,
		Window:  f.Window,
	}
}

// Marshal serializes the repro.
func (r *Repro) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// UnmarshalRepro parses a serialized repro.
func UnmarshalRepro(data []byte) (*Repro, error) {
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("torture: bad repro: %w", err)
	}
	if r.Version != reproVersion {
		return nil, fmt.Errorf("torture: repro version %d, want %d", r.Version, reproVersion)
	}
	if _, ok := classFromString(r.Class); !ok {
		return nil, fmt.Errorf("torture: repro has unknown class %q", r.Class)
	}
	return &r, nil
}

// Run re-executes the repro and returns the failure it reproduces, or nil
// when the tree no longer exhibits the bug (the expected outcome once the
// fix lands: a committed repro doubles as a regression test).
func (r *Repro) Run() (*Failure, error) {
	class, ok := classFromString(r.Class)
	if !ok {
		return nil, fmt.Errorf("torture: unknown class %q", r.Class)
	}
	var profile workload.Profile
	found := false
	for _, p := range workload.Profiles() {
		if p.String() == r.Profile {
			profile, found = p, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("torture: unknown profile %q", r.Profile)
	}
	sb, err := disklayout.Geometry(devBlocks, devInodes, devJournal)
	if err != nil {
		return nil, err
	}
	want := &Failure{Class: class, Kind: r.Kind, Locus: r.Locus,
		Profile: profile, Seed: r.Seed, WinLen: len(r.Window), Point: r.Point}
	return reexecute(want, r.Prelude, r.Window, sb)
}
