package torture

import (
	"repro/internal/disklayout"
	"repro/internal/oplog"
)

// shrinkFailure minimizes one failure's window to a smaller reproducer:
// greedy op removal to a fixpoint (ddmin-lite — windows are ≤3 ops, so
// single-op removal converges immediately), then write-payload truncation.
// Every candidate is validated by a full re-execution of the failure's
// class; a candidate counts only if it reproduces the same (class, kind,
// locus) signature. Returns the (possibly unchanged) failure, the number of
// executor runs spent, and the number of ops removed.
func shrinkFailure(f *Failure, sb *disklayout.Superblock, budget int) (*Failure, int, int) {
	attempts := 0
	best := f
	orig := len(f.Window)

	reproduces := func(window []*oplog.Op) *Failure {
		if attempts >= budget {
			return nil
		}
		attempts++
		g, err := reexecute(f, f.Prelude, window, sb)
		if err != nil || !f.matches(g) {
			return nil
		}
		return g
	}

	// Op removal to fixpoint.
	for {
		reduced := false
		for i := 0; i < len(best.Window) && len(best.Window) > 1; i++ {
			cand := make([]*oplog.Op, 0, len(best.Window)-1)
			cand = append(cand, best.Window[:i]...)
			cand = append(cand, best.Window[i+1:]...)
			if g := reproduces(cand); g != nil {
				best = g
				reduced = true
				break
			}
		}
		if !reduced {
			break
		}
	}

	// Payload truncation: halve write payloads while the failure holds.
	for i, o := range best.Window {
		for o.Kind == oplog.KWrite && len(o.Data) > 16 {
			cand := make([]*oplog.Op, len(best.Window))
			copy(cand, best.Window)
			trimmed := o.Clone()
			trimmed.Data = trimmed.Data[:len(trimmed.Data)/2]
			cand[i] = trimmed
			g := reproduces(cand)
			if g == nil {
				break
			}
			best = g
			o = best.Window[i]
		}
	}

	removed := orig - len(best.Window)
	if removed > 0 || attempts > 0 && best != f {
		best.Shrunk = best != f
		best.OrigOps = orig
	}
	return best, attempts, removed
}

// reexecute runs one failure's class against an explicit (prelude, window)
// pair and returns the first failure it produces, nil when the run is clean.
// Crash and torn classes re-enumerate every crash point of the candidate
// window (a reduced window moves the persistence points, so the original
// point index does not transfer); fault classes replay the exact salt.
func reexecute(f *Failure, prelude, window []*oplog.Op, sb *disklayout.Superblock) (*Failure, error) {
	pl := newPlan(prelude, window, sb)
	id := caseID{profile: f.Profile, seed: f.Seed, winLen: f.WinLen}
	switch f.Class {
	case ClassCrash, ClassTorn, ClassOracle:
		res, err := runCrashEnum(id, pl, sb)
		if err != nil {
			return nil, err
		}
		for _, g := range res.failures {
			if f.matches(g) {
				return g, nil
			}
		}
		return nil, nil
	default:
		return runFaultCase(id, pl, sb, f.Class, f.Point)
	}
}
