package torture

import (
	"errors"
	"fmt"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fsck"
	"repro/internal/fserr"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
)

// Fault-class probabilities: low enough that most cases see zero or one
// fault (isolating the supervisor's reaction), high enough that the matrix
// exercises every class thousands of times across a full tier.
const (
	faultReadErrProb  = 0.05
	faultWriteErrProb = 0.05
	faultTornProb     = 0.05
)

// seamName maps an op kind to its faultinject seam, "" when the kind has no
// seam in the base (close and fsync are supervised wholesale, not seamed).
func seamName(k oplog.Kind) string {
	switch k {
	case oplog.KMkdir:
		return "mkdir"
	case oplog.KRmdir:
		return "rmdir"
	case oplog.KCreate:
		return "create"
	case oplog.KOpen:
		return "open"
	case oplog.KWrite:
		return "writeat"
	case oplog.KTruncate:
		return "truncate"
	case oplog.KUnlink:
		return "unlink"
	case oplog.KRename:
		return "rename"
	case oplog.KLink:
		return "link"
	case oplog.KSymlink:
		return "symlink"
	case oplog.KSetPerm:
		return "setperm"
	case oplog.KSync:
		return "sync"
	}
	return ""
}

// seamForWindow returns the seam of the first window op that has one, "" if
// the window offers no crash site.
func seamForWindow(window []*oplog.Op) string {
	for _, o := range window {
		if s := seamName(o.Kind); s != "" {
			return s
		}
	}
	return ""
}

// runFaultCase executes one unit window under the live RAE supervisor with
// one fault class armed, then checks the supervisor's contract:
//
//   - No fault may surface to the application unless the supervisor degraded
//     to crash-restart (the documented escape hatch).
//   - Without degradation, outcomes and final state must match the model
//     exactly, fault or no fault.
//   - With or without degradation, files the prelude sync made durable (and
//     the window never touched) must survive, and the final on-disk image
//     must pass a full fsck.
//
// Returns nil when the case passes. Determinism: the supervisor runs with
// sequential recovery, single-worker queues and no prefetch, and the fault
// plan's seed derives from (unit seed, class, salt).
func runFaultCase(id caseID, pl *plan, sb *disklayout.Superblock, class Class, salt int) (*Failure, error) {
	fail := func(kind, locus, detail string) *Failure {
		return &Failure{
			Class: class, Profile: id.profile, Seed: id.seed, WinLen: id.winLen,
			Point: salt, Kind: kind, Locus: normalizeLocus(locus), Detail: detail,
			Shape: shapeOf(pl.window), Prelude: pl.prelude, Window: pl.window,
		}
	}

	dev := blockdev.NewMem(devBlocks)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: devInodes, JournalBlocks: devJournal}); err != nil {
		return nil, fmt.Errorf("format: %w", err)
	}
	var reg *faultinject.Registry
	if class == ClassInjectCrash {
		reg = faultinject.NewRegistry(deriveSeed(id.seed, int64(class), int64(salt)))
	}
	fs, err := core.Mount(dev, core.Config{
		Base: basefs.Options{
			QueueWorkers: 1,
			QueueDepth:   1,
			Injector:     reg,
		},
		SequentialRecovery:      true,
		FsckWorkers:             1,
		RecoveryPrefetchWorkers: -1,
		NoTelemetry:             true,
	})
	if err != nil {
		return nil, fmt.Errorf("core mount: %w", err)
	}
	mounted := true
	defer func() {
		if mounted {
			fs.Kill()
		}
	}()
	m := model.New(sb)

	// Prelude under no faults, then a durable point.
	for _, oracle := range pl.prelude {
		got := mustClone(oracle)
		if err := safeOpApply(fs, got); err != nil {
			return fail("checker-error", "prelude", err.Error()), nil
		}
		_ = oplog.Apply(m, mustClone(oracle))
	}
	if err := syncBoth(fs, m); err != nil {
		return fail("checker-error", "prelude-sync", err.Error()), nil
	}
	preludeState, err := difftest.DumpState(m)
	if err != nil {
		return nil, fmt.Errorf("model dump: %w", err)
	}
	strict := strictFiles(preludeState, pl.isTouched)

	// Arm the class.
	switch class {
	case ClassReadErr, ClassWriteErr, ClassTornFault:
		planSeed := deriveSeed(id.seed, int64(class), int64(salt))
		template := blockdev.NewFaultPlan(planSeed)
		switch class {
		case ClassReadErr:
			template.ReadErrProb = faultReadErrProb
		case ClassWriteErr:
			template.WriteErrProb = faultWriteErrProb
		case ClassTornFault:
			template.TornWriteProb = faultTornProb
		}
		dev.SetFaults(template.Fork(int64(salt)))
	case ClassInjectCrash:
		reg.Arm(&faultinject.Specimen{
			ID:            "torture-crash",
			Class:         faultinject.Crash,
			Deterministic: true,
			MaxFires:      1,
			Op:            seamForWindow(pl.window),
		})
	}

	// Window under fire.
	var unmasked, divergent *difftest.Discrepancy
	for _, oracle := range pl.window {
		got := mustClone(oracle)
		if err := safeOpApply(fs, got); err != nil {
			dev.SetFaults(nil)
			return fail("checker-error", "window/"+oracle.Kind.String(), err.Error()), nil
		}
		_ = oplog.Apply(m, mustClone(oracle))
		for _, d := range difftest.CompareOutcome(got, oracle) {
			d := d
			if fserr.IsFault(fserr.FromErrno(got.Errno)) && oracle.Errno == 0 {
				if unmasked == nil {
					unmasked = &d
				}
			} else if divergent == nil {
				divergent = &d
			}
		}
	}

	// Disarm, then force a durable point with the device healthy again.
	dev.SetFaults(nil)
	if reg != nil {
		reg.DisarmAll()
	}
	if err := syncBoth(fs, m); err != nil {
		return fail("checker-error", "final-sync", err.Error()), nil
	}

	stats := fs.Stats()
	degraded := stats.Degradations > 0

	// Contract 1: faults never reach the app unless the supervisor degraded.
	if !degraded && unmasked != nil {
		return fail("unmasked-fault", unmasked.Field, unmasked.String()), nil
	}
	if !degraded && divergent != nil {
		return fail("outcome-divergence", divergent.Field, divergent.String()), nil
	}

	// Contract 2: without degradation, the surviving state matches the
	// model. (Degradation legally discards un-synced operations and open
	// descriptors, so the model comparison does not apply.)
	if !degraded {
		finalModelState, err := difftest.DumpState(m)
		if err != nil {
			return nil, fmt.Errorf("model dump: %w", err)
		}
		liveState, err := difftest.DumpState(fs)
		if err != nil {
			var pe *difftest.PanicError
			if errors.As(err, &pe) || errors.Is(err, difftest.ErrWalkLimit) {
				return fail("checker-error", "live-walk", err.Error()), nil
			}
			return fail("state-divergence", "walk", err.Error()), nil
		}
		if d := difftest.CompareStates(liveState, finalModelState); len(d) > 0 {
			return fail("state-divergence", d[0].Field, d[0].String()), nil
		}
	} else {
		// Contract 3: even a degraded supervisor must preserve everything
		// the prelude sync promised for files the window never touched.
		for path, fe := range strict {
			st, err := fs.Stat(path)
			if err != nil {
				return fail("durability-loss", "missing",
					fmt.Sprintf("%s after degradation: stat: %v", path, err)), nil
			}
			if st.Size != fe.size {
				return fail("durability-loss", "size",
					fmt.Sprintf("%s after degradation: size %d, want %d", path, st.Size, fe.size)), nil
			}
		}
	}

	// Contract 4: the final image is structurally sound.
	mounted = false
	if err := fs.Unmount(); err != nil {
		return fail("unmount-error", "unmount", err.Error()), nil
	}
	if rep := fsck.Check(dev); !rep.Clean() {
		p := firstCorrupt(rep)
		return fail("post-fault-corrupt", p.Where, p.String()), nil
	}
	return nil, nil
}
