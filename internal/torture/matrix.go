package torture

import (
	"strings"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/model"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// Campaign device geometry: small enough that fsck-per-crash-point is cheap,
// large enough that no bounded workload hits ENOSPC by accident. The same
// geometry parameterizes the workload generator's internal model, the
// campaign's oracle model, and the formatted device, so outcome comparison is
// exact.
const (
	devBlocks  = 1024
	devInodes  = 128
	devJournal = 32
	// preludeOps targets the number of setup operations generated before the
	// window: enough churn that window ops act on real state (open
	// descriptors, populated directories, a prior durable point).
	preludeOps = 12
)

// Unit is one workload execution: a (profile, derived seed, window length)
// triple. A unit expands into many checked cases — every crash point, every
// torn point, the oracle control, and every fault-class run.
type Unit struct {
	Profile workload.Profile
	SeedIdx int
	Seed    int64
	WinLen  int
}

// unitResult carries a unit's case count and failures back to the driver.
type unitResult struct {
	cases    int
	failures []*Failure
}

// mix64 is the SplitMix64 finalizer, the same derivation blockdev.FaultPlan
// uses, so all campaign seeds are well-separated functions of (Seed, salt).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func deriveSeed(root int64, salts ...int64) int64 {
	x := uint64(root)
	for _, s := range salts {
		x = mix64(x ^ mix64(uint64(s)))
	}
	return int64(x)
}

// unitsOf enumerates the campaign matrix in deterministic order.
func unitsOf(cfg Config) []Unit {
	var us []Unit
	for _, p := range cfg.Profiles {
		for si := 0; si < cfg.SeedsPerProfile; si++ {
			for _, wl := range cfg.WinLens {
				us = append(us, Unit{
					Profile: p,
					SeedIdx: si,
					Seed:    deriveSeed(cfg.Seed, int64(p), int64(si)),
					WinLen:  wl,
				})
			}
		}
	}
	return us
}

// buildWorkload generates the unit's trace and splits it into a prelude
// (synced before the window) and the bounded window under test. The
// generator may overshoot its op target by a couple of ops (profile steps
// emit small clusters); the window is always the trace's tail.
func buildWorkload(p workload.Profile, seed int64, winLen int, sb *disklayout.Superblock) (prelude, window []*oplog.Op) {
	trace := workload.Generate(workload.Config{
		Profile:    p,
		Seed:       seed,
		NumOps:     preludeOps + winLen,
		Superblock: sb,
	})
	if len(trace) <= winLen {
		return nil, trace
	}
	return trace[:len(trace)-winLen], trace[len(trace)-winLen:]
}

// plan is the precomputed oracle view of a unit: outcome-filled clones of
// the ops (from a fresh model, so shrunk windows re-derive consistent
// outcomes), the descriptor→path map at the window boundary, and the set of
// paths the window touches (used to scope durability checks to files whose
// content is provably stable).
type plan struct {
	prelude []*oplog.Op
	window  []*oplog.Op
	// fdPath maps descriptors open at the start of the window to paths.
	fdPath map[fsapi.FD]string
	// touched holds every path a window op may mutate (exact paths; a
	// directory entry covers its whole subtree via isTouched).
	touched map[string]bool
}

// newPlan clones the ops, replays them through a scratch model to fill
// oracle outcomes, and computes the touched set. The caller's ops are never
// mutated.
func newPlan(prelude, window []*oplog.Op, sb *disklayout.Superblock) *plan {
	pl := &plan{
		fdPath:  make(map[fsapi.FD]string),
		touched: make(map[string]bool),
	}
	m := model.New(sb)
	clone := func(ops []*oplog.Op) []*oplog.Op {
		out := make([]*oplog.Op, len(ops))
		for i, o := range ops {
			c := o.Clone()
			c.Errno, c.RetFD, c.RetIno, c.RetN, c.RetData = 0, 0, 0, 0, nil
			_ = oplog.Apply(m, c)
			out[i] = c
		}
		return out
	}
	pl.prelude = clone(prelude)
	// Track descriptors through the prelude so window FD references resolve.
	fd := pl.fdPath
	track := func(o *oplog.Op) {
		if o.Errno != 0 {
			return
		}
		switch o.Kind {
		case oplog.KCreate, oplog.KOpen:
			fd[o.RetFD] = o.Path
		case oplog.KClose:
			delete(fd, o.FD)
		case oplog.KRename:
			for d, p := range fd {
				if p == o.Path || strings.HasPrefix(p, o.Path+"/") {
					fd[d] = o.Path2 + strings.TrimPrefix(p, o.Path)
				}
			}
		}
	}
	for _, o := range pl.prelude {
		track(o)
	}
	// The window: fill outcomes, then compute what it may touch. Window fd
	// tracking continues so a window [open, write] resolves its own fd.
	pl.window = clone(window)
	for _, o := range pl.window {
		switch o.Kind {
		case oplog.KMkdir, oplog.KRmdir, oplog.KCreate, oplog.KUnlink,
			oplog.KSymlink, oplog.KTruncate, oplog.KSetPerm:
			pl.touched[o.Path] = true
		case oplog.KRename:
			pl.touched[o.Path] = true
			pl.touched[o.Path2] = true
		case oplog.KLink:
			pl.touched[o.Path] = true
			pl.touched[o.Path2] = true
		case oplog.KWrite:
			if p, ok := fd[o.FD]; ok {
				pl.touched[p] = true
			}
		}
		track(o)
	}
	return pl
}

// isTouched reports whether the window may have mutated path (directly, or
// via an ancestor directory it renamed or removed).
func (pl *plan) isTouched(path string) bool {
	if pl.touched[path] {
		return true
	}
	for t := range pl.touched {
		if strings.HasPrefix(path, t+"/") {
			return true
		}
	}
	return false
}

// windowFDPath resolves a window op's descriptor to a path using the
// boundary fd table (descriptors the window itself opens resolve through the
// plan's tracking at construction; this helper is for fsync boundaries,
// whose descriptors are open at the op's position by definition).
func (pl *plan) windowFDPath(upTo int, target fsapi.FD) (string, bool) {
	fd := make(map[fsapi.FD]string, len(pl.fdPath))
	for k, v := range pl.fdPath {
		fd[k] = v
	}
	for i := 0; i < upTo && i < len(pl.window); i++ {
		o := pl.window[i]
		if o.Errno != 0 {
			continue
		}
		switch o.Kind {
		case oplog.KCreate, oplog.KOpen:
			fd[o.RetFD] = o.Path
		case oplog.KClose:
			delete(fd, o.FD)
		case oplog.KRename:
			for d, p := range fd {
				if p == o.Path || strings.HasPrefix(p, o.Path+"/") {
					fd[d] = o.Path2 + strings.TrimPrefix(p, o.Path)
				}
			}
		}
	}
	p, ok := fd[target]
	return p, ok
}

// runUnit executes every case class for one unit.
func runUnit(u Unit, sb *disklayout.Superblock, cfg Config) (unitResult, error) {
	prelude, window := buildWorkload(u.Profile, u.Seed, u.WinLen, sb)
	pl := newPlan(prelude, window, sb)

	var res unitResult
	crash, err := runCrashEnum(caseID{u.Profile, u.Seed, u.WinLen}, pl, sb)
	if err != nil {
		return res, err
	}
	res.cases += crash.cases
	res.failures = append(res.failures, crash.failures...)

	for _, cl := range []Class{ClassReadErr, ClassWriteErr, ClassTornFault} {
		for salt := 0; salt < cfg.FaultSalts; salt++ {
			fr, err := runFaultCase(caseID{u.Profile, u.Seed, u.WinLen}, pl, sb, cl, salt)
			if err != nil {
				return res, err
			}
			res.cases++
			if fr != nil {
				res.failures = append(res.failures, fr)
			}
		}
	}
	if seamForWindow(pl.window) != "" {
		fr, err := runFaultCase(caseID{u.Profile, u.Seed, u.WinLen}, pl, sb, ClassInjectCrash, 0)
		if err != nil {
			return res, err
		}
		res.cases++
		if fr != nil {
			res.failures = append(res.failures, fr)
		}
	}
	return res, nil
}

// caseID carries the identity fields every Failure gets stamped with.
type caseID struct {
	profile workload.Profile
	seed    int64
	winLen  int
}
