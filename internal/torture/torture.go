// Package torture implements the bounded black-box crash+fault campaign:
// the systematic confidence engine behind the paper's central claim that
// shadow-filesystem RAE masks runtime errors with no app-visible failures.
//
// Following CrashMonkey/B3 (Mohan et al.), the campaign exhaustively
// exercises *small* workloads — windows of at most three operations drawn
// from the workload generator's profiles, on top of a synced prelude — and
// checks every one of:
//
//   - Crash points: the device is snapshotted after every single block write
//     in the window (mid data write-back, mid journal append, between commit
//     and checkpoint, mid checkpoint, mid unmount), each snapshot is
//     journal-recovered, fsck'd, mounted, and checked for durability of
//     everything a completed sync or fsync promised.
//   - Torn points: the same enumeration with the final write torn (first
//     half new, second half stale), modeling a torn sector at power cut.
//   - Device fault classes: probabilistic read errors, write errors, and
//     silent torn writes injected under the live RAE supervisor, which must
//     mask them (or degrade to crash-restart — never corrupt).
//   - Injected code crashes: a deterministic faultinject specimen planted on
//     a window operation's seam, contained and recovered by the supervisor.
//
// Every recovered or surviving state is checked against the executable
// specification model through the difftest oracle plus a full fsck pass.
// Failures are deduped by signature (fault class + window shape + first
// finding kind and locus), shrunk to a minimal reproducer by greedy op
// removal and payload truncation, and emitted as replayable cases.
//
// The campaign is deterministic from one seed: workload seeds and fault-plan
// seeds derive via SplitMix64, the base filesystem runs with a single queue
// worker so write order is fixed, and recovery runs sequentially — so the
// case count, every case's content, and every failure are reproducible,
// which is what lets CI assert an exact case count and lets a shrunk
// reproducer stay a faithful regression test.
package torture

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/disklayout"
	"repro/internal/oplog"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Class enumerates the campaign's fault classes.
type Class int

// Fault classes.
const (
	// ClassCrash is a clean power cut after the k-th block write.
	ClassCrash Class = iota
	// ClassTorn is a power cut whose final write is torn mid-block.
	ClassTorn
	// ClassOracle is the no-fault control: the live post-window state must
	// match the executable specification exactly.
	ClassOracle
	// ClassReadErr injects probabilistic device read errors under RAE.
	ClassReadErr
	// ClassWriteErr injects probabilistic device write errors under RAE.
	ClassWriteErr
	// ClassTornFault injects probabilistic silent torn writes under RAE.
	ClassTornFault
	// ClassInjectCrash plants a deterministic faultinject crash on a window
	// operation's seam under RAE.
	ClassInjectCrash
)

// String names the class in signatures and reports.
func (c Class) String() string {
	switch c {
	case ClassCrash:
		return "crash"
	case ClassTorn:
		return "torn"
	case ClassOracle:
		return "oracle"
	case ClassReadErr:
		return "readerr"
	case ClassWriteErr:
		return "writeerr"
	case ClassTornFault:
		return "tornfault"
	case ClassInjectCrash:
		return "injectcrash"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// classFromString inverts String for repro files.
func classFromString(s string) (Class, bool) {
	for c := ClassCrash; c <= ClassInjectCrash; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// Config parameterizes a campaign run.
type Config struct {
	// Seed drives everything: workload seeds, fault-plan seeds, specimen
	// registries. Equal configs produce equal case counts and equal failures.
	Seed int64
	// SeedsPerProfile is the number of derived workload seeds per profile.
	SeedsPerProfile int
	// WinLens lists the window lengths to enumerate (default 1, 2, 3; B3's
	// bound is ≤3 ops).
	WinLens []int
	// Profiles lists the workload profiles to draw from (default all four).
	Profiles []workload.Profile
	// FaultSalts is the number of derived fault-plan seeds per probabilistic
	// fault class per workload (default 2).
	FaultSalts int
	// Parallelism bounds concurrently executing workload units (default 8).
	// Every unit runs on its own isolated in-memory device, so units never
	// share mutable state.
	Parallelism int
	// Shrink enables minimization of one representative per unique failure
	// signature (default on in both tiers; disable for raw triage speed).
	Shrink bool
	// ShrinkBudget bounds executor re-runs per shrink (default 48).
	ShrinkBudget int
	// TimeBudget, when positive, stops dispatching new units once exceeded.
	// A truncated run sets Result.Truncated; CI tiers are sized to finish
	// far inside their budget so the deterministic case count holds.
	TimeBudget time.Duration
	// Telemetry receives torture.* counters; nil uses telemetry.Default().
	Telemetry *telemetry.Sink
}

func (c *Config) fill() {
	if c.SeedsPerProfile <= 0 {
		c.SeedsPerProfile = 4
	}
	if len(c.WinLens) == 0 {
		c.WinLens = []int{1, 2, 3}
	}
	if len(c.Profiles) == 0 {
		c.Profiles = workload.Profiles()
	}
	if c.FaultSalts <= 0 {
		c.FaultSalts = 2
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 8
	}
	if c.ShrinkBudget <= 0 {
		c.ShrinkBudget = 48
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.Default()
	}
}

// FullTier is the exhaustive campaign: every profile, many seeds, every
// window length — ≥5,000 cases from one seed.
func FullTier(seed int64) Config {
	return Config{Seed: seed, SeedsPerProfile: 12, Shrink: true}
}

// ReducedTier is the seeded CI smoke: one seed per profile, all window
// lengths, small fault sampling. It finishes in seconds and its case count
// is asserted exactly in CI.
func ReducedTier(seed int64) Config {
	return Config{Seed: seed, SeedsPerProfile: 1, FaultSalts: 1, Shrink: true}
}

// Failure is one checked case that violated an invariant.
type Failure struct {
	// Class, Profile, Seed, WinLen, Point identify the case: Point is the
	// crash index (1-based block-write count) for crash/torn classes and the
	// fault salt for fault classes.
	Class   Class
	Profile workload.Profile
	Seed    int64
	WinLen  int
	Point   int
	// Kind is the violated invariant ("fsck", "durability-loss",
	// "state-divergence", ...) and Locus its normalized location.
	Kind  string
	Locus string
	// Detail is the human-readable finding.
	Detail string
	// Shape is the comma-joined window op kinds, part of the signature.
	Shape string
	// Prelude and Window are the ops that reproduce the failure (Window
	// possibly shrunk below WinLen).
	Prelude []*oplog.Op
	Window  []*oplog.Op
	// Shrunk marks a minimized reproducer; OrigOps is the window length
	// before shrinking.
	Shrunk  bool
	OrigOps int
}

// String formats the failure for reports.
func (f *Failure) String() string {
	return fmt.Sprintf("[%s] %s seed=%d win=%d point=%d %s:%s — %s",
		f.Class, f.Profile, f.Seed, len(f.Window), f.Point, f.Kind, f.Locus, f.Detail)
}

// Result summarizes a campaign run.
type Result struct {
	// Cases is the number of checked cases (crash images, torn images,
	// oracle controls, fault runs).
	Cases int
	// Failures is the raw failure count before dedup.
	Failures int
	// Dedup is how many raw failures were collapsed as duplicates.
	Dedup int
	// Unique holds one (shrunk) representative per unique signature, in
	// deterministic unit order.
	Unique []*Failure
	// Elapsed and CasesPerSec describe throughput.
	Elapsed     time.Duration
	CasesPerSec float64
	// ShrinkAttempts counts executor re-runs spent shrinking and
	// ShrinkRemovedOps the window ops eliminated across all signatures.
	ShrinkAttempts   int
	ShrinkRemovedOps int
	// Truncated is set when TimeBudget stopped the run early; a truncated
	// case count is not comparable across runs.
	Truncated bool
}

// Signatures returns the sorted unique failure signatures.
func (r *Result) Signatures() []string {
	out := make([]string, len(r.Unique))
	for i, f := range r.Unique {
		out[i] = f.Signature()
	}
	sort.Strings(out)
	return out
}

// Run executes the campaign and returns its result. The only error paths are
// operational (a unit that cannot even format its device); invariant
// violations come back as Failures, and a case that poisons the checker
// itself (difftest typed errors) is recorded as a "checker-error" failure
// rather than aborting the run.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	sb, err := disklayout.Geometry(devBlocks, devInodes, devJournal)
	if err != nil {
		return nil, fmt.Errorf("torture: geometry: %w", err)
	}
	us := unitsOf(cfg)
	start := time.Now()

	type unitOut struct {
		res unitResult
		err error
	}
	outs := make([]unitOut, len(us))
	var (
		wg        sync.WaitGroup
		truncated bool
		truncMu   sync.Mutex
	)
	sem := make(chan struct{}, cfg.Parallelism)
	for i := range us {
		if cfg.TimeBudget > 0 && time.Since(start) > cfg.TimeBudget {
			truncMu.Lock()
			truncated = true
			truncMu.Unlock()
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := runUnit(us[i], sb, cfg)
			outs[i] = unitOut{res, err}
		}(i)
	}
	wg.Wait()

	r := &Result{Truncated: truncated}
	dedup := make(map[string]*Failure)
	for i := range us {
		if outs[i].err != nil {
			return nil, fmt.Errorf("torture: unit %s/s%d/w%d: %w",
				us[i].Profile, us[i].SeedIdx, us[i].WinLen, outs[i].err)
		}
		r.Cases += outs[i].res.cases
		for _, f := range outs[i].res.failures {
			r.Failures++
			sig := f.Signature()
			if _, ok := dedup[sig]; ok {
				r.Dedup++
				continue
			}
			dedup[sig] = f
			r.Unique = append(r.Unique, f)
		}
	}

	if cfg.Shrink {
		for i, f := range r.Unique {
			shrunk, attempts, removed := shrinkFailure(f, sb, cfg.ShrinkBudget)
			r.ShrinkAttempts += attempts
			r.ShrinkRemovedOps += removed
			r.Unique[i] = shrunk
		}
		// Shrinking shortens windows, so two signatures that differed only
		// in window shape can converge on the same minimal reproducer;
		// re-dedup so one root cause stays one line.
		reseen := make(map[string]bool)
		kept := r.Unique[:0]
		for _, f := range r.Unique {
			sig := f.Signature()
			if reseen[sig] {
				r.Dedup++
				continue
			}
			reseen[sig] = true
			kept = append(kept, f)
		}
		r.Unique = kept
	}

	r.Elapsed = time.Since(start)
	if secs := r.Elapsed.Seconds(); secs > 0 {
		r.CasesPerSec = float64(r.Cases) / secs
	}
	tel := cfg.Telemetry
	tel.Counter("torture.cases").Add(int64(r.Cases))
	tel.Counter("torture.failures").Add(int64(r.Failures))
	tel.Counter("torture.dedup").Add(int64(r.Dedup))
	tel.Counter("torture.shrink.attempts").Add(int64(r.ShrinkAttempts))
	tel.Counter("torture.shrink.removed_ops").Add(int64(r.ShrinkRemovedOps))
	for _, f := range r.Unique {
		tel.Event("torture.signature", "%s", f.Signature())
	}
	return r, nil
}
