package vfs

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"testing"
	"testing/fstest"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/shadowfs"
	"repro/internal/telemetry"
)

// seedContent is the file set every implementation is seeded with. The deep
// file spans several blocks so chunked reads are exercised.
var seedContent = map[string][]byte{
	"/hello.txt":      []byte("hello, world\n"),
	"/empty":          nil,
	"/a/b/deep.bin":   bytes.Repeat([]byte("0123456789abcdef"), 500),
	"/docs/readme.md": []byte("# readme\n"),
}

// seedExpected is what fstest.TestFS must find, in io/fs names.
var seedExpected = []string{
	"a", "a/b", "a/b/deep.bin", "docs", "docs/readme.md",
	"empty", "hello.link", "hello.txt",
}

// seedTree populates ifs through the raw fsapi surface so the same tree
// exists regardless of which implementation is underneath.
func seedTree(t *testing.T, ifs fsapi.FS) {
	t.Helper()
	for _, dir := range []string{"/a", "/a/b", "/docs"} {
		if err := ifs.Mkdir(dir, 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", dir, err)
		}
	}
	for _, p := range []string{"/hello.txt", "/empty", "/a/b/deep.bin", "/docs/readme.md"} {
		fd, err := ifs.Create(p, 0o644)
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		if data := seedContent[p]; len(data) > 0 {
			if _, err := ifs.WriteAt(fd, 0, data); err != nil {
				t.Fatalf("write %s: %v", p, err)
			}
		}
		if err := ifs.Close(fd); err != nil {
			t.Fatalf("close %s: %v", p, err)
		}
	}
	if err := ifs.Symlink("hello.txt", "/hello.link"); err != nil {
		t.Fatalf("symlink: %v", err)
	}
}

// implementations returns a named constructor for each fsapi.FS the adapter
// must serve: raw base, shadow, specification model, and supervised core.
func implementations() map[string]func(t *testing.T) fsapi.FS {
	format := func(t *testing.T, blocks uint32) (blockdev.Device, *mkfs.Options) {
		t.Helper()
		dev := blockdev.NewMem(blocks)
		opts := mkfs.Options{NumInodes: 1024, JournalBlocks: 64}
		if _, err := mkfs.Format(dev, opts); err != nil {
			t.Fatal(err)
		}
		return dev, &opts
	}
	return map[string]func(t *testing.T) fsapi.FS{
		"base": func(t *testing.T) fsapi.FS {
			dev, _ := format(t, 4096)
			ifs, err := basefs.Mount(dev, basefs.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(ifs.Kill)
			return ifs
		},
		"shadow": func(t *testing.T) fsapi.FS {
			dev, _ := format(t, 4096)
			sh, err := shadowfs.New(dev, shadowfs.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return sh
		},
		"model": func(t *testing.T) fsapi.FS {
			dev := blockdev.NewMem(4096)
			sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 1024, JournalBlocks: 64})
			if err != nil {
				t.Fatal(err)
			}
			return model.New(sb)
		},
		"supervised": func(t *testing.T) fsapi.FS {
			dev, _ := format(t, 4096)
			sup, err := core.Mount(dev, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sup.Kill)
			return sup
		},
	}
}

// TestFSConformance runs the standard library's fs.FS conformance checker
// over the adapter wrapping every implementation — a free differential check
// that all four expose the identical io/fs view of the identical tree.
func TestFSConformance(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			ifs := mk(t)
			seedTree(t, ifs)
			if err := fstest.TestFS(New(ifs), seedExpected...); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReadFileAndWalk exercises the fs.ReadFileFS fast path and fs.WalkDir
// over a supervised volume.
func TestReadFileAndWalk(t *testing.T) {
	ifs := implementations()["supervised"](t)
	seedTree(t, ifs)
	v := New(ifs)

	got, err := fs.ReadFile(v, "a/b/deep.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seedContent["/a/b/deep.bin"]) {
		t.Fatalf("ReadFile content mismatch: got %d bytes", len(got))
	}

	var walked []string
	err = fs.WalkDir(v, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if p != "." {
			walked = append(walked, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(walked) != len(seedExpected) {
		t.Fatalf("WalkDir visited %v, want %v", walked, seedExpected)
	}
	for i, p := range seedExpected {
		if walked[i] != p {
			t.Fatalf("WalkDir visited %v, want %v", walked, seedExpected)
		}
	}
}

// TestSymlinkSurface pins the two views of a symlink: ReadLink/Lstat see the
// link, Open/ReadFile see the target text (sized consistently with Stat).
func TestSymlinkSurface(t *testing.T) {
	ifs := implementations()["base"](t)
	seedTree(t, ifs)
	v := New(ifs)

	target, err := v.ReadLink("hello.link")
	if err != nil || target != "hello.txt" {
		t.Fatalf("ReadLink = %q, %v", target, err)
	}
	fi, err := v.Lstat("hello.link")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode()&fs.ModeSymlink == 0 {
		t.Fatalf("Lstat mode %v lacks ModeSymlink", fi.Mode())
	}
	if fi.Size() != int64(len(target)) {
		t.Fatalf("Lstat size %d, want %d", fi.Size(), len(target))
	}
	data, err := fs.ReadFile(v, "hello.link")
	if err != nil || string(data) != target {
		t.Fatalf("ReadFile(link) = %q, %v", data, err)
	}
	if _, err := v.ReadLink("hello.txt"); !errors.Is(err, fs.ErrInvalid) {
		t.Fatalf("ReadLink on regular file: %v", err)
	}
}

// TestErrorTranslation pins the error contract: *fs.PathError wrapping the
// fserr sentinel, which itself satisfies the io/fs sentinel.
func TestErrorTranslation(t *testing.T) {
	ifs := implementations()["base"](t)
	seedTree(t, ifs)
	v := New(ifs)

	_, err := v.Open("no/such/file")
	var pe *fs.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("Open error %T, want *fs.PathError", err)
	}
	if pe.Op != "open" || pe.Path != "no/such/file" {
		t.Fatalf("PathError = %q %q", pe.Op, pe.Path)
	}
	if !errors.Is(err, fs.ErrNotExist) || !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("Open error %v does not satisfy both sentinels", err)
	}

	for _, bad := range []string{"", "/abs", "a/../b", "./x", "a//b"} {
		if _, err := v.Open(bad); !errors.Is(err, fs.ErrInvalid) {
			t.Errorf("Open(%q) = %v, want ErrInvalid", bad, err)
		}
	}
	if _, err := v.Open("hello.txt/x"); !errors.Is(err, fs.ErrNotExist) && !errors.Is(err, fserr.ErrNotDir) {
		t.Errorf("Open through file = %v", err)
	}
	if err := v.Mkdir("a", 0o755); !errors.Is(err, fs.ErrExist) {
		t.Errorf("Mkdir existing = %v, want ErrExist", err)
	}
}

// TestWriteSide drives the WriteFS extension end to end over the base
// filesystem and checks results through the read side.
func TestWriteSide(t *testing.T) {
	ifs := implementations()["base"](t)
	v := New(ifs)

	if err := v.MkdirAll("x/y/z", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := v.MkdirAll("x/y/z", 0o755); err != nil {
		t.Fatalf("MkdirAll idempotent: %v", err)
	}
	if err := v.WriteFile("x/y/z/f.txt", []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(v, "x/y/z/f.txt")
	if err != nil || string(got) != "payload" {
		t.Fatalf("readback = %q, %v", got, err)
	}
	if err := v.WriteFile("x/y/z/f.txt", []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ = fs.ReadFile(v, "x/y/z/f.txt"); string(got) != "v2" {
		t.Fatalf("WriteFile did not truncate: %q", got)
	}

	if _, err := v.OpenFile("x/y/z/f.txt", os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("O_EXCL on existing = %v", err)
	}
	if _, err := v.OpenFile("x/y/z", os.O_RDWR, 0); !errors.Is(err, fserr.ErrIsDir) {
		t.Fatalf("OpenFile on dir = %v", err)
	}

	f, err := v.OpenFile("x/y/z/f.txt", os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+more")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, fs.ErrClosed) {
		t.Fatalf("double close = %v, want fs.ErrClosed", err)
	}
	if got, _ = fs.ReadFile(v, "x/y/z/f.txt"); string(got) != "v2+more" {
		t.Fatalf("append result = %q", got)
	}

	if err := v.Rename("x/y/z/f.txt", "x/moved.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Stat("x/y/z/f.txt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("old name after rename: %v", err)
	}
	if err := v.Truncate("x/moved.txt", 2); err != nil {
		t.Fatal(err)
	}
	if got, _ = fs.ReadFile(v, "x/moved.txt"); string(got) != "v2" {
		t.Fatalf("truncate result = %q", got)
	}
	if err := v.Chmod("x/moved.txt", 0o600); err != nil {
		t.Fatal(err)
	}
	if fi, _ := v.Stat("x/moved.txt"); fi.Mode().Perm() != 0o600 {
		t.Fatalf("chmod perm = %v", fi.Mode())
	}
	if err := v.Link("x/moved.txt", "x/hard"); err != nil {
		t.Fatal(err)
	}
	if err := v.Symlink("moved.txt", "x/soft"); err != nil {
		t.Fatal(err)
	}

	if err := v.Remove("x/hard"); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove("x/y/z"); err != nil {
		t.Fatalf("Remove empty dir: %v", err)
	}
	if err := v.RemoveAll("x"); err != nil {
		t.Fatal(err)
	}
	if err := v.RemoveAll("x"); err != nil {
		t.Fatalf("RemoveAll missing: %v", err)
	}
	if _, err := v.Stat("x"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("x survives RemoveAll: %v", err)
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestFileHandleOffsets pins the per-handle offset semantics layered over
// fsapi's positional-only calls.
func TestFileHandleOffsets(t *testing.T) {
	ifs := implementations()["base"](t)
	v := New(ifs)
	if err := v.WriteFile("f", []byte("abcdefghij"), 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := v.OpenFile("f", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	buf := make([]byte, 4)
	if n, err := f.Read(buf); n != 4 || err != nil || string(buf) != "abcd" {
		t.Fatalf("Read = %d %v %q", n, err, buf)
	}
	if n, err := f.Read(buf); n != 4 || err != nil || string(buf) != "efgh" {
		t.Fatalf("second Read = %d %v %q", n, err, buf)
	}
	// ReadAt must not disturb the handle offset and must return io.EOF on a
	// short read, per io.ReaderAt.
	if n, err := f.ReadAt(buf, 8); n != 2 || err != io.EOF {
		t.Fatalf("ReadAt = %d %v", n, err)
	}
	if n, err := f.Read(buf); n != 2 || err != nil || string(buf[:n]) != "ij" {
		t.Fatalf("Read after ReadAt = %d %v %q", n, err, buf[:n])
	}
	if _, err := f.Read(buf); err != io.EOF {
		t.Fatalf("Read at EOF = %v", err)
	}

	if pos, err := f.Seek(-4, io.SeekEnd); pos != 6 || err != nil {
		t.Fatalf("SeekEnd = %d %v", pos, err)
	}
	if _, err := f.Write([]byte("XY")); err != nil {
		t.Fatal(err)
	}
	if pos, err := f.Seek(0, io.SeekCurrent); pos != 8 || err != nil {
		t.Fatalf("offset after write = %d %v", pos, err)
	}
	if got, _ := fs.ReadFile(v, "f"); string(got) != "abcdefXYij" {
		t.Fatalf("content = %q", got)
	}
	if _, err := f.Seek(-1, io.SeekStart); !errors.Is(err, fs.ErrInvalid) {
		t.Fatalf("negative seek = %v", err)
	}

	ro, err := v.OpenFile("f", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Write([]byte("no")); !errors.Is(err, fs.ErrClosed) {
		t.Fatalf("write on O_RDONLY handle = %v", err)
	}
}

// TestTelemetryHandles checks the vfs.handles gauge tracks open *File
// handles and vfs.opens counts every successful open.
func TestTelemetryHandles(t *testing.T) {
	ifs := implementations()["base"](t)
	seedTree(t, ifs)
	sink := telemetry.New()
	v := New(ifs, WithTelemetry(sink))

	f1, err := v.Open("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := v.OpenFile("empty", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.Gauge("vfs.handles").Value(); got != 2 {
		t.Fatalf("handles = %d, want 2", got)
	}
	// Directory and symlink opens count as opens but hold no fsapi FD.
	if _, err := v.Open("a"); err != nil {
		t.Fatal(err)
	}
	if got := sink.Gauge("vfs.handles").Value(); got != 2 {
		t.Fatalf("handles after dir open = %d, want 2", got)
	}
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.Gauge("vfs.handles").Value(); got != 0 {
		t.Fatalf("handles after close = %d, want 0", got)
	}
	if got := sink.Counter("vfs.opens").Value(); got != 3 {
		t.Fatalf("opens = %d, want 3", got)
	}
}

// flushCountingFS wraps an fsapi.FS and exposes Flush() error the way a
// pipelined inner filesystem (the fswire client) does, counting calls.
type flushCountingFS struct {
	fsapi.FS
	flushes int
}

func (f *flushCountingFS) Flush() error {
	f.flushes++
	return nil
}

// TestSyncAndCloseArePipelineBarriers: File.Sync, File.Close, and FS.Sync
// must drain a pipelined inner filesystem before issuing the durability or
// close operation — otherwise an fsync could be acknowledged while batched
// writes are still in flight behind it.
func TestSyncAndCloseArePipelineBarriers(t *testing.T) {
	dev := blockdev.NewMem(4096)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 1024, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	inner := &flushCountingFS{FS: model.New(sb)}
	v := New(inner)

	f, err := v.Create("f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if inner.flushes != 1 {
		t.Errorf("after File.Sync: flushes = %d, want 1", inner.flushes)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if inner.flushes != 2 {
		t.Errorf("after File.Close: flushes = %d, want 2", inner.flushes)
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	if inner.flushes != 3 {
		t.Errorf("after FS.Sync: flushes = %d, want 3", inner.flushes)
	}
}
