// Package vfs adapts any fsapi.FS — the raw base filesystem, the shadow, the
// executable specification model, an RAE-supervised core.FS, or a volmgr
// tenant — to Go's standard io/fs interfaces, plus a write-side extension the
// standard library doesn't define.
//
// The paper's contract is stated "at the API level" (§3.3); this package is
// where that API stops being bespoke. Anything written against io/fs —
// fs.WalkDir, fs.ReadFile, testing/fstest.TestFS, template loaders, zip
// writers — runs unchanged over a supervised volume, and fstest.TestFS
// becomes a free differential check across all four implementations.
//
// Read side: FS implements fs.FS, fs.ReadDirFS, fs.StatFS, fs.ReadFileFS,
// and the ReadLinkFS shape (ReadLink + Lstat) that newer Go standardizes.
// Write side: OpenFile/Create/Mkdir/Remove/Rename/WriteFile and friends,
// with *File handles carrying per-handle offset state (Read/Write/Seek)
// that fsapi's positional-only calls don't have.
//
// Name mapping and semantics:
//
//   - io/fs names are unrooted and slash-separated ("." is the root); the
//     adapter maps name → "/" + name. Invalid names (per fs.ValidPath) fail
//     with fs.ErrInvalid before touching the wrapped filesystem.
//   - Every error is returned as *fs.PathError wrapping the fserr sentinel,
//     which itself unwraps to the io/fs sentinel where one exists — so
//     errors.Is(err, fs.ErrNotExist) holds end to end.
//   - fsapi lookup is lexical and never follows symlinks. ReadLink/Lstat
//     expose them faithfully; Open on a symlink returns a read-only file
//     whose content is the target text (the pre-ReadLinkFS io/fs convention,
//     e.g. fstest.MapFS), sized consistently with Stat.
//   - ModTime is the deterministic logical clock rendered as seconds since
//     the epoch: ordering is meaningful, wall-clock time is not.
package vfs

import (
	"io/fs"
	"path"
	"time"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/telemetry"
)

// ReadLinkFS mirrors the fs.ReadLinkFS interface added to io/fs in newer Go
// releases (ReadLink + Lstat). Declared here so the adapter compiles on
// toolchains that predate it; when the repo's minimum Go version has
// fs.ReadLinkFS, *FS satisfies it with no changes.
type ReadLinkFS interface {
	fs.FS
	// ReadLink returns the destination of the named symbolic link.
	ReadLink(name string) (string, error)
	// Lstat returns a FileInfo describing the named file without following
	// symbolic links.
	Lstat(name string) (fs.FileInfo, error)
}

// WriteFS is the write-side extension contract *FS provides over io/fs: the
// mutating surface of fsapi.FS expressed in standard-library idiom. It exists
// as an interface so code can be written against "any writable standard
// filesystem" the way read-only code is written against fs.FS.
type WriteFS interface {
	fs.FS
	OpenFile(name string, flag int, perm fs.FileMode) (*File, error)
	Create(name string) (*File, error)
	Mkdir(name string, perm fs.FileMode) error
	MkdirAll(name string, perm fs.FileMode) error
	Remove(name string) error
	RemoveAll(name string) error
	Rename(oldname, newname string) error
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Truncate(name string, size int64) error
	Symlink(oldname, newname string) error
	Link(oldname, newname string) error
	Chmod(name string, mode fs.FileMode) error
	Sync() error
}

// FS wraps an fsapi.FS as a standard filesystem.
type FS struct {
	inner fsapi.FS

	// handles is the vfs.handles gauge: open *File handles (dir handles and
	// symlink readers are self-contained and don't hold an fsapi.FD).
	handles *telemetry.Gauge
	opens   *telemetry.Counter
}

// Statically bind the adapter to every interface it promises.
var (
	_ fs.FS         = (*FS)(nil)
	_ fs.ReadDirFS  = (*FS)(nil)
	_ fs.StatFS     = (*FS)(nil)
	_ fs.ReadFileFS = (*FS)(nil)
	_ ReadLinkFS    = (*FS)(nil)
	_ WriteFS       = (*FS)(nil)
)

// Option configures the adapter.
type Option func(*FS)

// WithTelemetry installs the sink carrying the vfs.handles gauge and
// vfs.opens counter. Without it the adapter records nothing (nil instruments
// are valid no-ops).
func WithTelemetry(s *telemetry.Sink) Option {
	return func(v *FS) {
		if s != nil {
			v.handles = s.Gauge("vfs.handles")
			v.opens = s.Counter("vfs.opens")
		}
	}
}

// New wraps inner as a standard filesystem. The wrapped filesystem's
// concurrency contract carries through unchanged: a supervised core.FS or a
// volmgr tenant is safe for concurrent use through the adapter, the shadow
// and the model are not.
func New(inner fsapi.FS, opts ...Option) *FS {
	v := &FS{inner: inner}
	for _, o := range opts {
		o(v)
	}
	return v
}

// Inner returns the wrapped fsapi.FS.
func (v *FS) Inner() fsapi.FS { return v.inner }

// toPath maps an io/fs name to an fsapi absolute path.
func toPath(name string) (string, error) {
	if !fs.ValidPath(name) {
		return "", fserr.ErrInvalid
	}
	if name == "." {
		return "/", nil
	}
	return "/" + name, nil
}

// pathErr wraps an operation failure in the standard *fs.PathError shape.
// The wrapped error keeps the fserr sentinel in the chain, so both
// errors.Is(err, fserr.ErrNotExist) and errors.Is(err, fs.ErrNotExist) hold.
func pathErr(op, name string, err error) error {
	if err == nil {
		return nil
	}
	return &fs.PathError{Op: op, Path: name, Err: err}
}

// FileMode converts an fsapi/disklayout mode word to a fs.FileMode.
func FileMode(mode uint16) fs.FileMode {
	m := fs.FileMode(disklayout.ModePerm(mode) & 0o777)
	switch disklayout.ModeType(mode) {
	case disklayout.TypeDir:
		m |= fs.ModeDir
	case disklayout.TypeSym:
		m |= fs.ModeSymlink
	}
	return m
}

// fileInfo implements fs.FileInfo over an fsapi.Stat.
type fileInfo struct {
	name string
	st   fsapi.Stat
}

func (fi fileInfo) Name() string { return fi.name }
func (fi fileInfo) Size() int64  { return fi.st.Size }
func (fi fileInfo) Mode() fs.FileMode {
	return FileMode(fi.st.Mode)
}
func (fi fileInfo) ModTime() time.Time { return time.Unix(int64(fi.st.Mtime), 0).UTC() }
func (fi fileInfo) IsDir() bool        { return fi.Mode().IsDir() }

// Sys returns the underlying fsapi.Stat (by value).
func (fi fileInfo) Sys() any { return fi.st }

// dirEntry implements fs.DirEntry over an fsapi.DirEntry; Info stats the
// child through the wrapped filesystem on demand.
type dirEntry struct {
	v    *FS
	name string // io/fs name of the entry itself (for Info)
	de   fsapi.DirEntry
}

func (d dirEntry) Name() string { return d.de.Name }
func (d dirEntry) IsDir() bool  { return d.de.Type == disklayout.TypeDir }
func (d dirEntry) Type() fs.FileMode {
	switch d.de.Type {
	case disklayout.TypeDir:
		return fs.ModeDir
	case disklayout.TypeSym:
		return fs.ModeSymlink
	}
	return 0
}
func (d dirEntry) Info() (fs.FileInfo, error) { return d.v.Stat(d.name) }

// Open implements fs.FS. Directories come back as fs.ReadDirFile handles
// serving a sorted snapshot; symlinks come back as read-only files whose
// content is the target text; regular files come back as *File handles
// opened read-write (the fsapi layer has no open mode — writability is a
// property of the wrapped filesystem, and read-only wrappers like the shadow
// enforce theirs on the write call).
func (v *FS) Open(name string) (fs.File, error) {
	f, err := v.open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// open is Open with a concrete return type, shared by OpenFile.
func (v *FS) open(name string) (fs.File, error) {
	p, err := toPath(name)
	if err != nil {
		return nil, pathErr("open", name, err)
	}
	st, err := v.inner.Stat(p)
	if err != nil {
		return nil, pathErr("open", name, err)
	}
	base := path.Base(name) // "." for the root, matching fs.FileInfo convention
	switch disklayout.ModeType(st.Mode) {
	case disklayout.TypeDir:
		ents, err := v.readDirSorted(p)
		if err != nil {
			return nil, pathErr("open", name, err)
		}
		v.opens.Inc()
		return &dirFile{info: fileInfo{base, st}, entries: ents, v: v, name: name}, nil
	case disklayout.TypeSym:
		target, err := v.inner.Readlink(p)
		if err != nil {
			return nil, pathErr("open", name, err)
		}
		v.opens.Inc()
		return &linkFile{info: fileInfo{base, st}, data: []byte(target)}, nil
	}
	fd, err := v.inner.Open(p)
	if err != nil {
		return nil, pathErr("open", name, err)
	}
	v.opens.Inc()
	v.handles.Add(1)
	return &File{v: v, name: name, base: base, fd: fd}, nil
}

// readDirSorted lists a directory and sorts entries by name, as the
// fs.ReadDirFS contract requires (fsapi.Readdir returns on-disk order).
func (v *FS) readDirSorted(p string) ([]fsapi.DirEntry, error) {
	ents, err := v.inner.Readdir(p)
	if err != nil {
		return nil, err
	}
	out := make([]fsapi.DirEntry, len(ents))
	copy(out, ents)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// ReadDir implements fs.ReadDirFS: entries sorted by name.
func (v *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	p, err := toPath(name)
	if err != nil {
		return nil, pathErr("readdir", name, err)
	}
	ents, err := v.readDirSorted(p)
	if err != nil {
		return nil, pathErr("readdir", name, err)
	}
	out := make([]fs.DirEntry, len(ents))
	for i, de := range ents {
		child := de.Name
		if name != "." {
			child = name + "/" + de.Name
		}
		out[i] = dirEntry{v: v, name: child, de: de}
	}
	return out, nil
}

// Stat implements fs.StatFS.
func (v *FS) Stat(name string) (fs.FileInfo, error) {
	p, err := toPath(name)
	if err != nil {
		return nil, pathErr("stat", name, err)
	}
	st, err := v.inner.Stat(p)
	if err != nil {
		return nil, pathErr("stat", name, err)
	}
	return fileInfo{path.Base(name), st}, nil
}

// Lstat implements the ReadLinkFS shape. fsapi lookup never follows
// symlinks, so Lstat and Stat agree; both are provided so io/fs-conventional
// code finds the method it reaches for.
func (v *FS) Lstat(name string) (fs.FileInfo, error) {
	fi, err := v.Stat(name)
	if err != nil {
		return nil, pathErr("lstat", name, unwrapPathErr(err))
	}
	return fi, nil
}

// ReadLink implements the ReadLinkFS shape.
func (v *FS) ReadLink(name string) (string, error) {
	p, err := toPath(name)
	if err != nil {
		return "", pathErr("readlink", name, err)
	}
	target, err := v.inner.Readlink(p)
	if err != nil {
		return "", pathErr("readlink", name, err)
	}
	return target, nil
}

// ReadFile implements fs.ReadFileFS.
func (v *FS) ReadFile(name string) ([]byte, error) {
	p, err := toPath(name)
	if err != nil {
		return nil, pathErr("readfile", name, err)
	}
	st, err := v.inner.Stat(p)
	if err != nil {
		return nil, pathErr("readfile", name, err)
	}
	if disklayout.ModeType(st.Mode) == disklayout.TypeSym {
		target, err := v.inner.Readlink(p)
		if err != nil {
			return nil, pathErr("readfile", name, err)
		}
		return []byte(target), nil
	}
	fd, err := v.inner.Open(p)
	if err != nil {
		return nil, pathErr("readfile", name, err)
	}
	defer v.inner.Close(fd)
	var out []byte
	for off := int64(0); off < st.Size; {
		chunk, err := v.inner.ReadAt(fd, off, readChunk)
		if err != nil {
			return nil, pathErr("readfile", name, err)
		}
		if len(chunk) == 0 {
			break
		}
		out = append(out, chunk...)
		off += int64(len(chunk))
	}
	return out, nil
}

// unwrapPathErr strips one *fs.PathError layer so re-wrapping under a
// different op doesn't nest PathErrors.
func unwrapPathErr(err error) error {
	if pe, ok := err.(*fs.PathError); ok {
		return pe.Err
	}
	return err
}
