package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path"
	"sync"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// readChunk bounds one fsapi.ReadAt call made on behalf of a streaming read.
const readChunk = 1 << 16

// File is an open regular file with per-handle offset state — the stateful
// handle fsapi's positional-only ReadAt/WriteAt don't provide. It implements
// fs.File, io.Reader, io.ReaderAt, io.Writer, io.WriterAt, io.Seeker,
// io.Closer. A File is safe for concurrent use; the offset is advanced under
// an internal mutex exactly as os.File serializes its descriptor offset.
type File struct {
	v    *FS
	name string // io/fs name, for error reporting and path-based fallbacks
	base string // base name for Stat
	fd   fsapi.FD

	mu     sync.Mutex
	off    int64
	closed bool
	append bool
	rdonly bool
}

var (
	_ fs.File     = (*File)(nil)
	_ io.ReaderAt = (*File)(nil)
	_ io.WriterAt = (*File)(nil)
	_ io.Seeker   = (*File)(nil)
	_ io.Writer   = (*File)(nil)
)

// Name returns the io/fs name the file was opened as.
func (f *File) Name() string { return f.name }

// FD exposes the wrapped filesystem's descriptor (for tests and tools that
// drop down to the fsapi layer).
func (f *File) FD() fsapi.FD { return f.fd }

// guard returns an error if the handle is closed.
func (f *File) guardLocked(op string) error {
	if f.closed {
		return pathErr(op, f.name, fserr.ErrBadFD)
	}
	return nil
}

// Stat implements fs.File.
func (f *File) Stat() (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.guardLocked("stat"); err != nil {
		return nil, err
	}
	st, err := f.v.inner.Fstat(f.fd)
	if err != nil {
		return nil, pathErr("stat", f.name, err)
	}
	return fileInfo{f.base, st}, nil
}

// Read implements io.Reader: reads from the handle offset and advances it.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.guardLocked("read"); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	b, err := f.v.inner.ReadAt(f.fd, f.off, len(p))
	if err != nil {
		return 0, pathErr("read", f.name, err)
	}
	n := copy(p, b)
	f.off += int64(n)
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// ReadAt implements io.ReaderAt: positional, does not move the offset, and
// returns io.EOF alongside a short read as the interface requires.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if err := f.guardLocked("read"); err != nil {
		f.mu.Unlock()
		return 0, err
	}
	fd := f.fd
	f.mu.Unlock()
	if off < 0 {
		return 0, pathErr("read", f.name, fserr.ErrInvalid)
	}
	b, err := f.v.inner.ReadAt(fd, off, len(p))
	if err != nil {
		return 0, pathErr("read", f.name, err)
	}
	n := copy(p, b)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Write implements io.Writer: writes at the handle offset (or at EOF in
// append mode) and advances it.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.guardLocked("write"); err != nil {
		return 0, err
	}
	if f.rdonly {
		return 0, pathErr("write", f.name, fserr.ErrBadFD)
	}
	off := f.off
	if f.append {
		st, err := f.v.inner.Fstat(f.fd)
		if err != nil {
			return 0, pathErr("write", f.name, err)
		}
		off = st.Size
	}
	n, err := f.v.inner.WriteAt(f.fd, off, p)
	f.off = off + int64(n)
	if err != nil {
		return n, pathErr("write", f.name, err)
	}
	return n, nil
}

// WriteAt implements io.WriterAt: positional, does not move the offset.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if err := f.guardLocked("write"); err != nil {
		f.mu.Unlock()
		return 0, err
	}
	if f.rdonly {
		f.mu.Unlock()
		return 0, pathErr("write", f.name, fserr.ErrBadFD)
	}
	fd := f.fd
	f.mu.Unlock()
	if off < 0 {
		return 0, pathErr("write", f.name, fserr.ErrInvalid)
	}
	n, err := f.v.inner.WriteAt(fd, off, p)
	if err != nil {
		return n, pathErr("write", f.name, err)
	}
	return n, nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.guardLocked("seek"); err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		st, err := f.v.inner.Fstat(f.fd)
		if err != nil {
			return 0, pathErr("seek", f.name, err)
		}
		base = st.Size
	default:
		return 0, pathErr("seek", f.name, fserr.ErrInvalid)
	}
	pos := base + offset
	if pos < 0 {
		return 0, pathErr("seek", f.name, fserr.ErrInvalid)
	}
	f.off = pos
	return pos, nil
}

// flushInner is the pipeline barrier: when the inner filesystem pipelines
// operations (the fswire client does), durability and close points must not
// outrun submitted-but-unacknowledged work. Any inner FS exposing
// Flush() error gets drained first; everything else is a no-op.
func flushInner(inner fsapi.FS) error {
	if p, ok := inner.(interface{ Flush() error }); ok {
		return p.Flush()
	}
	return nil
}

// Sync persists the file's data and metadata (fsapi.Fsync). It is a pipeline
// barrier: pending pipelined operations drain before the fsync is issued.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.guardLocked("sync"); err != nil {
		return err
	}
	if err := flushInner(f.v.inner); err != nil {
		return pathErr("sync", f.name, err)
	}
	return pathErr("sync", f.name, f.v.inner.Fsync(f.fd))
}

// Close implements io.Closer. Closing twice returns fs.ErrClosed. Like Sync
// it is a pipeline barrier, so writes issued through a pipelined inner FS
// are acknowledged before the descriptor goes away.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return pathErr("close", f.name, fserr.ErrBadFD)
	}
	f.closed = true
	f.v.handles.Add(-1)
	if err := flushInner(f.v.inner); err != nil {
		return pathErr("close", f.name, err)
	}
	return pathErr("close", f.name, f.v.inner.Close(f.fd))
}

// dirFile is an open directory handle: an fs.ReadDirFile serving a sorted
// snapshot taken at Open time, so chunked ReadDir reads are stable even if
// the directory changes underneath.
type dirFile struct {
	info    fileInfo
	entries []fsapi.DirEntry
	v       *FS
	name    string // io/fs name of the directory, for child Info lookups

	mu     sync.Mutex
	pos    int
	closed bool
}

var _ fs.ReadDirFile = (*dirFile)(nil)

func (d *dirFile) Stat() (fs.FileInfo, error) { return d.info, nil }

func (d *dirFile) Read([]byte) (int, error) {
	return 0, pathErr("read", d.info.name, fserr.ErrIsDir)
}

func (d *dirFile) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return pathErr("close", d.info.name, fserr.ErrBadFD)
	}
	d.closed = true
	return nil
}

// ReadDir implements fs.ReadDirFile: n > 0 returns at most n entries and
// io.EOF at exhaustion; n <= 0 returns all remaining entries and no error.
func (d *dirFile) ReadDir(n int) ([]fs.DirEntry, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, pathErr("readdir", d.info.name, fserr.ErrBadFD)
	}
	remaining := len(d.entries) - d.pos
	if n <= 0 {
		n = remaining
	} else if remaining == 0 {
		return nil, io.EOF
	} else if n > remaining {
		n = remaining
	}
	out := make([]fs.DirEntry, 0, n)
	for i := 0; i < n; i++ {
		de := d.entries[d.pos]
		child := de.Name
		if d.name != "." && d.name != "" {
			child = d.name + "/" + de.Name
		}
		out = append(out, dirEntry{v: d.v, name: child, de: de})
		d.pos++
	}
	return out, nil
}

// linkFile is an open symlink: a read-only file whose content is the target
// text (see the package comment for why Open doesn't fail on symlinks).
type linkFile struct {
	info fileInfo
	data []byte

	mu     sync.Mutex
	off    int
	closed bool
}

var (
	_ fs.File     = (*linkFile)(nil)
	_ io.ReaderAt = (*linkFile)(nil)
	_ io.Seeker   = (*linkFile)(nil)
)

func (l *linkFile) Stat() (fs.FileInfo, error) { return l.info, nil }

func (l *linkFile) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, pathErr("read", l.info.name, fserr.ErrBadFD)
	}
	if l.off >= len(l.data) {
		return 0, io.EOF
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

func (l *linkFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, pathErr("read", l.info.name, fserr.ErrInvalid)
	}
	if off >= int64(len(l.data)) {
		return 0, io.EOF
	}
	n := copy(p, l.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (l *linkFile) Seek(offset int64, whence int) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = int64(l.off)
	case io.SeekEnd:
		base = int64(len(l.data))
	default:
		return 0, pathErr("seek", l.info.name, fserr.ErrInvalid)
	}
	pos := base + offset
	if pos < 0 {
		return 0, pathErr("seek", l.info.name, fserr.ErrInvalid)
	}
	l.off = int(pos)
	return pos, nil
}

func (l *linkFile) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return pathErr("close", l.info.name, fserr.ErrBadFD)
	}
	l.closed = true
	return nil
}

// --- write-side extension ---

// OpenFile opens a regular file with os.OpenFile-style flags (O_RDONLY,
// O_WRONLY, O_RDWR, O_CREATE, O_EXCL, O_TRUNC, O_APPEND). perm's permission
// bits apply only when the call creates the file. Directories and symlinks
// are not openable through OpenFile — use Open for a read-side handle.
func (v *FS) OpenFile(name string, flag int, perm fs.FileMode) (*File, error) {
	p, err := toPath(name)
	if err != nil {
		return nil, pathErr("open", name, err)
	}
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	if flag&(os.O_TRUNC|os.O_APPEND|os.O_CREATE) != 0 && !writable {
		return nil, pathErr("open", name, fserr.ErrInvalid)
	}

	var fd fsapi.FD
	created := false
	if flag&os.O_CREATE != 0 {
		fd, err = v.inner.Create(p, uint16(perm.Perm()))
		switch {
		case err == nil:
			created = true
		case errors.Is(err, fserr.ErrExist) && flag&os.O_EXCL == 0:
			// Fall through to plain open below.
		default:
			return nil, pathErr("open", name, err)
		}
	}
	if !created {
		st, serr := v.inner.Stat(p)
		if serr != nil {
			return nil, pathErr("open", name, serr)
		}
		switch disklayout.ModeType(st.Mode) {
		case disklayout.TypeDir:
			return nil, pathErr("open", name, fserr.ErrIsDir)
		case disklayout.TypeSym:
			return nil, pathErr("open", name, fserr.ErrInvalid)
		}
		fd, err = v.inner.Open(p)
		if err != nil {
			return nil, pathErr("open", name, err)
		}
		if flag&os.O_TRUNC != 0 {
			if err := v.inner.Truncate(p, 0); err != nil {
				_ = v.inner.Close(fd)
				return nil, pathErr("open", name, err)
			}
		}
	}
	v.opens.Inc()
	v.handles.Add(1)
	return &File{
		v: v, name: name, base: path.Base(name), fd: fd,
		append: flag&os.O_APPEND != 0,
		rdonly: !writable,
	}, nil
}

// Create creates or truncates the named file and opens it read-write,
// matching os.Create.
func (v *FS) Create(name string) (*File, error) {
	return v.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
}

// Mkdir creates a directory.
func (v *FS) Mkdir(name string, perm fs.FileMode) error {
	p, err := toPath(name)
	if err != nil {
		return pathErr("mkdir", name, err)
	}
	return pathErr("mkdir", name, v.inner.Mkdir(p, uint16(perm.Perm())))
}

// MkdirAll creates a directory and any missing parents; it succeeds if the
// directory already exists, matching os.MkdirAll.
func (v *FS) MkdirAll(name string, perm fs.FileMode) error {
	if !fs.ValidPath(name) {
		return pathErr("mkdir", name, fserr.ErrInvalid)
	}
	if name == "." {
		return nil
	}
	prefix := ""
	for {
		rest := name[len(prefix):]
		i := 0
		for i < len(rest) && rest[i] != '/' {
			i++
		}
		prefix += rest[:i]
		err := v.inner.Mkdir("/"+prefix, uint16(perm.Perm()))
		if err != nil && !errors.Is(err, fserr.ErrExist) {
			return pathErr("mkdir", prefix, err)
		}
		if err != nil {
			// Exists: fine for a parent or the target only if it's a directory.
			st, serr := v.inner.Stat("/" + prefix)
			if serr != nil {
				return pathErr("mkdir", prefix, serr)
			}
			if disklayout.ModeType(st.Mode) != disklayout.TypeDir {
				return pathErr("mkdir", prefix, fserr.ErrNotDir)
			}
		}
		if len(prefix) == len(name) {
			return nil
		}
		prefix += "/"
	}
}

// Remove removes a file, symlink, or empty directory, matching os.Remove.
func (v *FS) Remove(name string) error {
	p, err := toPath(name)
	if err != nil {
		return pathErr("remove", name, err)
	}
	err = v.inner.Unlink(p)
	if errors.Is(err, fserr.ErrIsDir) {
		err = v.inner.Rmdir(p)
	}
	return pathErr("remove", name, err)
}

// RemoveAll removes name and everything below it; a missing target is not an
// error, matching os.RemoveAll.
func (v *FS) RemoveAll(name string) error {
	p, err := toPath(name)
	if err != nil {
		return pathErr("removeall", name, err)
	}
	if err := v.removeTree(p); err != nil {
		if errors.Is(err, fserr.ErrNotExist) {
			return nil
		}
		return pathErr("removeall", name, err)
	}
	return nil
}

// removeTree removes the fsapi path p recursively.
func (v *FS) removeTree(p string) error {
	st, err := v.inner.Stat(p)
	if err != nil {
		return err
	}
	if disklayout.ModeType(st.Mode) != disklayout.TypeDir {
		return v.inner.Unlink(p)
	}
	ents, err := v.inner.Readdir(p)
	if err != nil {
		return err
	}
	for _, de := range ents {
		child := p + "/" + de.Name
		if p == "/" {
			child = "/" + de.Name
		}
		if err := v.removeTree(child); err != nil {
			return err
		}
	}
	if p == "/" {
		return nil // emptied the root; the root itself stays
	}
	return v.inner.Rmdir(p)
}

// Rename atomically moves oldname to newname.
func (v *FS) Rename(oldname, newname string) error {
	po, err := toPath(oldname)
	if err != nil {
		return pathErr("rename", oldname, err)
	}
	pn, err := toPath(newname)
	if err != nil {
		return pathErr("rename", newname, err)
	}
	return pathErr("rename", oldname, v.inner.Rename(po, pn))
}

// WriteFile writes data to the named file, creating it with perm if needed
// and truncating it otherwise, matching os.WriteFile.
func (v *FS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	f, err := v.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, werr := f.WriteAt(data, 0)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// Truncate sets the named file's size.
func (v *FS) Truncate(name string, size int64) error {
	p, err := toPath(name)
	if err != nil {
		return pathErr("truncate", name, err)
	}
	return pathErr("truncate", name, v.inner.Truncate(p, size))
}

// Symlink creates newname as a symbolic link holding oldname, matching
// os.Symlink's argument order. The target text is stored verbatim.
func (v *FS) Symlink(oldname, newname string) error {
	p, err := toPath(newname)
	if err != nil {
		return pathErr("symlink", newname, err)
	}
	return pathErr("symlink", newname, v.inner.Symlink(oldname, p))
}

// Link creates newname as a hard link to oldname.
func (v *FS) Link(oldname, newname string) error {
	po, err := toPath(oldname)
	if err != nil {
		return pathErr("link", oldname, err)
	}
	pn, err := toPath(newname)
	if err != nil {
		return pathErr("link", newname, err)
	}
	return pathErr("link", oldname, v.inner.Link(po, pn))
}

// Chmod replaces the named file's permission bits.
func (v *FS) Chmod(name string, mode fs.FileMode) error {
	p, err := toPath(name)
	if err != nil {
		return pathErr("chmod", name, err)
	}
	return pathErr("chmod", name, v.inner.SetPerm(p, uint16(mode.Perm())))
}

// Sync persists everything (fsapi.Sync), draining any pipelined inner FS
// first so the sync point covers all submitted work.
func (v *FS) Sync() error {
	if err := flushInner(v.inner); err != nil {
		return pathErr("sync", ".", err)
	}
	if err := v.inner.Sync(); err != nil {
		return pathErr("sync", ".", err)
	}
	return nil
}
