package fserr

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"testing"
)

func allSentinels() []error {
	return []error{
		ErrNotExist, ErrExist, ErrNotDir, ErrIsDir, ErrNotEmpty, ErrNoSpace,
		ErrNameTooLong, ErrBadFD, ErrInvalid, ErrTooBig, ErrCorrupt,
		ErrReadOnly, ErrIO, ErrBusy, ErrCrossDevice,
	}
}

func TestErrnoRoundTripAllSentinels(t *testing.T) {
	for _, err := range allSentinels() {
		n := Errno(err)
		if n <= 0 {
			t.Errorf("Errno(%v) = %d", err, n)
			continue
		}
		back := FromErrno(n)
		if !errors.Is(back, err) {
			t.Errorf("FromErrno(Errno(%v)) = %v", err, back)
		}
	}
	if Errno(nil) != 0 || FromErrno(0) != nil {
		t.Error("zero errno does not round-trip nil")
	}
}

func TestErrnoDistinct(t *testing.T) {
	seen := map[int]error{}
	for _, err := range allSentinels() {
		n := Errno(err)
		if prev, dup := seen[n]; dup {
			t.Errorf("errno %d shared by %v and %v", n, prev, err)
		}
		seen[n] = err
	}
}

func TestErrnoSeesWrappedErrors(t *testing.T) {
	wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrNoSpace))
	if Errno(wrapped) != Errno(ErrNoSpace) {
		t.Error("wrapped sentinel not recognized")
	}
}

func TestErrnoUnknown(t *testing.T) {
	if Errno(errors.New("mystery")) != -1 {
		t.Error("unknown error should map to -1")
	}
	if FromErrno(-1) == nil || FromErrno(9999) == nil {
		t.Error("unknown errnos must not decode to nil")
	}
}

func TestIsUserError(t *testing.T) {
	for _, err := range []error{ErrNotExist, ErrExist, ErrNotDir, ErrIsDir,
		ErrNotEmpty, ErrNoSpace, ErrNameTooLong, ErrBadFD, ErrInvalid, ErrTooBig} {
		if !IsUserError(err) {
			t.Errorf("IsUserError(%v) = false", err)
		}
	}
	for _, err := range []error{nil, ErrCorrupt, ErrIO, errors.New("other")} {
		if IsUserError(err) {
			t.Errorf("IsUserError(%v) = true", err)
		}
	}
}

// TestStdlibErrorMapping pins the io/fs unwrapping contract: exactly the four
// sentinels with a standard counterpart satisfy errors.Is against it, every
// other (sentinel, std) pair does not, and the mapping is one-way — a bare
// standard error never satisfies errors.Is against a taxonomy sentinel.
func TestStdlibErrorMapping(t *testing.T) {
	stdFor := map[error]error{
		ErrNotExist: fs.ErrNotExist,
		ErrExist:    fs.ErrExist,
		ErrInvalid:  fs.ErrInvalid,
		ErrBadFD:    fs.ErrClosed,
	}
	stds := []error{fs.ErrNotExist, fs.ErrExist, fs.ErrInvalid, fs.ErrClosed, fs.ErrPermission}
	for _, sent := range allSentinels() {
		want := stdFor[sent]
		for _, std := range stds {
			got := errors.Is(sent, std)
			if got != (std == want) {
				t.Errorf("errors.Is(%v, %v) = %v, want %v", sent, std, got, std == want)
			}
		}
		// Wrapping must preserve the chain end to end.
		if want != nil && !errors.Is(fmt.Errorf("op failed: %w", sent), want) {
			t.Errorf("wrapped %v does not reach %v", sent, want)
		}
		// One-way: the standard sentinel alone is not one of ours.
		if want != nil && errors.Is(want, sent) {
			t.Errorf("errors.Is(%v, %v) = true; mapping must be one-way", want, sent)
		}
	}
	// os aliases the io/fs sentinels, so the os spellings hold too.
	if !errors.Is(ErrBadFD, os.ErrClosed) {
		t.Error("errors.Is(ErrBadFD, os.ErrClosed) = false")
	}
	if !errors.Is(ErrNotExist, os.ErrNotExist) {
		t.Error("errors.Is(ErrNotExist, os.ErrNotExist) = false")
	}
}

// TestStdlibMappingKeepsTaxonomyDistinct guards against the unwrap chain
// collapsing taxonomy distinctions: no sentinel may satisfy errors.Is against
// a different sentinel.
func TestStdlibMappingKeepsTaxonomyDistinct(t *testing.T) {
	all := allSentinels()
	for i, a := range all {
		for j, b := range all {
			if got := errors.Is(a, b); got != (i == j) {
				t.Errorf("errors.Is(%v, %v) = %v, want %v", a, b, got, i == j)
			}
		}
	}
}

func TestIsFault(t *testing.T) {
	if !IsFault(ErrCorrupt) || !IsFault(ErrIO) {
		t.Error("faults not recognized")
	}
	if !IsFault(fmt.Errorf("wrapped: %w", ErrCorrupt)) {
		t.Error("wrapped fault not recognized")
	}
	for _, err := range []error{nil, ErrNotExist, ErrNoSpace} {
		if IsFault(err) {
			t.Errorf("IsFault(%v) = true", err)
		}
	}
}
