package fserr

import (
	"errors"
	"fmt"
	"testing"
)

func allSentinels() []error {
	return []error{
		ErrNotExist, ErrExist, ErrNotDir, ErrIsDir, ErrNotEmpty, ErrNoSpace,
		ErrNameTooLong, ErrBadFD, ErrInvalid, ErrTooBig, ErrCorrupt,
		ErrReadOnly, ErrIO, ErrBusy, ErrCrossDevice,
	}
}

func TestErrnoRoundTripAllSentinels(t *testing.T) {
	for _, err := range allSentinels() {
		n := Errno(err)
		if n <= 0 {
			t.Errorf("Errno(%v) = %d", err, n)
			continue
		}
		back := FromErrno(n)
		if !errors.Is(back, err) {
			t.Errorf("FromErrno(Errno(%v)) = %v", err, back)
		}
	}
	if Errno(nil) != 0 || FromErrno(0) != nil {
		t.Error("zero errno does not round-trip nil")
	}
}

func TestErrnoDistinct(t *testing.T) {
	seen := map[int]error{}
	for _, err := range allSentinels() {
		n := Errno(err)
		if prev, dup := seen[n]; dup {
			t.Errorf("errno %d shared by %v and %v", n, prev, err)
		}
		seen[n] = err
	}
}

func TestErrnoSeesWrappedErrors(t *testing.T) {
	wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrNoSpace))
	if Errno(wrapped) != Errno(ErrNoSpace) {
		t.Error("wrapped sentinel not recognized")
	}
}

func TestErrnoUnknown(t *testing.T) {
	if Errno(errors.New("mystery")) != -1 {
		t.Error("unknown error should map to -1")
	}
	if FromErrno(-1) == nil || FromErrno(9999) == nil {
		t.Error("unknown errnos must not decode to nil")
	}
}

func TestIsUserError(t *testing.T) {
	for _, err := range []error{ErrNotExist, ErrExist, ErrNotDir, ErrIsDir,
		ErrNotEmpty, ErrNoSpace, ErrNameTooLong, ErrBadFD, ErrInvalid, ErrTooBig} {
		if !IsUserError(err) {
			t.Errorf("IsUserError(%v) = false", err)
		}
	}
	for _, err := range []error{nil, ErrCorrupt, ErrIO, errors.New("other")} {
		if IsUserError(err) {
			t.Errorf("IsUserError(%v) = true", err)
		}
	}
}

func TestIsFault(t *testing.T) {
	if !IsFault(ErrCorrupt) || !IsFault(ErrIO) {
		t.Error("faults not recognized")
	}
	if !IsFault(fmt.Errorf("wrapped: %w", ErrCorrupt)) {
		t.Error("wrapped fault not recognized")
	}
	for _, err := range []error{nil, ErrNotExist, ErrNoSpace} {
		if IsFault(err) {
			t.Errorf("IsFault(%v) = true", err)
		}
	}
}
