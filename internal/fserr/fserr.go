// Package fserr defines the POSIX-style error taxonomy shared by the base
// filesystem, the shadow filesystem, the executable specification model, and
// the fsck checker. Using one sentinel set lets the differential tester and
// the shadow's constrained mode compare outcomes across implementations with
// errors.Is instead of string matching.
//
// Sentinels with a standard-library counterpart additionally unwrap to it, so
// code written against io/fs and os conventions works unchanged against any
// filesystem in this repository:
//
//	errors.Is(fserr.ErrNotExist, fs.ErrNotExist)  // true
//	errors.Is(fserr.ErrExist,    fs.ErrExist)     // true
//	errors.Is(fserr.ErrInvalid,  fs.ErrInvalid)   // true
//	errors.Is(fserr.ErrBadFD,    os.ErrClosed)    // true (os.ErrClosed == fs.ErrClosed)
//
// The reverse direction is deliberately not true: a bare fs.ErrNotExist from
// some other package does not satisfy errors.Is(err, fserr.ErrNotExist), so
// the differential checks stay anchored on this package's taxonomy.
package fserr

import (
	"errors"
	"io/fs"
)

// sentinelError is one taxonomy sentinel. Identity comparison (errors.Is
// against the package variables) works by pointer, exactly as with
// errors.New; std, when non-nil, is the standard-library sentinel this error
// unwraps to.
type sentinelError struct {
	msg string
	std error
}

func (e *sentinelError) Error() string { return e.msg }

// Unwrap exposes the standard-library counterpart (nil for sentinels with no
// io/fs analogue, which errors.Is treats as the end of the chain).
func (e *sentinelError) Unwrap() error { return e.std }

// sentinel builds a taxonomy error with no standard counterpart.
func sentinel(msg string) error { return &sentinelError{msg: msg} }

// sentinelStd builds a taxonomy error that unwraps to std.
func sentinelStd(msg string, std error) error { return &sentinelError{msg: msg, std: std} }

// Sentinel errors. Each corresponds to a POSIX errno the paper's filesystems
// would return through the VFS layer.
var (
	// ErrNotExist reports that a path component or file does not exist (ENOENT).
	// Unwraps to fs.ErrNotExist.
	ErrNotExist = sentinelStd("fserr: no such file or directory", fs.ErrNotExist)
	// ErrExist reports that the target of a create already exists (EEXIST).
	// Unwraps to fs.ErrExist.
	ErrExist = sentinelStd("fserr: file exists", fs.ErrExist)
	// ErrNotDir reports that a non-final path component, or the target of a
	// directory-only operation, is not a directory (ENOTDIR).
	ErrNotDir = sentinel("fserr: not a directory")
	// ErrIsDir reports a file-only operation applied to a directory (EISDIR).
	ErrIsDir = sentinel("fserr: is a directory")
	// ErrNotEmpty reports rmdir of a non-empty directory (ENOTEMPTY).
	ErrNotEmpty = sentinel("fserr: directory not empty")
	// ErrNoSpace reports block or inode exhaustion (ENOSPC).
	ErrNoSpace = sentinel("fserr: no space left on device")
	// ErrNameTooLong reports a path component longer than the on-disk
	// directory entry can store (ENAMETOOLONG).
	ErrNameTooLong = sentinel("fserr: file name too long")
	// ErrBadFD reports an operation on a closed or never-opened file
	// descriptor (EBADF). Unwraps to fs.ErrClosed (== os.ErrClosed), the
	// standard library's closest analogue.
	ErrBadFD = sentinelStd("fserr: bad file descriptor", fs.ErrClosed)
	// ErrInvalid reports an argument outside the operation's domain (EINVAL).
	// Unwraps to fs.ErrInvalid.
	ErrInvalid = sentinelStd("fserr: invalid argument", fs.ErrInvalid)
	// ErrTooBig reports a write or truncate beyond the maximum file size the
	// inode geometry can address (EFBIG).
	ErrTooBig = sentinel("fserr: file too large")
	// ErrCorrupt reports on-disk or in-memory structural corruption detected
	// by an integrity check. It is a detectable runtime error in the sense of
	// the paper's fault model: the supervisor treats it as a recovery trigger,
	// never as an application-visible result.
	ErrCorrupt = sentinel("fserr: filesystem structure corrupt")
	// ErrReadOnly reports a mutation attempted through a read-only handle,
	// e.g. the shadow filesystem touching its write path (EROFS).
	ErrReadOnly = sentinel("fserr: read-only filesystem")
	// ErrIO reports a device-level read or write failure (EIO).
	ErrIO = sentinel("fserr: input/output error")
	// ErrBusy reports an operation that conflicts with an in-use resource,
	// e.g. unlinking a directory serving as another thread's cwd (EBUSY).
	ErrBusy = sentinel("fserr: resource busy")
	// ErrOverloaded reports an operation shed by admission control before it
	// reached any filesystem: the volume's token bucket was empty or its
	// queue-depth cap was hit (EAGAIN). It is an ordinary application-visible
	// outcome — retry later — never a recovery trigger.
	ErrOverloaded = sentinel("fserr: volume overloaded, operation shed")
	// ErrCrossDevice reports a rename or link across filesystems (EXDEV).
	ErrCrossDevice = sentinel("fserr: cross-device link")
)

// IsUserError reports whether err is an ordinary, application-visible POSIX
// outcome (as opposed to an internal fault such as ErrCorrupt or ErrIO that
// the RAE supervisor must intercept). The shadow's constrained mode uses this
// to decide which recorded outcomes are legitimate to replay.
func IsUserError(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrNotExist),
		errors.Is(err, ErrExist),
		errors.Is(err, ErrNotDir),
		errors.Is(err, ErrIsDir),
		errors.Is(err, ErrNotEmpty),
		errors.Is(err, ErrNoSpace),
		errors.Is(err, ErrNameTooLong),
		errors.Is(err, ErrBadFD),
		errors.Is(err, ErrInvalid),
		errors.Is(err, ErrTooBig),
		errors.Is(err, ErrNotEmpty),
		errors.Is(err, ErrOverloaded),
		errors.Is(err, ErrCrossDevice):
		return true
	}
	return false
}

// IsFault reports whether err indicates an internal fault that must trigger
// recovery rather than be surfaced to the application.
func IsFault(err error) bool {
	return err != nil && (errors.Is(err, ErrCorrupt) || errors.Is(err, ErrIO))
}

// Errno returns a stable small integer for an error, used when serializing
// recorded outcomes into the operation log. Unknown errors map to -1.
func Errno(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrNotExist):
		return 2
	case errors.Is(err, ErrIO):
		return 5
	case errors.Is(err, ErrBadFD):
		return 9
	case errors.Is(err, ErrOverloaded):
		return 11 // EAGAIN
	case errors.Is(err, ErrBusy):
		return 16
	case errors.Is(err, ErrExist):
		return 17
	case errors.Is(err, ErrCrossDevice):
		return 18
	case errors.Is(err, ErrNotDir):
		return 20
	case errors.Is(err, ErrIsDir):
		return 21
	case errors.Is(err, ErrInvalid):
		return 22
	case errors.Is(err, ErrTooBig):
		return 27
	case errors.Is(err, ErrNoSpace):
		return 28
	case errors.Is(err, ErrReadOnly):
		return 30
	case errors.Is(err, ErrNameTooLong):
		return 36
	case errors.Is(err, ErrNotEmpty):
		return 39
	case errors.Is(err, ErrCorrupt):
		return 117 // EUCLEAN, "structure needs cleaning", as ext4 uses
	}
	return -1
}

// FromErrno is the inverse of Errno for the sentinel set. It returns nil for
// 0 and ErrInvalid for unknown values so a decoded log never yields a nil
// error for a nonzero errno.
func FromErrno(n int) error {
	switch n {
	case 0:
		return nil
	case 2:
		return ErrNotExist
	case 5:
		return ErrIO
	case 9:
		return ErrBadFD
	case 11:
		return ErrOverloaded
	case 16:
		return ErrBusy
	case 17:
		return ErrExist
	case 18:
		return ErrCrossDevice
	case 20:
		return ErrNotDir
	case 21:
		return ErrIsDir
	case 22:
		return ErrInvalid
	case 27:
		return ErrTooBig
	case 28:
		return ErrNoSpace
	case 30:
		return ErrReadOnly
	case 36:
		return ErrNameTooLong
	case 39:
		return ErrNotEmpty
	case 117:
		return ErrCorrupt
	}
	return ErrInvalid
}
