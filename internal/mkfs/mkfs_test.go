package mkfs

import (
	"errors"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fserr"
	"repro/internal/journal"
)

func TestFormatProducesValidImage(t *testing.T) {
	dev := blockdev.NewMem(2048)
	sb, err := Format(dev, Options{NumInodes: 256, JournalBlocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSuperblock(dev)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *sb {
		t.Error("superblock round trip mismatch")
	}
	// Root inode allocated and a directory.
	blk, off := sb.InodeLoc(sb.RootIno)
	b, _ := dev.ReadBlock(blk)
	root, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
	if err != nil {
		t.Fatal(err)
	}
	if !root.IsDir() || root.Nlink != 2 || root.Size != 0 {
		t.Errorf("root inode = %+v", root)
	}
	// Every other inode record decodes as free.
	for ino := uint32(2); ino < 10; ino++ {
		blk, off := sb.InodeLoc(ino)
		b, _ := dev.ReadBlock(blk)
		rec, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
		if err != nil {
			t.Fatalf("inode %d: %v", ino, err)
		}
		if !rec.IsFree() {
			t.Errorf("fresh inode %d is not free", ino)
		}
	}
}

func TestFormatBitmaps(t *testing.T) {
	dev := blockdev.NewMem(2048)
	sb, err := Format(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ibm, _ := dev.ReadBlock(sb.InodeBitmapStart)
	if !disklayout.TestBit(ibm, 0) || !disklayout.TestBit(ibm, sb.RootIno) {
		t.Error("inode 0 or root not marked allocated")
	}
	if disklayout.TestBit(ibm, sb.RootIno+1) {
		t.Error("inode beyond root marked allocated")
	}
	bbm := make([]byte, 0)
	for i := uint32(0); i < sb.BlockBitmapLen; i++ {
		b, _ := dev.ReadBlock(sb.BlockBitmapStart + i)
		bbm = append(bbm, b...)
	}
	for blk := uint32(0); blk < sb.DataStart; blk++ {
		if !disklayout.TestBit(bbm, blk) {
			t.Fatalf("metadata block %d not marked allocated", blk)
		}
	}
	if disklayout.TestBit(bbm, sb.DataStart) {
		t.Error("first data block marked allocated")
	}
	// Bitmap slack past NumBlocks reads allocated.
	if sb.NumBlocks < sb.BlockBitmapLen*disklayout.BitsPerBlock {
		if !disklayout.TestBit(bbm, sb.NumBlocks) {
			t.Error("bitmap slack not sealed")
		}
	}
}

func TestFormatTooSmall(t *testing.T) {
	dev := blockdev.NewMem(8)
	if _, err := Format(dev, Options{}); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("Format(8 blocks) = %v", err)
	}
}

func TestReadSuperblockRejectsGarbage(t *testing.T) {
	dev := blockdev.NewMem(64)
	if _, err := ReadSuperblock(dev); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("zero image: %v", err)
	}
}

func TestReadSuperblockRejectsTruncatedDevice(t *testing.T) {
	dev := blockdev.NewMem(2048)
	if _, err := Format(dev, Options{}); err != nil {
		t.Fatal(err)
	}
	// Copy the superblock onto a smaller device: it claims more blocks than
	// the device holds.
	small := blockdev.NewMem(64)
	b, _ := dev.ReadBlock(0)
	_ = small.WriteBlock(0, b)
	if _, err := ReadSuperblock(small); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("truncated device: %v", err)
	}
}

func TestRecoverReplaysJournal(t *testing.T) {
	dev := blockdev.NewMem(2048)
	sb, err := Format(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := journal.New(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	tx := &journal.Tx{}
	payload := make([]byte, disklayout.BlockSize)
	payload[0] = 0xAB
	tx.Add(sb.DataStart, payload)
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	_, st, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 {
		t.Errorf("replay stats = %+v", st)
	}
	got, _ := dev.ReadBlock(sb.DataStart)
	if got[0] != 0xAB {
		t.Error("journal replay missed the home write")
	}
}
