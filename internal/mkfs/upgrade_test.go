package mkfs_test

import (
	"bytes"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsck"
	"repro/internal/mkfs"
)

// TestUpgradeExtents converts a legacy-layout image in place and proves the
// three contracts: every regular file flips to the extent map (spine blocks
// reclaimed into chain nodes or freed), fsck stays clean, and a non-legacy
// mount reads back byte-identical content.
func TestUpgradeExtents(t *testing.T) {
	dev := blockdev.NewMem(4096)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 256, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{LegacyLayout: true})
	if err != nil {
		t.Fatal(err)
	}
	payload := func(n int, salt byte) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i)*7 + salt
		}
		return b
	}
	// small: direct-only; big: spans the indirect block; sparse: a hole
	// between two data runs; empty: no data at all.
	want := map[string][]byte{
		"/small": payload(3*disklayout.BlockSize, 1),
		"/big":   payload(20*disklayout.BlockSize, 2),
		"/empty": nil,
	}
	for _, name := range []string{"/small", "/big", "/empty"} {
		fd, err := fs.Create(name, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if data := want[name]; len(data) > 0 {
			if _, err := fs.WriteAt(fd, 0, data); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	sparse := make([]byte, 18*disklayout.BlockSize)
	copy(sparse, payload(2*disklayout.BlockSize, 3))
	tail := payload(2*disklayout.BlockSize, 4)
	copy(sparse[16*disklayout.BlockSize:], tail)
	fd, err := fs.Create("/sparse", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 0, sparse[:2*disklayout.BlockSize]); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 16*disklayout.BlockSize, tail); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	want["/sparse"] = sparse
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}

	n, err := mkfs.UpgradeExtents(dev)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("converted %d files, want 4", n)
	}
	if rep := fsck.Check(dev); !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("fsck after upgrade: %s", p)
		}
	}
	// Every regular file now carries FlagExtents on disk.
	for t2 := uint32(0); t2 < sb.InodeTableLen; t2++ {
		buf, err := dev.ReadBlock(sb.InodeTableStart + t2)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < disklayout.InodesPerBlock; s++ {
			rec, err := disklayout.DecodeInode(buf[s*disklayout.InodeSize:])
			if err != nil {
				continue
			}
			if rec.IsFile() && !rec.IsExtents() {
				t.Errorf("inode %d still on legacy map after upgrade",
					t2*disklayout.InodesPerBlock+uint32(s))
			}
		}
	}

	fs, err = basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Unmount()
	for name, data := range want {
		fd, err := fs.Open(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st, err := fs.Fstat(fd)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size != int64(len(data)) {
			t.Errorf("%s: size %d, want %d", name, st.Size, len(data))
		}
		var got []byte
		if len(data) > 0 {
			got, err = fs.ReadAt(fd, 0, len(data))
			if err != nil {
				t.Fatalf("%s: read: %v", name, err)
			}
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s: content differs after upgrade", name)
		}
		if err := fs.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUpgradeExtentsRejectsDirtyImage pins the precondition: an image that
// was not cleanly unmounted (journal possibly non-empty) must be refused,
// not silently converted under a pending replay.
func TestUpgradeExtentsRejectsDirtyImage(t *testing.T) {
	dev := blockdev.NewMem(2048)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 128, JournalBlocks: 32}); err != nil {
		t.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{LegacyLayout: true})
	if err != nil {
		t.Fatal(err)
	}
	// Mounted = superblock marked dirty on disk.
	if _, err := mkfs.UpgradeExtents(dev); err == nil {
		t.Fatal("upgrade accepted a dirty image")
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if _, err := mkfs.UpgradeExtents(dev); err != nil {
		t.Fatalf("upgrade rejected a clean image: %v", err)
	}
}
