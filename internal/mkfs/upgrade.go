package mkfs

// Offline layout upgrade: convert legacy bmap regular files to the extent
// mapping in place. The two layouts coexist per inode (readers branch on
// FlagExtents), so an image never needs this to be readable — the upgrade
// exists so old images gain the vectored data path's read performance and
// shed their pointer-spine blocks.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
)

// UpgradeExtents converts every legacy regular file on a cleanly-unmounted
// image to the extent layout, in place, and returns how many files were
// converted. For each file the bmap is walked in file order, coalesced into
// extents, and the chain nodes (if the list outgrows the four inline slots)
// are carved out of the spine blocks the conversion frees — so a converted
// file never uses more physical blocks than before, and usually fewer.
// Files so fragmented that the chain would outgrow the freed spine are left
// on the legacy map: the per-inode flag makes mixed images fully valid, and
// forcing those files over would grow the image for no IO win.
//
// The image must be clean (journal empty); run Recover first after a crash.
func UpgradeExtents(dev blockdev.Device) (int, error) {
	sb, err := ReadSuperblock(dev)
	if err != nil {
		return 0, fmt.Errorf("mkfs: upgrade: %w", err)
	}
	if sb.Clean != 1 {
		return 0, fmt.Errorf("mkfs: upgrade: image not cleanly unmounted (run recovery first)")
	}
	// Block bitmap, whole and in memory: spine frees and node reuse below
	// edit it, and it is written back once at the end.
	bbm := make([]byte, int(sb.BlockBitmapLen)*disklayout.BlockSize)
	for i := uint32(0); i < sb.BlockBitmapLen; i++ {
		b, err := dev.ReadBlock(sb.BlockBitmapStart + i)
		if err != nil {
			return 0, fmt.Errorf("mkfs: upgrade: block bitmap: %w", err)
		}
		copy(bbm[int(i)*disklayout.BlockSize:], b)
	}
	converted := 0
	for t := uint32(0); t < sb.InodeTableLen; t++ {
		tblk := sb.InodeTableStart + t
		buf, err := dev.ReadBlock(tblk)
		if err != nil {
			return 0, fmt.Errorf("mkfs: upgrade: inode table block %d: %w", tblk, err)
		}
		dirty := false
		for s := 0; s < disklayout.InodesPerBlock; s++ {
			ino := t*disklayout.InodesPerBlock + uint32(s)
			if ino < 1 || ino >= sb.NumInodes {
				continue
			}
			rec, err := disklayout.DecodeInode(buf[s*disklayout.InodeSize:])
			if err != nil {
				return converted, fmt.Errorf("mkfs: upgrade: inode %d: %w", ino, err)
			}
			if !rec.IsFile() || rec.IsExtents() {
				continue
			}
			ok, err := upgradeFile(dev, sb, rec, bbm)
			if err != nil {
				return converted, fmt.Errorf("mkfs: upgrade: inode %d: %w", ino, err)
			}
			if !ok {
				continue
			}
			disklayout.PutInode(buf[s*disklayout.InodeSize:], rec)
			dirty = true
			converted++
		}
		if dirty {
			if err := dev.WriteBlock(tblk, buf); err != nil {
				return converted, fmt.Errorf("mkfs: upgrade: inode table block %d: %w", tblk, err)
			}
		}
	}
	for i := uint32(0); i < sb.BlockBitmapLen; i++ {
		if err := dev.WriteBlock(sb.BlockBitmapStart+i, bbm[int(i)*disklayout.BlockSize:int(i+1)*disklayout.BlockSize]); err != nil {
			return converted, fmt.Errorf("mkfs: upgrade: block bitmap: %w", err)
		}
	}
	if err := dev.Flush(); err != nil {
		return converted, fmt.Errorf("mkfs: upgrade: flush: %w", err)
	}
	return converted, nil
}

// upgradeFile rewrites one legacy file inode to the extent layout, or
// reports false to leave it as-is. rec and bbm are mutated only on success.
func upgradeFile(dev blockdev.Device, sb *disklayout.Superblock, rec *disklayout.Inode, bbm []byte) (bool, error) {
	type mapping struct{ idx, phys uint32 }
	var maps []mapping
	var spine []uint32
	add := func(idx, p uint32) {
		if p != 0 {
			maps = append(maps, mapping{idx, p})
		}
	}
	for i := uint32(0); i < disklayout.NumDirect; i++ {
		add(i, rec.Direct[i])
	}
	le := binary.LittleEndian
	readPtrs := func(blk uint32) ([]uint32, error) {
		b, err := dev.ReadBlock(blk)
		if err != nil {
			return nil, err
		}
		out := make([]uint32, disklayout.PtrsPerBlock)
		for i := range out {
			out[i] = le.Uint32(b[4*i:])
		}
		return out, nil
	}
	if rec.Indirect != 0 {
		spine = append(spine, rec.Indirect)
		ptrs, err := readPtrs(rec.Indirect)
		if err != nil {
			return false, err
		}
		for i, p := range ptrs {
			add(disklayout.NumDirect+uint32(i), p)
		}
	}
	if rec.DblIndir != 0 {
		spine = append(spine, rec.DblIndir)
		l1, err := readPtrs(rec.DblIndir)
		if err != nil {
			return false, err
		}
		for j, l2blk := range l1 {
			if l2blk == 0 {
				continue
			}
			spine = append(spine, l2blk)
			l2, err := readPtrs(l2blk)
			if err != nil {
				return false, err
			}
			base := disklayout.NumDirect + disklayout.PtrsPerBlock*(1+uint32(j))
			for i, p := range l2 {
				add(base+uint32(i), p)
			}
		}
	}
	// The bmap walk visits file indices in ascending order, so maps is
	// sorted; coalesce runs contiguous in both file and device space.
	var exts []disklayout.Extent
	for _, m := range maps {
		if n := len(exts); n > 0 && exts[n-1].End() == m.idx && exts[n-1].Start+exts[n-1].Len == m.phys {
			exts[n-1].Len++
		} else {
			exts = append(exts, disklayout.Extent{FileOff: m.idx, Start: m.phys, Len: 1})
		}
	}
	nodesNeeded := 0
	if len(exts) > disklayout.MaxInlineExtents {
		rest := len(exts) - disklayout.MaxInlineExtents
		nodesNeeded = (rest + disklayout.ExtentsPerNode - 1) / disklayout.ExtentsPerNode
	}
	if nodesNeeded > len(spine) {
		return false, nil // over-fragmented: stays on the legacy map
	}
	// Chain nodes reuse freed spine blocks (already allocated in the
	// bitmap); the remainder of the spine is freed.
	nodes := spine[:nodesNeeded]
	for _, blk := range spine[nodesNeeded:] {
		disklayout.ClearBit(bbm, blk)
	}
	for i := 0; i < nodesNeeded; i++ {
		lo := disklayout.MaxInlineExtents + i*disklayout.ExtentsPerNode
		hi := lo + disklayout.ExtentsPerNode
		if hi > len(exts) {
			hi = len(exts)
		}
		var next uint32
		if i+1 < nodesNeeded {
			next = nodes[i+1]
		}
		enc := disklayout.EncodeExtentNode(&disklayout.ExtentNode{Next: next, Extents: exts[lo:hi]})
		if err := dev.WriteBlock(nodes[i], enc); err != nil {
			return false, err
		}
	}
	head := exts
	if len(head) > disklayout.MaxInlineExtents {
		head = head[:disklayout.MaxInlineExtents]
	}
	rec.Direct = [disklayout.NumDirect]uint32{}
	rec.SetInlineExtents(head)
	rec.Indirect = 0
	if nodesNeeded > 0 {
		rec.Indirect = nodes[0]
	}
	rec.DblIndir = 0
	rec.Flags |= disklayout.FlagExtents
	return true, nil
}
