package mkfs

// Regression tests for the backup superblock, added after the torture
// campaign showed every workload unit losing its image to a torn write of
// block 0 at the unmount checkpoint: with a single superblock copy, the
// geometry needed to locate the journal died with the block that was torn.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fserr"
)

// torn returns a half-old/half-new corruption of blk's current content, the
// shape a power-cut write leaves behind.
func torn(dev blockdev.Device, blk uint32, t *testing.T) []byte {
	t.Helper()
	b, err := dev.ReadBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	out := bytes.Clone(b)
	for i := disklayout.BlockSize / 2; i < disklayout.BlockSize; i++ {
		out[i] ^= 0xFF
	}
	return out
}

func TestFormatWritesBackupSuperblock(t *testing.T) {
	dev := blockdev.NewMem(2048)
	sb, err := Format(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sb.BackupBlk() != dev.NumBlocks()-1 {
		t.Fatalf("BackupBlk() = %d, want %d", sb.BackupBlk(), dev.NumBlocks()-1)
	}
	bsb, err := ReadBackupSuperblock(dev)
	if err != nil {
		t.Fatal(err)
	}
	if *bsb != *sb {
		t.Error("backup superblock differs from primary")
	}
	// The backup's block is allocated in the bitmap so no allocator can ever
	// hand it out as a data block.
	bbm := make([]byte, 0)
	for i := uint32(0); i < sb.BlockBitmapLen; i++ {
		b, _ := dev.ReadBlock(sb.BlockBitmapStart + i)
		bbm = append(bbm, b...)
	}
	if !disklayout.TestBit(bbm, sb.BackupBlk()) {
		t.Error("backup superblock block is free in the bitmap")
	}
}

func TestRecoverFallsBackToBackupAndHealsPrimary(t *testing.T) {
	dev := blockdev.NewMem(2048)
	sb, err := Format(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlock(0, torn(dev, 0, t)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSuperblock(dev); !errors.Is(err, fserr.ErrCorrupt) {
		t.Fatalf("torn primary read = %v, want ErrCorrupt", err)
	}
	got, _, err := Recover(dev)
	if err != nil {
		t.Fatalf("Recover with torn primary: %v", err)
	}
	if *got != *sb {
		t.Error("recovered superblock differs from the formatted one")
	}
	// Recovery self-heals: the primary is valid again.
	healed, err := ReadSuperblock(dev)
	if err != nil {
		t.Fatalf("primary not healed: %v", err)
	}
	if *healed != *sb {
		t.Error("healed primary differs from the formatted superblock")
	}
}

func TestRecoverHealsTornBackup(t *testing.T) {
	dev := blockdev.NewMem(2048)
	sb, err := Format(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bb := sb.BackupBlk()
	if err := dev.WriteBlock(bb, torn(dev, bb, t)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dev); err != nil {
		t.Fatalf("Recover with torn backup: %v", err)
	}
	bsb, err := ReadBackupSuperblock(dev)
	if err != nil {
		t.Fatalf("backup not healed: %v", err)
	}
	if *bsb != *sb {
		t.Error("healed backup differs from the formatted superblock")
	}
}

func TestRecoverFailsWhenBothCopiesDead(t *testing.T) {
	dev := blockdev.NewMem(2048)
	sb, err := Format(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlock(0, torn(dev, 0, t)); err != nil {
		t.Fatal(err)
	}
	bb := sb.BackupBlk()
	if err := dev.WriteBlock(bb, torn(dev, bb, t)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dev); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("Recover with both copies torn = %v, want ErrCorrupt", err)
	}
}

func TestReadBackupSuperblockRejectsWrongGeometry(t *testing.T) {
	dev := blockdev.NewMem(2048)
	sb, err := Format(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Graft the backup onto a larger device: it sits at the wrong block and
	// describes the wrong size, so it must not be trusted for recovery.
	big := blockdev.NewMem(4096)
	b, err := dev.ReadBlock(sb.BackupBlk())
	if err != nil {
		t.Fatal(err)
	}
	if err := big.WriteBlock(big.NumBlocks()-1, b); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBackupSuperblock(big); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("relocated backup = %v, want ErrCorrupt", err)
	}
}
