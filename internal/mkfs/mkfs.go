// Package mkfs formats a block device with the shared on-disk layout:
// superblock, bitmaps with all metadata blocks pre-allocated, an empty inode
// table, a reset journal, and a root directory inode with no data blocks.
package mkfs

import (
	"errors"
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fserr"
	"repro/internal/journal"
)

// Options configures image creation. Zero values select defaults.
type Options struct {
	// NumInodes is the inode table capacity; 0 derives it from the size.
	NumInodes uint32
	// JournalBlocks is the journal region length; 0 selects 64.
	JournalBlocks uint32
}

// Format writes a fresh filesystem across the whole of dev and returns its
// superblock.
func Format(dev blockdev.Device, opts Options) (*disklayout.Superblock, error) {
	sb, err := disklayout.Geometry(dev.NumBlocks(), opts.NumInodes, opts.JournalBlocks)
	if err != nil {
		return nil, err
	}

	// Inode bitmap: ino 0 (nil) and the root are allocated.
	ibm := make([]byte, int(sb.InodeBitmapLen)*disklayout.BlockSize)
	disklayout.SetBit(ibm, 0)
	disklayout.SetBit(ibm, sb.RootIno)

	// Block bitmap: every metadata block [0, DataStart) is permanently
	// allocated; the data region starts free.
	bbm := make([]byte, int(sb.BlockBitmapLen)*disklayout.BlockSize)
	for b := uint32(0); b < sb.DataStart; b++ {
		disklayout.SetBit(bbm, b)
	}
	// Bits past NumBlocks (bitmap slack) are set so they can never be
	// allocated.
	for b := sb.NumBlocks; b < sb.BlockBitmapLen*disklayout.BitsPerBlock; b++ {
		disklayout.SetBit(bbm, b)
	}
	// The backup superblock's block is permanently allocated too, so neither
	// filesystem can hand it out as a data block.
	disklayout.SetBit(bbm, sb.BackupBlk())

	if err := writeRegion(dev, sb.InodeBitmapStart, ibm); err != nil {
		return nil, fmt.Errorf("mkfs: inode bitmap: %w", err)
	}
	if err := writeRegion(dev, sb.BlockBitmapStart, bbm); err != nil {
		return nil, fmt.Errorf("mkfs: block bitmap: %w", err)
	}

	// Inode table: every record is a valid, checksummed free inode so reads
	// of never-allocated inodes pass integrity checks.
	tableBlock := make([]byte, disklayout.BlockSize)
	free := &disklayout.Inode{} // TypeFree
	for i := 0; i < disklayout.InodesPerBlock; i++ {
		disklayout.PutInode(tableBlock[i*disklayout.InodeSize:], free)
	}
	for b := uint32(0); b < sb.InodeTableLen; b++ {
		if err := dev.WriteBlock(sb.InodeTableStart+b, tableBlock); err != nil {
			return nil, fmt.Errorf("mkfs: inode table block %d: %w", b, err)
		}
	}

	// Root directory: allocated, empty, no data blocks.
	rootBlk, rootOff := sb.InodeLoc(sb.RootIno)
	rb, err := dev.ReadBlock(rootBlk)
	if err != nil {
		return nil, fmt.Errorf("mkfs: read root inode block: %w", err)
	}
	root := &disklayout.Inode{
		Mode:  disklayout.MkMode(disklayout.TypeDir, 0o755),
		Nlink: 2,
	}
	disklayout.PutInode(rb[rootOff:], root)
	if err := dev.WriteBlock(rootBlk, rb); err != nil {
		return nil, fmt.Errorf("mkfs: write root inode: %w", err)
	}

	// Journal superblock: an empty chain starting at txid 1, so both replay
	// and the runtime journal find a valid cursor.
	jsb := make([]byte, disklayout.BlockSize)
	journal.EncodeJSB(jsb, 1, 1)
	if err := dev.WriteBlock(sb.JournalStart, jsb); err != nil {
		return nil, fmt.Errorf("mkfs: journal superblock: %w", err)
	}

	// Backup first, then primary: the image is only valid once the primary
	// lands, and the backup is already in place by then.
	if err := dev.WriteBlock(sb.BackupBlk(), disklayout.EncodeSuperblock(sb)); err != nil {
		return nil, fmt.Errorf("mkfs: backup superblock: %w", err)
	}
	if err := dev.WriteBlock(0, disklayout.EncodeSuperblock(sb)); err != nil {
		return nil, fmt.Errorf("mkfs: superblock: %w", err)
	}
	if err := dev.Flush(); err != nil {
		return nil, fmt.Errorf("mkfs: flush: %w", err)
	}
	return sb, nil
}

func writeRegion(dev blockdev.Device, start uint32, data []byte) error {
	for off, blk := 0, start; off < len(data); off, blk = off+disklayout.BlockSize, blk+1 {
		if err := dev.WriteBlock(blk, data[off:off+disklayout.BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSuperblock loads and validates the superblock from a formatted device.
func ReadSuperblock(dev blockdev.Device) (*disklayout.Superblock, error) {
	b, err := dev.ReadBlock(0)
	if err != nil {
		return nil, fmt.Errorf("mkfs: read superblock: %w", err)
	}
	sb, err := disklayout.DecodeSuperblock(b)
	if err != nil {
		return nil, err
	}
	if sb.NumBlocks > dev.NumBlocks() {
		return nil, fmt.Errorf("mkfs: superblock claims %d blocks but device has %d: %w",
			sb.NumBlocks, dev.NumBlocks(), fserr.ErrCorrupt)
	}
	return sb, nil
}

// ReadBackupSuperblock loads and validates the backup superblock from the
// last block of the device. The backup must describe an image whose final
// block is exactly where it was found — a truncated or relocated image fails
// rather than recovering against the wrong geometry.
func ReadBackupSuperblock(dev blockdev.Device) (*disklayout.Superblock, error) {
	blk := dev.NumBlocks() - 1
	b, err := dev.ReadBlock(blk)
	if err != nil {
		return nil, fmt.Errorf("mkfs: read backup superblock: %w", err)
	}
	sb, err := disklayout.DecodeSuperblock(b)
	if err != nil {
		return nil, err
	}
	if sb.NumBlocks != dev.NumBlocks() {
		return nil, fmt.Errorf("mkfs: backup superblock claims %d blocks but device has %d: %w",
			sb.NumBlocks, dev.NumBlocks(), fserr.ErrCorrupt)
	}
	return sb, nil
}

// Recover replays the journal on a formatted device, the crash-recovery step
// both mount and the contained reboot perform before trusting on-disk state.
//
// The primary superblock is rewritten in place at mount, unmount, and
// journal checkpoints, so a crash can leave it torn. When the primary fails
// validation, Recover falls back to the backup copy in the last block to
// locate the journal, replays it (which itself rewrites block 0 when the
// torn write was a journaled checkpoint), and self-heals whichever copy is
// still invalid afterwards so both copies leave recovery intact.
func Recover(dev blockdev.Device) (*disklayout.Superblock, journal.ReplayStats, error) {
	sb, primaryErr := ReadSuperblock(dev)
	if primaryErr != nil {
		if !errors.Is(primaryErr, fserr.ErrCorrupt) {
			return nil, journal.ReplayStats{}, primaryErr
		}
		bsb, berr := ReadBackupSuperblock(dev)
		if berr != nil {
			// Both copies gone: report the primary's failure, the one a
			// single-superblock layout would have shown.
			return nil, journal.ReplayStats{}, primaryErr
		}
		sb = bsb
	}
	st, err := journal.Replay(dev, sb)
	if err != nil {
		return nil, st, err
	}
	if st.Blocks > 0 || primaryErr != nil {
		// A replayed transaction may have targeted block 0 (the sync path
		// journals superblock clock updates), so the copy read above can be
		// stale. Re-read after replay.
		fresh, err := ReadSuperblock(dev)
		switch {
		case err == nil:
			sb = fresh
		case errors.Is(err, fserr.ErrCorrupt) && primaryErr != nil:
			// Replay did not repair the torn primary (the tear came from an
			// in-place mount/unmount write, not a journaled one): heal it
			// from the copy that got us here.
			if werr := dev.WriteBlock(0, disklayout.EncodeSuperblock(sb)); werr != nil {
				return nil, st, fmt.Errorf("mkfs: heal primary superblock: %w", werr)
			}
		default:
			return nil, st, fmt.Errorf("mkfs: reload superblock after replay: %w", err)
		}
	}
	// Heal the backup if it is the torn copy, so post-recovery images always
	// carry two valid superblocks.
	if bb, err := dev.ReadBlock(sb.BackupBlk()); err == nil {
		if _, derr := disklayout.DecodeSuperblock(bb); derr != nil {
			if werr := dev.WriteBlock(sb.BackupBlk(), disklayout.EncodeSuperblock(sb)); werr != nil {
				return nil, st, fmt.Errorf("mkfs: heal backup superblock: %w", werr)
			}
		}
	}
	return sb, st, nil
}
