// Package oplog implements operation recording: the execution trace the RAE
// supervisor keeps of every state-changing operation since the last durable
// point.
//
// The paper (§3.2): "the base filesystem must record the operation sequence
// that tracks the gap between the applications' view and the on-disk state.
// Essentially, this is an execution trace that records the order that
// operations were handled ... The recorded operation sequence also reflects
// the outcome of the operations, such as the return value, new file
// descriptors, and new inode numbers." Outcomes are what the shadow's
// constrained mode validates during recovery.
//
// The Op type doubles as the neutral operation representation used by the
// workload generators and the differential tester, so the exact trace a
// workload produced is the exact trace the shadow replays.
package oplog

import (
	"fmt"
	"sync"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/telemetry"
)

// Kind enumerates the recordable operations: every mutating call plus the
// descriptor-lifecycle calls the shadow needs to reconstruct the fd table.
type Kind int

// Operation kinds.
const (
	KMkdir Kind = iota
	KRmdir
	KCreate
	KOpen
	KClose
	KWrite
	KTruncate
	KUnlink
	KRename
	KLink
	KSymlink
	KSetPerm
	KFsync
	KSync
	// KReadDirProbe and KStatProbe are read-only probes used by workloads
	// and the differential tester; the supervisor never records them.
	KReadDirProbe
	KStatProbe
	KReadProbe
)

// String returns the kind's operation name.
func (k Kind) String() string {
	names := [...]string{"mkdir", "rmdir", "create", "open", "close", "write",
		"truncate", "unlink", "rename", "link", "symlink", "setperm", "fsync",
		"sync", "readdir", "stat", "read"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Mutating reports whether the kind changes essential state (and so must be
// recorded).
func (k Kind) Mutating() bool {
	switch k {
	case KReadDirProbe, KStatProbe, KReadProbe:
		return false
	}
	return true
}

// Op is one operation with its arguments and, once executed, its outcome.
type Op struct {
	// Seq is the position in the recorded sequence.
	Seq uint64
	// Kind selects the operation.
	Kind Kind
	// Path is the primary path (linkPath for symlink).
	Path string
	// Path2 is the secondary path: rename/link target, symlink target text.
	Path2 string
	// FD is the descriptor argument for close/write/fsync/read probes.
	FD fsapi.FD
	// Off is the offset for write and read probes.
	Off int64
	// Data is the write payload (shared data pages in the paper's terms: the
	// recorded trace carries buffered write contents so the shadow can
	// reproduce them without the base's memory).
	Data []byte
	// Perm is the mode for mkdir/create/setperm.
	Perm uint16
	// Size is the truncate target or read-probe length.
	Size int64

	// Outcome, filled by Apply.

	// Errno is the fserr errno of the result (0 on success).
	Errno int
	// RetFD is the descriptor returned by create/open.
	RetFD fsapi.FD
	// RetIno is the inode number the operation allocated or targeted,
	// validated by the shadow's constrained mode.
	RetIno uint32
	// RetN is the byte count returned by write.
	RetN int
	// RetData is the data returned by a read probe, so a recovery that
	// re-executes an in-flight read on the shadow can hand the application
	// the bytes without touching the base again.
	RetData []byte
}

// Err reconstructs the outcome error from the recorded errno.
func (o *Op) Err() error { return fserr.FromErrno(o.Errno) }

// Apply executes the operation against any filesystem implementation and
// records the outcome into the op, returning the outcome error. This single
// executor serves the base (recording), the shadow (re-execution), the
// model (oracle), and the differential tester.
func Apply(fs fsapi.FS, o *Op) error {
	switch o.Kind {
	case KMkdir:
		err := fs.Mkdir(o.Path, o.Perm)
		o.Errno = fserr.Errno(err)
		if err == nil {
			if st, serr := fs.Stat(o.Path); serr == nil {
				o.RetIno = st.Ino
			}
		}
		return err
	case KRmdir:
		err := fs.Rmdir(o.Path)
		o.Errno = fserr.Errno(err)
		return err
	case KCreate:
		fd, err := fs.Create(o.Path, o.Perm)
		o.Errno = fserr.Errno(err)
		o.RetFD = fd
		if err == nil {
			if st, serr := fs.Fstat(fd); serr == nil {
				o.RetIno = st.Ino
			}
		}
		return err
	case KOpen:
		fd, err := fs.Open(o.Path)
		o.Errno = fserr.Errno(err)
		o.RetFD = fd
		if err == nil {
			if st, serr := fs.Fstat(fd); serr == nil {
				o.RetIno = st.Ino
			}
		}
		return err
	case KClose:
		err := fs.Close(o.FD)
		o.Errno = fserr.Errno(err)
		return err
	case KWrite:
		n, err := fs.WriteAt(o.FD, o.Off, o.Data)
		o.Errno = fserr.Errno(err)
		o.RetN = n
		return err
	case KTruncate:
		err := fs.Truncate(o.Path, o.Size)
		o.Errno = fserr.Errno(err)
		return err
	case KUnlink:
		err := fs.Unlink(o.Path)
		o.Errno = fserr.Errno(err)
		return err
	case KRename:
		err := fs.Rename(o.Path, o.Path2)
		o.Errno = fserr.Errno(err)
		return err
	case KLink:
		err := fs.Link(o.Path, o.Path2)
		o.Errno = fserr.Errno(err)
		return err
	case KSymlink:
		err := fs.Symlink(o.Path2, o.Path)
		o.Errno = fserr.Errno(err)
		return err
	case KSetPerm:
		err := fs.SetPerm(o.Path, o.Perm)
		o.Errno = fserr.Errno(err)
		return err
	case KFsync:
		err := fs.Fsync(o.FD)
		o.Errno = fserr.Errno(err)
		return err
	case KSync:
		err := fs.Sync()
		o.Errno = fserr.Errno(err)
		return err
	case KReadDirProbe:
		_, err := fs.Readdir(o.Path)
		o.Errno = fserr.Errno(err)
		return err
	case KStatProbe:
		st, err := fs.Stat(o.Path)
		o.Errno = fserr.Errno(err)
		if err == nil {
			o.RetIno = st.Ino
		}
		return err
	case KReadProbe:
		b, err := fs.ReadAt(o.FD, o.Off, int(o.Size))
		o.Errno = fserr.Errno(err)
		o.RetN = len(b)
		o.RetData = b
		return err
	}
	return fmt.Errorf("oplog: unknown kind %d: %w", o.Kind, fserr.ErrInvalid)
}

// Clone deep-copies the op (including the write payload).
func (o *Op) Clone() *Op {
	cp := *o
	if o.Data != nil {
		cp.Data = make([]byte, len(o.Data))
		copy(cp.Data, o.Data)
	}
	if o.RetData != nil {
		cp.RetData = make([]byte, len(o.RetData))
		copy(cp.RetData, o.RetData)
	}
	return &cp
}

// String formats the op for discrepancy reports.
func (o *Op) String() string {
	switch o.Kind {
	case KRename, KLink:
		return fmt.Sprintf("#%d %s(%q, %q) -> errno %d", o.Seq, o.Kind, o.Path, o.Path2, o.Errno)
	case KSymlink:
		return fmt.Sprintf("#%d symlink(%q -> %q) -> errno %d", o.Seq, o.Path, o.Path2, o.Errno)
	case KWrite:
		return fmt.Sprintf("#%d write(fd %d, off %d, %d bytes) -> (%d, errno %d)",
			o.Seq, o.FD, o.Off, len(o.Data), o.RetN, o.Errno)
	case KClose, KFsync:
		return fmt.Sprintf("#%d %s(fd %d) -> errno %d", o.Seq, o.Kind, o.FD, o.Errno)
	case KSync:
		return fmt.Sprintf("#%d sync() -> errno %d", o.Seq, o.Errno)
	case KCreate, KOpen:
		return fmt.Sprintf("#%d %s(%q) -> (fd %d, ino %d, errno %d)",
			o.Seq, o.Kind, o.Path, o.RetFD, o.RetIno, o.Errno)
	default:
		return fmt.Sprintf("#%d %s(%q) -> errno %d", o.Seq, o.Kind, o.Path, o.Errno)
	}
}

// Log is the supervisor's record of operations since the last stable point,
// together with the descriptor table and logical clock captured at that
// point — everything the shadow needs to reconstruct state from trusted
// on-disk contents.
type Log struct {
	mu         sync.Mutex
	ops        []*Op
	next       uint64
	baseFDs    map[fsapi.FD]uint32
	startClock uint64
	peakLen    int

	telLen                    *telemetry.Gauge
	telAppends, telTruncation *telemetry.Counter
}

// SetTelemetry installs the live-length gauge ("oplog.len") and the
// append/truncation counters ("oplog.appends", "oplog.truncations") from s.
func (l *Log) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.telLen = s.Gauge("oplog.len")
	l.telAppends = s.Counter("oplog.appends")
	l.telTruncation = s.Counter("oplog.truncations")
}

// NewLog returns an empty log whose stable point is a fresh filesystem (no
// open descriptors, clock zero).
func NewLog() *Log {
	return &Log{baseFDs: map[fsapi.FD]uint32{}}
}

// Append records a completed operation (the op's outcome fields must already
// be filled). Non-mutating kinds are ignored.
func (l *Log) Append(o *Op) {
	if !o.Kind.Mutating() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := o.Clone()
	cp.Seq = l.next
	l.next++
	l.ops = append(l.ops, cp)
	if len(l.ops) > l.peakLen {
		l.peakLen = len(l.ops)
	}
	l.telAppends.Inc()
	l.telLen.Set(int64(len(l.ops)))
}

// Stable marks a new durable point: all recorded operations are now on disk,
// so they are discarded; the descriptor table and clock snapshots replace
// the old ones. ("When ... the buffered updates are flushed to disk, the
// corresponding recorded operations can be discarded.")
func (l *Log) Stable(fds map[fsapi.FD]uint32, clock uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ops = nil
	l.baseFDs = make(map[fsapi.FD]uint32, len(fds))
	for fd, ino := range fds {
		l.baseFDs[fd] = ino
	}
	l.startClock = clock
	l.telTruncation.Inc()
	l.telLen.Set(0)
}

// Snapshot returns the recovery input: the ops since the stable point (deep
// copies), the descriptor table at the stable point, and the clock then.
func (l *Log) Snapshot() (ops []*Op, fds map[fsapi.FD]uint32, clock uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ops = make([]*Op, len(l.ops))
	for i, o := range l.ops {
		ops[i] = o.Clone()
	}
	fds = make(map[fsapi.FD]uint32, len(l.baseFDs))
	for fd, ino := range l.baseFDs {
		fds[fd] = ino
	}
	return ops, fds, l.startClock
}

// Len returns the number of recorded operations since the stable point.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops)
}

// PeakLen returns the largest log length observed, an experiment metric for
// recovery-cost studies.
func (l *Log) PeakLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peakLen
}

// ApproxBytes estimates the log's memory footprint (op structs plus write
// payloads), reported by the recording-overhead experiment.
func (l *Log) ApproxBytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0
	for _, o := range l.ops {
		total += 96 + len(o.Path) + len(o.Path2) + len(o.Data)
	}
	return total
}
