// Package oplog implements operation recording: the execution trace the RAE
// supervisor keeps of every state-changing operation since the last durable
// point.
//
// The paper (§3.2): "the base filesystem must record the operation sequence
// that tracks the gap between the applications' view and the on-disk state.
// Essentially, this is an execution trace that records the order that
// operations were handled ... The recorded operation sequence also reflects
// the outcome of the operations, such as the return value, new file
// descriptors, and new inode numbers." Outcomes are what the shadow's
// constrained mode validates during recovery.
//
// The Op type doubles as the neutral operation representation used by the
// workload generators and the differential tester, so the exact trace a
// workload produced is the exact trace the shadow replays.
package oplog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/telemetry"
)

// Kind enumerates the recordable operations: every mutating call plus the
// descriptor-lifecycle calls the shadow needs to reconstruct the fd table.
type Kind int

// Operation kinds.
const (
	KMkdir Kind = iota
	KRmdir
	KCreate
	KOpen
	KClose
	KWrite
	KTruncate
	KUnlink
	KRename
	KLink
	KSymlink
	KSetPerm
	KFsync
	KSync
	// KReadDirProbe and KStatProbe are read-only probes used by workloads
	// and the differential tester; the supervisor never records them.
	KReadDirProbe
	KStatProbe
	KReadProbe
)

// String returns the kind's operation name.
func (k Kind) String() string {
	names := [...]string{"mkdir", "rmdir", "create", "open", "close", "write",
		"truncate", "unlink", "rename", "link", "symlink", "setperm", "fsync",
		"sync", "readdir", "stat", "read"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Mutating reports whether the kind changes essential state (and so must be
// recorded).
func (k Kind) Mutating() bool {
	switch k {
	case KReadDirProbe, KStatProbe, KReadProbe:
		return false
	}
	return true
}

// Op is one operation with its arguments and, once executed, its outcome.
type Op struct {
	// Seq is the position in the recorded sequence.
	Seq uint64
	// Kind selects the operation.
	Kind Kind
	// Path is the primary path (linkPath for symlink).
	Path string
	// Path2 is the secondary path: rename/link target, symlink target text.
	Path2 string
	// FD is the descriptor argument for close/write/fsync/read probes.
	FD fsapi.FD
	// Off is the offset for write and read probes.
	Off int64
	// Data is the write payload (shared data pages in the paper's terms: the
	// recorded trace carries buffered write contents so the shadow can
	// reproduce them without the base's memory).
	Data []byte
	// Perm is the mode for mkdir/create/setperm.
	Perm uint16
	// Size is the truncate target or read-probe length.
	Size int64

	// Outcome, filled by Apply.

	// Errno is the fserr errno of the result (0 on success).
	Errno int
	// RetFD is the descriptor returned by create/open.
	RetFD fsapi.FD
	// RetIno is the inode number the operation allocated or targeted,
	// validated by the shadow's constrained mode.
	RetIno uint32
	// RetN is the byte count returned by write.
	RetN int
	// RetData is the data returned by a read probe, so a recovery that
	// re-executes an in-flight read on the shadow can hand the application
	// the bytes without touching the base again.
	RetData []byte
}

// Err reconstructs the outcome error from the recorded errno.
func (o *Op) Err() error { return fserr.FromErrno(o.Errno) }

// Apply executes the operation against any filesystem implementation and
// records the outcome into the op, returning the outcome error. This single
// executor serves the base (recording), the shadow (re-execution), the
// model (oracle), and the differential tester.
func Apply(fs fsapi.FS, o *Op) error {
	switch o.Kind {
	case KMkdir:
		err := fs.Mkdir(o.Path, o.Perm)
		o.Errno = fserr.Errno(err)
		if err == nil {
			if st, serr := fs.Stat(o.Path); serr == nil {
				o.RetIno = st.Ino
			}
		}
		return err
	case KRmdir:
		err := fs.Rmdir(o.Path)
		o.Errno = fserr.Errno(err)
		return err
	case KCreate:
		fd, err := fs.Create(o.Path, o.Perm)
		o.Errno = fserr.Errno(err)
		o.RetFD = fd
		if err == nil {
			if st, serr := fs.Fstat(fd); serr == nil {
				o.RetIno = st.Ino
			}
		}
		return err
	case KOpen:
		fd, err := fs.Open(o.Path)
		o.Errno = fserr.Errno(err)
		o.RetFD = fd
		if err == nil {
			if st, serr := fs.Fstat(fd); serr == nil {
				o.RetIno = st.Ino
			}
		}
		return err
	case KClose:
		err := fs.Close(o.FD)
		o.Errno = fserr.Errno(err)
		return err
	case KWrite:
		n, err := fs.WriteAt(o.FD, o.Off, o.Data)
		o.Errno = fserr.Errno(err)
		o.RetN = n
		return err
	case KTruncate:
		err := fs.Truncate(o.Path, o.Size)
		o.Errno = fserr.Errno(err)
		return err
	case KUnlink:
		err := fs.Unlink(o.Path)
		o.Errno = fserr.Errno(err)
		return err
	case KRename:
		err := fs.Rename(o.Path, o.Path2)
		o.Errno = fserr.Errno(err)
		return err
	case KLink:
		err := fs.Link(o.Path, o.Path2)
		o.Errno = fserr.Errno(err)
		return err
	case KSymlink:
		err := fs.Symlink(o.Path2, o.Path)
		o.Errno = fserr.Errno(err)
		return err
	case KSetPerm:
		err := fs.SetPerm(o.Path, o.Perm)
		o.Errno = fserr.Errno(err)
		return err
	case KFsync:
		err := fs.Fsync(o.FD)
		o.Errno = fserr.Errno(err)
		return err
	case KSync:
		err := fs.Sync()
		o.Errno = fserr.Errno(err)
		return err
	case KReadDirProbe:
		_, err := fs.Readdir(o.Path)
		o.Errno = fserr.Errno(err)
		return err
	case KStatProbe:
		st, err := fs.Stat(o.Path)
		o.Errno = fserr.Errno(err)
		if err == nil {
			o.RetIno = st.Ino
		}
		return err
	case KReadProbe:
		b, err := fs.ReadAt(o.FD, o.Off, int(o.Size))
		o.Errno = fserr.Errno(err)
		o.RetN = len(b)
		o.RetData = b
		return err
	}
	return fmt.Errorf("oplog: unknown kind %d: %w", o.Kind, fserr.ErrInvalid)
}

// Clone deep-copies the op (including the write payload).
func (o *Op) Clone() *Op {
	cp := *o
	if o.Data != nil {
		cp.Data = make([]byte, len(o.Data))
		copy(cp.Data, o.Data)
	}
	if o.RetData != nil {
		cp.RetData = make([]byte, len(o.RetData))
		copy(cp.RetData, o.RetData)
	}
	return &cp
}

// String formats the op for discrepancy reports.
func (o *Op) String() string {
	switch o.Kind {
	case KRename, KLink:
		return fmt.Sprintf("#%d %s(%q, %q) -> errno %d", o.Seq, o.Kind, o.Path, o.Path2, o.Errno)
	case KSymlink:
		return fmt.Sprintf("#%d symlink(%q -> %q) -> errno %d", o.Seq, o.Path, o.Path2, o.Errno)
	case KWrite:
		return fmt.Sprintf("#%d write(fd %d, off %d, %d bytes) -> (%d, errno %d)",
			o.Seq, o.FD, o.Off, len(o.Data), o.RetN, o.Errno)
	case KClose, KFsync:
		return fmt.Sprintf("#%d %s(fd %d) -> errno %d", o.Seq, o.Kind, o.FD, o.Errno)
	case KSync:
		return fmt.Sprintf("#%d sync() -> errno %d", o.Seq, o.Errno)
	case KCreate, KOpen:
		return fmt.Sprintf("#%d %s(%q) -> (fd %d, ino %d, errno %d)",
			o.Seq, o.Kind, o.Path, o.RetFD, o.RetIno, o.Errno)
	default:
		return fmt.Sprintf("#%d %s(%q) -> errno %d", o.Seq, o.Kind, o.Path, o.Errno)
	}
}

// logShards is the stripe count of the log's per-shard segments. Appends
// from different goroutines land on different shards (goroutine-affine
// hashing), so recording never funnels concurrent writers through one
// mutex; Snapshot merges the segments by sequence number.
const logShards = 16

// logShard is one append segment, padded so two shards' mutexes never share
// a cache line.
type logShard struct {
	mu  sync.Mutex
	ops []*Op
	_   [24]byte
}

// shardIndex picks a shard for the calling goroutine. Goroutine stacks are
// distinct allocations, so the address of a local is a cheap proxy for
// goroutine identity (the same trick telemetry's sharded counters use).
func shardIndex() uint32 {
	var probe byte
	h := uint32(uintptr(unsafe.Pointer(&probe)) >> 4)
	h *= 2654435761 // Knuth multiplicative hash
	return (h >> 16) & (logShards - 1)
}

// Log is the supervisor's record of operations since the last stable point,
// together with the descriptor table and logical clock captured at that
// point — everything the shadow needs to reconstruct state from trusted
// on-disk contents.
//
// Recording is lock-striped: the sequence number comes from one atomic, the
// op lands in a goroutine-affine shard, and only Snapshot/Watermark/Stable
// touch every shard. The total order that shadow replay needs is the Seq
// order; the supervisor guarantees it is a valid serialization by holding
// its per-resource record locks across execute+append for conflicting ops.
type Log struct {
	// next is the next sequence number; claimed inside a shard lock so that
	// Watermark (which holds all shard locks) never observes a claimed-but-
	// not-yet-inserted sequence.
	next   atomic.Uint64
	length atomic.Int64
	peak   atomic.Int64
	shards [logShards]logShard

	// stableMu guards the stable-point snapshot (descriptor table + clock).
	stableMu   sync.Mutex
	baseFDs    map[fsapi.FD]uint32
	startClock uint64
	// stableSeq is the watermark of the most recent truncation: every op with
	// Seq < stableSeq is durable and discarded. The recovery engine keys its
	// warm replayer on it.
	stableSeq uint64

	// Telemetry instruments are installed once, before concurrent use.
	telLen                    *telemetry.Gauge
	telAppends, telTruncation *telemetry.Counter
	telAppendNs               *telemetry.Histogram
}

// SetTelemetry installs the live-length gauge ("oplog.len"), the
// append/truncation counters ("oplog.appends", "oplog.truncations"), and the
// append-latency histogram ("oplog.append_ns") from s. It must be called
// before the log is shared between goroutines (the supervisor calls it at
// Mount).
func (l *Log) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	l.telLen = s.Gauge("oplog.len")
	l.telAppends = s.Counter("oplog.appends")
	l.telTruncation = s.Counter("oplog.truncations")
	l.telAppendNs = s.Histogram("oplog.append_ns")
}

// NewLog returns an empty log whose stable point is a fresh filesystem (no
// open descriptors, clock zero).
func NewLog() *Log {
	return &Log{baseFDs: map[fsapi.FD]uint32{}}
}

// Append records a completed operation (the op's outcome fields must already
// be filled). Non-mutating kinds are ignored.
func (l *Log) Append(o *Op) {
	if !o.Kind.Mutating() {
		return
	}
	tm := telemetry.StartTimer(l.telAppendNs)
	cp := o.Clone()
	s := &l.shards[shardIndex()]
	s.mu.Lock()
	cp.Seq = l.next.Add(1) - 1
	s.ops = append(s.ops, cp)
	s.mu.Unlock()
	n := l.length.Add(1)
	for {
		p := l.peak.Load()
		if n <= p || l.peak.CompareAndSwap(p, n) {
			break
		}
	}
	l.telAppends.Inc()
	l.telLen.Set(n)
	tm.Stop()
}

// lockAll acquires every shard lock in index order; unlockAll releases them.
func (l *Log) lockAll() {
	for i := range l.shards {
		l.shards[i].mu.Lock()
	}
}

func (l *Log) unlockAll() {
	for i := range l.shards {
		l.shards[i].mu.Unlock()
	}
}

// Watermark returns a sequence-number upper bound W such that every op with
// Seq < W has been fully appended — and, because the supervisor appends
// after executing, fully executed on the base. It holds all shard locks for
// the read, so no claimed-but-uninserted sequence can hide below W; any op
// appended after Watermark returns necessarily claims Seq >= W. The sync
// leader reads the watermark before issuing the base sync and truncates with
// StableAt afterwards: exactly the ops known executed before the sync's
// snapshot are discarded.
func (l *Log) Watermark() uint64 {
	l.lockAll()
	w := l.next.Load()
	l.unlockAll()
	return w
}

// StableAt marks a durable point covering every op with Seq < watermark:
// those ops' effects were captured by a base sync that has completed, so
// they are discarded and the descriptor table/clock snapshots replace the
// old ones. Ops at or above the watermark stay recorded — some may already
// be durable (a write that raced into the sync's snapshot), which is safe
// because replaying a durable write is idempotent and the shadow never
// re-executes syncs.
func (l *Log) StableAt(watermark uint64, fds map[fsapi.FD]uint32, clock uint64) {
	l.stableMu.Lock()
	defer l.stableMu.Unlock()
	var removed int64
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		kept := s.ops[:0]
		for _, o := range s.ops {
			if o.Seq < watermark {
				removed++
			} else {
				kept = append(kept, o)
			}
		}
		for j := len(kept); j < len(s.ops); j++ {
			s.ops[j] = nil
		}
		s.ops = kept
		s.mu.Unlock()
	}
	l.baseFDs = make(map[fsapi.FD]uint32, len(fds))
	for fd, ino := range fds {
		l.baseFDs[fd] = ino
	}
	l.startClock = clock
	if watermark > l.stableSeq {
		l.stableSeq = watermark
	}
	n := l.length.Add(-removed)
	l.telTruncation.Inc()
	l.telLen.Set(n)
}

// StableSeq returns the watermark of the most recent truncation: the first
// sequence number that may still be in the log. Together with a device
// generation it keys the recovery engine's warm replayer — if it moved, the
// on-disk stable point the replayer was reconstructing from is gone.
func (l *Log) StableSeq() uint64 {
	l.stableMu.Lock()
	defer l.stableMu.Unlock()
	return l.stableSeq
}

// Stable marks a new durable point: all recorded operations are now on disk,
// so they are discarded; the descriptor table and clock snapshots replace
// the old ones. ("When ... the buffered updates are flushed to disk, the
// corresponding recorded operations can be discarded.") Callers must have
// quiesced appenders (the supervisor only full-truncates while holding the
// recovery fence exclusively, or at mount).
func (l *Log) Stable(fds map[fsapi.FD]uint32, clock uint64) {
	l.StableAt(l.Watermark(), fds, clock)
}

// Snapshot returns the recovery input: the ops since the stable point (deep
// copies, merged across shards in sequence order), the descriptor table at
// the stable point, and the clock then.
func (l *Log) Snapshot() (ops []*Op, fds map[fsapi.FD]uint32, clock uint64) {
	return l.SnapshotSince(0)
}

// SnapshotSince returns the same recovery input restricted to ops with
// Seq >= seq. A warm replayer that has already consumed the log's prefix
// calls this with its next-unconsumed sequence so a repeated fault copies
// only the new suffix, not the whole gap.
//
// Ops below seq are filtered under the shard locks by reference; the deep
// copies happen after the shard locks are released (safe because recorded
// ops are immutable after Append — the log owns its clones — and stableMu,
// held throughout, excludes concurrent truncation from retiring them).
func (l *Log) SnapshotSince(seq uint64) (ops []*Op, fds map[fsapi.FD]uint32, clock uint64) {
	l.stableMu.Lock()
	defer l.stableMu.Unlock()
	var refs []*Op
	l.lockAll()
	for i := range l.shards {
		for _, o := range l.shards[i].ops {
			if o.Seq >= seq {
				refs = append(refs, o)
			}
		}
	}
	l.unlockAll()
	ops = make([]*Op, len(refs))
	for i, o := range refs {
		ops[i] = o.Clone()
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Seq < ops[j].Seq })
	fds = make(map[fsapi.FD]uint32, len(l.baseFDs))
	for fd, ino := range l.baseFDs {
		fds[fd] = ino
	}
	return ops, fds, l.startClock
}

// Len returns the number of recorded operations since the stable point.
func (l *Log) Len() int { return int(l.length.Load()) }

// PeakLen returns the largest log length observed, an experiment metric for
// recovery-cost studies.
func (l *Log) PeakLen() int { return int(l.peak.Load()) }

// ApproxBytes estimates the log's memory footprint (op structs plus write
// payloads), reported by the recording-overhead experiment.
func (l *Log) ApproxBytes() int {
	total := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for _, o := range s.ops {
			total += 96 + len(o.Path) + len(o.Path2) + len(o.Data)
		}
		s.mu.Unlock()
	}
	return total
}
