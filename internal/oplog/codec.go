package oplog

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// Binary codec for operation records. In the paper the shadow is a separate
// user-level process, so the recorded sequence crosses a process boundary
// as bytes; this codec is that wire format. The supervisor also uses it to
// spill large logs, and tests use it to prove the recorded trace is fully
// self-contained (no pointers back into the base's memory).
//
// Record layout (little endian):
//
//	u32 magic | u32 totalLen | u64 seq | u8 kind |
//	u16 perm | i64 off | i64 size | i64 fd |
//	i32 errno | i64 retFD | u32 retIno | i32 retN |
//	u16 lenPath | path | u16 lenPath2 | path2 | u32 lenData | data |
//	u32 crc
//
// RetData is never serialized: read results flow to the application, not to
// the shadow.

const recMagic = 0x4F504C47 // "OPLG"

// maxEncodedPath bounds path fields against corrupt input.
const maxEncodedPath = 4096

// Encode appends the op's wire form to buf and returns the extended slice.
func (o *Op) Encode(buf []byte) []byte {
	var scratch [8]byte
	le := binary.LittleEndian
	start := len(buf)
	put32 := func(v uint32) {
		le.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	put64 := func(v uint64) {
		le.PutUint64(scratch[:8], v)
		buf = append(buf, scratch[:8]...)
	}
	put16 := func(v uint16) {
		le.PutUint16(scratch[:2], v)
		buf = append(buf, scratch[:2]...)
	}
	put32(recMagic)
	put32(0) // total length backpatched below
	put64(o.Seq)
	buf = append(buf, byte(o.Kind))
	put16(o.Perm)
	put64(uint64(o.Off))
	put64(uint64(o.Size))
	put64(uint64(o.FD))
	put32(uint32(int32(o.Errno)))
	put64(uint64(o.RetFD))
	put32(o.RetIno)
	put32(uint32(int32(o.RetN)))
	put16(uint16(len(o.Path)))
	buf = append(buf, o.Path...)
	put16(uint16(len(o.Path2)))
	buf = append(buf, o.Path2...)
	put32(uint32(len(o.Data)))
	buf = append(buf, o.Data...)
	total := uint32(len(buf) - start + 4) // including trailing crc
	le.PutUint32(buf[start+4:], total)
	crc := disklayout.Checksum(buf[start:len(buf)])
	put32(crc)
	return buf
}

// Decode parses one op from buf, returning the op and the remaining bytes.
func Decode(buf []byte) (*Op, []byte, error) {
	le := binary.LittleEndian
	bad := func(format string, args ...any) (*Op, []byte, error) {
		return nil, nil, fmt.Errorf("oplog: decode: "+format+": %w", append(args, fserr.ErrCorrupt)...)
	}
	if len(buf) < 8 {
		return bad("short header: %d bytes", len(buf))
	}
	if got := le.Uint32(buf); got != recMagic {
		return bad("magic %#x", got)
	}
	total := le.Uint32(buf[4:])
	if total < 8 || uint64(total) > uint64(len(buf)) {
		return bad("record length %d with %d available", total, len(buf))
	}
	rec := buf[:total]
	rest := buf[total:]
	if got, want := le.Uint32(rec[total-4:]), disklayout.Checksum(rec[:total-4]); got != want {
		return bad("checksum %#x, want %#x", got, want)
	}
	r := bytes.NewReader(rec[8 : total-4])
	var o Op
	read := func(p []byte) bool {
		_, err := r.Read(p)
		return err == nil
	}
	var b8 [8]byte
	if !read(b8[:8]) {
		return bad("truncated seq")
	}
	o.Seq = le.Uint64(b8[:8])
	kind, err := r.ReadByte()
	if err != nil {
		return bad("truncated kind")
	}
	o.Kind = Kind(kind)
	if o.Kind > KReadProbe {
		return bad("unknown kind %d", kind)
	}
	if !read(b8[:2]) {
		return bad("truncated perm")
	}
	o.Perm = le.Uint16(b8[:2])
	if !read(b8[:8]) {
		return bad("truncated off")
	}
	o.Off = int64(le.Uint64(b8[:8]))
	if !read(b8[:8]) {
		return bad("truncated size")
	}
	o.Size = int64(le.Uint64(b8[:8]))
	if !read(b8[:8]) {
		return bad("truncated fd")
	}
	o.FD = fsapi.FD(int64(le.Uint64(b8[:8])))
	if !read(b8[:4]) {
		return bad("truncated errno")
	}
	o.Errno = int(int32(le.Uint32(b8[:4])))
	if !read(b8[:8]) {
		return bad("truncated retfd")
	}
	o.RetFD = fsapi.FD(int64(le.Uint64(b8[:8])))
	if !read(b8[:4]) {
		return bad("truncated retino")
	}
	o.RetIno = le.Uint32(b8[:4])
	if !read(b8[:4]) {
		return bad("truncated retn")
	}
	o.RetN = int(int32(le.Uint32(b8[:4])))
	readStr := func() (string, bool) {
		if !read(b8[:2]) {
			return "", false
		}
		n := int(le.Uint16(b8[:2]))
		if n > maxEncodedPath || n > r.Len() {
			return "", false
		}
		s := make([]byte, n)
		if n > 0 && !read(s) {
			return "", false
		}
		return string(s), true
	}
	var ok bool
	if o.Path, ok = readStr(); !ok {
		return bad("truncated path")
	}
	if o.Path2, ok = readStr(); !ok {
		return bad("truncated path2")
	}
	if !read(b8[:4]) {
		return bad("truncated data length")
	}
	dataLen := int(le.Uint32(b8[:4]))
	if dataLen != r.Len() {
		return bad("data length %d, %d bytes remain", dataLen, r.Len())
	}
	if dataLen > 0 {
		o.Data = make([]byte, dataLen)
		if !read(o.Data) {
			return bad("truncated data")
		}
	}
	return &o, rest, nil
}

// EncodeSequence serializes a whole recorded sequence plus the stable-point
// descriptor table and clock — the complete recovery message the supervisor
// would send a shadow process.
func EncodeSequence(ops []*Op, fds map[fsapi.FD]uint32, clock uint64) []byte {
	le := binary.LittleEndian
	var buf []byte
	var scratch [12]byte
	le.PutUint64(scratch[:8], clock)
	le.PutUint32(scratch[8:12], uint32(len(fds)))
	buf = append(buf, scratch[:12]...)
	// Deterministic fd order.
	var keys []fsapi.FD
	for fd := range fds {
		keys = append(keys, fd)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, fd := range keys {
		le.PutUint64(scratch[:8], uint64(fd))
		le.PutUint32(scratch[8:12], fds[fd])
		buf = append(buf, scratch[:12]...)
	}
	le.PutUint32(scratch[:4], uint32(len(ops)))
	buf = append(buf, scratch[:4]...)
	for _, o := range ops {
		buf = o.Encode(buf)
	}
	return buf
}

// DecodeSequence is the inverse of EncodeSequence.
func DecodeSequence(buf []byte) (ops []*Op, fds map[fsapi.FD]uint32, clock uint64, err error) {
	le := binary.LittleEndian
	bad := func(format string, args ...any) ([]*Op, map[fsapi.FD]uint32, uint64, error) {
		return nil, nil, 0, fmt.Errorf("oplog: decode sequence: "+format+": %w", append(args, fserr.ErrCorrupt)...)
	}
	if len(buf) < 16 {
		return bad("short header")
	}
	clock = le.Uint64(buf)
	nfds := int(le.Uint32(buf[8:]))
	buf = buf[12:]
	if nfds > 1<<20 || len(buf) < nfds*12+4 {
		return bad("implausible fd count %d", nfds)
	}
	fds = make(map[fsapi.FD]uint32, nfds)
	for i := 0; i < nfds; i++ {
		fd := fsapi.FD(int64(le.Uint64(buf)))
		ino := le.Uint32(buf[8:])
		if _, dup := fds[fd]; dup {
			return bad("duplicate fd %d", fd)
		}
		fds[fd] = ino
		buf = buf[12:]
	}
	nops := int(le.Uint32(buf))
	buf = buf[4:]
	if nops > 1<<24 {
		return bad("implausible op count %d", nops)
	}
	ops = make([]*Op, 0, nops)
	for i := 0; i < nops; i++ {
		var o *Op
		o, buf, err = Decode(buf)
		if err != nil {
			return nil, nil, 0, err
		}
		ops = append(ops, o)
	}
	if len(buf) != 0 {
		return bad("%d trailing bytes", len(buf))
	}
	return ops, fds, clock, nil
}
