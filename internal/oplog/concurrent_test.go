package oplog

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/fsapi"
)

// TestLogConcurrentAppendSnapshot appends from many goroutines and checks
// that Snapshot sees a dense, strictly increasing sequence with no op lost
// or duplicated across the shards. Run with -race.
func TestLogConcurrentAppendSnapshot(t *testing.T) {
	l := NewLog()
	const (
		writers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				l.Append(&Op{Kind: KCreate, Path: fmt.Sprintf("/w%d/f%d", w, i)})
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != writers*perW {
		t.Fatalf("Len = %d, want %d", l.Len(), writers*perW)
	}
	ops, _, _ := l.Snapshot()
	if len(ops) != writers*perW {
		t.Fatalf("snapshot has %d ops, want %d", len(ops), writers*perW)
	}
	seen := make(map[string]bool, len(ops))
	for i, op := range ops {
		if op.Seq != uint64(i) {
			t.Fatalf("ops[%d].Seq = %d: sequence not dense/sorted", i, op.Seq)
		}
		if seen[op.Path] {
			t.Fatalf("op %q recorded twice", op.Path)
		}
		seen[op.Path] = true
	}
}

// TestLogWatermarkExcludesUnfinishedAppends checks the watermark contract
// under concurrency: every op with Seq < Watermark() is fully inserted, so
// StableAt at that watermark never strands a claimed-but-invisible op, and
// ops at or above it survive the truncation.
func TestLogWatermarkExcludesUnfinishedAppends(t *testing.T) {
	l := NewLog()
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				l.Append(&Op{Kind: KMkdir, Path: "/d"})
			}
		}()
	}
	var last uint64
	for round := 0; round < 50; round++ {
		wm := l.Watermark()
		if wm < last {
			t.Fatalf("watermark went backwards: %d -> %d", last, wm)
		}
		last = wm
		l.StableAt(wm, map[fsapi.FD]uint32{1: 2}, uint64(round+1))
		ops, _, _ := l.Snapshot()
		for _, op := range ops {
			if op.Seq < wm {
				t.Fatalf("op seq %d survived StableAt(%d)", op.Seq, wm)
			}
		}
	}
	close(stop)
	wg.Wait()
	// Final full truncation drains everything.
	l.Stable(nil, 99)
	if l.Len() != 0 {
		t.Fatalf("Len = %d after Stable", l.Len())
	}
}

// TestLogSnapshotSinceConcurrent hammers SnapshotSince from readers while
// writers append and a truncator advances the stable point, checking every
// returned suffix is dense from its requested floor and never contains a
// truncated op. Run with -race: the suffix deep-copies happen outside the
// shard locks, and this test is the proof that is safe.
func TestLogSnapshotSinceConcurrent(t *testing.T) {
	l := NewLog()
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				l.Append(&Op{Kind: KCreate, Path: fmt.Sprintf("/w%d/f%d", w, i)})
			}
		}(w)
	}
	for round := 0; round < 40; round++ {
		wm := l.Watermark()
		l.StableAt(wm, nil, uint64(round))
		floor := wm / 2 // sometimes below the stable point, sometimes above
		ops, _, _ := l.SnapshotSince(floor)
		stable := l.StableSeq()
		prev := uint64(0)
		for i, op := range ops {
			if op.Seq < floor {
				t.Fatalf("round %d: op seq %d below requested floor %d", round, op.Seq, floor)
			}
			if i > 0 && op.Seq <= prev {
				t.Fatalf("round %d: suffix not strictly increasing at %d", round, op.Seq)
			}
			prev = op.Seq
		}
		if stable < wm {
			t.Fatalf("round %d: StableSeq %d went behind truncation watermark %d", round, stable, wm)
		}
	}
	close(stop)
	wg.Wait()
	// Deterministic equivalence: a quiet log's SnapshotSince(s) must be
	// exactly Snapshot() filtered to Seq >= s.
	all, _, _ := l.Snapshot()
	if len(all) == 0 {
		t.Skip("log drained completely; nothing to compare")
	}
	mid := all[len(all)/2].Seq
	suffix, _, _ := l.SnapshotSince(mid)
	want := 0
	for _, op := range all {
		if op.Seq >= mid {
			want++
		}
	}
	if len(suffix) != want || suffix[0].Seq != mid {
		t.Fatalf("SnapshotSince(%d) = %d ops starting %d, want %d starting %d",
			mid, len(suffix), suffix[0].Seq, want, mid)
	}
}

// TestLogStableAtPartial pins down partial truncation deterministically:
// only ops below the watermark go, the rest keep their seqs and order.
func TestLogStableAtPartial(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(&Op{Kind: KCreate, Path: fmt.Sprintf("/f%d", i)})
	}
	l.StableAt(4, map[fsapi.FD]uint32{7: 3}, 11)
	if l.Len() != 6 {
		t.Fatalf("Len = %d, want 6", l.Len())
	}
	ops, fds, clk := l.Snapshot()
	if len(ops) != 6 || ops[0].Seq != 4 || ops[5].Seq != 9 {
		t.Fatalf("surviving seqs wrong: %d ops, first %d", len(ops), ops[0].Seq)
	}
	if fds[7] != 3 || clk != 11 {
		t.Fatalf("stable state = (%v, %d)", fds, clk)
	}
	if l.PeakLen() != 10 {
		t.Errorf("PeakLen = %d, want 10", l.PeakLen())
	}
}
