package oplog

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fsapi"
	"repro/internal/fserr"
)

func sampleOps() []*Op {
	return []*Op{
		{Seq: 0, Kind: KMkdir, Path: "/dir", Perm: 0o755},
		{Seq: 1, Kind: KCreate, Path: "/dir/file", Perm: 0o644, RetFD: 3, RetIno: 17},
		{Seq: 2, Kind: KWrite, FD: 3, Off: 4096, Data: []byte("payload bytes"), RetN: 13},
		{Seq: 3, Kind: KRename, Path: "/dir/file", Path2: "/dir/renamed"},
		{Seq: 4, Kind: KSymlink, Path: "/ln", Path2: "/target"},
		{Seq: 5, Kind: KUnlink, Path: "/dir/renamed", Errno: 2},
		{Seq: 6, Kind: KSync},
		{Seq: 7, Kind: KWrite, FD: 0, Off: -1, Data: []byte{0, 255, 1}, Errno: 22},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, o := range sampleOps() {
		buf := o.Encode(nil)
		got, rest, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: %v", o, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d trailing bytes", o, len(rest))
		}
		if got.String() != o.String() || got.Path2 != o.Path2 || got.Perm != o.Perm ||
			got.Size != o.Size || string(got.Data) != string(o.Data) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, o)
		}
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	o := &Op{Seq: 9, Kind: KWrite, FD: 1, Data: []byte("abcdef"), RetN: 6}
	buf := o.Encode(nil)
	for _, off := range []int{0, 4, 9, 20, len(buf) - 5, len(buf) - 1} {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 0x80
		if _, _, err := Decode(mut); !errors.Is(err, fserr.ErrCorrupt) {
			t.Errorf("flip at %d: %v, want ErrCorrupt", off, err)
		}
	}
	if _, _, err := Decode(buf[:5]); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("truncated: %v", err)
	}
}

func TestDecodeRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		buf := make([]byte, rng.Intn(256))
		rng.Read(buf)
		_, _, err := Decode(buf)
		if err == nil && len(buf) > 0 {
			// Accidentally valid garbage is astronomically unlikely with the
			// CRC; treat as failure to be safe.
			t.Fatalf("garbage of %d bytes decoded", len(buf))
		}
	}
}

func TestEncodeDecodeSequence(t *testing.T) {
	ops := sampleOps()
	fds := map[fsapi.FD]uint32{0: 5, 7: 12, 3: 9}
	buf := EncodeSequence(ops, fds, 999)
	gotOps, gotFDs, clock, err := DecodeSequence(buf)
	if err != nil {
		t.Fatal(err)
	}
	if clock != 999 {
		t.Errorf("clock = %d", clock)
	}
	if len(gotFDs) != 3 || gotFDs[7] != 12 {
		t.Errorf("fds = %v", gotFDs)
	}
	if len(gotOps) != len(ops) {
		t.Fatalf("ops = %d, want %d", len(gotOps), len(ops))
	}
	for i := range ops {
		if gotOps[i].String() != ops[i].String() {
			t.Errorf("op %d: %s != %s", i, gotOps[i], ops[i])
		}
	}
}

func TestEncodeSequenceDeterministic(t *testing.T) {
	ops := sampleOps()
	fds := map[fsapi.FD]uint32{4: 1, 1: 2, 9: 3}
	a := EncodeSequence(ops, fds, 5)
	b := EncodeSequence(ops, fds, 5)
	if string(a) != string(b) {
		t.Error("encoding depends on map iteration order")
	}
}

func TestDecodeSequenceRejectsTrailing(t *testing.T) {
	buf := EncodeSequence(sampleOps()[:2], map[fsapi.FD]uint32{}, 1)
	buf = append(buf, 0xAA)
	if _, _, _, err := DecodeSequence(buf); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("trailing byte: %v", err)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seq uint64, kind uint8, perm uint16, off, size int64, fd int16,
		errno int16, path, path2 string, data []byte) bool {
		if len(path) > 2048 || len(path2) > 2048 {
			return true
		}
		o := &Op{
			Seq: seq, Kind: Kind(kind % 17), Perm: perm, Off: off, Size: size,
			FD: fsapi.FD(fd), Errno: int(errno), Path: path, Path2: path2, Data: data,
		}
		buf := o.Encode(nil)
		got, rest, err := Decode(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return got.Seq == o.Seq && got.Kind == o.Kind && got.Perm == o.Perm &&
			got.Off == o.Off && got.Size == o.Size && got.FD == o.FD &&
			got.Errno == o.Errno && got.Path == o.Path && got.Path2 == o.Path2 &&
			string(got.Data) == string(o.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
