package oplog

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/model"
)

func newModel(t *testing.T) *model.Model {
	t.Helper()
	sb, err := disklayout.Geometry(4096, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	return model.New(sb)
}

func TestApplyFillsOutcomes(t *testing.T) {
	m := newModel(t)
	op := &Op{Kind: KCreate, Path: "/f", Perm: 0o644}
	if err := Apply(m, op); err != nil {
		t.Fatal(err)
	}
	if op.Errno != 0 || op.RetFD != 0 || op.RetIno != 2 {
		t.Errorf("create outcome = %+v", op)
	}
	op = &Op{Kind: KWrite, FD: 0, Off: 0, Data: []byte("hello")}
	if err := Apply(m, op); err != nil {
		t.Fatal(err)
	}
	if op.RetN != 5 {
		t.Errorf("write RetN = %d", op.RetN)
	}
	op = &Op{Kind: KReadProbe, FD: 0, Off: 1, Size: 3}
	if err := Apply(m, op); err != nil {
		t.Fatal(err)
	}
	if string(op.RetData) != "ell" || op.RetN != 3 {
		t.Errorf("read outcome = %q n=%d", op.RetData, op.RetN)
	}
	op = &Op{Kind: KCreate, Path: "/f", Perm: 0o644}
	_ = Apply(m, op)
	if !errors.Is(op.Err(), fserr.ErrExist) {
		t.Errorf("duplicate create errno = %d", op.Errno)
	}
}

func TestApplyEveryKind(t *testing.T) {
	m := newModel(t)
	seq := []*Op{
		{Kind: KMkdir, Path: "/d", Perm: 0o755},
		{Kind: KCreate, Path: "/d/f", Perm: 0o644},
		{Kind: KWrite, FD: 0, Off: 0, Data: []byte("x")},
		{Kind: KFsync, FD: 0},
		{Kind: KClose, FD: 0},
		{Kind: KOpen, Path: "/d/f"},
		{Kind: KReadProbe, FD: 0, Off: 0, Size: 1},
		{Kind: KClose, FD: 0},
		{Kind: KTruncate, Path: "/d/f", Size: 0},
		{Kind: KLink, Path: "/d/f", Path2: "/d/g"},
		{Kind: KRename, Path: "/d/g", Path2: "/d/h"},
		{Kind: KSymlink, Path: "/d/s", Path2: "/target"},
		{Kind: KSetPerm, Path: "/d/f", Perm: 0o600},
		{Kind: KStatProbe, Path: "/d/f"},
		{Kind: KReadDirProbe, Path: "/d"},
		{Kind: KUnlink, Path: "/d/h"},
		{Kind: KUnlink, Path: "/d/s"},
		{Kind: KUnlink, Path: "/d/f"},
		{Kind: KRmdir, Path: "/d"},
		{Kind: KSync},
	}
	for i, op := range seq {
		if err := Apply(m, op); err != nil {
			t.Fatalf("op %d (%s): %v", i, op.Kind, err)
		}
	}
}

func TestApplyUnknownKind(t *testing.T) {
	m := newModel(t)
	op := &Op{Kind: Kind(99)}
	if err := Apply(m, op); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("unknown kind: %v", err)
	}
}

func TestMutatingClassification(t *testing.T) {
	mutating := []Kind{KMkdir, KRmdir, KCreate, KOpen, KClose, KWrite, KTruncate,
		KUnlink, KRename, KLink, KSymlink, KSetPerm, KFsync, KSync}
	for _, k := range mutating {
		if !k.Mutating() {
			t.Errorf("%s should be mutating", k)
		}
	}
	for _, k := range []Kind{KReadDirProbe, KStatProbe, KReadProbe} {
		if k.Mutating() {
			t.Errorf("%s should not be mutating", k)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	op := &Op{Kind: KWrite, Data: []byte("abc"), RetData: []byte("xyz")}
	cp := op.Clone()
	cp.Data[0] = 'Z'
	cp.RetData[0] = 'Z'
	if op.Data[0] != 'a' || op.RetData[0] != 'x' {
		t.Error("Clone aliases payload buffers")
	}
}

func TestLogAppendAndSnapshot(t *testing.T) {
	l := NewLog()
	l.Append(&Op{Kind: KCreate, Path: "/a"})
	l.Append(&Op{Kind: KStatProbe, Path: "/a"}) // probe: not recorded
	l.Append(&Op{Kind: KWrite, FD: 0, Data: []byte("d")})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	ops, fds, clk := l.Snapshot()
	if len(ops) != 2 || len(fds) != 0 || clk != 0 {
		t.Fatalf("snapshot = (%d ops, %d fds, clk %d)", len(ops), len(fds), clk)
	}
	if ops[0].Seq != 0 || ops[1].Seq != 1 {
		t.Errorf("seqs = %d, %d", ops[0].Seq, ops[1].Seq)
	}
	// Snapshot is isolated from the live log.
	ops[0].Path = "/mutated"
	ops2, _, _ := l.Snapshot()
	if ops2[0].Path != "/a" {
		t.Error("snapshot aliases log storage")
	}
}

func TestLogStableTruncates(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(&Op{Kind: KMkdir, Path: "/d"})
	}
	fds := map[fsapi.FD]uint32{3: 7, 5: 9}
	l.Stable(fds, 42)
	if l.Len() != 0 {
		t.Fatal("Stable did not truncate")
	}
	if l.PeakLen() != 10 {
		t.Errorf("PeakLen = %d", l.PeakLen())
	}
	_, gotFDs, clk := l.Snapshot()
	if clk != 42 || len(gotFDs) != 2 || gotFDs[3] != 7 {
		t.Errorf("stable state = (%v, %d)", gotFDs, clk)
	}
	// The snapshot map must be a copy.
	fds[3] = 999
	_, gotFDs, _ = l.Snapshot()
	if gotFDs[3] != 7 {
		t.Error("Stable aliases the caller's fd map")
	}
}

func TestLogApproxBytesGrowsWithPayload(t *testing.T) {
	l := NewLog()
	l.Append(&Op{Kind: KWrite, Data: make([]byte, 1000)})
	small := l.ApproxBytes()
	l.Append(&Op{Kind: KWrite, Data: make([]byte, 100000)})
	if l.ApproxBytes() < small+100000 {
		t.Errorf("ApproxBytes = %d after big write (was %d)", l.ApproxBytes(), small)
	}
}

func TestErrnoRoundTripProperty(t *testing.T) {
	f := func(n uint8) bool {
		err := fserr.FromErrno(int(n))
		if int(n) == 0 {
			return err == nil
		}
		// Round-tripping a decodable errno is stable.
		if rt := fserr.Errno(err); rt != -1 && fserr.FromErrno(rt) != nil {
			return errors.Is(fserr.FromErrno(rt), err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestOpStringForms(t *testing.T) {
	ops := []*Op{
		{Kind: KRename, Path: "/a", Path2: "/b"},
		{Kind: KSymlink, Path: "/l", Path2: "/t"},
		{Kind: KWrite, FD: 3, Off: 10, Data: []byte("xy"), RetN: 2},
		{Kind: KClose, FD: 3},
		{Kind: KSync},
		{Kind: KCreate, Path: "/c", RetFD: 1, RetIno: 5},
		{Kind: KMkdir, Path: "/m"},
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("empty String for kind %v", op.Kind)
		}
	}
}
