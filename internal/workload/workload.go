// Package workload generates deterministic filesystem operation traces for
// the throughput, recovery, availability, and differential-testing
// experiments.
//
// Each generator drives a private specification-model instance while it
// generates, so the emitted trace is self-consistent (descriptor numbers
// refer to descriptors that the lowest-free policy really produces, paths
// mostly exist) and carries the oracle outcome of every operation. The same
// trace can then be applied to the base filesystem, the shadow, or a
// baseline, and the outcomes compared — the paper's testing phase "uses the
// base as a reference filesystem to test the shadow by running a large
// volume of workloads and monitoring for discrepancies" (§4.3).
//
// Profiles correspond to the workload families filesystem papers
// conventionally evaluate with:
//
//	MetaHeavy  – varmail-like: create/append/fsync/unlink churn in few dirs
//	DataHeavy  – fileserver-like: whole-file writes and appends, larger IO
//	ReadMostly – webserver-like: build a corpus, then ~90% reads
//	Soup       – uniform random valid and invalid operations, for coverage
//	BigFile    – large-file growth: multi-block sequential appends, shrinking
//	             truncates, and hole-leaving far-offset writes, shaped so
//	             crash/fault windows land inside extent-split and
//	             delayed-allocation seams
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/model"
	"repro/internal/oplog"
)

// Profile selects a workload family.
type Profile int

// Profiles.
const (
	MetaHeavy Profile = iota
	DataHeavy
	ReadMostly
	Soup
	BigFile
)

// String returns the profile name used in experiment tables.
func (p Profile) String() string {
	switch p {
	case MetaHeavy:
		return "metaheavy"
	case DataHeavy:
		return "dataheavy"
	case ReadMostly:
		return "readmostly"
	case Soup:
		return "soup"
	case BigFile:
		return "bigfile"
	}
	return fmt.Sprintf("profile(%d)", int(p))
}

// Profiles lists every profile, for experiment sweeps.
func Profiles() []Profile {
	return []Profile{MetaHeavy, DataHeavy, ReadMostly, Soup, BigFile}
}

// Config parameterizes generation.
type Config struct {
	// Profile selects the operation mix.
	Profile Profile
	// Seed drives all randomness; equal configs generate equal traces.
	Seed int64
	// NumOps is the trace length.
	NumOps int
	// SyncEvery inserts a Sync after every n mutating ops (0 disables).
	SyncEvery int
	// Superblock supplies the geometry for the internal model so ENOSPC
	// behavior in the trace matches the target image. Nil selects a roomy
	// default (64 MiB, 4096 inodes).
	Superblock *disklayout.Superblock
	// InvalidFrac is the fraction of deliberately invalid operations
	// (missing paths, bad descriptors) mixed in for error-path coverage.
	// Default 0.05 for Soup, 0 otherwise.
	InvalidFrac float64
}

// gen carries generation state.
type gen struct {
	rng   *rand.Rand
	m     *model.Model
	cfg   Config
	dirs  []string
	files []string
	links []string
	fds   []openFD
	ops   []*oplog.Op
	muts  int
}

type openFD struct {
	fd   fsapi.FD
	path string
	size int64
}

// Generate produces a deterministic, outcome-filled operation trace.
func Generate(cfg Config) []*oplog.Op {
	if cfg.NumOps <= 0 {
		cfg.NumOps = 1000
	}
	sb := cfg.Superblock
	if sb == nil {
		var err error
		sb, err = disklayout.Geometry(16384, 4096, 64)
		if err != nil {
			panic("workload: default geometry invalid: " + err.Error())
		}
	}
	if cfg.InvalidFrac == 0 && cfg.Profile == Soup {
		cfg.InvalidFrac = 0.05
	}
	g := &gen{
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		m:    model.New(sb),
		cfg:  cfg,
		dirs: []string{"/"},
	}
	g.setup()
	for len(g.ops) < cfg.NumOps {
		g.step()
	}
	// Close whatever is still open only for ReadMostly (a quiescent corpus);
	// other profiles deliberately end with open descriptors so recovery
	// experiments have a live fd table to reconstruct.
	return g.ops
}

// emit applies the op to the model (filling the oracle outcome) and records
// it, updating the generator's tracking state from the outcome.
func (g *gen) emit(o *oplog.Op) {
	o.Seq = uint64(len(g.ops))
	err := oplog.Apply(g.m, o)
	g.ops = append(g.ops, o)
	if o.Kind.Mutating() {
		g.muts++
		if g.cfg.SyncEvery > 0 && g.muts%g.cfg.SyncEvery == 0 && o.Kind != oplog.KSync {
			s := &oplog.Op{Seq: uint64(len(g.ops)), Kind: oplog.KSync}
			_ = oplog.Apply(g.m, s)
			g.ops = append(g.ops, s)
		}
	}
	if err != nil {
		return
	}
	switch o.Kind {
	case oplog.KMkdir:
		g.dirs = append(g.dirs, o.Path)
	case oplog.KRmdir:
		g.removeDir(o.Path)
	case oplog.KCreate:
		g.files = append(g.files, o.Path)
		g.fds = append(g.fds, openFD{fd: o.RetFD, path: o.Path})
	case oplog.KOpen:
		g.fds = append(g.fds, openFD{fd: o.RetFD, path: o.Path})
	case oplog.KClose:
		g.removeFD(o.FD)
	case oplog.KUnlink:
		g.removeFile(o.Path)
		g.removeLink(o.Path)
	case oplog.KSymlink:
		g.links = append(g.links, o.Path)
	case oplog.KRename:
		g.renameTracked(o.Path, o.Path2)
	case oplog.KLink:
		g.files = append(g.files, o.Path2)
	case oplog.KWrite:
		for i := range g.fds {
			if g.fds[i].fd == o.FD {
				if end := o.Off + int64(o.RetN); end > g.fds[i].size {
					g.fds[i].size = end
				}
			}
		}
	}
}

func (g *gen) removeDir(p string) {
	for i, d := range g.dirs {
		if d == p {
			g.dirs = append(g.dirs[:i], g.dirs[i+1:]...)
			return
		}
	}
}

func (g *gen) removeFile(p string) {
	for i, f := range g.files {
		if f == p {
			g.files = append(g.files[:i], g.files[i+1:]...)
			return
		}
	}
}

func (g *gen) removeLink(p string) {
	for i, l := range g.links {
		if l == p {
			g.links = append(g.links[:i], g.links[i+1:]...)
			return
		}
	}
}

func (g *gen) removeFD(fd fsapi.FD) {
	for i := range g.fds {
		if g.fds[i].fd == fd {
			g.fds = append(g.fds[:i], g.fds[i+1:]...)
			return
		}
	}
}

func (g *gen) renameTracked(old, new string) {
	g.removeFile(new)
	g.removeDir(new)
	g.removeLink(new)
	for i, f := range g.files {
		if f == old {
			g.files[i] = new
			return
		}
	}
	for i, d := range g.dirs {
		if d == old {
			g.dirs[i] = new
			return
		}
	}
	for i, l := range g.links {
		if l == old {
			g.links[i] = new
			return
		}
	}
}

// setup creates the profile's initial directory structure.
func (g *gen) setup() {
	nd := 4
	if g.cfg.Profile == ReadMostly {
		nd = 8
	}
	for i := 0; i < nd; i++ {
		g.emit(&oplog.Op{Kind: oplog.KMkdir, Path: fmt.Sprintf("/dir%d", i), Perm: 0o755})
	}
	if g.cfg.Profile == ReadMostly {
		// Build the corpus the read phase will hammer.
		for i := 0; i < 32 && len(g.ops) < g.cfg.NumOps; i++ {
			path := fmt.Sprintf("/dir%d/doc%d", i%nd, i)
			g.emit(&oplog.Op{Kind: oplog.KCreate, Path: path, Perm: 0o644})
			if len(g.fds) > 0 {
				fd := g.fds[len(g.fds)-1].fd
				g.emit(&oplog.Op{Kind: oplog.KWrite, FD: fd, Off: 0, Data: g.payload(2048)})
				g.emit(&oplog.Op{Kind: oplog.KClose, FD: fd})
			}
		}
	}
}

func (g *gen) payload(n int) []byte {
	b := make([]byte, n)
	g.rng.Read(b)
	return b
}

func (g *gen) randDir() string { return g.dirs[g.rng.Intn(len(g.dirs))] }
func (g *gen) freshName(dir, prefix string) string {
	if dir == "/" {
		return fmt.Sprintf("/%s%d", prefix, g.rng.Intn(1<<30))
	}
	return fmt.Sprintf("%s/%s%d", dir, prefix, g.rng.Intn(1<<30))
}

// step emits one (occasionally two) operations per the profile's mix.
func (g *gen) step() {
	if g.cfg.InvalidFrac > 0 && g.rng.Float64() < g.cfg.InvalidFrac {
		g.stepInvalid()
		return
	}
	switch g.cfg.Profile {
	case MetaHeavy:
		g.stepMetaHeavy()
	case DataHeavy:
		g.stepDataHeavy()
	case ReadMostly:
		g.stepReadMostly()
	case BigFile:
		g.stepBigFile()
	default:
		g.stepSoup()
	}
}

func (g *gen) stepMetaHeavy() {
	switch r := g.rng.Intn(100); {
	case r < 30: // create
		g.emit(&oplog.Op{Kind: oplog.KCreate, Path: g.freshName(g.randDir(), "mail"), Perm: 0o644})
	case r < 55 && len(g.fds) > 0: // append small + fsync
		f := g.fds[g.rng.Intn(len(g.fds))]
		g.emit(&oplog.Op{Kind: oplog.KWrite, FD: f.fd, Off: f.size, Data: g.payload(64 + g.rng.Intn(512))})
		g.emit(&oplog.Op{Kind: oplog.KFsync, FD: f.fd})
	case r < 70 && len(g.fds) > 0: // close
		g.emit(&oplog.Op{Kind: oplog.KClose, FD: g.fds[g.rng.Intn(len(g.fds))].fd})
	case r < 85 && len(g.files) > 0: // unlink
		g.emit(&oplog.Op{Kind: oplog.KUnlink, Path: g.files[g.rng.Intn(len(g.files))]})
	case r < 92 && len(g.files) > 0: // stat probe
		g.emit(&oplog.Op{Kind: oplog.KStatProbe, Path: g.files[g.rng.Intn(len(g.files))]})
	default:
		g.emit(&oplog.Op{Kind: oplog.KMkdir, Path: g.freshName(g.randDir(), "box"), Perm: 0o755})
	}
}

func (g *gen) stepDataHeavy() {
	switch r := g.rng.Intn(100); {
	case r < 15:
		g.emit(&oplog.Op{Kind: oplog.KCreate, Path: g.freshName(g.randDir(), "blob"), Perm: 0o644})
	case r < 60 && len(g.fds) > 0: // large-ish write
		f := g.fds[g.rng.Intn(len(g.fds))]
		off := f.size
		if g.rng.Intn(4) == 0 && f.size > 0 { // overwrite sometimes
			off = g.rng.Int63n(f.size)
		}
		g.emit(&oplog.Op{Kind: oplog.KWrite, FD: f.fd, Off: off,
			Data: g.payload(disklayout.BlockSize/2 + g.rng.Intn(3*disklayout.BlockSize))})
	case r < 75 && len(g.fds) > 0: // read probe
		f := g.fds[g.rng.Intn(len(g.fds))]
		g.emit(&oplog.Op{Kind: oplog.KReadProbe, FD: f.fd, Off: 0, Size: 4096})
	case r < 85 && len(g.files) > 0:
		g.emit(&oplog.Op{Kind: oplog.KTruncate, Path: g.files[g.rng.Intn(len(g.files))],
			Size: g.rng.Int63n(8 * disklayout.BlockSize)})
	case r < 92 && len(g.fds) > 4:
		g.emit(&oplog.Op{Kind: oplog.KClose, FD: g.fds[g.rng.Intn(len(g.fds))].fd})
	default:
		g.emit(&oplog.Op{Kind: oplog.KSync})
	}
}

func (g *gen) stepReadMostly() {
	switch r := g.rng.Intn(100); {
	case r < 55 && len(g.files) > 0: // stat
		g.emit(&oplog.Op{Kind: oplog.KStatProbe, Path: g.files[g.rng.Intn(len(g.files))]})
	case r < 80 && len(g.files) > 0: // open-read-close
		path := g.files[g.rng.Intn(len(g.files))]
		g.emit(&oplog.Op{Kind: oplog.KOpen, Path: path})
		if len(g.fds) > 0 {
			fd := g.fds[len(g.fds)-1].fd
			g.emit(&oplog.Op{Kind: oplog.KReadProbe, FD: fd, Off: 0, Size: 2048})
			g.emit(&oplog.Op{Kind: oplog.KClose, FD: fd})
		}
	case r < 90: // readdir
		g.emit(&oplog.Op{Kind: oplog.KReadDirProbe, Path: g.randDir()})
	case r < 96 && len(g.files) > 0: // occasional update
		path := g.files[g.rng.Intn(len(g.files))]
		g.emit(&oplog.Op{Kind: oplog.KOpen, Path: path})
		if len(g.fds) > 0 {
			fd := g.fds[len(g.fds)-1].fd
			g.emit(&oplog.Op{Kind: oplog.KWrite, FD: fd, Off: 0, Data: g.payload(256)})
			g.emit(&oplog.Op{Kind: oplog.KClose, FD: fd})
		}
	default:
		g.emit(&oplog.Op{Kind: oplog.KCreate, Path: g.freshName(g.randDir(), "doc"), Perm: 0o644})
	}
}

func (g *gen) stepSoup() {
	switch r := g.rng.Intn(130); {
	case r < 15:
		g.emit(&oplog.Op{Kind: oplog.KCreate, Path: g.freshName(g.randDir(), "f"), Perm: uint16(g.rng.Intn(0o1000))})
	case r < 25:
		g.emit(&oplog.Op{Kind: oplog.KMkdir, Path: g.freshName(g.randDir(), "d"), Perm: 0o755})
	case r < 40 && len(g.fds) > 0:
		f := g.fds[g.rng.Intn(len(g.fds))]
		g.emit(&oplog.Op{Kind: oplog.KWrite, FD: f.fd, Off: g.rng.Int63n(4 * disklayout.BlockSize),
			Data: g.payload(1 + g.rng.Intn(2*disklayout.BlockSize))})
	case r < 48 && len(g.fds) > 0:
		g.emit(&oplog.Op{Kind: oplog.KClose, FD: g.fds[g.rng.Intn(len(g.fds))].fd})
	case r < 55 && len(g.files) > 0:
		g.emit(&oplog.Op{Kind: oplog.KOpen, Path: g.files[g.rng.Intn(len(g.files))]})
	case r < 63 && len(g.files) > 0:
		g.emit(&oplog.Op{Kind: oplog.KUnlink, Path: g.files[g.rng.Intn(len(g.files))]})
	case r < 70 && len(g.dirs) > 1:
		g.emit(&oplog.Op{Kind: oplog.KRmdir, Path: g.dirs[1+g.rng.Intn(len(g.dirs)-1)]})
	case r < 78 && len(g.files) > 0:
		g.emit(&oplog.Op{Kind: oplog.KRename,
			Path:  g.files[g.rng.Intn(len(g.files))],
			Path2: g.freshName(g.randDir(), "rn")})
	case r < 84 && len(g.files) > 1 && g.rng.Intn(2) == 0: // rename over existing
		g.emit(&oplog.Op{Kind: oplog.KRename,
			Path:  g.files[g.rng.Intn(len(g.files))],
			Path2: g.files[g.rng.Intn(len(g.files))]})
	case r < 90 && len(g.files) > 0:
		g.emit(&oplog.Op{Kind: oplog.KLink,
			Path:  g.files[g.rng.Intn(len(g.files))],
			Path2: g.freshName(g.randDir(), "ln")})
	case r < 96:
		g.emit(&oplog.Op{Kind: oplog.KSymlink,
			Path:  g.freshName(g.randDir(), "sym"),
			Path2: "/target/" + g.freshName("/", "t")})
	case r < 102 && len(g.files) > 0:
		g.emit(&oplog.Op{Kind: oplog.KTruncate, Path: g.files[g.rng.Intn(len(g.files))],
			Size: g.rng.Int63n(6 * disklayout.BlockSize)})
	case r < 108 && len(g.files) > 0:
		g.emit(&oplog.Op{Kind: oplog.KSetPerm, Path: g.files[g.rng.Intn(len(g.files))],
			Perm: uint16(g.rng.Intn(0o1000))})
	case r < 114 && len(g.fds) > 0:
		f := g.fds[g.rng.Intn(len(g.fds))]
		g.emit(&oplog.Op{Kind: oplog.KReadProbe, FD: f.fd, Off: g.rng.Int63n(4096), Size: int64(g.rng.Intn(4096))})
	case r < 120:
		g.emit(&oplog.Op{Kind: oplog.KReadDirProbe, Path: g.randDir()})
	case r < 125 && len(g.fds) > 0:
		g.emit(&oplog.Op{Kind: oplog.KFsync, FD: g.fds[g.rng.Intn(len(g.fds))].fd})
	case r < 127:
		g.emit(&oplog.Op{Kind: oplog.KSync})
	default:
		if len(g.files) > 0 {
			g.emit(&oplog.Op{Kind: oplog.KStatProbe, Path: g.files[g.rng.Intn(len(g.files))]})
		} else {
			g.emit(&oplog.Op{Kind: oplog.KStatProbe, Path: "/"})
		}
	}
}

// stepBigFile grows a handful of large files with multi-block sequential
// appends, punctuated by shrinking truncates and writes past EOF that leave
// holes. The shapes target the extent layout's seams: appends extend (and
// split) the tail extent through delayed allocation, truncates trim or
// shorten extents, and far-offset writes force a discontiguous extent after
// a hole — so short crash/fault windows cut from this profile land inside
// extent-split and delalloc materialization.
func (g *gen) stepBigFile() {
	const maxSize = 64 * disklayout.BlockSize
	switch r := g.rng.Intn(100); {
	case r < 12 || len(g.fds) == 0: // start another big file
		g.emit(&oplog.Op{Kind: oplog.KCreate, Path: g.freshName(g.randDir(), "big"), Perm: 0o644})
	case r < 50: // multi-block sequential append
		f := g.fds[g.rng.Intn(len(g.fds))]
		if f.size >= maxSize { // keep the working set bounded
			g.emit(&oplog.Op{Kind: oplog.KTruncate, Path: f.path, Size: f.size / 4})
			return
		}
		g.emit(&oplog.Op{Kind: oplog.KWrite, FD: f.fd, Off: f.size,
			Data: g.payload(2*disklayout.BlockSize + g.rng.Intn(6*disklayout.BlockSize))})
		if g.rng.Intn(3) == 0 {
			g.emit(&oplog.Op{Kind: oplog.KFsync, FD: f.fd})
		}
	case r < 64: // write past EOF, leaving a hole before the new extent
		f := g.fds[g.rng.Intn(len(g.fds))]
		off := f.size + int64(1+g.rng.Intn(12))*disklayout.BlockSize
		g.emit(&oplog.Op{Kind: oplog.KWrite, FD: f.fd, Off: off,
			Data: g.payload(1 + g.rng.Intn(disklayout.BlockSize))})
	case r < 78 && len(g.files) > 0: // shrink trims extents; grow adds a tail hole
		g.emit(&oplog.Op{Kind: oplog.KTruncate, Path: g.files[g.rng.Intn(len(g.files))],
			Size: g.rng.Int63n(32 * disklayout.BlockSize)})
	case r < 86: // overwrite inside allocated range (mid-extent split shapes)
		f := g.fds[g.rng.Intn(len(g.fds))]
		off := int64(0)
		if f.size > 0 {
			off = g.rng.Int63n(f.size)
		}
		g.emit(&oplog.Op{Kind: oplog.KWrite, FD: f.fd, Off: off,
			Data: g.payload(1 + g.rng.Intn(2*disklayout.BlockSize))})
	case r < 92:
		f := g.fds[g.rng.Intn(len(g.fds))]
		g.emit(&oplog.Op{Kind: oplog.KReadProbe, FD: f.fd,
			Off: g.rng.Int63n(maxSize), Size: int64(g.rng.Intn(2 * disklayout.BlockSize))})
	case r < 96:
		g.emit(&oplog.Op{Kind: oplog.KFsync, FD: g.fds[g.rng.Intn(len(g.fds))].fd})
	default:
		g.emit(&oplog.Op{Kind: oplog.KSync})
	}
}

// stepInvalid emits a deliberately failing operation for error-path
// coverage: missing paths, bad descriptors, impossible arguments.
func (g *gen) stepInvalid() {
	switch g.rng.Intn(6) {
	case 0:
		g.emit(&oplog.Op{Kind: oplog.KOpen, Path: "/no/such/path" + g.freshName("/", "x")})
	case 1:
		g.emit(&oplog.Op{Kind: oplog.KClose, FD: fsapi.FD(1000 + g.rng.Intn(1000))})
	case 2:
		g.emit(&oplog.Op{Kind: oplog.KUnlink, Path: g.randDir()}) // unlink a directory
	case 3:
		g.emit(&oplog.Op{Kind: oplog.KMkdir, Path: "/", Perm: 0o755})
	case 4:
		g.emit(&oplog.Op{Kind: oplog.KWrite, FD: fsapi.FD(2000), Off: 0, Data: []byte("x")})
	default:
		g.emit(&oplog.Op{Kind: oplog.KRmdir, Path: "/missing" + g.freshName("/", "y")})
	}
}
