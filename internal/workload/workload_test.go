package workload

import (
	"testing"

	"repro/internal/fsapi"
	"repro/internal/oplog"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Profile: Soup, Seed: 17, NumOps: 300}
	a, b := Generate(cfg), Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("op %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestGenerateLengthAndSeqs(t *testing.T) {
	for _, p := range Profiles() {
		trace := Generate(Config{Profile: p, Seed: 2, NumOps: 250})
		if len(trace) < 250 {
			t.Errorf("%s: trace too short: %d", p, len(trace))
		}
		for i, op := range trace {
			if op.Seq != uint64(i) {
				t.Errorf("%s: op %d has seq %d", p, i, op.Seq)
				break
			}
		}
	}
}

func TestGenerateOutcomesAreSelfConsistent(t *testing.T) {
	// Every fd-consuming op must reference an fd produced (and not yet
	// closed) earlier in the trace, except deliberately-invalid ops.
	for _, p := range Profiles() {
		trace := Generate(Config{Profile: p, Seed: 9, NumOps: 400})
		open := map[fsapi.FD]bool{}
		for _, op := range trace {
			switch op.Kind {
			case oplog.KCreate, oplog.KOpen:
				if op.Errno == 0 {
					if open[op.RetFD] {
						t.Fatalf("%s: fd %d double-allocated at %s", p, op.RetFD, op)
					}
					open[op.RetFD] = true
				}
			case oplog.KClose:
				if op.Errno == 0 {
					if !open[op.FD] {
						t.Fatalf("%s: close of unopened fd at %s", p, op)
					}
					delete(open, op.FD)
				}
			case oplog.KWrite, oplog.KFsync, oplog.KReadProbe:
				if op.Errno == 0 && !open[op.FD] {
					t.Fatalf("%s: successful op on unopened fd: %s", p, op)
				}
			}
		}
	}
}

func TestProfilesHaveDistinctMixes(t *testing.T) {
	count := func(p Profile, k oplog.Kind) int {
		n := 0
		for _, op := range Generate(Config{Profile: p, Seed: 4, NumOps: 500}) {
			if op.Kind == k {
				n++
			}
		}
		return n
	}
	if mh, rm := count(MetaHeavy, oplog.KFsync), count(ReadMostly, oplog.KFsync); mh <= rm {
		t.Errorf("metaheavy fsyncs (%d) not above readmostly (%d)", mh, rm)
	}
	if dh, mh := count(DataHeavy, oplog.KWrite), count(MetaHeavy, oplog.KCreate); dh == 0 || mh == 0 {
		t.Errorf("profile mixes degenerate: dataheavy writes %d, metaheavy creates %d", dh, mh)
	}
	reads := count(ReadMostly, oplog.KStatProbe) + count(ReadMostly, oplog.KReadProbe) +
		count(ReadMostly, oplog.KReadDirProbe)
	// The open-read-close idiom means each content read also spends an open
	// and a close, so pure probe ops are roughly 40% of the trace.
	if reads < 150 {
		t.Errorf("readmostly profile only %d/500 reads", reads)
	}
}

func TestSyncEveryInsertsSyncs(t *testing.T) {
	trace := Generate(Config{Profile: MetaHeavy, Seed: 6, NumOps: 300, SyncEvery: 25})
	syncs := 0
	for _, op := range trace {
		if op.Kind == oplog.KSync {
			syncs++
		}
	}
	if syncs < 5 {
		t.Errorf("SyncEvery=25 over 300 ops produced %d syncs", syncs)
	}
}

func TestInvalidFracProducesErrors(t *testing.T) {
	trace := Generate(Config{Profile: Soup, Seed: 8, NumOps: 500})
	failures := 0
	for _, op := range trace {
		if op.Errno != 0 {
			failures++
		}
	}
	if failures == 0 {
		t.Error("soup profile produced no failing operations")
	}
}

func TestGenerateDefaultGeometry(t *testing.T) {
	trace := Generate(Config{Profile: DataHeavy, Seed: 1}) // nil superblock, default NumOps
	if len(trace) < 1000 {
		t.Errorf("default NumOps not applied: %d", len(trace))
	}
}
