package workload

import (
	"time"

	"repro/internal/fsapi"
	"repro/internal/oplog"
)

// DriveStats aggregates one trace application.
type DriveStats struct {
	// Applied is the number of operations executed (always len(trace)).
	Applied int
	// Matched counts ops whose executed outcome equals the oracle record —
	// same errno and, for allocating ops, same descriptor/inode/byte-count
	// numbers. This is the "completed as specified" definition the
	// availability experiment uses.
	Matched int
	// Errors counts ops that returned a nonzero errno.
	Errors int
}

// Drive applies an oracle trace to any fsapi.FS through the oplog executor.
// It is the one driver seam shared by the CLIs, the experiments, and the
// serving layers: because the target is the interface, the same trace drives
// a raw base filesystem, a supervised core.FS, a volmgr tenant, or a remote
// fswire client identically. Each record is cloned and its recorded outcome
// cleared before execution, so the input trace is never mutated and can be
// replayed.
func Drive(fs fsapi.FS, trace []*oplog.Op) DriveStats {
	return DriveObserved(fs, trace, nil)
}

// DriveObserved is Drive with a per-op hook: after each operation executes,
// observe receives the oracle record, the executed op (outcome fields
// filled), and the operation's wall-clock latency. A nil observe skips the
// per-op timing entirely.
// AsyncFS is a filesystem whose operations can be pipelined: SubmitOp fires
// an operation without waiting and returns a wait function that records the
// outcome into the op; Flush is the pipeline barrier. The fswire client
// implements it; DrivePipelined is written against the interface so the
// driver stays free of wire-level dependencies.
type AsyncFS interface {
	fsapi.FS
	SubmitOp(op *oplog.Op) interface{ Wait() }
	Flush() error
}

// DrivePipelined is Drive over an AsyncFS: the whole trace is submitted in
// order without waiting for responses, then outcomes are collected. Against
// a backend that executes a connection's requests in submission order (the
// fswire contract), the per-op outcomes and final state are identical to a
// sequential Drive — only the round trips overlap. observe (optional) runs
// per op after its outcome lands, in trace order.
func DrivePipelined(fs AsyncFS, trace []*oplog.Op, observe func(rec, got *oplog.Op)) DriveStats {
	type slot struct {
		rec, got *oplog.Op
		wait     interface{ Wait() }
	}
	slots := make([]slot, 0, len(trace))
	for _, rec := range trace {
		op := rec.Clone()
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		slots = append(slots, slot{rec: rec, got: op, wait: fs.SubmitOp(op)})
	}
	var st DriveStats
	for _, s := range slots {
		s.wait.Wait()
		st.Applied++
		if s.got.Errno != 0 {
			st.Errors++
		}
		if s.got.Errno == s.rec.Errno && s.got.RetFD == s.rec.RetFD &&
			s.got.RetIno == s.rec.RetIno && s.got.RetN == s.rec.RetN {
			st.Matched++
		}
		if observe != nil {
			observe(s.rec, s.got)
		}
	}
	return st
}

func DriveObserved(fs fsapi.FS, trace []*oplog.Op, observe func(rec, got *oplog.Op, d time.Duration)) DriveStats {
	var st DriveStats
	for _, rec := range trace {
		op := rec.Clone()
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		var t0 time.Time
		if observe != nil {
			t0 = time.Now()
		}
		_ = oplog.Apply(fs, op)
		st.Applied++
		if op.Errno != 0 {
			st.Errors++
		}
		if op.Errno == rec.Errno && op.RetFD == rec.RetFD && op.RetIno == rec.RetIno && op.RetN == rec.RetN {
			st.Matched++
		}
		if observe != nil {
			observe(rec, op, time.Since(t0))
		}
	}
	return st
}
