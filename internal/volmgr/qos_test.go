package volmgr

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fserr"
	"repro/internal/telemetry"
)

func TestTokenBucketReserve(t *testing.T) {
	b := newTokenBucket(100, 1) // 100 ops/s, burst 1
	if d, ok := b.reserve(time.Second); !ok || d != 0 {
		t.Fatalf("first reserve: d=%v ok=%v, want instant admit", d, ok)
	}
	d, ok := b.reserve(time.Second)
	if !ok || d <= 0 {
		t.Fatalf("second reserve: d=%v ok=%v, want throttled admit", d, ok)
	}
	// The bucket is now two tokens in debt; a tiny maxWait cannot cover the
	// ~20ms refill, so the reservation is refused (the caller sheds).
	if _, ok := b.reserve(time.Millisecond); ok {
		t.Fatal("third reserve with 1ms budget should be refused")
	}
	if b := newTokenBucket(0, 0); b != nil {
		t.Fatal("rate 0 should disable the bucket")
	}
}

func TestAdmissionDepthCap(t *testing.T) {
	sink := telemetry.New()
	fleetShed := telemetry.New().Counter("volmgr.qos.shed")
	a := newAdmission(QoSConfig{MaxQueueDepth: 2}, sink, fleetShed)
	if err := a.enter("v"); err != nil {
		t.Fatalf("enter 1: %v", err)
	}
	if err := a.enter("v"); err != nil {
		t.Fatalf("enter 2: %v", err)
	}
	if err := a.enter("v"); !errors.Is(err, fserr.ErrOverloaded) {
		t.Fatalf("enter 3 at cap: got %v, want ErrOverloaded", err)
	}
	a.exit()
	if err := a.enter("v"); err != nil {
		t.Fatalf("enter after exit: %v", err)
	}
	if got := sink.Snapshot().Counters["volmgr.qos.shed"]; got != 1 {
		t.Fatalf("volume shed counter = %d, want 1", got)
	}
	if got := fleetShed.Value(); got != 1 {
		t.Fatalf("fleet shed counter = %d, want 1", got)
	}
}

// TestVolumeRateShed drives a volume past its rate contract end to end: the
// second operation is shed with ErrOverloaded before touching the filesystem,
// and the shed is visible on both the volume sink and the fleet rollup.
func TestVolumeRateShed(t *testing.T) {
	m := newManager(t, Config{})
	vc := smallVol()
	vc.QoS = &QoSConfig{OpsPerSec: 0.001, Burst: 1} // one op, then an ~17min refill
	v, err := m.Create("limited", vc)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := v.Mkdir("/ok", 0o755); err != nil {
		t.Fatalf("first op within burst: %v", err)
	}
	err = v.Mkdir("/shed", 0o755)
	if !errors.Is(err, fserr.ErrOverloaded) {
		t.Fatalf("second op: got %v, want ErrOverloaded", err)
	}
	if fserr.Errno(err) != 11 {
		t.Fatalf("shed errno = %d, want 11 (EAGAIN)", fserr.Errno(err))
	}
	// The bucket stays in debt, so reads shed too: QoS gates the whole
	// operation set, not just mutations.
	if _, serr := v.Stat("/ok"); !errors.Is(serr, fserr.ErrOverloaded) {
		t.Fatalf("read during overload: got %v, want ErrOverloaded", serr)
	}
	snap := m.FleetSnapshot()
	if got := snap.Counters["volmgr.qos.shed"]; got < 1 {
		t.Fatalf("fleet volmgr.qos.shed = %d, want >= 1", got)
	}
	if got := v.Telemetry().Snapshot().Counters["volmgr.qos.shed"]; got < 1 {
		t.Fatalf("volume volmgr.qos.shed = %d, want >= 1", got)
	}
}

// TestDefaultQoSInherited checks a volume without its own QoS picks up the
// manager default.
func TestDefaultQoSInherited(t *testing.T) {
	m := newManager(t, Config{DefaultQoS: QoSConfig{OpsPerSec: 0.001, Burst: 1}})
	v, err := m.Create("inherit", smallVol())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := v.Mkdir("/ok", 0o755); err != nil {
		t.Fatalf("first op: %v", err)
	}
	if err := v.Mkdir("/shed", 0o755); !errors.Is(err, fserr.ErrOverloaded) {
		t.Fatalf("second op: got %v, want ErrOverloaded", err)
	}
}
