// Package volmgr is the multi-volume serving layer: one supervisor process
// hosting many independent RAE-supervised filesystem instances (volumes) over
// a shared device pool, with the isolation disciplines that make "many
// tenants, one process" safe:
//
//   - Fault isolation. Every volume is a private core.FS with its own
//     recovery fence, telemetry sink, and fault-injection registry, so a
//     recovery on volume A — gate closed, operations draining, shadow
//     replaying — never blocks an operation on volume B. Nothing per-volume
//     is process-global.
//   - Cache budgeting. The volumes' buffer caches share one fleet-wide
//     clean-buffer budget, carved into per-volume quotas by a rebalancer
//     that observes per-window miss pressure and moves capacity from cold
//     tenants to hot ones (cache.BufferCache.SetCleanBudget is the
//     donation/reclaim primitive; quotas survive contained reboots via
//     core.FS.SetCacheBudget). pFSCK's lesson — resource-aware scaling of
//     checker crews — applied to cache capacity.
//   - Admission control and QoS. Each volume's operation path runs behind a
//     token bucket (rate + burst) and a queue-depth cap; overload is shed
//     with fserr.ErrOverloaded before it reaches the filesystem, so one
//     tenant's burst degrades that tenant, not the fleet.
//   - Shared verification budget. Scrub passes are scheduled by the manager
//     over one bounded worker pool instead of one ticker per volume
//     (core.Config.ExternalScrub), so background checking cost is fleet-
//     controlled.
//   - Fleet telemetry. Per-volume sinks stay isolated; the manager keeps its
//     own fleet sink (volmgr.* gauges, per-tenant op latency histograms) and
//     FleetSnapshot merges everything into one rollup (telemetry.Merge) that
//     cmd/fsstats renders.
//
// Lifecycle is concurrent-safe: Create, Open, Close, and Destroy may race
// with each other and with operations on other volumes; transitions drain
// the target volume's in-flight operations through a per-volume RWMutex
// before they act.
package volmgr

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fserr"
	"repro/internal/mkfs"
	"repro/internal/telemetry"
)

// Config tunes the manager.
type Config struct {
	// PoolBlocks is the shared device pool's capacity in blocks; volume
	// creation draws from it and destruction returns to it. Required.
	PoolBlocks uint32
	// CacheBudgetBlocks is the fleet-wide clean-buffer budget shared by all
	// open volumes' buffer caches. 0 disables budgeting: every volume keeps
	// its own configured cache size and the rebalancer never runs.
	CacheBudgetBlocks int
	// CacheMinPerVolume is the quota floor no rebalance takes a volume below
	// (default 64 blocks). A tenant that goes idle donates capacity but is
	// never starved of its working minimum.
	CacheMinPerVolume int
	// RebalanceInterval is the period of the background quota rebalancer;
	// 0 leaves rebalancing to explicit RebalanceOnce calls.
	RebalanceInterval time.Duration
	// ScrubInterval is the period of the shared scrub scheduler: every
	// interval, each open volume gets one scrub pass, executed by a bounded
	// worker pool rather than per-volume tickers. 0 disables scheduling.
	ScrubInterval time.Duration
	// ScrubWorkers bounds how many volumes scrub concurrently (default 2).
	ScrubWorkers int
	// DefaultQoS applies to volumes whose VolumeConfig leaves QoS nil. The
	// zero value admits everything.
	DefaultQoS QoSConfig
	// Telemetry is the fleet sink for volmgr.* instruments. Nil creates a
	// private sink — never the process-global default, which per-volume
	// isolation forbids sharing implicitly.
	Telemetry *telemetry.Sink
}

func (c *Config) fill() error {
	if c.PoolBlocks == 0 {
		return fmt.Errorf("volmgr: PoolBlocks is required: %w", fserr.ErrInvalid)
	}
	if c.CacheMinPerVolume <= 0 {
		c.CacheMinPerVolume = 64
	}
	if c.ScrubWorkers <= 0 {
		c.ScrubWorkers = 2
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.New()
	}
	return nil
}

// VolumeConfig parameterizes one volume.
type VolumeConfig struct {
	// Blocks is the volume's device size (default 16384 = 64 MiB).
	Blocks uint32
	// Format configures mkfs for Create (ignored by Open).
	Format mkfs.Options
	// Core configures the volume's supervisor. Telemetry nil gets a fresh
	// per-volume sink (never the process-global default). Base.Injector, if
	// set, must not be shared between volumes: the registry is the per-volume
	// bug surface, and sharing one would cross-contaminate firing history and
	// probability streams.
	Core core.Config
	// QoS overrides the manager's DefaultQoS for this volume; nil inherits.
	QoS *QoSConfig
}

// Manager hosts the fleet. Create one with New, shut it down with Shutdown.
type Manager struct {
	cfg   Config
	pool  *DevicePool
	fleet *telemetry.Sink

	mu   sync.RWMutex
	vols map[string]*Volume
	// open counts mounted volumes, maintained by mountLocked/unmountedLocked
	// so gauge refreshes and quota seeding never touch per-volume locks.
	open atomic.Int64

	stop     chan struct{}
	bg       sync.WaitGroup
	stopOnce sync.Once

	telVolumes    *telemetry.Gauge
	telRecovering *telemetry.Gauge
	telPoolUsed   *telemetry.Gauge
	telPoolFree   *telemetry.Gauge
	telShed       *telemetry.Counter
	telScrubs     *telemetry.Counter

	rebal     rebalancer
	scrubbing chan struct{} // semaphore: one fleet scrub sweep at a time
}

// New creates a manager and starts its background loops (rebalancer, scrub
// scheduler) as configured.
func New(cfg Config) (*Manager, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:       cfg,
		pool:      NewDevicePool(cfg.PoolBlocks),
		fleet:     cfg.Telemetry,
		vols:      make(map[string]*Volume),
		stop:      make(chan struct{}),
		scrubbing: make(chan struct{}, 1),
	}
	m.telVolumes = m.fleet.Gauge("volmgr.volumes")
	m.telRecovering = m.fleet.Gauge("volmgr.recovering")
	m.telPoolUsed = m.fleet.Gauge("volmgr.pool.used_blocks")
	m.telPoolFree = m.fleet.Gauge("volmgr.pool.free_blocks")
	m.telShed = m.fleet.Counter("volmgr.qos.shed")
	m.telScrubs = m.fleet.Counter("volmgr.scrub.passes")
	m.rebal.init(m)
	if cfg.RebalanceInterval > 0 && cfg.CacheBudgetBlocks > 0 {
		m.bg.Add(1)
		go m.rebalanceLoop()
	}
	if cfg.ScrubInterval > 0 {
		m.bg.Add(1)
		go m.scrubLoop()
	}
	return m, nil
}

// Telemetry returns the fleet sink (volmgr.* instruments only; per-volume
// instruments live on each volume's own sink).
func (m *Manager) Telemetry() *telemetry.Sink { return m.fleet }

// Pool returns the shared device pool (for capacity inspection).
func (m *Manager) Pool() *DevicePool { return m.pool }

// Create allocates a device from the pool, formats it, mounts a supervised
// filesystem over it, and registers the volume under name. The returned
// volume is open and serving.
func (m *Manager) Create(name string, vcfg VolumeConfig) (*Volume, error) {
	if name == "" {
		return nil, fmt.Errorf("volmgr: empty volume name: %w", fserr.ErrInvalid)
	}
	if vcfg.Blocks == 0 {
		vcfg.Blocks = 16384
	}
	v, err := m.register(name, vcfg)
	if err != nil {
		return nil, err
	}
	// v.opmu is held: every other goroutine that finds v in the map blocks
	// until the mount completes or the registration is rolled back.
	defer v.opmu.Unlock()
	dev, err := m.pool.Allocate(vcfg.Blocks)
	if err != nil {
		m.unregister(name)
		return nil, err
	}
	if _, err := mkfs.Format(dev, vcfg.Format); err != nil {
		m.pool.Release(vcfg.Blocks)
		m.unregister(name)
		return nil, fmt.Errorf("volmgr: format %q: %w", name, err)
	}
	v.dev = dev
	if err := v.mountLocked(); err != nil {
		m.pool.Release(vcfg.Blocks)
		m.unregister(name)
		return nil, err
	}
	m.updateGauges()
	m.fleet.Event("volume", "created %q (%d blocks)", name, vcfg.Blocks)
	return v, nil
}

// register inserts a pending volume under name with its lifecycle lock held.
func (m *Manager) register(name string, vcfg VolumeConfig) (*Volume, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.vols[name]; ok {
		return nil, fmt.Errorf("volmgr: volume %q: %w", name, fserr.ErrExist)
	}
	v := newVolume(m, name, vcfg)
	v.opmu.Lock()
	m.vols[name] = v
	return v, nil
}

func (m *Manager) unregister(name string) {
	m.mu.Lock()
	delete(m.vols, name)
	m.mu.Unlock()
}

// Get returns the registered volume, open or closed.
func (m *Manager) Get(name string) (*Volume, error) {
	m.mu.RLock()
	v, ok := m.vols[name]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("volmgr: volume %q: %w", name, fserr.ErrNotExist)
	}
	return v, nil
}

// Open remounts a closed volume over its existing device contents.
func (m *Manager) Open(name string) (*Volume, error) {
	v, err := m.Get(name)
	if err != nil {
		return nil, err
	}
	v.opmu.Lock()
	defer v.opmu.Unlock()
	switch v.state {
	case stateOpen:
		return nil, fmt.Errorf("volmgr: volume %q already open: %w", name, fserr.ErrBusy)
	case stateDestroyed:
		return nil, fmt.Errorf("volmgr: volume %q: %w", name, fserr.ErrNotExist)
	}
	if err := v.mountLocked(); err != nil {
		return nil, err
	}
	m.updateGauges()
	m.fleet.Event("volume", "opened %q", name)
	return v, nil
}

// Close drains the volume's in-flight operations, unmounts its supervisor
// (sync + scrubber stop), and keeps the device and registration so Open can
// bring it back.
func (m *Manager) Close(name string) error {
	v, err := m.Get(name)
	if err != nil {
		return err
	}
	v.opmu.Lock()
	defer v.opmu.Unlock()
	if v.state != stateOpen {
		return fmt.Errorf("volmgr: volume %q not open: %w", name, fserr.ErrInvalid)
	}
	err = v.sup.Unmount()
	v.unmountedLocked()
	v.state = stateClosed
	m.updateGauges()
	m.fleet.Event("volume", "closed %q", name)
	return err
}

// Destroy removes the volume entirely: drains and unmounts if open, releases
// its blocks back to the pool, and unregisters the name. Data is gone.
func (m *Manager) Destroy(name string) error {
	v, err := m.Get(name)
	if err != nil {
		return err
	}
	v.opmu.Lock()
	if v.state == stateDestroyed {
		v.opmu.Unlock()
		return fmt.Errorf("volmgr: volume %q: %w", name, fserr.ErrNotExist)
	}
	var uerr error
	if v.state == stateOpen {
		// Best-effort clean unmount; a volume mid-corruption still destroys.
		if uerr = v.sup.Unmount(); uerr != nil {
			v.sup.Kill()
		}
		v.unmountedLocked()
	}
	v.state = stateDestroyed
	v.opmu.Unlock()
	m.mu.Lock()
	// The entry may already be gone if a racing Destroy lost; the state check
	// above makes the release below happen exactly once.
	delete(m.vols, name)
	m.mu.Unlock()
	m.pool.Release(v.blocks)
	m.updateGauges()
	m.fleet.Event("volume", "destroyed %q (%d blocks returned)", name, v.blocks)
	return uerr
}

// Volumes returns the registered volume names in sorted order.
func (m *Manager) Volumes() []string {
	m.mu.RLock()
	names := make([]string, 0, len(m.vols))
	for name := range m.vols {
		names = append(names, name)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	return names
}

// openVolumes snapshots the currently registered volumes (any state; callers
// acquire per-volume locks and re-check state themselves).
func (m *Manager) openVolumes() []*Volume {
	m.mu.RLock()
	out := make([]*Volume, 0, len(m.vols))
	for _, v := range m.vols {
		out = append(out, v)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// updateGauges refreshes the fleet-level gauges: volume count, volumes
// currently inside a recovery, pool occupancy.
func (m *Manager) updateGauges() {
	var open, recovering int64
	for _, v := range m.openVolumes() {
		if sup := v.supervisor(); sup != nil {
			open++
			if sup.Recovering() {
				recovering++
			}
		}
	}
	m.telVolumes.Set(open)
	m.telRecovering.Set(recovering)
	m.telPoolUsed.Set(int64(m.pool.Used()))
	m.telPoolFree.Set(int64(m.pool.Free()))
}

// FleetSnapshot refreshes the fleet gauges and merges the fleet sink with
// every volume's sink into one rollup (telemetry.Merge): layer counters sum
// across tenants, histograms merge bucket-exactly, and the volmgr.* fleet
// instruments ride along.
func (m *Manager) FleetSnapshot() telemetry.Snapshot {
	m.updateGauges()
	snaps := []telemetry.Snapshot{m.fleet.Snapshot()}
	for _, v := range m.openVolumes() {
		snaps = append(snaps, v.sink.Snapshot())
	}
	return telemetry.Merge(snaps...)
}

// Shutdown stops the background loops and closes every open volume. The
// manager must not be used afterwards. Returns the first unmount error.
func (m *Manager) Shutdown() error {
	m.stopOnce.Do(func() { close(m.stop) })
	m.bg.Wait()
	var first error
	for _, v := range m.openVolumes() {
		if v.supervisor() == nil {
			continue
		}
		if err := m.Close(v.name); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m *Manager) rebalanceLoop() {
	defer m.bg.Done()
	tick := time.NewTicker(m.cfg.RebalanceInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.RebalanceOnce()
		}
	}
}

func (m *Manager) scrubLoop() {
	defer m.bg.Done()
	tick := time.NewTicker(m.cfg.ScrubInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.ScrubAll()
		}
	}
}
