package volmgr

import (
	"testing"
	"time"
)

// TestSharedScrubScheduler: volumes mounted under a manager with scrub
// scheduling get externally driven passes — no private tickers — and one
// ScrubAll sweep runs exactly one pass per open volume through the shared
// worker pool.
func TestSharedScrubScheduler(t *testing.T) {
	// A long interval keeps the background loop quiet; the test drives
	// sweeps explicitly.
	m := newManager(t, Config{ScrubInterval: time.Hour, ScrubWorkers: 2})
	a, err := m.Create("a", smallVol())
	if err != nil {
		t.Fatalf("Create a: %v", err)
	}
	b, err := m.Create("b", smallVol())
	if err != nil {
		t.Fatalf("Create b: %v", err)
	}
	writeFile(t, a, "/f", []byte("scrub me"))
	if err := a.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	if ran := m.ScrubAll(); ran != 2 {
		t.Fatalf("ScrubAll ran %d passes, want 2", ran)
	}
	if got := a.Stats().ScrubPasses; got != 1 {
		t.Fatalf("volume a scrub passes = %d, want 1", got)
	}
	if got := b.Stats().ScrubPasses; got != 1 {
		t.Fatalf("volume b scrub passes = %d, want 1", got)
	}
	if got := m.Telemetry().Snapshot().Counters["volmgr.scrub.passes"]; got != 2 {
		t.Fatalf("fleet scrub passes = %d, want 2", got)
	}

	// A closed volume is skipped, not an error.
	if err := m.Close("b"); err != nil {
		t.Fatalf("Close b: %v", err)
	}
	if ran := m.ScrubAll(); ran != 1 {
		t.Fatalf("ScrubAll with one closed volume ran %d, want 1", ran)
	}
	// Clean passes are visible in the per-volume scrub telemetry.
	if got := a.Telemetry().Snapshot().Counters["scrub.passes"]; got != 2 {
		t.Fatalf("volume a scrub.passes counter = %d, want 2", got)
	}
}
