package volmgr

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fserr"
)

// TestConcurrentLifecycleHammer is the -race workout the issue asks for:
// volumes are created, opened, closed, faulted, and destroyed concurrently
// while workers pound the whole fleet with operations and the background
// rebalancer and scrub scheduler run. Any deadlock hangs the test; any fence
// leakage or shared state trips the race detector; goroutines must all drain
// after Shutdown.
func TestConcurrentLifecycleHammer(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	m, err := New(Config{
		PoolBlocks:        512 * 1024,
		CacheBudgetBlocks: 512,
		CacheMinPerVolume: 16,
		RebalanceInterval: 20 * time.Millisecond,
		ScrubInterval:     50 * time.Millisecond,
		ScrubWorkers:      2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const slots = 6
	name := func(i int) string { return fmt.Sprintf("slot%d", i) }
	// Every volume gets a private registry with a bounded deterministic crash
	// so fault storms run concurrently with lifecycle churn.
	vcfg := func(i int) VolumeConfig {
		reg := faultinject.NewRegistry(int64(i) + 1)
		reg.Arm(&faultinject.Specimen{
			ID: "hammer", Class: faultinject.Crash,
			Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "boom",
			MaxFires: 2,
		})
		vc := smallVol()
		vc.Core.Base.Injector = reg
		return vc
	}
	for i := 0; i < slots; i++ {
		if _, err := m.Create(name(i), vcfg(i)); err != nil {
			t.Fatalf("Create %s: %v", name(i), err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Workers: mixed operations against random volumes, tolerating every
	// lifecycle and overload error — those are the API contract, not bugs.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v, err := m.Get(name(rng.Intn(slots)))
				if err != nil {
					continue
				}
				var oerr error
				switch i % 8 {
				case 0:
					oerr = v.Mkdir(fmt.Sprintf("/d%d-%d", w, i), 0o755)
				case 1:
					// The fault path: trips a recovery while others operate.
					oerr = v.Mkdir(fmt.Sprintf("/boom%d-%d", w, i), 0o755)
				case 2, 3:
					var fd int
					if f, cerr := v.Create(fmt.Sprintf("/f%d-%d", w, i), 0o644); cerr == nil {
						fd = int(f)
						_, werr := v.WriteAt(f, 0, []byte("hammer payload"))
						oerr = errors.Join(werr, v.Close(f))
						_ = fd
					} else {
						oerr = cerr
					}
				case 4:
					_, oerr = v.Readdir("/")
				case 5:
					_, oerr = v.Stat("/")
				case 6:
					oerr = v.Sync()
				case 7:
					_, oerr = v.ReadAt(-1, 0, 8) // bad fd: error path under load
				}
				if oerr != nil && !tolerable(oerr) {
					t.Errorf("worker %d op %d: %v", w, i, oerr)
					return
				}
			}
		}(w)
	}

	// Lifecycle churn: one goroutine cycles volumes through
	// close → open → destroy → create while the workers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n := name(rng.Intn(slots))
			switch i % 3 {
			case 0:
				_ = m.Close(n)
				_, _ = m.Open(n)
			case 1:
				_ = m.Destroy(n)
				if _, err := m.Create(n, vcfg(i%slots)); err != nil && !errors.Is(err, fserr.ErrExist) {
					t.Errorf("re-create %s: %v", n, err)
					return
				}
			case 2:
				m.RebalanceOnce()
				m.ScrubAll()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := m.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := m.Create("late", smallVol()); err != nil {
		// Creating after shutdown still works mechanically (no loops run);
		// destroy it so the goroutine accounting below is clean.
		t.Logf("post-shutdown create: %v", err)
	} else if err := m.Destroy("late"); err != nil {
		t.Fatalf("Destroy late: %v", err)
	}

	// Goroutine-leak check: everything the manager and its volumes spawned
	// (scrub loops, queue workers, watchdogs) must exit after Shutdown.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= goroutinesBefore+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after shutdown\n%s",
				goroutinesBefore, now, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// tolerable says whether an error is an expected consequence of racing
// lifecycle transitions, QoS, or deliberately bad arguments — anything else
// is a real failure.
func tolerable(err error) bool {
	return errors.Is(err, fserr.ErrInvalid) ||
		errors.Is(err, fserr.ErrNotExist) ||
		errors.Is(err, fserr.ErrExist) ||
		errors.Is(err, fserr.ErrBusy) ||
		errors.Is(err, fserr.ErrOverloaded) ||
		errors.Is(err, fserr.ErrBadFD) ||
		errors.Is(err, fserr.ErrNoSpace)
}
