package volmgr

import (
	"fmt"
	"testing"

	"repro/internal/faultinject"
)

// TestRebalanceMovesCapacityToHotVolume: two volumes under one cache budget;
// the one generating buffer-cache misses reclaims capacity from the idle one,
// the fleet sum stays exactly at budget, and no volume drops below the floor.
func TestRebalanceMovesCapacityToHotVolume(t *testing.T) {
	const budget, floor = 160, 16
	m := newManager(t, Config{CacheBudgetBlocks: budget, CacheMinPerVolume: floor})
	hot, err := m.Create("hot", smallVol())
	if err != nil {
		t.Fatalf("Create hot: %v", err)
	}
	cold, err := m.Create("cold", smallVol())
	if err != nil {
		t.Fatalf("Create cold: %v", err)
	}
	// Zero the miss cursors so mount-time traffic doesn't count as demand.
	m.RebalanceOnce()

	// Hot working set: write well past the ~80-block equal share, sync so the
	// buffers turn clean (and evictable), then read everything back — the
	// evicted blocks miss.
	payload := make([]byte, 4096)
	for i := 0; i < 150; i++ {
		writeFile(t, hot, fmt.Sprintf("/f%03d", i), payload)
	}
	if err := hot.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	for i := 0; i < 150; i++ {
		readFile(t, hot, fmt.Sprintf("/f%03d", i), len(payload))
	}

	stats := m.RebalanceOnce()
	if stats.Volumes != 2 {
		t.Fatalf("participants = %d, want 2", stats.Volumes)
	}
	qh, qc := stats.Quotas["hot"], stats.Quotas["cold"]
	if qh+qc != budget {
		t.Fatalf("quota sum %d+%d != budget %d", qh, qc, budget)
	}
	if qh <= qc {
		t.Fatalf("hot quota %d not above cold quota %d", qh, qc)
	}
	if qc < floor {
		t.Fatalf("cold quota %d below floor %d", qc, floor)
	}
	// The applied quotas are live on the supervisors and on the fleet sink.
	// The cache splits its budget evenly across lock shards, so the live
	// value rounds down to a shard multiple — compare with that tolerance.
	if got := hot.Supervisor().CacheBudget(); qh-got >= 16 || got > qh {
		t.Fatalf("hot live budget %d != quota %d", got, qh)
	}
	if got := cold.Supervisor().CacheBudget(); qc-got >= 16 || got > qc {
		t.Fatalf("cold live budget %d != quota %d", got, qc)
	}
	snap := m.Telemetry().Snapshot()
	if got := snap.Counters["volmgr.cache.rebalance"]; got != 2 {
		t.Fatalf("rebalance passes = %d, want 2", got)
	}
	if snap.Counters["volmgr.cache.rebalanced_blocks"] == 0 {
		t.Fatal("no capacity recorded as moved")
	}
	if got := snap.Gauges["volmgr.cache.quota.hot"]; got != int64(qh) {
		t.Fatalf("quota gauge %d != %d", got, qh)
	}
}

// TestQuotaSurvivesRecovery: a budgeted quota must persist across the
// volume's contained reboot — the fresh base instance the recovery mounts
// gets the quota, not the configured default cache size.
func TestQuotaSurvivesRecovery(t *testing.T) {
	const budget = 256 // well below the 1024-block default cache
	m := newManager(t, Config{CacheBudgetBlocks: budget, CacheMinPerVolume: 16})
	reg := faultinject.NewRegistry(3)
	reg.Arm(&faultinject.Specimen{
		ID: "reboot", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "boom",
		MaxFires: 1,
	})
	vc := smallVol()
	vc.Core.Base.Injector = reg
	v, err := m.Create("only", vc)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if got := v.Supervisor().CacheBudget(); got != budget {
		t.Fatalf("seeded quota = %d, want %d", got, budget)
	}
	if err := v.Mkdir("/boom", 0o755); err != nil {
		t.Fatalf("Mkdir /boom should be masked: %v", err)
	}
	if got := v.Stats().Recoveries; got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
	if got := v.Supervisor().CacheBudget(); got != budget {
		t.Fatalf("quota after contained reboot = %d, want %d", got, budget)
	}
}
