package volmgr

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/telemetry"

	"repro/internal/blockdev"
)

// Volume lifecycle states. Transitions happen only under opmu's write lock.
const (
	stateOpen = iota
	stateClosed
	stateDestroyed
)

// Volume is one tenant: a private supervised filesystem plus the manager's
// isolation wrappers (admission control, per-tenant telemetry, lifecycle
// draining). It implements fsapi.FS; applications use it exactly like a
// core.FS, and a recovery or overload on one volume never touches another.
type Volume struct {
	mgr    *Manager
	name   string
	vcfg   VolumeConfig
	blocks uint32
	dev    *blockdev.Mem

	// opmu is the lifecycle drain: every operation holds the read side for
	// its full duration; Create/Open/Close/Destroy take the write side, so a
	// transition waits for in-flight operations and no operation runs on a
	// half-mounted or unmounting supervisor.
	opmu  sync.RWMutex
	state int
	sup   *core.FS
	// supAtomic mirrors sup for lock-free readers (fleet gauges, the
	// rebalancer's skip-if-busy probes) that must not touch opmu.
	supAtomic atomic.Pointer[core.FS]

	// sink is the volume's private telemetry sink. It is never the
	// process-global default and never shared with another volume; that
	// isolation is the point of the serving layer.
	sink *telemetry.Sink
	adm  *admission

	// opLat lives on the FLEET sink under volmgr.op_ns.<name>: per-tenant
	// latency distributions side by side in one rollup, which is how E14
	// measures a healthy tenant's p99 while a storm hits its neighbor.
	opLat  *telemetry.Histogram
	volOps *telemetry.Counter

	// lastHits/lastMisses are the rebalancer's per-window cache-stat cursors,
	// guarded by the rebalancer's own mutex.
	lastHits, lastMisses int64
}

var _ fsapi.FS = (*Volume)(nil)

func newVolume(m *Manager, name string, vcfg VolumeConfig) *Volume {
	sink := vcfg.Core.Telemetry
	if sink == nil {
		// Always a fresh private sink — the volmgr.qos.* instruments land
		// here even when the tenant opted its core out of telemetry.
		sink = telemetry.New()
	}
	qos := m.cfg.DefaultQoS
	if vcfg.QoS != nil {
		qos = *vcfg.QoS
	}
	v := &Volume{
		mgr:    m,
		name:   name,
		vcfg:   vcfg,
		blocks: vcfg.Blocks,
		state:  stateClosed,
		sink:   sink,
		opLat:  m.fleet.Histogram("volmgr.op_ns." + name),
		volOps: m.fleet.Counter("volmgr.ops." + name),
	}
	v.adm = newAdmission(qos, sink, m.telShed)
	return v
}

// mountLocked mounts the supervisor over the volume's device. Caller holds
// opmu's write side.
func (v *Volume) mountLocked() error {
	cfg := v.vcfg.Core
	if cfg.Telemetry == nil && !cfg.NoTelemetry {
		cfg.Telemetry = v.sink
	}
	if v.mgr.cfg.ScrubInterval > 0 && cfg.ScrubInterval == 0 {
		// The manager's shared worker pool schedules this volume's scrub
		// passes; a tenant that configured its own interval keeps it.
		cfg.ExternalScrub = true
	}
	sup, err := core.Mount(v.dev, cfg)
	if err != nil {
		return fmt.Errorf("volmgr: mount %q: %w", v.name, err)
	}
	v.sup = sup
	v.supAtomic.Store(sup)
	v.state = stateOpen
	open := v.mgr.open.Add(1)
	if budget := v.mgr.cfg.CacheBudgetBlocks; budget > 0 {
		// Seed an equal-share quota; the miss-driven rebalancer refines it.
		quota := budget / int(open)
		if quota < v.mgr.cfg.CacheMinPerVolume {
			quota = v.mgr.cfg.CacheMinPerVolume
		}
		sup.SetCacheBudget(quota)
		v.mgr.fleet.Gauge("volmgr.cache.quota." + v.name).Set(int64(quota))
	}
	return nil
}

// unmountedLocked records that the supervisor is gone. Caller holds opmu's
// write side and has already unmounted or killed v.sup.
func (v *Volume) unmountedLocked() {
	v.sup = nil
	v.supAtomic.Store(nil)
	v.mgr.open.Add(-1)
}

// supervisor returns the current supervisor without touching opmu (nil when
// not open). For lock-free observers; the operation path uses admit instead.
func (v *Volume) supervisor() *core.FS { return v.supAtomic.Load() }

// Name returns the volume's registered name.
func (v *Volume) Name() string { return v.name }

// Telemetry returns the volume's private sink.
func (v *Volume) Telemetry() *telemetry.Sink { return v.sink }

// Supervisor exposes the volume's core.FS for stats and experiment
// instrumentation; nil when the volume is not open.
func (v *Volume) Supervisor() *core.FS { return v.supervisor() }

// Device exposes the volume's backing device so fault-injection harnesses
// can arm blockdev fault plans against one tenant (the storm half of the
// multitenant experiment). The device persists across close/open cycles.
func (v *Volume) Device() *blockdev.Mem { return v.dev }

// Stats returns the supervisor's counters (zero value when not open).
func (v *Volume) Stats() core.Stats {
	if sup := v.supervisor(); sup != nil {
		return sup.Stats()
	}
	return core.Stats{}
}

// admit is the operation path's front door: lifecycle check, QoS admission,
// latency timing. On success the caller runs op against the returned
// supervisor and must call done (which releases in reverse order).
func (v *Volume) admit() (*core.FS, func(), error) {
	v.opmu.RLock()
	if v.state != stateOpen {
		destroyed := v.state == stateDestroyed
		v.opmu.RUnlock()
		if destroyed {
			return nil, nil, fmt.Errorf("volmgr: volume %q destroyed: %w", v.name, fserr.ErrNotExist)
		}
		return nil, nil, fmt.Errorf("volmgr: volume %q not open: %w", v.name, fserr.ErrInvalid)
	}
	if err := v.adm.enter(v.name); err != nil {
		v.opmu.RUnlock()
		return nil, nil, err
	}
	sup := v.sup
	v.volOps.Inc()
	t := telemetry.StartTimer(v.opLat)
	return sup, func() {
		t.Stop()
		v.adm.exit()
		v.opmu.RUnlock()
	}, nil
}

// --- fsapi.FS facade ---

// Mkdir implements fsapi.FS.
func (v *Volume) Mkdir(path string, perm uint16) error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.Mkdir(path, perm)
}

// Rmdir implements fsapi.FS.
func (v *Volume) Rmdir(path string) error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.Rmdir(path)
}

// Create implements fsapi.FS.
func (v *Volume) Create(path string, perm uint16) (fsapi.FD, error) {
	sup, done, err := v.admit()
	if err != nil {
		return -1, err
	}
	defer done()
	return sup.Create(path, perm)
}

// Open implements fsapi.FS.
func (v *Volume) Open(path string) (fsapi.FD, error) {
	sup, done, err := v.admit()
	if err != nil {
		return -1, err
	}
	defer done()
	return sup.Open(path)
}

// Close implements fsapi.FS.
func (v *Volume) Close(fd fsapi.FD) error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.Close(fd)
}

// ReadAt implements fsapi.FS.
func (v *Volume) ReadAt(fd fsapi.FD, off int64, n int) ([]byte, error) {
	sup, done, err := v.admit()
	if err != nil {
		return nil, err
	}
	defer done()
	return sup.ReadAt(fd, off, n)
}

// WriteAt implements fsapi.FS.
func (v *Volume) WriteAt(fd fsapi.FD, off int64, data []byte) (int, error) {
	sup, done, err := v.admit()
	if err != nil {
		return 0, err
	}
	defer done()
	return sup.WriteAt(fd, off, data)
}

// Truncate implements fsapi.FS.
func (v *Volume) Truncate(path string, size int64) error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.Truncate(path, size)
}

// Unlink implements fsapi.FS.
func (v *Volume) Unlink(path string) error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.Unlink(path)
}

// Rename implements fsapi.FS.
func (v *Volume) Rename(oldPath, newPath string) error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.Rename(oldPath, newPath)
}

// Link implements fsapi.FS.
func (v *Volume) Link(oldPath, newPath string) error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.Link(oldPath, newPath)
}

// Symlink implements fsapi.FS.
func (v *Volume) Symlink(target, linkPath string) error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.Symlink(target, linkPath)
}

// Readlink implements fsapi.FS.
func (v *Volume) Readlink(path string) (string, error) {
	sup, done, err := v.admit()
	if err != nil {
		return "", err
	}
	defer done()
	return sup.Readlink(path)
}

// Stat implements fsapi.FS.
func (v *Volume) Stat(path string) (fsapi.Stat, error) {
	sup, done, err := v.admit()
	if err != nil {
		return fsapi.Stat{}, err
	}
	defer done()
	return sup.Stat(path)
}

// Fstat implements fsapi.FS.
func (v *Volume) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	sup, done, err := v.admit()
	if err != nil {
		return fsapi.Stat{}, err
	}
	defer done()
	return sup.Fstat(fd)
}

// Readdir implements fsapi.FS.
func (v *Volume) Readdir(path string) ([]fsapi.DirEntry, error) {
	sup, done, err := v.admit()
	if err != nil {
		return nil, err
	}
	defer done()
	return sup.Readdir(path)
}

// SetPerm implements fsapi.FS.
func (v *Volume) SetPerm(path string, perm uint16) error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.SetPerm(path, perm)
}

// Fsync implements fsapi.FS.
func (v *Volume) Fsync(fd fsapi.FD) error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.Fsync(fd)
}

// Sync implements fsapi.FS.
func (v *Volume) Sync() error {
	sup, done, err := v.admit()
	if err != nil {
		return err
	}
	defer done()
	return sup.Sync()
}
