package volmgr

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// TestVolumeIsolation is the cross-contamination regression: two volumes with
// private fault registries and telemetry sinks; a deterministic crash fired
// on volume A must recover A, leave B's supervisor untouched, record nothing
// in B's registry or sink, and leak nothing into the process-global default
// sink.
func TestVolumeIsolation(t *testing.T) {
	defaultBefore := telemetry.Default().Snapshot()

	m := newManager(t, Config{})
	regA := faultinject.NewRegistry(1)
	regA.Arm(&faultinject.Specimen{
		ID: "iso-a", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "boom",
	})
	regB := faultinject.NewRegistry(2)
	regB.Arm(&faultinject.Specimen{
		ID: "iso-b", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "boom",
	})
	vcA := smallVol()
	vcA.Core.Base.Injector = regA
	vcB := smallVol()
	vcB.Core.Base.Injector = regB
	a, err := m.Create("a", vcA)
	if err != nil {
		t.Fatalf("Create a: %v", err)
	}
	b, err := m.Create("b", vcB)
	if err != nil {
		t.Fatalf("Create b: %v", err)
	}

	// Steady traffic on B, the bug path on A. Both registries arm the same
	// specimen; only A's operation stream matches it.
	for i := 0; i < 4; i++ {
		writeFile(t, b, pathN("/b", i), []byte("quiet tenant"))
	}
	if err := a.Mkdir("/boom", 0o755); err != nil {
		t.Fatalf("Mkdir /boom should be masked by recovery, got %v", err)
	}

	sa, sb := a.Stats(), b.Stats()
	if sa.Recoveries != 1 || sa.PanicsCaught != 1 {
		t.Fatalf("volume a: recoveries=%d panics=%d, want 1/1", sa.Recoveries, sa.PanicsCaught)
	}
	if sb.Recoveries != 0 || sb.PanicsCaught != 0 {
		t.Fatalf("volume b contaminated: recoveries=%d panics=%d", sb.Recoveries, sb.PanicsCaught)
	}
	if n := len(regA.Fired()); n != 1 {
		t.Fatalf("registry a fired %d times, want 1", n)
	}
	if n := len(regB.Fired()); n != 0 {
		t.Fatalf("registry b contaminated: fired %d times", n)
	}

	// Sink isolation: A's recovery trace and trigger counter are on A's sink
	// only.
	snapA := a.Telemetry().Snapshot()
	snapB := b.Telemetry().Snapshot()
	if snapA.Counters["recovery.trigger.panic"] != 1 {
		t.Fatalf("a's sink missing its recovery: %v", snapA.Counters)
	}
	if got := snapB.Counters["recovery.trigger.panic"]; got != 0 {
		t.Fatalf("b's sink contaminated: recovery.trigger.panic=%d", got)
	}
	if len(snapB.Recoveries) != 0 {
		t.Fatalf("b's sink holds %d recovery traces", len(snapB.Recoveries))
	}

	// Nothing volmgr does may leak into the process-global default sink.
	defaultAfter := telemetry.Default().Snapshot()
	for name, after := range defaultAfter.Counters {
		if before := defaultBefore.Counters[name]; after != before {
			t.Fatalf("process-global sink contaminated: %s went %d -> %d", name, before, after)
		}
	}
	if len(defaultAfter.Recoveries) != len(defaultBefore.Recoveries) {
		t.Fatal("process-global sink gained recovery traces")
	}
}

// TestRecoveryDoesNotBlockNeighbor drives a recovery on one volume while a
// neighbor serves; the neighbor's operations complete during and after the
// storm with no recoveries of its own.
func TestRecoveryDoesNotBlockNeighbor(t *testing.T) {
	m := newManager(t, Config{})
	reg := faultinject.NewRegistry(7)
	reg.Arm(&faultinject.Specimen{
		ID: "storm", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "boom",
		MaxFires: 5,
	})
	vcS := smallVol()
	vcS.Core.Base.Injector = reg
	storm, err := m.Create("storm", vcS)
	if err != nil {
		t.Fatalf("Create storm: %v", err)
	}
	healthy, err := m.Create("healthy", smallVol())
	if err != nil {
		t.Fatalf("Create healthy: %v", err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			_ = storm.Mkdir(pathN("/boom", i), 0o755)
		}
	}()
	for i := 0; i < 200; i++ {
		writeFile(t, healthy, pathN("/h", i), []byte("steady"))
	}
	<-done
	if s := storm.Stats(); s.Recoveries != 5 {
		t.Fatalf("storm volume recoveries = %d, want 5", s.Recoveries)
	}
	if s := healthy.Stats(); s.Recoveries != 0 || s.AppFailures != 0 {
		t.Fatalf("healthy volume saw recoveries=%d appFailures=%d", s.Recoveries, s.AppFailures)
	}
}

func pathN(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}
