package volmgr

import (
	"sync"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// The cache rebalancer. All open volumes' buffer caches share one fleet-wide
// clean-buffer budget (Config.CacheBudgetBlocks); every rebalance window the
// manager reads each volume's buffer-cache miss delta, treats it as demand
// pressure, and redistributes the budget proportionally — hot tenants reclaim
// capacity from cold ones, no tenant drops below the configured floor, and
// the fleet-wide sum never exceeds the budget. Quotas apply through
// core.FS.SetCacheBudget, which both resizes the live cache (evicting
// immediately if shrunk) and pins the value across that volume's contained
// reboots.

// rebalancer holds the manager's rebalance state; one runOnce at a time.
type rebalancer struct {
	m  *Manager
	mu sync.Mutex

	telPasses *telemetry.Counter // volmgr.cache.rebalance
	telMoved  *telemetry.Counter // volmgr.cache.rebalanced_blocks
}

func (rb *rebalancer) init(m *Manager) {
	rb.m = m
	rb.telPasses = m.fleet.Counter("volmgr.cache.rebalance")
	rb.telMoved = m.fleet.Counter("volmgr.cache.rebalanced_blocks")
}

// RebalanceStats reports one rebalance pass.
type RebalanceStats struct {
	// Volumes is how many open volumes participated (a volume mid-lifecycle-
	// transition is skipped and keeps its quota until the next pass).
	Volumes int
	// Moved is the total capacity change in blocks (sum of |new-old|).
	Moved int
	// Quotas is the per-volume quota after the pass.
	Quotas map[string]int
}

// RebalanceOnce runs one synchronous rebalance pass and returns what it did.
// The background loop calls this on its interval; tests and cmd/volserve call
// it directly for determinism.
func (m *Manager) RebalanceOnce() RebalanceStats {
	return m.rebal.runOnce()
}

func (rb *rebalancer) runOnce() RebalanceStats {
	m := rb.m
	budget := m.cfg.CacheBudgetBlocks
	if budget <= 0 {
		return RebalanceStats{}
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()

	// Collect participants under their read locks (held through application,
	// so no supervisor goes away mid-pass). TryRLock skips volumes busy with
	// a lifecycle transition rather than blocking the whole fleet's pass.
	type cand struct {
		v      *Volume
		sup    *core.FS
		weight int64
	}
	var cands []cand
	var totalWeight int64
	for _, v := range m.openVolumes() {
		if !v.opmu.TryRLock() {
			continue
		}
		if v.state != stateOpen || v.sup == nil {
			v.opmu.RUnlock()
			continue
		}
		_, misses, _, _, _, _ := v.sup.Base().CacheStats()
		// The demand signal is this window's miss delta: misses say "my
		// working set does not fit", hits say nothing about needing more.
		delta := misses - v.lastMisses
		if delta < 0 {
			delta = 0 // a contained reboot reset the base's counters
		}
		v.lastMisses = misses
		w := delta + 1 // +1 so idle volumes split leftovers instead of zeroing
		cands = append(cands, cand{v: v, sup: v.sup, weight: w})
		totalWeight += w
	}
	stats := RebalanceStats{Volumes: len(cands), Quotas: make(map[string]int, len(cands))}
	if len(cands) == 0 {
		return stats
	}

	floor := m.cfg.CacheMinPerVolume
	distributable := budget - floor*len(cands)
	if distributable < 0 {
		// Overcommitted fleet: equal shares, floors abandoned.
		floor = budget / len(cands)
		distributable = budget - floor*len(cands)
	}
	assigned := 0
	for i := range cands {
		c := &cands[i]
		share := int(int64(distributable) * c.weight / totalWeight)
		quota := floor + share
		if i == len(cands)-1 {
			// The last volume absorbs integer-division remainder so the
			// fleet sum is exactly the budget.
			quota = budget - assigned
		}
		assigned += quota
		old := c.sup.CacheBudget()
		if quota != old {
			c.sup.SetCacheBudget(quota)
			d := quota - old
			if d < 0 {
				d = -d
			}
			stats.Moved += d
		}
		m.fleet.Gauge("volmgr.cache.quota." + c.v.name).Set(int64(quota))
		stats.Quotas[c.v.name] = quota
	}
	for _, c := range cands {
		c.v.opmu.RUnlock()
	}
	rb.telPasses.Inc()
	if stats.Moved > 0 {
		rb.telMoved.Add(int64(stats.Moved))
		m.fleet.Event("rebalance", "moved %d cache blocks across %d volumes",
			stats.Moved, stats.Volumes)
	}
	return stats
}
