package volmgr

import (
	"sync"
	"sync/atomic"
)

// The shared scrub scheduler. Volumes mount with core.Config.ExternalScrub:
// each has a scrubber but no private ticker. The manager's single loop
// sweeps the fleet every ScrubInterval, driving passes through a bounded
// worker pool (ScrubWorkers), so background verification cost is a fleet
// knob — a thousand volumes scrub at pool parallelism, not with a thousand
// timers racing each other for IO.

// ScrubAll sweeps one scrub pass over every open volume using the shared
// worker pool and returns how many passes ran. Volumes mid-lifecycle-
// transition are skipped. If a sweep is already running the call returns 0
// immediately — sweeps never pile up behind a slow pass.
func (m *Manager) ScrubAll() int {
	select {
	case m.scrubbing <- struct{}{}:
	default:
		return 0
	}
	defer func() { <-m.scrubbing }()
	sem := make(chan struct{}, m.cfg.ScrubWorkers)
	var wg sync.WaitGroup
	var passes atomic.Int64
	for _, v := range m.openVolumes() {
		v := v
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if v.tryScrub() {
				passes.Add(1)
				m.telScrubs.Inc()
			}
		}()
	}
	wg.Wait()
	return int(passes.Load())
}

// tryScrub runs one pass if the volume is open and idle enough to enter.
// The read lock excludes lifecycle transitions for the duration of the pass:
// a pass can trip a recovery on its own volume, and that recovery must not
// race an unmount.
func (v *Volume) tryScrub() bool {
	if !v.opmu.TryRLock() {
		return false
	}
	defer v.opmu.RUnlock()
	if v.state != stateOpen || v.sup == nil {
		return false
	}
	sc := v.sup.Scrubber()
	if sc == nil {
		return false
	}
	sc.RunOnce()
	return true
}
