package volmgr

import (
	"fmt"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/fserr"
)

// DevicePool is the shared backing store volumes draw from: one fleet-wide
// block budget, carved into per-volume devices at Create and returned at
// Destroy. Accounting is capacity-based — the pool tracks blocks, the volumes
// own their devices — so exhaustion is an admission-time ErrNoSpace, never a
// mid-operation surprise on a serving volume.
type DevicePool struct {
	mu       sync.Mutex
	capacity uint32
	used     uint32
}

// NewDevicePool creates a pool with the given capacity in blocks.
func NewDevicePool(capacity uint32) *DevicePool {
	return &DevicePool{capacity: capacity}
}

// Allocate carves a device of the given size out of the pool, or fails with
// ErrNoSpace if the remaining capacity cannot cover it.
func (p *DevicePool) Allocate(blocks uint32) (*blockdev.Mem, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if blocks == 0 {
		return nil, fmt.Errorf("volmgr: zero-block allocation: %w", fserr.ErrInvalid)
	}
	if p.used+blocks > p.capacity || p.used+blocks < p.used {
		return nil, fmt.Errorf("volmgr: pool exhausted (%d used of %d, want %d): %w",
			p.used, p.capacity, blocks, fserr.ErrNoSpace)
	}
	p.used += blocks
	return blockdev.NewMem(blocks), nil
}

// Release returns blocks to the pool (volume destruction).
func (p *DevicePool) Release(blocks uint32) {
	p.mu.Lock()
	if blocks > p.used {
		blocks = p.used
	}
	p.used -= blocks
	p.mu.Unlock()
}

// Capacity returns the pool's total size in blocks.
func (p *DevicePool) Capacity() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// Used returns the blocks currently allocated to volumes.
func (p *DevicePool) Used() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Free returns the unallocated remainder.
func (p *DevicePool) Free() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.used
}
