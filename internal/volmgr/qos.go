package volmgr

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fserr"
	"repro/internal/telemetry"
)

// QoSConfig is one tenant's admission-control contract.
type QoSConfig struct {
	// OpsPerSec is the steady-state admitted operation rate; 0 means
	// unlimited.
	OpsPerSec float64
	// Burst is the token bucket's depth — how many operations above the
	// steady rate are absorbed before throttling. 0 defaults to one second
	// of rate (minimum 16).
	Burst int
	// MaxQueueDepth caps the volume's concurrent in-flight operations; an
	// arrival beyond the cap is shed immediately. 0 means uncapped.
	MaxQueueDepth int
	// MaxWait bounds how long an over-rate arrival may be delayed for a
	// token before it is shed instead. 0 sheds immediately once the bucket
	// is empty.
	MaxWait time.Duration
}

func (q QoSConfig) fill() QoSConfig {
	if q.OpsPerSec > 0 && q.Burst <= 0 {
		q.Burst = int(q.OpsPerSec)
		if q.Burst < 16 {
			q.Burst = 16
		}
	}
	return q
}

// tokenBucket is a standard rate/burst bucket. reserve either grants a token
// (possibly with a delay the caller must sleep outside the lock) or refuses
// because the required delay exceeds maxWait.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// reserve takes one token. It returns (delay, true) when admitted — the
// caller sleeps delay before proceeding — or (0, false) when the bucket is so
// far behind that the delay would exceed maxWait. A nil bucket admits
// everything instantly.
func (b *tokenBucket) reserve(maxWait time.Duration) (time.Duration, bool) {
	if b == nil {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	// The bucket is in debt: compute the delay until one token accrues. A
	// granted reservation takes the token now (going further negative) so
	// concurrent reservers queue behind each other rather than all waiting
	// for the same token.
	delay := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if delay > maxWait {
		return 0, false
	}
	b.tokens--
	return delay, true
}

// admission is one volume's QoS enforcement point: queue-depth cap first
// (cheap, sheds pile-ups instantly), then the token bucket (rates). Sheds
// surface as fserr.ErrOverloaded before the operation touches the
// filesystem.
type admission struct {
	bucket   *tokenBucket
	maxWait  time.Duration
	maxDepth int64

	// telDepth doubles as the live depth count: admitted operations Add(1)/
	// Add(-1) it, so the volume sink's gauge is always the true queue depth.
	telDepth      *telemetry.Gauge     // volmgr.qos.depth (volume sink)
	telShed       *telemetry.Counter   // volmgr.qos.shed (volume sink)
	telFleetShed  *telemetry.Counter   // volmgr.qos.shed (fleet sink)
	telThrottleNs *telemetry.Histogram // volmgr.qos.throttle_ns (volume sink)
}

func newAdmission(q QoSConfig, volSink *telemetry.Sink, fleetShed *telemetry.Counter) *admission {
	q = q.fill()
	return &admission{
		bucket:        newTokenBucket(q.OpsPerSec, q.Burst),
		maxWait:       q.MaxWait,
		maxDepth:      int64(q.MaxQueueDepth),
		telDepth:      volSink.Gauge("volmgr.qos.depth"),
		telShed:       volSink.Counter("volmgr.qos.shed"),
		telFleetShed:  fleetShed,
		telThrottleNs: volSink.Histogram("volmgr.qos.throttle_ns"),
	}
}

// enter admits or sheds one operation. On admission the caller must pair it
// with exit.
func (a *admission) enter(volume string) error {
	d := a.telDepth
	d.Add(1)
	if a.maxDepth > 0 && d.Value() > a.maxDepth {
		d.Add(-1)
		return a.shed(volume, "queue depth %d at cap", a.maxDepth)
	}
	delay, ok := a.bucket.reserve(a.maxWait)
	if !ok {
		d.Add(-1)
		return a.shed(volume, "rate limit (max wait %v exceeded)", a.maxWait)
	}
	if delay > 0 {
		time.Sleep(delay)
		a.telThrottleNs.Observe(delay)
	}
	return nil
}

// exit releases the queue slot taken by a successful enter.
func (a *admission) exit() { a.telDepth.Add(-1) }

func (a *admission) shed(volume, format string, args ...any) error {
	a.telShed.Inc()
	a.telFleetShed.Inc()
	return fmt.Errorf("volmgr: volume %q: "+format+": %w",
		append(append([]any{volume}, args...), fserr.ErrOverloaded)...)
}
