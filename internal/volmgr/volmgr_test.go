package volmgr

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// newManager builds a manager with test-sized defaults and cleans it up.
func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.PoolBlocks == 0 {
		cfg.PoolBlocks = 64 * 1024
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { m.Shutdown() })
	return m
}

// smallVol is a quick-to-format volume config for lifecycle tests.
func smallVol() VolumeConfig {
	return VolumeConfig{Blocks: 4096}
}

// writeFile creates path on v holding data.
func writeFile(t *testing.T, v *Volume, path string, data []byte) {
	t.Helper()
	fd, err := v.Create(path, 0o644)
	if err != nil {
		t.Fatalf("Create %s: %v", path, err)
	}
	if _, err := v.WriteAt(fd, 0, data); err != nil {
		t.Fatalf("WriteAt %s: %v", path, err)
	}
	if err := v.Close(fd); err != nil {
		t.Fatalf("Close %s: %v", path, err)
	}
}

func readFile(t *testing.T, v *Volume, path string, n int) []byte {
	t.Helper()
	fd, err := v.Open(path)
	if err != nil {
		t.Fatalf("Open %s: %v", path, err)
	}
	data, err := v.ReadAt(fd, 0, n)
	if err != nil {
		t.Fatalf("ReadAt %s: %v", path, err)
	}
	if err := v.Close(fd); err != nil {
		t.Fatalf("Close %s: %v", path, err)
	}
	return data
}

func TestVolumeLifecycle(t *testing.T) {
	m := newManager(t, Config{})
	v, err := m.Create("a", smallVol())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	writeFile(t, v, "/hello", []byte("persisted across close/open"))
	if err := v.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	if err := m.Close("a"); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := v.Stat("/hello"); !errors.Is(err, fserr.ErrInvalid) {
		t.Fatalf("op on closed volume: got %v, want ErrInvalid", err)
	}
	if err := m.Close("a"); !errors.Is(err, fserr.ErrInvalid) {
		t.Fatalf("double close: got %v, want ErrInvalid", err)
	}

	if _, err := m.Open("a"); err != nil {
		t.Fatalf("Open: %v", err)
	}
	got := readFile(t, v, "/hello", 64)
	if string(got) != "persisted across close/open" {
		t.Fatalf("data after reopen: %q", got)
	}
	if _, err := m.Open("a"); !errors.Is(err, fserr.ErrBusy) {
		t.Fatalf("double open: got %v, want ErrBusy", err)
	}

	if err := m.Destroy("a"); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if _, err := v.Stat("/hello"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("op on destroyed volume: got %v, want ErrNotExist", err)
	}
	if _, err := m.Get("a"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("Get after destroy: got %v, want ErrNotExist", err)
	}
	if used := m.Pool().Used(); used != 0 {
		t.Fatalf("pool used after destroy: %d, want 0", used)
	}
}

func TestDuplicateName(t *testing.T) {
	m := newManager(t, Config{})
	if _, err := m.Create("x", smallVol()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := m.Create("x", smallVol()); !errors.Is(err, fserr.ErrExist) {
		t.Fatalf("duplicate create: got %v, want ErrExist", err)
	}
}

func TestPoolExhaustion(t *testing.T) {
	m := newManager(t, Config{PoolBlocks: 8192})
	if _, err := m.Create("a", smallVol()); err != nil {
		t.Fatalf("Create a: %v", err)
	}
	if _, err := m.Create("b", smallVol()); err != nil {
		t.Fatalf("Create b: %v", err)
	}
	if _, err := m.Create("c", smallVol()); !errors.Is(err, fserr.ErrNoSpace) {
		t.Fatalf("over-capacity create: got %v, want ErrNoSpace", err)
	}
	// A failed create must not leak its name or blocks.
	if _, err := m.Get("c"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("failed create left registration: %v", err)
	}
	if err := m.Destroy("a"); err != nil {
		t.Fatalf("Destroy a: %v", err)
	}
	if _, err := m.Create("c", smallVol()); err != nil {
		t.Fatalf("create after destroy freed space: %v", err)
	}
}

func TestFleetSnapshot(t *testing.T) {
	m := newManager(t, Config{})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("v%d", i)
		v, err := m.Create(name, smallVol())
		if err != nil {
			t.Fatalf("Create %s: %v", name, err)
		}
		writeFile(t, v, "/f", []byte("x"))
	}
	snap := m.FleetSnapshot()
	if got := snap.Gauges["volmgr.volumes"]; got != 3 {
		t.Fatalf("volmgr.volumes = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("volmgr.op_ns.v%d", i)
		if h := snap.Histograms[name]; h.Count == 0 {
			t.Fatalf("%s has no observations in fleet rollup", name)
		}
	}
	// Layer counters from the per-volume sinks must roll up: 3 volumes each
	// recorded ops, so the merged oplog counter is the fleet sum.
	var perVolume int64
	for i := 0; i < 3; i++ {
		v, _ := m.Get(fmt.Sprintf("v%d", i))
		perVolume += v.Telemetry().Snapshot().Counters["oplog.appends"]
	}
	if perVolume == 0 {
		t.Fatal("expected per-volume oplog.appends > 0")
	}
	if snap.Counters["oplog.appends"] != perVolume {
		t.Fatalf("merged oplog.appends = %d, want %d", snap.Counters["oplog.appends"], perVolume)
	}
}

func TestOpsAfterShutdown(t *testing.T) {
	m := newManager(t, Config{})
	v, err := m.Create("a", smallVol())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := m.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := v.Stat("/"); !errors.Is(err, fserr.ErrInvalid) {
		t.Fatalf("op after shutdown: got %v, want ErrInvalid", err)
	}
}

var _ fsapi.FS = (*Volume)(nil)
