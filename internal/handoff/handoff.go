// Package handoff defines the lean, checksummed interface that carries the
// shadow filesystem's output back to the rebooted base: "a set of file
// descriptors and on-disk metadata structures" (§3.2).
//
// The paper stresses that this interface "requires a lean, well-defined, and
// thoroughly tested interface" (§4.3) because it is trusted code shared
// between the two worlds. The Update is therefore a plain value: block
// images keyed by block number plus a descriptor table, deep-copied and
// self-checksummed when it crosses the isolation boundary, and re-validated
// by the base before absorption.
package handoff

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// FDEntry restores one application-visible file descriptor.
type FDEntry struct {
	FD  fsapi.FD
	Ino uint32
}

// Update is the shadow's complete output for one recovery: every block the
// replayed operation sequence would have written (metadata and buffered
// data), the descriptor table as of the end of the sequence, and the
// logical clock so timestamps continue seamlessly.
type Update struct {
	// Blocks maps block numbers to their correct contents.
	Blocks map[uint32][]byte
	// Meta marks which blocks are filesystem metadata (journaled by the
	// base's next sync rather than written in ordered-data mode).
	Meta map[uint32]bool
	// FDs is the recovered descriptor table.
	FDs []FDEntry
	// Clock is the logical time after the last replayed operation.
	Clock uint64
	// Sum is the integrity checksum over the rest of the update; computed by
	// Seal, verified by Verify.
	Sum uint32
}

// NewUpdate returns an empty update.
func NewUpdate() *Update {
	return &Update{Blocks: make(map[uint32][]byte), Meta: make(map[uint32]bool)}
}

// SortedBlocks returns the update's block numbers in ascending order, the
// canonical iteration order for checksumming and installation.
func (u *Update) SortedBlocks() []uint32 {
	out := make([]uint32, 0, len(u.Blocks))
	for blk := range u.Blocks {
		out = append(out, blk)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (u *Update) checksum() uint32 {
	var acc uint32
	var w [16]byte
	fold := func(b []byte) {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], acc)
		acc = disklayout.Checksum(append(hdr[:], b...))
	}
	for _, blk := range u.SortedBlocks() {
		binary.LittleEndian.PutUint32(w[:4], blk)
		meta := uint32(0)
		if u.Meta[blk] {
			meta = 1
		}
		binary.LittleEndian.PutUint32(w[4:8], meta)
		fold(w[:8])
		fold(u.Blocks[blk])
	}
	for _, e := range u.FDs {
		binary.LittleEndian.PutUint64(w[:8], uint64(e.FD))
		binary.LittleEndian.PutUint32(w[8:12], e.Ino)
		fold(w[:12])
	}
	binary.LittleEndian.PutUint64(w[:8], u.Clock)
	fold(w[:8])
	return acc
}

// Seal computes and stores the integrity checksum. The shadow calls it once
// the update is complete.
func (u *Update) Seal() { u.Sum = u.checksum() }

// Verify reports whether the update is internally consistent: checksum
// matches, every block is full-size, and the descriptor table is free of
// duplicates. The base calls this before absorbing anything.
func (u *Update) Verify() error {
	for blk, data := range u.Blocks {
		if len(data) != disklayout.BlockSize {
			return fmt.Errorf("handoff: block %d has %d bytes: %w", blk, len(data), fserr.ErrCorrupt)
		}
	}
	seen := make(map[fsapi.FD]bool, len(u.FDs))
	for _, e := range u.FDs {
		if seen[e.FD] {
			return fmt.Errorf("handoff: duplicate fd %d: %w", e.FD, fserr.ErrCorrupt)
		}
		if e.Ino == 0 {
			return fmt.Errorf("handoff: fd %d maps to inode 0: %w", e.FD, fserr.ErrCorrupt)
		}
		seen[e.FD] = true
	}
	if got := u.checksum(); got != u.Sum {
		return fmt.Errorf("handoff: checksum %#x, want %#x: %w", got, u.Sum, fserr.ErrCorrupt)
	}
	return nil
}

// Clone deep-copies the update. The supervisor clones at the isolation
// boundary so the base can never alias the shadow's memory (the moral
// equivalent of the process boundary in the paper's design).
func (u *Update) Clone() *Update {
	cp := &Update{
		Blocks: make(map[uint32][]byte, len(u.Blocks)),
		Meta:   make(map[uint32]bool, len(u.Meta)),
		FDs:    make([]FDEntry, len(u.FDs)),
		Clock:  u.Clock,
		Sum:    u.Sum,
	}
	for blk, data := range u.Blocks {
		nd := make([]byte, len(data))
		copy(nd, data)
		cp.Blocks[blk] = nd
	}
	for blk, m := range u.Meta {
		cp.Meta[blk] = m
	}
	copy(cp.FDs, u.FDs)
	return cp
}
