package handoff

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// Chunk is one sealed slice of a streaming handoff. The replayer emits
// chunks as it works through the op-log suffix, so the base can verify and
// absorb blocks while the shadow is still replaying the tail. Chunks are
// ordered: a block appearing in a later chunk overrides any earlier image,
// and a block listed in Freed retracts earlier images entirely (the replay
// allocated it and then freed it again).
type Chunk struct {
	// Index is the zero-based position of this chunk in the stream.
	Index int
	// Blocks maps block numbers to their contents as of this chunk.
	Blocks map[uint32][]byte
	// Meta marks which of Blocks are filesystem metadata.
	Meta map[uint32]bool
	// Freed lists blocks whose earlier images this chunk retracts.
	Freed []uint32
	// Sum is the integrity checksum over the chunk; computed by Seal,
	// verified by Verify.
	Sum uint32
}

// NewChunk returns an empty chunk with the given stream position.
func NewChunk(index int) *Chunk {
	return &Chunk{Index: index, Blocks: make(map[uint32][]byte), Meta: make(map[uint32]bool)}
}

// Empty reports whether the chunk carries no block images or retractions.
func (c *Chunk) Empty() bool { return len(c.Blocks) == 0 && len(c.Freed) == 0 }

// SortedBlocks returns the chunk's block numbers in ascending order, the
// canonical iteration order for checksumming and installation.
func (c *Chunk) SortedBlocks() []uint32 {
	out := make([]uint32, 0, len(c.Blocks))
	for blk := range c.Blocks {
		out = append(out, blk)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (c *Chunk) checksum() uint32 {
	var acc uint32
	var w [16]byte
	fold := func(b []byte) {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], acc)
		acc = disklayout.Checksum(append(hdr[:], b...))
	}
	binary.LittleEndian.PutUint64(w[:8], uint64(c.Index))
	fold(w[:8])
	for _, blk := range c.SortedBlocks() {
		binary.LittleEndian.PutUint32(w[:4], blk)
		meta := uint32(0)
		if c.Meta[blk] {
			meta = 1
		}
		binary.LittleEndian.PutUint32(w[4:8], meta)
		fold(w[:8])
		fold(c.Blocks[blk])
	}
	freed := append([]uint32(nil), c.Freed...)
	sort.Slice(freed, func(i, j int) bool { return freed[i] < freed[j] })
	for _, blk := range freed {
		binary.LittleEndian.PutUint32(w[:4], blk)
		fold(w[:4])
	}
	return acc
}

// Seal computes and stores the chunk's integrity checksum.
func (c *Chunk) Seal() { c.Sum = c.checksum() }

// Verify reports whether the chunk is internally consistent: checksum
// matches and every block image is full-size. The base calls this before
// absorbing the chunk.
func (c *Chunk) Verify() error {
	for blk, data := range c.Blocks {
		if len(data) != disklayout.BlockSize {
			return fmt.Errorf("handoff: chunk %d block %d has %d bytes: %w", c.Index, blk, len(data), fserr.ErrCorrupt)
		}
	}
	if got := c.checksum(); got != c.Sum {
		return fmt.Errorf("handoff: chunk %d checksum %#x, want %#x: %w", c.Index, got, c.Sum, fserr.ErrCorrupt)
	}
	return nil
}

// Manifest finalizes a chunk stream. It carries everything that only makes
// sense at the end of replay — the descriptor table and the logical clock —
// plus a chained checksum binding the exact sequence of chunks the base
// should have absorbed, so a dropped, duplicated, or reordered chunk is
// caught before resume even though each chunk verified individually.
type Manifest struct {
	// NumChunks is how many chunks preceded this manifest.
	NumChunks int
	// Chain is the fold of every chunk's Sum in stream order.
	Chain uint32
	// FDs is the recovered descriptor table.
	FDs []FDEntry
	// Clock is the logical time after the last replayed operation.
	Clock uint64
	// Sum is the integrity checksum over the manifest itself.
	Sum uint32
}

// ChainSums folds an ordered list of chunk checksums into the stream chain
// value. Both sides compute it independently: the shadow as it seals chunks,
// the base as it absorbs them.
func ChainSums(sums []uint32) uint32 {
	var acc uint32
	var w [8]byte
	for _, s := range sums {
		binary.LittleEndian.PutUint32(w[:4], acc)
		binary.LittleEndian.PutUint32(w[4:8], s)
		acc = disklayout.Checksum(w[:8])
	}
	return acc
}

func (m *Manifest) checksum() uint32 {
	var acc uint32
	var w [16]byte
	fold := func(b []byte) {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], acc)
		acc = disklayout.Checksum(append(hdr[:], b...))
	}
	binary.LittleEndian.PutUint64(w[:8], uint64(m.NumChunks))
	binary.LittleEndian.PutUint32(w[8:12], m.Chain)
	fold(w[:12])
	for _, e := range m.FDs {
		binary.LittleEndian.PutUint64(w[:8], uint64(e.FD))
		binary.LittleEndian.PutUint32(w[8:12], e.Ino)
		fold(w[:12])
	}
	binary.LittleEndian.PutUint64(w[:8], m.Clock)
	fold(w[:8])
	return acc
}

// Seal computes and stores the manifest's integrity checksum.
func (m *Manifest) Seal() { m.Sum = m.checksum() }

// Verify checks the manifest against the chunk stream the base actually
// absorbed: its own checksum, the chunk count, and the chained fold of the
// absorbed chunks' sums. absorbedSums must be the Sum of every chunk in the
// order received.
func (m *Manifest) Verify(absorbedSums []uint32) error {
	if got := m.checksum(); got != m.Sum {
		return fmt.Errorf("handoff: manifest checksum %#x, want %#x: %w", got, m.Sum, fserr.ErrCorrupt)
	}
	if len(absorbedSums) != m.NumChunks {
		return fmt.Errorf("handoff: absorbed %d chunks, manifest expects %d: %w", len(absorbedSums), m.NumChunks, fserr.ErrCorrupt)
	}
	if got := ChainSums(absorbedSums); got != m.Chain {
		return fmt.Errorf("handoff: chunk chain %#x, want %#x: %w", got, m.Chain, fserr.ErrCorrupt)
	}
	seen := make(map[fsapi.FD]bool, len(m.FDs))
	for _, e := range m.FDs {
		if seen[e.FD] {
			return fmt.Errorf("handoff: duplicate fd %d: %w", e.FD, fserr.ErrCorrupt)
		}
		if e.Ino == 0 {
			return fmt.Errorf("handoff: fd %d maps to inode 0: %w", e.FD, fserr.ErrCorrupt)
		}
		seen[e.FD] = true
	}
	return nil
}

// Assemble folds a verified chunk stream plus manifest into a monolithic
// Update equivalent to what a non-streaming replay would have produced:
// later chunks override earlier ones, freed blocks are dropped. It verifies
// every chunk and the manifest chain along the way. Used by tests and by
// callers that want the streaming producer but a one-shot install.
func Assemble(chunks []*Chunk, m *Manifest) (*Update, error) {
	u := NewUpdate()
	sums := make([]uint32, 0, len(chunks))
	for i, c := range chunks {
		if err := c.Verify(); err != nil {
			return nil, err
		}
		if c.Index != i {
			return nil, fmt.Errorf("handoff: chunk at position %d has index %d: %w", i, c.Index, fserr.ErrCorrupt)
		}
		for blk, data := range c.Blocks {
			u.Blocks[blk] = data
			u.Meta[blk] = c.Meta[blk]
		}
		for _, blk := range c.Freed {
			delete(u.Blocks, blk)
			delete(u.Meta, blk)
		}
		sums = append(sums, c.Sum)
	}
	if err := m.Verify(sums); err != nil {
		return nil, err
	}
	u.FDs = append([]FDEntry(nil), m.FDs...)
	u.Clock = m.Clock
	u.Seal()
	return u, nil
}
