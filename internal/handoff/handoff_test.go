package handoff

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
)

func block(fill byte) []byte {
	b := make([]byte, disklayout.BlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func sample() *Update {
	u := NewUpdate()
	u.Blocks[10] = block(1)
	u.Blocks[42] = block(2)
	u.Meta[10] = true
	u.FDs = []FDEntry{{FD: 0, Ino: 5}, {FD: 3, Ino: 9}}
	u.Clock = 77
	u.Seal()
	return u
}

func TestSealVerifyRoundTrip(t *testing.T) {
	u := sample()
	if err := u.Verify(); err != nil {
		t.Fatalf("Verify on sealed update: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Update)
	}{
		{"block content flip", func(u *Update) { u.Blocks[10][100] ^= 1 }},
		{"meta flag flip", func(u *Update) { u.Meta[42] = true }},
		{"fd retarget", func(u *Update) { u.FDs[0].Ino = 6 }},
		{"clock skew", func(u *Update) { u.Clock++ }},
		{"added block", func(u *Update) { u.Blocks[50] = block(9) }},
		{"dropped block", func(u *Update) { delete(u.Blocks, 42) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := sample()
			tc.mut(u)
			if err := u.Verify(); !errors.Is(err, fserr.ErrCorrupt) {
				t.Errorf("Verify = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestVerifyRejectsMalformed(t *testing.T) {
	u := sample()
	u.Blocks[11] = []byte{1, 2, 3} // short block
	if err := u.Verify(); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("short block: %v", err)
	}
	u = sample()
	u.FDs = append(u.FDs, FDEntry{FD: 0, Ino: 8}) // duplicate fd
	u.Seal()
	if err := u.Verify(); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("duplicate fd: %v", err)
	}
	u = sample()
	u.FDs = append(u.FDs, FDEntry{FD: 9, Ino: 0}) // fd to inode 0
	u.Seal()
	if err := u.Verify(); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("fd to ino 0: %v", err)
	}
}

func TestCloneIsDeepAndVerifiable(t *testing.T) {
	u := sample()
	cp := u.Clone()
	if err := cp.Verify(); err != nil {
		t.Fatalf("clone fails verification: %v", err)
	}
	cp.Blocks[10][0] = 0xFF
	if u.Blocks[10][0] == 0xFF {
		t.Error("Clone aliases block storage")
	}
	cp.FDs[0].Ino = 99
	if u.FDs[0].Ino == 99 {
		t.Error("Clone aliases fd table")
	}
	if err := u.Verify(); err != nil {
		t.Errorf("original damaged by clone mutation: %v", err)
	}
}

func TestSortedBlocksOrdered(t *testing.T) {
	u := NewUpdate()
	for _, blk := range []uint32{99, 3, 57, 12} {
		u.Blocks[blk] = block(byte(blk))
	}
	got := u.SortedBlocks()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("SortedBlocks out of order: %v", got)
		}
	}
}

func TestChecksumOrderIndependence(t *testing.T) {
	// Two updates with the same logical content built in different insertion
	// orders must produce the same seal.
	a, b := NewUpdate(), NewUpdate()
	for _, blk := range []uint32{5, 9, 2} {
		a.Blocks[blk] = block(byte(blk))
	}
	for _, blk := range []uint32{2, 5, 9} {
		b.Blocks[blk] = block(byte(blk))
	}
	a.Seal()
	b.Seal()
	if a.Sum != b.Sum {
		t.Error("seal depends on insertion order")
	}
}

func TestSealVerifyProperty(t *testing.T) {
	f := func(blks []uint32, fds []uint16, clock uint64) bool {
		u := NewUpdate()
		for i, blk := range blks {
			if i > 8 {
				break
			}
			u.Blocks[blk%1000] = block(byte(blk))
			if blk%2 == 0 {
				u.Meta[blk%1000] = true
			}
		}
		seen := map[fsapi.FD]bool{}
		for i, fd := range fds {
			if i > 8 {
				break
			}
			f := fsapi.FD(fd % 64)
			if seen[f] {
				continue
			}
			seen[f] = true
			u.FDs = append(u.FDs, FDEntry{FD: f, Ino: uint32(fd) + 1})
		}
		u.Clock = clock
		u.Seal()
		return u.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
