package handoff

import (
	"errors"
	"testing"

	"repro/internal/fserr"
)

// stream builds a three-chunk handoff whose assembled content matches
// sample(): chunk 0 carries an early image of block 10 plus a block that is
// later freed, chunk 1 overrides block 10 and retracts the freed block,
// chunk 2 adds block 42.
func stream() ([]*Chunk, *Manifest) {
	c0 := NewChunk(0)
	c0.Blocks[10] = block(7) // stale image, overridden by chunk 1
	c0.Meta[10] = true
	c0.Blocks[60] = block(6) // allocated then freed during replay
	c0.Seal()

	c1 := NewChunk(1)
	c1.Blocks[10] = block(1)
	c1.Meta[10] = true
	c1.Freed = []uint32{60}
	c1.Seal()

	c2 := NewChunk(2)
	c2.Blocks[42] = block(2)
	c2.Seal()

	chunks := []*Chunk{c0, c1, c2}
	m := &Manifest{
		NumChunks: len(chunks),
		Chain:     ChainSums([]uint32{c0.Sum, c1.Sum, c2.Sum}),
		FDs:       []FDEntry{{FD: 0, Ino: 5}, {FD: 3, Ino: 9}},
		Clock:     77,
	}
	m.Seal()
	return chunks, m
}

func TestChunkSealVerifyRoundTrip(t *testing.T) {
	chunks, m := stream()
	for _, c := range chunks {
		if err := c.Verify(); err != nil {
			t.Fatalf("chunk %d: %v", c.Index, err)
		}
	}
	sums := []uint32{chunks[0].Sum, chunks[1].Sum, chunks[2].Sum}
	if err := m.Verify(sums); err != nil {
		t.Fatalf("manifest: %v", err)
	}
}

func TestChunkVerifyDetectsTampering(t *testing.T) {
	cases := []struct {
		name string
		mut  func(c *Chunk)
	}{
		{"block content flip", func(c *Chunk) { c.Blocks[10][0] ^= 1 }},
		{"meta flag flip", func(c *Chunk) { c.Meta[10] = false }},
		{"index skew", func(c *Chunk) { c.Index++ }},
		{"freed injection", func(c *Chunk) { c.Freed = append(c.Freed, 10) }},
		{"added block", func(c *Chunk) { c.Blocks[11] = block(3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chunks, _ := stream()
			tc.mut(chunks[1])
			if err := chunks[1].Verify(); !errors.Is(err, fserr.ErrCorrupt) {
				t.Errorf("Verify = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestManifestCatchesStreamDamage(t *testing.T) {
	cases := []struct {
		name string
		sums func(chunks []*Chunk) []uint32
	}{
		{"dropped chunk", func(cs []*Chunk) []uint32 { return []uint32{cs[0].Sum, cs[2].Sum} }},
		{"reordered chunks", func(cs []*Chunk) []uint32 { return []uint32{cs[1].Sum, cs[0].Sum, cs[2].Sum} }},
		{"duplicated chunk", func(cs []*Chunk) []uint32 {
			return []uint32{cs[0].Sum, cs[1].Sum, cs[1].Sum, cs[2].Sum}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chunks, m := stream()
			if err := m.Verify(tc.sums(chunks)); !errors.Is(err, fserr.ErrCorrupt) {
				t.Errorf("Verify = %v, want ErrCorrupt", err)
			}
		})
	}
	t.Run("manifest tamper", func(t *testing.T) {
		chunks, m := stream()
		m.Clock++
		sums := []uint32{chunks[0].Sum, chunks[1].Sum, chunks[2].Sum}
		if err := m.Verify(sums); !errors.Is(err, fserr.ErrCorrupt) {
			t.Errorf("Verify = %v, want ErrCorrupt", err)
		}
	})
}

func TestAssembleEquivalentToMonolithic(t *testing.T) {
	chunks, m := stream()
	got, err := Assemble(chunks, m)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Sum != want.Sum {
		t.Fatalf("assembled stream seals to %#x, monolithic update to %#x", got.Sum, want.Sum)
	}
	if _, ok := got.Blocks[60]; ok {
		t.Error("freed block survived assembly")
	}
	if err := got.Verify(); err != nil {
		t.Errorf("assembled update: %v", err)
	}
}

func TestAssembleRejectsOutOfOrder(t *testing.T) {
	chunks, m := stream()
	chunks[0], chunks[1] = chunks[1], chunks[0]
	if _, err := Assemble(chunks, m); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("Assemble = %v, want ErrCorrupt", err)
	}
}
