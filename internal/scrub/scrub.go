// Package scrub is the online background scrubber: it periodically runs the
// parallel filesystem checker over a frozen read-only view of the device,
// turning verification from a recovery-time tax into an always-on guarantee.
//
// The paper's trust chain ("contained reboot + shadow replay start from
// trusted on-disk state") is only as strong as the last time that state was
// actually verified. Faults force a check; latent corruption — a bit rot,
// a torn write that slipped past the journal, a bug that scribbled through —
// does not, and waits for an application to trip over it. The scrubber
// closes that window: each pass checks a snapshot composed with the
// journal's committed-transaction overlay (the exact logical post-replay
// image), so it races with nothing and never reports in-flight writes as
// damage. A Corrupt finding is handed to the supervisor, which trips its
// recovery fence proactively — the damage is repaired before any
// application operation observes it. A clean pass refreshes the baseline
// the region-scoped recovery checks build on.
package scrub

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockdev"
	"repro/internal/fsck"
	"repro/internal/telemetry"
)

// Config wires a Scrubber to its host.
type Config struct {
	// Interval between background passes; Start requires it > 0. RunOnce
	// works regardless.
	Interval time.Duration
	// Workers sizes the parallel checker's pool; values < 1 clamp to 1.
	Workers int
	// Telemetry receives scrub.* instruments; nil disables observability.
	Telemetry *telemetry.Sink
	// Freeze produces the frozen read-only view a pass checks, plus an
	// opaque generation token the host uses to detect that the view went
	// stale (a recovery ran) before acting on the verdict. Called once per
	// pass; an error skips the pass.
	Freeze func() (view blockdev.Device, gen uint64, err error)
	// OnReport receives every completed pass's report together with the
	// freeze-time generation token. Called from the scrubber's goroutine
	// (or the RunOnce caller); it must therefore never block on work that
	// waits for the scrubber to stop.
	OnReport func(rep *fsck.Report, gen uint64)
}

// Scrubber runs background verification passes. Create with New, drive with
// Start/Stop (idempotent), or call RunOnce synchronously.
type Scrubber struct {
	cfg Config

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      sync.WaitGroup

	passes     atomic.Int64
	cleanPass  atomic.Int64
	corrupt    atomic.Int64
	freezeErrs atomic.Int64
}

// New returns a scrubber; it does not start it.
func New(cfg Config) *Scrubber {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &Scrubber{cfg: cfg, stop: make(chan struct{})}
}

// Start launches the background loop. No-op if Interval is unset or the
// scrubber was already started.
func (s *Scrubber) Start() {
	if s == nil || s.cfg.Interval <= 0 {
		return
	}
	s.startOnce.Do(func() {
		s.done.Add(1)
		go s.loop()
	})
}

// Stop halts the background loop and waits for any in-flight pass —
// including a recovery the host tripped from OnReport — to finish. Safe to
// call multiple times, on a never-started scrubber, and on nil.
func (s *Scrubber) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.done.Wait()
}

func (s *Scrubber) loop() {
	defer s.done.Done()
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.RunOnce()
		}
	}
}

// RunOnce performs one scrub pass synchronously: freeze, check, publish,
// report. Returns the pass's report, or nil when the freeze failed.
func (s *Scrubber) RunOnce() *fsck.Report {
	tel := s.cfg.Telemetry
	view, gen, err := s.cfg.Freeze()
	if err != nil {
		s.freezeErrs.Add(1)
		tel.Counter("scrub.freeze_errors").Inc()
		tel.Event("scrub", "freeze failed, pass skipped: %v", err)
		return nil
	}
	t := time.Now()
	rep := fsck.CheckParallel(view, s.cfg.Workers)
	dur := time.Since(t)

	s.passes.Add(1)
	tel.Counter("scrub.passes").Inc()
	tel.Histogram("scrub.pass_ns").Observe(dur)
	tel.Counter("scrub.checks_run").Add(rep.ChecksRun)
	if n := rep.CorruptCount(); n > 0 {
		s.corrupt.Add(1)
		tel.Counter("scrub.findings.corrupt").Add(int64(n))
		tel.Event("scrub", "pass found %d corruption problems, first: %s",
			n, firstCorrupt(rep))
	} else {
		s.cleanPass.Add(1)
	}
	if n := rep.Warnings(); n > 0 {
		tel.Counter("scrub.findings.warn").Add(int64(n))
	}
	if s.cfg.OnReport != nil {
		s.cfg.OnReport(rep, gen)
	}
	return rep
}

func firstCorrupt(rep *fsck.Report) string {
	for _, p := range rep.Problems {
		if p.Severity == fsck.Corrupt {
			return p.String()
		}
	}
	return ""
}

// Passes returns the number of completed passes.
func (s *Scrubber) Passes() int64 {
	if s == nil {
		return 0
	}
	return s.passes.Load()
}

// CleanPasses returns the number of passes with no corruption findings.
func (s *Scrubber) CleanPasses() int64 {
	if s == nil {
		return 0
	}
	return s.cleanPass.Load()
}

// CorruptPasses returns the number of passes that found corruption.
func (s *Scrubber) CorruptPasses() int64 {
	if s == nil {
		return 0
	}
	return s.corrupt.Load()
}

// FreezeErrors returns the number of passes skipped because the frozen view
// could not be built.
func (s *Scrubber) FreezeErrors() int64 {
	if s == nil {
		return 0
	}
	return s.freezeErrs.Load()
}
