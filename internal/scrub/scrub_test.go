package scrub

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsck"
	"repro/internal/journal"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// populatedDev builds a cleanly unmounted image.
func populatedDev(t *testing.T, seed int64) (*blockdev.Mem, *disklayout.Superblock) {
	t.Helper()
	dev := blockdev.NewMem(4096)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: seed, NumOps: 200, Superblock: sb,
	})
	for _, op := range trace {
		o := op.Clone()
		o.Errno, o.RetFD, o.RetIno, o.RetN = 0, 0, 0, 0
		_ = oplog.Apply(fs, o)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	return dev, sb
}

func TestScrubCleanPass(t *testing.T) {
	dev, _ := populatedDev(t, 1)
	var gotGen atomic.Uint64
	var gotClean atomic.Bool
	s := New(Config{
		Workers: 4,
		Freeze: func() (blockdev.Device, uint64, error) {
			return dev.SnapshotDevice(), 42, nil
		},
		OnReport: func(rep *fsck.Report, gen uint64) {
			gotGen.Store(gen)
			gotClean.Store(rep.Clean())
		},
	})
	rep := s.RunOnce()
	if rep == nil || !rep.Clean() {
		t.Fatalf("pass not clean: %+v", rep)
	}
	if s.Passes() != 1 || s.CleanPasses() != 1 || s.CorruptPasses() != 0 {
		t.Errorf("counters: passes=%d clean=%d corrupt=%d", s.Passes(), s.CleanPasses(), s.CorruptPasses())
	}
	if gotGen.Load() != 42 || !gotClean.Load() {
		t.Errorf("OnReport saw gen=%d clean=%v, want 42/true", gotGen.Load(), gotClean.Load())
	}
}

func TestScrubDetectsCorruption(t *testing.T) {
	dev, sb := populatedDev(t, 2)
	// Flip the inode bitmap's first byte: the root inode's allocation bit
	// inverts, making the root a ghost — unambiguous structural corruption.
	if err := dev.CorruptBlock(sb.InodeBitmapStart, 0, 0xFF); err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers: 4,
		Freeze: func() (blockdev.Device, uint64, error) {
			return dev.SnapshotDevice(), 1, nil
		},
	})
	rep := s.RunOnce()
	if rep == nil || rep.Clean() {
		t.Fatal("corrupted table block not detected")
	}
	if s.CorruptPasses() != 1 || s.CleanPasses() != 0 {
		t.Errorf("counters: clean=%d corrupt=%d", s.CleanPasses(), s.CorruptPasses())
	}
}

func TestScrubFreezeErrorSkipsPass(t *testing.T) {
	called := false
	s := New(Config{
		Freeze: func() (blockdev.Device, uint64, error) {
			return nil, 0, errors.New("snapshot unavailable")
		},
		OnReport: func(rep *fsck.Report, gen uint64) { called = true },
	})
	if rep := s.RunOnce(); rep != nil {
		t.Fatalf("report from failed freeze: %+v", rep)
	}
	if s.FreezeErrors() != 1 || s.Passes() != 0 {
		t.Errorf("counters: freezeErrs=%d passes=%d", s.FreezeErrors(), s.Passes())
	}
	if called {
		t.Error("OnReport called for a skipped pass")
	}
}

// TestScrubChecksCommittedOverlayView is the frozen-view regression test: a
// snapshot taken while the journal holds committed-but-not-checkpointed
// transactions must be checked through the committed-transaction overlay (the
// logical post-replay image), never raw. The overlay must actually engage —
// an empty overlay would mean the scenario regressed to triviality.
func TestScrubChecksCommittedOverlayView(t *testing.T) {
	dev := blockdev.NewMem(4096)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A metadata burst plus a sync: commits transactions to the journal; the
	// lazy checkpoint policy leaves home locations stale.
	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: 3, NumOps: 60, Superblock: sb,
	})
	for _, op := range trace {
		o := op.Clone()
		o.Errno, o.RetFD, o.RetIno, o.RetN = 0, 0, 0, 0
		_ = oplog.Apply(fs, o)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Snapshot mid-life: journal non-empty, image stale. (Unmount would
	// checkpoint and destroy the scenario.)
	snap := dev.SnapshotDevice()
	over, st, err := journal.CommittedOverlay(snap, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed == 0 || len(over) == 0 {
		t.Fatalf("scenario broke: %d committed txs, %d overlay blocks — nothing lazy left in the journal", st.Committed, len(over))
	}
	s := New(Config{
		Workers: 4,
		Freeze: func() (blockdev.Device, uint64, error) {
			return blockdev.NewOverlay(snap, over), 7, nil
		},
	})
	rep := s.RunOnce()
	if rep == nil || !rep.Clean() {
		if rep != nil {
			for _, p := range rep.Problems {
				t.Logf("  %s", p)
			}
		}
		t.Fatal("post-replay composed view did not check clean")
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
}

// TestScrubBackgroundLoop drives Start/Stop: passes accumulate on the
// interval and Stop is idempotent and final.
func TestScrubBackgroundLoop(t *testing.T) {
	dev, _ := populatedDev(t, 4)
	s := New(Config{
		Interval: time.Millisecond,
		Workers:  2,
		Freeze: func() (blockdev.Device, uint64, error) {
			return dev.SnapshotDevice(), 0, nil
		},
	})
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for s.Passes() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	got := s.Passes()
	if got < 3 {
		t.Fatalf("only %d passes before deadline", got)
	}
	if got != s.CleanPasses() {
		t.Errorf("passes=%d cleanPasses=%d on a clean image", got, s.CleanPasses())
	}
	time.Sleep(3 * time.Millisecond)
	if s.Passes() != got {
		t.Error("passes advanced after Stop")
	}
	s.Stop() // idempotent
}
