package disklayout

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fserr"
)

func validSB(t *testing.T) *Superblock {
	t.Helper()
	sb, err := Geometry(4096, 512, 64)
	if err != nil {
		t.Fatalf("Geometry: %v", err)
	}
	return sb
}

func TestSuperblockRoundTrip(t *testing.T) {
	sb := validSB(t)
	sb.Generation = 42
	sb.Clean = 0
	got, err := DecodeSuperblock(EncodeSuperblock(sb))
	if err != nil {
		t.Fatalf("DecodeSuperblock: %v", err)
	}
	if *got != *sb {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, sb)
	}
}

func TestSuperblockChecksumDetectsFlip(t *testing.T) {
	sb := validSB(t)
	enc := EncodeSuperblock(sb)
	for _, off := range []int{0, 5, 17, 63, BlockSize - 5, BlockSize - 1} {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x40
		if _, err := DecodeSuperblock(mut); !errors.Is(err, fserr.ErrCorrupt) {
			t.Errorf("flip at %d: err=%v, want ErrCorrupt", off, err)
		}
	}
}

func TestSuperblockValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Superblock)
	}{
		{"bad magic", func(sb *Superblock) { sb.Magic = 0xdead }},
		{"bad version", func(sb *Superblock) { sb.Version = 99 }},
		{"bad block size", func(sb *Superblock) { sb.BlockSizeField = 512 }},
		{"tiny image", func(sb *Superblock) { sb.NumBlocks = 4 }},
		{"zero inodes", func(sb *Superblock) { sb.NumInodes = 0 }},
		{"overlapping bitmap", func(sb *Superblock) { sb.BlockBitmapStart = sb.InodeBitmapStart }},
		{"region past end", func(sb *Superblock) { sb.JournalLen = sb.NumBlocks }},
		{"data before journal end", func(sb *Superblock) { sb.DataStart = sb.JournalStart }},
		{"data past end", func(sb *Superblock) { sb.DataStart = sb.NumBlocks }},
		{"inode table too small", func(sb *Superblock) { sb.InodeTableLen = 0 }},
		{"root out of range", func(sb *Superblock) { sb.RootIno = sb.NumInodes }},
		{"root zero", func(sb *Superblock) { sb.RootIno = 0 }},
		{"journal too small", func(sb *Superblock) { sb.JournalLen = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sb := validSB(t)
			tc.mut(sb)
			if err := sb.Validate(); !errors.Is(err, fserr.ErrCorrupt) {
				t.Errorf("Validate after %s: err=%v, want ErrCorrupt", tc.name, err)
			}
		})
	}
}

func TestGeometryRegionsDisjointAndOrdered(t *testing.T) {
	for _, blocks := range []uint32{128, 1024, 65536, 1 << 20} {
		sb, err := Geometry(blocks, 0, 0)
		if err != nil {
			t.Fatalf("Geometry(%d): %v", blocks, err)
		}
		if err := sb.Validate(); err != nil {
			t.Errorf("Geometry(%d) invalid: %v", blocks, err)
		}
		if sb.DataBlocks() == 0 {
			t.Errorf("Geometry(%d): no data blocks", blocks)
		}
	}
}

func TestGeometryTooSmall(t *testing.T) {
	if _, err := Geometry(8, 0, 0); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("Geometry(8): err=%v, want ErrInvalid", err)
	}
	// Large journal squeezes out the data region.
	if _, err := Geometry(64, 64, 60); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("Geometry with oversized journal: err=%v, want ErrInvalid", err)
	}
}

func TestInodeRoundTrip(t *testing.T) {
	ino := &Inode{
		Mode:  MkMode(TypeFile, 0o644),
		Nlink: 3, UID: 1000, GID: 1000,
		Size: 123456, Atime: 1, Mtime: 2, Ctime: 3,
		Indirect: 900, DblIndir: 901, Generation: 7, Flags: 1,
	}
	for i := range ino.Direct {
		ino.Direct[i] = uint32(800 + i)
	}
	got, err := DecodeInode(EncodeInode(ino))
	if err != nil {
		t.Fatalf("DecodeInode: %v", err)
	}
	if *got != *ino {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, ino)
	}
}

func TestInodeRoundTripProperty(t *testing.T) {
	f := func(mode, nlink uint16, uid, gid, ind, dbl, gen, flags uint32, size int64, a, m, c uint64) bool {
		ino := &Inode{
			Mode: MkMode(uint16(mode)%4, mode), Nlink: nlink,
			UID: uid, GID: gid,
			Size:  size % MaxFileSize,
			Atime: a, Mtime: m, Ctime: c,
			Indirect: ind, DblIndir: dbl, Generation: gen, Flags: flags,
		}
		if ino.Size < 0 {
			ino.Size = -ino.Size
		}
		got, err := DecodeInode(EncodeInode(ino))
		return err == nil && *got == *ino
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInodeChecksumDetectsFlip(t *testing.T) {
	ino := &Inode{Mode: MkMode(TypeDir, 0o755), Nlink: 2, Size: BlockSize}
	enc := EncodeInode(ino)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 64; trial++ {
		mut := append([]byte(nil), enc...)
		mut[rng.Intn(InodeSize)] ^= 1 << rng.Intn(8)
		got, err := DecodeInode(mut)
		if err == nil && *got == *ino {
			// A flip that decodes identically would be a CRC collision.
			t.Errorf("trial %d: corruption not detected and value unchanged", trial)
		}
	}
}

func TestDecodeInodeRejects(t *testing.T) {
	// Bad type.
	ino := &Inode{Mode: MkMode(TypeSym+1, 0)}
	if _, err := DecodeInode(EncodeInode(ino)); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("bad type: err=%v, want ErrCorrupt", err)
	}
	// Oversized.
	ino = &Inode{Mode: MkMode(TypeFile, 0), Size: MaxFileSize + 1}
	if _, err := DecodeInode(EncodeInode(ino)); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("oversize: err=%v, want ErrCorrupt", err)
	}
	// Short buffer.
	if _, err := DecodeInode(make([]byte, 10)); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("short buffer: err=%v, want ErrCorrupt", err)
	}
}

func TestInodeValidatePointers(t *testing.T) {
	sb := validSB(t)
	ino := &Inode{Mode: MkMode(TypeFile, 0o644)}
	ino.Direct[0] = sb.DataStart
	ino.Direct[1] = sb.NumBlocks - 1
	if err := ino.ValidatePointers(sb); err != nil {
		t.Errorf("in-range pointers rejected: %v", err)
	}
	ino.Direct[2] = sb.DataStart - 1 // inside metadata
	if err := ino.ValidatePointers(sb); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("metadata pointer: err=%v, want ErrCorrupt", err)
	}
	ino.Direct[2] = 0
	ino.DblIndir = sb.NumBlocks // past end
	if err := ino.ValidatePointers(sb); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("out-of-range pointer: err=%v, want ErrCorrupt", err)
	}
}

func TestDirentRoundTrip(t *testing.T) {
	names := []string{"a", "hello.txt", string(make([]byte, 0)), ""}
	_ = names
	b := make([]byte, DirentSize)
	for _, name := range []string{"a", "hello.txt", "x.y-z_1234", string(bytesOf('n', MaxNameLen))} {
		EncodeDirent(b, Dirent{Ino: 77, Name: name})
		got, err := DecodeDirent(b)
		if err != nil {
			t.Fatalf("DecodeDirent(%q): %v", name, err)
		}
		if got.Ino != 77 || got.Name != name {
			t.Errorf("round trip %q: got %+v", name, got)
		}
	}
}

func bytesOf(c byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return b
}

func TestDirentFreeSlot(t *testing.T) {
	b := make([]byte, DirentSize)
	d, err := DecodeDirent(b)
	if err != nil || d.Ino != 0 {
		t.Errorf("free slot: d=%+v err=%v", d, err)
	}
}

func TestDirentRejects(t *testing.T) {
	b := make([]byte, DirentSize)
	EncodeDirent(b, Dirent{Ino: 5, Name: "ok"})
	b[4] = 0 // nameLen = 0 with nonzero ino
	b[5] = 0
	if _, err := DecodeDirent(b); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("zero namelen: err=%v, want ErrCorrupt", err)
	}
	EncodeDirent(b, Dirent{Ino: 5, Name: "ok"})
	b[4] = MaxNameLen + 1
	if _, err := DecodeDirent(b); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("oversized namelen: err=%v, want ErrCorrupt", err)
	}
	EncodeDirent(b, Dirent{Ino: 5, Name: "ab"})
	b[9] = '/' // illegal byte inside the name
	if _, err := DecodeDirent(b); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("slash in name: err=%v, want ErrCorrupt", err)
	}
}

func TestEncodeDirentPanicsOnLongName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EncodeDirent accepted an oversized name")
		}
	}()
	EncodeDirent(make([]byte, DirentSize), Dirent{Ino: 1, Name: string(bytesOf('q', MaxNameLen+1))})
}

func TestValidName(t *testing.T) {
	for _, name := range []string{"a", "file.txt", string(bytesOf('m', MaxNameLen))} {
		if err := ValidName(name); err != nil {
			t.Errorf("ValidName(%q) = %v, want nil", name, err)
		}
	}
	bad := map[string]error{
		"":                                 fserr.ErrInvalid,
		".":                                fserr.ErrInvalid,
		"..":                               fserr.ErrInvalid,
		"a/b":                              fserr.ErrInvalid,
		"nul\x00byte":                      fserr.ErrInvalid,
		string(bytesOf('q', MaxNameLen+1)): fserr.ErrNameTooLong,
	}
	for name, want := range bad {
		if err := ValidName(name); !errors.Is(err, want) {
			t.Errorf("ValidName(%q) = %v, want %v", name, err, want)
		}
	}
}

func TestModePacking(t *testing.T) {
	m := MkMode(TypeDir, 0o755)
	if ModeType(m) != TypeDir || ModePerm(m) != 0o755 {
		t.Errorf("MkMode(dir,755): type=%d perm=%o", ModeType(m), ModePerm(m))
	}
	// Permission bits must not bleed into the type.
	m = MkMode(TypeFile, 0o7777)
	if ModeType(m) != TypeFile {
		t.Errorf("perm bits corrupted type: %d", ModeType(m))
	}
}

func TestInodeLoc(t *testing.T) {
	sb := validSB(t)
	blk, off := sb.InodeLoc(0)
	if blk != sb.InodeTableStart || off != 0 {
		t.Errorf("InodeLoc(0) = (%d,%d)", blk, off)
	}
	blk, off = sb.InodeLoc(InodesPerBlock + 3)
	if blk != sb.InodeTableStart+1 || off != 3*InodeSize {
		t.Errorf("InodeLoc(%d) = (%d,%d)", InodesPerBlock+3, blk, off)
	}
}

func TestBitmapBasics(t *testing.T) {
	bm := make([]byte, BlockSize)
	if TestBit(bm, 100) {
		t.Error("fresh bitmap has bit 100 set")
	}
	SetBit(bm, 100)
	if !TestBit(bm, 100) {
		t.Error("SetBit(100) did not stick")
	}
	if TestBit(bm, 99) || TestBit(bm, 101) {
		t.Error("SetBit(100) disturbed neighbors")
	}
	ClearBit(bm, 100)
	if TestBit(bm, 100) {
		t.Error("ClearBit(100) did not stick")
	}
}

func TestBitmapOutOfRangeReadsAsSet(t *testing.T) {
	bm := make([]byte, 8)
	if !TestBit(bm, 64) {
		t.Error("out-of-range bit reads as free; it must read as allocated")
	}
	SetBit(bm, 1000) // must not panic
	ClearBit(bm, 1000)
}

func TestFindFree(t *testing.T) {
	bm := make([]byte, BlockSize)
	limit := uint32(100)
	for i := uint32(0); i < limit; i++ {
		SetBit(bm, i)
	}
	if _, ok := FindFree(bm, 0, limit); ok {
		t.Error("FindFree found a bit in a full bitmap")
	}
	ClearBit(bm, 37)
	got, ok := FindFree(bm, 0, limit)
	if !ok || got != 37 {
		t.Errorf("FindFree = (%d,%v), want (37,true)", got, ok)
	}
	// Hint past the free bit must wrap around.
	got, ok = FindFree(bm, 50, limit)
	if !ok || got != 37 {
		t.Errorf("FindFree with hint 50 = (%d,%v), want (37,true)", got, ok)
	}
	// Hint at or past limit is normalized.
	got, ok = FindFree(bm, limit+10, limit)
	if !ok || got != 37 {
		t.Errorf("FindFree with big hint = (%d,%v), want (37,true)", got, ok)
	}
	if _, ok := FindFree(bm, 0, 0); ok {
		t.Error("FindFree with limit 0 found a bit")
	}
}

func TestFindFreeProperty(t *testing.T) {
	f := func(seed int64, hint uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		bm := make([]byte, 64)
		limit := uint32(64 * 8)
		nset := rng.Intn(int(limit))
		for i := 0; i < nset; i++ {
			SetBit(bm, uint32(rng.Intn(int(limit))))
		}
		got, ok := FindFree(bm, hint%limit, limit)
		if !ok {
			return CountSet(bm, limit) == limit
		}
		return got < limit && !TestBit(bm, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountSet(t *testing.T) {
	bm := make([]byte, 16)
	SetBit(bm, 0)
	SetBit(bm, 7)
	SetBit(bm, 8)
	SetBit(bm, 127)
	if got := CountSet(bm, 128); got != 4 {
		t.Errorf("CountSet = %d, want 4", got)
	}
	if got := CountSet(bm, 8); got != 2 {
		t.Errorf("CountSet(limit 8) = %d, want 2", got)
	}
}

func TestMaxFileGeometry(t *testing.T) {
	if MaxFileBlocks != 12+1024+1024*1024 {
		t.Errorf("MaxFileBlocks = %d", MaxFileBlocks)
	}
	if MaxFileSize != int64(MaxFileBlocks)*BlockSize {
		t.Errorf("MaxFileSize = %d", MaxFileSize)
	}
}
