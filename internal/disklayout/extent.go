package disklayout

// Extent-based file mapping. An inode with FlagExtents set stores its data
// map as a sorted list of extents — (file block, start block, length) runs —
// instead of the per-block direct/indirect pointer tree. The first
// MaxInlineExtents extents live inline in the inode's pointer area (the
// Direct array reinterpreted as 3-word records); when a file fragments
// beyond that, the tail of the list spills into a chain of CRC-covered
// extent-node blocks linked from the Indirect field. DblIndir is unused and
// must be zero on extent inodes.
//
// The two layouts coexist in one image: directories and symlinks always use
// the legacy block map (their access pattern is pointer-chasing anyway), and
// regular files written by a legacy-layout mount remain readable — every
// reader branches on FlagExtents, which is the bmap→extent compatibility
// contract. mkfs.UpgradeExtents converts legacy regular files in place.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/fserr"
)

// Inode.Flags bits.
const (
	// FlagExtents marks an inode whose data map is the extent list described
	// above rather than the direct/indirect pointer tree.
	FlagExtents = uint32(1) << 0
)

// Extent geometry.
const (
	// MaxInlineExtents is the number of extents stored inline in the inode's
	// Direct pointer area (NumDirect u32 slots / 3 words per extent).
	MaxInlineExtents = NumDirect / 3
	// ExtentNodeMagic identifies an extent overflow node block.
	ExtentNodeMagic = 0x5AD0E741
	// extentNodeHeader is the byte size of the node header: magic u32,
	// count u16, pad u16, next u32, reserved u32.
	extentNodeHeader = 16
	// ExtentSize is the encoded size of one extent record.
	ExtentSize = 12
	// ExtentsPerNode is how many extents one overflow node block holds.
	ExtentsPerNode = (BlockSize - extentNodeHeader - 4) / ExtentSize
	// maxExtentNodes bounds an extent chain walk: enough for a maximally
	// fragmented (all single-block extents) maximum-size file, and small
	// enough that a pointer cycle is detected rather than walked forever.
	maxExtentNodes = MaxFileBlocks/ExtentsPerNode + 2
)

// Extent describes one contiguous run of file data: file blocks
// [FileOff, FileOff+Len) live in device blocks [Start, Start+Len).
// Offsets and lengths are in blocks. A zero-Len extent is an unused slot.
type Extent struct {
	FileOff uint32
	Start   uint32
	Len     uint32
}

// End returns the first file block past the extent.
func (e Extent) End() uint32 { return e.FileOff + e.Len }

// IsExtents reports whether the inode uses the extent mapping.
func (ino *Inode) IsExtents() bool { return ino.Flags&FlagExtents != 0 }

// InlineExtents decodes the inode's inline extent slots (used and unused).
// Only meaningful when IsExtents.
func (ino *Inode) InlineExtents() [MaxInlineExtents]Extent {
	var out [MaxInlineExtents]Extent
	for i := range out {
		out[i] = Extent{
			FileOff: ino.Direct[3*i],
			Start:   ino.Direct[3*i+1],
			Len:     ino.Direct[3*i+2],
		}
	}
	return out
}

// SetInlineExtents stores exts (at most MaxInlineExtents) into the inode's
// pointer area, zeroing unused slots.
func (ino *Inode) SetInlineExtents(exts []Extent) {
	if len(exts) > MaxInlineExtents {
		panic(fmt.Sprintf("disklayout: %d inline extents exceed %d", len(exts), MaxInlineExtents))
	}
	for i := 0; i < MaxInlineExtents; i++ {
		var e Extent
		if i < len(exts) {
			e = exts[i]
		}
		ino.Direct[3*i] = e.FileOff
		ino.Direct[3*i+1] = e.Start
		ino.Direct[3*i+2] = e.Len
	}
}

// ExtentNode is the in-memory form of one overflow node block.
type ExtentNode struct {
	// Next is the block number of the following node in the chain, 0 at the
	// tail.
	Next uint32
	// Extents holds the node's used extent records in file order.
	Extents []Extent
}

// EncodeExtentNode serializes n into a full block with a trailing checksum.
func EncodeExtentNode(n *ExtentNode) []byte {
	if len(n.Extents) > ExtentsPerNode {
		panic(fmt.Sprintf("disklayout: %d extents exceed node capacity %d", len(n.Extents), ExtentsPerNode))
	}
	b := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], ExtentNodeMagic)
	le.PutUint16(b[4:], uint16(len(n.Extents)))
	le.PutUint32(b[8:], n.Next)
	off := extentNodeHeader
	for _, e := range n.Extents {
		le.PutUint32(b[off:], e.FileOff)
		le.PutUint32(b[off+4:], e.Start)
		le.PutUint32(b[off+8:], e.Len)
		off += ExtentSize
	}
	le.PutUint32(b[BlockSize-4:], Checksum(b[:BlockSize-4]))
	return b
}

// DecodeExtentNode parses and validates one overflow node block.
func DecodeExtentNode(b []byte) (*ExtentNode, error) {
	if len(b) != BlockSize {
		return nil, fmt.Errorf("extent node: got %d bytes, want %d: %w", len(b), BlockSize, fserr.ErrCorrupt)
	}
	le := binary.LittleEndian
	if got, want := le.Uint32(b[BlockSize-4:]), Checksum(b[:BlockSize-4]); got != want {
		return nil, fmt.Errorf("extent node: checksum %#x, want %#x: %w", got, want, fserr.ErrCorrupt)
	}
	if m := le.Uint32(b[0:]); m != ExtentNodeMagic {
		return nil, fmt.Errorf("extent node: magic %#x, want %#x: %w", m, uint32(ExtentNodeMagic), fserr.ErrCorrupt)
	}
	count := int(le.Uint16(b[4:]))
	if count > ExtentsPerNode {
		return nil, fmt.Errorf("extent node: count %d exceeds capacity %d: %w", count, ExtentsPerNode, fserr.ErrCorrupt)
	}
	n := &ExtentNode{Next: le.Uint32(b[8:])}
	off := extentNodeHeader
	for i := 0; i < count; i++ {
		e := Extent{
			FileOff: le.Uint32(b[off:]),
			Start:   le.Uint32(b[off+4:]),
			Len:     le.Uint32(b[off+8:]),
		}
		if e.Len == 0 {
			return nil, fmt.Errorf("extent node: zero-length extent at slot %d: %w", i, fserr.ErrCorrupt)
		}
		n.Extents = append(n.Extents, e)
		off += ExtentSize
	}
	return n, nil
}

// ValidateExtent checks one extent's run against the data region of sb.
func (sb *Superblock) ValidateExtent(e Extent) error {
	if e.Len == 0 {
		return nil
	}
	end := uint64(e.Start) + uint64(e.Len)
	if e.Start < sb.DataStart || end > uint64(sb.NumBlocks) {
		return fmt.Errorf("extent [%d,%d) outside data region [%d,%d): %w",
			e.Start, end, sb.DataStart, sb.NumBlocks, fserr.ErrCorrupt)
	}
	if uint64(e.FileOff)+uint64(e.Len) > uint64(MaxFileBlocks) {
		return fmt.Errorf("extent maps file blocks [%d,%d) past max %d: %w",
			e.FileOff, uint64(e.FileOff)+uint64(e.Len), uint64(MaxFileBlocks), fserr.ErrCorrupt)
	}
	return nil
}

// ExtentWalk iterates the inode's extent list in storage order: inline slots
// first, then each overflow node down the chain. nodeFn, when non-nil, is
// called with every overflow node's block number before that node's extents
// are emitted (fsck uses it to claim the node blocks themselves). extFn is
// called for every used extent. Both callbacks stop the walk by returning an
// error. read loads raw blocks; a broken chain (bad checksum, cycle, pointer
// outside the data region) returns fserr.ErrCorrupt.
func (ino *Inode) ExtentWalk(sb *Superblock, read func(uint32) ([]byte, error),
	nodeFn func(uint32) error, extFn func(Extent) error) error {
	if !ino.IsExtents() {
		return fmt.Errorf("extent walk on non-extent inode: %w", fserr.ErrInvalid)
	}
	for _, e := range ino.InlineExtents() {
		if e.Len == 0 {
			continue
		}
		if err := extFn(e); err != nil {
			return err
		}
	}
	next := ino.Indirect
	for hops := 0; next != 0; hops++ {
		if hops >= maxExtentNodes {
			return fmt.Errorf("extent chain exceeds %d nodes (cycle?): %w", maxExtentNodes, fserr.ErrCorrupt)
		}
		if next < sb.DataStart || next >= sb.NumBlocks {
			return fmt.Errorf("extent node pointer %d outside data region [%d,%d): %w",
				next, sb.DataStart, sb.NumBlocks, fserr.ErrCorrupt)
		}
		if nodeFn != nil {
			if err := nodeFn(next); err != nil {
				return err
			}
		}
		b, err := read(next)
		if err != nil {
			return err
		}
		n, err := DecodeExtentNode(b)
		if err != nil {
			return fmt.Errorf("extent node %d: %w", next, err)
		}
		for _, e := range n.Extents {
			if err := extFn(e); err != nil {
				return err
			}
		}
		next = n.Next
	}
	return nil
}

// validateExtentPointers is the FlagExtents branch of ValidatePointers:
// inline runs must sit in the data region and be non-overlapping in file
// space, the overflow chain head must point into the data region, and the
// double-indirect slot must be unused.
func (ino *Inode) validateExtentPointers(sb *Superblock) error {
	var prevEnd uint64
	for i, e := range ino.InlineExtents() {
		if e.Len == 0 {
			continue
		}
		if err := sb.ValidateExtent(e); err != nil {
			return fmt.Errorf("inode: inline extent %d: %w", i, err)
		}
		if uint64(e.FileOff) < prevEnd {
			return fmt.Errorf("inode: inline extent %d at file block %d overlaps previous run ending at %d: %w",
				i, e.FileOff, prevEnd, fserr.ErrCorrupt)
		}
		prevEnd = uint64(e.FileOff) + uint64(e.Len)
	}
	if p := ino.Indirect; p != 0 && (p < sb.DataStart || p >= sb.NumBlocks) {
		return fmt.Errorf("inode: extent chain pointer %d outside data region [%d,%d): %w",
			p, sb.DataStart, sb.NumBlocks, fserr.ErrCorrupt)
	}
	if ino.DblIndir != 0 {
		return fmt.Errorf("inode: extent inode has double-indirect pointer %d (must be 0): %w",
			ino.DblIndir, fserr.ErrCorrupt)
	}
	return nil
}
