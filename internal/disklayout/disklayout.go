// Package disklayout defines the on-disk format shared by the base
// filesystem, the shadow filesystem, mkfs, and fsck.
//
// The paper requires that the shadow adhere to "the same API and on-disk
// formats as the base filesystem it enhances"; centralizing the format here
// is what makes that sharing checkable. Every structure carries a CRC32C
// checksum so both filesystems (and especially the shadow, which trusts
// nothing) can validate what they read.
//
// Geometry, in 4 KiB blocks:
//
//	block 0                  superblock
//	[InodeBitmapStart, ...)  inode allocation bitmap
//	[BlockBitmapStart, ...)  data block allocation bitmap
//	[InodeTableStart, ...)   inode table, 32 inodes of 128 B per block
//	[JournalStart, ...)      physical-block write-ahead journal
//	[DataStart, NumBlocks-1) data and indirect blocks
//	block NumBlocks-1        backup superblock
//
// The last block holds a backup copy of the superblock. The primary is
// rewritten in place at mount and unmount (and by journal checkpoints), so a
// crash can tear it mid-write; without a second copy the image becomes
// unrecoverable — the geometry needed to even locate the journal lives in
// the block that was lost. Writers update the backup before the primary so at
// most one copy is torn at any crash point, and recovery falls back to the
// backup (then self-heals the primary) when the primary fails its checksum.
package disklayout

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/fserr"
)

// Fundamental format constants.
const (
	// BlockSize is the size of every on-disk block in bytes.
	BlockSize = 4096
	// Magic identifies a shadowfs-format superblock.
	Magic = 0x5AD0F515
	// Version is the current format version.
	Version = 1
	// InodeSize is the on-disk size of one inode record.
	InodeSize = 128
	// InodesPerBlock is how many inode records fit in one block.
	InodesPerBlock = BlockSize / InodeSize
	// DirentSize is the fixed size of one directory entry.
	DirentSize = 64
	// DirentsPerBlock is how many directory entries fit in one block.
	DirentsPerBlock = BlockSize / DirentSize
	// MaxNameLen is the longest file name a directory entry can store.
	MaxNameLen = 56
	// NumDirect is the number of direct block pointers per inode.
	NumDirect = 12
	// PtrsPerBlock is the number of u32 block pointers in an indirect block.
	PtrsPerBlock = BlockSize / 4
	// RootIno is the inode number of the root directory. Inode 0 is reserved
	// as the nil pointer.
	RootIno = 1
)

// MaxFileBlocks is the largest number of data blocks a single inode can
// address: direct + single-indirect + double-indirect.
const MaxFileBlocks = NumDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock

// MaxFileSize is the largest file size in bytes an inode can represent.
const MaxFileSize = int64(MaxFileBlocks) * BlockSize

// File type values stored in Inode.Mode's type bits.
const (
	TypeFree = 0 // unallocated inode
	TypeFile = 1
	TypeDir  = 2
	TypeSym  = 3
)

// Mode encoding: type in bits 12-15, permissions in bits 0-11.
const (
	modeTypeShift = 12
	ModePermMask  = 0o7777
)

// MkMode packs a file type and permission bits into a Mode value.
func MkMode(typ uint16, perm uint16) uint16 {
	return typ<<modeTypeShift | perm&ModePermMask
}

// ModeType extracts the file type from a Mode value.
func ModeType(mode uint16) uint16 { return mode >> modeTypeShift }

// ModePerm extracts the permission bits from a Mode value.
func ModePerm(mode uint16) uint16 { return mode & ModePermMask }

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC32C of b, the integrity function used across the
// format.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// ChecksumUpdate continues a CRC32C over more bytes:
// ChecksumUpdate(ChecksumUpdate(0, a), b) == Checksum(append(a, b...)).
// The journal's commit and replay paths use it to fold payload blocks into
// a running checksum without concatenating them.
func ChecksumUpdate(acc uint32, b []byte) uint32 { return crc32.Update(acc, crcTable, b) }

// Superblock is the root of the on-disk format, stored in block 0.
type Superblock struct {
	Magic            uint32
	Version          uint32
	BlockSizeField   uint32 // must equal BlockSize; named to avoid colliding with the constant
	NumBlocks        uint32 // total blocks in the image
	NumInodes        uint32 // total inode records
	InodeBitmapStart uint32
	InodeBitmapLen   uint32
	BlockBitmapStart uint32
	BlockBitmapLen   uint32
	InodeTableStart  uint32
	InodeTableLen    uint32
	JournalStart     uint32
	JournalLen       uint32
	DataStart        uint32
	RootIno          uint32
	Clean            uint32 // 1 if cleanly unmounted
	Generation       uint64 // bumped on each mount; detects stale cached superblocks
	LastClock        uint64 // logical clock at the last durable point, restored on mount
}

const superblockPayload = 4 * 16 // 16 u32 fields... laid out explicitly in encode

// EncodeSuperblock serializes sb into a full block with a trailing checksum.
func EncodeSuperblock(sb *Superblock) []byte {
	b := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], sb.Magic)
	le.PutUint32(b[4:], sb.Version)
	le.PutUint32(b[8:], sb.BlockSizeField)
	le.PutUint32(b[12:], sb.NumBlocks)
	le.PutUint32(b[16:], sb.NumInodes)
	le.PutUint32(b[20:], sb.InodeBitmapStart)
	le.PutUint32(b[24:], sb.InodeBitmapLen)
	le.PutUint32(b[28:], sb.BlockBitmapStart)
	le.PutUint32(b[32:], sb.BlockBitmapLen)
	le.PutUint32(b[36:], sb.InodeTableStart)
	le.PutUint32(b[40:], sb.InodeTableLen)
	le.PutUint32(b[44:], sb.JournalStart)
	le.PutUint32(b[48:], sb.JournalLen)
	le.PutUint32(b[52:], sb.DataStart)
	le.PutUint32(b[56:], sb.RootIno)
	le.PutUint32(b[60:], sb.Clean)
	le.PutUint64(b[64:], sb.Generation)
	le.PutUint64(b[72:], sb.LastClock)
	le.PutUint32(b[BlockSize-4:], Checksum(b[:BlockSize-4]))
	return b
}

// DecodeSuperblock parses and validates a superblock from a raw block.
// It returns fserr.ErrCorrupt (wrapped with a diagnosis) on any structural
// problem, which is the shadow's cue to reject the image.
func DecodeSuperblock(b []byte) (*Superblock, error) {
	if len(b) != BlockSize {
		return nil, fmt.Errorf("superblock: got %d bytes, want %d: %w", len(b), BlockSize, fserr.ErrCorrupt)
	}
	le := binary.LittleEndian
	if got, want := le.Uint32(b[BlockSize-4:]), Checksum(b[:BlockSize-4]); got != want {
		return nil, fmt.Errorf("superblock: checksum %#x, want %#x: %w", got, want, fserr.ErrCorrupt)
	}
	sb := &Superblock{
		Magic:            le.Uint32(b[0:]),
		Version:          le.Uint32(b[4:]),
		BlockSizeField:   le.Uint32(b[8:]),
		NumBlocks:        le.Uint32(b[12:]),
		NumInodes:        le.Uint32(b[16:]),
		InodeBitmapStart: le.Uint32(b[20:]),
		InodeBitmapLen:   le.Uint32(b[24:]),
		BlockBitmapStart: le.Uint32(b[28:]),
		BlockBitmapLen:   le.Uint32(b[32:]),
		InodeTableStart:  le.Uint32(b[36:]),
		InodeTableLen:    le.Uint32(b[40:]),
		JournalStart:     le.Uint32(b[44:]),
		JournalLen:       le.Uint32(b[48:]),
		DataStart:        le.Uint32(b[52:]),
		RootIno:          le.Uint32(b[56:]),
		Clean:            le.Uint32(b[60:]),
		Generation:       le.Uint64(b[64:]),
		LastClock:        le.Uint64(b[72:]),
	}
	if err := sb.Validate(); err != nil {
		return nil, err
	}
	return sb, nil
}

// Validate checks the superblock's internal consistency: magic, version,
// region ordering, and bounds. This is the first line of defense against
// crafted images.
func (sb *Superblock) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("superblock: "+format+": %w", append(args, fserr.ErrCorrupt)...)
	}
	if sb.Magic != Magic {
		return bad("magic %#x, want %#x", sb.Magic, uint32(Magic))
	}
	if sb.Version != Version {
		return bad("version %d, want %d", sb.Version, Version)
	}
	if sb.BlockSizeField != BlockSize {
		return bad("block size %d, want %d", sb.BlockSizeField, BlockSize)
	}
	if sb.NumBlocks < 8 {
		return bad("image too small: %d blocks", sb.NumBlocks)
	}
	if sb.NumInodes == 0 || sb.NumInodes > sb.NumBlocks*InodesPerBlock {
		return bad("implausible inode count %d for %d blocks", sb.NumInodes, sb.NumBlocks)
	}
	// Regions must appear in order, be non-overlapping, and sized for their
	// contents.
	type region struct {
		name       string
		start, len uint32
	}
	regions := []region{
		{"inode bitmap", sb.InodeBitmapStart, sb.InodeBitmapLen},
		{"block bitmap", sb.BlockBitmapStart, sb.BlockBitmapLen},
		{"inode table", sb.InodeTableStart, sb.InodeTableLen},
		{"journal", sb.JournalStart, sb.JournalLen},
	}
	prevEnd := uint32(1) // block 0 is the superblock
	for _, r := range regions {
		if r.start < prevEnd {
			return bad("%s starts at %d, overlapping previous region ending at %d", r.name, r.start, prevEnd)
		}
		if r.len == 0 {
			return bad("%s has zero length", r.name)
		}
		end := uint64(r.start) + uint64(r.len)
		if end > uint64(sb.NumBlocks) {
			return bad("%s [%d,%d) exceeds image of %d blocks", r.name, r.start, end, sb.NumBlocks)
		}
		prevEnd = uint32(end)
	}
	if sb.DataStart < prevEnd || sb.DataStart >= sb.NumBlocks {
		return bad("data region start %d out of range [%d,%d)", sb.DataStart, prevEnd, sb.NumBlocks)
	}
	if need := (sb.NumInodes + InodesPerBlock - 1) / InodesPerBlock; sb.InodeTableLen < need {
		return bad("inode table %d blocks, need %d for %d inodes", sb.InodeTableLen, need, sb.NumInodes)
	}
	if need := bitmapBlocksFor(sb.NumInodes); sb.InodeBitmapLen < need {
		return bad("inode bitmap %d blocks, need %d", sb.InodeBitmapLen, need)
	}
	if need := bitmapBlocksFor(sb.NumBlocks); sb.BlockBitmapLen < need {
		return bad("block bitmap %d blocks, need %d", sb.BlockBitmapLen, need)
	}
	if sb.JournalLen < 4 {
		return bad("journal too small: %d blocks", sb.JournalLen)
	}
	if sb.RootIno == 0 || sb.RootIno >= sb.NumInodes {
		return bad("root inode %d out of range [1,%d)", sb.RootIno, sb.NumInodes)
	}
	return nil
}

// DataBlocks returns the number of blocks in the data region, excluding the
// backup-superblock block reserved at the end of the image.
func (sb *Superblock) DataBlocks() uint32 { return sb.NumBlocks - sb.DataStart - 1 }

// BackupBlk returns the block number of the backup superblock: always the
// last block of the image, so it is locatable from the device size alone
// when the primary superblock is unreadable.
func (sb *Superblock) BackupBlk() uint32 { return sb.NumBlocks - 1 }

func bitmapBlocksFor(n uint32) uint32 {
	bitsPerBlock := uint32(BlockSize * 8)
	return (n + bitsPerBlock - 1) / bitsPerBlock
}

// BitmapBlocksFor returns how many bitmap blocks are needed to track n items.
func BitmapBlocksFor(n uint32) uint32 { return bitmapBlocksFor(n) }

// Inode is the in-memory form of one on-disk inode record.
type Inode struct {
	Mode       uint16 // type and permissions; see MkMode
	Nlink      uint16
	UID        uint32
	GID        uint32
	Size       int64
	Atime      uint64
	Mtime      uint64
	Ctime      uint64
	Direct     [NumDirect]uint32
	Indirect   uint32 // single-indirect block pointer
	DblIndir   uint32 // double-indirect block pointer
	Generation uint32 // bumped on each reuse of the inode number
	Flags      uint32
}

// Type returns the inode's file type.
func (ino *Inode) Type() uint16 { return ModeType(ino.Mode) }

// IsDir reports whether the inode is a directory.
func (ino *Inode) IsDir() bool { return ino.Type() == TypeDir }

// IsFile reports whether the inode is a regular file.
func (ino *Inode) IsFile() bool { return ino.Type() == TypeFile }

// IsFree reports whether the inode record is unallocated.
func (ino *Inode) IsFree() bool { return ino.Type() == TypeFree }

// EncodeInode serializes ino into a 128-byte record with trailing checksum.
func EncodeInode(ino *Inode) []byte {
	b := make([]byte, InodeSize)
	PutInode(b, ino)
	return b
}

// PutInode serializes ino into b, which must be at least InodeSize bytes.
func PutInode(b []byte, ino *Inode) {
	le := binary.LittleEndian
	le.PutUint16(b[0:], ino.Mode)
	le.PutUint16(b[2:], ino.Nlink)
	le.PutUint32(b[4:], ino.UID)
	le.PutUint32(b[8:], ino.GID)
	le.PutUint64(b[12:], uint64(ino.Size))
	le.PutUint64(b[20:], ino.Atime)
	le.PutUint64(b[28:], ino.Mtime)
	le.PutUint64(b[36:], ino.Ctime)
	off := 44
	for i := 0; i < NumDirect; i++ {
		le.PutUint32(b[off:], ino.Direct[i])
		off += 4
	}
	le.PutUint32(b[off:], ino.Indirect)
	le.PutUint32(b[off+4:], ino.DblIndir)
	le.PutUint32(b[off+8:], ino.Generation)
	le.PutUint32(b[off+12:], ino.Flags)
	// off+16 == 108; bytes [108,124) are reserved zero padding.
	for i := off + 16; i < InodeSize-4; i++ {
		b[i] = 0
	}
	le.PutUint32(b[InodeSize-4:], Checksum(b[:InodeSize-4]))
}

// DecodeInode parses and validates one inode record. The checksum is always
// verified; geometry validation (pointer ranges) is the caller's job because
// it needs the superblock.
func DecodeInode(b []byte) (*Inode, error) {
	if len(b) < InodeSize {
		return nil, fmt.Errorf("inode: got %d bytes, want %d: %w", len(b), InodeSize, fserr.ErrCorrupt)
	}
	le := binary.LittleEndian
	if got, want := le.Uint32(b[InodeSize-4:]), Checksum(b[:InodeSize-4]); got != want {
		return nil, fmt.Errorf("inode: checksum %#x, want %#x: %w", got, want, fserr.ErrCorrupt)
	}
	ino := &Inode{
		Mode:  le.Uint16(b[0:]),
		Nlink: le.Uint16(b[2:]),
		UID:   le.Uint32(b[4:]),
		GID:   le.Uint32(b[8:]),
		Size:  int64(le.Uint64(b[12:])),
		Atime: le.Uint64(b[20:]),
		Mtime: le.Uint64(b[28:]),
		Ctime: le.Uint64(b[36:]),
	}
	off := 44
	for i := 0; i < NumDirect; i++ {
		ino.Direct[i] = le.Uint32(b[off:])
		off += 4
	}
	ino.Indirect = le.Uint32(b[off:])
	ino.DblIndir = le.Uint32(b[off+4:])
	ino.Generation = le.Uint32(b[off+8:])
	ino.Flags = le.Uint32(b[off+12:])
	if t := ino.Type(); t > TypeSym {
		return nil, fmt.Errorf("inode: unknown type %d: %w", t, fserr.ErrCorrupt)
	}
	if ino.Size < 0 || ino.Size > MaxFileSize {
		return nil, fmt.Errorf("inode: size %d out of range: %w", ino.Size, fserr.ErrCorrupt)
	}
	return ino, nil
}

// ValidatePointers checks that every block pointer in ino lies in the data
// region described by sb (or is the nil pointer 0). Indirect blocks' contents
// are validated separately when read. Extent inodes validate their inline
// runs and chain head instead of the pointer tree.
func (ino *Inode) ValidatePointers(sb *Superblock) error {
	if ino.IsExtents() {
		return ino.validateExtentPointers(sb)
	}
	check := func(what string, p uint32) error {
		if p != 0 && (p < sb.DataStart || p >= sb.NumBlocks) {
			return fmt.Errorf("inode: %s pointer %d outside data region [%d,%d): %w",
				what, p, sb.DataStart, sb.NumBlocks, fserr.ErrCorrupt)
		}
		return nil
	}
	for i, p := range ino.Direct {
		if err := check(fmt.Sprintf("direct[%d]", i), p); err != nil {
			return err
		}
	}
	if err := check("indirect", ino.Indirect); err != nil {
		return err
	}
	return check("double-indirect", ino.DblIndir)
}

// Dirent is one fixed-size directory entry.
type Dirent struct {
	Ino  uint32
	Name string
}

// EncodeDirent serializes d into b, which must be at least DirentSize bytes.
// It panics if the name exceeds MaxNameLen; callers validate names before
// reaching the encoder.
func EncodeDirent(b []byte, d Dirent) {
	if len(d.Name) > MaxNameLen {
		panic(fmt.Sprintf("disklayout: dirent name %q exceeds %d bytes", d.Name, MaxNameLen))
	}
	le := binary.LittleEndian
	le.PutUint32(b[0:], d.Ino)
	le.PutUint16(b[4:], uint16(len(d.Name)))
	copy(b[8:8+MaxNameLen], d.Name)
	for i := 8 + len(d.Name); i < DirentSize; i++ {
		b[i] = 0
	}
}

// DecodeDirent parses one directory entry from b. An entry with Ino==0 is a
// free slot and decodes to a zero Dirent.
func DecodeDirent(b []byte) (Dirent, error) {
	if len(b) < DirentSize {
		return Dirent{}, fmt.Errorf("dirent: got %d bytes, want %d: %w", len(b), DirentSize, fserr.ErrCorrupt)
	}
	le := binary.LittleEndian
	ino := le.Uint32(b[0:])
	if ino == 0 {
		return Dirent{}, nil
	}
	nameLen := le.Uint16(b[4:])
	if nameLen == 0 || nameLen > MaxNameLen {
		return Dirent{}, fmt.Errorf("dirent: name length %d out of range [1,%d]: %w", nameLen, MaxNameLen, fserr.ErrCorrupt)
	}
	name := b[8 : 8+nameLen]
	for _, c := range name {
		if c == 0 || c == '/' {
			return Dirent{}, fmt.Errorf("dirent: name contains byte %#x: %w", c, fserr.ErrCorrupt)
		}
	}
	return Dirent{Ino: ino, Name: string(name)}, nil
}

// ValidName reports whether name is storable as a directory entry component.
func ValidName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fserr.ErrInvalid
	}
	if len(name) > MaxNameLen {
		return fserr.ErrNameTooLong
	}
	for i := 0; i < len(name); i++ {
		if name[i] == 0 || name[i] == '/' {
			return fserr.ErrInvalid
		}
	}
	return nil
}

// InodeLoc returns the block number and byte offset of inode number ino in
// the inode table.
func (sb *Superblock) InodeLoc(ino uint32) (blk uint32, off int) {
	blk = sb.InodeTableStart + ino/InodesPerBlock
	off = int(ino%InodesPerBlock) * InodeSize
	return blk, off
}

// Geometry computes a consistent superblock for an image of totalBlocks
// blocks with the requested inode count and journal length, used by mkfs.
func Geometry(totalBlocks, numInodes, journalBlocks uint32) (*Superblock, error) {
	if totalBlocks < 16 {
		return nil, fmt.Errorf("disklayout: image of %d blocks is too small: %w", totalBlocks, fserr.ErrInvalid)
	}
	if numInodes == 0 {
		numInodes = totalBlocks / 4
		if numInodes < 64 {
			numInodes = 64
		}
	}
	if journalBlocks < 4 {
		journalBlocks = 64
	}
	sb := &Superblock{
		Magic:          Magic,
		Version:        Version,
		BlockSizeField: BlockSize,
		NumBlocks:      totalBlocks,
		NumInodes:      numInodes,
		RootIno:        RootIno,
		Clean:          1,
	}
	next := uint32(1)
	sb.InodeBitmapStart = next
	sb.InodeBitmapLen = bitmapBlocksFor(numInodes)
	next += sb.InodeBitmapLen
	sb.BlockBitmapStart = next
	sb.BlockBitmapLen = bitmapBlocksFor(totalBlocks)
	next += sb.BlockBitmapLen
	sb.InodeTableStart = next
	sb.InodeTableLen = (numInodes + InodesPerBlock - 1) / InodesPerBlock
	next += sb.InodeTableLen
	sb.JournalStart = next
	sb.JournalLen = journalBlocks
	next += journalBlocks
	sb.DataStart = next
	// The last block is reserved for the backup superblock, so the data
	// region needs at least one block before it.
	if sb.DataStart >= totalBlocks-1 {
		return nil, fmt.Errorf("disklayout: metadata (%d blocks) leaves no data region in %d-block image: %w",
			sb.DataStart, totalBlocks, fserr.ErrInvalid)
	}
	if err := sb.Validate(); err != nil {
		return nil, err
	}
	return sb, nil
}
