package disklayout

// Bitmap operations over raw bitmap blocks. Both filesystems and fsck share
// these so a bit means the same thing everywhere: bit i of the inode bitmap
// covers inode i; bit i of the block bitmap covers block i (absolute block
// numbers, so metadata blocks are permanently marked allocated by mkfs).

// BitsPerBlock is the number of allocation bits stored in one bitmap block.
const BitsPerBlock = BlockSize * 8

// TestBit reports whether bit i is set in the concatenated bitmap bm.
// Out-of-range bits read as set, so corrupted callers can never treat
// untracked resources as free.
func TestBit(bm []byte, i uint32) bool {
	byteIdx := int(i / 8)
	if byteIdx >= len(bm) {
		return true
	}
	return bm[byteIdx]&(1<<(i%8)) != 0
}

// SetBit sets bit i in bm. Out-of-range sets are ignored.
func SetBit(bm []byte, i uint32) {
	byteIdx := int(i / 8)
	if byteIdx >= len(bm) {
		return
	}
	bm[byteIdx] |= 1 << (i % 8)
}

// ClearBit clears bit i in bm. Out-of-range clears are ignored.
func ClearBit(bm []byte, i uint32) {
	byteIdx := int(i / 8)
	if byteIdx >= len(bm) {
		return
	}
	bm[byteIdx] &^= 1 << (i % 8)
}

// FindFree returns the index of the first clear bit in bm at or after the
// hint, scanning at most limit bits, wrapping to 0 if nothing is free after
// the hint. The second result is false when everything is allocated.
func FindFree(bm []byte, hint, limit uint32) (uint32, bool) {
	if limit == 0 {
		return 0, false
	}
	if hint >= limit {
		hint = 0
	}
	for i := hint; i < limit; i++ {
		if !TestBit(bm, i) {
			return i, true
		}
	}
	for i := uint32(0); i < hint; i++ {
		if !TestBit(bm, i) {
			return i, true
		}
	}
	return 0, false
}

// CountSet returns the number of set bits among the first limit bits of bm.
func CountSet(bm []byte, limit uint32) uint32 {
	var n uint32
	for i := uint32(0); i < limit; i++ {
		if TestBit(bm, i) {
			n++
		}
	}
	return n
}
