package disklayout

// Bitmap operations over raw bitmap blocks. Both filesystems and fsck share
// these so a bit means the same thing everywhere: bit i of the inode bitmap
// covers inode i; bit i of the block bitmap covers block i (absolute block
// numbers, so metadata blocks are permanently marked allocated by mkfs).

// BitsPerBlock is the number of allocation bits stored in one bitmap block.
const BitsPerBlock = BlockSize * 8

// TestBit reports whether bit i is set in the concatenated bitmap bm.
// Out-of-range bits read as set, so corrupted callers can never treat
// untracked resources as free.
func TestBit(bm []byte, i uint32) bool {
	byteIdx := int(i / 8)
	if byteIdx >= len(bm) {
		return true
	}
	return bm[byteIdx]&(1<<(i%8)) != 0
}

// SetBit sets bit i in bm. Out-of-range sets are ignored.
func SetBit(bm []byte, i uint32) {
	byteIdx := int(i / 8)
	if byteIdx >= len(bm) {
		return
	}
	bm[byteIdx] |= 1 << (i % 8)
}

// ClearBit clears bit i in bm. Out-of-range clears are ignored.
func ClearBit(bm []byte, i uint32) {
	byteIdx := int(i / 8)
	if byteIdx >= len(bm) {
		return
	}
	bm[byteIdx] &^= 1 << (i % 8)
}

// FindFree returns the index of the first clear bit in bm at or after the
// hint, scanning at most limit bits, wrapping to 0 if nothing is free after
// the hint. The second result is false when everything is allocated.
func FindFree(bm []byte, hint, limit uint32) (uint32, bool) {
	if limit == 0 {
		return 0, false
	}
	if hint >= limit {
		hint = 0
	}
	for i := hint; i < limit; i++ {
		if !TestBit(bm, i) {
			return i, true
		}
	}
	for i := uint32(0); i < hint; i++ {
		if !TestBit(bm, i) {
			return i, true
		}
	}
	return 0, false
}

// FindFreeRun returns the start of the longest run of clear bits it can find
// of length at most want, preferring the first run at or after hint that
// satisfies want in full. It scans at most limit bits, wrapping once. The
// returned length is min(run length, want); ok is false when no bit is free.
// Delayed allocation uses this to place a whole dirty range contiguously,
// falling back to whatever shorter runs exist under fragmentation.
func FindFreeRun(bm []byte, hint, limit, want uint32) (start, n uint32, ok bool) {
	if limit == 0 || want == 0 {
		return 0, 0, false
	}
	if hint >= limit {
		hint = 0
	}
	var bestStart, bestLen uint32
	scan := func(from, to uint32) bool {
		i := from
		for i < to {
			if TestBit(bm, i) {
				i++
				continue
			}
			runStart := i
			for i < to && i-runStart < want && !TestBit(bm, i) {
				i++
			}
			if runLen := i - runStart; runLen > bestLen {
				bestStart, bestLen = runStart, runLen
				if bestLen >= want {
					return true
				}
			}
		}
		return false
	}
	if !scan(hint, limit) {
		scan(0, hint)
	}
	if bestLen == 0 {
		return 0, 0, false
	}
	return bestStart, bestLen, true
}

// CountSet returns the number of set bits among the first limit bits of bm.
func CountSet(bm []byte, limit uint32) uint32 {
	var n uint32
	for i := uint32(0); i < limit; i++ {
		if TestBit(bm, i) {
			n++
		}
	}
	return n
}
