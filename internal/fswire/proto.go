// Package fswire is the networked file service: a length-prefixed binary RPC
// protocol (9P-flavored — tagged requests, a per-connection FID table) that
// carries the complete fsapi.FS operation set over a byte stream, plus the
// server and a client that itself implements fsapi.FS.
//
// The point is transparency in the paper's sense: the client is just another
// fsapi.FS, so everything built on that interface — the vfs adapter, the
// workload driver, the differential tester — runs unchanged against a remote
// supervised volume, and a recovery masked on the server stays masked on the
// wire (the operation simply takes longer; ErrOverloaded sheds round-trip as
// themselves).
//
// Wire format (all integers little-endian):
//
//	frame   = size:u32 type:u8 tag:u16 payload
//	string  = len:u16 bytes
//	bytes   = len:u32 bytes
//	stat    = ino:u32 mode:u16 nlink:u16 size:u64 mtime:u64 ctime:u64
//
// size counts everything after the size field. Each request type T has a
// response of the same type echoing the tag; every response payload begins
// with errno:u32 (two's-complement fserr.Errno, 0 = success) followed by the
// result fields. Tags let a client keep many requests in flight on one
// connection. The server executes a connection's requests strictly in
// arrival order (one executor per connection), so a pipelined stream of
// operations observes exactly the semantics of issuing them sequentially —
// inode and descriptor allocation order included — while the round trips
// overlap. tReadStream is the one request answered by multiple frames
// (chunked, all carrying the request's tag, a more-flag marking continuation);
// tWriteBatch carries many small writes to one FID in a single frame with
// per-entry results in the response.
//
// FIDs are server-assigned at execution time, lowest-free-first per
// connection, and are the fsapi.FD values the client returns: tCreate/tOpen
// responses carry errno fid:u32 ino:u32 (ino 0 when the inode probe failed)
// and tMkdir responses carry errno ino:u32, so a trace run against a remote
// volume yields descriptor numbers identical to a local run, differential
// checks hold across the wire, and a pipelined client needs no
// descriptor-table barrier — the numbers are decided where the outcomes are
// known, in execution order.
package fswire

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// Message types. tAttach binds the connection to a named volume; most of the
// rest map one-to-one onto fsapi.FS methods. tWriteBatch carries several
// WriteAt payloads for one FID in a single frame (per-entry results come
// back); tReadStream answers one request with a sequence of chunked response
// frames sharing the request's tag, so reads larger than a frame stream
// instead of buffering.
const (
	tAttach uint8 = iota + 1
	tMkdir
	tRmdir
	tCreate
	tOpen
	tClose
	tRead
	tWrite
	tTrunc
	tUnlink
	tRename
	tLink
	tSymlink
	tReadlink
	tStat
	tFstat
	tReaddir
	tSetPerm
	tFsync
	tSync
	tWriteBatch
	tReadStream
)

// maxFrame bounds a frame's encoded size: a malformed or hostile peer cannot
// make the other side allocate more than this. Large writes must be split by
// the application (the workload generator's writes are far smaller); large
// reads stream under the bound via tReadStream.
const maxFrame = 1 << 24

// frameHeader is type+tag, the fixed part counted by the size prefix.
const frameHeader = 3

// maxBatchOps bounds the entry count of one tWriteBatch frame on the server
// side, independent of the frame-size bound.
const maxBatchOps = 4096

// enc is an append-only little-endian encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string) {
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}
func (e *enc) stat(st fsapi.Stat) {
	e.u32(st.Ino)
	e.u16(st.Mode)
	e.u16(st.Nlink)
	e.u64(uint64(st.Size))
	e.u64(st.Mtime)
	e.u64(st.Ctime)
}

// dec is an error-sticky little-endian decoder; after the first short read
// every subsequent call returns zero values and err() reports the failure.
type dec struct {
	b   []byte
	bad bool
}

func (d *dec) take(n int) []byte {
	if d.bad || len(d.b) < n {
		d.bad = true
		return nil
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p
}
func (d *dec) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}
func (d *dec) u16() uint16 {
	p := d.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}
func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}
func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}
func (d *dec) str() string { return string(d.take(int(d.u16()))) }
func (d *dec) bytes() []byte {
	n := d.u32()
	if n > maxFrame {
		d.bad = true
		return nil
	}
	return d.take(int(n))
}
func (d *dec) stat() fsapi.Stat {
	return fsapi.Stat{
		Ino:   d.u32(),
		Mode:  d.u16(),
		Nlink: d.u16(),
		Size:  int64(d.u64()),
		Mtime: d.u64(),
		Ctime: d.u64(),
	}
}
func (d *dec) err() error {
	if d.bad {
		return fmt.Errorf("fswire: truncated message: %w", fserr.ErrInvalid)
	}
	return nil
}

// BatchEntry is one write inside a tWriteBatch frame.
type BatchEntry struct {
	Off  int64
	Data []byte
}

// BatchWriteResult is the per-entry outcome of a batched write. Entries are
// applied in order and each records its own result, so a batch's outcomes are
// exactly those of the same WriteAts issued one at a time.
type BatchWriteResult struct {
	N   int
	Err error
}

// BatchWriter is an optional backend capability: apply a write batch as one
// uninterrupted critical section. Locked implements it (one lock hold for the
// whole batch), giving single-threaded backends per-FID atomicity; backends
// without it fall back to sequential WriteAt calls, which under the server's
// in-order request executor are still contiguous with respect to the
// connection's own operation stream.
type BatchWriter interface {
	WriteAtBatch(fd fsapi.FD, entries []BatchEntry) []BatchWriteResult
}

// applyBatchSeq applies batch entries in order via plain WriteAt calls.
func applyBatchSeq(fs fsapi.FS, fd fsapi.FD, entries []BatchEntry) []BatchWriteResult {
	results := make([]BatchWriteResult, len(entries))
	for i, be := range entries {
		n, err := fs.WriteAt(fd, be.Off, be.Data)
		results[i] = BatchWriteResult{N: n, Err: err}
	}
	return results
}

// errnoWord encodes an operation error for the response prefix.
func errnoWord(err error) uint32 { return uint32(int32(fserr.Errno(err))) }

// errnoErr decodes the response prefix back into the taxonomy sentinel.
func errnoErr(w uint32) error { return fserr.FromErrno(int(int32(w))) }

// writeFrame sends one frame. Callers serialize access to w themselves.
func writeFrame(w io.Writer, typ uint8, tag uint16, payload []byte) (int, error) {
	if len(payload)+frameHeader > maxFrame {
		return 0, fmt.Errorf("fswire: frame too large (%d bytes): %w", len(payload), fserr.ErrTooBig)
	}
	hdr := make([]byte, 0, 4+frameHeader+len(payload))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(frameHeader+len(payload)))
	hdr = append(hdr, typ)
	hdr = binary.LittleEndian.AppendUint16(hdr, tag)
	hdr = append(hdr, payload...)
	n, err := w.Write(hdr)
	return n, err
}

// readFrame reads one frame, enforcing the size bound before allocating.
func readFrame(r io.Reader) (typ uint8, tag uint16, payload []byte, n int, err error) {
	var szb [4]byte
	if _, err = io.ReadFull(r, szb[:]); err != nil {
		return 0, 0, nil, 0, err
	}
	size := binary.LittleEndian.Uint32(szb[:])
	if size < frameHeader || size > maxFrame {
		return 0, 0, nil, 4, fmt.Errorf("fswire: bad frame size %d: %w", size, fserr.ErrInvalid)
	}
	body := make([]byte, size)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, 0, nil, 4, err
	}
	return body[0], binary.LittleEndian.Uint16(body[1:3]), body[3:], 4 + int(size), nil
}
