package fswire

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// dialCfg attaches a client with explicit pipelining configuration.
func dialCfg(t *testing.T, addr, volume string, cfg ClientConfig) *Client {
	t.Helper()
	c, err := DialConfig(addr, volume, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Hangup() })
	return c
}

// TestPipelinedDriveMatchesModel is the pipelining acceptance check: a trace
// submitted through SubmitOp with a deep window and write coalescing must
// produce per-op outcomes (errno, fd, ino, byte counts) and a final state
// dump identical to the same trace applied sequentially to the specification
// model — i.e. pipelining must be invisible except in wall-clock time.
func TestPipelinedDriveMatchesModel(t *testing.T) {
	for _, profile := range workload.Profiles() {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s-%d", profile, seed), func(t *testing.T) {
				base, sb := newBase(t, 16384)
				addr := serve(t, Single(Locked(base)))
				client := dialCfg(t, addr, "", ClientConfig{Window: 16, BatchMaxOps: 8})
				trace := workload.Generate(workload.Config{
					Profile:    profile,
					Seed:       seed,
					NumOps:     500,
					Superblock: sb,
				})

				oracle := model.New(sb)
				oracleOps := make([]*oplog.Op, 0, len(trace))
				for _, rec := range trace {
					op := rec.Clone()
					op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
					_ = oplog.Apply(oracle, op)
					oracleOps = append(oracleOps, op)
				}

				i := 0
				mismatches := 0
				workload.DrivePipelined(client, trace, func(_, got *oplog.Op) {
					want := oracleOps[i]
					if got.Errno != want.Errno || got.RetFD != want.RetFD ||
						got.RetIno != want.RetIno || got.RetN != want.RetN {
						if mismatches < 10 {
							t.Errorf("op %d %s: got (errno=%d fd=%d ino=%d n=%d) want (errno=%d fd=%d ino=%d n=%d)",
								i, want, got.Errno, got.RetFD, got.RetIno, got.RetN,
								want.Errno, want.RetFD, want.RetIno, want.RetN)
						}
						mismatches++
					}
					i++
				})
				if mismatches > 10 {
					t.Errorf("... and %d more mismatches", mismatches-10)
				}

				remote, err := difftest.DumpState(client)
				if err != nil {
					t.Fatal(err)
				}
				local, err := difftest.DumpState(oracle)
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range difftest.CompareStates(remote, local) {
					t.Errorf("state mismatch: %s", d)
				}
			})
		}
	}
}

// TestVerifyEquivalenceOverPipelinedClient runs the literal §4.3 acceptance
// check through a client configured for pipelining: the synchronous fsapi
// surface must be untouched by the window/batch machinery underneath.
func TestVerifyEquivalenceOverPipelinedClient(t *testing.T) {
	base, sb := newBase(t, 16384)
	addr := serve(t, Single(Locked(base)))
	client := dialCfg(t, addr, "", ClientConfig{Window: 32, BatchMaxOps: 16})
	trace := workload.Generate(workload.Config{
		Profile:    workload.MetaHeavy,
		Seed:       5,
		NumOps:     400,
		Superblock: sb,
	})
	disc, err := difftest.VerifyEquivalence(client, model.New(sb), trace)
	if err != nil {
		t.Fatalf("equivalence run failed: %v", err)
	}
	for _, d := range disc {
		t.Errorf("discrepancy: %s", d)
	}
}

// TestWriteBatchCoalescing checks small consecutive writes coalesce into
// tWriteBatch frames (the server-side counter moves), each original write
// still reports its own outcome, and the data lands where it should.
func TestWriteBatchCoalescing(t *testing.T) {
	base, _ := newBase(t, 8192)
	sink := telemetry.New()
	addr := serve(t, Single(Locked(base)), WithTelemetry(sink))
	c := dialCfg(t, addr, "", ClientConfig{Window: 16, BatchMaxOps: 8})

	fd, err := c.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 6
	ops := make([]*oplog.Op, writes)
	waits := make([]interface{ Wait() }, writes)
	var want bytes.Buffer
	for i := range ops {
		chunk := bytes.Repeat([]byte{byte('a' + i)}, 100)
		want.Write(chunk)
		ops[i] = &oplog.Op{Kind: oplog.KWrite, FD: fd, Off: int64(i * 100), Data: chunk}
		waits[i] = c.SubmitOp(ops[i])
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, w := range waits {
		w.Wait()
		if ops[i].Errno != 0 || ops[i].RetN != 100 {
			t.Errorf("write %d: errno=%d n=%d", i, ops[i].Errno, ops[i].RetN)
		}
	}
	got, err := c.ReadAt(fd, 0, writes*100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("read back %d bytes, mismatch", len(got))
	}
	if n := sink.Counter("fswire.batch.writes").Value(); n < writes {
		t.Errorf("fswire.batch.writes = %d, want >= %d", n, writes)
	}
}

// TestReadStream checks large reads stream in bounded chunks: the data round
// trips intact, short reads end the stream at EOF, and the chunk counter
// moves.
func TestReadStream(t *testing.T) {
	base, _ := newBase(t, 8192)
	sink := telemetry.New()
	addr := serve(t, Single(Locked(base)), WithTelemetry(sink))
	c := dialCfg(t, addr, "", ClientConfig{StreamChunk: 1024})

	fd, err := c.Create("/big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if _, err := c.WriteAt(fd, 0, payload); err != nil {
		t.Fatal(err)
	}

	got, err := c.ReadAt(fd, 0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("streamed read mismatch: %d bytes", len(got))
	}
	if n := sink.Counter("fswire.stream.chunks").Value(); n < 9 {
		t.Errorf("fswire.stream.chunks = %d, want >= 9", n)
	}

	// Ask far past EOF: the stream must stop at the short read and return
	// exactly the file contents, like a single ReadAt would.
	got, err = c.ReadAt(fd, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("over-EOF streamed read = %d bytes, want %d", len(got), len(payload))
	}

	// Errors surface as the operation's error with no data.
	if _, err := c.ReadAt(99, 0, 50_000); !errors.Is(err, fserr.ErrBadFD) {
		t.Errorf("stream read on bad fd = %v, want ErrBadFD", err)
	}
}

// blockingFS stalls every Unlink until released, pinning requests in flight.
type blockingFS struct {
	fsapi.FS
	gate chan struct{}
}

func (b *blockingFS) Unlink(path string) error {
	<-b.gate
	return b.FS.Unlink(path)
}

// TestTagExhaustionSheds is the regression test for the unbounded tag scan:
// with the tag space bounded and full, the next submission must shed with
// ErrOverloaded in O(1) — not spin under the client mutex — and tags must
// recycle once responses retire.
func TestTagExhaustionSheds(t *testing.T) {
	base, _ := newBase(t, 4096)
	gate := make(chan struct{})
	bfs := &blockingFS{FS: Locked(base), gate: gate}
	addr := serve(t, Single(bfs))
	c := dialCfg(t, addr, "", ClientConfig{Window: 8, TagLimit: 4})

	ops := make([]*oplog.Op, 4)
	waits := make([]interface{ Wait() }, 4)
	for i := range ops {
		ops[i] = &oplog.Op{Kind: oplog.KUnlink, Path: fmt.Sprintf("/missing%d", i)}
		waits[i] = c.SubmitOp(ops[i])
	}
	shed := &oplog.Op{Kind: oplog.KUnlink, Path: "/shed"}
	c.SubmitOp(shed).Wait()
	if !errors.Is(fserr.FromErrno(shed.Errno), fserr.ErrOverloaded) {
		t.Fatalf("5th in-flight op with TagLimit=4: errno=%d, want ErrOverloaded", shed.Errno)
	}

	close(gate)
	for i, w := range waits {
		w.Wait()
		if !errors.Is(fserr.FromErrno(ops[i].Errno), fserr.ErrNotExist) {
			t.Errorf("unlink %d errno = %d, want ENOENT", i, ops[i].Errno)
		}
	}
	// Tags recycled: the client is fully usable again.
	if err := c.Mkdir("/after", 0o755); err != nil {
		t.Fatalf("post-exhaustion op failed: %v", err)
	}
}

// TestFIDReuseAfterFailedClose is the FID-leak regression test: when the
// server-side descriptor is already gone (Close comes back EBADF), both
// sides must drop the binding so the low FID is reused — descriptor
// determinism depends on it. Before the fix the client kept the FID forever
// and every subsequent Create drifted one descriptor higher.
func TestFIDReuseAfterFailedClose(t *testing.T) {
	base, _ := newBase(t, 4096)
	addr := serve(t, Single(Locked(base)))
	c := dial(t, addr, "")

	fd, err := c.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if fd != 0 {
		t.Fatalf("first create fd = %d, want 0", fd)
	}
	// Yank the server-side descriptor out from under the connection: the
	// server's FID 0 now maps to a dead fsapi.FD.
	if err := base.Close(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); !errors.Is(err, fserr.ErrBadFD) {
		t.Fatalf("close of dead descriptor = %v, want ErrBadFD", err)
	}
	// The terminal outcome must have released FID 0 on both sides.
	fd2, err := c.Create("/g", 0o644)
	if err != nil {
		t.Fatalf("create after failed close: %v", err)
	}
	if fd2 != 0 {
		t.Fatalf("create after failed close fd = %d, want 0 (FID leaked)", fd2)
	}
}

// TestFIDReleasedOnPoisonedClose: a Close that dies with the connection must
// still release the FID locally — the server's table died too, so keeping
// the reservation only leaks.
func TestFIDReleasedOnPoisonedClose(t *testing.T) {
	base, _ := newBase(t, 4096)
	addr := serve(t, Single(Locked(base)))
	c := dial(t, addr, "")
	fd, err := c.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	c.Hangup()
	if err := c.Close(fd); err == nil {
		t.Fatal("close over dead connection succeeded")
	}
	c.mu.Lock()
	leaked := len(c.fids)
	c.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d FIDs still reserved after terminal close on a dead connection", leaked)
	}
}

// TestConcurrentClientHammerUnderStorm shares one pipelined client between
// many goroutines while the served filesystem crashes and recovers on a
// recurring deterministic specimen. Run under -race in CI: it exercises the
// tag table, window slots, FID table, batch path, and stream path
// concurrently through repeated recoveries; no goroutine may ever observe a
// fault-class errno.
func TestConcurrentClientHammerUnderStorm(t *testing.T) {
	dev := blockdev.NewMem(16384)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 2048, JournalBlocks: 64}); err != nil {
		t.Fatal(err)
	}
	reg := faultinject.NewRegistry(11)
	reg.Arm(&faultinject.Specimen{
		ID: "hammer-storm", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "box",
	})
	sup, err := core.Mount(dev, core.Config{Base: basefs.Options{Injector: reg}})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Kill()
	addr := serve(t, Single(sup))
	c := dialCfg(t, addr, "", ClientConfig{Window: 32, BatchMaxOps: 8, StreamChunk: 2048})

	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers*4)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			dir := fmt.Sprintf("/w%d", wi)
			if err := c.Mkdir(dir, 0o755); err != nil {
				errc <- fmt.Errorf("mkdir %s: %w", dir, err)
				return
			}
			for round := 0; round < 6; round++ {
				// Trip the storm: every box mkdir crashes the base and rides
				// a recovery; the op must still succeed.
				if err := c.Mkdir(fmt.Sprintf("%s/box%d", dir, round), 0o755); err != nil {
					errc <- fmt.Errorf("storm mkdir w%d r%d: %w", wi, round, err)
					return
				}
				p := fmt.Sprintf("%s/f%d", dir, round)
				fd, err := c.Create(p, 0o644)
				if err != nil {
					errc <- fmt.Errorf("create %s: %w", p, err)
					return
				}
				// Pipelined batched writes from this worker's own ops.
				payload := bytes.Repeat([]byte{byte(wi)}, 512)
				ops := make([]*oplog.Op, 8)
				waits := make([]interface{ Wait() }, len(ops))
				for i := range ops {
					ops[i] = &oplog.Op{Kind: oplog.KWrite, FD: fd, Off: int64(i * 512), Data: payload}
					waits[i] = c.SubmitOp(ops[i])
				}
				for i, w := range waits {
					w.Wait()
					if ops[i].Errno != 0 {
						if fserr.IsFault(fserr.FromErrno(ops[i].Errno)) {
							errc <- fmt.Errorf("fault-class errno %d on pipelined write", ops[i].Errno)
							return
						}
					}
				}
				got, err := c.ReadAt(fd, 0, len(ops)*512)
				if err != nil {
					errc <- fmt.Errorf("stream read %s: %w", p, err)
					return
				}
				if len(got) != len(ops)*512 {
					errc <- fmt.Errorf("read %s = %d bytes, want %d", p, len(got), len(ops)*512)
					return
				}
				if err := c.Close(fd); err != nil {
					errc <- fmt.Errorf("close %s: %w", p, err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := sup.Stats()
	if st.Recoveries == 0 {
		t.Error("storm never fired — hammer exercised nothing")
	}
	if st.AppFailures != 0 {
		t.Errorf("app-visible failures = %d, want 0", st.AppFailures)
	}
}
