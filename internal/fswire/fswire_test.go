package fswire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
	"repro/internal/telemetry"
	"repro/internal/volmgr"
	"repro/internal/workload"
)

// serve starts a server over backend on a loopback listener and returns its
// address. Cleanup closes everything.
func serve(t *testing.T, backend Backend, opts ...ServerOption) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(backend, opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// newBase formats a device and mounts the raw base filesystem over it.
func newBase(t *testing.T, blocks uint32) (*basefs.FS, *disklayout.Superblock) {
	t.Helper()
	dev := blockdev.NewMem(blocks)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 1024, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Kill)
	return fs, sb
}

// dial attaches a client, registering cleanup.
func dial(t *testing.T, addr, volume string) *Client {
	t.Helper()
	c, err := Dial(addr, volume)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Hangup() })
	return c
}

// TestClientMatchesModelOverLoopback is the acceptance check: the remote
// client run through the §4.3 differential suite against the specification
// model must produce identical per-op outcomes (errno, fd, ino, byte counts)
// and an identical final state dump — descriptor numbers included, thanks to
// client-side lowest-free-first FID allocation.
func TestClientMatchesModelOverLoopback(t *testing.T) {
	for _, profile := range workload.Profiles() {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s-%d", profile, seed), func(t *testing.T) {
				base, sb := newBase(t, 16384)
				addr := serve(t, Single(Locked(base)))
				client := dial(t, addr, "")
				trace := workload.Generate(workload.Config{
					Profile:    profile,
					Seed:       seed,
					NumOps:     500,
					Superblock: sb,
				})
				disc, err := difftest.VerifyEquivalence(client, model.New(sb), trace)
				if err != nil {
					t.Fatalf("equivalence run failed: %v", err)
				}
				for i, d := range disc {
					if i >= 10 {
						t.Errorf("... and %d more", len(disc)-10)
						break
					}
					t.Errorf("discrepancy: %s", d)
				}
			})
		}
	}
}

// TestErrnoRoundTrip drives real error paths end to end and checks the
// taxonomy sentinel (not just the errno class) comes back out.
func TestErrnoRoundTrip(t *testing.T) {
	base, _ := newBase(t, 4096)
	addr := serve(t, Single(Locked(base)))
	c := dial(t, addr, "")

	if err := c.Mkdir("/a/b", 0o755); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("mkdir missing parent = %v", err)
	}
	if err := c.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/a", 0o755); !errors.Is(err, fserr.ErrExist) {
		t.Errorf("mkdir existing = %v", err)
	}
	if _, err := c.Open("/a"); !errors.Is(err, fserr.ErrIsDir) {
		t.Errorf("open dir = %v", err)
	}
	if err := c.Close(99); !errors.Is(err, fserr.ErrBadFD) {
		t.Errorf("close unknown fd = %v", err)
	}
	if _, err := c.ReadAt(99, 0, 16); !errors.Is(err, fserr.ErrBadFD) {
		t.Errorf("read unknown fd = %v", err)
	}
	if err := c.Mkdir("bad", 0o755); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("relative path = %v", err)
	}
}

// overloadFS sheds everything, standing in for a volume with an empty token
// bucket.
type overloadFS struct{ fsapi.FS }

func (o overloadFS) Mkdir(string, uint16) error { return fserr.ErrOverloaded }

// TestOverloadRoundTrip checks admission-control shedding crosses the wire
// as itself: an application-visible retry signal, not a fault.
func TestOverloadRoundTrip(t *testing.T) {
	base, _ := newBase(t, 4096)
	addr := serve(t, Single(overloadFS{Locked(base)}))
	c := dial(t, addr, "")
	err := c.Mkdir("/x", 0o755)
	if !errors.Is(err, fserr.ErrOverloaded) {
		t.Fatalf("shed op = %v, want ErrOverloaded", err)
	}
	if !fserr.IsUserError(err) || fserr.IsFault(err) {
		t.Fatalf("shed op classified wrong: %v", err)
	}
}

// TestVolumesBackend checks attach-by-name against a volmgr fleet and tenant
// isolation through the wire.
func TestVolumesBackend(t *testing.T) {
	m, err := volmgr.New(volmgr.Config{PoolBlocks: 2 * 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	for i := 0; i < 2; i++ {
		if _, err := m.Create(fmt.Sprintf("vol%d", i), volmgr.VolumeConfig{Blocks: 8192}); err != nil {
			t.Fatal(err)
		}
	}
	addr := serve(t, Volumes(m))

	c0 := dial(t, addr, "vol0")
	c1 := dial(t, addr, "vol1")
	if err := c0.Mkdir("/only-on-0", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Stat("/only-on-0"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("tenant isolation broken: %v", err)
	}
	if _, err := c0.Stat("/only-on-0"); err != nil {
		t.Fatalf("own write invisible: %v", err)
	}
	if _, err := Dial(addr, "no-such-volume"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("unknown volume attach = %v", err)
	}
}

// TestRecoveryMaskedOverWire mounts a supervised filesystem with a recurring
// deterministic crash bug and drives it remotely: the recovery must stay
// invisible at the client — the operation succeeds, it just took a recovery
// to get there.
func TestRecoveryMaskedOverWire(t *testing.T) {
	dev := blockdev.NewMem(8192)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 1024, JournalBlocks: 64}); err != nil {
		t.Fatal(err)
	}
	reg := faultinject.NewRegistry(7)
	reg.Arm(&faultinject.Specimen{
		ID: "wire-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "box",
	})
	sup, err := core.Mount(dev, core.Config{Base: basefs.Options{Injector: reg}})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Kill()

	addr := serve(t, Single(sup))
	c := dial(t, addr, "")
	for i := 0; i < 3; i++ {
		if err := c.Mkdir(fmt.Sprintf("/box%d", i), 0o755); err != nil {
			t.Fatalf("mkdir box%d over wire = %v (recovery leaked)", i, err)
		}
	}
	st := sup.Stats()
	if st.Recoveries < 3 {
		t.Errorf("recoveries = %d, want >= 3", st.Recoveries)
	}
	if st.AppFailures != 0 {
		t.Errorf("app-visible failures = %d, want 0", st.AppFailures)
	}
}

// TestConcurrentClients hammers one served volume from many connections and
// many goroutines per connection; tagged requests and the FID table must not
// cross streams (run under -race in CI).
func TestConcurrentClients(t *testing.T) {
	dev := blockdev.NewMem(16384)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 2048, JournalBlocks: 64}); err != nil {
		t.Fatal(err)
	}
	sup, err := core.Mount(dev, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Kill()
	addr := serve(t, Single(sup))

	const clients, workers, files = 4, 3, 8
	var wg sync.WaitGroup
	errc := make(chan error, clients*workers)
	for ci := 0; ci < clients; ci++ {
		c := dial(t, addr, "")
		root := fmt.Sprintf("/c%d", ci)
		if err := c.Mkdir(root, 0o755); err != nil {
			t.Fatal(err)
		}
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(c *Client, dir string) {
				defer wg.Done()
				if err := c.Mkdir(dir, 0o755); err != nil {
					errc <- fmt.Errorf("mkdir %s: %w", dir, err)
					return
				}
				for fi := 0; fi < files; fi++ {
					p := fmt.Sprintf("%s/f%d", dir, fi)
					fd, err := c.Create(p, 0o644)
					if err != nil {
						errc <- fmt.Errorf("create %s: %w", p, err)
						return
					}
					payload := []byte(p)
					if _, err := c.WriteAt(fd, 0, payload); err != nil {
						errc <- fmt.Errorf("write %s: %w", p, err)
						return
					}
					got, err := c.ReadAt(fd, 0, len(payload)+8)
					if err != nil {
						errc <- fmt.Errorf("read %s: %w", p, err)
						return
					}
					if string(got) != p {
						errc <- fmt.Errorf("read %s = %q", p, got)
						return
					}
					if err := c.Close(fd); err != nil {
						errc <- fmt.Errorf("close %s: %w", p, err)
						return
					}
				}
			}(c, fmt.Sprintf("%s/w%d", root, wi))
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestTelemetry checks the fswire.* instruments move: conns tracks attached
// connections, ops/bytes count traffic, errs counts nonzero errnos.
func TestTelemetry(t *testing.T) {
	base, _ := newBase(t, 4096)
	sink := telemetry.New()
	addr := serve(t, Single(Locked(base)), WithTelemetry(sink))

	c := dial(t, addr, "")
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/d", 0o755); !errors.Is(err, fserr.ErrExist) {
		t.Fatal(err)
	}
	if got := sink.Gauge("fswire.conns").Value(); got != 1 {
		t.Errorf("conns = %d, want 1", got)
	}
	if got := sink.Counter("fswire.ops").Value(); got < 3 { // attach + 2 mkdirs
		t.Errorf("ops = %d, want >= 3", got)
	}
	if got := sink.Counter("fswire.errs").Value(); got != 1 {
		t.Errorf("errs = %d, want 1", got)
	}
	if got := sink.Counter("fswire.bytes").Value(); got == 0 {
		t.Error("bytes = 0")
	}
}

// TestApplyTraceThroughOplog checks the client composes with the oplog
// executor — the seam every driver in the repo uses.
func TestApplyTraceThroughOplog(t *testing.T) {
	base, sb := newBase(t, 8192)
	addr := serve(t, Single(Locked(base)))
	c := dial(t, addr, "")
	trace := workload.Generate(workload.Config{
		Profile:    workload.MetaHeavy,
		Seed:       3,
		NumOps:     200,
		Superblock: sb,
	})
	for _, op := range trace {
		cl := op.Clone()
		cl.Errno, cl.RetFD, cl.RetIno, cl.RetN = 0, 0, 0, 0
		_ = oplog.Apply(c, cl)
	}
	remote, err := difftest.DumpState(c)
	if err != nil {
		t.Fatal(err)
	}
	local, err := difftest.DumpState(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range difftest.CompareStates(remote, local) {
		t.Errorf("state mismatch: %s", d)
	}
}
