package fswire

import (
	"sync"

	"repro/internal/fsapi"
)

// Locked wraps a single-threaded fsapi.FS (the shadow, the model, a bare
// base filesystem) with one big mutex so it can be served to concurrent
// connections. Supervised filesystems and volmgr tenants don't need it —
// their gates already serialize what must be serialized.
func Locked(fs fsapi.FS) fsapi.FS { return &lockedFS{inner: fs} }

type lockedFS struct {
	mu    sync.Mutex
	inner fsapi.FS
}

var _ fsapi.FS = (*lockedFS)(nil)

func (l *lockedFS) Mkdir(path string, perm uint16) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Mkdir(path, perm)
}

func (l *lockedFS) Rmdir(path string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Rmdir(path)
}

func (l *lockedFS) Create(path string, perm uint16) (fsapi.FD, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Create(path, perm)
}

func (l *lockedFS) Open(path string) (fsapi.FD, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Open(path)
}

func (l *lockedFS) Close(fd fsapi.FD) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Close(fd)
}

func (l *lockedFS) ReadAt(fd fsapi.FD, off int64, n int) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.ReadAt(fd, off, n)
}

func (l *lockedFS) WriteAt(fd fsapi.FD, off int64, data []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.WriteAt(fd, off, data)
}

// WriteAtBatch implements BatchWriter: the whole batch runs under one lock
// hold, so for a single-threaded backend a tWriteBatch really is atomic per
// FID — no op from another connection can interleave mid-batch.
func (l *lockedFS) WriteAtBatch(fd fsapi.FD, entries []BatchEntry) []BatchWriteResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	return applyBatchSeq(l.inner, fd, entries)
}

func (l *lockedFS) Truncate(path string, size int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Truncate(path, size)
}

func (l *lockedFS) Unlink(path string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Unlink(path)
}

func (l *lockedFS) Rename(oldPath, newPath string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Rename(oldPath, newPath)
}

func (l *lockedFS) Link(oldPath, newPath string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Link(oldPath, newPath)
}

func (l *lockedFS) Symlink(target, linkPath string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Symlink(target, linkPath)
}

func (l *lockedFS) Readlink(path string) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Readlink(path)
}

func (l *lockedFS) Stat(path string) (fsapi.Stat, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Stat(path)
}

func (l *lockedFS) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Fstat(fd)
}

func (l *lockedFS) Readdir(path string) ([]fsapi.DirEntry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Readdir(path)
}

func (l *lockedFS) SetPerm(path string, perm uint16) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.SetPerm(path, perm)
}

func (l *lockedFS) Fsync(fd fsapi.FD) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Fsync(fd)
}

func (l *lockedFS) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Sync()
}
