package fswire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"

	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// ClientConfig tunes the client's pipelining machinery. The zero value means
// defaults; every field is clamped into a sane range by normalize.
type ClientConfig struct {
	// Window is the per-connection in-flight request cap: submitting past it
	// blocks until a response retires a slot. 1 degenerates to one-at-a-time
	// (the pre-pipelining behavior).
	Window int
	// TagLimit bounds the tag space the client will allocate from. Requests
	// beyond the window never reach tag allocation, so exhaustion is only
	// possible if Window exceeds TagLimit; then the excess is shed with
	// fserr.ErrOverloaded rather than spinning.
	TagLimit int
	// BatchMaxOps caps the entries coalesced into one tWriteBatch frame by
	// the pipelined submit path. <= 1 disables write coalescing.
	BatchMaxOps int
	// BatchMaxBytes caps the total payload coalesced into one batch; a write
	// larger than this goes out as a plain tWrite.
	BatchMaxBytes int
	// StreamChunk is the chunk size for tReadStream; reads larger than one
	// chunk are streamed. <= 0 picks the default; reads never stream when
	// they fit in a single chunk.
	StreamChunk int
}

// Defaults for ClientConfig fields.
const (
	DefaultWindow        = 64
	DefaultTagLimit      = 4096
	DefaultBatchMaxOps   = 32
	DefaultBatchMaxBytes = 256 << 10
	DefaultStreamChunk   = 256 << 10
)

func (cfg ClientConfig) normalize() ClientConfig {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.TagLimit <= 0 {
		cfg.TagLimit = DefaultTagLimit
	}
	if cfg.TagLimit > 1<<16 {
		cfg.TagLimit = 1 << 16
	}
	if cfg.BatchMaxOps <= 0 {
		cfg.BatchMaxOps = DefaultBatchMaxOps
	}
	if cfg.BatchMaxBytes <= 0 {
		cfg.BatchMaxBytes = DefaultBatchMaxBytes
	}
	if cfg.BatchMaxBytes > maxFrame/2 {
		cfg.BatchMaxBytes = maxFrame / 2
	}
	if cfg.StreamChunk <= 0 {
		cfg.StreamChunk = DefaultStreamChunk
	}
	if cfg.StreamChunk > maxFrame-64 {
		cfg.StreamChunk = maxFrame - 64
	}
	return cfg
}

// Client is a remote filesystem: it speaks the fswire protocol over one
// connection and implements fsapi.FS, so everything written against that
// interface — the vfs adapter, the workload driver, the differential tester —
// runs unchanged against a served volume.
//
// FIDs (the fsapi.FD values Create and Open return) are assigned by the
// server, lowest-free-first per connection at execution time, mirroring the
// local implementations' POSIX descriptor discipline: a sequential trace run
// remotely yields the same descriptor numbers as a local run, and pipelined
// submissions need no descriptor barrier because the number is decided where
// the outcome is known. The client is safe for concurrent use — requests are
// tagged and may complete out of order — but concurrent callers forfeit
// descriptor determinism exactly as they would against a local filesystem.
//
// Beyond the synchronous fsapi.FS surface the client pipelines: SubmitOp
// (pipeline.go) fires operations without waiting, small writes coalesce into
// tWriteBatch frames, and large reads stream via tReadStream. Because the
// server executes a connection's requests strictly in arrival order, a
// pipelined run is outcome-identical to a sequential one.
type Client struct {
	c   net.Conn
	cfg ClientConfig

	// Request frames queue to a single writer goroutine that packs them into
	// a buffered stream and issues one write syscall per drain, not per
	// frame: a pipelining submitter enqueues faster than the kernel round
	// trip, so bursts coalesce, while a lone synchronous caller still gets
	// an immediate flush (the queue runs dry right after its frame).
	wq chan outFrame

	window chan struct{} // in-flight slots; acquire on submit, release on final response
	dead   chan struct{} // closed by fail: unblocks window waiters on a poisoned client

	mu       sync.Mutex
	idle     *sync.Cond // broadcast when pending drains to empty (Flush barrier)
	pending  map[uint16]*call
	freeTags []uint16 // retired tags, reused LIFO — O(1) allocation
	nextTag  uint32   // low-water mark: tags never yet handed out
	fids     map[uint32]bool
	closed   bool
	readErr  error

	pmu sync.Mutex // pipeline submit state (pipeline.go)
	wb  *writeBatch
}

// call is one in-flight request's completion future. Unary requests get
// exactly one payload on ch; tReadStream gets one per chunk. A closed ch
// means the connection was poisoned.
type call struct {
	tag    uint16
	stream bool
	ch     chan []byte
}

// outFrame is one request frame queued for the writer goroutine.
type outFrame struct {
	typ     uint8
	tag     uint16
	payload []byte
}

var _ fsapi.FS = (*Client)(nil)

// Dial connects to an fswire server and attaches to the named volume
// (servers backed by Single accept any name, "" by convention).
func Dial(addr, volume string) (*Client, error) {
	return DialConfig(addr, volume, ClientConfig{})
}

// DialConfig is Dial with explicit pipelining configuration.
func DialConfig(addr, volume string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClientConfig(conn, volume, cfg)
}

// NewClient attaches to a volume over an existing connection, taking
// ownership of it. On error the connection is closed.
func NewClient(conn net.Conn, volume string) (*Client, error) {
	return NewClientConfig(conn, volume, ClientConfig{})
}

// NewClientConfig is NewClient with explicit pipelining configuration.
func NewClientConfig(conn net.Conn, volume string, cfg ClientConfig) (*Client, error) {
	cfg = cfg.normalize()
	c := &Client{
		c:       conn,
		cfg:     cfg,
		wq:      make(chan outFrame, cfg.Window),
		window:  make(chan struct{}, cfg.Window),
		dead:    make(chan struct{}),
		pending: make(map[uint16]*call),
		fids:    make(map[uint32]bool),
	}
	c.idle = sync.NewCond(&c.mu)
	go c.readLoop()
	go c.writeLoop()
	e := &enc{}
	e.str(volume)
	d, err := c.rpc(tAttach, e.b)
	if err == nil {
		err = d.err()
	}
	if err != nil {
		c.Hangup()
		return nil, fmt.Errorf("fswire: attach %q: %w", volume, err)
	}
	return c, nil
}

// Hangup closes the connection; in-flight and future operations fail with
// an fserr.ErrIO-wrapped error. (Not named Close: that is fsapi.FS's
// descriptor-close operation.)
func (c *Client) Hangup() error {
	err := c.c.Close()
	c.fail(fmt.Errorf("fswire: connection closed locally: %w", fserr.ErrIO))
	return err
}

// fail poisons the client: every pending and future rpc returns the
// poisoning error. It returns that error (the first poisoner wins), so
// error paths can report it without re-reading c.readErr unlocked.
func (c *Client) fail(err error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.readErr
	}
	c.closed = true
	c.readErr = err
	close(c.dead)
	for tag, ch := range c.pending {
		close(ch.ch)
		delete(c.pending, tag)
	}
	c.idle.Broadcast()
	return err
}

// deadErr reports the poisoning error under the lock.
func (c *Client) deadErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return fmt.Errorf("fswire: connection closed: %w", fserr.ErrIO)
}

// writeLoop is the connection's only writer: it drains queued request frames
// into a buffered stream and flushes when the queue runs dry, so a pipelined
// burst of n frames costs ~1 write syscall, not n. A write or flush failure
// poisons the client; anything still queued is covered by fail closing every
// pending call.
func (c *Client) writeLoop() {
	bw := bufio.NewWriterSize(c.c, 64<<10)
	for {
		var f outFrame
		select {
		case f = <-c.wq:
		case <-c.dead:
			return
		}
	drain:
		for {
			if _, err := writeFrame(bw, f.typ, f.tag, f.payload); err != nil {
				c.fail(fmt.Errorf("fswire: connection lost: %w", fserr.ErrIO))
				return
			}
			select {
			case f = <-c.wq:
				continue
			default:
			}
			// An empty queue here is often lock-step, not idleness: a
			// pipelining submitter is one enqueue behind. Yield once before
			// paying a flush syscall; if the queue is still empty, flush.
			runtime.Gosched()
			select {
			case f = <-c.wq:
				continue
			default:
				break drain
			}
		}
		if err := bw.Flush(); err != nil {
			c.fail(fmt.Errorf("fswire: connection lost: %w", fserr.ErrIO))
			return
		}
	}
}

// readLoop dispatches response frames to their tag's waiter and retires
// window slots as requests complete.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.c, 64<<10)
	for {
		_, tag, payload, _, err := readFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("fswire: connection lost: %w", fserr.ErrIO))
			return
		}
		c.mu.Lock()
		cl, ok := c.pending[tag]
		final := false
		if ok {
			// A stream stays pending until its final chunk (more-flag 0 at
			// payload[4]); anything malformed also terminates it.
			final = !cl.stream || len(payload) < 5 || payload[4] == 0
			if final {
				delete(c.pending, tag)
				c.freeTags = append(c.freeTags, tag)
				if len(c.pending) == 0 {
					c.idle.Broadcast()
				}
			}
		}
		c.mu.Unlock()
		if ok {
			// Never blocks: unary calls have cap 1 and exactly one response;
			// stream calls have cap for every chunk the server can send.
			cl.ch <- payload
		}
		if ok && final {
			<-c.window
		}
	}
}

// submit acquires a window slot and a tag, queues one request frame for the
// writer, and returns the completion future. chunks > 0 marks a stream
// request expecting up to that many response frames.
func (c *Client) submit(typ uint8, payload []byte, chunks int) (*call, error) {
	// Oversize frames fail just this operation, synchronously — the writer
	// goroutine must never see one, because there it could only poison the
	// whole connection.
	if len(payload)+frameHeader > maxFrame {
		return nil, fmt.Errorf("fswire: frame too large (%d bytes): %w", len(payload), fserr.ErrTooBig)
	}
	select {
	case c.window <- struct{}{}:
	case <-c.dead:
		return nil, c.deadErr()
	}
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	var tag uint16
	if k := len(c.freeTags); k > 0 {
		tag = c.freeTags[k-1]
		c.freeTags = c.freeTags[:k-1]
	} else if c.nextTag < uint32(c.cfg.TagLimit) {
		tag = uint16(c.nextTag)
		c.nextTag++
	} else {
		c.mu.Unlock()
		<-c.window
		return nil, fmt.Errorf("fswire: tag space exhausted (%d in flight): %w",
			c.cfg.TagLimit, fserr.ErrOverloaded)
	}
	depth := 1
	if chunks > depth {
		depth = chunks
	}
	cl := &call{tag: tag, stream: chunks > 0, ch: make(chan []byte, depth)}
	c.pending[tag] = cl
	c.mu.Unlock()

	select {
	case c.wq <- outFrame{typ: typ, tag: tag, payload: payload}:
		return cl, nil
	case <-c.dead:
		// The writer died with the frame unsent. fail may already have
		// retired this call; clean up whatever is left and report the poison.
		c.mu.Lock()
		if _, still := c.pending[tag]; still {
			delete(c.pending, tag)
			c.freeTags = append(c.freeTags, tag)
			if len(c.pending) == 0 {
				c.idle.Broadcast()
			}
		}
		c.mu.Unlock()
		<-c.window
		return nil, c.deadErr()
	}
}

// wait blocks for a unary call's response and returns a decoder positioned
// after the errno word, or the operation's error.
func (c *Client) wait(cl *call) (*dec, error) {
	resp, ok := <-cl.ch
	if !ok {
		return nil, c.deadErr()
	}
	d := &dec{b: resp}
	if opErr := errnoErr(d.u32()); opErr != nil {
		return nil, opErr
	}
	if d.bad {
		return nil, fmt.Errorf("fswire: truncated response: %w", fserr.ErrIO)
	}
	return d, nil
}

// rpc performs one tagged round trip. It first flushes any coalescing write
// batch so synchronous calls keep their place in the pipeline's order.
func (c *Client) rpc(typ uint8, payload []byte) (*dec, error) {
	c.pmu.Lock()
	ferr := c.flushBatchLocked()
	c.pmu.Unlock()
	if ferr != nil {
		return nil, ferr
	}
	cl, err := c.submit(typ, payload, 0)
	if err != nil {
		return nil, err
	}
	return c.wait(cl)
}

// Flush is the pipeline barrier: it submits any coalescing write batch and
// blocks until every in-flight request has completed (or the connection
// dies). The vfs adapter calls it from Sync/Fsync/Close so standard-library
// callers get write-behind ordering for free.
func (c *Client) Flush() error {
	c.pmu.Lock()
	ferr := c.flushBatchLocked()
	c.pmu.Unlock()
	if ferr != nil {
		return ferr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.pending) > 0 && !c.closed {
		c.idle.Wait()
	}
	if c.closed {
		return c.readErr
	}
	return nil
}

// trackFID and untrackFID maintain the client's mirror of the server's FID
// table. The server owns allocation; the mirror exists for introspection and
// leak detection only.
func (c *Client) trackFID(fid uint32) {
	c.mu.Lock()
	c.fids[fid] = true
	c.mu.Unlock()
}

func (c *Client) untrackFID(fid uint32) {
	c.mu.Lock()
	delete(c.fids, fid)
	c.mu.Unlock()
}

// closeReleasesFID reports whether a Close outcome is terminal for the FID:
// the server no longer holds (or never held) the binding, so the mirror must
// drop it too. Success and ErrBadFD mean the server-side mapping is gone
// (the server drops the binding on EBADF, keeping the two tables coherent);
// a poisoned connection means the server's whole FID table died with it. Any
// other error — a shed (ErrOverloaded), a degradation errno — means the
// server still holds the FID: keep it so a retry stays coherent.
func (c *Client) closeReleasesFID(err error) bool {
	if err == nil || errors.Is(err, fserr.ErrBadFD) {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// pathReq runs an op whose request is a single path and whose response is
// errno-only.
func (c *Client) pathReq(typ uint8, path string) error {
	e := &enc{}
	e.str(path)
	_, err := c.rpc(typ, e.b)
	return err
}

// Mkdir implements fsapi.FS.
func (c *Client) Mkdir(path string, perm uint16) error {
	e := &enc{}
	e.str(path)
	e.u16(perm)
	_, err := c.rpc(tMkdir, e.b)
	return err
}

// Rmdir implements fsapi.FS.
func (c *Client) Rmdir(path string) error { return c.pathReq(tRmdir, path) }

// Create implements fsapi.FS. The FID is server-assigned (lowest-free per
// connection, allocated in execution order) and arrives in the response
// along with the new file's inode number.
func (c *Client) Create(path string, perm uint16) (fsapi.FD, error) {
	e := &enc{}
	e.str(path)
	e.u16(perm)
	d, err := c.rpc(tCreate, e.b)
	if err != nil {
		return -1, err
	}
	fid := d.u32()
	if err := d.err(); err != nil {
		return -1, err
	}
	c.trackFID(fid)
	return fsapi.FD(fid), nil
}

// Open implements fsapi.FS.
func (c *Client) Open(path string) (fsapi.FD, error) {
	e := &enc{}
	e.str(path)
	d, err := c.rpc(tOpen, e.b)
	if err != nil {
		return -1, err
	}
	fid := d.u32()
	if err := d.err(); err != nil {
		return -1, err
	}
	c.trackFID(fid)
	return fsapi.FD(fid), nil
}

// Close implements fsapi.FS (descriptor close, not connection close). The
// mirror entry is dropped on every terminal outcome — success, ErrBadFD (the
// server holds no such binding), or a dead connection — and kept only when
// the server still holds it (e.g. the op was shed with ErrOverloaded), so a
// flaky link cannot leak low FIDs and skew descriptor determinism.
func (c *Client) Close(fd fsapi.FD) error {
	e := &enc{}
	e.u32(uint32(fd))
	_, err := c.rpc(tClose, e.b)
	if fd >= 0 && c.closeReleasesFID(err) {
		c.untrackFID(uint32(fd))
	}
	return err
}

// ReadAt implements fsapi.FS. Reads larger than one stream chunk use
// tReadStream: the server answers with a sequence of bounded chunk frames
// keyed by the request's tag and the client reassembles, so a single read
// is no longer capped by (or buffered at) the frame bound.
func (c *Client) ReadAt(fd fsapi.FD, off int64, n int) ([]byte, error) {
	if n > c.cfg.StreamChunk {
		cl, err := c.submitReadStream(fd, off, n)
		if err != nil {
			return nil, err
		}
		return c.collectStream(cl, n)
	}
	e := &enc{}
	e.u32(uint32(fd))
	e.u64(uint64(off))
	e.u32(uint32(n))
	d, err := c.rpc(tRead, e.b)
	if err != nil {
		return nil, err
	}
	data := d.bytes()
	if err := d.err(); err != nil {
		return nil, err
	}
	return data, nil
}

// submitReadStream fires a tReadStream request (flushing the write batch
// first to keep order) and returns its multi-chunk call.
func (c *Client) submitReadStream(fd fsapi.FD, off int64, n int) (*call, error) {
	c.pmu.Lock()
	ferr := c.flushBatchLocked()
	c.pmu.Unlock()
	if ferr != nil {
		return nil, ferr
	}
	e := &enc{}
	e.u32(uint32(fd))
	e.u64(uint64(off))
	e.u32(uint32(n))
	e.u32(uint32(c.cfg.StreamChunk))
	chunks := (n + c.cfg.StreamChunk - 1) / c.cfg.StreamChunk
	if chunks < 1 {
		chunks = 1
	}
	return c.submit(tReadStream, e.b, chunks)
}

// collectStream reassembles a tReadStream response. A chunk-level error
// surfaces as the operation's error with no data, matching the
// all-or-nothing contract of a single ReadAt.
func (c *Client) collectStream(cl *call, n int) ([]byte, error) {
	buf := make([]byte, 0, n)
	for {
		resp, ok := <-cl.ch
		if !ok {
			return nil, c.deadErr()
		}
		d := &dec{b: resp}
		errno := d.u32()
		more := d.u8()
		data := d.bytes()
		if opErr := errnoErr(errno); opErr != nil {
			return nil, opErr
		}
		if d.bad {
			return nil, fmt.Errorf("fswire: truncated stream chunk: %w", fserr.ErrIO)
		}
		buf = append(buf, data...)
		if more == 0 {
			return buf, nil
		}
	}
}

// WriteAt implements fsapi.FS.
func (c *Client) WriteAt(fd fsapi.FD, off int64, data []byte) (int, error) {
	e := &enc{}
	e.u32(uint32(fd))
	e.u64(uint64(off))
	e.bytes(data)
	d, err := c.rpc(tWrite, e.b)
	if err != nil {
		return 0, err
	}
	n := int(d.u32())
	if err := d.err(); err != nil {
		return 0, err
	}
	return n, nil
}

// Truncate implements fsapi.FS.
func (c *Client) Truncate(path string, size int64) error {
	e := &enc{}
	e.str(path)
	e.u64(uint64(size))
	_, err := c.rpc(tTrunc, e.b)
	return err
}

// Unlink implements fsapi.FS.
func (c *Client) Unlink(path string) error { return c.pathReq(tUnlink, path) }

// Rename implements fsapi.FS.
func (c *Client) Rename(oldPath, newPath string) error {
	e := &enc{}
	e.str(oldPath)
	e.str(newPath)
	_, err := c.rpc(tRename, e.b)
	return err
}

// Link implements fsapi.FS.
func (c *Client) Link(oldPath, newPath string) error {
	e := &enc{}
	e.str(oldPath)
	e.str(newPath)
	_, err := c.rpc(tLink, e.b)
	return err
}

// Symlink implements fsapi.FS.
func (c *Client) Symlink(target, linkPath string) error {
	e := &enc{}
	e.str(target)
	e.str(linkPath)
	_, err := c.rpc(tSymlink, e.b)
	return err
}

// Readlink implements fsapi.FS.
func (c *Client) Readlink(path string) (string, error) {
	e := &enc{}
	e.str(path)
	d, err := c.rpc(tReadlink, e.b)
	if err != nil {
		return "", err
	}
	target := d.str()
	if err := d.err(); err != nil {
		return "", err
	}
	return target, nil
}

// Stat implements fsapi.FS.
func (c *Client) Stat(path string) (fsapi.Stat, error) {
	e := &enc{}
	e.str(path)
	d, err := c.rpc(tStat, e.b)
	if err != nil {
		return fsapi.Stat{}, err
	}
	st := d.stat()
	if err := d.err(); err != nil {
		return fsapi.Stat{}, err
	}
	return st, nil
}

// Fstat implements fsapi.FS.
func (c *Client) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	e := &enc{}
	e.u32(uint32(fd))
	d, err := c.rpc(tFstat, e.b)
	if err != nil {
		return fsapi.Stat{}, err
	}
	st := d.stat()
	if err := d.err(); err != nil {
		return fsapi.Stat{}, err
	}
	return st, nil
}

// Readdir implements fsapi.FS.
func (c *Client) Readdir(path string) ([]fsapi.DirEntry, error) {
	e := &enc{}
	e.str(path)
	d, err := c.rpc(tReaddir, e.b)
	if err != nil {
		return nil, err
	}
	count := d.u32()
	if count > maxFrame {
		return nil, fmt.Errorf("fswire: oversized listing: %w", fserr.ErrIO)
	}
	ents := make([]fsapi.DirEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		ents = append(ents, fsapi.DirEntry{Name: d.str(), Ino: d.u32(), Type: d.u16()})
	}
	if err := d.err(); err != nil {
		return nil, err
	}
	return ents, nil
}

// SetPerm implements fsapi.FS.
func (c *Client) SetPerm(path string, perm uint16) error {
	e := &enc{}
	e.str(path)
	e.u16(perm)
	_, err := c.rpc(tSetPerm, e.b)
	return err
}

// Fsync implements fsapi.FS.
func (c *Client) Fsync(fd fsapi.FD) error {
	e := &enc{}
	e.u32(uint32(fd))
	_, err := c.rpc(tFsync, e.b)
	return err
}

// Sync implements fsapi.FS.
func (c *Client) Sync() error {
	_, err := c.rpc(tSync, nil)
	return err
}
