package fswire

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// Client is a remote filesystem: it speaks the fswire protocol over one
// connection and implements fsapi.FS, so everything written against that
// interface — the vfs adapter, the workload driver, the differential tester —
// runs unchanged against a served volume.
//
// FIDs (the fsapi.FD values Create and Open return) are allocated here,
// lowest-free-first, mirroring the local implementations' POSIX descriptor
// discipline: a sequential trace run remotely yields the same descriptor
// numbers as a local run. The client is safe for concurrent use — requests
// are tagged and may complete out of order — but concurrent callers forfeit
// descriptor determinism exactly as they would against a local filesystem.
type Client struct {
	c net.Conn

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint16]chan []byte
	fids    map[uint32]bool
	closed  bool
	readErr error
}

var _ fsapi.FS = (*Client)(nil)

// Dial connects to an fswire server and attaches to the named volume
// (servers backed by Single accept any name, "" by convention).
func Dial(addr, volume string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, volume)
}

// NewClient attaches to a volume over an existing connection, taking
// ownership of it. On error the connection is closed.
func NewClient(conn net.Conn, volume string) (*Client, error) {
	c := &Client{
		c:       conn,
		pending: make(map[uint16]chan []byte),
		fids:    make(map[uint32]bool),
	}
	go c.readLoop()
	e := &enc{}
	e.str(volume)
	d, err := c.rpc(tAttach, e.b)
	if err == nil {
		err = d.err()
	}
	if err != nil {
		c.Hangup()
		return nil, fmt.Errorf("fswire: attach %q: %w", volume, err)
	}
	return c, nil
}

// Hangup closes the connection; in-flight and future operations fail with
// an fserr.ErrIO-wrapped error. (Not named Close: that is fsapi.FS's
// descriptor-close operation.)
func (c *Client) Hangup() error {
	err := c.c.Close()
	c.fail(fmt.Errorf("fswire: connection closed locally: %w", fserr.ErrIO))
	return err
}

// fail poisons the client: every pending and future rpc returns err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.readErr = err
	for tag, ch := range c.pending {
		close(ch)
		delete(c.pending, tag)
	}
}

// readLoop dispatches response frames to their tag's waiter.
func (c *Client) readLoop() {
	for {
		_, tag, payload, _, err := readFrame(c.c)
		if err != nil {
			c.fail(fmt.Errorf("fswire: connection lost: %w", fserr.ErrIO))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[tag]
		delete(c.pending, tag)
		c.mu.Unlock()
		if ok {
			ch <- payload
		}
	}
}

// rpc performs one tagged round trip and returns a decoder positioned after
// the errno word, or the operation's error.
func (c *Client) rpc(typ uint8, payload []byte) (*dec, error) {
	ch := make(chan []byte, 1)
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	var tag uint16
	for {
		if _, used := c.pending[tag]; !used {
			break
		}
		tag++
	}
	c.pending[tag] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	_, err := writeFrame(c.c, typ, tag, payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, tag)
		c.mu.Unlock()
		c.fail(fmt.Errorf("fswire: connection lost: %w", fserr.ErrIO))
		return nil, c.readErr
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	d := &dec{b: resp}
	if opErr := errnoErr(d.u32()); opErr != nil {
		return nil, opErr
	}
	if d.bad {
		return nil, fmt.Errorf("fswire: truncated response: %w", fserr.ErrIO)
	}
	return d, nil
}

// allocFID reserves the lowest free FID.
func (c *Client) allocFID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var fid uint32
	for c.fids[fid] {
		fid++
	}
	c.fids[fid] = true
	return fid
}

// releaseFID returns a FID to the free pool.
func (c *Client) releaseFID(fid uint32) {
	c.mu.Lock()
	delete(c.fids, fid)
	c.mu.Unlock()
}

// pathReq runs an op whose request is a single path and whose response is
// errno-only.
func (c *Client) pathReq(typ uint8, path string) error {
	e := &enc{}
	e.str(path)
	_, err := c.rpc(typ, e.b)
	return err
}

// Mkdir implements fsapi.FS.
func (c *Client) Mkdir(path string, perm uint16) error {
	e := &enc{}
	e.str(path)
	e.u16(perm)
	_, err := c.rpc(tMkdir, e.b)
	return err
}

// Rmdir implements fsapi.FS.
func (c *Client) Rmdir(path string) error { return c.pathReq(tRmdir, path) }

// Create implements fsapi.FS.
func (c *Client) Create(path string, perm uint16) (fsapi.FD, error) {
	fid := c.allocFID()
	e := &enc{}
	e.u32(fid)
	e.str(path)
	e.u16(perm)
	if _, err := c.rpc(tCreate, e.b); err != nil {
		c.releaseFID(fid)
		return -1, err
	}
	return fsapi.FD(fid), nil
}

// Open implements fsapi.FS.
func (c *Client) Open(path string) (fsapi.FD, error) {
	fid := c.allocFID()
	e := &enc{}
	e.u32(fid)
	e.str(path)
	if _, err := c.rpc(tOpen, e.b); err != nil {
		c.releaseFID(fid)
		return -1, err
	}
	return fsapi.FD(fid), nil
}

// Close implements fsapi.FS (descriptor close, not connection close).
func (c *Client) Close(fd fsapi.FD) error {
	e := &enc{}
	e.u32(uint32(fd))
	if _, err := c.rpc(tClose, e.b); err != nil {
		return err
	}
	if fd >= 0 {
		c.releaseFID(uint32(fd))
	}
	return nil
}

// ReadAt implements fsapi.FS.
func (c *Client) ReadAt(fd fsapi.FD, off int64, n int) ([]byte, error) {
	e := &enc{}
	e.u32(uint32(fd))
	e.u64(uint64(off))
	e.u32(uint32(n))
	d, err := c.rpc(tRead, e.b)
	if err != nil {
		return nil, err
	}
	data := d.bytes()
	if err := d.err(); err != nil {
		return nil, err
	}
	return data, nil
}

// WriteAt implements fsapi.FS.
func (c *Client) WriteAt(fd fsapi.FD, off int64, data []byte) (int, error) {
	e := &enc{}
	e.u32(uint32(fd))
	e.u64(uint64(off))
	e.bytes(data)
	d, err := c.rpc(tWrite, e.b)
	if err != nil {
		return 0, err
	}
	n := int(d.u32())
	if err := d.err(); err != nil {
		return 0, err
	}
	return n, nil
}

// Truncate implements fsapi.FS.
func (c *Client) Truncate(path string, size int64) error {
	e := &enc{}
	e.str(path)
	e.u64(uint64(size))
	_, err := c.rpc(tTrunc, e.b)
	return err
}

// Unlink implements fsapi.FS.
func (c *Client) Unlink(path string) error { return c.pathReq(tUnlink, path) }

// Rename implements fsapi.FS.
func (c *Client) Rename(oldPath, newPath string) error {
	e := &enc{}
	e.str(oldPath)
	e.str(newPath)
	_, err := c.rpc(tRename, e.b)
	return err
}

// Link implements fsapi.FS.
func (c *Client) Link(oldPath, newPath string) error {
	e := &enc{}
	e.str(oldPath)
	e.str(newPath)
	_, err := c.rpc(tLink, e.b)
	return err
}

// Symlink implements fsapi.FS.
func (c *Client) Symlink(target, linkPath string) error {
	e := &enc{}
	e.str(target)
	e.str(linkPath)
	_, err := c.rpc(tSymlink, e.b)
	return err
}

// Readlink implements fsapi.FS.
func (c *Client) Readlink(path string) (string, error) {
	e := &enc{}
	e.str(path)
	d, err := c.rpc(tReadlink, e.b)
	if err != nil {
		return "", err
	}
	target := d.str()
	if err := d.err(); err != nil {
		return "", err
	}
	return target, nil
}

// Stat implements fsapi.FS.
func (c *Client) Stat(path string) (fsapi.Stat, error) {
	e := &enc{}
	e.str(path)
	d, err := c.rpc(tStat, e.b)
	if err != nil {
		return fsapi.Stat{}, err
	}
	st := d.stat()
	if err := d.err(); err != nil {
		return fsapi.Stat{}, err
	}
	return st, nil
}

// Fstat implements fsapi.FS.
func (c *Client) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	e := &enc{}
	e.u32(uint32(fd))
	d, err := c.rpc(tFstat, e.b)
	if err != nil {
		return fsapi.Stat{}, err
	}
	st := d.stat()
	if err := d.err(); err != nil {
		return fsapi.Stat{}, err
	}
	return st, nil
}

// Readdir implements fsapi.FS.
func (c *Client) Readdir(path string) ([]fsapi.DirEntry, error) {
	e := &enc{}
	e.str(path)
	d, err := c.rpc(tReaddir, e.b)
	if err != nil {
		return nil, err
	}
	count := d.u32()
	if count > maxFrame {
		return nil, fmt.Errorf("fswire: oversized listing: %w", fserr.ErrIO)
	}
	ents := make([]fsapi.DirEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		ents = append(ents, fsapi.DirEntry{Name: d.str(), Ino: d.u32(), Type: d.u16()})
	}
	if err := d.err(); err != nil {
		return nil, err
	}
	return ents, nil
}

// SetPerm implements fsapi.FS.
func (c *Client) SetPerm(path string, perm uint16) error {
	e := &enc{}
	e.str(path)
	e.u16(perm)
	_, err := c.rpc(tSetPerm, e.b)
	return err
}

// Fsync implements fsapi.FS.
func (c *Client) Fsync(fd fsapi.FD) error {
	e := &enc{}
	e.u32(uint32(fd))
	_, err := c.rpc(tFsync, e.b)
	return err
}

// Sync implements fsapi.FS.
func (c *Client) Sync() error {
	_, err := c.rpc(tSync, nil)
	return err
}
