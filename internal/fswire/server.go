package fswire

import (
	"errors"
	"net"
	"sync"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/telemetry"
	"repro/internal/volmgr"
)

// Backend resolves an attach-time volume name to the filesystem that will
// serve the connection. The returned filesystem must be safe for concurrent
// use (a supervised core.FS or a volmgr tenant is; wrap single-threaded
// implementations like the shadow or the model with Locked).
type Backend func(volume string) (fsapi.FS, error)

// Single serves one filesystem under every volume name, including "".
func Single(fs fsapi.FS) Backend {
	return func(string) (fsapi.FS, error) { return fs, nil }
}

// Volumes serves a volmgr fleet: the attach name selects the tenant. Unknown
// or unmounted volumes fail the attach with the manager's error
// (fserr.ErrNotExist / fserr.ErrInvalid), which travels back as the attach
// errno.
func Volumes(m *volmgr.Manager) Backend {
	return func(name string) (fsapi.FS, error) { return m.Get(name) }
}

// Server serves the fswire protocol over any net.Listener.
type Server struct {
	backend Backend

	conns *telemetry.Gauge   // fswire.conns: connections currently attached
	ops   *telemetry.Counter // fswire.ops: requests served
	bytes *telemetry.Counter // fswire.bytes: frame bytes in + out
	errs  *telemetry.Counter // fswire.errs: responses carrying a nonzero errno

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	open      map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithTelemetry installs the sink carrying the fswire.* instruments.
func WithTelemetry(s *telemetry.Sink) ServerOption {
	return func(srv *Server) {
		if s != nil {
			srv.conns = s.Gauge("fswire.conns")
			srv.ops = s.Counter("fswire.ops")
			srv.bytes = s.Counter("fswire.bytes")
			srv.errs = s.Counter("fswire.errs")
		}
	}
}

// NewServer builds a server over backend.
func NewServer(backend Backend, opts ...ServerOption) *Server {
	s := &Server{
		backend:   backend,
		listeners: make(map[net.Listener]struct{}),
		open:      make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve accepts connections on ln until the listener fails or Close is
// called; Close makes Serve return nil.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("fswire: server closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.open[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Close stops every listener, hangs up every connection, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for c := range s.open {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// srvConn is one connection's state: the attached filesystem and the FID
// table mapping client-chosen FIDs to server-side descriptors.
type srvConn struct {
	s *Server
	c net.Conn

	wmu sync.Mutex // serializes response frames

	mu   sync.Mutex
	fs   fsapi.FS
	fids map[uint32]fsapi.FD
}

func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	s.conns.Add(1)
	defer s.conns.Add(-1)
	sc := &srvConn{s: s, c: c, fids: make(map[uint32]fsapi.FD)}
	var reqs sync.WaitGroup
	defer func() {
		reqs.Wait() // in-flight handlers may still touch the fid table
		sc.mu.Lock()
		fs, fids := sc.fs, sc.fids
		sc.fids = make(map[uint32]fsapi.FD)
		sc.mu.Unlock()
		if fs != nil {
			for _, fd := range fids {
				_ = fs.Close(fd)
			}
		}
		c.Close()
		s.mu.Lock()
		delete(s.open, c)
		s.mu.Unlock()
	}()
	for {
		typ, tag, payload, nr, err := readFrame(c)
		if err != nil {
			return
		}
		s.bytes.Add(int64(nr))
		if typ == tAttach {
			// Attach runs inline: it installs the filesystem every later
			// request reads, and a client awaits the response before sending
			// operations.
			sc.respond(typ, tag, sc.attach(payload))
			continue
		}
		reqs.Add(1)
		go func(typ uint8, tag uint16, payload []byte) {
			defer reqs.Done()
			sc.respond(typ, tag, sc.handle(typ, payload))
		}(typ, tag, payload)
	}
}

// respond sends one response frame and maintains the op/byte/err counters.
func (sc *srvConn) respond(typ uint8, tag uint16, payload []byte) {
	sc.s.ops.Inc()
	if len(payload) >= 4 && errnoErr(uint32(payload[0])|uint32(payload[1])<<8|uint32(payload[2])<<16|uint32(payload[3])<<24) != nil {
		sc.s.errs.Inc()
	}
	sc.wmu.Lock()
	n, err := writeFrame(sc.c, typ, tag, payload)
	sc.wmu.Unlock()
	if err == nil {
		sc.s.bytes.Add(int64(n))
	}
}

// respErr builds an errno-only response payload.
func respErr(err error) []byte {
	e := &enc{}
	e.u32(errnoWord(err))
	return e.b
}

// attach resolves the volume name and binds the connection to it.
func (sc *srvConn) attach(body []byte) []byte {
	d := &dec{b: body}
	name := d.str()
	if d.err() != nil {
		return respErr(fserr.ErrInvalid)
	}
	fs, err := sc.s.backend(name)
	if err != nil {
		return respErr(err)
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.fs != nil {
		return respErr(fserr.ErrBusy) // one attach per connection
	}
	sc.fs = fs
	return respErr(nil)
}

// lookupFID resolves a client FID to the server-side descriptor.
func (sc *srvConn) lookupFID(fid uint32) (fsapi.FD, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	fd, ok := sc.fids[fid]
	return fd, ok
}

// handle executes one non-attach request and returns the response payload.
func (sc *srvConn) handle(typ uint8, body []byte) []byte {
	sc.mu.Lock()
	fs := sc.fs
	sc.mu.Unlock()
	if fs == nil {
		return respErr(fserr.ErrInvalid) // operation before attach
	}
	d := &dec{b: body}
	e := &enc{}
	switch typ {
	case tMkdir:
		path, perm := d.str(), d.u16()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Mkdir(path, perm)))
	case tRmdir:
		path := d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Rmdir(path)))
	case tCreate, tOpen:
		fid, path := d.u32(), d.str()
		perm := uint16(0)
		if typ == tCreate {
			perm = d.u16()
		}
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		var fd fsapi.FD
		var err error
		if typ == tCreate {
			fd, err = fs.Create(path, perm)
		} else {
			fd, err = fs.Open(path)
		}
		if err != nil {
			return respErr(err)
		}
		sc.mu.Lock()
		_, dup := sc.fids[fid]
		if !dup {
			sc.fids[fid] = fd
		}
		sc.mu.Unlock()
		if dup {
			_ = fs.Close(fd)
			return respErr(fserr.ErrInvalid) // protocol violation: FID in use
		}
		e.u32(errnoWord(nil))
	case tClose:
		fid := d.u32()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		err := fs.Close(fd)
		if err == nil {
			sc.mu.Lock()
			delete(sc.fids, fid)
			sc.mu.Unlock()
		}
		e.u32(errnoWord(err))
	case tRead:
		fid, off, n := d.u32(), int64(d.u64()), d.u32()
		if d.err() != nil || n > maxFrame-64 {
			return respErr(fserr.ErrInvalid)
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		data, err := fs.ReadAt(fd, off, int(n))
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.bytes(data)
	case tWrite:
		fid, off, data := d.u32(), int64(d.u64()), d.bytes()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		n, err := fs.WriteAt(fd, off, data)
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.u32(uint32(n))
	case tTrunc:
		path, size := d.str(), int64(d.u64())
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Truncate(path, size)))
	case tUnlink:
		path := d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Unlink(path)))
	case tRename:
		oldPath, newPath := d.str(), d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Rename(oldPath, newPath)))
	case tLink:
		oldPath, newPath := d.str(), d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Link(oldPath, newPath)))
	case tSymlink:
		target, linkPath := d.str(), d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Symlink(target, linkPath)))
	case tReadlink:
		path := d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		target, err := fs.Readlink(path)
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.str(target)
	case tStat:
		path := d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		st, err := fs.Stat(path)
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.stat(st)
	case tFstat:
		fid := d.u32()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		st, err := fs.Fstat(fd)
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.stat(st)
	case tReaddir:
		path := d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		ents, err := fs.Readdir(path)
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.u32(uint32(len(ents)))
		for _, de := range ents {
			e.str(de.Name)
			e.u32(de.Ino)
			e.u16(de.Type)
		}
	case tSetPerm:
		path, perm := d.str(), d.u16()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.SetPerm(path, perm)))
	case tFsync:
		fid := d.u32()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		e.u32(errnoWord(fs.Fsync(fd)))
	case tSync:
		e.u32(errnoWord(fs.Sync()))
	default:
		return respErr(fserr.ErrInvalid)
	}
	return e.b
}
