package fswire

import (
	"bufio"
	"errors"
	"net"
	"runtime"
	"sync"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/telemetry"
	"repro/internal/volmgr"
)

// Backend resolves an attach-time volume name to the filesystem that will
// serve the connection. The returned filesystem must be safe for concurrent
// use (a supervised core.FS or a volmgr tenant is; wrap single-threaded
// implementations like the shadow or the model with Locked).
type Backend func(volume string) (fsapi.FS, error)

// Single serves one filesystem under every volume name, including "".
func Single(fs fsapi.FS) Backend {
	return func(string) (fsapi.FS, error) { return fs, nil }
}

// Volumes serves a volmgr fleet: the attach name selects the tenant. Unknown
// or unmounted volumes fail the attach with the manager's error
// (fserr.ErrNotExist / fserr.ErrInvalid), which travels back as the attach
// errno.
func Volumes(m *volmgr.Manager) Backend {
	return func(name string) (fsapi.FS, error) { return m.Get(name) }
}

// Server serves the fswire protocol over any net.Listener.
type Server struct {
	backend Backend

	conns   *telemetry.Gauge   // fswire.conns: connections currently attached
	ops     *telemetry.Counter // fswire.ops: requests served
	bytes   *telemetry.Counter // fswire.bytes: frame bytes in + out
	errs    *telemetry.Counter // fswire.errs: responses carrying a nonzero errno
	batched *telemetry.Counter // fswire.batch.writes: writes carried inside tWriteBatch frames
	chunks  *telemetry.Counter // fswire.stream.chunks: tReadStream chunk frames sent

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	open      map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithTelemetry installs the sink carrying the fswire.* instruments.
func WithTelemetry(s *telemetry.Sink) ServerOption {
	return func(srv *Server) {
		if s != nil {
			srv.conns = s.Gauge("fswire.conns")
			srv.ops = s.Counter("fswire.ops")
			srv.bytes = s.Counter("fswire.bytes")
			srv.errs = s.Counter("fswire.errs")
			srv.batched = s.Counter("fswire.batch.writes")
			srv.chunks = s.Counter("fswire.stream.chunks")
		}
	}
}

// NewServer builds a server over backend.
func NewServer(backend Backend, opts ...ServerOption) *Server {
	s := &Server{
		backend:   backend,
		listeners: make(map[net.Listener]struct{}),
		open:      make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve accepts connections on ln until the listener fails or Close is
// called; Close makes Serve return nil.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("fswire: server closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.open[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Close stops every listener, hangs up every connection, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for c := range s.open {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// srvConn is one connection's state: the attached filesystem and the FID
// table mapping server-assigned FIDs to server-side descriptors.
type srvConn struct {
	s *Server
	c net.Conn

	wmu sync.Mutex    // serializes response frames
	bw  *bufio.Writer // response stream; the executor flushes when idle

	mu      sync.Mutex
	fs      fsapi.FS
	fids    map[uint32]fsapi.FD
	fidScan uint32 // low-water mark: every FID below it is bound
}

// wireReq is one decoded request frame queued for the connection's executor.
type wireReq struct {
	typ     uint8
	tag     uint16
	payload []byte
}

func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	s.conns.Add(1)
	defer s.conns.Add(-1)
	sc := &srvConn{s: s, c: c, bw: bufio.NewWriterSize(c, 64<<10), fids: make(map[uint32]fsapi.FD)}

	// One executor per connection runs requests strictly in arrival order:
	// this is the ordering contract pipelined clients rely on — a submitted
	// stream of operations executes exactly as if issued sequentially
	// (inode and descriptor allocation order included), while the reader
	// keeps draining frames so round trips overlap. Responses still carry
	// tags, so completion can be awaited out of order on the client.
	//
	// Responses accumulate in a buffered stream, flushed only when the
	// request queue runs dry: a pipelined burst answers in ~1 write syscall,
	// while a lone synchronous request still flushes immediately (the queue
	// is empty the moment it's handled). The executor always drains the
	// queue before blocking, so no response can sit unflushed while the
	// client waits.
	reqs := make(chan wireReq, 128)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range reqs {
			switch r.typ {
			case tAttach:
				sc.respond(r.typ, r.tag, sc.attach(r.payload))
			case tReadStream:
				sc.streamRead(r.tag, r.payload)
			default:
				sc.respond(r.typ, r.tag, sc.handle(r.typ, r.payload))
			}
			if len(reqs) == 0 {
				// Often lock-step rather than idleness: the reader is one
				// enqueue behind. Yield once before paying a flush syscall.
				runtime.Gosched()
				if len(reqs) == 0 {
					sc.flushOut()
				}
			}
		}
		sc.flushOut()
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	for {
		typ, tag, payload, nr, err := readFrame(br)
		if err != nil {
			break
		}
		s.bytes.Add(int64(nr))
		reqs <- wireReq{typ: typ, tag: tag, payload: payload}
	}
	close(reqs)
	<-done // the executor may still touch the fid table

	sc.mu.Lock()
	fs, fids := sc.fs, sc.fids
	sc.fids = make(map[uint32]fsapi.FD)
	sc.mu.Unlock()
	if fs != nil {
		for _, fd := range fids {
			_ = fs.Close(fd)
		}
	}
	c.Close()
	s.mu.Lock()
	delete(s.open, c)
	s.mu.Unlock()
}

// respond sends one response frame and maintains the op/byte/err counters.
func (sc *srvConn) respond(typ uint8, tag uint16, payload []byte) {
	sc.s.ops.Inc()
	if len(payload) >= 4 && errnoErr(uint32(payload[0])|uint32(payload[1])<<8|uint32(payload[2])<<16|uint32(payload[3])<<24) != nil {
		sc.s.errs.Inc()
	}
	sc.writeRaw(typ, tag, payload)
}

// respErr builds an errno-only response payload.
func respErr(err error) []byte {
	e := &enc{}
	e.u32(errnoWord(err))
	return e.b
}

// streamRead serves one tReadStream request: the read is decomposed into
// chunk-bounded ReadAts and each chunk goes back as its own frame carrying
// the request's tag, an errno word, and a more-flag — so a read of any size
// streams under the frame bound instead of buffering. The window sliding is
// the transport's: the client sizes its reassembly buffer for every chunk
// the request can produce, and TCP flow control paces the server. A short
// read ends the stream (EOF); a chunk-level error ends it with the errno and
// the client discards the prefix, matching a single ReadAt's all-or-nothing
// contract.
func (sc *srvConn) streamRead(tag uint16, body []byte) {
	sc.s.ops.Inc()
	sc.mu.Lock()
	fs := sc.fs
	sc.mu.Unlock()
	fail := func(err error) {
		sc.s.errs.Inc()
		e := &enc{}
		e.u32(errnoWord(err))
		e.u8(0) // more = false
		e.bytes(nil)
		sc.writeRaw(tReadStream, tag, e.b)
	}
	if fs == nil {
		fail(fserr.ErrInvalid)
		return
	}
	d := &dec{b: body}
	fid, off, n, chunk := d.u32(), int64(d.u64()), d.u32(), d.u32()
	if d.err() != nil || chunk == 0 || chunk > maxFrame-64 {
		fail(fserr.ErrInvalid)
		return
	}
	fd, ok := sc.lookupFID(fid)
	if !ok {
		fail(fserr.ErrBadFD)
		return
	}
	remaining := int(n)
	for {
		want := remaining
		if want > int(chunk) {
			want = int(chunk)
		}
		data, err := fs.ReadAt(fd, off, want)
		if err != nil {
			fail(err)
			return
		}
		remaining -= len(data)
		final := len(data) < want || remaining == 0
		e := &enc{}
		e.u32(errnoWord(nil))
		if final {
			e.u8(0)
		} else {
			e.u8(1)
		}
		e.bytes(data)
		sc.s.chunks.Inc()
		if !sc.writeRaw(tReadStream, tag, e.b) || final {
			return
		}
		off += int64(len(data))
	}
}

// writeRaw queues one frame on the buffered response stream, maintaining the
// byte counter; it reports whether the write succeeded so a stream can stop
// flooding a dead connection. (With buffering, a failure may only surface at
// the next flush or once the buffer spills — the connection teardown path
// covers whatever a stream sends in the meantime.)
func (sc *srvConn) writeRaw(typ uint8, tag uint16, payload []byte) bool {
	sc.wmu.Lock()
	n, err := writeFrame(sc.bw, typ, tag, payload)
	sc.wmu.Unlock()
	if err == nil {
		sc.s.bytes.Add(int64(n))
		return true
	}
	return false
}

// flushOut pushes buffered responses to the socket.
func (sc *srvConn) flushOut() {
	sc.wmu.Lock()
	_ = sc.bw.Flush()
	sc.wmu.Unlock()
}

// attach resolves the volume name and binds the connection to it.
func (sc *srvConn) attach(body []byte) []byte {
	d := &dec{b: body}
	name := d.str()
	if d.err() != nil {
		return respErr(fserr.ErrInvalid)
	}
	fs, err := sc.s.backend(name)
	if err != nil {
		return respErr(err)
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.fs != nil {
		return respErr(fserr.ErrBusy) // one attach per connection
	}
	sc.fs = fs
	return respErr(nil)
}

// lookupFID resolves a client FID to the server-side descriptor.
func (sc *srvConn) lookupFID(fid uint32) (fsapi.FD, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	fd, ok := sc.fids[fid]
	return fd, ok
}

// allocFID binds fd to the lowest free FID of this connection and returns
// it. Lowest-free-first on success, freed on terminal close: exactly the
// POSIX descriptor discipline of a local run, so a sequential trace served
// remotely yields the same descriptor numbers a local application would see.
func (sc *srvConn) allocFID(fd fsapi.FD) uint32 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	// Scan from the low-water mark: every FID below it is bound, and
	// releaseFID drops the mark when a lower number frees — lowest-free
	// results at amortized O(1) instead of O(open descriptors).
	fid := sc.fidScan
	for {
		if _, used := sc.fids[fid]; !used {
			break
		}
		fid++
	}
	sc.fids[fid] = fd
	sc.fidScan = fid + 1
	return fid
}

// releaseFID unbinds a FID and lowers the allocation mark.
func (sc *srvConn) releaseFID(fid uint32) {
	sc.mu.Lock()
	delete(sc.fids, fid)
	if fid < sc.fidScan {
		sc.fidScan = fid
	}
	sc.mu.Unlock()
}

// handle executes one non-attach request and returns the response payload.
func (sc *srvConn) handle(typ uint8, body []byte) []byte {
	sc.mu.Lock()
	fs := sc.fs
	sc.mu.Unlock()
	if fs == nil {
		return respErr(fserr.ErrInvalid) // operation before attach
	}
	d := &dec{b: body}
	e := &enc{}
	switch typ {
	case tMkdir:
		path, perm := d.str(), d.u16()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		err := fs.Mkdir(path, perm)
		e.u32(errnoWord(err))
		// On success the response carries the new directory's inode (the
		// Stat probe oplog.Apply performs), 0 if the probe failed.
		var ino uint32
		if err == nil {
			if st, perr := fs.Stat(path); perr == nil {
				ino = st.Ino
			}
		}
		e.u32(ino)
	case tRmdir:
		path := d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Rmdir(path)))
	case tCreate, tOpen:
		path := d.str()
		perm := uint16(0)
		if typ == tCreate {
			perm = d.u16()
		}
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		var fd fsapi.FD
		var err error
		if typ == tCreate {
			fd, err = fs.Create(path, perm)
		} else {
			fd, err = fs.Open(path)
		}
		if err != nil {
			return respErr(err)
		}
		// The server assigns the FID, lowest-free-first per connection,
		// mirroring the descriptor discipline a local run would have. Because
		// the executor runs requests in arrival order, allocation happens at
		// the moment the outcome is known — so pipelined clients need no
		// descriptor barrier at all: they learn the number from the response.
		fid := sc.allocFID(fd)
		// The inode probe oplog.Apply would issue rides in the response,
		// saving pipelined clients a frame; 0 means the probe failed.
		var ino uint32
		if st, perr := fs.Fstat(fd); perr == nil {
			ino = st.Ino
		}
		e.u32(errnoWord(nil))
		e.u32(fid)
		e.u32(ino)
	case tClose:
		fid := d.u32()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		err := fs.Close(fd)
		// Drop the binding on success or EBADF (the server-side descriptor
		// is gone either way); keep it for retryable outcomes like a shed,
		// mirroring the client's release rule so the two tables agree.
		if err == nil || errors.Is(err, fserr.ErrBadFD) {
			sc.releaseFID(fid)
		}
		e.u32(errnoWord(err))
	case tRead:
		fid, off, n := d.u32(), int64(d.u64()), d.u32()
		if d.err() != nil || n > maxFrame-64 {
			return respErr(fserr.ErrInvalid)
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		data, err := fs.ReadAt(fd, off, int(n))
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.bytes(data)
	case tWrite:
		fid, off, data := d.u32(), int64(d.u64()), d.bytes()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		n, err := fs.WriteAt(fd, off, data)
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.u32(uint32(n))
	case tWriteBatch:
		fid, count := d.u32(), d.u32()
		if d.err() != nil || count == 0 || count > maxBatchOps {
			return respErr(fserr.ErrInvalid)
		}
		entries := make([]BatchEntry, 0, count)
		for i := uint32(0); i < count; i++ {
			off := int64(d.u64())
			data := d.bytes()
			if d.err() != nil {
				return respErr(fserr.ErrInvalid)
			}
			entries = append(entries, BatchEntry{Off: off, Data: data})
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		// Entries execute in order, each recording its own result — the
		// outcomes are exactly those of the same WriteAts issued one at a
		// time. A BatchWriter backend applies them in one critical section.
		var results []BatchWriteResult
		if bw, ok := fs.(BatchWriter); ok {
			results = bw.WriteAtBatch(fd, entries)
		} else {
			results = applyBatchSeq(fs, fd, entries)
		}
		sc.s.batched.Add(int64(len(entries)))
		e.u32(errnoWord(nil))
		e.u32(uint32(len(results)))
		for _, r := range results {
			e.u32(errnoWord(r.Err))
			e.u32(uint32(r.N))
		}
	case tTrunc:
		path, size := d.str(), int64(d.u64())
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Truncate(path, size)))
	case tUnlink:
		path := d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Unlink(path)))
	case tRename:
		oldPath, newPath := d.str(), d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Rename(oldPath, newPath)))
	case tLink:
		oldPath, newPath := d.str(), d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Link(oldPath, newPath)))
	case tSymlink:
		target, linkPath := d.str(), d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.Symlink(target, linkPath)))
	case tReadlink:
		path := d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		target, err := fs.Readlink(path)
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.str(target)
	case tStat:
		path := d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		st, err := fs.Stat(path)
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.stat(st)
	case tFstat:
		fid := d.u32()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		st, err := fs.Fstat(fd)
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.stat(st)
	case tReaddir:
		path := d.str()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		ents, err := fs.Readdir(path)
		if err != nil {
			return respErr(err)
		}
		e.u32(errnoWord(nil))
		e.u32(uint32(len(ents)))
		for _, de := range ents {
			e.str(de.Name)
			e.u32(de.Ino)
			e.u16(de.Type)
		}
	case tSetPerm:
		path, perm := d.str(), d.u16()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		e.u32(errnoWord(fs.SetPerm(path, perm)))
	case tFsync:
		fid := d.u32()
		if d.err() != nil {
			return respErr(fserr.ErrInvalid)
		}
		fd, ok := sc.lookupFID(fid)
		if !ok {
			return respErr(fserr.ErrBadFD)
		}
		e.u32(errnoWord(fs.Fsync(fd)))
	case tSync:
		e.u32(errnoWord(fs.Sync()))
	default:
		return respErr(fserr.ErrInvalid)
	}
	return e.b
}
