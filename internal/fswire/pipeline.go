package fswire

import (
	"sync"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/oplog"
)

// This file is the client-side pipelining layer: SubmitOp fires an oplog
// operation down the wire without waiting for its response and returns a
// future that fills the op's outcome fields on Wait. Because the server
// executes a connection's requests strictly in arrival order, a trace
// submitted in order and awaited later is outcome-identical — errnos,
// descriptor numbers, inode numbers, byte counts, state dump — to the same
// trace applied one blocking RPC at a time; the round trips simply overlap,
// bounded by the connection's in-flight window.
//
// Nothing in the stream needs a client-side barrier. Both allocation orders
// the outcome identity depends on are decided server-side at execution time:
// inode numbering because execution order is submission order, and
// descriptor numbering because the server assigns FIDs lowest-free-first the
// moment a create/open succeeds (and frees them on terminal closes) — the
// client just reads the number out of the response. The server also answers
// create/open/mkdir with the inode probe oplog.Apply would have issued, so
// recording RetIno costs no extra frame either.
//
// Small writes coalesce: consecutive SubmitOp writes to the same FID gather
// into one tWriteBatch frame (flushed by any other op kind, the batch caps,
// a synchronous call, or Flush), and the response carries per-entry results
// so each original WriteAt still reports its own errno and byte count.

// OpFuture resolves one submitted operation. Wait is idempotent and
// goroutine-safe; after it returns, the op passed to SubmitOp carries its
// outcome exactly as a synchronous oplog.Apply would have left it.
type OpFuture struct {
	once sync.Once
	fn   func()
}

// Wait blocks until the operation's outcome is recorded.
func (f *OpFuture) Wait() { f.once.Do(f.fn) }

// done builds an already-resolved future (used for malformed submissions).
func doneFuture() *OpFuture {
	f := &OpFuture{fn: func() {}}
	f.Wait()
	return f
}

// writeBatch accumulates consecutive small writes to one FID.
type writeBatch struct {
	fid     uint32
	entries []BatchEntry
	ops     []*oplog.Op // parallel to entries; outcomes filled on resolve
	bytes   int

	resolve sync.Once
	cl      *call // set at flush
	err     error // submit error at flush, or resolution-time wire error
}

// SubmitOp pipelines one operation and returns its future. Submissions from
// one goroutine preserve trace order (and therefore outcome identity);
// concurrent submitters are safe but forfeit determinism, exactly like
// concurrent synchronous callers. The returned future must eventually be
// waited; waits may happen in any order. The anonymous-interface return
// satisfies workload.AsyncFS without the driver importing this package.
func (c *Client) SubmitOp(op *oplog.Op) interface{ Wait() } { return c.submitOp(op) }

func (c *Client) submitOp(op *oplog.Op) *OpFuture {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	switch op.Kind {
	case oplog.KWrite:
		if c.cfg.BatchMaxOps > 1 && len(op.Data) <= c.cfg.BatchMaxBytes {
			return c.submitBatchedWriteLocked(op)
		}
		if err := c.flushBatchLocked(); err != nil {
			return failedFuture(op, err)
		}
		e := &enc{}
		e.u32(uint32(op.FD))
		e.u64(uint64(op.Off))
		e.bytes(op.Data)
		cl, err := c.submit(tWrite, e.b, 0)
		if err != nil {
			return failedFuture(op, err)
		}
		return &OpFuture{fn: func() {
			d, err := c.wait(cl)
			op.Errno = fserr.Errno(err)
			if err == nil {
				op.RetN = int(d.u32())
			}
		}}
	case oplog.KCreate, oplog.KOpen:
		return c.submitFDAllocLocked(op)
	case oplog.KClose:
		return c.submitCloseLocked(op)
	case oplog.KMkdir:
		return c.submitMkdirLocked(op)
	case oplog.KReadProbe:
		return c.submitReadProbeLocked(op)
	case oplog.KStatProbe:
		if err := c.flushBatchLocked(); err != nil {
			return failedFuture(op, err)
		}
		e := &enc{}
		e.str(op.Path)
		cl, err := c.submit(tStat, e.b, 0)
		if err != nil {
			return failedFuture(op, err)
		}
		return &OpFuture{fn: func() {
			d, err := c.wait(cl)
			op.Errno = fserr.Errno(err)
			if err == nil {
				op.RetIno = d.stat().Ino
			}
		}}
	default:
		typ, payload, ok := encodePlain(op)
		if !ok {
			op.Errno = fserr.Errno(fserr.ErrInvalid)
			return doneFuture()
		}
		if err := c.flushBatchLocked(); err != nil {
			return failedFuture(op, err)
		}
		cl, err := c.submit(typ, payload, 0)
		if err != nil {
			return failedFuture(op, err)
		}
		return &OpFuture{fn: func() {
			_, err := c.wait(cl)
			op.Errno = fserr.Errno(err)
		}}
	}
}

// failedFuture records a submission failure as the op's outcome.
func failedFuture(op *oplog.Op, err error) *OpFuture {
	op.Errno = fserr.Errno(err)
	if op.Kind == oplog.KCreate || op.Kind == oplog.KOpen {
		op.RetFD = -1
	}
	return doneFuture()
}

// encodePlain maps the errno-only op kinds onto their request frames.
func encodePlain(op *oplog.Op) (uint8, []byte, bool) {
	e := &enc{}
	switch op.Kind {
	case oplog.KRmdir:
		e.str(op.Path)
		return tRmdir, e.b, true
	case oplog.KTruncate:
		e.str(op.Path)
		e.u64(uint64(op.Size))
		return tTrunc, e.b, true
	case oplog.KUnlink:
		e.str(op.Path)
		return tUnlink, e.b, true
	case oplog.KRename:
		e.str(op.Path)
		e.str(op.Path2)
		return tRename, e.b, true
	case oplog.KLink:
		e.str(op.Path)
		e.str(op.Path2)
		return tLink, e.b, true
	case oplog.KSymlink:
		// Apply's argument order: Symlink(target=Path2, linkPath=Path).
		e.str(op.Path2)
		e.str(op.Path)
		return tSymlink, e.b, true
	case oplog.KSetPerm:
		e.str(op.Path)
		e.u16(op.Perm)
		return tSetPerm, e.b, true
	case oplog.KFsync:
		e.u32(uint32(op.FD))
		return tFsync, e.b, true
	case oplog.KSync:
		return tSync, nil, true
	case oplog.KReadDirProbe:
		e.str(op.Path)
		return tReaddir, e.b, true
	}
	return 0, nil, false
}

// submitMkdirLocked pipelines mkdir. The response carries the new
// directory's inode (the Stat probe oplog.Apply performs), so recording
// RetIno needs no second frame.
func (c *Client) submitMkdirLocked(op *oplog.Op) *OpFuture {
	if err := c.flushBatchLocked(); err != nil {
		return failedFuture(op, err)
	}
	e := &enc{}
	e.str(op.Path)
	e.u16(op.Perm)
	mk, err := c.submit(tMkdir, e.b, 0)
	if err != nil {
		return failedFuture(op, err)
	}
	return &OpFuture{fn: func() {
		d, err := c.wait(mk)
		op.Errno = fserr.Errno(err)
		if err == nil {
			if ino := d.u32(); ino != 0 && d.err() == nil {
				op.RetIno = ino
			}
		}
	}}
}

// submitFDAllocLocked pipelines create/open. The server assigns the FID at
// execution time and returns it with the inode probe's result, so the
// pipeline keeps streaming through descriptor-table ops — descriptor
// determinism is the server's lowest-free allocation, not a client wait.
func (c *Client) submitFDAllocLocked(op *oplog.Op) *OpFuture {
	if err := c.flushBatchLocked(); err != nil {
		return failedFuture(op, err)
	}
	e := &enc{}
	e.str(op.Path)
	typ := uint8(tOpen)
	if op.Kind == oplog.KCreate {
		typ = tCreate
		e.u16(op.Perm)
	}
	main, err := c.submit(typ, e.b, 0)
	if err != nil {
		return failedFuture(op, err)
	}
	return &OpFuture{fn: func() {
		d, err := c.wait(main)
		op.Errno = fserr.Errno(err)
		if err != nil {
			op.RetFD = -1
			return
		}
		fid := d.u32()
		ino := d.u32()
		if d.err() != nil {
			op.Errno = fserr.Errno(fserr.ErrIO)
			op.RetFD = -1
			return
		}
		op.RetFD = fsapi.FD(fid)
		if ino != 0 {
			op.RetIno = ino
		}
		c.trackFID(fid)
	}}
}

// submitCloseLocked pipelines close; the mirror entry drops on any terminal
// outcome, matching the server's release rule.
func (c *Client) submitCloseLocked(op *oplog.Op) *OpFuture {
	if err := c.flushBatchLocked(); err != nil {
		return failedFuture(op, err)
	}
	e := &enc{}
	e.u32(uint32(op.FD))
	cl, err := c.submit(tClose, e.b, 0)
	if err != nil {
		return failedFuture(op, err)
	}
	fd := op.FD
	return &OpFuture{fn: func() {
		_, err := c.wait(cl)
		op.Errno = fserr.Errno(err)
		if fd >= 0 && c.closeReleasesFID(err) {
			c.untrackFID(uint32(fd))
		}
	}}
}

// submitReadProbeLocked pipelines a read, streaming when the probe exceeds a
// chunk — the same decision ReadAt makes.
func (c *Client) submitReadProbeLocked(op *oplog.Op) *OpFuture {
	if err := c.flushBatchLocked(); err != nil {
		return failedFuture(op, err)
	}
	n := int(op.Size)
	if n > c.cfg.StreamChunk {
		cl, err := c.submitReadStreamLocked(op.FD, op.Off, n)
		if err != nil {
			return failedFuture(op, err)
		}
		return &OpFuture{fn: func() {
			b, err := c.collectStream(cl, n)
			op.Errno = fserr.Errno(err)
			op.RetN = len(b)
			op.RetData = b
		}}
	}
	e := &enc{}
	e.u32(uint32(op.FD))
	e.u64(uint64(op.Off))
	e.u32(uint32(n))
	cl, err := c.submit(tRead, e.b, 0)
	if err != nil {
		return failedFuture(op, err)
	}
	return &OpFuture{fn: func() {
		d, err := c.wait(cl)
		op.Errno = fserr.Errno(err)
		if err == nil {
			b := d.bytes()
			op.RetN = len(b)
			op.RetData = b
		}
	}}
}

// submitReadStreamLocked is submitReadStream for callers already holding pmu
// with the batch flushed.
func (c *Client) submitReadStreamLocked(fd fsapi.FD, off int64, n int) (*call, error) {
	e := &enc{}
	e.u32(uint32(fd))
	e.u64(uint64(off))
	e.u32(uint32(n))
	e.u32(uint32(c.cfg.StreamChunk))
	chunks := (n + c.cfg.StreamChunk - 1) / c.cfg.StreamChunk
	if chunks < 1 {
		chunks = 1
	}
	return c.submit(tReadStream, e.b, chunks)
}

// submitBatchedWriteLocked coalesces one small write into the current batch,
// flushing first if the write targets a different FID or would overflow the
// caps.
func (c *Client) submitBatchedWriteLocked(op *oplog.Op) *OpFuture {
	b := c.wb
	if b != nil && (b.fid != uint32(op.FD) ||
		len(b.entries) >= c.cfg.BatchMaxOps ||
		b.bytes+len(op.Data) > c.cfg.BatchMaxBytes) {
		if err := c.flushBatchLocked(); err != nil {
			return failedFuture(op, err)
		}
		b = nil
	}
	if b == nil {
		b = &writeBatch{fid: uint32(op.FD)}
		c.wb = b
	}
	b.entries = append(b.entries, BatchEntry{Off: op.Off, Data: op.Data})
	b.ops = append(b.ops, op)
	b.bytes += len(op.Data)
	return &OpFuture{fn: func() {
		// Flush b if it is still the accumulating batch; if a different
		// batch is current, b was flushed by whatever op displaced it.
		c.pmu.Lock()
		if c.wb == b {
			c.flushBatchLocked() // failure lands in b.err for resolveBatch
		}
		c.pmu.Unlock()
		b.resolveBatch(c)
	}}
}

// flushBatchLocked submits the accumulating write batch, if any. The batch's
// waiters resolve it from the response later; a submission failure is stored
// for them. Callers hold pmu.
func (c *Client) flushBatchLocked() error {
	b := c.wb
	if b == nil {
		return nil
	}
	c.wb = nil
	e := &enc{}
	e.u32(b.fid)
	e.u32(uint32(len(b.entries)))
	for _, be := range b.entries {
		e.u64(uint64(be.Off))
		e.bytes(be.Data)
	}
	b.cl, b.err = c.submit(tWriteBatch, e.b, 0)
	return b.err
}

// resolveBatch waits the batch response once and distributes per-entry
// outcomes to the original write ops.
func (b *writeBatch) resolveBatch(c *Client) {
	b.resolve.Do(func() {
		err := b.err
		var d *dec
		if err == nil {
			d, err = c.wait(b.cl)
		}
		if err != nil {
			for _, op := range b.ops {
				op.Errno = fserr.Errno(err)
			}
			return
		}
		count := int(d.u32())
		for i, op := range b.ops {
			if i >= count {
				op.Errno = fserr.Errno(fserr.ErrIO)
				continue
			}
			errno := int(int32(d.u32()))
			n := int(d.u32())
			if d.bad {
				op.Errno = fserr.Errno(fserr.ErrIO)
				continue
			}
			op.Errno = errno
			if errno == 0 {
				op.RetN = n
			}
		}
	})
}
