// Package faultinject plants executable bug specimens into the base
// filesystem's code paths.
//
// The paper motivates RAE with a study of 256 real ext4 bugs (Table 1),
// classified by determinism (deterministic / non-deterministic) and
// consequence (Crash / WARN / NoCrash / Unknown). This package is the
// executable counterpart of that taxonomy: each Specimen is a synthetic bug
// of one of those classes that can be armed against a live base filesystem,
// so end-to-end experiments exercise recovery for every class the paper
// counts (experiment E9), not just tally them.
//
// The base filesystem exposes injection seams — named points inside its
// operation paths — and calls Fire at each. A specimen whose trigger matches
// performs its consequence: panicking (Crash), emitting a kernel-style WARN,
// silently corrupting the in-flight inode or block (NoCrash/corruption),
// blocking (NoCrash/freeze), or returning a spurious error. Deterministic
// specimens fire on every trigger match — re-executing the same operation
// sequence re-triggers them, which is exactly the conflict between state
// reconstruction and error avoidance (§2.2) that the shadow resolves.
// Non-deterministic specimens fire with a seeded probability.
package faultinject

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/fserr"
	"repro/internal/telemetry"
)

// Consequence mirrors the consequence axis of the paper's Table 1.
type Consequence int

// Consequence values.
const (
	// Crash panics inside the filesystem operation (BUG()-style: null
	// dereference, out-of-bounds, explicit panic).
	Crash Consequence = iota
	// Warn emits a kernel-style WARN record and continues; the supervisor's
	// policy decides whether WARNs trigger recovery.
	Warn
	// SilentCorrupt scribbles on the in-flight inode or block without any
	// immediate symptom; detection is deferred to sync-validate or the
	// shadow's checks (a NoCrash consequence in Table 1's terms).
	SilentCorrupt
	// Freeze blocks the operation (deadlock/livelock); the supervisor's
	// watchdog detects it.
	Freeze
	// ErrReturn makes the operation return a spurious EIO-style error.
	ErrReturn
)

// String returns the consequence name as used in reports.
func (c Consequence) String() string {
	switch c {
	case Crash:
		return "Crash"
	case Warn:
		return "WARN"
	case SilentCorrupt:
		return "SilentCorrupt"
	case Freeze:
		return "Freeze"
	case ErrReturn:
		return "ErrReturn"
	}
	return fmt.Sprintf("Consequence(%d)", int(c))
}

// Site is the context a filesystem seam passes to Fire. Optional fields give
// specimens something to corrupt.
type Site struct {
	// Op is the filesystem operation ("create", "writeat", "rename", ...).
	Op string
	// Point is the seam within the operation ("entry", "alloc", "dirinsert",
	// "exit", ...).
	Point string
	// Path is the primary path argument, when the operation has one.
	Path string
	// InodeSize, when non-nil, lets a specimen corrupt the in-flight inode's
	// size field.
	InodeSize *int64
	// InodePtr, when non-nil, lets a specimen corrupt a block pointer.
	InodePtr *uint32
	// Block, when non-nil, lets a specimen scribble on a raw block buffer.
	Block []byte
	// Warnf emits a WARN record through the filesystem's warning channel.
	Warnf func(format string, args ...any)
}

// Specimen is one plantable bug.
type Specimen struct {
	// ID names the specimen in reports, e.g. "det-crash-create".
	ID string
	// Class is the consequence when the specimen fires.
	Class Consequence
	// Deterministic specimens fire on every trigger match; non-deterministic
	// ones fire with probability Prob on each match.
	Deterministic bool
	// Prob is the per-match firing probability for non-deterministic
	// specimens (ignored for deterministic ones).
	Prob float64
	// Op and Point select the seam; empty matches any.
	Op, Point string
	// PathSubstr, when non-empty, requires the site path to contain it.
	PathSubstr string
	// AfterN skips the first N matches (a bug buried deep in a workload).
	AfterN int
	// FreezeFor is how long a Freeze specimen blocks (default 100ms).
	FreezeFor time.Duration
	// MaxFires caps the number of firings; 0 means unlimited. Transient bugs
	// model "fires once, never again" with MaxFires=1 and Deterministic=false,
	// Prob=1.
	MaxFires int

	matches int
	fires   int
}

// FireRecord describes one specimen firing, for experiment accounting.
type FireRecord struct {
	SpecimenID string
	Class      Consequence
	Op, Point  string
	Seq        int // global firing sequence number
}

// PanicValue is the value specimens panic with, so the supervisor can
// distinguish injected crashes from genuine Go runtime panics in reports
// (both are recovered the same way).
type PanicValue struct {
	SpecimenID string
	Site       string
}

// Error implements error so recovered panics format cleanly.
func (p PanicValue) Error() string {
	return fmt.Sprintf("faultinject: injected crash %s at %s", p.SpecimenID, p.Site)
}

// InjectedErr marks spurious errors returned by ErrReturn specimens.
type InjectedErr struct {
	SpecimenID string
}

// Error implements error.
func (e InjectedErr) Error() string {
	return fmt.Sprintf("faultinject: injected error from %s", e.SpecimenID)
}

// Unwrap makes injected errors indistinguishable from genuine device EIO, so
// the supervisor's fault classification treats them identically.
func (e InjectedErr) Unwrap() error { return fserr.ErrIO }

// Registry holds armed specimens and fires them at seams. It is safe for
// concurrent use. A nil *Registry is valid and fires nothing, so the base
// filesystem can call seams unconditionally.
type Registry struct {
	mu        sync.Mutex
	specimens []*Specimen
	rng       *rand.Rand
	fired     []FireRecord
	disarmed  bool

	sink     *telemetry.Sink
	telArmed *telemetry.Gauge
	telFired *telemetry.Counter
}

// SetTelemetry installs the armed-specimen gauge ("faultinject.armed") and
// the firing counter ("faultinject.fired") from s, and routes a "fault-fired"
// event into s's journal on every firing. Nil receiver and nil sink are both
// no-ops.
func (r *Registry) SetTelemetry(s *telemetry.Sink) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = s
	r.telArmed = s.Gauge("faultinject.armed")
	r.telFired = s.Counter("faultinject.fired")
	r.telArmed.Set(int64(len(r.specimens)))
}

// NewRegistry creates a registry with a deterministic probability stream.
func NewRegistry(seed int64) *Registry {
	return &Registry{rng: rand.New(rand.NewSource(seed))}
}

// Arm adds a specimen. Arming the same ID twice replaces the earlier one.
func (r *Registry) Arm(s *Specimen) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, old := range r.specimens {
		if old.ID == s.ID {
			r.specimens[i] = s
			return
		}
	}
	r.specimens = append(r.specimens, s)
	r.telArmed.Set(int64(len(r.specimens)))
}

// Disarm removes a specimen by ID.
func (r *Registry) Disarm(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range r.specimens {
		if s.ID == id {
			r.specimens = append(r.specimens[:i], r.specimens[i+1:]...)
			r.telArmed.Set(int64(len(r.specimens)))
			return
		}
	}
}

// DisarmAll removes every specimen but keeps the firing history.
func (r *Registry) DisarmAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.specimens = nil
	r.telArmed.Set(0)
}

// SetEnabled globally gates firing without losing armed specimens; the
// supervisor disables injection while the shadow path or baselines run
// support code that must not fault.
func (r *Registry) SetEnabled(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.disarmed = !on
}

// Fired returns the firing history.
func (r *Registry) Fired() []FireRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FireRecord, len(r.fired))
	copy(out, r.fired)
	return out
}

// ResetHistory clears the firing history (between experiment runs).
func (r *Registry) ResetHistory() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fired = nil
}

// Fire evaluates every armed specimen against the site and performs the
// consequence of the first that fires. It returns a non-nil error only for
// ErrReturn specimens; Crash specimens panic; Freeze specimens block before
// returning nil; Warn and SilentCorrupt act through the site and return nil.
func (r *Registry) Fire(site *Site) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.disarmed {
		r.mu.Unlock()
		return nil
	}
	var chosen *Specimen
	for _, s := range r.specimens {
		if !s.matchLocked(site) {
			continue
		}
		s.matches++
		if s.matches <= s.AfterN {
			continue
		}
		if s.MaxFires > 0 && s.fires >= s.MaxFires {
			continue
		}
		if !s.Deterministic && r.rng.Float64() >= s.Prob {
			continue
		}
		s.fires++
		chosen = s
		break
	}
	if chosen == nil {
		r.mu.Unlock()
		return nil
	}
	r.fired = append(r.fired, FireRecord{
		SpecimenID: chosen.ID,
		Class:      chosen.Class,
		Op:         site.Op,
		Point:      site.Point,
		Seq:        len(r.fired),
	})
	freeze := chosen.FreezeFor
	sink := r.sink
	r.telFired.Inc()
	r.mu.Unlock()
	sink.Event("fault-fired", "specimen %s (%s) fired at %s.%s",
		chosen.ID, chosen.Class, site.Op, site.Point)

	switch chosen.Class {
	case Crash:
		panic(PanicValue{SpecimenID: chosen.ID, Site: site.Op + "." + site.Point})
	case Warn:
		if site.Warnf != nil {
			site.Warnf("WARN_ON hit in %s.%s (specimen %s)", site.Op, site.Point, chosen.ID)
		}
	case SilentCorrupt:
		corrupt(site)
	case Freeze:
		if freeze <= 0 {
			freeze = 100 * time.Millisecond
		}
		time.Sleep(freeze)
	case ErrReturn:
		return InjectedErr{SpecimenID: chosen.ID}
	}
	return nil
}

func (s *Specimen) matchLocked(site *Site) bool {
	if s.Op != "" && s.Op != site.Op {
		return false
	}
	if s.Point != "" && s.Point != site.Point {
		return false
	}
	if s.PathSubstr != "" && !strings.Contains(site.Path, s.PathSubstr) {
		return false
	}
	return true
}

// corrupt scribbles on whatever the site exposes, preferring the most
// semantically damaging target available.
func corrupt(site *Site) {
	switch {
	case site.InodePtr != nil:
		// Point a block pointer at the superblock: out of the data region,
		// caught by pointer validation at sync or by the shadow.
		*site.InodePtr = 0
		*site.InodePtr = 1 // metadata region: invalid as a data pointer
	case site.InodeSize != nil:
		*site.InodeSize = -12345
	case len(site.Block) > 0:
		site.Block[len(site.Block)/2] ^= 0xFF
	}
}
