package faultinject

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fserr"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if err := r.Fire(&Site{Op: "create"}); err != nil {
		t.Errorf("nil registry fired: %v", err)
	}
}

func TestDeterministicFiresEveryMatch(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(&Specimen{ID: "d", Class: ErrReturn, Deterministic: true, Op: "create"})
	for i := 0; i < 5; i++ {
		err := r.Fire(&Site{Op: "create"})
		var inj InjectedErr
		if !errors.As(err, &inj) || inj.SpecimenID != "d" {
			t.Fatalf("fire %d: %v", i, err)
		}
		if !errors.Is(err, fserr.ErrIO) {
			t.Fatalf("injected error does not unwrap to EIO: %v", err)
		}
	}
	if got := len(r.Fired()); got != 5 {
		t.Errorf("fired %d times, want 5", got)
	}
}

func TestTriggerMatching(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(&Specimen{ID: "m", Class: ErrReturn, Deterministic: true,
		Op: "unlink", Point: "entry", PathSubstr: "victim"})
	if err := r.Fire(&Site{Op: "create", Point: "entry", Path: "/victim"}); err != nil {
		t.Error("wrong op matched")
	}
	if err := r.Fire(&Site{Op: "unlink", Point: "exit", Path: "/victim"}); err != nil {
		t.Error("wrong point matched")
	}
	if err := r.Fire(&Site{Op: "unlink", Point: "entry", Path: "/other"}); err != nil {
		t.Error("wrong path matched")
	}
	if err := r.Fire(&Site{Op: "unlink", Point: "entry", Path: "/victim-file"}); err == nil {
		t.Error("exact match did not fire")
	}
}

func TestAfterNSkipsEarlyMatches(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(&Specimen{ID: "late", Class: ErrReturn, Deterministic: true, Op: "write", AfterN: 2})
	for i := 0; i < 2; i++ {
		if err := r.Fire(&Site{Op: "write"}); err != nil {
			t.Fatalf("fired on match %d despite AfterN=2", i+1)
		}
	}
	if err := r.Fire(&Site{Op: "write"}); err == nil {
		t.Fatal("did not fire on match 3")
	}
}

func TestMaxFiresBoundsTransientBugs(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(&Specimen{ID: "once", Class: ErrReturn, Deterministic: false, Prob: 1, MaxFires: 1, Op: "sync"})
	if err := r.Fire(&Site{Op: "sync"}); err == nil {
		t.Fatal("transient specimen never fired")
	}
	for i := 0; i < 5; i++ {
		if err := r.Fire(&Site{Op: "sync"}); err != nil {
			t.Fatal("transient specimen fired twice")
		}
	}
}

func TestProbabilisticFiringIsSeeded(t *testing.T) {
	run := func() int {
		r := NewRegistry(77)
		r.Arm(&Specimen{ID: "p", Class: ErrReturn, Prob: 0.3, Op: "op"})
		fires := 0
		for i := 0; i < 200; i++ {
			if err := r.Fire(&Site{Op: "op"}); err != nil {
				fires++
			}
		}
		return fires
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different fire counts: %d vs %d", a, b)
	}
	if a < 30 || a > 90 {
		t.Errorf("0.3 probability fired %d/200 times", a)
	}
}

func TestCrashSpecimenPanicsWithTypedValue(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(&Specimen{ID: "boom", Class: Crash, Deterministic: true, Op: "create"})
	defer func() {
		p := recover()
		pv, ok := p.(PanicValue)
		if !ok {
			t.Fatalf("panic value %T, want PanicValue", p)
		}
		if pv.SpecimenID != "boom" || pv.Error() == "" {
			t.Errorf("panic value = %+v", pv)
		}
	}()
	_ = r.Fire(&Site{Op: "create", Point: "entry"})
	t.Fatal("crash specimen did not panic")
}

func TestWarnSpecimenEmitsViaSite(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(&Specimen{ID: "w", Class: Warn, Deterministic: true, Op: "mkdir"})
	var warned string
	err := r.Fire(&Site{Op: "mkdir", Warnf: func(f string, a ...any) { warned = f }})
	if err != nil {
		t.Fatal(err)
	}
	if warned == "" {
		t.Error("WARN specimen did not emit")
	}
}

func TestSilentCorruptTargets(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(&Specimen{ID: "c", Class: SilentCorrupt, Deterministic: true, Op: "write"})
	size := int64(100)
	ptr := uint32(0)
	if err := r.Fire(&Site{Op: "write", InodePtr: &ptr, InodeSize: &size}); err != nil {
		t.Fatal(err)
	}
	if ptr != 1 {
		t.Errorf("pointer corruption: ptr=%d", ptr)
	}
	if size != 100 {
		t.Errorf("size corrupted when pointer target was available: %d", size)
	}
	// Without a pointer target, the size is hit.
	r2 := NewRegistry(1)
	r2.Arm(&Specimen{ID: "c2", Class: SilentCorrupt, Deterministic: true, Op: "write"})
	size = 100
	_ = r2.Fire(&Site{Op: "write", InodeSize: &size})
	if size == 100 {
		t.Error("size corruption did not happen")
	}
	// Block corruption as the last resort.
	r3 := NewRegistry(1)
	r3.Arm(&Specimen{ID: "c3", Class: SilentCorrupt, Deterministic: true, Op: "write"})
	blk := make([]byte, 64)
	_ = r3.Fire(&Site{Op: "write", Block: blk})
	corrupted := false
	for _, v := range blk {
		if v != 0 {
			corrupted = true
		}
	}
	if !corrupted {
		t.Error("block corruption did not happen")
	}
}

func TestFreezeSpecimenBlocks(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(&Specimen{ID: "f", Class: Freeze, Deterministic: true, Op: "sync",
		FreezeFor: 30 * time.Millisecond})
	start := time.Now()
	if err := r.Fire(&Site{Op: "sync"}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("freeze lasted only %v", d)
	}
}

func TestDisarmAndReplaceAndGate(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(&Specimen{ID: "x", Class: ErrReturn, Deterministic: true, Op: "a"})
	r.Arm(&Specimen{ID: "x", Class: ErrReturn, Deterministic: true, Op: "b"}) // replaces
	if err := r.Fire(&Site{Op: "a"}); err != nil {
		t.Error("replaced specimen still armed on op a")
	}
	if err := r.Fire(&Site{Op: "b"}); err == nil {
		t.Error("replacement not armed")
	}
	r.SetEnabled(false)
	if err := r.Fire(&Site{Op: "b"}); err != nil {
		t.Error("gated registry fired")
	}
	r.SetEnabled(true)
	if err := r.Fire(&Site{Op: "b"}); err == nil {
		t.Error("re-enabled registry did not fire")
	}
	r.Disarm("x")
	if err := r.Fire(&Site{Op: "b"}); err != nil {
		t.Error("disarmed specimen fired")
	}
	r.Arm(&Specimen{ID: "y", Class: ErrReturn, Deterministic: true, Op: "c"})
	r.DisarmAll()
	if err := r.Fire(&Site{Op: "c"}); err != nil {
		t.Error("DisarmAll left specimens armed")
	}
	if len(r.Fired()) == 0 {
		t.Error("history lost by DisarmAll")
	}
	r.ResetHistory()
	if len(r.Fired()) != 0 {
		t.Error("ResetHistory kept records")
	}
}

func TestFireRecordsSequence(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(&Specimen{ID: "s", Class: ErrReturn, Deterministic: true})
	_ = r.Fire(&Site{Op: "a", Point: "p1"})
	_ = r.Fire(&Site{Op: "b", Point: "p2"})
	recs := r.Fired()
	if len(recs) != 2 || recs[0].Seq != 0 || recs[1].Seq != 1 || recs[1].Op != "b" {
		t.Errorf("records = %+v", recs)
	}
}

func TestConsequenceStrings(t *testing.T) {
	for _, c := range []Consequence{Crash, Warn, SilentCorrupt, Freeze, ErrReturn} {
		if c.String() == "" {
			t.Errorf("empty name for %d", int(c))
		}
	}
}
