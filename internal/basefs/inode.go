package basefs

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/disklayout"
	"repro/internal/fserr"
)

// getInode returns the cached inode for ino, reading through the inode cache
// and buffer cache on a miss. Decode always verifies the record checksum;
// pointer validation is skipped unless ExtraChecks (the base's performance
// posture).
func (fs *FS) getInode(ino uint32) (*cache.CachedInode, error) {
	if ino == 0 || ino >= fs.sb.NumInodes {
		return nil, fmt.Errorf("basefs: inode %d out of range: %w", ino, fserr.ErrCorrupt)
	}
	if ci := fs.ic.Get(ino); ci != nil {
		return ci, nil
	}
	blk, off := fs.sb.InodeLoc(ino)
	buf, err := fs.bc.Get(blk)
	if err != nil {
		return nil, err
	}
	rec, err := disklayout.DecodeInode(buf.Data[off : off+disklayout.InodeSize])
	fs.bc.Release(buf)
	if err != nil {
		return nil, fmt.Errorf("basefs: inode %d: %w", ino, err)
	}
	if fs.opts.ExtraChecks {
		if err := rec.ValidatePointers(fs.sb); err != nil {
			return nil, fmt.Errorf("basefs: inode %d: %w", ino, err)
		}
	}
	ci := &cache.CachedInode{Ino: ino, Inode: *rec}
	return fs.ic.Put(ci), nil
}

// getAllocInode is getInode plus the check that the inode is actually
// allocated; reading a free inode through a live reference means the
// namespace is corrupt.
func (fs *FS) getAllocInode(ino uint32) (*cache.CachedInode, error) {
	ci, err := fs.getInode(ino)
	if err != nil {
		return nil, err
	}
	if ci.Inode.IsFree() {
		return nil, fmt.Errorf("basefs: inode %d is free but referenced: %w", ino, fserr.ErrCorrupt)
	}
	return ci, nil
}

// markInodeDirty flags the cached inode for write-back at the next sync.
func (fs *FS) markInodeDirty(ci *cache.CachedInode) { ci.Dirty = true }

// writeInodeBack serializes a cached inode into its inode-table block buffer
// (the sync path calls this for every dirty inode).
func (fs *FS) writeInodeBack(ci *cache.CachedInode) error {
	blk, off := fs.sb.InodeLoc(ci.Ino)
	buf, err := fs.bc.Get(blk)
	if err != nil {
		return err
	}
	disklayout.PutInode(buf.Data[off:], &ci.Inode)
	fs.bc.MarkDirtyMeta(buf)
	fs.bc.Release(buf)
	return nil
}

// allocInode claims the lowest free inode number, initializes its cached
// record, and marks the bitmap dirty. The caller links it into the
// namespace or rolls back with freeInode.
func (fs *FS) allocInode(typ, perm uint16) (*cache.CachedInode, error) {
	fs.allocMu.Lock()
	defer fs.allocMu.Unlock()
	for rel := uint32(0); rel < fs.sb.InodeBitmapLen; rel++ {
		buf, err := fs.bc.Get(fs.sb.InodeBitmapStart + rel)
		if err != nil {
			return nil, err
		}
		limit := fs.sb.NumInodes - rel*disklayout.BitsPerBlock
		if limit > disklayout.BitsPerBlock {
			limit = disklayout.BitsPerBlock
		}
		bit, ok := disklayout.FindFree(buf.Data, 0, limit)
		if !ok {
			fs.bc.Release(buf)
			continue
		}
		disklayout.SetBit(buf.Data, bit)
		fs.bc.MarkDirtyMeta(buf)
		fs.bc.Release(buf)
		ino := rel*disklayout.BitsPerBlock + bit
		ci := &cache.CachedInode{
			Ino: ino,
			Inode: disklayout.Inode{
				Mode: disklayout.MkMode(typ, perm&disklayout.ModePermMask),
			},
			Dirty: true,
		}
		// Reuse bumps the generation of whatever record was there before.
		if old := fs.ic.Get(ino); old != nil {
			ci.Inode.Generation = old.Inode.Generation + 1
			fs.ic.Drop(ino)
		}
		return fs.ic.Put(ci), nil
	}
	return nil, fserr.ErrNoSpace
}

// freeInode returns an inode number to the bitmap and writes a free record
// over it, dropping it from the cache.
func (fs *FS) freeInode(ci *cache.CachedInode) error {
	fs.allocMu.Lock()
	rel := ci.Ino / disklayout.BitsPerBlock
	buf, err := fs.bc.Get(fs.sb.InodeBitmapStart + rel)
	if err != nil {
		fs.allocMu.Unlock()
		return err
	}
	disklayout.ClearBit(buf.Data, ci.Ino%disklayout.BitsPerBlock)
	fs.bc.MarkDirtyMeta(buf)
	fs.bc.Release(buf)
	fs.allocMu.Unlock()

	gen := ci.Inode.Generation
	ci.Inode = disklayout.Inode{Generation: gen}
	ci.Dirty = true
	if err := fs.writeInodeBack(ci); err != nil {
		return err
	}
	ci.Dirty = false
	fs.ic.Drop(ci.Ino)
	return nil
}

// allocBlock claims the lowest free data block and marks the bitmap dirty.
// This is the legacy-layout path, where one physical block is one unit of
// the model's charge; it fails with ErrNoSpace when the logical budget is
// exhausted even if extent slack leaves physical blocks free.
func (fs *FS) allocBlock() (uint32, error) {
	fs.allocMu.Lock()
	defer fs.allocMu.Unlock()
	if fs.usedData+1 > fs.dataBlocks {
		return 0, fserr.ErrNoSpace
	}
	p, err := fs.allocBlockLocked()
	if err == nil {
		fs.usedData++
	}
	return p, err
}

func (fs *FS) allocBlockLocked() (uint32, error) {
	for rel := uint32(0); rel < fs.sb.BlockBitmapLen; rel++ {
		buf, err := fs.bc.Get(fs.sb.BlockBitmapStart + rel)
		if err != nil {
			return 0, err
		}
		limit := fs.sb.NumBlocks - rel*disklayout.BitsPerBlock
		if limit > disklayout.BitsPerBlock {
			limit = disklayout.BitsPerBlock
		}
		bit, ok := disklayout.FindFree(buf.Data, 0, limit)
		if !ok {
			fs.bc.Release(buf)
			continue
		}
		disklayout.SetBit(buf.Data, bit)
		fs.bc.MarkDirtyMeta(buf)
		fs.bc.Release(buf)
		return rel*disklayout.BitsPerBlock + bit, nil
	}
	return 0, fserr.ErrNoSpace
}

// freeBlock returns a data block to the bitmap, releases its unit of the
// logical charge (the legacy-path counterpart of allocBlock), and drops any
// cached buffer.
func (fs *FS) freeBlock(blk uint32) error {
	return fs.freeBlockCharged(blk, true)
}

func (fs *FS) freeBlockCharged(blk uint32, charge bool) error {
	if blk < fs.sb.DataStart || blk >= fs.sb.NumBlocks {
		return fmt.Errorf("basefs: freeing block %d outside data region: %w", blk, fserr.ErrCorrupt)
	}
	fs.allocMu.Lock()
	rel := blk / disklayout.BitsPerBlock
	buf, err := fs.bc.Get(fs.sb.BlockBitmapStart + rel)
	if err != nil {
		fs.allocMu.Unlock()
		return err
	}
	disklayout.ClearBit(buf.Data, blk%disklayout.BitsPerBlock)
	fs.bc.MarkDirtyMeta(buf)
	fs.bc.Release(buf)
	if charge {
		fs.usedData--
	}
	fs.allocMu.Unlock()
	fs.bc.Drop(blk)
	return nil
}

// checkPtr is the base's cheap block-validity guard (the analogue of ext4's
// block_validity): before using a mapped pointer it must land in the data
// region. Violations mean in-memory or on-disk corruption — a detectable
// runtime error.
func (fs *FS) checkPtr(ino, p uint32) error {
	if p < fs.sb.DataStart || p >= fs.sb.NumBlocks {
		return fmt.Errorf("basefs: inode %d maps block %d outside data region [%d,%d): %w",
			ino, p, fs.sb.DataStart, fs.sb.NumBlocks, fserr.ErrCorrupt)
	}
	return nil
}
