package basefs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fsck"
	"repro/internal/mkfs"
)

// The base filesystem is the concurrent half of the paper's pairing; these
// tests drive it from many goroutines (run with -race) and then validate
// the resulting image structurally.

func TestConcurrentDataPathsDifferentFiles(t *testing.T) {
	fs, _ := newFS(t)
	const workers = 8
	fds := make([]fsapi.FD, workers)
	for i := range fds {
		fd, err := fs.Create(fmt.Sprintf("/w%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
		fds[i] = fd
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('A' + w)}, 1000)
			for i := 0; i < 30; i++ {
				if _, err := fs.WriteAt(fds[w], int64(i)*1000, payload); err != nil {
					t.Errorf("w%d write %d: %v", w, i, err)
					return
				}
				got, err := fs.ReadAt(fds[w], int64(i)*1000, 1000)
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("w%d read %d mismatch: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every file intact after the storm.
	for w := 0; w < workers; w++ {
		st, err := fs.Fstat(fds[w])
		if err != nil || st.Size != 30*1000 {
			t.Errorf("w%d final size %d err %v", w, st.Size, err)
		}
		fs.Close(fds[w])
	}
}

func TestConcurrentNamespaceChurn(t *testing.T) {
	fs, dev := newFS(t)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dir := fmt.Sprintf("/dir%d", w)
			if err := fs.Mkdir(dir, 0o755); err != nil {
				t.Errorf("mkdir: %v", err)
				return
			}
			for i := 0; i < 40; i++ {
				p := fmt.Sprintf("%s/f%d", dir, i)
				fd, err := fs.Create(p, 0o644)
				if err != nil {
					t.Errorf("create %s: %v", p, err)
					return
				}
				if _, err := fs.WriteAt(fd, 0, []byte(p)); err != nil {
					t.Errorf("write %s: %v", p, err)
				}
				if err := fs.Close(fd); err != nil {
					t.Errorf("close %s: %v", p, err)
				}
				if i%3 == 0 {
					if err := fs.Unlink(p); err != nil {
						t.Errorf("unlink %s: %v", p, err)
					}
				}
				if i%7 == 0 {
					_ = fs.Rename(p, p+"-renamed")
				}
			}
		}(w)
	}
	wg.Wait()
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	rep := fsck.Check(dev)
	for _, p := range rep.Problems {
		if p.Severity == fsck.Corrupt {
			t.Errorf("post-churn image corrupt: %s", p)
		}
	}
}

func TestConcurrentReadersScaleWithoutErrors(t *testing.T) {
	fs, _ := newFS(t)
	fd, _ := fs.Create("/shared", 0o644)
	want := bytes.Repeat([]byte("read-mostly "), 512)
	if _, err := fs.WriteAt(fd, 0, want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			myFD, err := fs.Open("/shared")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			defer fs.Close(myFD)
			for i := 0; i < 100; i++ {
				got, err := fs.ReadAt(myFD, 0, len(want))
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("read %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	fs.Close(fd)
}

func TestConcurrentSyncAndWrites(t *testing.T) {
	fs, dev := newFS(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := fs.Sync(); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fd, err := fs.Create(fmt.Sprintf("/s%d", w), 0o644)
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			for i := 0; i < 50; i++ {
				if _, err := fs.WriteAt(fd, int64(i*100), []byte("data under sync")); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
			fs.Close(fd)
		}(w)
	}
	// Let the writers finish, then stop the syncer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers signal completion by the WaitGroup; the syncer needs the stop.
	// Close stop once writers are done: poll via a second WaitGroup would be
	// cleaner, but the simplest is to close after Wait in a helper.
	<-func() chan struct{} {
		ch := make(chan struct{})
		go func() {
			// Wait for the four writers by re-checking file sizes.
			for {
				ready := 0
				for w := 0; w < 4; w++ {
					st, err := fs.Stat(fmt.Sprintf("/s%d", w))
					if err == nil && st.Size >= 49*100 {
						ready++
					}
				}
				if ready == 4 {
					close(ch)
					return
				}
			}
		}()
		return ch
	}()
	close(stop)
	<-done
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if rep := fsck.Check(dev); !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("%s", p)
		}
	}
}

// TestCrashDuringSyncStormIsAlwaysConsistent is the crash-consistency
// property: snapshot the device at arbitrary moments while a workload with
// frequent syncs runs, journal-replay each snapshot, and require fsck-clean
// structure every time (synced files present and intact).
func TestCrashDuringSyncStormIsAlwaysConsistent(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		dev := blockdev.NewMem(2048)
		if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 256, JournalBlocks: 32}); err != nil {
			t.Fatal(err)
		}
		fs, err := Mount(dev, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var snaps []*blockdev.Mem
		for i := 0; i < 30; i++ {
			p := fmt.Sprintf("/t%d-%d", trial, i)
			fd, err := fs.Create(p, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs.WriteAt(fd, 0, bytes.Repeat([]byte{byte(i)}, 600)); err != nil {
				t.Fatal(err)
			}
			if err := fs.Close(fd); err != nil {
				t.Fatal(err)
			}
			if i%4 == trial%4 {
				if err := fs.Sync(); err != nil {
					t.Fatal(err)
				}
			}
			snaps = append(snaps, dev.Snapshot())
		}
		fs.Kill()
		for si, snap := range snaps {
			if _, _, err := mkfs.Recover(snap); err != nil {
				t.Fatalf("trial %d snap %d: replay: %v", trial, si, err)
			}
			rep := fsck.Check(snap)
			if !rep.Clean() {
				for _, p := range rep.Problems {
					t.Errorf("trial %d snap %d: %s", trial, si, p)
				}
				t.Fatal("crash snapshot structurally corrupt")
			}
			// Files that were synced before the snapshot must be readable
			// and intact.
			fs2, err := Mount(snap, Options{})
			if err != nil {
				t.Fatalf("trial %d snap %d: mount: %v", trial, si, err)
			}
			ents, err := fs2.Readdir("/")
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				fd, err := fs2.Open("/" + e.Name)
				if err != nil {
					t.Fatalf("open %s: %v", e.Name, err)
				}
				if _, err := fs2.ReadAt(fd, 0, 600); err != nil {
					t.Fatalf("read %s: %v", e.Name, err)
				}
				fs2.Close(fd)
			}
			fs2.Kill()
		}
	}
}

func TestDoubleDigitDirectoryGrowthUnderBlockSizeMath(t *testing.T) {
	// Boundary check: exactly DirentsPerBlock entries fit one block; the
	// next entry grows the directory.
	fs, _ := newFS(t)
	if err := fs.Mkdir("/pack", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < disklayout.DirentsPerBlock; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/pack/d%02d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := fs.Stat("/pack")
	if st.Size != disklayout.BlockSize {
		t.Errorf("size after %d entries = %d, want one block", disklayout.DirentsPerBlock, st.Size)
	}
	if err := fs.Mkdir("/pack/overflow", 0o755); err != nil {
		t.Fatal(err)
	}
	st, _ = fs.Stat("/pack")
	if st.Size != 2*disklayout.BlockSize {
		t.Errorf("size after overflow = %d, want two blocks", st.Size)
	}
}
