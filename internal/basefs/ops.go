package basefs

import (
	"repro/internal/cache"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// Mkdir implements fsapi.FS.
func (fs *FS) Mkdir(path string, perm uint16) error {
	t := fs.opTimer("mkdir")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.fire(&faultinject.Site{Op: "mkdir", Point: "entry", Path: path}); err != nil {
		return err
	}
	parent, name, err := fs.walkParent(path)
	if err != nil {
		return err
	}
	if _, err := fs.dirLookup(parent, name); err == nil {
		return fserr.ErrExist
	} else if err != fserr.ErrNotExist {
		return err
	}
	ci, err := fs.allocInode(disklayout.TypeDir, perm)
	if err != nil {
		return err
	}
	ci.Inode.Nlink = 2
	if err := fs.fire(&faultinject.Site{
		Op: "mkdir", Point: "alloc", Path: path,
		InodeSize: &ci.Inode.Size, InodePtr: &ci.Inode.Direct[0],
	}); err != nil {
		return err
	}
	if err := fs.dirInsert(parent, name, ci.Ino); err != nil {
		_ = fs.freeInode(ci)
		return err
	}
	now := fs.tick()
	ci.Inode.Mtime, ci.Inode.Ctime = now, now
	parent.Inode.Nlink++
	parent.Inode.Mtime, parent.Inode.Ctime = now, now
	fs.markInodeDirty(parent)
	fs.markInodeDirty(ci)
	return fs.fire(&faultinject.Site{Op: "mkdir", Point: "exit", Path: path})
}

// Rmdir implements fsapi.FS.
func (fs *FS) Rmdir(path string) error {
	t := fs.opTimer("rmdir")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.fire(&faultinject.Site{Op: "rmdir", Point: "entry", Path: path}); err != nil {
		return err
	}
	parent, name, err := fs.walkParent(path)
	if err != nil {
		return err
	}
	ino, err := fs.dirLookup(parent, name)
	if err != nil {
		return err
	}
	ci, err := fs.getAllocInode(ino)
	if err != nil {
		return err
	}
	if !ci.Inode.IsDir() {
		return fserr.ErrNotDir
	}
	empty, err := fs.dirIsEmpty(ci)
	if err != nil {
		return err
	}
	if !empty {
		return fserr.ErrNotEmpty
	}
	if err := fs.dirRemove(parent, name); err != nil {
		return err
	}
	fs.dc.InvalidateDir(ino)
	// Free the directory's blocks and inode.
	if err := fs.freeAllBlocks(ci); err != nil {
		return err
	}
	if err := fs.freeInode(ci); err != nil {
		return err
	}
	now := fs.tick()
	parent.Inode.Nlink--
	parent.Inode.Mtime, parent.Inode.Ctime = now, now
	fs.markInodeDirty(parent)
	return fs.fire(&faultinject.Site{Op: "rmdir", Point: "exit", Path: path})
}

// Create implements fsapi.FS.
func (fs *FS) Create(path string, perm uint16) (fsapi.FD, error) {
	t := fs.opTimer("create")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.fire(&faultinject.Site{Op: "create", Point: "entry", Path: path}); err != nil {
		return -1, err
	}
	parent, name, err := fs.walkParent(path)
	if err != nil {
		return -1, err
	}
	if _, err := fs.dirLookup(parent, name); err == nil {
		return -1, fserr.ErrExist
	} else if err != fserr.ErrNotExist {
		return -1, err
	}
	ci, err := fs.allocInode(disklayout.TypeFile, perm)
	if err != nil {
		return -1, err
	}
	ci.Inode.Nlink = 1
	if !fs.opts.LegacyLayout {
		ci.Inode.Flags |= disklayout.FlagExtents
		fs.telExtFiles.Inc()
	}
	if err := fs.fire(&faultinject.Site{
		Op: "create", Point: "alloc", Path: path,
		InodeSize: &ci.Inode.Size, InodePtr: &ci.Inode.Direct[0],
	}); err != nil {
		return -1, err
	}
	if err := fs.dirInsert(parent, name, ci.Ino); err != nil {
		_ = fs.freeInode(ci)
		return -1, err
	}
	now := fs.tick()
	ci.Inode.Mtime, ci.Inode.Ctime = now, now
	parent.Inode.Mtime, parent.Inode.Ctime = now, now
	fs.markInodeDirty(parent)
	fs.markInodeDirty(ci)
	fd := fs.allocFDLocked()
	fs.fds[fd] = &fdEntry{ino: ci.Ino}
	ci.Opens++
	if err := fs.fire(&faultinject.Site{Op: "create", Point: "exit", Path: path}); err != nil {
		return -1, err
	}
	return fd, nil
}

// Open implements fsapi.FS.
func (fs *FS) Open(path string) (fsapi.FD, error) {
	t := fs.opTimer("open")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.fire(&faultinject.Site{Op: "open", Point: "entry", Path: path}); err != nil {
		return -1, err
	}
	ci, err := fs.walkPath(path)
	if err != nil {
		return -1, err
	}
	switch ci.Inode.Type() {
	case disklayout.TypeDir:
		return -1, fserr.ErrIsDir
	case disklayout.TypeSym:
		return -1, fserr.ErrInvalid
	}
	fd := fs.allocFDLocked()
	fs.fds[fd] = &fdEntry{ino: ci.Ino}
	ci.Opens++
	return fd, nil
}

func (fs *FS) allocFDLocked() fsapi.FD {
	for fd := fsapi.FD(0); ; fd++ {
		if _, used := fs.fds[fd]; !used {
			return fd
		}
	}
}

// Close implements fsapi.FS.
func (fs *FS) Close(fd fsapi.FD) error {
	t := fs.opTimer("close")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, ok := fs.fds[fd]
	if !ok {
		return errBadFD(fd)
	}
	delete(fs.fds, fd)
	ci, err := fs.getAllocInode(e.ino)
	if err != nil {
		return err
	}
	ci.Opens--
	if ci.Inode.Nlink == 0 && ci.Opens == 0 {
		// Last reference to an orphan: release its storage.
		if err := fs.freeAllBlocks(ci); err != nil {
			return err
		}
		if ci.Inode.Type() == disklayout.TypeSym {
			// Symlink targets live in Direct[0], freed by freeAllBlocks.
			_ = ci
		}
		if err := fs.freeInode(ci); err != nil {
			return err
		}
	}
	return nil
}

// lookupFD resolves a descriptor to its inode under the read lock.
func (fs *FS) lookupFD(fd fsapi.FD) (*cache.CachedInode, error) {
	e, ok := fs.fds[fd]
	if !ok {
		return nil, errBadFD(fd)
	}
	return fs.getAllocInode(e.ino)
}

// ReadAt implements fsapi.FS. Reads of holes return zeros; reads never
// update atime (noatime semantics).
func (fs *FS) ReadAt(fd fsapi.FD, off int64, n int) ([]byte, error) {
	t := fs.opTimer("readat")
	defer t.Stop()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if err := fs.fire(&faultinject.Site{Op: "readat", Point: "entry"}); err != nil {
		return nil, err
	}
	ci, err := fs.lookupFD(fd)
	if err != nil {
		return nil, err
	}
	if off < 0 || n < 0 {
		return nil, fserr.ErrInvalid
	}
	ci.Mu.Lock()
	defer ci.Mu.Unlock()
	size := ci.Inode.Size
	if off >= size {
		return []byte{}, nil
	}
	end := off + int64(n)
	if end > size {
		end = size
	}
	out := make([]byte, end-off)
	if ci.Inode.IsExtents() {
		if err := fs.extReadInto(ci, off, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	for pos := off; pos < end; {
		bi := pos / disklayout.BlockSize
		boff := pos % disklayout.BlockSize
		chunk := disklayout.BlockSize - boff
		if pos+chunk > end {
			chunk = end - pos
		}
		p, err := fs.bmap(ci, bi)
		if err != nil {
			return nil, err
		}
		if p != 0 {
			buf, err := fs.bc.Get(p)
			if err != nil {
				return nil, err
			}
			copy(out[pos-off:], buf.Data[boff:boff+chunk])
			fs.bc.Release(buf)
		}
		pos += chunk
	}
	return out, nil
}

// WriteAt implements fsapi.FS, block by block so a mid-write ENOSPC yields
// the same short-write outcome as the specification model.
func (fs *FS) WriteAt(fd fsapi.FD, off int64, data []byte) (int, error) {
	t := fs.opTimer("writeat")
	defer t.Stop()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if err := fs.fire(&faultinject.Site{Op: "writeat", Point: "entry"}); err != nil {
		return 0, err
	}
	ci, err := fs.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fserr.ErrInvalid
	}
	if len(data) == 0 {
		return 0, nil
	}
	if off+int64(len(data)) > disklayout.MaxFileSize {
		return 0, fserr.ErrTooBig
	}
	ci.Mu.Lock()
	defer ci.Mu.Unlock()
	// The corruption target must be a pointer word the sync path persists
	// as-is: on extent inodes Direct[0] is inline-extent storage that
	// materialization rewrites, so scribble DblIndir (must be zero there)
	// instead.
	ptrWord := &ci.Inode.Direct[0]
	if ci.Inode.IsExtents() {
		ptrWord = &ci.Inode.DblIndir
	}
	if err := fs.fire(&faultinject.Site{
		Op: "writeat", Point: "inode",
		InodeSize: &ci.Inode.Size, InodePtr: ptrWord,
	}); err != nil {
		return 0, err
	}
	written := 0
	end := off + int64(len(data))
	var werr error
	if ci.Inode.IsExtents() {
		written, werr = fs.extWriteBlocks(ci, off, data)
	} else {
		for pos := off; pos < end; {
			bi := pos / disklayout.BlockSize
			boff := pos % disklayout.BlockSize
			chunk := disklayout.BlockSize - boff
			if pos+chunk > end {
				chunk = end - pos
			}
			p, err := fs.bmapAlloc(ci, bi)
			if err != nil {
				werr = err
				break
			}
			buf, err := fs.bc.Get(p)
			if err != nil {
				werr = err
				break
			}
			copy(buf.Data[boff:boff+chunk], data[written:written+int(chunk)])
			fs.bc.MarkDirty(buf)
			fs.bc.Release(buf)
			written += int(chunk)
			pos += chunk
		}
	}
	if written > 0 {
		if off+int64(written) > ci.Inode.Size {
			ci.Inode.Size = off + int64(written)
		}
		now := fs.tick()
		ci.Inode.Mtime, ci.Inode.Ctime = now, now
		fs.markInodeDirty(ci)
	}
	return written, werr
}

// Truncate implements fsapi.FS.
func (fs *FS) Truncate(path string, size int64) error {
	t := fs.opTimer("truncate")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.fire(&faultinject.Site{Op: "truncate", Point: "entry", Path: path}); err != nil {
		return err
	}
	ci, err := fs.walkPath(path)
	if err != nil {
		return err
	}
	if ci.Inode.IsDir() {
		return fserr.ErrIsDir
	}
	if !ci.Inode.IsFile() {
		return fserr.ErrInvalid
	}
	if size < 0 || size > disklayout.MaxFileSize {
		return fserr.ErrInvalid
	}
	old := ci.Inode.Size
	switch {
	case size < old:
		keep := (size + disklayout.BlockSize - 1) / disklayout.BlockSize
		if ci.Inode.IsExtents() {
			if err := fs.truncateExtents(ci, keep); err != nil {
				return err
			}
		} else if err := fs.truncateBlocks(ci, keep); err != nil {
			return err
		}
		// Zero the tail of the last kept block so a later extension reads
		// zeros, as POSIX requires. A truncate can demote an over-fragmented
		// extent file, so re-check the layout here.
		if ci.Inode.IsExtents() {
			if err := fs.extZeroTail(ci, size); err != nil {
				return err
			}
		} else if tail := size % disklayout.BlockSize; tail != 0 {
			p, err := fs.bmap(ci, size/disklayout.BlockSize)
			if err != nil {
				return err
			}
			if p != 0 {
				buf, err := fs.bc.Get(p)
				if err != nil {
					return err
				}
				for i := tail; i < disklayout.BlockSize; i++ {
					buf.Data[i] = 0
				}
				fs.bc.MarkDirty(buf)
				fs.bc.Release(buf)
			}
		}
		ci.Inode.Size = size
	case size > old:
		ci.Inode.Size = size // extension is a hole
	}
	now := fs.tick()
	ci.Inode.Mtime, ci.Inode.Ctime = now, now
	fs.markInodeDirty(ci)
	return nil
}

// Unlink implements fsapi.FS. An inode that is still open survives as an
// orphan until its last descriptor closes.
func (fs *FS) Unlink(path string) error {
	t := fs.opTimer("unlink")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.fire(&faultinject.Site{Op: "unlink", Point: "entry", Path: path}); err != nil {
		return err
	}
	parent, name, err := fs.walkParent(path)
	if err != nil {
		return err
	}
	ino, err := fs.dirLookup(parent, name)
	if err != nil {
		return err
	}
	ci, err := fs.getAllocInode(ino)
	if err != nil {
		return err
	}
	if ci.Inode.IsDir() {
		return fserr.ErrIsDir
	}
	if err := fs.dirRemove(parent, name); err != nil {
		return err
	}
	now := fs.tick()
	ci.Inode.Nlink--
	ci.Inode.Ctime = now
	parent.Inode.Mtime, parent.Inode.Ctime = now, now
	fs.markInodeDirty(parent)
	if err := fs.fire(&faultinject.Site{Op: "unlink", Point: "drop", Path: path,
		InodeSize: &ci.Inode.Size, InodePtr: &ci.Inode.Direct[0]}); err != nil {
		return err
	}
	if ci.Inode.Nlink == 0 && ci.Opens == 0 {
		if err := fs.freeAllBlocks(ci); err != nil {
			return err
		}
		return fs.freeInode(ci)
	}
	fs.markInodeDirty(ci)
	return nil
}

// Rename implements fsapi.FS.
func (fs *FS) Rename(oldPath, newPath string) error {
	t := fs.opTimer("rename")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.fire(&faultinject.Site{Op: "rename", Point: "entry", Path: oldPath}); err != nil {
		return err
	}
	oldComps, err := fsapi.SplitPath(oldPath)
	if err != nil {
		return err
	}
	newComps, err := fsapi.SplitPath(newPath)
	if err != nil {
		return err
	}
	if len(oldComps) == 0 || len(newComps) == 0 {
		return fserr.ErrInvalid
	}
	if pathEqual(oldComps, newComps) {
		if _, err := fs.walk(oldComps); err != nil {
			return err
		}
		return nil
	}
	if len(newComps) > len(oldComps) && pathEqual(oldComps, newComps[:len(oldComps)]) {
		return fserr.ErrInvalid
	}
	oldParent, err := fs.walk(oldComps[:len(oldComps)-1])
	if err != nil {
		return err
	}
	if !oldParent.Inode.IsDir() {
		return fserr.ErrNotDir
	}
	oldName := oldComps[len(oldComps)-1]
	srcIno, err := fs.dirLookup(oldParent, oldName)
	if err != nil {
		return err
	}
	src, err := fs.getAllocInode(srcIno)
	if err != nil {
		return err
	}
	newParent, err := fs.walk(newComps[:len(newComps)-1])
	if err != nil {
		return err
	}
	if !newParent.Inode.IsDir() {
		return fserr.ErrNotDir
	}
	newName := newComps[len(newComps)-1]
	if err := disklayout.ValidName(newName); err != nil {
		return err
	}
	if dstIno, err := fs.dirLookup(newParent, newName); err == nil {
		if dstIno == srcIno {
			return nil // hard links to the same inode
		}
		dst, err := fs.getAllocInode(dstIno)
		if err != nil {
			return err
		}
		if src.Inode.IsDir() {
			if !dst.Inode.IsDir() {
				return fserr.ErrNotDir
			}
			empty, err := fs.dirIsEmpty(dst)
			if err != nil {
				return err
			}
			if !empty {
				return fserr.ErrNotEmpty
			}
		} else if dst.Inode.IsDir() {
			return fserr.ErrIsDir
		}
		// Point the existing slot at src, then drop the old target.
		if err := fs.dirReplace(newParent, newName, srcIno); err != nil {
			return err
		}
		if dst.Inode.IsDir() {
			newParent.Inode.Nlink--
			fs.dc.InvalidateDir(dstIno)
			dst.Inode.Nlink = 0
		} else {
			dst.Inode.Nlink--
		}
		if dst.Inode.Nlink == 0 && dst.Opens == 0 {
			if err := fs.freeAllBlocks(dst); err != nil {
				return err
			}
			if err := fs.freeInode(dst); err != nil {
				return err
			}
		} else {
			fs.markInodeDirty(dst)
		}
	} else if err != fserr.ErrNotExist {
		return err
	} else {
		if err := fs.dirInsert(newParent, newName, srcIno); err != nil {
			return err
		}
	}
	if err := fs.dirRemove(oldParent, oldName); err != nil {
		return err
	}
	if src.Inode.IsDir() && oldParent != newParent {
		oldParent.Inode.Nlink--
		newParent.Inode.Nlink++
	}
	now := fs.tick()
	src.Inode.Ctime = now
	oldParent.Inode.Mtime, oldParent.Inode.Ctime = now, now
	newParent.Inode.Mtime, newParent.Inode.Ctime = now, now
	fs.markInodeDirty(src)
	fs.markInodeDirty(oldParent)
	fs.markInodeDirty(newParent)
	return fs.fire(&faultinject.Site{Op: "rename", Point: "exit", Path: newPath})
}

func pathEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Link implements fsapi.FS.
func (fs *FS) Link(oldPath, newPath string) error {
	t := fs.opTimer("link")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.fire(&faultinject.Site{Op: "link", Point: "entry", Path: oldPath}); err != nil {
		return err
	}
	src, err := fs.walkPath(oldPath)
	if err != nil {
		return err
	}
	if src.Inode.IsDir() {
		return fserr.ErrIsDir
	}
	parent, name, err := fs.walkParent(newPath)
	if err != nil {
		return err
	}
	if _, err := fs.dirLookup(parent, name); err == nil {
		return fserr.ErrExist
	} else if err != fserr.ErrNotExist {
		return err
	}
	if err := fs.dirInsert(parent, name, src.Ino); err != nil {
		return err
	}
	now := fs.tick()
	src.Inode.Nlink++
	src.Inode.Ctime = now
	parent.Inode.Mtime, parent.Inode.Ctime = now, now
	fs.markInodeDirty(src)
	fs.markInodeDirty(parent)
	return nil
}

// Symlink implements fsapi.FS. The target occupies one data block.
func (fs *FS) Symlink(target, linkPath string) error {
	t := fs.opTimer("symlink")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.fire(&faultinject.Site{Op: "symlink", Point: "entry", Path: linkPath}); err != nil {
		return err
	}
	if len(target) > disklayout.BlockSize {
		return fserr.ErrNameTooLong
	}
	if target == "" {
		return fserr.ErrInvalid
	}
	parent, name, err := fs.walkParent(linkPath)
	if err != nil {
		return err
	}
	if _, err := fs.dirLookup(parent, name); err == nil {
		return fserr.ErrExist
	} else if err != fserr.ErrNotExist {
		return err
	}
	ci, err := fs.allocInode(disklayout.TypeSym, 0o777)
	if err != nil {
		return err
	}
	ci.Inode.Nlink = 1
	blk, err := fs.allocBlock()
	if err != nil {
		_ = fs.freeInode(ci)
		return err
	}
	buf := fs.zeroBlock(blk, false)
	copy(buf.Data, target)
	fs.bc.Release(buf)
	ci.Inode.Direct[0] = blk
	ci.Inode.Size = int64(len(target))
	if err := fs.dirInsert(parent, name, ci.Ino); err != nil {
		_ = fs.freeBlock(blk)
		_ = fs.freeInode(ci)
		return err
	}
	now := fs.tick()
	ci.Inode.Mtime, ci.Inode.Ctime = now, now
	parent.Inode.Mtime, parent.Inode.Ctime = now, now
	fs.markInodeDirty(parent)
	fs.markInodeDirty(ci)
	return nil
}

// Readlink implements fsapi.FS.
func (fs *FS) Readlink(path string) (string, error) {
	t := fs.opTimer("readlink")
	defer t.Stop()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ci, err := fs.walkPath(path)
	if err != nil {
		return "", err
	}
	if ci.Inode.Type() != disklayout.TypeSym {
		return "", fserr.ErrInvalid
	}
	if ci.Inode.Direct[0] == 0 {
		return "", fserr.ErrCorrupt
	}
	buf, err := fs.bc.Get(ci.Inode.Direct[0])
	if err != nil {
		return "", err
	}
	target := string(buf.Data[:ci.Inode.Size])
	fs.bc.Release(buf)
	return target, nil
}

func (fs *FS) statOf(ci *cache.CachedInode) fsapi.Stat {
	return fsapi.Stat{
		Ino:   ci.Ino,
		Mode:  ci.Inode.Mode,
		Nlink: ci.Inode.Nlink,
		Size:  ci.Inode.Size,
		Mtime: ci.Inode.Mtime,
		Ctime: ci.Inode.Ctime,
	}
}

// Stat implements fsapi.FS.
func (fs *FS) Stat(path string) (fsapi.Stat, error) {
	t := fs.opTimer("stat")
	defer t.Stop()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ci, err := fs.walkPath(path)
	if err != nil {
		return fsapi.Stat{}, err
	}
	// Data-path fields (size, times) are guarded by the inode lock against
	// concurrent writers, which also run under the shared namespace lock.
	ci.Mu.Lock()
	defer ci.Mu.Unlock()
	return fs.statOf(ci), nil
}

// Fstat implements fsapi.FS.
func (fs *FS) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	t := fs.opTimer("fstat")
	defer t.Stop()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ci, err := fs.lookupFD(fd)
	if err != nil {
		return fsapi.Stat{}, err
	}
	ci.Mu.Lock()
	defer ci.Mu.Unlock()
	return fs.statOf(ci), nil
}

// Readdir implements fsapi.FS.
func (fs *FS) Readdir(path string) ([]fsapi.DirEntry, error) {
	t := fs.opTimer("readdir")
	defer t.Stop()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if err := fs.fire(&faultinject.Site{Op: "readdir", Point: "entry", Path: path}); err != nil {
		return nil, err
	}
	ci, err := fs.walkPath(path)
	if err != nil {
		return nil, err
	}
	if !ci.Inode.IsDir() {
		return nil, fserr.ErrNotDir
	}
	return fs.dirList(ci)
}

// SetPerm implements fsapi.FS.
func (fs *FS) SetPerm(path string, perm uint16) error {
	t := fs.opTimer("setperm")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.fire(&faultinject.Site{Op: "setperm", Point: "entry", Path: path}); err != nil {
		return err
	}
	ci, err := fs.walkPath(path)
	if err != nil {
		return err
	}
	ci.Inode.Mode = disklayout.MkMode(ci.Inode.Type(), perm)
	ci.Inode.Ctime = fs.tick()
	fs.markInodeDirty(ci)
	return nil
}
