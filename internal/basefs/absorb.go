package basefs

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/handoff"
)

// Absorb is the base's metadata-downloading interface (§3.2): it re-verifies
// the shadow's update and places every block into the buffer cache marked
// dirty, restores the descriptor table, and continues the logical clock. It
// "reuses existing logic to place them into its cache" — Install is the same
// entry point every internal path uses — so the trusted surface stays small.
//
// Absorb is called on a freshly mounted instance during recovery, before any
// new operations are admitted. It adopts the update's block slices (the
// cache serves them directly), so the caller must pass an update it owns —
// the single defensive copy lives at the handoff-sealing boundary.
func (fs *FS) Absorb(u *handoff.Update) error {
	if err := u.Verify(); err != nil {
		return fmt.Errorf("basefs: absorb rejected: %w", err)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, blk := range u.SortedBlocks() {
		if err := fs.checkAbsorbRange(blk); err != nil {
			return err
		}
		fs.bc.Install(blk, u.Blocks[blk], u.Meta[blk])
	}
	return fs.restoreLocked(u.FDs, u.Clock)
}

func (fs *FS) checkAbsorbRange(blk uint32) error {
	if blk == 0 || blk >= fs.sb.NumBlocks {
		return fmt.Errorf("basefs: absorb block %d out of range: %w", blk, fserr.ErrCorrupt)
	}
	if blk >= fs.sb.JournalStart && blk < fs.sb.JournalStart+fs.sb.JournalLen {
		return fmt.Errorf("basefs: absorb block %d targets the journal region: %w", blk, fserr.ErrCorrupt)
	}
	return nil
}

// restoreLocked installs the recovered descriptor table and continues the
// logical clock; the final step of both monolithic and streaming absorption.
// Each inode must decode and be allocated in the absorbed state; that read
// goes through the just-installed buffers.
func (fs *FS) restoreLocked(fds []handoff.FDEntry, clock uint64) error {
	// The absorbed bitmaps and inode table replace whatever the mount seeded
	// the space accounting from; recompute it over the installed state. Any
	// stale per-file extent state is invalidated wholesale.
	fs.delMu.Lock()
	fs.delalloc = make(map[uint32]*delFile)
	fs.delMu.Unlock()
	if err := fs.seedAccounting(); err != nil {
		return fmt.Errorf("basefs: absorb accounting: %w", err)
	}
	fs.fds = make(map[fsapi.FD]*fdEntry, len(fds))
	for _, e := range fds {
		ci, err := fs.getAllocInode(e.Ino)
		if err != nil {
			return fmt.Errorf("basefs: absorb fd %d -> inode %d: %w", e.FD, e.Ino, err)
		}
		if ci.Inode.IsDir() {
			return fmt.Errorf("basefs: absorb fd %d maps to a directory: %w", e.FD, fserr.ErrCorrupt)
		}
		fs.fds[e.FD] = &fdEntry{ino: e.Ino}
		ci.Opens++
	}
	if clock > fs.clock.Load() {
		fs.clock.Store(clock)
	}
	return nil
}

// AbsorbChunk installs one sealed chunk of a streaming handoff while the
// shadow may still be replaying the tail. Chunks must arrive in index order;
// each is verified individually, and its checksum is recorded so
// AbsorbManifest can later prove the stream arrived complete and unreordered.
// Freed blocks retract earlier installs. Like Absorb, block slices are
// adopted, not copied.
func (fs *FS) AbsorbChunk(c *handoff.Chunk) error {
	if err := c.Verify(); err != nil {
		return fmt.Errorf("basefs: absorb rejected: %w", err)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if c.Index != fs.absorbNext {
		return fmt.Errorf("basefs: absorb chunk %d, expected %d: %w", c.Index, fs.absorbNext, fserr.ErrCorrupt)
	}
	for _, blk := range c.SortedBlocks() {
		if err := fs.checkAbsorbRange(blk); err != nil {
			return err
		}
		fs.bc.Install(blk, c.Blocks[blk], c.Meta[blk])
	}
	for _, blk := range c.Freed {
		if err := fs.checkAbsorbRange(blk); err != nil {
			return err
		}
		fs.bc.Drop(blk)
	}
	fs.absorbSums = append(fs.absorbSums, c.Sum)
	fs.absorbNext++
	return nil
}

// AbsorbManifest finalizes a streaming handoff: it verifies the manifest's
// chained checksum against the chunks actually absorbed, then restores the
// descriptor table and clock exactly as the monolithic path does.
func (fs *FS) AbsorbManifest(m *handoff.Manifest) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := m.Verify(fs.absorbSums); err != nil {
		return fmt.Errorf("basefs: absorb rejected: %w", err)
	}
	fs.absorbSums = nil
	fs.absorbNext = 0
	return fs.restoreLocked(m.FDs, m.Clock)
}
