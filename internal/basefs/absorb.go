package basefs

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/handoff"
)

// Absorb is the base's metadata-downloading interface (§3.2): it re-verifies
// the shadow's update and places every block into the buffer cache marked
// dirty, restores the descriptor table, and continues the logical clock. It
// "reuses existing logic to place them into its cache" — Install is the same
// entry point every internal path uses — so the trusted surface stays small.
//
// Absorb is called on a freshly mounted instance during recovery, before any
// new operations are admitted.
func (fs *FS) Absorb(u *handoff.Update) error {
	if err := u.Verify(); err != nil {
		return fmt.Errorf("basefs: absorb rejected: %w", err)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, blk := range u.SortedBlocks() {
		if blk == 0 || blk >= fs.sb.NumBlocks {
			return fmt.Errorf("basefs: absorb block %d out of range: %w", blk, fserr.ErrCorrupt)
		}
		if blk >= fs.sb.JournalStart && blk < fs.sb.JournalStart+fs.sb.JournalLen {
			return fmt.Errorf("basefs: absorb block %d targets the journal region: %w", blk, fserr.ErrCorrupt)
		}
		fs.bc.Install(blk, u.Blocks[blk], u.Meta[blk])
	}
	// Restore descriptors. Each inode must decode and be allocated in the
	// absorbed state; that read goes through the just-installed buffers.
	fs.fds = make(map[fsapi.FD]*fdEntry, len(u.FDs))
	for _, e := range u.FDs {
		ci, err := fs.getAllocInode(e.Ino)
		if err != nil {
			return fmt.Errorf("basefs: absorb fd %d -> inode %d: %w", e.FD, e.Ino, err)
		}
		if ci.Inode.IsDir() {
			return fmt.Errorf("basefs: absorb fd %d maps to a directory: %w", e.FD, fserr.ErrCorrupt)
		}
		fs.fds[e.FD] = &fdEntry{ino: e.Ino}
		ci.Opens++
	}
	if u.Clock > fs.clock.Load() {
		fs.clock.Store(u.Clock)
	}
	return nil
}
