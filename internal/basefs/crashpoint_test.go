package basefs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/fsck"
	"repro/internal/mkfs"
)

// TestEveryCrashPointDuringSyncIsRecoverable is the systematic crash-
// consistency harness: the device snapshots itself after every single block
// write during a sync, and every snapshot must (a) journal-replay without
// error, (b) pass fsck, and (c) still contain, intact, every file a
// *previous* sync made durable. This covers every possible crash point in
// the ordered-data + journaled-metadata protocol: mid data write-back, mid
// journal append, between commit record and checkpoint, mid checkpoint, and
// before the superblock clock update.
func TestEveryCrashPointDuringSyncIsRecoverable(t *testing.T) {
	dev := blockdev.NewMem(2048)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 256, JournalBlocks: 32}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()

	durable := map[string][]byte{} // files guaranteed by completed syncs
	var snapMu sync.Mutex
	var snaps []*blockdev.Mem
	capture := false
	dev.SetWriteHook(func(uint32) {
		// The hook fires on queue-worker goroutines concurrently.
		snapMu.Lock()
		if capture {
			snaps = append(snaps, dev.Snapshot())
		}
		snapMu.Unlock()
	})
	setCapture := func(on bool) {
		snapMu.Lock()
		capture = on
		snapMu.Unlock()
	}

	for round := 0; round < 4; round++ {
		// Mutate: new files, an overwrite, an unlink, a directory.
		name := fmt.Sprintf("/r%d", round)
		if err := fs.Mkdir(name, 0o755); err != nil {
			t.Fatal(err)
		}
		content := bytes.Repeat([]byte{byte('A' + round)}, 700*(round+1))
		fd, err := fs.Create(name+"/data", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(fd, 0, content); err != nil {
			t.Fatal(err)
		}
		if err := fs.Close(fd); err != nil {
			t.Fatal(err)
		}
		fd, err = fs.Create(name+"/extra", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		fs.WriteAt(fd, 0, []byte("extra"))
		fs.Close(fd)
		if round > 1 {
			// Churn: remove the extra file two rounds back so syncs also
			// carry deallocations.
			if err := fs.Unlink(fmt.Sprintf("/r%d/extra", round-2)); err != nil {
				t.Fatal(err)
			}
		}
		// Sync with per-write snapshots on.
		snapMu.Lock()
		snaps = snaps[:0]
		snapMu.Unlock()
		setCapture(true)
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		setCapture(false)
		durable[name+"/data"] = content

		if len(snaps) == 0 {
			t.Fatalf("round %d: sync issued no writes", round)
		}
		for si, snap := range snaps {
			if _, _, err := mkfs.Recover(snap); err != nil {
				t.Fatalf("round %d snap %d/%d: replay: %v", round, si, len(snaps), err)
			}
			rep := fsck.Check(snap)
			if !rep.Clean() {
				for i, p := range rep.Problems {
					if i > 3 {
						break
					}
					t.Errorf("round %d snap %d: %s", round, si, p)
				}
				t.Fatalf("round %d snap %d/%d: structurally corrupt crash point", round, si, len(snaps))
			}
			// Previously durable files must be present and intact. (Files of
			// the current round may or may not be, depending on where the
			// crash landed — both are legal.)
			check, err := Mount(snap, Options{})
			if err != nil {
				t.Fatalf("round %d snap %d: mount: %v", round, si, err)
			}
			for path, want := range durable {
				if path == name+"/data" {
					continue // current round: either outcome is legal
				}
				cfd, err := check.Open(path)
				if err != nil {
					t.Fatalf("round %d snap %d: durable %s lost: %v", round, si, path, err)
				}
				got, err := check.ReadAt(cfd, 0, len(want)+10)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("round %d snap %d: durable %s corrupted", round, si, path)
				}
				check.Close(cfd)
			}
			check.Kill()
		}
	}
}

// TestCrashPointsDuringDeferredCheckpoint exercises the lazy-checkpoint
// pipeline specifically: several fsyncs accumulate committed transactions in
// the journal with nothing written home, and then a checkpoint retires the
// whole chain. A crash at ANY block write — while the chain is live, mid
// home write-back, or mid tail advance — must replay to an image that is
// structurally clean and still holds every fsynced file.
func TestCrashPointsDuringDeferredCheckpoint(t *testing.T) {
	dev := blockdev.NewMem(2048)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 256, JournalBlocks: 64}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()

	var snapMu sync.Mutex
	var snaps []*blockdev.Mem
	capture := false
	dev.SetWriteHook(func(uint32) {
		snapMu.Lock()
		if capture {
			snaps = append(snaps, dev.Snapshot())
		}
		snapMu.Unlock()
	})
	setCapture := func(on bool) {
		snapMu.Lock()
		capture = on
		snapMu.Unlock()
	}

	// Build up >=4 committed, un-checkpointed transactions, capturing every
	// crash point along the way. bound[i] is the snapshot count at the moment
	// file i's fsync returned: snapshots at or past it must contain file i.
	durable := map[string][]byte{}
	names := make([]string, 4)
	contents := make([][]byte, 4)
	bound := make([]int, 4)
	setCapture(true)
	for i := 0; i < 4; i++ {
		names[i] = fmt.Sprintf("/f%d", i)
		contents[i] = bytes.Repeat([]byte{byte('a' + i)}, 600+i*400)
		fd, err := fs.Create(names[i], 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(fd, 0, contents[i]); err != nil {
			t.Fatal(err)
		}
		if err := fs.Fsync(fd); err != nil {
			t.Fatal(err)
		}
		if err := fs.Close(fd); err != nil {
			t.Fatal(err)
		}
		snapMu.Lock()
		bound[i] = len(snaps)
		snapMu.Unlock()
		durable[names[i]] = contents[i]
	}
	setCapture(false)
	if live := fs.jnl.LiveTxs(); live < 4 {
		t.Fatalf("deferred checkpointing not deferring: %d live txs, want >= 4", live)
	}
	preCkpt := len(snaps)

	// Now retire the chain, still capturing per-write crash points.
	setCapture(true)
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	setCapture(false)
	if fs.jnl.LiveTxs() != 0 {
		t.Fatalf("checkpoint left %d live txs", fs.jnl.LiveTxs())
	}
	if len(snaps) == preCkpt {
		t.Fatal("checkpoint issued no writes")
	}

	verify := func(si int, snap *blockdev.Mem, expect map[string][]byte) {
		t.Helper()
		if _, _, err := mkfs.Recover(snap); err != nil {
			t.Fatalf("snap %d: replay: %v", si, err)
		}
		if rep := fsck.Check(snap); !rep.Clean() {
			t.Fatalf("snap %d: corrupt crash point: %v", si, rep.Problems[0])
		}
		check, err := Mount(snap, Options{})
		if err != nil {
			t.Fatalf("snap %d: mount: %v", si, err)
		}
		defer check.Kill()
		for path, want := range expect {
			cfd, err := check.Open(path)
			if err != nil {
				t.Fatalf("snap %d: durable %s lost: %v", si, path, err)
			}
			got, err := check.ReadAt(cfd, 0, len(want)+10)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("snap %d: durable %s corrupted", si, path)
			}
			check.Close(cfd)
		}
	}

	// A crash point taken after fsync i returned must preserve files 0..i;
	// for points mid-fsync, the file's durability is undetermined and only
	// structural integrity is required. Crash points inside the checkpoint
	// guarantee everything.
	for si, snap := range snaps[:preCkpt] {
		expect := map[string][]byte{}
		for i := 0; i < 4; i++ {
			if bound[i] <= si {
				expect[names[i]] = contents[i]
			}
		}
		verify(si, snap, expect)
	}
	for si, snap := range snaps[preCkpt:] {
		verify(preCkpt+si, snap, durable) // all four files must survive
	}

	// And the live image after checkpoint holds everything too.
	final := dev.Snapshot()
	verify(len(snaps), final, durable)
}
