package basefs

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// debugCounts reports (usedData, dataBlocks, physical data-region population
// minus the backup block) for the accounting-invariant test.
func (fs *FS) debugCounts() (used, total, phys int64) {
	fs.allocMu.Lock()
	used, total = fs.usedData, fs.dataBlocks
	fs.allocMu.Unlock()
	for rel := uint32(0); rel < fs.sb.BlockBitmapLen; rel++ {
		buf, err := fs.bc.Get(fs.sb.BlockBitmapStart + rel)
		if err != nil {
			return used, total, -1
		}
		base := rel * disklayout.BitsPerBlock
		if base >= fs.sb.NumBlocks {
			fs.bc.Release(buf)
			break
		}
		limit := uint32(disklayout.BitsPerBlock)
		if fs.sb.NumBlocks-base < limit {
			limit = fs.sb.NumBlocks - base
		}
		lo := uint32(0)
		if fs.sb.DataStart > base {
			lo = fs.sb.DataStart - base
		}
		for i := lo; i < limit; i++ {
			if disklayout.TestBit(buf.Data, i) {
				phys++
			}
		}
		fs.bc.Release(buf)
	}
	phys-- // backup superblock bit is permanently set
	return used, total, phys
}

// TestExtentAccountingInvariant pins the feasibility invariant the delayed
// allocator's ENOSPC parity rests on:
//
//	physical blocks used  <=  fs.usedData  <=  fs.dataBlocks
//
// after every operation of a space-pressured workload. The regression it
// guards: demoteToBmap used to re-allocate physical homes for pending
// buffers whose runs a sync round had already allocated, leaking the first
// allocation and pushing physical use past the logical charge — which
// surfaced as sync() returning ENOSPC where the specification model says
// success.
func TestExtentAccountingInvariant(t *testing.T) {
	for _, seed := range []int64{7, 42, 99} {
		dev := blockdev.NewMem(400)
		sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 1024, JournalBlocks: 64})
		if err != nil {
			t.Fatal(err)
		}
		fs, err := Mount(dev, Options{})
		if err != nil {
			t.Fatal(err)
		}
		trace := workload.Generate(workload.Config{
			Profile: workload.DataHeavy, Seed: seed, NumOps: 600, Superblock: sb,
		})
		for i, op := range trace {
			o := op.Clone()
			o.Errno, o.RetFD, o.RetIno, o.RetN = 0, 0, 0, 0
			_ = oplog.Apply(fs, o)
			used, total, phys := fs.debugCounts()
			if phys > used || used > total {
				t.Fatalf("seed %d op %d (%s): invariant broken: phys=%d used=%d total=%d",
					seed, i, o.String(), phys, used, total)
			}
		}
		fs.Kill()
	}
}
