package basefs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/blockdev"
	"repro/internal/cache"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/journal"
)

// Fsync implements fsapi.FS. Like ext3/4's journaled metadata, fsync commits
// the running transaction, which persists all pending metadata — so every
// fsync is a global stable point the supervisor can truncate the operation
// log at.
func (fs *FS) Fsync(fd fsapi.FD) error {
	t := fs.opTimer("fsync")
	defer t.Stop()
	fs.mu.RLock()
	_, ok := fs.fds[fd]
	fs.mu.RUnlock()
	if !ok {
		return errBadFD(fd)
	}
	return fs.syncShared(false)
}

// Sync implements fsapi.FS: ordered-mode write-back. Data blocks go straight
// home through the async queue; metadata blocks are validated, journaled,
// and committed — but NOT checkpointed: committed transactions accumulate in
// the journal and are written to their home locations only when the region
// runs low or at unmount. After Sync returns nil the on-disk image (journal
// included) equals the in-memory state, which is the supervisor's cue to
// discard recorded operations.
func (fs *FS) Sync() error {
	t := fs.opTimer("sync")
	defer t.Stop()
	return fs.syncShared(false)
}

// syncRound is one execution of the sync pipeline. Concurrent fsync/sync
// callers coalesce onto rounds instead of serializing whole sync passes
// behind fs.mu: the first caller leads, later arrivals wait for the *next*
// round (which starts after their writes are in the cache, so it covers
// them), and the leader keeps running rounds until no one is waiting. A
// burst of N concurrent fsyncs thus costs at most two rounds — and each
// round's journal commit costs exactly two device flushes.
type syncRound struct {
	done chan struct{}
	err  error
	ckpt bool // at least one waiter needs a full checkpoint (unmount)
}

// syncShared runs or joins a sync round. ckpt forces the round to end with a
// full checkpoint, leaving the journal empty.
func (fs *FS) syncShared(ckpt bool) error {
	fs.syncMu.Lock()
	if fs.curRound != nil {
		// A round is in flight; it may have snapshotted before our writes.
		// Join the next one, which is guaranteed to start after them.
		if fs.nextRound == nil {
			fs.nextRound = &syncRound{done: make(chan struct{})}
		}
		r := fs.nextRound
		if ckpt {
			r.ckpt = true
		}
		fs.syncMu.Unlock()
		<-r.done
		return r.err
	}
	mine := &syncRound{done: make(chan struct{}), ckpt: ckpt}
	fs.curRound = mine
	fs.syncMu.Unlock()

	// Leader: run our round, then any rounds followers queued up meanwhile.
	r := mine
	for {
		fs.runRoundAsLeader(r)
		close(r.done)
		fs.syncMu.Lock()
		fs.curRound = fs.nextRound
		fs.nextRound = nil
		next := fs.curRound
		fs.syncMu.Unlock()
		if next == nil {
			return mine.err
		}
		r = next
	}
}

// runRoundAsLeader executes one round, filling r.err. A panic inside the
// round (an injected bug under supervision) must not wedge the leader
// protocol: the deferred cleanup fails this round and any queued follower
// round so their waiters unblock with an error, then lets the panic
// propagate to the supervisor's containment. Without this, a contained
// panic would leave curRound set forever and every later sync would block.
func (fs *FS) runRoundAsLeader(r *syncRound) {
	panicked := true
	defer func() {
		if !panicked {
			return
		}
		r.err = fmt.Errorf("basefs: sync round aborted by panic: %w", fserr.ErrIO)
		fs.syncMu.Lock()
		next := fs.nextRound
		fs.curRound, fs.nextRound = nil, nil
		fs.syncMu.Unlock()
		if next != nil {
			next.err = r.err
			close(next.done)
		}
		close(r.done)
	}()
	r.err = fs.runSyncRound(r.ckpt)
	panicked = false
}

// runSyncRound executes one sync pass. Rounds are serialized by the leader
// protocol, so fs.unstable and the journal cursor see no concurrent rounds.
//
// Phase A holds fs.mu exclusively but performs no IO: validate, snapshot
// dirty state (content copies + versions), and pass the pre-persist barrier.
// Phases B-D run without fs.mu, so readers and writers proceed while the IO
// is in flight; buffers are retired by version so a concurrent re-dirty is
// never lost.
func (fs *FS) runSyncRound(ckpt bool) error {
	flushes := 0
	defer func() {
		fs.telSyncRounds.Inc()
		fs.telFlushesPerSync.Set(int64(flushes))
	}()

	// Snapshot bracket for the supervisor: PreSnapshot before the lock (it
	// may take the supervisor's namespace lock, which nests outside fs.mu),
	// PostSnapshot exactly once on every exit path — error, panic, or the
	// normal hand-off to the IO phases.
	if fs.opts.PreSnapshot != nil {
		fs.opts.PreSnapshot()
	}
	snapDone := false
	finishSnapshot := func() {
		if !snapDone {
			snapDone = true
			if fs.opts.PostSnapshot != nil {
				fs.opts.PostSnapshot()
			}
		}
	}
	defer finishSnapshot()

	// --- Phase A: snapshot under fs.mu, memory only. ---
	// Held via a release flag so a contained panic (an injected bug at the
	// entry seam, or anywhere under the lock) cannot leave fs.mu poisoned:
	// under the supervisor, concurrent operations are still inside this
	// instance and must be able to drain out of it before recovery replaces
	// it. A lock abandoned by a panic would deadlock that drain.
	fs.mu.Lock()
	muHeld := true
	defer func() {
		if muHeld {
			fs.mu.Unlock()
		}
	}()
	if err := fs.fire(&faultinject.Site{Op: "sync", Point: "entry"}); err != nil {
		return err
	}
	// Materialize delayed allocations first: run and node allocation dirties
	// bitmap, node, and inode state that this round's snapshot must cover.
	// The returned runs are written home in Phase B before the journal
	// commit, preserving ordered-mode crash safety for delalloc data.
	runs, rets, err := fs.materializeDelalloc()
	if err != nil {
		return err
	}
	// Fold dirty inodes into their table blocks.
	for _, ci := range fs.ic.DirtyInodes() {
		if err := fs.validateInodeForPersist(ci); err != nil {
			return err
		}
		if err := fs.writeInodeBack(ci); err != nil {
			return err
		}
		ci.Dirty = false
	}

	// Partition the dirty snapshot.
	var data, meta []cache.DirtySnap
	for _, s := range fs.bc.SnapshotDirty() {
		if s.Meta {
			meta = append(meta, s)
		} else {
			data = append(data, s)
		}
	}
	sort.Slice(data, func(i, j int) bool { return data[i].Blk < data[j].Blk })
	sort.Slice(meta, func(i, j int) bool { return meta[i].Blk < meta[j].Blk })

	// Sync-validate: the fault model assumes errors are detected before
	// being persisted (§3.1, citing Recon/WAFL-style validation on sync).
	if err := fs.validateMetaForPersist(meta); err != nil {
		return err
	}

	// Logical clock: journaled with the other metadata (a torn in-place
	// superblock write would be unmountable), encoded here under fs.mu so
	// the superblock fields are quiesced. LastClock is advanced in memory
	// before the commit lands; if the round fails, the next one retries.
	if clk := fs.clock.Load(); clk != fs.sb.LastClock {
		fs.sb.LastClock = clk
		meta = append([]cache.DirtySnap{{Blk: 0, Meta: true, Data: disklayout.EncodeSuperblock(fs.sb)}}, meta...)
	}

	// Pre-persist barrier: the supervisor's last chance to veto the
	// write-out (e.g. an escalated WARN emitted earlier in this operation).
	// Everything up to here touched only memory, so a veto leaves the disk
	// exactly at the previous stable point — the property recovery relies on.
	if fs.opts.PrePersist != nil {
		if err := fs.opts.PrePersist(); err != nil {
			return err
		}
	}
	muHeld = false
	fs.mu.Unlock()
	finishSnapshot()

	// --- Phase B: ordered mode, data first. ---
	// Reallocation guard: if a data block's home is still a live journal
	// target (it held journaled metadata, was freed, and was reallocated as
	// data), writing it home now would let a crash replay stale metadata
	// over the new data. Checkpoint first to retire those records.
	guard := false
	for _, s := range data {
		if fs.jnl.Contains(s.Blk) {
			guard = true
			break
		}
	}
	for _, r := range runs {
		if guard {
			break
		}
		for i := range r.Bufs {
			if fs.jnl.Contains(r.Blk + uint32(i)) {
				guard = true
				break
			}
		}
	}
	if guard {
		n, err := fs.checkpoint()
		flushes += n
		if err != nil {
			return err
		}
	}
	// Delalloc runs first so the large vectored writes overlap the per-block
	// write-back below.
	var vecReqs []*blockdev.Request
	for _, r := range runs {
		vecReqs = append(vecReqs, fs.queue.WriteVecAsync(r.Blk, r.Bufs))
	}
	var reqs []*struct {
		snap cache.DirtySnap
		req  interface{ Wait() error }
	}
	for _, s := range data {
		r := fs.queue.WriteAsync(s.Blk, s.Data)
		reqs = append(reqs, &struct {
			snap cache.DirtySnap
			req  interface{ Wait() error }
		}{s, r})
	}
	for _, r := range reqs {
		if err := r.req.Wait(); err != nil {
			return fmt.Errorf("basefs: sync data write-back: %w", err)
		}
		fs.bc.MarkCleanVer(r.snap.Buf, r.snap.Ver)
	}
	for _, r := range vecReqs {
		if err := r.Wait(); err != nil {
			return fmt.Errorf("basefs: sync delalloc write-back: %w", err)
		}
	}
	fs.retireDelalloc(rets)
	// Data needs a flush barrier before the commit record, but when a commit
	// follows (the common case: any metadata changed), its pre-commit-record
	// flush is that barrier — the data writes above have already completed at
	// the device, so the journal's first flush covers them. Only a data-only
	// round pays its own flush.
	if (len(data) > 0 || len(runs) > 0) && len(meta) == 0 {
		if err := fs.queue.Flush(); err != nil {
			return fmt.Errorf("basefs: sync data flush: %w", err)
		}
		flushes++
	}

	// --- Phase C: journal metadata in capacity-bounded transactions. ---
	// Commit is the durable point; home locations are written lazily by a
	// later checkpoint. Each commit costs two flushes (one pair), shared
	// with any concurrent committers via the journal's group commit.
	for len(meta) > 0 {
		chunk := meta
		if cap := fs.jnl.Capacity(); len(chunk) > cap {
			chunk = meta[:cap]
		}
		tx := &journal.Tx{}
		for _, s := range chunk {
			tx.Add(s.Blk, s.Data)
		}
		err := fs.jnl.Commit(tx)
		if errors.Is(err, journal.ErrJournalFull) {
			// Region exhausted: retire the live chain, then retry once.
			n, cerr := fs.checkpoint()
			flushes += n
			if cerr != nil {
				return cerr
			}
			err = fs.jnl.Commit(tx)
		}
		if err != nil {
			return fmt.Errorf("basefs: journal commit: %w", err)
		}
		flushes += 2
		for _, s := range chunk {
			fs.unstable[s.Blk] = s.Data
			if s.Buf != nil {
				fs.bc.MarkJournaled(s.Buf, s.Ver)
			}
		}
		meta = meta[len(chunk):]
	}

	// --- Phase D: lazy checkpoint policy. ---
	// Committed transactions accumulate; write them home only when forced
	// (unmount) or when the region's remaining space runs low.
	if ckpt || fs.jnl.SpaceLeft() < fs.jnl.Capacity()/4 {
		n, err := fs.checkpoint()
		flushes += n
		if err != nil {
			return err
		}
	}
	// No exit seam here: a bug firing after the persist would be detected
	// after the disk moved past the stable point, which the fault model
	// excludes ("we assume that errors are detected before being persisted
	// to disk", §3.1). Sync bugs are modeled at the entry seam.
	if fs.opts.OnSyncDurable != nil {
		fs.opts.OnSyncDurable()
	}
	return nil
}

// checkpoint writes every journaled-but-unstable block to its home location,
// flushes, and retires the journal's live chain. Called only from within a
// sync round (rounds are serialized) or unmount. Returns the number of
// device flushes issued.
func (fs *FS) checkpoint() (int, error) {
	if len(fs.unstable) == 0 {
		return 0, fs.jnl.Checkpointed() // no-op unless the chain is non-empty
	}
	blks := make([]uint32, 0, len(fs.unstable))
	for blk := range fs.unstable {
		blks = append(blks, blk)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	var reqs []interface{ Wait() error }
	for _, blk := range blks {
		reqs = append(reqs, fs.queue.WriteAsync(blk, fs.unstable[blk]))
	}
	for i, r := range reqs {
		if err := r.Wait(); err != nil {
			return 0, fmt.Errorf("basefs: checkpoint block %d: %w", blks[i], err)
		}
	}
	if err := fs.queue.Flush(); err != nil {
		return 1, fmt.Errorf("basefs: checkpoint flush: %w", err)
	}
	// Homes are durable; advance the journal superblock past the chain.
	if err := fs.jnl.Checkpointed(); err != nil {
		return 1, err
	}
	fs.telCkptBlocks.Add(int64(len(blks)))
	for _, blk := range blks {
		fs.bc.MarkStable(blk)
		delete(fs.unstable, blk)
	}
	return 2, nil // queue flush + journal superblock flush
}

// Checkpoint forces a full checkpoint through the sync-round machinery:
// everything dirty is journaled and everything journaled is written home,
// leaving the journal empty. Unmount uses it; tests use it to pin down
// journal state.
func (fs *FS) Checkpoint() error {
	return fs.syncShared(true)
}

// validateInodeForPersist runs the pre-persist semantic checks on one dirty
// inode. These are cheap and always on: they are the detection mechanism
// ("validating upon sync") that keeps corrupt metadata off the disk.
func (fs *FS) validateInodeForPersist(ci *cache.CachedInode) error {
	ino := &ci.Inode
	if t := ino.Type(); t > disklayout.TypeSym {
		return fmt.Errorf("basefs: sync-validate inode %d: type %d: %w", ci.Ino, t, fserr.ErrCorrupt)
	}
	if ino.Size < 0 || ino.Size > disklayout.MaxFileSize {
		return fmt.Errorf("basefs: sync-validate inode %d: size %d: %w", ci.Ino, ino.Size, fserr.ErrCorrupt)
	}
	if !ino.IsFree() {
		if err := ino.ValidatePointers(fs.sb); err != nil {
			return fmt.Errorf("basefs: sync-validate inode %d: %w", ci.Ino, err)
		}
	}
	if ino.IsDir() && ino.Size%disklayout.BlockSize != 0 {
		return fmt.Errorf("basefs: sync-validate inode %d: directory size %d not block-aligned: %w",
			ci.Ino, ino.Size, fserr.ErrCorrupt)
	}
	return nil
}

// validateMetaForPersist checks dirty metadata blocks structurally before
// they can reach the journal: inode-table blocks must hold checksummed
// records with sane fields.
func (fs *FS) validateMetaForPersist(meta []cache.DirtySnap) error {
	tableStart := fs.sb.InodeTableStart
	tableEnd := tableStart + fs.sb.InodeTableLen
	for _, b := range meta {
		if b.Blk >= tableStart && b.Blk < tableEnd {
			for i := 0; i < disklayout.InodesPerBlock; i++ {
				rec := b.Data[i*disklayout.InodeSize : (i+1)*disklayout.InodeSize]
				ino, err := disklayout.DecodeInode(rec)
				if err != nil {
					return fmt.Errorf("basefs: sync-validate table block %d record %d: %w", b.Blk, i, err)
				}
				if !ino.IsFree() {
					if err := ino.ValidatePointers(fs.sb); err != nil {
						return fmt.Errorf("basefs: sync-validate table block %d record %d: %w", b.Blk, i, err)
					}
				}
			}
		}
	}
	return nil
}
