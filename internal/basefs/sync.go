package basefs

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/journal"
)

// Fsync implements fsapi.FS. Like ext3/4's journaled metadata, fsync commits
// the running transaction, which persists all pending metadata — so every
// fsync is a global stable point the supervisor can truncate the operation
// log at.
func (fs *FS) Fsync(fd fsapi.FD) error {
	t := fs.opTimer("fsync")
	defer t.Stop()
	fs.mu.RLock()
	_, ok := fs.fds[fd]
	fs.mu.RUnlock()
	if !ok {
		return errBadFD(fd)
	}
	return fs.Sync()
}

// Sync implements fsapi.FS: ordered-mode write-back. Data blocks go straight
// home through the async queue; metadata blocks are validated, journaled,
// committed, then checkpointed home. After Sync returns nil the on-disk
// image equals the in-memory state, which is the supervisor's cue to
// discard recorded operations.
func (fs *FS) Sync() error {
	t := fs.opTimer("sync")
	defer t.Stop()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncLocked()
}

func (fs *FS) syncLocked() error {
	if err := fs.fire(&faultinject.Site{Op: "sync", Point: "entry"}); err != nil {
		return err
	}
	// 1. Fold dirty inodes into their table blocks.
	for _, ci := range fs.ic.DirtyInodes() {
		if err := fs.validateInodeForPersist(ci); err != nil {
			return err
		}
		if err := fs.writeInodeBack(ci); err != nil {
			return err
		}
		ci.Dirty = false
	}

	// 2. Partition dirty buffers.
	dirty := fs.bc.DirtyBlocks()
	var data, meta []*cache.Buf
	for _, b := range dirty {
		if b.Meta {
			meta = append(meta, b)
		} else {
			data = append(data, b)
		}
	}
	sort.Slice(data, func(i, j int) bool { return data[i].Blk < data[j].Blk })
	sort.Slice(meta, func(i, j int) bool { return meta[i].Blk < meta[j].Blk })

	// 3. Sync-validate: the fault model assumes errors are detected before
	// being persisted (§3.1, citing Recon/WAFL-style validation on sync).
	if err := fs.validateMetaForPersist(meta); err != nil {
		return err
	}

	// 3b. Pre-persist barrier: the supervisor's last chance to veto the
	// write-out (e.g. an escalated WARN emitted earlier in this operation).
	// Everything up to here touched only memory, so a veto leaves the disk
	// exactly at the previous stable point — the property recovery relies on.
	if fs.opts.PrePersist != nil {
		if err := fs.opts.PrePersist(); err != nil {
			return err
		}
	}

	// 4. Ordered mode: data first.
	var reqs []*struct {
		buf *cache.Buf
		req interface{ Wait() error }
	}
	for _, b := range data {
		r := fs.queue.WriteAsync(b.Blk, b.Data)
		reqs = append(reqs, &struct {
			buf *cache.Buf
			req interface{ Wait() error }
		}{b, r})
	}
	for _, r := range reqs {
		if err := r.req.Wait(); err != nil {
			return fmt.Errorf("basefs: sync data write-back: %w", err)
		}
		fs.bc.MarkClean(r.buf)
	}
	if len(data) > 0 {
		if err := fs.queue.Flush(); err != nil {
			return fmt.Errorf("basefs: sync data flush: %w", err)
		}
	}

	// 5. Journal + checkpoint metadata in capacity-bounded transactions.
	for len(meta) > 0 {
		chunk := meta
		if cap := fs.jnl.Capacity(); len(chunk) > cap {
			chunk = meta[:cap]
		}
		meta = meta[len(chunk):]
		tx := &journal.Tx{}
		for _, b := range chunk {
			tx.Add(b.Blk, b.Data)
		}
		if err := fs.jnl.Commit(tx); err != nil {
			return fmt.Errorf("basefs: journal commit: %w", err)
		}
		// Checkpoint: write home locations, then retire the transaction.
		for _, b := range chunk {
			if err := fs.queue.Write(b.Blk, b.Data); err != nil {
				return fmt.Errorf("basefs: checkpoint block %d: %w", b.Blk, err)
			}
			fs.bc.MarkClean(b)
		}
		if err := fs.queue.Flush(); err != nil {
			return fmt.Errorf("basefs: checkpoint flush: %w", err)
		}
		if err := fs.jnl.Reset(); err != nil {
			return err
		}
	}

	// 6. Persist the logical clock so timestamps continue monotonically
	// across remounts and contained reboots.
	if clk := fs.clock.Load(); clk != fs.sb.LastClock {
		fs.sb.LastClock = clk
		if err := fs.queue.Write(0, disklayout.EncodeSuperblock(fs.sb)); err != nil {
			return fmt.Errorf("basefs: sync superblock: %w", err)
		}
		if err := fs.queue.Flush(); err != nil {
			return fmt.Errorf("basefs: sync superblock flush: %w", err)
		}
	}
	// No exit seam here: a bug firing after the persist would be detected
	// after the disk moved past the stable point, which the fault model
	// excludes ("we assume that errors are detected before being persisted
	// to disk", §3.1). Sync bugs are modeled at the entry seam.
	return nil
}

// validateInodeForPersist runs the pre-persist semantic checks on one dirty
// inode. These are cheap and always on: they are the detection mechanism
// ("validating upon sync") that keeps corrupt metadata off the disk.
func (fs *FS) validateInodeForPersist(ci *cache.CachedInode) error {
	ino := &ci.Inode
	if t := ino.Type(); t > disklayout.TypeSym {
		return fmt.Errorf("basefs: sync-validate inode %d: type %d: %w", ci.Ino, t, fserr.ErrCorrupt)
	}
	if ino.Size < 0 || ino.Size > disklayout.MaxFileSize {
		return fmt.Errorf("basefs: sync-validate inode %d: size %d: %w", ci.Ino, ino.Size, fserr.ErrCorrupt)
	}
	if !ino.IsFree() {
		if err := ino.ValidatePointers(fs.sb); err != nil {
			return fmt.Errorf("basefs: sync-validate inode %d: %w", ci.Ino, err)
		}
	}
	if ino.IsDir() && ino.Size%disklayout.BlockSize != 0 {
		return fmt.Errorf("basefs: sync-validate inode %d: directory size %d not block-aligned: %w",
			ci.Ino, ino.Size, fserr.ErrCorrupt)
	}
	return nil
}

// validateMetaForPersist checks dirty metadata blocks structurally before
// they can reach the journal: inode-table blocks must hold checksummed
// records with sane fields.
func (fs *FS) validateMetaForPersist(meta []*cache.Buf) error {
	tableStart := fs.sb.InodeTableStart
	tableEnd := tableStart + fs.sb.InodeTableLen
	for _, b := range meta {
		if b.Blk >= tableStart && b.Blk < tableEnd {
			for i := 0; i < disklayout.InodesPerBlock; i++ {
				rec := b.Data[i*disklayout.InodeSize : (i+1)*disklayout.InodeSize]
				ino, err := disklayout.DecodeInode(rec)
				if err != nil {
					return fmt.Errorf("basefs: sync-validate table block %d record %d: %w", b.Blk, i, err)
				}
				if !ino.IsFree() {
					if err := ino.ValidatePointers(fs.sb); err != nil {
						return fmt.Errorf("basefs: sync-validate table block %d record %d: %w", b.Blk, i, err)
					}
				}
			}
		}
	}
	return nil
}
