package basefs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fserr"
	"repro/internal/mkfs"
)

func newFS(t *testing.T) (*FS, *blockdev.Mem) {
	t.Helper()
	dev := blockdev.NewMem(4096)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Kill)
	return fs, dev
}

func TestMountFreshImage(t *testing.T) {
	fs, _ := newFS(t)
	st, err := fs.Stat("/")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ino != disklayout.RootIno || disklayout.ModeType(st.Mode) != disklayout.TypeDir {
		t.Errorf("root stat = %+v", st)
	}
	ents, err := fs.Readdir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("fresh root has %d entries", len(ents))
	}
}

func TestCreateWriteReadPersistence(t *testing.T) {
	fs, dev := newFS(t)
	fd, err := fs.Create("/file", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("shadowfs"), 1000) // crosses two blocks
	n, err := fs.WriteAt(fd, 0, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("WriteAt = (%d, %v)", n, err)
	}
	got, err := fs.ReadAt(fd, 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("readback before sync failed: %v", err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	// Remount and verify durability.
	fs2, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Kill()
	fd2, err := fs2.Open("/file")
	if err != nil {
		t.Fatal(err)
	}
	got, err = fs2.ReadAt(fd2, 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatal("data lost across unmount/mount")
	}
}

func TestSyncThenCrashPreservesState(t *testing.T) {
	fs, dev := newFS(t)
	fd, _ := fs.Create("/durable", 0o644)
	fs.WriteAt(fd, 0, []byte("committed"))
	fs.Close(fd)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: snapshot the device, no unmount.
	crash := dev.Snapshot()
	fs.Kill()
	fs2, err := Mount(crash, Options{})
	if err != nil {
		t.Fatalf("mount after crash: %v", err)
	}
	defer fs2.Kill()
	fd2, err := fs2.Open("/durable")
	if err != nil {
		t.Fatalf("file lost after sync+crash: %v", err)
	}
	got, _ := fs2.ReadAt(fd2, 0, 100)
	if string(got) != "committed" {
		t.Errorf("content = %q", got)
	}
}

func TestUnsyncedStateLostOnCrash(t *testing.T) {
	fs, dev := newFS(t)
	fd, _ := fs.Create("/volatile", 0o644)
	fs.WriteAt(fd, 0, []byte("buffered"))
	// No sync, no close: crash now.
	crash := dev.Snapshot()
	fs.Kill()
	fs2, err := Mount(crash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Kill()
	if _, err := fs2.Open("/volatile"); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("unsynced file visible after crash: %v", err)
	}
}

func TestLargeFileThroughIndirects(t *testing.T) {
	fs, _ := newFS(t)
	fd, _ := fs.Create("/big", 0o644)
	defer fs.Close(fd)
	// Write a file spanning direct + single-indirect + into double-indirect.
	blocks := int64(disklayout.NumDirect + disklayout.PtrsPerBlock + 40)
	stamp := func(i int64) []byte {
		b := make([]byte, 8)
		for j := range b {
			b[j] = byte(i >> (8 * j))
		}
		return b
	}
	for i := int64(0); i < blocks; i += 97 { // sample sparse offsets
		if _, err := fs.WriteAt(fd, i*disklayout.BlockSize, stamp(i)); err != nil {
			t.Fatalf("write block %d: %v", i, err)
		}
	}
	for i := int64(0); i < blocks; i += 97 {
		got, err := fs.ReadAt(fd, i*disklayout.BlockSize, 8)
		if err != nil || !bytes.Equal(got, stamp(i)) {
			t.Fatalf("read block %d: got %x err %v", i, got, err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync large file: %v", err)
	}
}

func TestTruncateReleasesAndZeroes(t *testing.T) {
	fs, _ := newFS(t)
	fd, _ := fs.Create("/t", 0o644)
	defer fs.Close(fd)
	fs.WriteAt(fd, 0, bytes.Repeat([]byte{0xAB}, 3*disklayout.BlockSize))
	if err := fs.Truncate("/t", 100); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("/t", 2*disklayout.BlockSize); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadAt(fd, 0, 2*disklayout.BlockSize)
	for i := 100; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d = %#x after shrink+grow", i, got[i])
		}
	}
	for i := 0; i < 100; i++ {
		if got[i] != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, got[i])
		}
	}
}

func TestDirOperations(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ { // force directory growth past one block
		if err := fs.Mkdir("/d/sub"+itoa(i), 0o755); err != nil {
			t.Fatalf("mkdir %d: %v", i, err)
		}
	}
	ents, err := fs.Readdir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 100 {
		t.Fatalf("readdir = %d entries", len(ents))
	}
	st, _ := fs.Stat("/d")
	if st.Nlink != 102 {
		t.Errorf("dir nlink = %d, want 102", st.Nlink)
	}
	for i := 0; i < 100; i++ {
		if err := fs.Rmdir("/d/sub" + itoa(i)); err != nil {
			t.Fatalf("rmdir %d: %v", i, err)
		}
	}
	st, _ = fs.Stat("/d")
	if st.Nlink != 2 {
		t.Errorf("dir nlink after rmdirs = %d", st.Nlink)
	}
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestRenameAndLinks(t *testing.T) {
	fs, _ := newFS(t)
	fd, _ := fs.Create("/a", 0o644)
	fs.WriteAt(fd, 0, []byte("content"))
	fs.Close(fd)
	if err := fs.Link("/a", "/hard"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	sb, _ := fs.Stat("/b")
	sh, _ := fs.Stat("/hard")
	if sb.Ino != sh.Ino || sb.Nlink != 2 {
		t.Errorf("stats after rename: b=%+v hard=%+v", sb, sh)
	}
	// Rename over existing target.
	fd, _ = fs.Create("/c", 0o644)
	fs.WriteAt(fd, 0, []byte("ccc"))
	fs.Close(fd)
	if err := fs.Rename("/b", "/c"); err != nil {
		t.Fatal(err)
	}
	fd, _ = fs.Open("/c")
	got, _ := fs.ReadAt(fd, 0, 10)
	fs.Close(fd)
	if string(got) != "content" {
		t.Errorf("rename-over content = %q", got)
	}
}

func TestSymlinkRoundTrip(t *testing.T) {
	fs, dev := newFS(t)
	if err := fs.Symlink("/some/where", "/ln"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Readlink("/ln")
	if err != nil || got != "/some/where" {
		t.Errorf("readlink = (%q, %v)", got, err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, _ := Mount(dev, Options{})
	defer fs2.Kill()
	got, err = fs2.Readlink("/ln")
	if err != nil || got != "/some/where" {
		t.Errorf("readlink after remount = (%q, %v)", got, err)
	}
}

func TestOpenUnlinkedOrphan(t *testing.T) {
	fs, _ := newFS(t)
	fd, _ := fs.Create("/orphan", 0o644)
	fs.WriteAt(fd, 0, []byte("ghost data"))
	if err := fs.Unlink("/orphan"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt(fd, 0, 100)
	if err != nil || string(got) != "ghost data" {
		t.Errorf("orphan read = (%q, %v)", got, err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	// The inode and blocks must be reusable now.
	fd2, err := fs.Create("/next", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Fstat(fd2)
	if st.Ino != 2 {
		t.Errorf("freed ino not reused: got %d", st.Ino)
	}
	fs.Close(fd2)
}

func TestFDReuseLowestFree(t *testing.T) {
	fs, _ := newFS(t)
	fd0, _ := fs.Create("/f0", 0o644)
	fd1, _ := fs.Create("/f1", 0o644)
	fd2, _ := fs.Create("/f2", 0o644)
	if fd0 != 0 || fd1 != 1 || fd2 != 2 {
		t.Fatalf("fds = %d %d %d", fd0, fd1, fd2)
	}
	fs.Close(fd1)
	r, _ := fs.Open("/f0")
	if r != 1 {
		t.Errorf("reopened fd = %d, want 1", r)
	}
}

func TestENOSPCAndRecoveryOfSpace(t *testing.T) {
	dev := blockdev.NewMem(220)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 64, JournalBlocks: 16}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	fd, _ := fs.Create("/big", 0o644)
	defer fs.Close(fd)
	buf := make([]byte, disklayout.BlockSize)
	var werr error
	wrote := int64(0)
	for i := 0; i < 500; i++ {
		n, err := fs.WriteAt(fd, wrote, buf)
		wrote += int64(n)
		if err != nil {
			werr = err
			break
		}
	}
	if !errors.Is(werr, fserr.ErrNoSpace) {
		t.Fatalf("no ENOSPC on tiny image (wrote %d)", wrote)
	}
	if err := fs.Truncate("/big", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 0, buf); err != nil {
		t.Errorf("write after truncate: %v", err)
	}
}

func TestJournalReplayAfterMidSyncCrash(t *testing.T) {
	// Write a committed journal transaction by hand, crash before
	// checkpoint, and check mount replays it. Exercised through the public
	// API: sync, snapshot during the checkpoint window is hard to time, so
	// instead verify replay idempotency through double mount.
	fs, dev := newFS(t)
	fd, _ := fs.Create("/j", 0o644)
	fs.WriteAt(fd, 0, []byte("journaled"))
	fs.Close(fd)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	crash := dev.Snapshot()
	fs.Kill()
	for i := 0; i < 2; i++ { // double mount: replay must be idempotent
		fsi, err := Mount(crash, Options{})
		if err != nil {
			t.Fatalf("mount %d: %v", i, err)
		}
		if _, err := fsi.Stat("/j"); err != nil {
			t.Fatalf("mount %d lost file: %v", i, err)
		}
		fsi.Kill()
	}
}

func TestCacheHitRates(t *testing.T) {
	fs, _ := newFS(t)
	for i := 0; i < 10; i++ {
		fd, _ := fs.Create("/f"+itoa(i), 0o644)
		fs.WriteAt(fd, 0, []byte("x"))
		fs.Close(fd)
	}
	for i := 0; i < 100; i++ {
		if _, err := fs.Stat("/f" + itoa(i%10)); err != nil {
			t.Fatal(err)
		}
	}
	_, _, _, _, dh, _ := fs.CacheStats()
	if dh == 0 {
		t.Error("dentry cache never hit on a hot-path workload")
	}
}

func TestStatErrnos(t *testing.T) {
	fs, _ := newFS(t)
	if _, err := fs.Stat("/nope"); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("stat missing: %v", err)
	}
	fd, _ := fs.Create("/f", 0o644)
	fs.Close(fd)
	if _, err := fs.Stat("/f/below"); !errors.Is(err, fserr.ErrNotDir) {
		t.Errorf("stat through file: %v", err)
	}
	if _, err := fs.Open("/"); !errors.Is(err, fserr.ErrIsDir) {
		t.Errorf("open dir: %v", err)
	}
	if err := fs.Close(99); !errors.Is(err, fserr.ErrBadFD) {
		t.Errorf("close bad fd: %v", err)
	}
}

func TestWarnChannel(t *testing.T) {
	var got []Warning
	dev := blockdev.NewMem(1024)
	mkfs.Format(dev, mkfs.Options{})
	fs, err := Mount(dev, Options{OnWarn: func(w Warning) { got = append(got, w) }})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	fs.Warnf("something odd: %d", 42)
	if len(got) != 1 || got[0].Msg != "something odd: 42" {
		t.Errorf("warn callback got %+v", got)
	}
	if len(fs.Warnings()) != 1 {
		t.Error("warning not recorded")
	}
}

func TestTwoQCachePolicyOption(t *testing.T) {
	dev := blockdev.NewMem(4096)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, Options{CachePolicy: "2q", CacheBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	// Workload with a hot set and a one-pass scan: everything must stay
	// correct under the alternate policy.
	for i := 0; i < 8; i++ {
		fd, err := fs.Create("/hot"+itoa(i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(fd, 0, bytes.Repeat([]byte{byte(i)}, 2000)); err != nil {
			t.Fatal(err)
		}
		fs.Close(fd)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Scan: create and read many one-touch files.
	for i := 0; i < 100; i++ {
		fd, err := fs.Create("/scan"+itoa(i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
		fs.WriteAt(fd, 0, []byte("once"))
		fs.Close(fd)
	}
	// Hot files intact.
	for i := 0; i < 8; i++ {
		fd, err := fs.Open("/hot" + itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadAt(fd, 0, 2000)
		if err != nil || len(got) != 2000 || got[0] != byte(i) {
			t.Fatalf("hot file %d damaged under 2q: %v", i, err)
		}
		fs.Close(fd)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
}
