package basefs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cache"
	"repro/internal/disklayout"
	"repro/internal/fserr"
)

// bmap resolves a file block index to a physical block number. Holes resolve
// to 0. The caller holds either the namespace write lock or the inode lock.
func (fs *FS) bmap(ci *cache.CachedInode, idx int64) (uint32, error) {
	switch {
	case idx < 0 || idx >= disklayout.MaxFileBlocks:
		return 0, fmt.Errorf("basefs: block index %d out of range: %w", idx, fserr.ErrInvalid)

	case idx < disklayout.NumDirect:
		if p := ci.Inode.Direct[idx]; p != 0 {
			// The block_validity analogue: never hand out a mapping into the
			// metadata region, even from a crafted or corrupted inode.
			if err := fs.checkPtr(ci.Ino, p); err != nil {
				return 0, err
			}
		}
		return ci.Inode.Direct[idx], nil

	case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
		if ci.Inode.Indirect == 0 {
			return 0, nil
		}
		if err := fs.checkPtr(ci.Ino, ci.Inode.Indirect); err != nil {
			return 0, err
		}
		return fs.readPtr(ci.Inode.Indirect, idx-disklayout.NumDirect)

	default:
		if ci.Inode.DblIndir == 0 {
			return 0, nil
		}
		if err := fs.checkPtr(ci.Ino, ci.Inode.DblIndir); err != nil {
			return 0, err
		}
		rel := idx - disklayout.NumDirect - disklayout.PtrsPerBlock
		l2, err := fs.readPtr(ci.Inode.DblIndir, rel/disklayout.PtrsPerBlock)
		if err != nil || l2 == 0 {
			return 0, err
		}
		if err := fs.checkPtr(ci.Ino, l2); err != nil {
			return 0, err
		}
		return fs.readPtr(l2, rel%disklayout.PtrsPerBlock)
	}
}

// readPtr reads slot i of an indirect block.
func (fs *FS) readPtr(blk uint32, i int64) (uint32, error) {
	buf, err := fs.bc.Get(blk)
	if err != nil {
		return 0, err
	}
	p := binary.LittleEndian.Uint32(buf.Data[i*4:])
	fs.bc.Release(buf)
	if p != 0 {
		if err := fs.checkPtr(0, p); err != nil {
			return 0, err
		}
	}
	return p, nil
}

// writePtr stores p into slot i of an indirect block and dirties it.
func (fs *FS) writePtr(blk uint32, i int64, p uint32) error {
	buf, err := fs.bc.Get(blk)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf.Data[i*4:], p)
	fs.bc.MarkDirtyMeta(buf)
	fs.bc.Release(buf)
	return nil
}

// bmapAlloc resolves idx, materializing the data block (and any missing
// indirect blocks) if absent. On ENOSPC partway through the indirect chain
// it rolls the chain back so the space accounting matches a filesystem that
// never attempted the allocation (keeping ENOSPC timing identical to the
// specification model's).
func (fs *FS) bmapAlloc(ci *cache.CachedInode, idx int64) (uint32, error) {
	if idx < 0 || idx >= disklayout.MaxFileBlocks {
		return 0, fmt.Errorf("basefs: block index %d out of range: %w", idx, fserr.ErrInvalid)
	}
	if p, err := fs.bmap(ci, idx); err != nil || p != 0 {
		return p, err
	}
	var undo []uint32
	fail := func(err error) (uint32, error) {
		for i := len(undo) - 1; i >= 0; i-- {
			_ = fs.freeBlock(undo[i])
		}
		return 0, err
	}
	alloc := func() (uint32, error) {
		p, err := fs.allocBlock()
		if err != nil {
			return 0, err
		}
		undo = append(undo, p)
		return p, nil
	}

	switch {
	case idx < disklayout.NumDirect:
		p, err := alloc()
		if err != nil {
			return fail(err)
		}
		ci.Inode.Direct[idx] = p
		fs.markInodeDirty(ci)
		fs.bc.Release(fs.zeroBlock(p, false))
		return p, nil

	case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
		if ci.Inode.Indirect == 0 {
			ib, err := alloc()
			if err != nil {
				return fail(err)
			}
			fs.bc.Release(fs.zeroBlock(ib, true))
			ci.Inode.Indirect = ib
			fs.markInodeDirty(ci)
		}
		p, err := alloc()
		if err != nil {
			// If we just created the indirect block for this allocation,
			// undo unwinds it; clear the inode pointer to match.
			if len(undo) == 1 {
				ci.Inode.Indirect = 0
			}
			return fail(err)
		}
		fs.bc.Release(fs.zeroBlock(p, false))
		if err := fs.writePtr(ci.Inode.Indirect, idx-disklayout.NumDirect, p); err != nil {
			return fail(err)
		}
		return p, nil

	default:
		rel := idx - disklayout.NumDirect - disklayout.PtrsPerBlock
		l2idx := rel / disklayout.PtrsPerBlock
		newDbl := false
		if ci.Inode.DblIndir == 0 {
			db, err := alloc()
			if err != nil {
				return fail(err)
			}
			fs.bc.Release(fs.zeroBlock(db, true))
			ci.Inode.DblIndir = db
			fs.markInodeDirty(ci)
			newDbl = true
		}
		l2, err := fs.readPtr(ci.Inode.DblIndir, l2idx)
		if err != nil {
			return fail(err)
		}
		newL2 := false
		if l2 == 0 {
			l2, err = alloc()
			if err != nil {
				if newDbl {
					ci.Inode.DblIndir = 0
				}
				return fail(err)
			}
			fs.bc.Release(fs.zeroBlock(l2, true))
			if err := fs.writePtr(ci.Inode.DblIndir, l2idx, l2); err != nil {
				return fail(err)
			}
			newL2 = true
		}
		p, err := alloc()
		if err != nil {
			if newL2 {
				_ = fs.writePtr(ci.Inode.DblIndir, l2idx, 0)
			}
			if newDbl {
				ci.Inode.DblIndir = 0
			}
			return fail(err)
		}
		fs.bc.Release(fs.zeroBlock(p, false))
		if err := fs.writePtr(l2, rel%disklayout.PtrsPerBlock, p); err != nil {
			return fail(err)
		}
		return p, nil
	}
}

// zeroBlock returns a pinned, zeroed, dirty buffer for a freshly allocated
// block (never reading stale device contents).
func (fs *FS) zeroBlock(blk uint32, meta bool) *cache.Buf {
	buf := fs.bc.GetZero(blk)
	if meta {
		fs.bc.MarkDirtyMeta(buf)
	} else {
		fs.bc.MarkDirty(buf)
	}
	return buf
}

// truncateBlocks frees every mapped block at index >= keep and prunes
// now-empty indirect blocks. The caller updates size and zeroes the tail of
// the last kept block.
func (fs *FS) truncateBlocks(ci *cache.CachedInode, keep int64) error {
	for i := keep; i < disklayout.NumDirect; i++ {
		if p := ci.Inode.Direct[i]; p != 0 {
			if err := fs.freeBlock(p); err != nil {
				return err
			}
			ci.Inode.Direct[i] = 0
		}
	}
	if ci.Inode.Indirect != 0 {
		empty, err := fs.truncateIndirect(ci.Inode.Indirect, keep-disklayout.NumDirect)
		if err != nil {
			return err
		}
		if empty {
			if err := fs.freeBlock(ci.Inode.Indirect); err != nil {
				return err
			}
			ci.Inode.Indirect = 0
		}
	}
	if ci.Inode.DblIndir != 0 {
		relKeep := keep - disklayout.NumDirect - disklayout.PtrsPerBlock
		empty, err := fs.truncateDouble(ci.Inode.DblIndir, relKeep)
		if err != nil {
			return err
		}
		if empty {
			if err := fs.freeBlock(ci.Inode.DblIndir); err != nil {
				return err
			}
			ci.Inode.DblIndir = 0
		}
	}
	fs.markInodeDirty(ci)
	return nil
}

// truncateIndirect frees pointers at slot >= keep in one indirect block and
// reports whether the block is now entirely empty.
func (fs *FS) truncateIndirect(blk uint32, keep int64) (empty bool, err error) {
	if err := fs.checkPtr(0, blk); err != nil {
		return false, err
	}
	buf, err := fs.bc.Get(blk)
	if err != nil {
		return false, err
	}
	le := binary.LittleEndian
	dirty := false
	empty = true
	for i := int64(0); i < disklayout.PtrsPerBlock; i++ {
		p := le.Uint32(buf.Data[i*4:])
		if p == 0 {
			continue
		}
		if i >= keep {
			if err := fs.freeBlock(p); err != nil {
				fs.bc.Release(buf)
				return false, err
			}
			le.PutUint32(buf.Data[i*4:], 0)
			dirty = true
		} else {
			empty = false
		}
	}
	if dirty {
		fs.bc.MarkDirtyMeta(buf)
	}
	fs.bc.Release(buf)
	return empty, nil
}

// truncateDouble frees data blocks at relative index >= relKeep under a
// double-indirect block, pruning empty second-level blocks.
func (fs *FS) truncateDouble(blk uint32, relKeep int64) (empty bool, err error) {
	if err := fs.checkPtr(0, blk); err != nil {
		return false, err
	}
	buf, err := fs.bc.Get(blk)
	if err != nil {
		return false, err
	}
	le := binary.LittleEndian
	dirty := false
	empty = true
	for i := int64(0); i < disklayout.PtrsPerBlock; i++ {
		l2 := le.Uint32(buf.Data[i*4:])
		if l2 == 0 {
			continue
		}
		keepInL2 := relKeep - i*disklayout.PtrsPerBlock
		l2empty, err := fs.truncateIndirect(l2, keepInL2)
		if err != nil {
			fs.bc.Release(buf)
			return false, err
		}
		if l2empty {
			if err := fs.freeBlock(l2); err != nil {
				fs.bc.Release(buf)
				return false, err
			}
			le.PutUint32(buf.Data[i*4:], 0)
			dirty = true
		} else {
			empty = false
		}
	}
	if dirty {
		fs.bc.MarkDirtyMeta(buf)
	}
	fs.bc.Release(buf)
	return empty, nil
}

// freeAllBlocks releases every block an inode maps (unlink of the last
// reference or replacement by rename), whichever layout it uses.
func (fs *FS) freeAllBlocks(ci *cache.CachedInode) error {
	if ci.Inode.IsExtents() {
		if err := fs.truncateExtents(ci, 0); err != nil {
			return err
		}
		fs.dropDelFile(ci.Ino)
		return nil
	}
	return fs.truncateBlocks(ci, 0)
}
