package basefs

// Extent-mapped files: delayed allocation and the vectored data path.
//
// Regular files created by this mount carry disklayout.FlagExtents and store
// their data map as a sorted extent list instead of the per-block pointer
// tree. Writes to unmapped file blocks do not allocate anything — they land
// in per-file delayed-allocation buffers and are materialized at sync time,
// when the whole dirty range is known and can be placed in a handful of
// contiguous runs (FindFreeRun). Each run then goes to the device as one
// vectored write, bypassing the per-block buffer-cache copies of the legacy
// path. Reads batch cache misses into vectored device reads the same way and
// extend the final run with extent-keyed readahead.
//
// ENOSPC parity with the specification model is the load-bearing constraint.
// The model charges bmap-geometry cost for every file (data blocks plus the
// indirect blocks the pointer tree would need); extent files physically cost
// less. fs.usedData therefore tracks the model's logical charge, decoupled
// from the block bitmap: delayed-allocation buffers are charged when the
// write is accepted (exactly when the model materializes the block), and the
// physical machinery (runs, extent nodes, the demote path) allocates without
// touching the charge. The invariant that makes this sound is
//
//	physical blocks used  <=  fs.usedData  <=  fs.dataBlocks
//
// which holds per file because an extent file's node chain is never allowed
// to cost more than the pointer-tree spine the model already charged for the
// same index set (spineBudget); a file fragmented past that budget is demoted
// back to the legacy block map, whose physical cost equals the model's
// exactly.

import (
	"fmt"
	"sort"

	"repro/internal/blockdev"
	"repro/internal/cache"
	"repro/internal/disklayout"
	"repro/internal/fserr"
)

// readaheadBlocks bounds how far a vectored read extends past the requested
// range within the current extent.
const readaheadBlocks = 8

// extCounters tracks the bmap geometry of a file's materialized index set —
// enough to compute the specification model's fileBlockCost incrementally
// (O(1) per block instead of a full recount).
type extCounters struct {
	// nBlocks is the number of materialized file blocks.
	nBlocks int64
	// indCount is how many of them fall in the single-indirect index range.
	indCount int64
	// dblGroups counts blocks per second-level group in the double-indirect
	// range; the map's size is the number of L2 blocks the model charges.
	dblGroups map[int64]int64
}

func newExtCounters() extCounters {
	return extCounters{dblGroups: make(map[int64]int64)}
}

// chargeCost returns the model-cost delta of materializing idx (the block
// itself plus any spine block that would newly exist in the pointer tree).
func (c *extCounters) chargeCost(idx int64) int64 {
	d := int64(1)
	switch {
	case idx < disklayout.NumDirect:
	case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
		if c.indCount == 0 {
			d++
		}
	default:
		if len(c.dblGroups) == 0 {
			d++ // the double-indirect block itself
		}
		g := (idx - disklayout.NumDirect - disklayout.PtrsPerBlock) / disklayout.PtrsPerBlock
		if c.dblGroups[g] == 0 {
			d++ // a new second-level block
		}
	}
	return d
}

func (c *extCounters) noteCharged(idx int64) {
	c.nBlocks++
	switch {
	case idx < disklayout.NumDirect:
	case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
		c.indCount++
	default:
		g := (idx - disklayout.NumDirect - disklayout.PtrsPerBlock) / disklayout.PtrsPerBlock
		c.dblGroups[g]++
	}
}

// unchargeCost returns the model-cost delta of releasing idx.
func (c *extCounters) unchargeCost(idx int64) int64 {
	d := int64(1)
	switch {
	case idx < disklayout.NumDirect:
	case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
		if c.indCount == 1 {
			d++
		}
	default:
		g := (idx - disklayout.NumDirect - disklayout.PtrsPerBlock) / disklayout.PtrsPerBlock
		if c.dblGroups[g] == 1 {
			d++ // its second-level block empties
			if len(c.dblGroups) == 1 {
				d++ // ... and it was the last one, so DblIndir goes too
			}
		}
	}
	return d
}

func (c *extCounters) noteUncharged(idx int64) {
	c.nBlocks--
	switch {
	case idx < disklayout.NumDirect:
	case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
		c.indCount--
	default:
		g := (idx - disklayout.NumDirect - disklayout.PtrsPerBlock) / disklayout.PtrsPerBlock
		if c.dblGroups[g] <= 1 {
			delete(c.dblGroups, g)
		} else {
			c.dblGroups[g]--
		}
	}
}

// spineBudget is the number of pointer-tree spine blocks the model charges
// for this index set — the physical budget the extent node chain must fit in.
func (c *extCounters) spineBudget() int64 {
	var b int64
	if c.indCount > 0 {
		b++
	}
	if len(c.dblGroups) > 0 {
		b += 1 + int64(len(c.dblGroups))
	}
	return b
}

// delFile is the per-inode delayed-allocation state. The delalloc map itself
// is guarded by fs.delMu; a delFile's contents are guarded by the inode's
// data lock (ci.Mu under the shared namespace lock) or the exclusive
// namespace lock, exactly like the inode fields they shadow.
type delFile struct {
	seeded bool
	// exts is the current mapped extent list, sorted by FileOff; nodes is the
	// overflow node chain backing its tail.
	exts  []disklayout.Extent
	nodes []uint32
	// bufs holds accepted-but-unallocated block contents; flushing holds the
	// generation frozen by the in-flight sync round. A write to a flushing
	// block copies it back into bufs (the round's snapshot stays immutable).
	bufs     map[int64][]byte
	flushing map[int64][]byte
	extCounters
}

func (fs *FS) delFileFor(ino uint32) *delFile {
	fs.delMu.Lock()
	defer fs.delMu.Unlock()
	st := fs.delalloc[ino]
	if st == nil {
		st = &delFile{
			bufs:        make(map[int64][]byte),
			flushing:    make(map[int64][]byte),
			extCounters: newExtCounters(),
		}
		fs.delalloc[ino] = st
	}
	return st
}

func (fs *FS) dropDelFile(ino uint32) {
	fs.delMu.Lock()
	delete(fs.delalloc, ino)
	fs.delMu.Unlock()
}

// extState returns the inode's delayed-allocation state, loading the on-disk
// extent map and seeding the cost counters on first touch.
func (fs *FS) extState(ci *cache.CachedInode) (*delFile, error) {
	st := fs.delFileFor(ci.Ino)
	if st.seeded {
		return st, nil
	}
	exts, nodes, err := fs.loadExtents(ci)
	if err != nil {
		return nil, err
	}
	st.exts, st.nodes = exts, nodes
	for _, e := range exts {
		for k := int64(e.FileOff); k < int64(e.End()); k++ {
			st.noteCharged(k)
		}
	}
	st.seeded = true
	return st, nil
}

// loadExtents walks the inode's extent list through the buffer cache,
// validating each run's bounds and file-space ordering (the extent analogue
// of checkPtr).
func (fs *FS) loadExtents(ci *cache.CachedInode) ([]disklayout.Extent, []uint32, error) {
	var exts []disklayout.Extent
	var nodes []uint32
	read := func(blk uint32) ([]byte, error) {
		buf, err := fs.bc.Get(blk)
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(buf.Data))
		copy(cp, buf.Data)
		fs.bc.Release(buf)
		return cp, nil
	}
	var prevEnd uint64
	err := ci.Inode.ExtentWalk(fs.sb, read,
		func(nblk uint32) error {
			nodes = append(nodes, nblk)
			return nil
		},
		func(e disklayout.Extent) error {
			if err := fs.sb.ValidateExtent(e); err != nil {
				return fmt.Errorf("basefs: inode %d: %w", ci.Ino, err)
			}
			if uint64(e.FileOff) < prevEnd {
				return fmt.Errorf("basefs: inode %d: extent at file block %d overlaps run ending at %d: %w",
					ci.Ino, e.FileOff, prevEnd, fserr.ErrCorrupt)
			}
			prevEnd = uint64(e.End())
			exts = append(exts, e)
			return nil
		})
	if err != nil {
		return nil, nil, err
	}
	return exts, nodes, nil
}

// extentFor resolves a file block index against a sorted extent list; holes
// resolve to 0.
func extentFor(exts []disklayout.Extent, idx int64) uint32 {
	i := sort.Search(len(exts), func(i int) bool { return int64(exts[i].End()) > idx })
	if i < len(exts) && int64(exts[i].FileOff) <= idx {
		return exts[i].Start + uint32(idx-int64(exts[i].FileOff))
	}
	return 0
}

// insertExtent adds e to a sorted extent list, merging runs that are
// contiguous in both file and device space.
func insertExtent(exts []disklayout.Extent, e disklayout.Extent) []disklayout.Extent {
	i := sort.Search(len(exts), func(i int) bool { return exts[i].FileOff > e.FileOff })
	exts = append(exts, disklayout.Extent{})
	copy(exts[i+1:], exts[i:])
	exts[i] = e
	out := exts[:0]
	for _, x := range exts {
		if n := len(out); n > 0 {
			p := &out[n-1]
			if p.End() == x.FileOff && p.Start+p.Len == x.Start {
				p.Len += x.Len
				continue
			}
		}
		out = append(out, x)
	}
	return out
}

// chargeBlock applies the model-cost charge for materializing idx, failing
// with ErrNoSpace at exactly the moment the specification model would.
func (fs *FS) chargeBlock(st *delFile, idx int64) error {
	fs.allocMu.Lock()
	d := st.chargeCost(idx)
	if fs.usedData+d > fs.dataBlocks {
		fs.allocMu.Unlock()
		return fserr.ErrNoSpace
	}
	fs.usedData += d
	fs.allocMu.Unlock()
	st.noteCharged(idx)
	return nil
}

// unchargeIdx releases idx's model-cost charge (truncate, release).
func (fs *FS) unchargeIdx(st *delFile, idx int64) {
	fs.allocMu.Lock()
	fs.usedData -= st.unchargeCost(idx)
	fs.allocMu.Unlock()
	st.noteUncharged(idx)
}

// allocBlockPhys claims one physical block without touching the logical
// charge — for extent machinery (nodes, demote spine) whose cost the model
// already charged.
func (fs *FS) allocBlockPhys() (uint32, error) {
	fs.allocMu.Lock()
	defer fs.allocMu.Unlock()
	return fs.allocBlockLocked()
}

// allocRunPhys claims up to want physically contiguous blocks, preferring a
// full-length run and falling back to the longest available. No logical
// charge (see allocBlockPhys). Runs never span bitmap blocks, which caps a
// single run at BitsPerBlock blocks — far above any want this codebase uses.
func (fs *FS) allocRunPhys(want uint32) (uint32, uint32, error) {
	if want == 0 {
		return 0, 0, fserr.ErrInvalid
	}
	fs.allocMu.Lock()
	defer fs.allocMu.Unlock()
	for rel := uint32(0); rel < fs.sb.BlockBitmapLen; rel++ {
		buf, err := fs.bc.Get(fs.sb.BlockBitmapStart + rel)
		if err != nil {
			return 0, 0, err
		}
		base := rel * disklayout.BitsPerBlock
		limit := uint32(disklayout.BitsPerBlock)
		if fs.sb.NumBlocks-base < limit {
			limit = fs.sb.NumBlocks - base
		}
		hint := uint32(0)
		if fs.sb.DataStart > base {
			hint = fs.sb.DataStart - base
		}
		if hint >= limit {
			fs.bc.Release(buf)
			continue
		}
		start, n, ok := disklayout.FindFreeRun(buf.Data, hint, limit, want)
		if !ok {
			fs.bc.Release(buf)
			continue
		}
		for i := uint32(0); i < n; i++ {
			disklayout.SetBit(buf.Data, start+i)
		}
		fs.bc.MarkDirtyMeta(buf)
		fs.bc.Release(buf)
		return base + start, n, nil
	}
	return 0, 0, fserr.ErrNoSpace
}

// freeBlockPhys returns a physical block to the bitmap without touching the
// logical charge (the counterpart of allocBlockPhys/allocRunPhys).
func (fs *FS) freeBlockPhys(blk uint32) error {
	return fs.freeBlockCharged(blk, false)
}

// --- data path -------------------------------------------------------------

// extWriteBlocks is the extent branch of WriteAt's block loop: overwrites of
// mapped blocks go through the cache, writes into unmapped blocks are charged
// and buffered for sync-time allocation. Returns bytes written and the error
// that stopped a short write.
func (fs *FS) extWriteBlocks(ci *cache.CachedInode, off int64, data []byte) (int, error) {
	st, err := fs.extState(ci)
	if err != nil {
		return 0, err
	}
	written := 0
	end := off + int64(len(data))
	for pos := off; pos < end; {
		bi := pos / disklayout.BlockSize
		boff := pos % disklayout.BlockSize
		chunk := disklayout.BlockSize - boff
		if pos+chunk > end {
			chunk = end - pos
		}
		if bi >= disklayout.MaxFileBlocks {
			return written, fmt.Errorf("basefs: block index %d out of range: %w", bi, fserr.ErrInvalid)
		}
		src := data[written : written+int(chunk)]
		if b, ok := st.bufs[bi]; ok {
			copy(b[boff:], src)
		} else if b, ok := st.flushing[bi]; ok {
			// Copy-on-write: the sync round's frozen snapshot stays immutable.
			nb := make([]byte, disklayout.BlockSize)
			copy(nb, b)
			copy(nb[boff:], src)
			st.bufs[bi] = nb
		} else if phys := extentFor(st.exts, bi); phys != 0 {
			buf, gerr := fs.bc.Get(phys)
			if gerr != nil {
				return written, gerr
			}
			copy(buf.Data[boff:], src)
			fs.bc.MarkDirty(buf)
			fs.bc.Release(buf)
		} else {
			if cerr := fs.chargeBlock(st, bi); cerr != nil {
				return written, cerr
			}
			nb := make([]byte, disklayout.BlockSize)
			copy(nb[boff:], src)
			st.bufs[bi] = nb
		}
		written += int(chunk)
		pos += chunk
	}
	return written, nil
}

// extReadInto fills out (already clamped to the file size) starting at off.
// Pending delalloc buffers and cached blocks are served from memory; cache
// misses are batched into vectored device reads, full-block misses landing
// directly in the caller's buffer. The final run is extended with
// extent-keyed readahead, installed into the cache for the next request.
func (fs *FS) extReadInto(ci *cache.CachedInode, off int64, out []byte) error {
	st, err := fs.extState(ci)
	if err != nil {
		return err
	}
	end := off + int64(len(out))
	type missBlk struct {
		phys    uint32
		dst     []byte // full-block destination buffer
		install bool   // adopt into the cache after the read
		sub     []byte // partial reads: the caller-visible destination
		lo      int64  // partial reads: offset within the block
	}
	var run []missBlk
	lastBi := int64(-1)
	flush := func(readahead bool) error {
		if len(run) == 0 {
			return nil
		}
		if readahead {
			sizeBlocks := (ci.Inode.Size + disklayout.BlockSize - 1) / disklayout.BlockSize
			next := lastBi + 1
			for k := 0; k < readaheadBlocks && next < sizeBlocks; k++ {
				phys := extentFor(st.exts, next)
				if phys != run[len(run)-1].phys+1 {
					break
				}
				if buf := fs.bc.Peek(phys); buf != nil {
					fs.bc.Release(buf)
					break
				}
				run = append(run, missBlk{phys: phys, dst: make([]byte, disklayout.BlockSize), install: true})
				next++
			}
		}
		bufs := make([][]byte, len(run))
		for i := range run {
			bufs[i] = run[i].dst
		}
		err := blockdev.ReadVec(fs.dev, []blockdev.Run{{Blk: run[0].phys, Bufs: bufs}})
		if err != nil {
			run = run[:0]
			return err
		}
		for i := range run {
			m := &run[i]
			if m.sub != nil {
				copy(m.sub, m.dst[m.lo:])
			}
			if m.install {
				fs.bc.InstallClean(m.phys, m.dst)
			}
		}
		run = run[:0]
		return nil
	}
	for pos := off; pos < end; {
		bi := pos / disklayout.BlockSize
		boff := pos % disklayout.BlockSize
		chunk := disklayout.BlockSize - boff
		if pos+chunk > end {
			chunk = end - pos
		}
		dst := out[pos-off : pos-off+chunk]
		if b, ok := st.bufs[bi]; ok {
			if err := flush(false); err != nil {
				return err
			}
			copy(dst, b[boff:])
		} else if b, ok := st.flushing[bi]; ok {
			if err := flush(false); err != nil {
				return err
			}
			copy(dst, b[boff:])
		} else if phys := extentFor(st.exts, bi); phys == 0 {
			if err := flush(false); err != nil {
				return err
			}
			for i := range dst {
				dst[i] = 0
			}
		} else if buf := fs.bc.Peek(phys); buf != nil {
			if err := flush(false); err != nil {
				return err
			}
			copy(dst, buf.Data[boff:])
			fs.bc.Release(buf)
		} else {
			if len(run) > 0 && run[len(run)-1].phys+1 != phys {
				if err := flush(false); err != nil {
					return err
				}
			}
			m := missBlk{phys: phys}
			if boff == 0 && chunk == disklayout.BlockSize {
				m.dst = dst // zero-copy: the device fills the caller's buffer
			} else {
				m.dst = make([]byte, disklayout.BlockSize)
				m.install = true
				m.sub = dst
				m.lo = boff
			}
			run = append(run, m)
			lastBi = bi
		}
		pos += chunk
	}
	return flush(true)
}

// extZeroTail zeroes the bytes past size in the last kept block after an
// extent truncate, wherever that block currently lives.
func (fs *FS) extZeroTail(ci *cache.CachedInode, size int64) error {
	tail := size % disklayout.BlockSize
	if tail == 0 {
		return nil
	}
	bi := size / disklayout.BlockSize
	st, err := fs.extState(ci)
	if err != nil {
		return err
	}
	if b, ok := st.bufs[bi]; ok {
		for i := tail; i < disklayout.BlockSize; i++ {
			b[i] = 0
		}
		return nil
	}
	if b, ok := st.flushing[bi]; ok {
		nb := make([]byte, disklayout.BlockSize)
		copy(nb, b)
		for i := tail; i < disklayout.BlockSize; i++ {
			nb[i] = 0
		}
		st.bufs[bi] = nb
		return nil
	}
	if phys := extentFor(st.exts, bi); phys != 0 {
		buf, err := fs.bc.Get(phys)
		if err != nil {
			return err
		}
		for i := tail; i < disklayout.BlockSize; i++ {
			buf.Data[i] = 0
		}
		fs.bc.MarkDirty(buf)
		fs.bc.Release(buf)
	}
	return nil
}

// truncateExtents drops every materialized block at index >= keep — pending
// buffers are simply uncharged, mapped blocks are freed — and rewrites the
// extent list. Called with the namespace lock held exclusively.
func (fs *FS) truncateExtents(ci *cache.CachedInode, keep int64) error {
	st, err := fs.extState(ci)
	if err != nil {
		return err
	}
	for idx := range st.bufs {
		if idx >= keep {
			delete(st.bufs, idx)
			fs.unchargeIdx(st, idx)
		}
	}
	for idx := range st.flushing {
		if idx >= keep {
			delete(st.flushing, idx)
			fs.unchargeIdx(st, idx)
		}
	}
	var out []disklayout.Extent
	for _, e := range st.exts {
		switch {
		case int64(e.End()) <= keep:
			out = append(out, e)
		case int64(e.FileOff) >= keep:
			for k := uint32(0); k < e.Len; k++ {
				if err := fs.freeBlockPhys(e.Start + k); err != nil {
					return err
				}
				fs.unchargeIdx(st, int64(e.FileOff+k))
			}
		default: // straddles keep
			keepLen := uint32(keep - int64(e.FileOff))
			for k := keepLen; k < e.Len; k++ {
				if err := fs.freeBlockPhys(e.Start + k); err != nil {
					return err
				}
				fs.unchargeIdx(st, int64(e.FileOff+k))
			}
			e.Len = keepLen
			out = append(out, e)
		}
	}
	st.exts = out
	// Re-install: the shrunken list may need fewer nodes, and removing
	// indexes can shrink the spine budget below the nodes still needed, in
	// which case installExtents demotes.
	if err := fs.installExtents(ci, st); err != nil {
		return err
	}
	fs.markInodeDirty(ci)
	return nil
}

// --- extent installation and the demote fallback ---------------------------

// installExtents writes st.exts into the inode: the head inline, the tail
// into a chain of CRC-covered node blocks, reusing and freeing chain blocks
// as the list grows and shrinks. If the chain would exceed the file's spine
// budget — the physical allowance the model's charge covers — the file is
// demoted to the legacy block map instead.
func (fs *FS) installExtents(ci *cache.CachedInode, st *delFile) error {
	exts := st.exts
	if len(exts) > disklayout.MaxInlineExtents {
		rest := exts[disklayout.MaxInlineExtents:]
		nodesNeeded := (len(rest) + disklayout.ExtentsPerNode - 1) / disklayout.ExtentsPerNode
		if int64(nodesNeeded) > st.spineBudget() {
			return fs.demoteToBmap(ci, st)
		}
		for len(st.nodes) < nodesNeeded {
			nb, err := fs.allocBlockPhys()
			if err != nil {
				return err
			}
			st.nodes = append(st.nodes, nb)
		}
		for len(st.nodes) > nodesNeeded {
			last := st.nodes[len(st.nodes)-1]
			if err := fs.freeBlockPhys(last); err != nil {
				return err
			}
			st.nodes = st.nodes[:len(st.nodes)-1]
		}
		for i := 0; i < nodesNeeded; i++ {
			lo := i * disklayout.ExtentsPerNode
			hi := lo + disklayout.ExtentsPerNode
			if hi > len(rest) {
				hi = len(rest)
			}
			var next uint32
			if i+1 < nodesNeeded {
				next = st.nodes[i+1]
			}
			enc := disklayout.EncodeExtentNode(&disklayout.ExtentNode{Next: next, Extents: rest[lo:hi]})
			buf := fs.bc.GetZero(st.nodes[i])
			copy(buf.Data, enc)
			fs.bc.MarkDirtyMeta(buf)
			fs.bc.Release(buf)
		}
		ci.Inode.SetInlineExtents(exts[:disklayout.MaxInlineExtents])
		ci.Inode.Indirect = st.nodes[0]
	} else {
		for _, nb := range st.nodes {
			if err := fs.freeBlockPhys(nb); err != nil {
				return err
			}
		}
		st.nodes = nil
		ci.Inode.SetInlineExtents(exts)
		ci.Inode.Indirect = 0
	}
	// DblIndir is never written on the extent path; leave it alone so a
	// scribble there reaches sync-validate instead of being healed silently.
	return nil
}

// demoteToBmap converts an over-fragmented extent file back to the legacy
// pointer tree. Chain nodes are freed FIRST so the spine allocation below
// stays within the file's logical charge at every step; pending delalloc
// buffers get physical homes now and become ordinary dirty cache blocks.
// After demotion the file's physical cost equals the model's exactly, the
// delFile is dropped, and every later operation takes the legacy paths.
func (fs *FS) demoteToBmap(ci *cache.CachedInode, st *delFile) error {
	fs.telExtDemotions.Inc()
	for _, nb := range st.nodes {
		if err := fs.freeBlockPhys(nb); err != nil {
			return err
		}
	}
	st.nodes = nil
	exts := st.exts
	ci.Inode.Flags &^= disklayout.FlagExtents
	ci.Inode.Direct = [disklayout.NumDirect]uint32{}
	ci.Inode.Indirect = 0
	ci.Inode.DblIndir = 0
	for _, e := range exts {
		for k := uint32(0); k < e.Len; k++ {
			if err := fs.placePtr(ci, int64(e.FileOff)+int64(k), e.Start+k); err != nil {
				return err
			}
		}
	}
	// Pending buffers that the extent list already maps (a sync round allocated
	// their runs before deciding to demote) keep that physical home; truly
	// unmapped ones are placed now. flushing before bufs so a copy-on-write
	// generation in bufs wins at the shared physical block.
	for _, pending := range []map[int64][]byte{st.flushing, st.bufs} {
		for idx, b := range pending {
			p := extentFor(exts, idx)
			if p == 0 {
				var err error
				p, err = fs.allocBlockPhys()
				if err != nil {
					return err
				}
				if err := fs.placePtr(ci, idx, p); err != nil {
					return err
				}
			}
			fs.bc.Install(p, b, false)
		}
	}
	st.exts, st.bufs, st.flushing = nil, nil, nil
	fs.dropDelFile(ci.Ino)
	fs.markInodeDirty(ci)
	return nil
}

// placePtr installs an already-allocated physical block at file index idx in
// the legacy pointer tree, materializing spine blocks (uncharged — the model
// already accounts for them) as needed.
func (fs *FS) placePtr(ci *cache.CachedInode, idx int64, p uint32) error {
	switch {
	case idx < disklayout.NumDirect:
		ci.Inode.Direct[idx] = p
		return nil
	case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
		if ci.Inode.Indirect == 0 {
			ib, err := fs.allocBlockPhys()
			if err != nil {
				return err
			}
			fs.bc.Release(fs.zeroBlock(ib, true))
			ci.Inode.Indirect = ib
		}
		return fs.writePtr(ci.Inode.Indirect, idx-disklayout.NumDirect, p)
	default:
		rel := idx - disklayout.NumDirect - disklayout.PtrsPerBlock
		if ci.Inode.DblIndir == 0 {
			db, err := fs.allocBlockPhys()
			if err != nil {
				return err
			}
			fs.bc.Release(fs.zeroBlock(db, true))
			ci.Inode.DblIndir = db
		}
		l2, err := fs.readPtr(ci.Inode.DblIndir, rel/disklayout.PtrsPerBlock)
		if err != nil {
			return err
		}
		if l2 == 0 {
			l2, err = fs.allocBlockPhys()
			if err != nil {
				return err
			}
			fs.bc.Release(fs.zeroBlock(l2, true))
			if err := fs.writePtr(ci.Inode.DblIndir, rel/disklayout.PtrsPerBlock, l2); err != nil {
				return err
			}
		}
		return fs.writePtr(l2, rel%disklayout.PtrsPerBlock, p)
	}
}

// --- sync-time materialization ---------------------------------------------

// delRetire carries one file's frozen delalloc generation from Phase A
// (materialization under fs.mu) to Phase B (retirement after the vectored
// writes land).
type delRetire struct {
	ci   *cache.CachedInode
	st   *delFile
	phys map[int64]uint32 // frozen index -> physical block, this round
}

// materializeDelalloc runs in sync Phase A under the exclusive namespace
// lock: every file's pending buffers are frozen, physical runs are allocated
// for them (FindFreeRun — this is where delayed allocation pays off), and
// the new extents are installed in the inodes so this round's metadata
// snapshot covers them. Ordered-mode crash safety holds by construction: the
// data runs are written in Phase B strictly before the journal commit that
// makes the new extents (and bitmap bits) durable, so a crash between them
// leaves the blocks free and the extents absent — never a mapped block with
// stale contents.
func (fs *FS) materializeDelalloc() ([]blockdev.Run, []delRetire, error) {
	fs.delMu.Lock()
	inos := make([]uint32, 0, len(fs.delalloc))
	for ino := range fs.delalloc {
		inos = append(inos, ino)
	}
	fs.delMu.Unlock()
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })

	var runs []blockdev.Run
	var rets []delRetire
	for _, ino := range inos {
		fs.delMu.Lock()
		st := fs.delalloc[ino]
		fs.delMu.Unlock()
		if st == nil {
			continue
		}
		// Leftovers from a failed round re-enter the pending set; newer
		// pending content wins.
		for idx, b := range st.flushing {
			if _, ok := st.bufs[idx]; !ok {
				st.bufs[idx] = b
			}
		}
		st.flushing = make(map[int64][]byte)
		if len(st.bufs) == 0 {
			continue
		}
		ci, err := fs.getAllocInode(ino)
		if err != nil {
			return nil, nil, fmt.Errorf("basefs: delalloc inode %d: %w", ino, err)
		}
		frs, ret, err := fs.materializeFile(ci, st)
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, frs...)
		if ret != nil {
			rets = append(rets, *ret)
		}
	}
	return runs, rets, nil
}

// materializeFile freezes one file's pending buffers, allocates contiguous
// runs for them, installs the resulting extent list, and builds the vectored
// write-back runs.
func (fs *FS) materializeFile(ci *cache.CachedInode, st *delFile) ([]blockdev.Run, *delRetire, error) {
	st.flushing, st.bufs = st.bufs, make(map[int64][]byte)
	idxs := make([]int64, 0, len(st.flushing))
	for idx := range st.flushing {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	// Allocate physical runs for the unmapped segments, extending the extent
	// list as we go.
	i := 0
	for i < len(idxs) {
		if extentFor(st.exts, idxs[i]) != 0 {
			i++
			continue
		}
		j := i + 1
		for j < len(idxs) && idxs[j] == idxs[j-1]+1 && extentFor(st.exts, idxs[j]) == 0 {
			j++
		}
		k := i
		for k < j {
			start, n, err := fs.allocRunPhys(uint32(j - k))
			if err != nil {
				return nil, nil, fmt.Errorf("basefs: delalloc inode %d: %w", ci.Ino, err)
			}
			st.exts = insertExtent(st.exts, disklayout.Extent{
				FileOff: uint32(idxs[k]), Start: start, Len: n,
			})
			k += int(n)
		}
		i = j
	}

	if err := fs.installExtents(ci, st); err != nil {
		return nil, nil, err
	}
	if !ci.Inode.IsExtents() {
		// Demoted: the pending buffers were installed as ordinary dirty cache
		// blocks and will ride this round's per-block snapshot.
		return nil, nil, nil
	}
	fs.markInodeDirty(ci)

	// Build the device runs: frozen blocks sorted by physical address,
	// coalesced into contiguous vectored writes.
	phys := make(map[int64]uint32, len(idxs))
	type pb struct {
		p   uint32
		buf []byte
	}
	pbs := make([]pb, 0, len(idxs))
	for _, idx := range idxs {
		p := extentFor(st.exts, idx)
		if p == 0 {
			return nil, nil, fmt.Errorf("basefs: delalloc inode %d block %d unmapped after materialization: %w",
				ci.Ino, idx, fserr.ErrCorrupt)
		}
		phys[idx] = p
		pbs = append(pbs, pb{p, st.flushing[idx]})
	}
	sort.Slice(pbs, func(a, b int) bool { return pbs[a].p < pbs[b].p })
	var runs []blockdev.Run
	for _, x := range pbs {
		if n := len(runs); n > 0 && runs[n-1].Blk+uint32(len(runs[n-1].Bufs)) == x.p {
			runs[n-1].Bufs = append(runs[n-1].Bufs, x.buf)
		} else {
			runs = append(runs, blockdev.Run{Blk: x.p, Bufs: [][]byte{x.buf}})
		}
	}
	fs.telExtMatBlocks.Add(int64(len(idxs)))
	fs.telExtMatRuns.Add(int64(len(runs)))
	return runs, &delRetire{ci: ci, st: st, phys: phys}, nil
}

// retireDelalloc completes a round's frozen generation after its vectored
// writes landed: each block's content is adopted into the cache as clean
// (disk-accurate) and removed from the flushing set, under the same locks
// the read path takes, so a reader never sees a window where the block is in
// neither place. Entries a concurrent truncate removed are simply gone.
func (fs *FS) retireDelalloc(rets []delRetire) {
	if len(rets) == 0 {
		return
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	for _, ret := range rets {
		ret.ci.Mu.Lock()
		for idx, b := range ret.st.flushing {
			if p, ok := ret.phys[idx]; ok && p != 0 {
				// Drop any stale clean copy from an earlier round before
				// adopting this one (overwrite-in-flight case).
				fs.bc.Drop(p)
				fs.bc.InstallClean(p, b)
			}
			delete(ret.st.flushing, idx)
		}
		ret.ci.Mu.Unlock()
	}
}

// --- accounting ------------------------------------------------------------

// seedAccounting computes fs.usedData for the mounted image: the physical
// block-bitmap population of the data region plus, for every extent file,
// the difference between the model's bmap-geometry charge and the file's
// (smaller) physical footprint. For an image with no extent files this is
// exactly the physical count, preserving the legacy ENOSPC behavior.
func (fs *FS) seedAccounting() error {
	var phys int64
	for rel := uint32(0); rel < fs.sb.BlockBitmapLen; rel++ {
		buf, err := fs.bc.Get(fs.sb.BlockBitmapStart + rel)
		if err != nil {
			return err
		}
		base := rel * disklayout.BitsPerBlock
		if base >= fs.sb.NumBlocks {
			fs.bc.Release(buf)
			break
		}
		limit := uint32(disklayout.BitsPerBlock)
		if fs.sb.NumBlocks-base < limit {
			limit = fs.sb.NumBlocks - base
		}
		lo := uint32(0)
		if fs.sb.DataStart > base {
			lo = fs.sb.DataStart - base
		}
		for i := lo; i < limit; i++ {
			if disklayout.TestBit(buf.Data, i) {
				phys++
			}
		}
		fs.bc.Release(buf)
	}
	phys-- // the backup superblock's bit is permanently set

	var slack int64
	for blk := fs.sb.InodeTableStart; blk < fs.sb.InodeTableStart+fs.sb.InodeTableLen; blk++ {
		buf, err := fs.bc.Get(blk)
		if err != nil {
			return err
		}
		base := (blk - fs.sb.InodeTableStart) * disklayout.InodesPerBlock
		for i := 0; i < disklayout.InodesPerBlock; i++ {
			ino := base + uint32(i)
			if ino >= fs.sb.NumInodes {
				break
			}
			rec, err := disklayout.DecodeInode(buf.Data[i*disklayout.InodeSize : (i+1)*disklayout.InodeSize])
			if err != nil || rec.IsFree() || !rec.IsExtents() {
				continue
			}
			s, err := fs.extentSlack(rec)
			if err != nil {
				// A broken chain surfaces on first access; accounting skips it.
				fs.Warnf("accounting: inode %d extent walk: %v", ino, err)
				continue
			}
			slack += s
		}
		fs.bc.Release(buf)
	}

	fs.allocMu.Lock()
	fs.usedData = phys + slack
	fs.allocMu.Unlock()
	return nil
}

// extentSlack returns modelCost - physicalCost for one extent inode: how
// much cheaper the extent layout is than the pointer tree the model charges.
func (fs *FS) extentSlack(rec *disklayout.Inode) (int64, error) {
	c := newExtCounters()
	var nodes int64
	read := func(blk uint32) ([]byte, error) {
		buf, err := fs.bc.Get(blk)
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(buf.Data))
		copy(cp, buf.Data)
		fs.bc.Release(buf)
		return cp, nil
	}
	err := rec.ExtentWalk(fs.sb, read,
		func(uint32) error { nodes++; return nil },
		func(e disklayout.Extent) error {
			for k := int64(e.FileOff); k < int64(e.End()); k++ {
				c.noteCharged(k)
			}
			return nil
		})
	if err != nil {
		return 0, err
	}
	model := c.nBlocks + c.spineBudget()
	physF := c.nBlocks + nodes
	return model - physF, nil
}
