package basefs

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// dirLookup finds name in the directory, consulting the dentry cache first
// (including negative entries) and falling back to a block scan. The caller
// holds at least the read lock.
func (fs *FS) dirLookup(dir *cache.CachedInode, name string) (uint32, error) {
	if ino, negative, found := fs.dc.Lookup(dir.Ino, name); found {
		if negative {
			return 0, fserr.ErrNotExist
		}
		return ino, nil
	}
	ino, _, _, err := fs.dirScan(dir, name)
	if err != nil {
		if err == fserr.ErrNotExist {
			fs.dc.AddNegative(dir.Ino, name)
		}
		return 0, err
	}
	fs.dc.Add(dir.Ino, name, ino)
	return ino, nil
}

// dirScan walks the directory's blocks for name, returning the child ino
// and the (block index, slot) where the entry lives.
func (fs *FS) dirScan(dir *cache.CachedInode, name string) (ino uint32, blkIdx int64, slot int, err error) {
	nblocks := dir.Inode.Size / disklayout.BlockSize
	for bi := int64(0); bi < nblocks; bi++ {
		p, err := fs.bmap(dir, bi)
		if err != nil {
			return 0, 0, 0, err
		}
		if p == 0 {
			return 0, 0, 0, fmt.Errorf("basefs: directory %d has hole at block %d: %w", dir.Ino, bi, fserr.ErrCorrupt)
		}
		buf, err := fs.bc.Get(p)
		if err != nil {
			return 0, 0, 0, err
		}
		for s := 0; s < disklayout.DirentsPerBlock; s++ {
			d, derr := disklayout.DecodeDirent(buf.Data[s*disklayout.DirentSize:])
			if derr != nil {
				if fs.opts.ExtraChecks {
					fs.bc.Release(buf)
					return 0, 0, 0, fmt.Errorf("basefs: directory %d block %d slot %d: %w", dir.Ino, bi, s, derr)
				}
				continue // performance posture: skip undecodable entries
			}
			if d.Ino != 0 && d.Name == name {
				fs.bc.Release(buf)
				return d.Ino, bi, s, nil
			}
		}
		fs.bc.Release(buf)
	}
	return 0, 0, 0, fserr.ErrNotExist
}

// dirInsert adds (name -> ino) in the first free slot, extending the
// directory by one block if full. The caller holds the write lock and has
// verified absence.
func (fs *FS) dirInsert(dir *cache.CachedInode, name string, ino uint32) error {
	nblocks := dir.Inode.Size / disklayout.BlockSize
	for bi := int64(0); bi < nblocks; bi++ {
		p, err := fs.bmap(dir, bi)
		if err != nil {
			return err
		}
		if p == 0 {
			return fmt.Errorf("basefs: directory %d has hole at block %d: %w", dir.Ino, bi, fserr.ErrCorrupt)
		}
		buf, err := fs.bc.Get(p)
		if err != nil {
			return err
		}
		for s := 0; s < disklayout.DirentsPerBlock; s++ {
			d, derr := disklayout.DecodeDirent(buf.Data[s*disklayout.DirentSize:])
			if derr == nil && d.Ino == 0 {
				disklayout.EncodeDirent(buf.Data[s*disklayout.DirentSize:], disklayout.Dirent{Ino: ino, Name: name})
				fs.bc.MarkDirtyMeta(buf)
				fs.bc.Release(buf)
				fs.dc.Add(dir.Ino, name, ino)
				return nil
			}
		}
		fs.bc.Release(buf)
	}
	// All slots full: extend the directory.
	p, err := fs.bmapAlloc(dir, nblocks)
	if err != nil {
		return err
	}
	buf, err := fs.bc.Get(p)
	if err != nil {
		return err
	}
	disklayout.EncodeDirent(buf.Data, disklayout.Dirent{Ino: ino, Name: name})
	fs.bc.MarkDirtyMeta(buf)
	fs.bc.Release(buf)
	dir.Inode.Size += disklayout.BlockSize
	fs.markInodeDirty(dir)
	fs.dc.Add(dir.Ino, name, ino)
	return nil
}

// dirRemove deletes name's entry, leaving a reusable tombstone slot
// (directories never shrink, as in ext2).
func (fs *FS) dirRemove(dir *cache.CachedInode, name string) error {
	_, bi, slot, err := fs.dirScan(dir, name)
	if err != nil {
		return err
	}
	p, err := fs.bmap(dir, bi)
	if err != nil {
		return err
	}
	buf, err := fs.bc.Get(p)
	if err != nil {
		return err
	}
	for i := slot * disklayout.DirentSize; i < (slot+1)*disklayout.DirentSize; i++ {
		buf.Data[i] = 0
	}
	fs.bc.MarkDirtyMeta(buf)
	fs.bc.Release(buf)
	fs.dc.Invalidate(dir.Ino, name)
	return nil
}

// dirReplace atomically points name's existing slot at a new inode (the
// rename-over-target case), preserving slot position so listing order
// matches the in-place-replace semantics of the specification model.
func (fs *FS) dirReplace(dir *cache.CachedInode, name string, ino uint32) error {
	_, bi, slot, err := fs.dirScan(dir, name)
	if err != nil {
		return err
	}
	p, err := fs.bmap(dir, bi)
	if err != nil {
		return err
	}
	buf, err := fs.bc.Get(p)
	if err != nil {
		return err
	}
	disklayout.EncodeDirent(buf.Data[slot*disklayout.DirentSize:], disklayout.Dirent{Ino: ino, Name: name})
	fs.bc.MarkDirtyMeta(buf)
	fs.bc.Release(buf)
	fs.dc.Add(dir.Ino, name, ino)
	return nil
}

// dirIsEmpty reports whether the directory has no live entries.
func (fs *FS) dirIsEmpty(dir *cache.CachedInode) (bool, error) {
	nblocks := dir.Inode.Size / disklayout.BlockSize
	for bi := int64(0); bi < nblocks; bi++ {
		p, err := fs.bmap(dir, bi)
		if err != nil {
			return false, err
		}
		if p == 0 {
			continue
		}
		buf, err := fs.bc.Get(p)
		if err != nil {
			return false, err
		}
		for s := 0; s < disklayout.DirentsPerBlock; s++ {
			d, derr := disklayout.DecodeDirent(buf.Data[s*disklayout.DirentSize:])
			if derr == nil && d.Ino != 0 {
				fs.bc.Release(buf)
				return false, nil
			}
		}
		fs.bc.Release(buf)
	}
	return true, nil
}

// dirList returns all live entries in slot order with each child's type.
func (fs *FS) dirList(dir *cache.CachedInode) ([]fsapi.DirEntry, error) {
	var out []fsapi.DirEntry
	nblocks := dir.Inode.Size / disklayout.BlockSize
	for bi := int64(0); bi < nblocks; bi++ {
		p, err := fs.bmap(dir, bi)
		if err != nil {
			return nil, err
		}
		if p == 0 {
			continue
		}
		buf, err := fs.bc.Get(p)
		if err != nil {
			return nil, err
		}
		for s := 0; s < disklayout.DirentsPerBlock; s++ {
			d, derr := disklayout.DecodeDirent(buf.Data[s*disklayout.DirentSize:])
			if derr != nil || d.Ino == 0 {
				continue
			}
			out = append(out, fsapi.DirEntry{Name: d.Name, Ino: d.Ino})
		}
		fs.bc.Release(buf)
	}
	for i := range out {
		child, err := fs.getAllocInode(out[i].Ino)
		if err != nil {
			return nil, err
		}
		out[i].Type = child.Inode.Type()
	}
	return out, nil
}

// walk resolves path components to an inode, requiring intermediate
// components to be directories.
func (fs *FS) walk(comps []string) (*cache.CachedInode, error) {
	cur, err := fs.getAllocInode(fs.sb.RootIno)
	if err != nil {
		return nil, err
	}
	for _, c := range comps {
		if !cur.Inode.IsDir() {
			return nil, fserr.ErrNotDir
		}
		ino, err := fs.dirLookup(cur, c)
		if err != nil {
			return nil, err
		}
		cur, err = fs.getAllocInode(ino)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// walkPath is walk over a raw path string.
func (fs *FS) walkPath(path string) (*cache.CachedInode, error) {
	comps, err := fsapi.SplitPath(path)
	if err != nil {
		return nil, err
	}
	return fs.walk(comps)
}

// walkParent resolves path to (parent directory, final component).
func (fs *FS) walkParent(path string) (*cache.CachedInode, string, error) {
	dir, base, err := fsapi.SplitDirBase(path)
	if err != nil {
		return nil, "", err
	}
	if err := disklayout.ValidName(base); err != nil {
		return nil, "", err
	}
	parent, err := fs.walk(dir)
	if err != nil {
		return nil, "", err
	}
	if !parent.Inode.IsDir() {
		return nil, "", fserr.ErrNotDir
	}
	return parent, base, nil
}
