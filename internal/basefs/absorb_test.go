package basefs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/handoff"
	"repro/internal/mkfs"
	"repro/internal/shadowfs"
)

// buildUpdate has a shadow produce a real metadata update for a fresh image.
func buildUpdate(t *testing.T, dev *blockdev.Mem) *handoff.Update {
	t.Helper()
	sh, err := shadowfs.New(dev, shadowfs.Options{SkipFsck: true})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := sh.Create("/recovered", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.WriteAt(fd, 0, []byte("from the shadow")); err != nil {
		t.Fatal(err)
	}
	res, err := sh.Replay(shadowfs.ReplayInput{BaseFDs: map[fsapi.FD]uint32{}})
	if err != nil {
		t.Fatal(err)
	}
	// The replay above seeds nothing; package the live overlay instead.
	_ = res
	blocks, meta := sh.Overlay()
	u := handoff.NewUpdate()
	for blk, data := range blocks {
		cp := make([]byte, len(data))
		copy(cp, data)
		u.Blocks[blk] = cp
		if meta[blk] {
			u.Meta[blk] = true
		}
	}
	for fdv, ino := range sh.OpenFDs() {
		u.FDs = append(u.FDs, handoff.FDEntry{FD: fdv, Ino: ino})
	}
	u.Clock = sh.Clock()
	u.Seal()
	return u
}

func TestAbsorbInstallsShadowState(t *testing.T) {
	dev := blockdev.NewMem(4096)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64}); err != nil {
		t.Fatal(err)
	}
	u := buildUpdate(t, dev)
	fs, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	if err := fs.Absorb(u); err != nil {
		t.Fatalf("Absorb: %v", err)
	}
	if fs.Clock() != u.Clock {
		t.Errorf("clock = %d, want %d", fs.Clock(), u.Clock)
	}
	// The absorbed descriptor works immediately.
	if len(u.FDs) != 1 {
		t.Fatalf("update fds = %+v", u.FDs)
	}
	got, err := fs.ReadAt(u.FDs[0].FD, 0, 100)
	if err != nil || string(got) != "from the shadow" {
		t.Fatalf("read through absorbed fd = (%q, %v)", got, err)
	}
	// The state is dirty, not durable, until the next sync.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Kill()
	fd, err := fs2.Open("/recovered")
	if err != nil {
		t.Fatal(err)
	}
	got, _ = fs2.ReadAt(fd, 0, 100)
	if string(got) != "from the shadow" {
		t.Errorf("durable content = %q", got)
	}
}

// TestAbsorbChunkStream splits a real shadow update into a chunk stream
// (including a retraction) and verifies the streaming absorb path ends in
// the same state the monolithic path would, with the manifest catching a
// truncated stream.
func TestAbsorbChunkStream(t *testing.T) {
	dev := blockdev.NewMem(4096)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64}); err != nil {
		t.Fatal(err)
	}
	u := buildUpdate(t, dev)
	blks := u.SortedBlocks()
	if len(blks) < 2 {
		t.Fatalf("update too small to stream: %d blocks", len(blks))
	}
	// Chunk 0: first half plus a decoy block later retracted. Chunk 1: rest.
	decoy := blks[len(blks)-1] + 1
	c0 := handoff.NewChunk(0)
	for _, blk := range blks[:len(blks)/2] {
		c0.Blocks[blk] = u.Blocks[blk]
		c0.Meta[blk] = u.Meta[blk]
	}
	decoyData := make([]byte, disklayout.BlockSize)
	for i := range decoyData {
		decoyData[i] = 0xAB
	}
	c0.Blocks[decoy] = decoyData
	c0.Seal()
	c1 := handoff.NewChunk(1)
	for _, blk := range blks[len(blks)/2:] {
		c1.Blocks[blk] = u.Blocks[blk]
		c1.Meta[blk] = u.Meta[blk]
	}
	c1.Freed = []uint32{decoy}
	c1.Seal()
	m := &handoff.Manifest{
		NumChunks: 2,
		Chain:     handoff.ChainSums([]uint32{c0.Sum, c1.Sum}),
		FDs:       u.FDs,
		Clock:     u.Clock,
	}
	m.Seal()

	fs, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	// Out-of-order chunk is rejected before anything is installed.
	if err := fs.AbsorbChunk(c1); !errors.Is(err, fserr.ErrCorrupt) {
		t.Fatalf("out-of-order chunk: %v", err)
	}
	if err := fs.AbsorbChunk(c0); err != nil {
		t.Fatalf("chunk 0: %v", err)
	}
	// A manifest before the full stream must fail the chain check.
	if err := fs.AbsorbManifest(m); !errors.Is(err, fserr.ErrCorrupt) {
		t.Fatalf("early manifest: %v", err)
	}
	if err := fs.AbsorbChunk(c1); err != nil {
		t.Fatalf("chunk 1: %v", err)
	}
	if err := fs.AbsorbManifest(m); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if fs.Clock() != u.Clock {
		t.Errorf("clock = %d, want %d", fs.Clock(), u.Clock)
	}
	got, err := fs.ReadAt(u.FDs[0].FD, 0, 100)
	if err != nil || string(got) != "from the shadow" {
		t.Fatalf("read through absorbed fd = (%q, %v)", got, err)
	}
	// The retracted decoy never reaches the device.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	raw, err := dev.ReadBlock(decoy)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range raw {
		if b != 0 {
			// Freshly formatted device: the decoy block must still be zero.
			t.Fatal("retracted chunk block leaked to the device")
		}
	}
}

func TestAbsorbRejections(t *testing.T) {
	dev := blockdev.NewMem(4096)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()

	// Unsealed update.
	u := handoff.NewUpdate()
	u.Blocks[sb.DataStart] = make([]byte, disklayout.BlockSize)
	if err := fs.Absorb(u); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("unsealed: %v", err)
	}
	// Journal-region write.
	u = handoff.NewUpdate()
	u.Blocks[sb.JournalStart] = make([]byte, disklayout.BlockSize)
	u.Seal()
	if err := fs.Absorb(u); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("journal write: %v", err)
	}
	// Superblock write.
	u = handoff.NewUpdate()
	u.Blocks[0] = make([]byte, disklayout.BlockSize)
	u.Seal()
	if err := fs.Absorb(u); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("superblock write: %v", err)
	}
	// Out-of-range block.
	u = handoff.NewUpdate()
	u.Blocks[sb.NumBlocks+5] = make([]byte, disklayout.BlockSize)
	u.Seal()
	if err := fs.Absorb(u); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("out of range: %v", err)
	}
	// Descriptor to a free inode.
	u = handoff.NewUpdate()
	u.FDs = []handoff.FDEntry{{FD: 0, Ino: 17}}
	u.Seal()
	if err := fs.Absorb(u); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("fd to free inode: %v", err)
	}
	// Descriptor to a directory.
	u = handoff.NewUpdate()
	u.FDs = []handoff.FDEntry{{FD: 0, Ino: sb.RootIno}}
	u.Seal()
	if err := fs.Absorb(u); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("fd to directory: %v", err)
	}
}

func TestFsyncAndSetPermDirect(t *testing.T) {
	fs, dev := newFS(t)
	fd, err := fs.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 0, []byte("fsync me")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Fsync(99); !errors.Is(err, fserr.ErrBadFD) {
		t.Errorf("fsync bad fd: %v", err)
	}
	if err := fs.SetPerm("/f", 0o400); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.Stat("/f")
	if disklayout.ModePerm(st.Mode) != 0o400 {
		t.Errorf("perm = %o", disklayout.ModePerm(st.Mode))
	}
	if err := fs.SetPerm("/missing", 0o400); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("setperm missing: %v", err)
	}
	// Fsync persisted the data: crash and verify.
	crash := dev.Snapshot()
	fs.Close(fd)
	fs.Kill()
	fs2, err := Mount(crash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Kill()
	fd2, err := fs2.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := fs2.ReadAt(fd2, 0, 100)
	if !bytes.Equal(got, []byte("fsync me")) {
		t.Errorf("fsync durability: %q", got)
	}
}

func TestTruncateThroughDoubleIndirect(t *testing.T) {
	// A file reaching into the double-indirect range, then truncated in
	// stages, exercising truncateDouble's pruning.
	dev := blockdev.NewMem(16384)
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 64, JournalBlocks: 32}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	fd, err := fs.Create("/deep", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close(fd)
	// Sparse writes at indices straddling the double-indirect boundary.
	idxs := []int64{
		0,
		disklayout.NumDirect,
		disklayout.NumDirect + disklayout.PtrsPerBlock - 1,
		disklayout.NumDirect + disklayout.PtrsPerBlock, // first dbl-indirect
		disklayout.NumDirect + disklayout.PtrsPerBlock + disklayout.PtrsPerBlock + 3,
	}
	for _, idx := range idxs {
		if _, err := fs.WriteAt(fd, idx*disklayout.BlockSize, []byte{byte(idx)}); err != nil {
			t.Fatalf("write idx %d: %v", idx, err)
		}
	}
	for _, idx := range idxs {
		got, err := fs.ReadAt(fd, idx*disklayout.BlockSize, 1)
		if err != nil || got[0] != byte(idx) {
			t.Fatalf("read idx %d: %v", idx, err)
		}
	}
	// Truncate back below the double-indirect range: its chain must be
	// freed entirely.
	cut := (disklayout.NumDirect + disklayout.PtrsPerBlock) * disklayout.BlockSize
	if err := fs.Truncate("/deep", int64(cut)); err != nil {
		t.Fatal(err)
	}
	// And fully.
	if err := fs.Truncate("/deep", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Space fully reclaimed: a fresh max-range write succeeds again.
	if _, err := fs.WriteAt(fd, int64(disklayout.NumDirect+disklayout.PtrsPerBlock+10)*disklayout.BlockSize,
		[]byte("again")); err != nil {
		t.Fatalf("rewrite after deep truncate: %v", err)
	}
}

func TestRenameDirAcrossParentsDirect(t *testing.T) {
	fs, _ := newFS(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.Mkdir("/p1", 0o755))
	must(fs.Mkdir("/p2", 0o755))
	must(fs.Mkdir("/p1/child", 0o755))
	fd, _ := fs.Create("/p1/child/file", 0o644)
	fs.Close(fd)
	must(fs.Rename("/p1/child", "/p2/child"))
	s1, _ := fs.Stat("/p1")
	s2, _ := fs.Stat("/p2")
	if s1.Nlink != 2 || s2.Nlink != 3 {
		t.Errorf("nlinks after cross-parent dir move: p1=%d p2=%d", s1.Nlink, s2.Nlink)
	}
	if _, err := fs.Stat("/p2/child/file"); err != nil {
		t.Errorf("content lost in move: %v", err)
	}
	// Error branches.
	if err := fs.Rename("/missing", "/p2/x"); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("rename missing: %v", err)
	}
	if err := fs.Rename("/p2/child", "/p2/child/inside"); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("rename into self: %v", err)
	}
	if err := fs.Rename("/p2/child", "/p2/child"); err != nil {
		t.Errorf("rename self noop: %v", err)
	}
	long := string(bytes.Repeat([]byte{'n'}, disklayout.MaxNameLen+1))
	if err := fs.Rename("/p2/child", "/p2/"+long); !errors.Is(err, fserr.ErrNameTooLong) {
		t.Errorf("rename long name: %v", err)
	}
}

func TestSuperblockAccessor(t *testing.T) {
	fs, _ := newFS(t)
	if fs.Superblock() == nil || fs.Superblock().RootIno != disklayout.RootIno {
		t.Error("Superblock accessor broken")
	}
	fs.SetClock(42)
	if fs.Clock() != 42 {
		t.Error("clock accessors broken")
	}
}
