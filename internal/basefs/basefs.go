// Package basefs is the performance-oriented base filesystem: the complex,
// concurrent, cached, journaled implementation that handles all requests in
// the common case — and that contains the bugs RAE recovers from.
//
// Architecturally it is the left side of the paper's Figure 2: a VFS-style
// operation layer over a dentry cache, an inode cache, a write-back buffer
// cache, a write-ahead journal for metadata, and an asynchronous multi-queue
// block layer. Runtime checks are minimal by default ("due to performance
// concerns, runtime checks are commonly disabled in the base", §2.3); the
// few cheap ones that exist (inode checksums on decode, block-pointer bounds
// before IO, and pre-persist sync validation) are the error detectors that
// hand control to the RAE supervisor.
//
// The package also implements the base-side half of the RAE contract:
//   - fault-injection seams on every operation path (see Seams),
//   - Kill, the abrupt teardown a contained reboot starts with, and
//   - Absorb/SetFDTable, the "metadata downloading" interface that installs
//     the shadow's output into the caches as dirty state (§3.2).
package basefs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/blockdev"
	"repro/internal/cache"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/journal"
	"repro/internal/mkfs"
	"repro/internal/telemetry"
)

// Options tunes the base filesystem's performance machinery.
type Options struct {
	// CacheBlocks bounds clean buffers in the buffer cache (default 1024).
	CacheBlocks int
	// CacheInodes bounds the inode cache (default 1024).
	CacheInodes int
	// CacheDentries bounds the dentry cache (default 4096).
	CacheDentries int
	// QueueWorkers is the async block layer's worker count (default 4).
	QueueWorkers int
	// QueueDepth is the submission queue depth (default 64).
	QueueDepth int
	// CachePolicy selects the buffer-cache replacement policy: "" or "lru"
	// for plain LRU, "2q" for the scan-resistant 2Q policy the paper names
	// among the base's sophisticated caching machinery.
	CachePolicy string
	// LegacyLayout forces new regular files onto the per-block direct/indirect
	// pointer tree instead of extents. Existing extent files remain readable
	// either way; this is the ablation knob the extent benchmarks compare
	// against.
	LegacyLayout bool
	// ExtraChecks enables the expensive validations the base normally skips
	// (pointer validation on every inode load, dirent re-validation on every
	// scan). Used for ablations; the shadow always checks.
	ExtraChecks bool
	// Injector is the armed bug registry; nil plants no bugs.
	Injector *faultinject.Registry
	// OnWarn, when set, receives every WARN record as it is emitted.
	OnWarn func(w Warning)
	// PrePersist, when set, runs inside Sync after validation and before the
	// first device write. Returning an error aborts the sync with the disk
	// still at the previous durable point; the RAE supervisor uses this to
	// enforce detection-before-persist for escalated WARNs.
	PrePersist func() error
	// PreSnapshot/PostSnapshot, when set, bracket each sync round's dirty
	// snapshot: PreSnapshot runs before the round takes the filesystem lock,
	// PostSnapshot as soon as the snapshot is complete and the lock is
	// released (on every exit path, including errors and contained panics).
	// The RAE supervisor uses them to scope its record-order critical
	// section to the snapshot instead of the whole sync, so namespace
	// operations run concurrently with the round's IO phases.
	PreSnapshot  func()
	PostSnapshot func()
	// OnSyncDurable, when set, runs after a sync round has made its snapshot
	// durable (metadata committed to the journal, data written home). The
	// supervisor truncates its operation log here: everything the snapshot
	// covered is now recoverable from disk.
	OnSyncDurable func()
	// Telemetry, when set, instruments the mount: per-op latency histograms,
	// cache hit/miss counters, queue IO counters, journal commit metrics,
	// replayed-transaction counts, and WARN events all flow into this sink.
	// Nil leaves the mount uninstrumented at zero cost.
	Telemetry *telemetry.Sink
}

func (o *Options) fill() {
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 1024
	}
	if o.CacheInodes == 0 {
		o.CacheInodes = 1024
	}
	if o.CacheDentries == 0 {
		o.CacheDentries = 4096
	}
	if o.QueueWorkers == 0 {
		o.QueueWorkers = 4
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
}

// Warning is a kernel-style WARN record: the base hit a condition worth
// reporting but chose to continue (the Linux "do not crash the kernel"
// discipline the paper cites).
type Warning struct {
	Seq int
	Msg string
}

// fdEntry is one open descriptor.
type fdEntry struct {
	ino uint32
}

// FS is the base filesystem. It implements fsapi.FS.
type FS struct {
	// mu is the namespace lock: exclusive for mutations, shared for lookups
	// and data-path operations (which further serialize per inode).
	mu    sync.RWMutex
	dev   blockdev.Device
	queue *blockdev.Queue
	sb    *disklayout.Superblock
	bc    *cache.BufferCache
	ic    *cache.InodeCache
	dc    *cache.DentryCache
	jnl   *journal.Journal

	// allocMu serializes bitmap scans so concurrent data-path allocations
	// don't double-allocate. It also guards usedData.
	allocMu sync.Mutex
	// usedData is the logical data-region charge in blocks — the count the
	// specification model would have for the same namespace. For legacy files
	// it equals the physical blocks consumed; for extent files (whose physical
	// footprint is smaller) the difference is tracked so ENOSPC fires at
	// exactly the model's time. Guarded by allocMu.
	usedData int64
	// dataBlocks caches sb.DataBlocks() (the model's capacity).
	dataBlocks int64

	// delMu guards the delalloc map itself; each delFile's contents are
	// guarded by its inode's lock (data path) or the namespace write lock.
	delMu    sync.Mutex
	delalloc map[uint32]*delFile

	// syncMu guards the sync-round coordination state (see syncShared):
	// concurrent fsyncs coalesce onto rounds instead of serializing whole
	// sync passes.
	syncMu    sync.Mutex
	curRound  *syncRound
	nextRound *syncRound
	// unstable holds the journaled content of blocks whose home copy is
	// stale (committed, not yet checkpointed). Only the sync-round leader
	// touches it; a checkpoint writes exactly these bytes home, never the
	// possibly newer cache content, so home writes are always of committed
	// transactions.
	unstable map[uint32][]byte

	fds   map[fsapi.FD]*fdEntry
	clock atomic.Uint64

	// mountReplay records the journal replay the mount performed; set once
	// in Mount and read-only afterwards.
	mountReplay journal.ReplayStats

	// absorbSums records the checksum of every streaming-handoff chunk
	// absorbed so far, in arrival order, so AbsorbManifest can verify the
	// chain. absorbNext is the expected index of the next chunk. Guarded
	// by mu; only populated between mount and resume during recovery.
	absorbSums []uint32
	absorbNext int

	warnMu sync.Mutex
	warns  []Warning

	opts   Options
	killed atomic.Bool

	// tel and the derived instruments are set once in Mount and read-only
	// afterwards; all are nil (and therefore no-ops) without Options.Telemetry.
	tel               *telemetry.Sink
	telWarns          *telemetry.Counter
	telSyncRounds     *telemetry.Counter
	telCkptBlocks     *telemetry.Counter
	telFlushesPerSync *telemetry.Gauge
	telExtFiles       *telemetry.Counter
	telExtMatBlocks   *telemetry.Counter
	telExtMatRuns     *telemetry.Counter
	telExtDemotions   *telemetry.Counter
	opHist            map[string]*telemetry.Histogram
}

// opNames enumerates the fsapi operations instrumented with per-op latency
// histograms ("basefs.op.<name>").
var opNames = []string{
	"mkdir", "rmdir", "create", "open", "close", "readat", "writeat",
	"truncate", "unlink", "rename", "link", "symlink", "readlink",
	"stat", "fstat", "readdir", "setperm", "fsync", "sync",
}

// opTimer starts a latency timer for op; inert when telemetry is disabled.
func (fs *FS) opTimer(op string) telemetry.Timer {
	return telemetry.StartTimer(fs.opHist[op])
}

var _ fsapi.FS = (*FS)(nil)

// Mount replays the journal, marks the filesystem dirty, and brings up the
// performance machinery. This same path serves the contained reboot: the
// supervisor calls Kill on the faulty instance and Mount on a fresh one.
func Mount(dev blockdev.Device, opts Options) (*FS, error) {
	opts.fill()
	sb, rst, err := mkfs.Recover(dev)
	if err != nil {
		return nil, fmt.Errorf("basefs: mount recovery: %w", err)
	}
	if tel := opts.Telemetry; tel != nil {
		tel.Counter("journal.replayed_txs").Add(int64(rst.Committed))
		tel.Counter("journal.replayed_blocks").Add(int64(rst.Blocks))
	}
	sb.Clean = 0
	sb.Generation++
	// Backup before primary: the in-place superblock update is the one write
	// recovery cannot replay, so at most one copy may be torn by a crash.
	if err := dev.WriteBlock(sb.BackupBlk(), disklayout.EncodeSuperblock(sb)); err != nil {
		return nil, fmt.Errorf("basefs: mount backup superblock: %w", err)
	}
	if err := dev.WriteBlock(0, disklayout.EncodeSuperblock(sb)); err != nil {
		return nil, fmt.Errorf("basefs: mount superblock: %w", err)
	}
	if err := dev.Flush(); err != nil {
		return nil, fmt.Errorf("basefs: mount flush: %w", err)
	}
	q := blockdev.NewQueue(dev, opts.QueueWorkers, opts.QueueDepth)
	bc := cache.NewBufferCache(q, opts.CacheBlocks)
	if opts.CachePolicy == "2q" {
		bc.SetPolicy(opts.CacheBlocks)
	}
	// The journal drives its IO through the async queue: transaction blocks
	// overlap across workers and its flushes are counted with the rest of
	// the base's device flushes.
	jnl, err := journal.New(q.Device(), sb)
	if err != nil {
		q.Close()
		return nil, fmt.Errorf("basefs: mount journal: %w", err)
	}
	fs := &FS{
		dev:         dev,
		queue:       q,
		sb:          sb,
		bc:          bc,
		ic:          cache.NewInodeCache(opts.CacheInodes),
		dc:          cache.NewDentryCache(opts.CacheDentries),
		jnl:         jnl,
		unstable:    make(map[uint32][]byte),
		fds:         make(map[fsapi.FD]*fdEntry),
		delalloc:    make(map[uint32]*delFile),
		dataBlocks:  int64(sb.DataBlocks()),
		mountReplay: rst,
		opts:        opts,
	}
	fs.clock.Store(sb.LastClock)
	if err := fs.seedAccounting(); err != nil {
		q.Close()
		return nil, fmt.Errorf("basefs: mount accounting: %w", err)
	}
	if tel := opts.Telemetry; tel != nil {
		fs.tel = tel
		fs.telWarns = tel.Counter("basefs.warns")
		fs.telSyncRounds = tel.Counter("basefs.sync.rounds")
		fs.telCkptBlocks = tel.Counter("basefs.sync.checkpointed_blocks")
		fs.telFlushesPerSync = tel.Gauge("basefs.sync.flushes_per_sync")
		fs.telExtFiles = tel.Counter("extent.files")
		fs.telExtMatBlocks = tel.Counter("extent.delalloc.materialized_blocks")
		fs.telExtMatRuns = tel.Counter("extent.delalloc.write_runs")
		fs.telExtDemotions = tel.Counter("extent.demotions")
		fs.opHist = make(map[string]*telemetry.Histogram, len(opNames))
		for _, op := range opNames {
			fs.opHist[op] = tel.Histogram("basefs.op." + op)
		}
		q.SetTelemetry(tel)
		bc.SetTelemetry(tel)
		fs.ic.SetTelemetry(tel)
		fs.dc.SetTelemetry(tel)
		fs.jnl.SetTelemetry(tel)
		opts.Injector.SetTelemetry(tel)
	}
	return fs, nil
}

// Superblock returns the mounted superblock (read-only use).
func (fs *FS) Superblock() *disklayout.Superblock { return fs.sb }

// MountReplay reports the journal replay this mount performed. The
// supervisor's warm recovery path uses it to verify its planning assumption
// that the contained reboot found an empty journal.
func (fs *FS) MountReplay() journal.ReplayStats { return fs.mountReplay }

// JournalLiveTxs reports how many committed transactions are waiting in the
// journal for a checkpoint — the depth of the lazy-checkpoint backlog.
func (fs *FS) JournalLiveTxs() int { return fs.jnl.LiveTxs() }

// Unmount closes every remaining descriptor (releasing any open-unlinked
// orphans, as a kernel does at shutdown), syncs and fully checkpoints the
// journal, marks the filesystem clean, and stops the block queue. The
// filesystem must not be used afterwards.
func (fs *FS) Unmount() error {
	for fd := range fs.OpenFDs() {
		if err := fs.Close(fd); err != nil {
			return err
		}
	}
	// A full checkpoint, not a lazy sync: the clean flag below promises the
	// next mount an empty journal.
	if err := fs.Checkpoint(); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.sb.Clean = 1
	// Backup before primary, as at mount: a crash between the two writes
	// leaves a valid primary (still unclean) and loses nothing.
	if err := fs.dev.WriteBlock(fs.sb.BackupBlk(), disklayout.EncodeSuperblock(fs.sb)); err != nil {
		return fmt.Errorf("basefs: unmount backup superblock: %w", err)
	}
	if err := fs.dev.WriteBlock(0, disklayout.EncodeSuperblock(fs.sb)); err != nil {
		return fmt.Errorf("basefs: unmount superblock: %w", err)
	}
	if err := fs.dev.Flush(); err != nil {
		return fmt.Errorf("basefs: unmount flush: %w", err)
	}
	fs.killed.Store(true)
	fs.queue.Close()
	return nil
}

// Kill abandons the instance without syncing: caches, fd table, and dirty
// state are discarded, exactly as a contained reboot requires ("all the
// states in the base filesystem's memory is not trusted, so we need to reset
// them", §2.2). On-disk state is left as the last durable point plus
// whatever the journal holds.
func (fs *FS) Kill() {
	if fs.killed.Swap(true) {
		return
	}
	fs.bcPurge()
	fs.queue.Close()
}

func (fs *FS) bcPurge() {
	fs.ic.Purge()
	fs.dc.Purge()
}

// Warnf records a kernel-style WARN. Bug specimens of class Warn land here,
// as do the base's own defensive checks.
func (fs *FS) Warnf(format string, args ...any) {
	fs.warnMu.Lock()
	w := Warning{Seq: len(fs.warns), Msg: fmt.Sprintf(format, args...)}
	fs.warns = append(fs.warns, w)
	cb := fs.opts.OnWarn
	fs.warnMu.Unlock()
	fs.telWarns.Inc()
	fs.tel.Event("warn", "%s", w.Msg)
	if cb != nil {
		cb(w)
	}
}

// Warnings returns all WARN records emitted so far.
func (fs *FS) Warnings() []Warning {
	fs.warnMu.Lock()
	defer fs.warnMu.Unlock()
	out := make([]Warning, len(fs.warns))
	copy(out, fs.warns)
	return out
}

// fire invokes the fault-injection seam (op, point). It is a no-op without
// an armed registry.
func (fs *FS) fire(site *faultinject.Site) error {
	if fs.opts.Injector == nil {
		return nil
	}
	if site.Warnf == nil {
		site.Warnf = fs.Warnf
	}
	return fs.opts.Injector.Fire(site)
}

// tick advances the deterministic logical clock shared (in policy) with the
// model and the shadow: one tick per mutating operation.
func (fs *FS) tick() uint64 { return fs.clock.Add(1) }

// Clock returns the current logical time, used when seeding the shadow's
// clock during recovery.
func (fs *FS) Clock() uint64 { return fs.clock.Load() }

// SetClock forces the logical clock, used when absorbing recovered state.
func (fs *FS) SetClock(v uint64) { fs.clock.Store(v) }

// SetCacheBudget adjusts the buffer cache's clean-buffer bound at runtime
// (see cache.BufferCache.SetCleanBudget): shrinking evicts immediately,
// growing takes effect on later insertions. The multi-volume rebalancer uses
// it to move cache capacity between tenants sharing one fleet budget.
func (fs *FS) SetCacheBudget(blocks int) { fs.bc.SetCleanBudget(blocks) }

// CacheBudget returns the buffer cache's current clean-buffer bound.
func (fs *FS) CacheBudget() int { return fs.bc.CleanBudget() }

// CacheStats reports hit rates of the three caches, for the throughput
// experiments contrasting base and shadow.
func (fs *FS) CacheStats() (bufHits, bufMiss, inoHits, inoMiss, dentHits, dentMiss int64) {
	bufHits, bufMiss = fs.bc.HitRate()
	inoHits, inoMiss = fs.ic.HitRate()
	dentHits, dentMiss = fs.dc.HitRate()
	return
}

// OpenFDs returns the sorted list of open descriptors and their inodes,
// which the supervisor snapshots at stable points.
func (fs *FS) OpenFDs() map[fsapi.FD]uint32 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make(map[fsapi.FD]uint32, len(fs.fds))
	for fd, e := range fs.fds {
		out[fd] = e.ino
	}
	return out
}

// errBadFD wraps fserr.ErrBadFD with the descriptor for diagnostics.
func errBadFD(fd fsapi.FD) error {
	return fmt.Errorf("basefs: fd %d: %w", fd, fserr.ErrBadFD)
}
