// Package model is the executable specification of the filesystem API: an
// abstract, obviously-correct, in-memory implementation of fsapi.FS used as
// the verification oracle.
//
// The paper's shadow is formally verified against a specification (§2.3,
// "Practical formal verification"); in this Go reproduction the model plays
// the specification's role. The shadow (and the base) are checked against it
// by the differential tester and by property-based tests: for any operation
// sequence, all three implementations must produce identical API-level
// outputs. The model therefore favors directness over everything: state is a
// pointer tree, every operation is a few lines, and there is nothing to
// cache, lock, or schedule.
//
// To make outputs (inode numbers, fd numbers, ENOSPC timing, readdir order)
// comparable with the disk-backed implementations, the model mirrors their
// deterministic policies: lowest-free inode and fd allocation,
// first-free-slot directory insertion, and block-accurate space accounting
// against the same image geometry.
package model

import (
	"sort"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// node is one inode in the abstract state.
type node struct {
	ino    uint32
	typ    uint16
	perm   uint16
	nlink  uint16
	mtime  uint64
	ctime  uint64
	opens  int // open fd count; inode survives unlink while > 0
	data   []byte
	blocks map[int64]bool // materialized file block indices, for space accounting
	target string         // symlink target
	slots  []dirSlot      // directory entries; tombstones have ino 0
}

type dirSlot struct {
	name string
	ino  uint32
}

// Model is the abstract filesystem. It implements fsapi.FS.
type Model struct {
	nodes      map[uint32]*node
	fds        map[fsapi.FD]*node
	fdScan     fsapi.FD
	clock      fsapi.Clock
	numInodes  uint32 // inode number space, mirroring the image geometry
	inoScan    uint32 // low-water mark: every ino below it is in use
	dataBlocks int64  // data-region capacity in blocks
	usedBlocks int64
}

var _ fsapi.FS = (*Model)(nil)

// New creates a model with the same resource limits as an image built from
// sb, so ENOSPC surfaces at the same operation as in the disk-backed
// implementations. The root directory consumes one inode and, like mkfs's
// root, starts with no directory blocks (the first insertion allocates one).
func New(sb *disklayout.Superblock) *Model {
	m := &Model{
		nodes:      make(map[uint32]*node),
		fds:        make(map[fsapi.FD]*node),
		numInodes:  sb.NumInodes,
		dataBlocks: int64(sb.DataBlocks()),
	}
	root := &node{ino: disklayout.RootIno, typ: disklayout.TypeDir, perm: 0o755, nlink: 2}
	m.nodes[disklayout.RootIno] = root
	m.inoScan = 1
	return m
}

// --- allocation policies (must mirror the disk implementations) ---

// allocIno picks the lowest free inode number. The scan starts at the
// low-water mark rather than 1: every number below the mark is in use, the
// mark only drops when freeIno releases a lower number, so the result is
// identical to a full lowest-free scan at amortized O(1) instead of O(live
// inodes) per allocation.
func (m *Model) allocIno() (uint32, error) {
	for ino := m.inoScan; ino < m.numInodes; ino++ {
		if _, used := m.nodes[ino]; !used {
			m.inoScan = ino + 1
			return ino, nil
		}
	}
	return 0, fserr.ErrNoSpace
}

// freeIno releases an inode number back to the allocator.
func (m *Model) freeIno(ino uint32) {
	delete(m.nodes, ino)
	if ino < m.inoScan {
		m.inoScan = ino
	}
}

// allocFD picks the lowest free descriptor, with the same low-water-mark
// amortization as allocIno: everything below fdScan is in use, and freeFD
// drops the mark when a lower number is released.
func (m *Model) allocFD() fsapi.FD {
	for fd := m.fdScan; ; fd++ {
		if _, used := m.fds[fd]; !used {
			m.fdScan = fd + 1
			return fd
		}
	}
}

// freeFD releases a descriptor back to the allocator.
func (m *Model) freeFD(fd fsapi.FD) {
	delete(m.fds, fd)
	if fd < m.fdScan {
		m.fdScan = fd
	}
}

// dirBlocks returns how many data blocks a directory with the given slot
// count occupies on disk.
func dirBlocks(nslots int) int64 {
	if nslots == 0 {
		return 0
	}
	return int64((nslots + disklayout.DirentsPerBlock - 1) / disklayout.DirentsPerBlock)
}

// dirBlockCost is dirBlocks plus the indirect-block overhead a directory of
// that size pays on disk (its blocks are allocated contiguously from index
// 0, so the overhead is a pure function of the block count).
func dirBlockCost(nslots int) int64 {
	blocks := dirBlocks(nslots)
	cost := blocks
	if blocks > disklayout.NumDirect {
		cost++ // single-indirect block
	}
	if blocks > disklayout.NumDirect+disklayout.PtrsPerBlock {
		rest := blocks - disklayout.NumDirect - disklayout.PtrsPerBlock
		cost += 1 + (rest+disklayout.PtrsPerBlock-1)/disklayout.PtrsPerBlock
	}
	return cost
}

// insertSlot adds a name to a directory, reusing the lowest tombstone,
// charging a new directory block when the slot array grows past a block
// boundary. It mirrors the disk format's first-free-slot scan.
func (m *Model) insertSlot(dir *node, name string, ino uint32) error {
	for i := range dir.slots {
		if dir.slots[i].ino == 0 {
			dir.slots[i] = dirSlot{name, ino}
			return nil
		}
	}
	before := dirBlockCost(len(dir.slots))
	after := dirBlockCost(len(dir.slots) + 1)
	if delta := after - before; delta > 0 {
		if m.usedBlocks+delta > m.dataBlocks {
			return fserr.ErrNoSpace
		}
		m.usedBlocks += delta
	}
	dir.slots = append(dir.slots, dirSlot{name, ino})
	return nil
}

func removeSlot(dir *node, name string) bool {
	for i := range dir.slots {
		if dir.slots[i].ino != 0 && dir.slots[i].name == name {
			dir.slots[i] = dirSlot{}
			return true
		}
	}
	return false
}

func (dir *node) lookupSlot(name string) (uint32, bool) {
	for i := range dir.slots {
		if dir.slots[i].ino != 0 && dir.slots[i].name == name {
			return dir.slots[i].ino, true
		}
	}
	return 0, false
}

// --- path resolution ---

// walk resolves components to a node, requiring every component to exist and
// every non-final component to be a directory.
func (m *Model) walk(comps []string) (*node, error) {
	cur := m.nodes[disklayout.RootIno]
	for _, c := range comps {
		if cur.typ != disklayout.TypeDir {
			return nil, fserr.ErrNotDir
		}
		ino, ok := cur.lookupSlot(c)
		if !ok {
			return nil, fserr.ErrNotExist
		}
		cur = m.nodes[ino]
	}
	return cur, nil
}

func (m *Model) walkPath(path string) (*node, error) {
	comps, err := fsapi.SplitPath(path)
	if err != nil {
		return nil, err
	}
	return m.walk(comps)
}

// walkParent resolves path to (parent directory node, final name).
func (m *Model) walkParent(path string) (*node, string, error) {
	dir, base, err := fsapi.SplitDirBase(path)
	if err != nil {
		return nil, "", err
	}
	if err := disklayout.ValidName(base); err != nil {
		return nil, "", err
	}
	parent, err := m.walk(dir)
	if err != nil {
		return nil, "", err
	}
	if parent.typ != disklayout.TypeDir {
		return nil, "", fserr.ErrNotDir
	}
	return parent, base, nil
}

// --- space accounting for file data ---

// fileBlockCost returns the total on-disk blocks (data + indirect) for a set
// of materialized file block indices. It mirrors the pointer geometry:
// blocks ≥ NumDirect need the single-indirect block; blocks beyond that need
// the double-indirect block plus one second-level block per PtrsPerBlock
// range.
func fileBlockCost(blocks map[int64]bool) int64 {
	var cost int64
	needInd := false
	needDbl := false
	l2 := map[int64]bool{}
	for idx := range blocks {
		cost++
		switch {
		case idx < disklayout.NumDirect:
		case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
			needInd = true
		default:
			needDbl = true
			l2[(idx-disklayout.NumDirect-disklayout.PtrsPerBlock)/disklayout.PtrsPerBlock] = true
		}
	}
	if needInd {
		cost++
	}
	if needDbl {
		cost += 1 + int64(len(l2))
	}
	return cost
}

// materialize charges for the file blocks covering [off, off+n) that are not
// yet materialized, returning how many bytes can be written before ENOSPC
// (possibly zero). It mutates n.blocks only for the affordable prefix.
func (m *Model) materialize(nd *node, off int64, n int) (int, error) {
	if n == 0 {
		return 0, nil
	}
	writable := 0
	for idx := off / disklayout.BlockSize; idx*disklayout.BlockSize < off+int64(n); idx++ {
		if !nd.blocks[idx] {
			before := fileBlockCost(nd.blocks)
			nd.blocks[idx] = true
			after := fileBlockCost(nd.blocks)
			if m.usedBlocks+after-before > m.dataBlocks {
				delete(nd.blocks, idx)
				break
			}
			m.usedBlocks += after - before
		}
		// Bytes of [off, off+n) covered through the end of this block.
		end := (idx + 1) * disklayout.BlockSize
		if end > off+int64(n) {
			end = off + int64(n)
		}
		writable = int(end - off)
	}
	if writable == 0 {
		return 0, fserr.ErrNoSpace
	}
	return writable, nil
}

// releaseFile returns all of a file's blocks to the free pool.
func (m *Model) releaseFile(nd *node) {
	m.usedBlocks -= fileBlockCost(nd.blocks)
	nd.blocks = map[int64]bool{}
}

// dropNode frees an inode once its last name and last descriptor are gone.
func (m *Model) dropNode(nd *node) {
	if nd.nlink > 0 || nd.opens > 0 {
		return
	}
	switch nd.typ {
	case disklayout.TypeFile:
		m.releaseFile(nd)
	case disklayout.TypeSym:
		if len(nd.target) > 0 {
			m.usedBlocks--
		}
	case disklayout.TypeDir:
		m.usedBlocks -= dirBlockCost(len(nd.slots))
	}
	m.freeIno(nd.ino)
}

// --- fsapi.FS implementation ---

// Mkdir implements fsapi.FS.
func (m *Model) Mkdir(path string, perm uint16) error {
	parent, name, err := m.walkParent(path)
	if err != nil {
		return err
	}
	if _, exists := parent.lookupSlot(name); exists {
		return fserr.ErrExist
	}
	ino, err := m.allocIno()
	if err != nil {
		return err
	}
	nd := &node{ino: ino, typ: disklayout.TypeDir, perm: perm & disklayout.ModePermMask, nlink: 2}
	m.nodes[ino] = nd
	if err := m.insertSlot(parent, name, ino); err != nil {
		m.freeIno(ino)
		return err
	}
	parent.nlink++
	t := m.clock.Tick()
	nd.mtime, nd.ctime = t, t
	parent.mtime, parent.ctime = t, t
	return nil
}

// Rmdir implements fsapi.FS.
func (m *Model) Rmdir(path string) error {
	parent, name, err := m.walkParent(path)
	if err != nil {
		return err
	}
	ino, ok := parent.lookupSlot(name)
	if !ok {
		return fserr.ErrNotExist
	}
	nd := m.nodes[ino]
	if nd.typ != disklayout.TypeDir {
		return fserr.ErrNotDir
	}
	for _, s := range nd.slots {
		if s.ino != 0 {
			return fserr.ErrNotEmpty
		}
	}
	removeSlot(parent, name)
	parent.nlink--
	nd.nlink = 0
	m.dropNode(nd)
	t := m.clock.Tick()
	parent.mtime, parent.ctime = t, t
	return nil
}

// Create implements fsapi.FS.
func (m *Model) Create(path string, perm uint16) (fsapi.FD, error) {
	parent, name, err := m.walkParent(path)
	if err != nil {
		return -1, err
	}
	if _, exists := parent.lookupSlot(name); exists {
		return -1, fserr.ErrExist
	}
	ino, err := m.allocIno()
	if err != nil {
		return -1, err
	}
	nd := &node{
		ino: ino, typ: disklayout.TypeFile, perm: perm & disklayout.ModePermMask,
		nlink: 1, blocks: map[int64]bool{},
	}
	m.nodes[ino] = nd
	if err := m.insertSlot(parent, name, ino); err != nil {
		m.freeIno(ino)
		return -1, err
	}
	t := m.clock.Tick()
	nd.mtime, nd.ctime = t, t
	parent.mtime, parent.ctime = t, t
	fd := m.allocFD()
	m.fds[fd] = nd
	nd.opens++
	return fd, nil
}

// Open implements fsapi.FS.
func (m *Model) Open(path string) (fsapi.FD, error) {
	nd, err := m.walkPath(path)
	if err != nil {
		return -1, err
	}
	switch nd.typ {
	case disklayout.TypeDir:
		return -1, fserr.ErrIsDir
	case disklayout.TypeSym:
		return -1, fserr.ErrInvalid
	}
	fd := m.allocFD()
	m.fds[fd] = nd
	nd.opens++
	return fd, nil
}

// Close implements fsapi.FS.
func (m *Model) Close(fd fsapi.FD) error {
	nd, ok := m.fds[fd]
	if !ok {
		return fserr.ErrBadFD
	}
	m.freeFD(fd)
	nd.opens--
	m.dropNode(nd)
	return nil
}

// ReadAt implements fsapi.FS.
func (m *Model) ReadAt(fd fsapi.FD, off int64, n int) ([]byte, error) {
	nd, ok := m.fds[fd]
	if !ok {
		return nil, fserr.ErrBadFD
	}
	if off < 0 || n < 0 {
		return nil, fserr.ErrInvalid
	}
	size := int64(len(nd.data))
	if off >= size {
		return []byte{}, nil
	}
	end := off + int64(n)
	if end > size {
		end = size
	}
	out := make([]byte, end-off)
	copy(out, nd.data[off:end])
	return out, nil
}

// WriteAt implements fsapi.FS.
func (m *Model) WriteAt(fd fsapi.FD, off int64, data []byte) (int, error) {
	nd, ok := m.fds[fd]
	if !ok {
		return 0, fserr.ErrBadFD
	}
	if off < 0 {
		return 0, fserr.ErrInvalid
	}
	if len(data) == 0 {
		return 0, nil
	}
	if off+int64(len(data)) > disklayout.MaxFileSize {
		return 0, fserr.ErrTooBig
	}
	writable, err := m.materialize(nd, off, len(data))
	if err != nil {
		return 0, err
	}
	end := off + int64(writable)
	if end > int64(len(nd.data)) {
		grown := make([]byte, end)
		copy(grown, nd.data)
		nd.data = grown
	}
	copy(nd.data[off:end], data[:writable])
	t := m.clock.Tick()
	nd.mtime, nd.ctime = t, t
	if writable < len(data) {
		return writable, fserr.ErrNoSpace
	}
	return writable, nil
}

// Truncate implements fsapi.FS.
func (m *Model) Truncate(path string, size int64) error {
	nd, err := m.walkPath(path)
	if err != nil {
		return err
	}
	if nd.typ == disklayout.TypeDir {
		return fserr.ErrIsDir
	}
	if nd.typ != disklayout.TypeFile {
		return fserr.ErrInvalid
	}
	if size < 0 || size > disklayout.MaxFileSize {
		return fserr.ErrInvalid
	}
	old := int64(len(nd.data))
	switch {
	case size < old:
		nd.data = nd.data[:size]
		// Free materialized blocks wholly beyond the new size.
		lastKept := (size + disklayout.BlockSize - 1) / disklayout.BlockSize
		before := fileBlockCost(nd.blocks)
		for idx := range nd.blocks {
			if idx >= lastKept {
				delete(nd.blocks, idx)
			}
		}
		m.usedBlocks -= before - fileBlockCost(nd.blocks)
	case size > old:
		// Extension creates a hole: no blocks are materialized.
		grown := make([]byte, size)
		copy(grown, nd.data)
		nd.data = grown
	}
	t := m.clock.Tick()
	nd.mtime, nd.ctime = t, t
	return nil
}

// Unlink implements fsapi.FS.
func (m *Model) Unlink(path string) error {
	parent, name, err := m.walkParent(path)
	if err != nil {
		return err
	}
	ino, ok := parent.lookupSlot(name)
	if !ok {
		return fserr.ErrNotExist
	}
	nd := m.nodes[ino]
	if nd.typ == disklayout.TypeDir {
		return fserr.ErrIsDir
	}
	removeSlot(parent, name)
	nd.nlink--
	t := m.clock.Tick()
	nd.ctime = t
	parent.mtime, parent.ctime = t, t
	m.dropNode(nd)
	return nil
}

// Rename implements fsapi.FS.
func (m *Model) Rename(oldPath, newPath string) error {
	oldComps, err := fsapi.SplitPath(oldPath)
	if err != nil {
		return err
	}
	newComps, err := fsapi.SplitPath(newPath)
	if err != nil {
		return err
	}
	if len(oldComps) == 0 || len(newComps) == 0 {
		return fserr.ErrInvalid
	}
	// Same path after normalization: POSIX no-op.
	if pathEqual(oldComps, newComps) {
		// The source must still exist.
		if _, err := m.walk(oldComps); err != nil {
			return err
		}
		return nil
	}
	// Moving a directory into its own subtree is invalid.
	if len(newComps) > len(oldComps) && pathEqual(oldComps, newComps[:len(oldComps)]) {
		return fserr.ErrInvalid
	}
	oldParent, err := m.walk(oldComps[:len(oldComps)-1])
	if err != nil {
		return err
	}
	if oldParent.typ != disklayout.TypeDir {
		return fserr.ErrNotDir
	}
	oldName := oldComps[len(oldComps)-1]
	srcIno, ok := oldParent.lookupSlot(oldName)
	if !ok {
		return fserr.ErrNotExist
	}
	src := m.nodes[srcIno]
	newParent, err := m.walk(newComps[:len(newComps)-1])
	if err != nil {
		return err
	}
	if newParent.typ != disklayout.TypeDir {
		return fserr.ErrNotDir
	}
	newName := newComps[len(newComps)-1]
	if err := disklayout.ValidName(newName); err != nil {
		return err
	}
	if dstIno, exists := newParent.lookupSlot(newName); exists {
		dst := m.nodes[dstIno]
		if dstIno == srcIno {
			return nil // hard links to the same inode: POSIX no-op
		}
		if src.typ == disklayout.TypeDir {
			if dst.typ != disklayout.TypeDir {
				return fserr.ErrNotDir
			}
			for _, s := range dst.slots {
				if s.ino != 0 {
					return fserr.ErrNotEmpty
				}
			}
		} else if dst.typ == disklayout.TypeDir {
			return fserr.ErrIsDir
		}
		// Point the existing slot at src in place, preserving listing order
		// exactly as the disk implementations' slot overwrite does.
		for i := range newParent.slots {
			if newParent.slots[i].ino != 0 && newParent.slots[i].name == newName {
				newParent.slots[i].ino = srcIno
				break
			}
		}
		if dst.typ == disklayout.TypeDir {
			newParent.nlink--
			dst.nlink = 0
		} else {
			dst.nlink--
		}
		m.dropNode(dst)
	} else if err := m.insertSlot(newParent, newName, srcIno); err != nil {
		return err
	}
	removeSlot(oldParent, oldName)
	if src.typ == disklayout.TypeDir && oldParent != newParent {
		oldParent.nlink--
		newParent.nlink++
	}
	t := m.clock.Tick()
	src.ctime = t
	oldParent.mtime, oldParent.ctime = t, t
	newParent.mtime, newParent.ctime = t, t
	return nil
}

func pathEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Link implements fsapi.FS.
func (m *Model) Link(oldPath, newPath string) error {
	src, err := m.walkPath(oldPath)
	if err != nil {
		return err
	}
	if src.typ == disklayout.TypeDir {
		return fserr.ErrIsDir
	}
	parent, name, err := m.walkParent(newPath)
	if err != nil {
		return err
	}
	if _, exists := parent.lookupSlot(name); exists {
		return fserr.ErrExist
	}
	if err := m.insertSlot(parent, name, src.ino); err != nil {
		return err
	}
	src.nlink++
	t := m.clock.Tick()
	src.ctime = t
	parent.mtime, parent.ctime = t, t
	return nil
}

// Symlink implements fsapi.FS.
func (m *Model) Symlink(target, linkPath string) error {
	if len(target) > disklayout.BlockSize {
		return fserr.ErrNameTooLong
	}
	if target == "" {
		return fserr.ErrInvalid
	}
	parent, name, err := m.walkParent(linkPath)
	if err != nil {
		return err
	}
	if _, exists := parent.lookupSlot(name); exists {
		return fserr.ErrExist
	}
	if m.usedBlocks+1 > m.dataBlocks {
		return fserr.ErrNoSpace
	}
	ino, err := m.allocIno()
	if err != nil {
		return err
	}
	nd := &node{ino: ino, typ: disklayout.TypeSym, perm: 0o777, nlink: 1, target: target}
	m.nodes[ino] = nd
	if err := m.insertSlot(parent, name, ino); err != nil {
		m.freeIno(ino)
		return err
	}
	m.usedBlocks++
	t := m.clock.Tick()
	nd.mtime, nd.ctime = t, t
	parent.mtime, parent.ctime = t, t
	return nil
}

// Readlink implements fsapi.FS.
func (m *Model) Readlink(path string) (string, error) {
	nd, err := m.walkPath(path)
	if err != nil {
		return "", err
	}
	if nd.typ != disklayout.TypeSym {
		return "", fserr.ErrInvalid
	}
	return nd.target, nil
}

func (nd *node) stat() fsapi.Stat {
	size := int64(len(nd.data))
	switch nd.typ {
	case disklayout.TypeSym:
		size = int64(len(nd.target))
	case disklayout.TypeDir:
		size = dirBlocks(len(nd.slots)) * disklayout.BlockSize
	}
	return fsapi.Stat{
		Ino:   nd.ino,
		Mode:  disklayout.MkMode(nd.typ, nd.perm),
		Nlink: nd.nlink,
		Size:  size,
		Mtime: nd.mtime,
		Ctime: nd.ctime,
	}
}

// Stat implements fsapi.FS.
func (m *Model) Stat(path string) (fsapi.Stat, error) {
	nd, err := m.walkPath(path)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return nd.stat(), nil
}

// Fstat implements fsapi.FS.
func (m *Model) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	nd, ok := m.fds[fd]
	if !ok {
		return fsapi.Stat{}, fserr.ErrBadFD
	}
	return nd.stat(), nil
}

// Readdir implements fsapi.FS.
func (m *Model) Readdir(path string) ([]fsapi.DirEntry, error) {
	nd, err := m.walkPath(path)
	if err != nil {
		return nil, err
	}
	if nd.typ != disklayout.TypeDir {
		return nil, fserr.ErrNotDir
	}
	var out []fsapi.DirEntry
	for _, s := range nd.slots {
		if s.ino == 0 {
			continue
		}
		child := m.nodes[s.ino]
		out = append(out, fsapi.DirEntry{Name: s.name, Ino: s.ino, Type: child.typ})
	}
	return out, nil
}

// SetPerm implements fsapi.FS.
func (m *Model) SetPerm(path string, perm uint16) error {
	nd, err := m.walkPath(path)
	if err != nil {
		return err
	}
	nd.perm = perm & disklayout.ModePermMask
	nd.ctime = m.clock.Tick()
	return nil
}

// Fsync implements fsapi.FS. The model is always "durable".
func (m *Model) Fsync(fd fsapi.FD) error {
	if _, ok := m.fds[fd]; !ok {
		return fserr.ErrBadFD
	}
	return nil
}

// Sync implements fsapi.FS.
func (m *Model) Sync() error { return nil }

// OpenFDs returns the sorted set of currently open descriptors, used by
// invariant checks in tests.
func (m *Model) OpenFDs() []fsapi.FD {
	var fds []fsapi.FD
	for fd := range m.fds {
		fds = append(fds, fd)
	}
	sort.Slice(fds, func(i, j int) bool { return fds[i] < fds[j] })
	return fds
}

// UsedBlocks exposes the space-accounting state for cross-checks against the
// disk implementations' bitmaps.
func (m *Model) UsedBlocks() int64 { return m.usedBlocks }

// LiveInodes returns the number of allocated inodes, including open-unlinked
// ones.
func (m *Model) LiveInodes() int { return len(m.nodes) }
