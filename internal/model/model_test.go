package model

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/disklayout"
	"repro/internal/fserr"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	sb, err := disklayout.Geometry(4096, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	return New(sb)
}

func TestMkdirStatReaddir(t *testing.T) {
	m := newModel(t)
	if err := m.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := m.Mkdir("/a/b", 0o700); err != nil {
		t.Fatal(err)
	}
	st, err := m.Stat("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if disklayout.ModeType(st.Mode) != disklayout.TypeDir || disklayout.ModePerm(st.Mode) != 0o700 {
		t.Errorf("stat mode = %#o", st.Mode)
	}
	if st.Nlink != 2 {
		t.Errorf("empty dir nlink = %d, want 2", st.Nlink)
	}
	// Parent picked up a link from its subdirectory.
	pst, _ := m.Stat("/a")
	if pst.Nlink != 3 {
		t.Errorf("parent nlink = %d, want 3", pst.Nlink)
	}
	ents, err := m.Readdir("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "b" || ents[0].Type != disklayout.TypeDir {
		t.Errorf("readdir = %+v", ents)
	}
}

func TestMkdirErrors(t *testing.T) {
	m := newModel(t)
	if err := m.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := m.Mkdir("/a", 0o755); !errors.Is(err, fserr.ErrExist) {
		t.Errorf("duplicate mkdir: %v", err)
	}
	if err := m.Mkdir("/missing/child", 0o755); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("missing parent: %v", err)
	}
	if err := m.Mkdir("/", 0o755); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("mkdir root: %v", err)
	}
	if err := m.Mkdir("relative", 0o755); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("relative path: %v", err)
	}
	fd, err := m.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(fd)
	if err := m.Mkdir("/f/sub", 0o755); !errors.Is(err, fserr.ErrNotDir) {
		t.Errorf("mkdir under file: %v", err)
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	m := newModel(t)
	fd, err := m.Create("/hello.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, shadow filesystems")
	n, err := m.WriteAt(fd, 0, data)
	if err != nil || n != len(data) {
		t.Fatalf("WriteAt = (%d, %v)", n, err)
	}
	got, err := m.ReadAt(fd, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q", got)
	}
	st, _ := m.Fstat(fd)
	if st.Size != int64(len(data)) {
		t.Errorf("size = %d", st.Size)
	}
	if err := m.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAt(fd, 0, 1); !errors.Is(err, fserr.ErrBadFD) {
		t.Errorf("read after close: %v", err)
	}
}

func TestCreateExclusive(t *testing.T) {
	m := newModel(t)
	fd, err := m.Create("/x", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	m.Close(fd)
	if _, err := m.Create("/x", 0o644); !errors.Is(err, fserr.ErrExist) {
		t.Errorf("second create: %v", err)
	}
}

func TestFDNumbersAreLowestFree(t *testing.T) {
	m := newModel(t)
	fd0, _ := m.Create("/a", 0o644)
	fd1, _ := m.Create("/b", 0o644)
	fd2, _ := m.Create("/c", 0o644)
	if fd0 != 0 || fd1 != 1 || fd2 != 2 {
		t.Fatalf("fds = %d,%d,%d", fd0, fd1, fd2)
	}
	m.Close(fd1)
	reopened, _ := m.Open("/b")
	if reopened != 1 {
		t.Errorf("reopened fd = %d, want lowest-free 1", reopened)
	}
}

func TestInodeNumbersAreLowestFree(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/a", 0o644)
	m.Close(fd)
	st, _ := m.Stat("/a")
	if st.Ino != 2 {
		t.Errorf("first file ino = %d, want 2 (root is 1)", st.Ino)
	}
	if err := m.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	fd, _ = m.Create("/b", 0o644)
	m.Close(fd)
	st, _ = m.Stat("/b")
	if st.Ino != 2 {
		t.Errorf("reused ino = %d, want 2", st.Ino)
	}
}

func TestSparseWriteAndHoleRead(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/sparse", 0o644)
	defer m.Close(fd)
	off := int64(10 * disklayout.BlockSize)
	if _, err := m.WriteAt(fd, off, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Fstat(fd)
	if st.Size != off+4 {
		t.Errorf("size = %d", st.Size)
	}
	got, err := m.ReadAt(fd, 0, disklayout.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, disklayout.BlockSize)) {
		t.Error("hole did not read as zeros")
	}
	got, _ = m.ReadAt(fd, off, 4)
	if string(got) != "tail" {
		t.Errorf("tail = %q", got)
	}
	// Only one data block materialized.
	if m.UsedBlocks() != 2 { // root dir block + 1 data block
		t.Errorf("usedBlocks = %d, want 2", m.UsedBlocks())
	}
}

func TestReadAtEOFAndBeyond(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/f", 0o644)
	defer m.Close(fd)
	m.WriteAt(fd, 0, []byte("12345"))
	got, err := m.ReadAt(fd, 3, 100)
	if err != nil || string(got) != "45" {
		t.Errorf("short read = (%q, %v)", got, err)
	}
	got, err = m.ReadAt(fd, 5, 10)
	if err != nil || len(got) != 0 {
		t.Errorf("read at EOF = (%q, %v)", got, err)
	}
	if _, err := m.ReadAt(fd, -1, 10); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("negative offset: %v", err)
	}
}

func TestTruncateDownZeroesTail(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/f", 0o644)
	defer m.Close(fd)
	m.WriteAt(fd, 0, bytes.Repeat([]byte{0xFF}, 100))
	if err := m.Truncate("/f", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate("/f", 100); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadAt(fd, 0, 100)
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 10; i < 100; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d = %#x after shrink+grow, want 0", i, got[i])
		}
	}
}

func TestTruncateFreesBlocks(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/f", 0o644)
	defer m.Close(fd)
	m.WriteAt(fd, 0, make([]byte, 20*disklayout.BlockSize))
	used := m.UsedBlocks()
	if err := m.Truncate("/f", disklayout.BlockSize); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() >= used {
		t.Errorf("truncate freed nothing: %d -> %d", used, m.UsedBlocks())
	}
}

func TestTruncateErrors(t *testing.T) {
	m := newModel(t)
	m.Mkdir("/d", 0o755)
	if err := m.Truncate("/d", 0); !errors.Is(err, fserr.ErrIsDir) {
		t.Errorf("truncate dir: %v", err)
	}
	if err := m.Truncate("/missing", 0); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("truncate missing: %v", err)
	}
	fd, _ := m.Create("/f", 0o644)
	m.Close(fd)
	if err := m.Truncate("/f", -1); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("negative size: %v", err)
	}
	if err := m.Truncate("/f", disklayout.MaxFileSize+1); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("oversize: %v", err)
	}
}

func TestUnlinkSemantics(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/f", 0o644)
	m.Close(fd)
	if err := m.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stat("/f"); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("stat after unlink: %v", err)
	}
	m.Mkdir("/d", 0o755)
	if err := m.Unlink("/d"); !errors.Is(err, fserr.ErrIsDir) {
		t.Errorf("unlink dir: %v", err)
	}
	if err := m.Unlink("/missing"); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("unlink missing: %v", err)
	}
}

func TestOpenUnlinkedFileSurvives(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/f", 0o644)
	m.WriteAt(fd, 0, []byte("still here"))
	if err := m.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadAt(fd, 0, 100)
	if err != nil || string(got) != "still here" {
		t.Errorf("read through open-unlinked fd = (%q, %v)", got, err)
	}
	live := m.LiveInodes()
	if err := m.Close(fd); err != nil {
		t.Fatal(err)
	}
	if m.LiveInodes() != live-1 {
		t.Error("inode not freed on last close")
	}
}

func TestRmdirSemantics(t *testing.T) {
	m := newModel(t)
	m.Mkdir("/d", 0o755)
	m.Mkdir("/d/sub", 0o755)
	if err := m.Rmdir("/d"); !errors.Is(err, fserr.ErrNotEmpty) {
		t.Errorf("rmdir non-empty: %v", err)
	}
	if err := m.Rmdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Stat("/d")
	if st.Nlink != 2 {
		t.Errorf("nlink after child rmdir = %d, want 2", st.Nlink)
	}
	if err := m.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	fd, _ := m.Create("/f", 0o644)
	m.Close(fd)
	if err := m.Rmdir("/f"); !errors.Is(err, fserr.ErrNotDir) {
		t.Errorf("rmdir file: %v", err)
	}
}

func TestHardLinks(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/a", 0o644)
	m.WriteAt(fd, 0, []byte("shared"))
	m.Close(fd)
	if err := m.Link("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	sa, _ := m.Stat("/a")
	sb, _ := m.Stat("/b")
	if sa.Ino != sb.Ino || sa.Nlink != 2 {
		t.Errorf("link stats: a=%+v b=%+v", sa, sb)
	}
	if err := m.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	fd, err := m.Open("/b")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadAt(fd, 0, 10)
	if string(got) != "shared" {
		t.Errorf("content via second link = %q", got)
	}
	m.Close(fd)
	st, _ := m.Stat("/b")
	if st.Nlink != 1 {
		t.Errorf("nlink = %d, want 1", st.Nlink)
	}
	// Linking directories is forbidden.
	m.Mkdir("/d", 0o755)
	if err := m.Link("/d", "/d2"); !errors.Is(err, fserr.ErrIsDir) {
		t.Errorf("link dir: %v", err)
	}
	if err := m.Link("/b", "/b"); !errors.Is(err, fserr.ErrExist) {
		t.Errorf("link over self: %v", err)
	}
}

func TestSymlinks(t *testing.T) {
	m := newModel(t)
	if err := m.Symlink("/target/path", "/ln"); err != nil {
		t.Fatal(err)
	}
	got, err := m.Readlink("/ln")
	if err != nil || got != "/target/path" {
		t.Errorf("readlink = (%q, %v)", got, err)
	}
	st, _ := m.Stat("/ln")
	if disklayout.ModeType(st.Mode) != disklayout.TypeSym || st.Size != int64(len("/target/path")) {
		t.Errorf("symlink stat = %+v", st)
	}
	// Symlinks are not followed by open.
	if _, err := m.Open("/ln"); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("open symlink: %v", err)
	}
	if _, err := m.Readlink("/"); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("readlink dir: %v", err)
	}
	if err := m.Symlink("", "/empty"); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("empty target: %v", err)
	}
	long := string(bytes.Repeat([]byte{'x'}, disklayout.BlockSize+1))
	if err := m.Symlink(long, "/long"); !errors.Is(err, fserr.ErrNameTooLong) {
		t.Errorf("long target: %v", err)
	}
	if err := m.Unlink("/ln"); err != nil {
		t.Errorf("unlink symlink: %v", err)
	}
}

func TestRenameBasic(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/a", 0o644)
	m.WriteAt(fd, 0, []byte("payload"))
	m.Close(fd)
	if err := m.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stat("/a"); !errors.Is(err, fserr.ErrNotExist) {
		t.Error("old name survives rename")
	}
	fd, _ = m.Open("/b")
	got, _ := m.ReadAt(fd, 0, 10)
	m.Close(fd)
	if string(got) != "payload" {
		t.Errorf("content after rename = %q", got)
	}
}

func TestRenameReplacesFile(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/a", 0o644)
	m.WriteAt(fd, 0, []byte("AAA"))
	m.Close(fd)
	fd, _ = m.Create("/b", 0o644)
	m.WriteAt(fd, 0, []byte("BBB"))
	m.Close(fd)
	live := m.LiveInodes()
	if err := m.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	fd, _ = m.Open("/b")
	got, _ := m.ReadAt(fd, 0, 10)
	m.Close(fd)
	if string(got) != "AAA" {
		t.Errorf("content = %q, want AAA", got)
	}
	if m.LiveInodes() != live-1 {
		t.Error("replaced inode not freed")
	}
}

func TestRenameDirRules(t *testing.T) {
	m := newModel(t)
	m.Mkdir("/d1", 0o755)
	m.Mkdir("/d2", 0o755)
	m.Mkdir("/d2/inner", 0o755)
	fd, _ := m.Create("/f", 0o644)
	m.Close(fd)
	// dir over non-empty dir
	if err := m.Rename("/d1", "/d2"); !errors.Is(err, fserr.ErrNotEmpty) {
		t.Errorf("dir over non-empty dir: %v", err)
	}
	// dir over file
	if err := m.Rename("/d1", "/f"); !errors.Is(err, fserr.ErrNotDir) {
		t.Errorf("dir over file: %v", err)
	}
	// file over dir
	if err := m.Rename("/f", "/d1"); !errors.Is(err, fserr.ErrIsDir) {
		t.Errorf("file over dir: %v", err)
	}
	// dir into its own subtree
	if err := m.Rename("/d2", "/d2/inner/x"); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("dir into own subtree: %v", err)
	}
	// dir over empty dir works
	if err := m.Rename("/d1", "/d2/inner"); err != nil {
		t.Errorf("dir over empty dir: %v", err)
	}
	// nlink accounting after cross-parent move
	st, _ := m.Stat("/")
	if st.Nlink != 3 { // root + d2 (d1 moved under d2, replacing inner)
		t.Errorf("root nlink = %d, want 3", st.Nlink)
	}
	st, _ = m.Stat("/d2")
	if st.Nlink != 3 {
		t.Errorf("d2 nlink = %d, want 3", st.Nlink)
	}
}

func TestRenameSamePathNoop(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/a", 0o644)
	m.Close(fd)
	if err := m.Rename("/a", "/a"); err != nil {
		t.Errorf("rename to self: %v", err)
	}
	if err := m.Rename("/a", "//a/."); err != nil {
		t.Errorf("rename to self via messy path: %v", err)
	}
	if err := m.Rename("/missing", "/missing"); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("self-rename of missing: %v", err)
	}
	// Two hard links to the same inode: no-op, both names survive.
	m.Link("/a", "/b")
	if err := m.Rename("/a", "/b"); err != nil {
		t.Errorf("rename between links: %v", err)
	}
	if _, err := m.Stat("/a"); err != nil {
		t.Error("first link vanished")
	}
	if _, err := m.Stat("/b"); err != nil {
		t.Error("second link vanished")
	}
}

func TestSetPerm(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/f", 0o644)
	m.Close(fd)
	if err := m.SetPerm("/f", 0o600); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Stat("/f")
	if disklayout.ModePerm(st.Mode) != 0o600 {
		t.Errorf("perm = %#o", disklayout.ModePerm(st.Mode))
	}
	if err := m.SetPerm("/missing", 0o600); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("setperm missing: %v", err)
	}
}

func TestReaddirOrderMatchesSlotReuse(t *testing.T) {
	m := newModel(t)
	for _, n := range []string{"a", "b", "c", "d"} {
		fd, _ := m.Create("/"+n, 0o644)
		m.Close(fd)
	}
	m.Unlink("/b")
	fd, _ := m.Create("/e", 0o644) // must land in b's slot
	m.Close(fd)
	ents, _ := m.Readdir("/")
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	want := []string{"a", "e", "c", "d"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("readdir order = %v, want %v", names, want)
		}
	}
}

func TestWriteMaxFileSize(t *testing.T) {
	m := newModel(t)
	fd, _ := m.Create("/f", 0o644)
	defer m.Close(fd)
	if _, err := m.WriteAt(fd, disklayout.MaxFileSize-1, []byte("xy")); !errors.Is(err, fserr.ErrTooBig) {
		t.Errorf("write past max size: %v", err)
	}
	if _, err := m.WriteAt(fd, 0, nil); err != nil {
		t.Errorf("empty write: %v", err)
	}
	if _, err := m.WriteAt(fd, -5, []byte("x")); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("negative offset: %v", err)
	}
}

func TestENOSPCOnTinyImage(t *testing.T) {
	sb, err := disklayout.Geometry(150, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := New(sb)
	fd, _ := m.Create("/big", 0o644)
	defer m.Close(fd)
	buf := make([]byte, disklayout.BlockSize)
	var werr error
	total := 0
	for i := 0; i < 1000; i++ {
		var n int
		n, werr = m.WriteAt(fd, int64(i)*disklayout.BlockSize, buf)
		total += n
		if werr != nil {
			break
		}
	}
	if !errors.Is(werr, fserr.ErrNoSpace) {
		t.Fatalf("tiny image never hit ENOSPC (wrote %d bytes)", total)
	}
	// Freeing space makes writes possible again.
	if err := m.Truncate("/big", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteAt(fd, 0, buf); err != nil {
		t.Errorf("write after truncate: %v", err)
	}
}

func TestInodeExhaustion(t *testing.T) {
	sb, err := disklayout.Geometry(4096, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := New(sb)
	var lastErr error
	for i := 0; i < 20; i++ {
		err := m.Mkdir("/d"+string(rune('a'+i)), 0o755)
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, fserr.ErrNoSpace) {
		t.Errorf("inode exhaustion: %v", lastErr)
	}
}

func TestTimestampsAdvanceDeterministically(t *testing.T) {
	m1, m2 := newModel(t), newModel(t)
	run := func(m *Model) (uint64, uint64) {
		fd, _ := m.Create("/f", 0o644)
		m.WriteAt(fd, 0, []byte("x"))
		m.Close(fd)
		m.Mkdir("/d", 0o755)
		s1, _ := m.Stat("/f")
		s2, _ := m.Stat("/d")
		return s1.Mtime, s2.Mtime
	}
	a1, a2 := run(m1)
	b1, b2 := run(m2)
	if a1 != b1 || a2 != b2 {
		t.Error("same sequence produced different timestamps")
	}
	if a2 <= a1 {
		t.Error("later operation has earlier timestamp")
	}
}

func TestDeepPathsAndDotDot(t *testing.T) {
	m := newModel(t)
	m.Mkdir("/a", 0o755)
	m.Mkdir("/a/b", 0o755)
	fd, err := m.Create("/a/b/../b/./file", 0o644)
	if err != nil {
		t.Fatalf("messy path create: %v", err)
	}
	m.Close(fd)
	if _, err := m.Stat("/a/b/file"); err != nil {
		t.Errorf("normalized path stat: %v", err)
	}
	if _, err := m.Stat("/../../a"); err != nil {
		t.Errorf("dotdot above root: %v", err)
	}
}

func TestFsyncSyncAndOpenFDs(t *testing.T) {
	m := newModel(t)
	if err := m.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
	if err := m.Fsync(0); !errors.Is(err, fserr.ErrBadFD) {
		t.Errorf("Fsync on closed fd: %v", err)
	}
	fd1, _ := m.Create("/a", 0o644)
	fd2, _ := m.Create("/b", 0o644)
	if err := m.Fsync(fd1); err != nil {
		t.Errorf("Fsync: %v", err)
	}
	fds := m.OpenFDs()
	if len(fds) != 2 || fds[0] != fd1 || fds[1] != fd2 {
		t.Errorf("OpenFDs = %v", fds)
	}
	m.Close(fd1)
	if got := m.OpenFDs(); len(got) != 1 || got[0] != fd2 {
		t.Errorf("OpenFDs after close = %v", got)
	}
}
